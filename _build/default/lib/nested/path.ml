(* Attribute paths into nested tuple types.

   A path addresses an attribute of a relation's tuple type, descending
   through tuple-valued attributes and through nested relations (bags of
   tuples).  E.g. ["address2"; "city"] addresses the [city] attribute of the
   tuples nested in the [address2] attribute.  Paths are how the paper names
   source attributes such as [T.entities.media]. *)

type t = string list

let compare = List.compare String.compare
let equal a b = compare a b = 0
let pp ppf (p : t) = Fmt.(list ~sep:(any ".") string) ppf p
let to_string p = String.concat "." p
let of_string s = String.split_on_char '.' s

(* Resolve a path against a *tuple type*, descending through bags. *)
let rec resolve_type (ty : Vtype.t) (p : t) : Vtype.t option =
  match p with
  | [] -> Some ty
  | label :: rest -> (
    match ty with
    | Vtype.TTuple _ -> (
      match Vtype.field label ty with
      | Some fty -> resolve_type fty rest
      | None -> None)
    | Vtype.TBag ety -> resolve_type ety p
    | Vtype.TBool | Vtype.TInt | Vtype.TFloat | Vtype.TString -> None)

(* All values reachable along a path from a value: descending into a bag
   yields every element's values. *)
let rec resolve_values (v : Value.t) (p : t) : Value.t list =
  match p with
  | [] -> [ v ]
  | label :: rest -> (
    match v with
    | Value.Tuple _ -> (
      match Value.field label v with
      | Some fv -> resolve_values fv rest
      | None -> [])
    | Value.Bag es ->
      List.concat_map (fun (e, _) -> resolve_values e p) es
    | Value.Null -> []
    | Value.Bool _ | Value.Int _ | Value.Float _ | Value.String _ -> [])

(* Replace the attribute addressed by a path inside a *tuple type*,
   returning the updated type.  Used when reasoning about schema
   alternatives. *)
let rec update_type (ty : Vtype.t) (p : t) ~(f : Vtype.t -> Vtype.t) :
    Vtype.t option =
  match p with
  | [] -> Some (f ty)
  | label :: rest -> (
    match ty with
    | Vtype.TTuple fields ->
      if not (List.mem_assoc label fields) then None
      else
        let updated =
          List.map
            (fun (l, fty) ->
              if String.equal l label then
                match update_type fty rest ~f with
                | Some fty' -> Some (l, fty')
                | None -> None
              else Some (l, fty))
            fields
        in
        if List.for_all Option.is_some updated then
          Some (Vtype.TTuple (List.map Option.get updated))
        else None
    | Vtype.TBag ety ->
      Option.map (fun e -> Vtype.TBag e) (update_type ety p ~f)
    | Vtype.TBool | Vtype.TInt | Vtype.TFloat | Vtype.TString -> None)

(* The last component of a path — the attribute's own name. *)
let leaf (p : t) : string =
  match List.rev p with
  | x :: _ -> x
  | [] -> invalid_arg "Path.leaf: empty path"
