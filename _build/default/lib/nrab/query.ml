(* The NRAB query AST (Section 3.2, Table 1).

   Every operator node carries a unique integer identifier; explanations
   are sets of such identifiers, and operators keep their identifier across
   reparameterizations (Section 4.2). *)

type join_kind = Inner | Left | Right | Full
type flatten_kind = Flat_inner | Flat_outer

type node =
  | Table of string
  | Select of Expr.pred
  | Project of (string * Expr.t) list
      (* output column name × defining expression; π_L is the special case
         where every expression is an attribute reference *)
  | Rename of (string * string) list  (* (new name, old name) pairs *)
  | Join of join_kind * Expr.pred
  | Product
  | Union
  | Diff
  | Dedup
  | Flatten_tuple of string
  | Flatten of flatten_kind * string
  | Nest_tuple of (string * string) list * string
      (* (output label, source attr) pairs → new attr C; labels are fixed
         so that attribute swaps (reparameterizations) preserve the output
         schema *)
  | Nest_rel of (string * string) list * string
      (* same, nesting into a relation; groups on the remaining attrs *)
  | Agg_tuple of Agg.fn * string * string  (* γ_{f(A)→B}: per-tuple over nested attr A *)
  | Group_agg of (string * string) list * (Agg.fn * string option * string) list
      (* group-by (output label, source attr) pairs × aggregates (fn, input
         attr or None for count-star, output name); labels are fixed so
         that attribute swaps preserve the output schema; derived operator
         used by the TPC-H scenarios *)

type t = { id : int; node : node; children : t list }

(* Construction.  Identifiers are drawn from an explicit generator so that
   scenario definitions can pin the ids used in the paper. *)

module Gen = struct
  type t = { mutable next : int }

  let create ?(start = 1) () = { next = start }

  let fresh g =
    let id = g.next in
    g.next <- id + 1;
    id
end

let mk ?id (g : Gen.t) node children =
  let id = match id with Some i -> i | None -> Gen.fresh g in
  { id; node; children }

let table ?id g name = mk ?id g (Table name) []
let select ?id g pred q = mk ?id g (Select pred) [ q ]
let project ?id g cols q = mk ?id g (Project cols) [ q ]

(* Plain π_L: keep the listed attributes. *)
let project_attrs ?id g attrs q =
  project ?id g (List.map (fun a -> (a, Expr.Attr a)) attrs) q

let rename ?id g pairs q = mk ?id g (Rename pairs) [ q ]
let join ?id g kind pred l r = mk ?id g (Join (kind, pred)) [ l; r ]
let product ?id g l r = mk ?id g Product [ l; r ]
let union ?id g l r = mk ?id g Union [ l; r ]
let diff ?id g l r = mk ?id g Diff [ l; r ]
let dedup ?id g q = mk ?id g Dedup [ q ]
let flatten_tuple ?id g attr q = mk ?id g (Flatten_tuple attr) [ q ]
let flatten ?id g kind attr q = mk ?id g (Flatten (kind, attr)) [ q ]
let flatten_inner ?id g attr q = flatten ?id g Flat_inner attr q
let flatten_outer ?id g attr q = flatten ?id g Flat_outer attr q
let nest_tuple ?id g attrs ~into q =
  mk ?id g (Nest_tuple (List.map (fun a -> (a, a)) attrs, into)) [ q ]

let nest_rel ?id g attrs ~into q =
  mk ?id g (Nest_rel (List.map (fun a -> (a, a)) attrs, into)) [ q ]

let nest_tuple_labeled ?id g pairs ~into q = mk ?id g (Nest_tuple (pairs, into)) [ q ]
let nest_rel_labeled ?id g pairs ~into q = mk ?id g (Nest_rel (pairs, into)) [ q ]
let agg_tuple ?id g fn ~over ~into q = mk ?id g (Agg_tuple (fn, over, into)) [ q ]
let group_agg ?id g group aggs q =
  mk ?id g (Group_agg (List.map (fun a -> (a, a)) group, aggs)) [ q ]

let group_agg_labeled ?id g pairs aggs q = mk ?id g (Group_agg (pairs, aggs)) [ q ]

(* Traversals *)

let rec fold (f : 'a -> t -> 'a) (acc : 'a) (q : t) : 'a =
  let acc = List.fold_left (fold f) acc q.children in
  f acc q

(* All operator nodes, children before parents (topological order). *)
let operators (q : t) : t list = List.rev (fold (fun acc op -> op :: acc) [] q)

let find_op (q : t) (id : int) : t option =
  fold (fun acc op -> if op.id = id then Some op else acc) None q

let op_count (q : t) : int = fold (fun n _ -> n + 1) 0 q

(* Names of input tables, in order of appearance. *)
let input_tables (q : t) : string list =
  let names =
    fold
      (fun acc op -> match op.node with Table n -> n :: acc | _ -> acc)
      [] q
  in
  List.rev names

(* Assign fresh identifiers (from [g]) to every operator of a query —
   used when combining independently built plans whose ids collide. *)
let rec relabel (g : Gen.t) (q : t) : t =
  let children = List.map (relabel g) q.children in
  { q with id = Gen.fresh g; children }

(* Replace the node of operator [id], keeping structure and ids — the
   shape-preservation invariant of reparameterizations (Definition 7). *)
let rec replace_node (q : t) (id : int) (node : node) : t =
  if q.id = id then { q with node }
  else { q with children = List.map (fun c -> replace_node c id node) q.children }

(* A short operator symbol, used for paper-style output like σ^12. *)
let op_symbol (n : node) : string =
  match n with
  | Table name -> name
  | Select _ -> "σ"
  | Project _ -> "π"
  | Rename _ -> "ρ"
  | Join (Inner, _) -> "⋈"
  | Join (Left, _) -> "⟕"
  | Join (Right, _) -> "⟖"
  | Join (Full, _) -> "⟗"
  | Product -> "×"
  | Union -> "∪"
  | Diff -> "−"
  | Dedup -> "δ"
  | Flatten_tuple _ -> "Fᵀ"
  | Flatten (Flat_inner, _) -> "Fᴵ"
  | Flatten (Flat_outer, _) -> "Fᴼ"
  | Nest_tuple _ -> "Nᵀ"
  | Nest_rel _ -> "Nᴿ"
  | Agg_tuple _ | Group_agg _ -> "γ"

(* Operator type tag, used to aggregate explanations per operator type in
   the Table 7 summary. *)
type op_type =
  | Op_select
  | Op_project
  | Op_rename
  | Op_join
  | Op_flatten
  | Op_nest
  | Op_agg
  | Op_other

let op_type (n : node) : op_type =
  match n with
  | Select _ -> Op_select
  | Project _ -> Op_project
  | Rename _ -> Op_rename
  | Join _ | Product -> Op_join
  | Flatten_tuple _ | Flatten _ -> Op_flatten
  | Nest_tuple _ | Nest_rel _ -> Op_nest
  | Agg_tuple _ | Group_agg _ -> Op_agg
  | Table _ | Union | Diff | Dedup -> Op_other

let op_type_to_string = function
  | Op_select -> "σ"
  | Op_project -> "π"
  | Op_rename -> "ρ"
  | Op_join -> "⋈"
  | Op_flatten -> "F"
  | Op_nest -> "N"
  | Op_agg -> "γ"
  | Op_other -> "·"

let pp_node ppf (n : node) =
  match n with
  | Table name -> Fmt.pf ppf "%s" name
  | Select p -> Fmt.pf ppf "σ[%a]" Expr.pp_pred p
  | Project cols ->
    let pp_col ppf (name, e) =
      match e with
      | Expr.Attr a when String.equal a name -> Fmt.string ppf name
      | _ -> Fmt.pf ppf "%s←%a" name Expr.pp e
    in
    Fmt.pf ppf "π[%a]" (Fmt.list ~sep:(Fmt.any ",") pp_col) cols
  | Rename pairs ->
    Fmt.pf ppf "ρ[%a]"
      (Fmt.list ~sep:(Fmt.any ",") (fun ppf (b, a) -> Fmt.pf ppf "%s←%s" b a))
      pairs
  | Join (kind, p) ->
    let sym =
      match kind with Inner -> "⋈" | Left -> "⟕" | Right -> "⟖" | Full -> "⟗"
    in
    Fmt.pf ppf "%s[%a]" sym Expr.pp_pred p
  | Product -> Fmt.string ppf "×"
  | Union -> Fmt.string ppf "∪"
  | Diff -> Fmt.string ppf "−"
  | Dedup -> Fmt.string ppf "δ"
  | Flatten_tuple a -> Fmt.pf ppf "Fᵀ[%s]" a
  | Flatten (Flat_inner, a) -> Fmt.pf ppf "Fᴵ[%s]" a
  | Flatten (Flat_outer, a) -> Fmt.pf ppf "Fᴼ[%s]" a
  | Nest_tuple (pairs, c) | Nest_rel (pairs, c) ->
    let sym = match n with Nest_tuple _ -> "Nᵀ" | _ -> "Nᴿ" in
    let pp_pair ppf (label, a) =
      if String.equal label a then Fmt.string ppf a
      else Fmt.pf ppf "%s←%s" label a
    in
    Fmt.pf ppf "%s[%a→%s]" sym (Fmt.list ~sep:(Fmt.any ",") pp_pair) pairs c
  | Agg_tuple (fn, a, b) -> Fmt.pf ppf "γ[%a(%s)→%s]" Agg.pp_fn fn a b
  | Group_agg (group, aggs) ->
    let pp_agg ppf (fn, a, out) =
      Fmt.pf ppf "%a(%s)→%s" Agg.pp_fn fn
        (match a with Some a -> a | None -> "*")
        out
    in
    let pp_pair ppf (label, a) =
      if String.equal label a then Fmt.string ppf a
      else Fmt.pf ppf "%s←%s" label a
    in
    Fmt.pf ppf "γ[%a; %a]"
      (Fmt.list ~sep:(Fmt.any ",") pp_pair)
      group
      (Fmt.list ~sep:(Fmt.any ",") pp_agg)
      aggs

let rec pp ppf (q : t) =
  match q.children with
  | [] -> Fmt.pf ppf "%a^%d" pp_node q.node q.id
  | [ c ] -> Fmt.pf ppf "%a^%d(%a)" pp_node q.node q.id pp c
  | cs ->
    Fmt.pf ppf "%a^%d(%a)" pp_node q.node q.id
      (Fmt.list ~sep:(Fmt.any ", ") pp)
      cs

let to_string q = Fmt.str "%a" pp q
