(* Aggregation functions, restricted to the standard SQL ones (the PTIME
   restriction of Theorem 1 that the paper's algorithm adopts). *)

open Nested

type fn = Sum | Count | Count_distinct | Avg | Min | Max

let pp_fn ppf = function
  | Sum -> Fmt.string ppf "sum"
  | Count -> Fmt.string ppf "count"
  | Count_distinct -> Fmt.string ppf "count distinct"
  | Avg -> Fmt.string ppf "avg"
  | Min -> Fmt.string ppf "min"
  | Max -> Fmt.string ppf "max"

let fn_to_string fn = Fmt.str "%a" pp_fn fn

let as_float (v : Value.t) : float option =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | Value.Null | Value.Bool _ | Value.String _ | Value.Tuple _ | Value.Bag _ ->
    None

let all_ints vs =
  List.for_all
    (function Value.Int _ -> true | _ -> false)
    vs

(* Apply an aggregation function to a multiset of values (each value
   already expanded to its multiplicity).  Nulls are skipped, as in SQL.
   Sum/avg/min/max of an empty input is Null; counts are 0. *)
let apply (fn : fn) (values : Value.t list) : Value.t =
  let non_null = List.filter (fun v -> not (Value.equal v Value.Null)) values in
  match fn with
  | Count -> Value.Int (List.length non_null)
  | Count_distinct ->
    Value.Int (List.length (List.sort_uniq Value.compare non_null))
  | Sum ->
    if non_null = [] then Value.Null
    else if all_ints non_null then
      Value.Int
        (List.fold_left
           (fun acc v -> match v with Value.Int i -> acc + i | _ -> acc)
           0 non_null)
    else
      let floats = List.filter_map as_float non_null in
      Value.Float (List.fold_left ( +. ) 0. floats)
  | Avg -> (
    let floats = List.filter_map as_float non_null in
    match floats with
    | [] -> Value.Null
    | _ ->
      Value.Float
        (List.fold_left ( +. ) 0. floats /. float_of_int (List.length floats)))
  | Min -> (
    match non_null with
    | [] -> Value.Null
    | v :: rest ->
      List.fold_left (fun acc x -> if Value.compare x acc < 0 then x else acc) v rest)
  | Max -> (
    match non_null with
    | [] -> Value.Null
    | v :: rest ->
      List.fold_left (fun acc x -> if Value.compare x acc > 0 then x else acc) v rest)

(* Output type of an aggregation function applied to values of [input]
   type. *)
let output_type (fn : fn) (input : Vtype.t) : Vtype.t =
  match fn with
  | Count | Count_distinct -> Vtype.TInt
  | Avg -> Vtype.TFloat
  | Sum | Min | Max -> input

(* Range of values achievable by aggregating a *sub-multiset* (possibly
   empty for counts, non-empty otherwise) of the given values.  Used by the
   tracing step to decide optimistically whether an aggregate constraint of
   the why-not question is satisfiable by some reparameterization upstream
   (the paper cuts the corner of tracing aggregate subsets; this interval
   check is the corresponding conservative test). *)
let achievable_range (fn : fn) (values : Value.t list) : (float * float) option
    =
  let non_null = List.filter (fun v -> not (Value.equal v Value.Null)) values in
  let floats = List.filter_map as_float non_null in
  match fn with
  | Count | Count_distinct -> Some (0., float_of_int (List.length non_null))
  | Sum ->
    if floats = [] then None
    else
      let neg = List.filter (fun f -> f < 0.) floats in
      let pos = List.filter (fun f -> f > 0.) floats in
      Some (List.fold_left ( +. ) 0. neg, List.fold_left ( +. ) 0. pos)
  | Avg | Min | Max ->
    if floats = [] then None
    else
      Some
        ( List.fold_left min (List.hd floats) floats,
          List.fold_left max (List.hd floats) floats )
