(* Synthetic forestry data for scenarios F1/F2.

   Every country carries two parallel nested time series with identical
   inner schemas, [years] and [estimates], so either can be flattened by
   the same query — the schema-alternative substitution stays well-typed.
   South Asia's reported recent-year cover is kept below the selection
   thresholds used by the scenarios while its estimates clear them. *)

open Nested

let str s = Value.String s
let int i = Value.Int i
let flt f = Value.Float f
let tup fields = Value.Tuple fields

let series_schema =
  Vtype.TBag (Vtype.TTuple [ ("year", Vtype.TInt); ("pct", Vtype.TFloat) ])

let countries_schema =
  Vtype.relation
    [
      ("ccode", Vtype.TString);
      ("cname", Vtype.TString);
      ("region", Vtype.TString);
      ("income", Vtype.TString);
    ]

let forest_schema =
  Vtype.relation
    [
      ("fcode", Vtype.TString);
      ("years", series_schema);
      ("estimates", series_schema);
    ]

let target_region = "South Asia"

let regions = [ target_region; "Europe"; "Africa"; "Americas" ]
let incomes = [ "High income"; "Middle income"; "Low income" ]

(* Reported and modelled cover percentages for one country-year.  Recent
   South Asia reports sit well under the scenario thresholds (40/60);
   the matching estimates sit well over them. *)
let cover rng ~region ~year =
  let recent = year >= 2015 in
  let low () = 5. +. float_of_int (Prng.range rng ~lo:0 ~hi:300) /. 10. in
  let high () = 65. +. float_of_int (Prng.range rng ~lo:0 ~hi:250) /. 10. in
  let anywhere () = 5. +. float_of_int (Prng.range rng ~lo:0 ~hi:900) /. 10. in
  if String.equal region target_region then
    if recent then (low (), high ()) else (anywhere (), anywhere ())
  else
    let reported = anywhere () in
    (* estimates track the reports with a small correction *)
    let modelled =
      Float.max 0.
        (reported +. (float_of_int (Prng.range rng ~lo:(-30) ~hi:30) /. 10.))
    in
    (reported, modelled)

let series rng ~region =
  let rec go year reported modelled =
    if year > 2019 then (List.rev reported, List.rev modelled)
    else
      let r, m = cover rng ~region ~year in
      go (year + 1)
        (tup [ ("year", int year); ("pct", flt r) ] :: reported)
        (tup [ ("year", int year); ("pct", flt m) ] :: modelled)
  in
  go 2012 [] []

let db ?(seed = 7) ~scale () : Relation.Db.t =
  let rng = Prng.create ~seed in
  let countries = ref [] and forests = ref [] in
  let n = ref 0 in
  List.iter
    (fun region ->
      for _ = 1 to max 1 scale do
        incr n;
        let ccode = Printf.sprintf "C%03d" !n in
        let cname = Printf.sprintf "Country-%d" !n in
        let income = Prng.pick rng incomes in
        countries :=
          tup
            [
              ("ccode", str ccode);
              ("cname", str cname);
              ("region", str region);
              ("income", str income);
            ]
          :: !countries;
        let reported, modelled = series rng ~region in
        forests :=
          tup
            [
              ("fcode", str ccode);
              ("years", Value.bag_of_list reported);
              ("estimates", Value.bag_of_list modelled);
            ]
          :: !forests
      done)
    regions;
  Relation.Db.of_list
    [
      ("countries",
       Relation.of_tuples ~schema:countries_schema (List.rev !countries));
      ("forest", Relation.of_tuples ~schema:forest_schema (List.rev !forests));
    ]
