(** Static physical-plan analysis: classify each operator as
    partition-local (narrow) or shuffle-inducing (wide), assign stage
    numbers, and pretty-print the DAG — what one would read off a Spark
    UI before executing anything. *)

open Nrab

type movement =
  | Narrow  (** partition-local *)
  | Shuffle of string  (** hash repartition by the given key description *)
  | Gather  (** all partitions collapse (non-equi join / product) *)

type node = {
  op_id : int;
  label : string;
  movement : movement;
  stage : int;  (** 0-based; shuffles and gathers start a new stage *)
  inputs : node list;
}

val movement_to_string : movement -> string
val analyze : env:Typecheck.env -> Query.t -> node
val stage_count : node -> int
val pp : Format.formatter -> node -> unit
val to_string : node -> string
