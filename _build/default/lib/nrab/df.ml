(* A fluent, Spark-DataFrame-style construction API for NRAB plans.

   The paper targets debugging of Spark programs whose operator pipelines
   correspond to NRAB queries (Figure 1c); this combinator layer lets such
   pipelines be written the way they read in Spark:

     Df.table "person"
     |> Df.explode "address2"
     |> Df.filter Expr.(Infix.(attr "year" >= int 2019))
     |> Df.select_cols [ "name"; "city" ]
     |> Df.group_nest [ "name" ] ~into:"nList"
     |> Df.plan

   Every combinator allocates operator ids from the builder threaded
   through the value, so the resulting plan is an ordinary {!Query.t}. *)

type t = { gen : Query.Gen.t; query : Query.t }

let plan (df : t) : Query.t = df.query

let of_query ?(gen = Query.Gen.create ~start:1000 ()) query = { gen; query }

(* --- sources --- *)

let table ?gen name =
  let gen = match gen with Some g -> g | None -> Query.Gen.create () in
  { gen; query = Query.table gen name }

(* --- row-wise transformations --- *)

let filter pred (df : t) = { df with query = Query.select df.gen pred df.query }

let select_cols names (df : t) =
  { df with query = Query.project_attrs df.gen names df.query }

let with_columns cols (df : t) =
  { df with query = Query.project df.gen cols df.query }

let rename_cols pairs (df : t) =
  { df with query = Query.rename df.gen pairs df.query }

let distinct (df : t) = { df with query = Query.dedup df.gen df.query }

(* --- nesting / flattening (Spark's explode and struct accessors) --- *)

(* Spark's [explode] of an array column. *)
let explode attr (df : t) =
  { df with query = Query.flatten_inner df.gen attr df.query }

let explode_outer attr (df : t) =
  { df with query = Query.flatten_outer df.gen attr df.query }

(* Expose the fields of a struct column ([select("s.*")] in Spark). *)
let flatten_struct attr (df : t) =
  { df with query = Query.flatten_tuple df.gen attr df.query }

(* collect_list-style grouping of [attrs] into a nested relation. *)
let group_nest attrs ~into (df : t) =
  { df with query = Query.nest_rel df.gen attrs ~into df.query }

let pack_struct attrs ~into (df : t) =
  { df with query = Query.nest_tuple df.gen attrs ~into df.query }

(* --- joins and set operations --- *)

(* Two independently built dataframes may carry colliding operator ids
   (each [table] starts a fresh generator); relabel the right side and
   continue with a generator past all existing ids when that happens, so
   the combined plan keeps ids unique. *)
let combine (df : t) (other : t)
    (build : Query.Gen.t -> Query.t -> Query.t -> Query.t) : t =
  let ids q =
    List.map (fun (op : Query.t) -> op.Query.id) (Query.operators q)
  in
  let left = ids df.query and right = ids other.query in
  if List.exists (fun i -> List.mem i left) right then begin
    let start = 1 + List.fold_left max 0 (left @ right) in
    let gen = Query.Gen.create ~start () in
    let other_query = Query.relabel gen other.query in
    { gen; query = build gen df.query other_query }
  end
  else { df with query = build df.gen df.query other.query }

let join ?(kind = Query.Inner) ~on (other : t) (df : t) =
  combine df other (fun gen l r -> Query.join gen kind on l r)

let cross_join (other : t) (df : t) =
  combine df other (fun gen l r -> Query.product gen l r)

let union (other : t) (df : t) =
  combine df other (fun gen l r -> Query.union gen l r)

let except (other : t) (df : t) =
  combine df other (fun gen l r -> Query.diff gen l r)

(* --- aggregation --- *)

let agg_over_nested fn ~over ~into (df : t) =
  { df with query = Query.agg_tuple df.gen fn ~over ~into df.query }

let group_by attrs aggs (df : t) =
  { df with query = Query.group_agg df.gen attrs aggs df.query }

(* --- execution shortcuts --- *)

let collect (db : Nested.Relation.Db.t) (df : t) : Nested.Relation.t =
  Eval.eval db (plan df)

let show ?(max_rows = 20) (db : Nested.Relation.Db.t) (df : t) : unit =
  let rel = collect db df in
  let rows = Nested.Relation.tuples rel in
  let shown = List.filteri (fun i _ -> i < max_rows) rows in
  List.iter (fun t -> Fmt.pr "%a@." Nested.Value.pp t) shown;
  if List.length rows > max_rows then
    Fmt.pr "... (%d more rows)@." (List.length rows - max_rows)
