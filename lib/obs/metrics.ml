(* Metrics registry: named counters, gauges, and log-scale histograms.

   Counters are [Atomic]s so the engine's per-partition domains can
   increment them concurrently without locks.  Histograms bucket values
   on a log scale (ratio 2^(1/16), ~4.4% per bucket) and report
   p50/p95/max summaries — the same shape of numbers one reads off a
   Spark UI's task-time and shuffle-size distributions. *)

module Counter = struct
  type t = { name : string; cell : int Atomic.t }

  let make name = { name; cell = Atomic.make 0 }
  let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.cell by)
  let value c = Atomic.get c.cell
  let reset c = Atomic.set c.cell 0
  let name c = c.name
end

module Gauge = struct
  type t = { name : string; mutable v : float; lock : Mutex.t }

  let make name = { name; v = 0.0; lock = Mutex.create () }

  let protect g f =
    Mutex.lock g.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock g.lock) f

  let set g x = protect g (fun () -> g.v <- x)
  let add g x = protect g (fun () -> g.v <- g.v +. x)
  let value g = protect g (fun () -> g.v)
  let reset g = set g 0.0
  let name g = g.name
end

module Histogram = struct
  (* Bucket [i >= 1] holds values in [ratio^(i-1), ratio^i); bucket 0
     holds values < 1 (including 0 and negatives, which durations and
     cardinalities never produce but which must not crash). *)
  let ratio = Float.pow 2.0 (1.0 /. 16.0)
  let log_ratio = Float.log ratio
  let n_buckets = 1024

  type t = {
    name : string;
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    lock : Mutex.t;
  }

  let make name =
    {
      name;
      buckets = Array.make n_buckets 0;
      count = 0;
      sum = 0.0;
      min = Float.infinity;
      max = Float.neg_infinity;
      lock = Mutex.create ();
    }

  let protect h f =
    Mutex.lock h.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

  let bucket_of v =
    if v < 1.0 then 0
    else min (n_buckets - 1) (1 + int_of_float (Float.log v /. log_ratio))

  (* Geometric midpoint of a bucket, the value reported for percentiles
     that land in it. *)
  let representative i =
    if i = 0 then 0.0 else Float.pow ratio (float_of_int i -. 0.5)

  let observe h v =
    protect h (fun () ->
        let i = bucket_of v in
        h.buckets.(i) <- h.buckets.(i) + 1;
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.min then h.min <- v;
        if v > h.max then h.max <- v)

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p95 : float;
  }

  let percentile_unlocked (h : t) q =
    if h.count = 0 then 0.0
    else begin
      let rank = Float.to_int (Float.ceil (q *. float_of_int h.count)) in
      let rank = Stdlib.max 1 (Stdlib.min h.count rank) in
      let acc = ref 0 and result = ref h.max in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= rank then begin
               result := representative i;
               raise Exit
             end)
           h.buckets
       with Exit -> ());
      (* clamp the bucket estimate into the observed range *)
      Float.min h.max (Float.max h.min !result)
    end

  let summary h =
    protect h (fun () ->
        if h.count = 0 then
          { count = 0; sum = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0 }
        else
          {
            count = h.count;
            sum = h.sum;
            min = h.min;
            max = h.max;
            p50 = percentile_unlocked h 0.50;
            p95 = percentile_unlocked h 0.95;
          })

  let percentile h q = protect h (fun () -> percentile_unlocked h q)

  (* Upper bound of bucket [i] on the log scale — the `le` edge of the
     Prometheus exposition. *)
  let upper_bound i =
    if i = 0 then 1.0 else Float.pow ratio (float_of_int i)

  (* Non-empty buckets as (le upper bound, cumulative count) pairs, in
     increasing le order — the cumulative form Prometheus histograms
     are exposed in.  The +Inf bucket is the exporter's to add. *)
  let cumulative_buckets h =
    protect h (fun () ->
        let acc = ref 0 and out = ref [] in
        Array.iteri
          (fun i n ->
            if n > 0 then begin
              acc := !acc + n;
              out := (upper_bound i, !acc) :: !out
            end)
          h.buckets;
        List.rev !out)

  let reset h =
    protect h (fun () ->
        Array.fill h.buckets 0 n_buckets 0;
        h.count <- 0;
        h.sum <- 0.0;
        h.min <- Float.infinity;
        h.max <- Float.neg_infinity)

  let name h = h.name
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type t = { tbl : (string, metric) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 32; lock = Mutex.create () }

let default = create ()

let protect r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let kind_error name wanted =
  invalid_arg
    (Printf.sprintf
       "Obs.Metrics: %s already registered with another kind (wanted %s)" name
       wanted)

let counter ?(registry = default) name =
  protect registry (fun () ->
      match Hashtbl.find_opt registry.tbl name with
      | Some (M_counter c) -> c
      | Some _ -> kind_error name "counter"
      | None ->
        let c = Counter.make name in
        Hashtbl.replace registry.tbl name (M_counter c);
        c)

let gauge ?(registry = default) name =
  protect registry (fun () ->
      match Hashtbl.find_opt registry.tbl name with
      | Some (M_gauge g) -> g
      | Some _ -> kind_error name "gauge"
      | None ->
        let g = Gauge.make name in
        Hashtbl.replace registry.tbl name (M_gauge g);
        g)

let histogram ?(registry = default) name =
  protect registry (fun () ->
      match Hashtbl.find_opt registry.tbl name with
      | Some (M_histogram h) -> h
      | Some _ -> kind_error name "histogram"
      | None ->
        let h = Histogram.make name in
        Hashtbl.replace registry.tbl name (M_histogram h);
        h)

let reset r =
  protect r (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> Counter.reset c
          | M_gauge g -> Gauge.reset g
          | M_histogram h -> Histogram.reset h)
        r.tbl)

let clear r = protect r (fun () -> Hashtbl.reset r.tbl)

let metrics r =
  protect r (fun () ->
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold
           (fun k v acc ->
             let v =
               match v with
               | M_counter c -> `Counter c
               | M_gauge g -> `Gauge g
               | M_histogram h -> `Histogram h
             in
             (k, v) :: acc)
           r.tbl []))

(* [reset] under its historical name plus the name tests reach for: one
   call zeroes every registered metric (registrations survive), instead
   of tests chasing individual counters with per-metric resets. *)
let reset_all r = reset r

type snapshot_entry =
  [ `Counter of int | `Gauge of float | `Histogram of Histogram.summary ]

(* A point-in-time copy of every metric's value, sorted by name — what
   the JSON export and test assertions read, so they never hold live
   metric handles across a reset. *)
let snapshot r : (string * snapshot_entry) list =
  List.map
    (fun (name, m) ->
      ( name,
        match m with
        | `Counter c -> `Counter (Counter.value c)
        | `Gauge g -> `Gauge (Gauge.value g)
        | `Histogram h -> `Histogram (Histogram.summary h) ))
    (metrics r)

let pp ppf r =
  let pp_metric ppf (name, m) =
    match m with
    | `Counter c -> Fmt.pf ppf "%-36s %d" name (Counter.value c)
    | `Gauge g -> Fmt.pf ppf "%-36s %g" name (Gauge.value g)
    | `Histogram h ->
      let s = Histogram.summary h in
      Fmt.pf ppf "%-36s count=%d p50=%.3g p95=%.3g max=%.3g" name
        s.Histogram.count s.Histogram.p50 s.Histogram.p95 s.Histogram.max
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_metric) (metrics r)
