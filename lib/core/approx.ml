(* Budget-bounded approximation policy for the explanation pipeline.

   A [config] says what the caller is willing to trade for latency: an
   explicit sampling stride, a top-k cutoff, and/or a wall-clock budget.
   A [t] is the running instance: the config plus the instant the budget
   started burning (re-anchored by the scheduler at admission, so queue
   wait counts against the budget exactly like it counts against the
   cancellation deadline).

   The degradation ladder lives in [decide]: each schema alternative asks
   for a decision right before its tracing phase, and the answer coarsens
   as the budget burns — exact while most of the budget remains, sampled
   tracing once two thirds are gone, sampled + top-k-only MSR in the last
   third.  The budget never hard-stops a run by itself (that is still the
   [Cancel] deadline's job); it only degrades precision, so a budgeted
   run always returns *something* with an honest confidence attached. *)

type config = {
  budget_ms : float option;  (** degrade as this burns; [None] = no ladder *)
  sample_stride : int option;  (** force tracing to sample 1-in-N rows *)
  top_k : int option;  (** keep only the k best-ranked explanations *)
}

let exact = { budget_ms = None; sample_stride = None; top_k = None }

let is_exact c =
  c.budget_ms = None && c.sample_stride = None && c.top_k = None

type t = { cfg : config; mutable started_ns : int }

let start ?from_ns cfg =
  let started_ns =
    match from_ns with Some t -> t | None -> Obs.Clock.now_ns ()
  in
  { cfg; started_ns }

let rebase t ~from_ns = t.started_ns <- from_ns
let config t = t.cfg

let remaining_fraction t =
  match t.cfg.budget_ms with
  | None -> 1.0
  | Some budget when budget <= 0.0 -> 0.0
  | Some budget ->
    let elapsed_ms =
      float_of_int (Obs.Clock.now_ns () - t.started_ns) /. 1e6
    in
    Float.max 0.0 (1.0 -. (elapsed_ms /. budget))

type decision = { stride : int; top_k : int option }

(* The ladder: explicitly requested knobs are a floor, never weakened.
   With no budget the forced knobs pass through unchanged (stride 1 and
   no top-k when nothing was asked for — the byte-identical exact path). *)
let decide t =
  let forced = max 1 (Option.value ~default:1 t.cfg.sample_stride) in
  let k = t.cfg.top_k in
  match t.cfg.budget_ms with
  | None -> { stride = forced; top_k = k }
  | Some _ ->
    let f = remaining_fraction t in
    if f > 0.66 then { stride = forced; top_k = k }
    else if f > 0.33 then { stride = max forced 4; top_k = k }
    else
      {
        stride = max forced 8;
        top_k = (match k with None -> Some 3 | some -> some);
      }

type report = {
  mode : string;  (** "exact" | "sampled" | "top_k" *)
  confidence : float;  (** min over SAs of 1/stride; 1.0 = exact tracing *)
  max_stride : int;
  top_k : int option;
  skipped : int;  (** MSR candidates pruned unevaluated by top-k bounds *)
  budget_ms : float option;
}
