(** Algebra fragments (Section 3.2) and the explanation-expressiveness
    comparison of Table 3.

    SPC covers select-project-join queries, SPC⁺ adds additive union;
    everything else is full NRAB.  Lineage-based explanation formalisms
    can only blame data-pruning operators; the reparameterization-based
    formalism also blames schema-shaping ones. *)

type t = Spc | Spc_plus | Nrab

val to_string : t -> string

(** Fragment an individual operator belongs to. *)
val of_node : Query.node -> t

(** Smallest fragment containing the query. *)
val classify : Query.t -> t

type formalism = Lineage_based | Reparameterization_based

(** The rows of Table 3: operator types that can appear in explanations. *)
val explainable_op_types : formalism -> t -> Query.op_type list

val explainable : formalism -> t -> Query.op_type -> bool
