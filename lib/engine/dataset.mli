(** Partitioned datasets — the engine's unit of distribution.

    A dataset is an array of partitions, each holding tuples already
    expanded to their multiplicities (like rows of a Spark DataFrame). *)

open Nested

type t

(** A spilled partition whose checkpoint file was its {e only} copy (no
    lineage fallback) failed its CRC on restore.  Spill verifies every
    such file at write time, so this means on-disk corruption or an
    external delete after the spill — a hard failure of the query,
    deliberately not {!Fault.Transient} (re-reading the same bad file
    cannot succeed).  Spill mode therefore makes healthy disk a hard
    dependency; barrier checkpoints never raise this (they fall back to
    their recompute closure). *)
exception Spill_lost of string

val of_partitions : Value.t list array -> t

(** Row view of every partition (columnar partitions reconstruct). *)
val partitions : t -> Value.t list array

(** Columnar view of every partition (row partitions build batches). *)
val cpartitions : t -> Columnar.t array

(** Columnar view of one partition — prefer this inside a retry scope:
    a checkpointed or spilled partition performs its disk read here, so
    fetching inside {!Fault.protect} makes the read recoverable. *)
val cpartition : t -> int -> Columnar.t

(** Row view of one partition (same retry-scope guidance as
    {!cpartition}). *)
val partition : t -> int -> Value.t list

val of_cpartitions : Columnar.t array -> t
val partition_count : t -> int
val cardinal : t -> int
val to_list : t -> Value.t list

(** Deterministic, run-stable value hash (partitioning must not depend on
    OCaml's randomized hashing). *)
val value_hash : Value.t -> int

(** Round-robin distribution over [partitions] partitions (≥ 1). *)
val distribute : partitions:int -> Value.t list -> t

(** Hash-repartition by a key — a shuffle.  Also returns the number of
    rows that crossed partitions.

    With [barrier], every output partition is checkpointed to the
    {!Checkpoint} store under that label and becomes a durable recovery
    root: a downstream task fault replays from the checkpoint file
    instead of re-deriving the upstream chain (lineage is truncated at
    the barrier).  A checkpoint write that fails — chaos site
    ["engine.shuffle.write"] or real IO trouble — degrades to the plain
    in-memory partition ([engine.checkpoint.write_failures]). *)
val shuffle_by :
  ?barrier:string -> partitions:int -> (Value.t -> Value.t) -> t -> t * int

(** Vectorized shuffle: [hash_of] yields one destination hash per batch
    row (use {!Columnar.hash_col} over the key columns for parity with
    {!shuffle_by}).  Moved rows travel as contiguous gathered column
    slices; shipped bytes land on [engine.columnar.bytes_moved].
    [barrier] as in {!shuffle_by}. *)
val shuffle_hashed :
  ?barrier:string ->
  partitions:int ->
  (Columnar.t -> int array) ->
  t ->
  t * int

(** Simulate losing partition [i] before a replay: a checkpointed
    partition drops its in-memory cache (the next fetch re-reads the
    recovery root, counted on [engine.recover.from_checkpoint]); an
    in-memory partition can only replay from its source input
    ([engine.recover.from_source]).  Bumps
    [engine.recover.replayed_partitions].  {!map_partitions} calls this
    automatically before every task re-attempt; executors running their
    own {!Fault.protect} scopes (joins) call it from their retry
    hooks. *)
val recover_partition : t -> int -> unit

(** Resident in-memory footprint (cached/columnar partitions exact, row
    partitions estimated; spilled partitions count 0). *)
val memory_bytes : t -> int

(** [spill_over ~watermark d] evicts partitions largest-first until the
    resident footprint fits under [watermark] bytes, writing in-memory
    partitions to the {!Checkpoint} store (checkpointed ones just drop
    their cache).  Spilled partitions transparently re-map on access
    ([engine.spill.restores]).  A plain in-memory partition has no
    lineage fallback, so its spill file is verified (frame + CRC)
    before the resident copy is dropped: a garbled write keeps the
    partition in memory ([engine.checkpoint.write_failures]) — degraded,
    never lost.  A verified file that later fails to read raises
    {!Spill_lost}.  Returns the bytes freed; counters
    [engine.spill.bytes] / [engine.spill.batches]. *)
val spill_over : watermark:int -> t -> int

(** Collapse to a single partition; returns the rows moved. *)
val gather : t -> t * int

(** Transform every partition; with [parallel] the partitions are
    processed concurrently on [pool] (default {!Pool.default} — the
    engine's task parallelism).  [f] must be pure.

    Each partition is a retryable task attempt: under [retry], a run of
    [f] that raises {!Fault.Transient} is recomputed from its input
    partition (exact — the input is immutable and [f] pure) until the
    policy's attempt budget runs out, then {!Fault.Exhausted} propagates
    with the task attributed as ["<label>/p<i>"].  The
    ["engine.partition"] chaos site fires once per attempt inside the
    retry scope.  [on_retry] fires before each re-attempt (for span
    attribution). *)
val map_partitions :
  ?parallel:bool ->
  ?pool:Pool.t ->
  ?retry:Fault.policy ->
  ?label:string ->
  ?on_retry:(partition:int -> attempt:int -> exn -> unit) ->
  (Value.t list -> Value.t list) ->
  t ->
  t

(** Columnar sibling of {!map_partitions}: identical task-attempt
    semantics (chaos site, retries, pool fan-out), batch-in/batch-out —
    no per-row tree materialization on the fast path. *)
val map_cpartitions :
  ?parallel:bool ->
  ?pool:Pool.t ->
  ?retry:Fault.policy ->
  ?label:string ->
  ?on_retry:(partition:int -> attempt:int -> exn -> unit) ->
  (Columnar.t -> Columnar.t) ->
  t ->
  t

(** Columnar when the columnar engine is active (cached arena build of
    the relation, round-robin column slices), row lists under
    [WHYNOT_ROW_ENGINE]. *)
val of_relation : partitions:int -> Relation.t -> t
val to_relation : schema:Vtype.t -> t -> Relation.t
