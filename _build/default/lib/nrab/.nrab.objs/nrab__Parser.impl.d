lib/nrab/parser.ml: Agg Expr Fmt List Nested Query Sexp String Value
