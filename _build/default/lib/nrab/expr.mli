(** Scalar expressions and predicates over tuples.

    Expressions reference top-level attributes of the input tuple(s) and
    appear in selections, join conditions, and computed projection columns
    (e.g. the TPC-H [disc_price ← l_extendedprice × (1 − l_discount)]). *)

open Nested

type t =
  | Const of Value.t
  | Attr of string  (** top-level attribute reference *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

(** Comparison operators of the paper's selection conditions. *)
type cmp = Eq | Neq | Lt | Le | Gt | Ge

type pred =
  | True
  | False
  | Cmp of cmp * t * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | IsNull of t
  | IsNotNull of t
  | Contains of t * string  (** substring test for text filters *)

(** {1 Constructors} *)

val const : Value.t -> t
val attr : string -> t
val int : int -> t
val str : string -> t
val flt : float -> t

(** Infix constructors ([+], [-], [*], [/], [=], [<>], [<], [<=], [>],
    [>=], [&&], [||], [not_]) building expressions and predicates.  Open
    locally when writing queries. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> pred
  val ( <> ) : t -> t -> pred
  val ( < ) : t -> t -> pred
  val ( <= ) : t -> t -> pred
  val ( > ) : t -> t -> pred
  val ( >= ) : t -> t -> pred
  val ( && ) : pred -> pred -> pred
  val ( || ) : pred -> pred -> pred
  val not_ : pred -> pred
end

(** {1 Analysis and rewriting} *)

(** Attributes referenced (with duplicates, in syntactic order). *)
val attrs : t -> string list

val pred_attrs : pred -> string list

(** Substitute attribute references. *)
val subst_attrs : (string -> string) -> t -> t

val subst_pred_attrs : (string -> string) -> pred -> pred

(** Substitute constants (used by the reparameterization search). *)
val subst_consts : (Value.t -> Value.t) -> t -> t

(** {1 Evaluation}

    Arithmetic propagates [Null]; comparisons involving [Null] are false
    (SQL three-valued logic collapsed to two values). *)

exception Eval_error of string

val eval : Value.t -> t -> Value.t

(** Numeric-coercing comparison; [None] when either side is [Null]. *)
val compare_values : Value.t -> Value.t -> int option

val eval_cmp : cmp -> Value.t -> Value.t -> bool
val eval_pred : Value.t -> pred -> bool
val string_contains : needle:string -> string -> bool

(** {1 Printing} *)

val pp_cmp : Format.formatter -> cmp -> unit
val pp : Format.formatter -> t -> unit
val pp_pred : Format.formatter -> pred -> unit
val to_string : t -> string
val pred_to_string : pred -> string
