examples/spark_style_pipeline.ml: Df Expr Fmt Infix List Nested Nrab Query Whynot
