(** Nested instances with placeholders — NIPs (Definition 3) — and NIP
    matching (Definition 4).

    A NIP stands for a *set* of missing answers: {!Any} is the instance
    placeholder [?], and a bag pattern may carry the multiplicity
    placeholder [*] absorbing any number of further elements.
    Additionally, primitive {!Pred} placeholders ([> 0.45]) support the
    aggregate constraints of the paper's TPC-H why-not questions — a
    conservative extension of Definition 3. *)

open Nested
open Nrab

type t =
  | Any  (** the instance placeholder ? *)
  | Prim of Value.t  (** a concrete value (condition 2 of Definition 4) *)
  | Pred of Expr.cmp * Value.t  (** a primitive satisfying [v cmp const] *)
  | Tup of (string * t) list
      (** field constraints; unmentioned fields are unconstrained *)
  | Bag of t list * bool  (** element patterns; [true] iff [*] is present *)

(** {1 Constructors} *)

val any : t
val v : Value.t -> t
val str : string -> t
val int : int -> t
val flt : float -> t
val pred : Expr.cmp -> Value.t -> t
val tup : (string * t) list -> t
val bag : ?star:bool -> t list -> t

(** [{{?, *}}] — at least one element, anything else allowed. *)
val some_element : t

(** {1 Matching} *)

(** [matches v p]: does instance [v] match NIP [p] (Definition 4)?  Bag
    matching solves the multiplicity assignment M exactly, with a small
    max-flow over (distinct element, pattern slot) pairs. *)
val matches : Value.t -> t -> bool

(** Bipartite feasibility flow behind bag matching (condition 4 of
    Definition 4): route pattern-slot demands to instance-element
    supplies along [edge].  Exposed so vectorized matchers can reuse it
    with precomputed edge bits. *)
val bag_flow :
  sources:int array -> sinks:int array -> edge:(int -> int -> bool) -> int

(** {1 Manipulation (used by schema backtracing)} *)

(** Constrain (or add) a field of a tuple pattern. *)
val constrain_field : t -> string -> t -> t

(** Field constraint of a tuple pattern; [Any] when absent. *)
val field : t -> string -> t

val tuple_fields : t -> (string * t) list

(** Well-formedness against a type (Definition 3: "a NIP of type τ"):
    constrained fields must exist with matching types, predicate
    placeholders must sit on comparable primitives. *)
val check : Vtype.t -> t -> (unit, string) result

(** Does the pattern match every instance of its type? *)
val is_trivial : t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
