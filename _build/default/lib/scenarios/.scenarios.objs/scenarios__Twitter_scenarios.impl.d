lib/scenarios/twitter_scenarios.ml: Agg Datagen Expr Nested Nrab Query Scenario Value Whynot
