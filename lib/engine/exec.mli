(** The mini-DISC executor: runs NRAB plans over partitioned datasets.

    Narrow operators (selection, projection, renaming, flattening, tuple
    nesting, per-tuple aggregation) run partition-local; blocking
    operators (joins, relation nesting, group aggregation, deduplication,
    difference) shuffle by key first, as a DISC system would.  Results
    agree with the reference evaluator {!Nrab.Eval} (tested). *)

open Nested
open Nrab

exception Engine_error of string

type config = {
  partitions : int;
  parallel : bool;  (** one domain per partition for partition-local work *)
  retry : Fault.policy;
      (** per-partition task retry budget; {!Fault.no_retry} by default.
          A partition task that raises {!Fault.Transient} is recomputed
          from its (immutable) input partition — Spark's task-retry
          model.  Retried attempts are marked with an [attempt] span
          attribute on the operator's span; exhaustion raises
          {!Fault.Exhausted} attributed as ["op:<symbol>#<id>/p<i>"]. *)
}

val default_config : config

(** Split a join predicate's conjunctive closure into equi-join key
    attribute pairs (left attr, right attr) and the residual predicate
    ([True] when every conjunct is an equi-key comparison).  The
    hash-join kernel indexes the smaller side by key and evaluates only
    the residual on probe candidates. *)
val equi_split :
  string list -> string list -> Expr.pred -> (string * string) list * Expr.pred

(** The key pairs of {!equi_split}; determines whether the join
    hash-partitions or gathers. *)
val equi_keys : string list -> string list -> Expr.pred -> (string * string) list

(** Execute a plan; returns the result relation and execution
    statistics.

    With [?parent], the run is traced: an [engine.run] span is opened
    under the parent, one [op:<symbol>#<id>] child span per operator
    (carrying [input_rows]/[output_rows]/[shuffled_rows] attributes) and
    one [shuffle] child span per shuffle stage (carrying [rows_moved]).
    Without a parent no spans are allocated.  The {!Stats} counters are
    always folded into the {!Obs.Metrics} registry ([?registry],
    defaulting to {!Obs.Metrics.default}). *)
val run :
  ?config:config ->
  ?parent:Obs.Span.t ->
  ?registry:Obs.Metrics.t ->
  Relation.Db.t ->
  Query.t ->
  Relation.t * Stats.t
