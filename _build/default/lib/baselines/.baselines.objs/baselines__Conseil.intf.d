lib/baselines/conseil.mli: Explanation_set Whynot
