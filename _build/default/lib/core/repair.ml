(* Concrete repair suggestions for an explanation.

   An explanation names the operators to fix; this module goes one step
   further and searches for *actual parameter changes* of exactly those
   operators that make the missing answer appear — bridging towards the
   refinement-based explanations the paper contrasts itself with
   (Example 10's discussion).  The search reuses the bounded candidate
   enumeration of the exact algorithm, restricted to the explanation's
   operators, and ranks successful repairs by their true tree-edit-distance
   side effects. *)

open Nested
open Nrab
module Int_set = Opset.Int_set

type suggestion = {
  changes : (int * Query.node) list;  (* per-operator replacement *)
  repaired : Query.t;
  side_effects : int;  (* tree edit distance to the original result *)
}

(* Candidate node replacements for one operator (reusing the exact
   search's pools). *)
let candidates_for ~depth (phi : Question.t) (op : Query.t) : Query.node list =
  let db = phi.Question.db in
  let env =
    List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)
  in
  let fields =
    List.concat_map
      (fun child ->
        match Typecheck.infer_result env child with
        | Ok ty -> Vtype.relation_fields ty
        | Error _ -> [])
      op.Query.children
  in
  let attr_pool a =
    match List.assoc_opt a fields with
    | None -> []
    | Some ty ->
      List.filter_map
        (fun (a', ty') -> if Vtype.equal ty ty' then Some a' else None)
        fields
  in
  let active_domain a =
    List.concat_map
      (fun child ->
        match Eval.eval db child with
        | rel ->
          List.filter_map (fun t -> Value.field a t) (Relation.distinct_tuples rel)
        | exception _ -> [])
      op.Query.children
    |> List.sort_uniq Value.compare
  in
  let const_pool attr_hint (v : Value.t) =
    let domain = match attr_hint with Some a -> active_domain a | None -> [] in
    List.filter
      (fun v' ->
        match v, v' with
        | Value.Int _, Value.Int _
        | Value.Float _, Value.Float _
        | Value.String _, Value.String _
        | Value.Bool _, Value.Bool _ ->
          true
        | _ -> false)
      domain
  in
  let step node = Reparam.node_variants ~attr_pool ~const_pool node in
  let rec go d frontier acc =
    if d = 0 then acc
    else
      let next = List.sort_uniq compare (List.concat_map step frontier) in
      let fresh =
        List.filter (fun n -> n <> op.Query.node && not (List.mem n acc)) next
      in
      go (d - 1) fresh (acc @ fresh)
  in
  go depth [ op.Query.node ] []

(* Suggest concrete repairs implementing one explanation: combinations of
   candidate parameter changes over exactly the explanation's operators
   that make the missing answer appear. *)
let suggest ?(depth = 2) ?(max_suggestions = 5) (phi : Question.t)
    (expl : Explanation.t) : suggestion list =
  let q = phi.Question.query in
  let env =
    List.map
      (fun (n, r) -> (n, Relation.schema r))
      (Relation.Db.tables phi.Question.db)
  in
  let ops =
    List.filter
      (fun (op : Query.t) -> Int_set.mem op.Query.id (Explanation.ops expl))
      (Query.operators q)
  in
  let per_op =
    List.map (fun op -> (op.Query.id, candidates_for ~depth phi op)) ops
  in
  (* every operator of the explanation must change *)
  let rec combos = function
    | [] -> [ [] ]
    | (id, cs) :: rest ->
      let tails = combos rest in
      List.concat_map (fun c -> List.map (fun tl -> (id, c) :: tl) tails) cs
  in
  let original = Relation.data (Question.original_result phi) in
  let successful =
    List.filter_map
      (fun changes ->
        let repaired = Reparam.apply q changes in
        if not (Typecheck.well_typed env repaired) then None
        else
          match Question.is_successful phi repaired with
          | true ->
            let result = Eval.eval phi.Question.db repaired in
            Some
              {
                changes;
                repaired;
                side_effects = Ted.distance original (Relation.data result);
              }
          | false -> None
          | exception _ -> None)
      (combos per_op)
  in
  let ranked =
    List.sort (fun a b -> compare a.side_effects b.side_effects) successful
  in
  List.filteri (fun i _ -> i < max_suggestions) ranked

let pp_suggestion (q : Query.t) ppf (s : suggestion) =
  let pp_change ppf (id, node) =
    let old =
      match Query.find_op q id with
      | Some op -> Fmt.str "%a" Query.pp_node op.Query.node
      | None -> "?"
    in
    Fmt.pf ppf "%s^%d → %a" old id Query.pp_node node
  in
  Fmt.pf ppf "@[<v 2>repair (side effects %d):@,%a@]" s.side_effects
    (Fmt.list ~sep:Fmt.cut pp_change)
    s.changes
