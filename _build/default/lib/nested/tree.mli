(** Ordered-tree representation of nested values (Figure 2 of the paper).

    Used by the tree edit distance that quantifies reparameterization side
    effects.  Bags are serialized in canonical element order, which makes
    the ordered distance permutation-invariant for bag elements. *)

type t = { label : string; children : t list }

val node : string -> t list -> t
val leaf : string -> t

(** Number of nodes. *)
val size : t -> int

(** Canonical tree of a value: tuples become ⟨⟩ nodes with one child per
    field, bags become {{}} nodes with one child per element occurrence
    (multiplicities expanded), primitives become leaves. *)
val of_value : Value.t -> t

(** Post-order traversal as (label, leftmost-leaf index) pairs — the input
    shape required by the Zhang–Shasha algorithm. *)
val postorder : t -> (string * int) array

val pp : Format.formatter -> t -> unit
