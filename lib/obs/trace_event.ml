(* Chrome trace_event exporter.

   Serializes span trees into the JSON Array Format understood by
   chrome://tracing and Perfetto: one complete ("ph":"X") event per
   finished span, with microsecond timestamps relative to the earliest
   root and the span's attributes as "args".  Events are sorted by start
   timestamp (stable, so pre-order is kept among equal stamps): with
   concurrent spans — parallel schema alternatives overlap — pre-order
   alone is not chronological.

   The JSON values are built with [Nested.Json] — the same codec the
   engine's databases round-trip through — so traces are parseable by
   the repo's own tooling. *)

open Nested

let attr_to_json : Span.value -> Json.json = function
  | Span.Int i -> Json.J_int i
  | Span.Float f -> Json.J_float f
  | Span.Bool b -> Json.J_bool b
  | Span.String s -> Json.J_string s

let event ~origin_ns ~pid (sp : Span.t) : Json.json =
  let dur_us = Clock.ns_to_us (Span.duration_ns sp) in
  let ts_us = Clock.ns_to_us (Span.start_ns sp - origin_ns) in
  let base =
    [
      ("name", Json.J_string (Span.name sp));
      ("cat", Json.J_string "span");
      ("ph", Json.J_string "X");
      ("ts", Json.J_float ts_us);
      ("dur", Json.J_float dur_us);
      ("pid", Json.J_int pid);
      ("tid", Json.J_int 1);
    ]
  in
  let args =
    List.map (fun (k, v) -> (k, attr_to_json v)) (Span.attrs sp)
  in
  let args = ("span_id", Json.J_int (Span.id sp)) :: args in
  let args =
    match Span.parent_id sp with
    | Some p -> args @ [ ("parent_id", Json.J_int p) ]
    | None -> args
  in
  Json.J_object (base @ [ ("args", Json.J_object args) ])

let to_json ?(pid = 1) (roots : Span.t list) : Json.json =
  let origin_ns =
    List.fold_left
      (fun acc sp -> min acc (Span.start_ns sp))
      max_int roots
  in
  let origin_ns = if roots = [] then 0 else origin_ns in
  let spans =
    List.concat_map
      (fun root -> List.rev (Span.fold (fun acc sp -> sp :: acc) [] root))
      roots
  in
  let spans =
    List.stable_sort
      (fun a b -> compare (Span.start_ns a) (Span.start_ns b))
      spans
  in
  let events = List.map (event ~origin_ns ~pid) spans in
  Json.J_object
    [
      ("traceEvents", Json.J_array events);
      ("displayTimeUnit", Json.J_string "ms");
    ]

let to_string ?pid roots = Json.to_string (to_json ?pid roots)

let write_file path (roots : Span.t list) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string roots);
      output_char oc '\n')
