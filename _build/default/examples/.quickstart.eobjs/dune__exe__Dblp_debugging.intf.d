examples/dblp_debugging.mli:
