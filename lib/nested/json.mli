(** JSON (de)serialization for nested values, schemas, relations, and
    databases — the interchange format DISC systems store nested data in.

    Self-contained (no external dependency).  JSON arrays decode to bags,
    objects to tuples, [null] to ⊥; multiplicities are structural
    (repeated array elements).  Decoding is schema-directed, which
    disambiguates ints from floats and fixes tuple field order. *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_array of json list
  | J_object of (string * json) list

exception Parse_error of string

(** {1 JSON text} *)

val pp : Format.formatter -> json -> unit
val to_string : json -> string

(** Single-line rendering (no layout-dependent newlines) — for
    line-delimited protocols. *)
val to_line : json -> string

(** Raises {!Parse_error}. *)
val of_string : string -> json

(** {1 Values} *)

val value_to_json : Value.t -> json

(** Schema-directed decoding.  Raises {!Parse_error} on mismatches. *)
val value_of_json : Vtype.t -> json -> Value.t

(** {1 Schemas}

    Primitives serialize as ["bool"|"int"|"float"|"string"], tuples as
    objects, bags as single-element arrays. *)

val type_to_json : Vtype.t -> json
val type_of_json : json -> Vtype.t

(** {1 Relations and databases} *)

val relation_to_json : Relation.t -> json
val relation_of_json : json -> Relation.t
val db_to_json : Relation.Db.t -> json
val db_of_json : json -> Relation.Db.t
val db_to_string : Relation.Db.t -> string
val db_of_string : string -> Relation.Db.t
