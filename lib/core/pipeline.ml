(* Algorithm 1: the four-step heuristic why-not pipeline.

     1. schema backtracing          (Backtrace)
     2. schema alternatives         (Alternatives)
     3. data tracing                (Tracing)
     4. approximate MSRs            (Msr)

   [explain ~use_sas:false] is the paper's RPnoSA configuration (only the
   original schema alternative); [explain] with alternatives is RP. *)

open Nested
open Nrab

type result = {
  question : Question.t;
  sas : Alternatives.sa list;
  explanations : Explanation.t list;
  span : Obs.Span.t;
}

let schema_env (db : Relation.Db.t) : Typecheck.env =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

let phases = [ "backtrace"; "alternatives"; "tracing"; "msr" ]

let phase_durations_ms_of_span span =
  List.map (fun p -> (p, Obs.Span.sum_duration_ms_named p span)) phases

let explain ?(use_sas = true) ?(max_sas = 16) ?(revalidate = true)
    ?(alternatives : Alternatives.alternatives = []) ?parent
    (phi : Question.t) : result =
  let root = Obs.Span.start ?parent "pipeline.explain" in
  (* Phase spans are tiled wall-to-wall: each starts at the previous
     one's end, so span bookkeeping (and GC pauses hitting it) is
     charged to a phase rather than falling into gaps — the four phase
     totals account for ≈ all of the root span. *)
  let cursor = ref (Obs.Span.start_ns root) in
  let phase parent name f =
    let sp = Obs.Span.start ~parent ~at:!cursor name in
    Fun.protect
      ~finally:(fun () ->
        cursor := Obs.Clock.now_ns ();
        Obs.Span.finish ~at:!cursor sp)
      (fun () -> f sp)
  in
  let q = phi.Question.query in
  (* step 2 (schema alternatives); step 1 (backtracing) runs per SA since
     the NIPs depend on the substituted attributes *)
  let env, sas =
    phase root "alternatives" (fun sp ->
        let env = schema_env phi.Question.db in
        let sas =
          if use_sas then Alternatives.enumerate ~max_sas ~env q alternatives
          else
            [
              {
                Alternatives.index = 0;
                query = q;
                changed_ops = Msr.Int_set.empty;
                description = "original";
              };
            ]
        in
        Obs.Span.set_int sp "sas" (List.length sas);
        (env, sas))
  in
  (* ⟦Q⟧_D, the basis of the side-effect bounds, is charged to the MSR
     phase. *)
  let bi =
    phase root "msr" (fun sp ->
        let original_result = Relation.tuples (Question.original_result phi) in
        Obs.Span.set_int sp "original_result_rows"
          (List.length original_result);
        { Msr.original_result })
  in
  let explanations =
    List.concat_map
      (fun (sa : Alternatives.sa) ->
        phase root
          (Fmt.str "sa:S%d" (sa.Alternatives.index + 1))
          (fun sasp ->
            let bt =
              phase sasp "backtrace" (fun _ ->
                  Backtrace.run ~env sa.Alternatives.query phi.Question.missing)
            in
            (* steps 3 and 4 *)
            let trace =
              phase sasp "tracing" (fun _ ->
                  Tracing.run ~revalidate ~env phi.Question.db sa bt)
            in
            phase sasp "msr" (fun msp ->
                let es = Msr.from_trace ~bi ~q trace in
                Obs.Span.set_int msp "candidates" (List.length es);
                es)))
      sas
  in
  let explanations =
    phase root "msr" (fun _ ->
        Explanation.rank (Explanation.prune_dominated explanations))
  in
  Obs.Span.set_int root "sas" (List.length sas);
  Obs.Span.set_int root "explanations" (List.length explanations);
  Obs.Span.finish root;
  List.iter
    (fun (p, ms) ->
      Obs.Metrics.Histogram.observe
        (Obs.Metrics.histogram ("pipeline.phase." ^ p ^ "_ms"))
        ms)
    (phase_durations_ms_of_span root);
  Obs.Metrics.Counter.incr (Obs.Metrics.counter "pipeline.explains");
  Obs.Metrics.Counter.incr ~by:(List.length sas)
    (Obs.Metrics.counter "pipeline.sas");
  Obs.Metrics.Counter.incr
    ~by:(List.length explanations)
    (Obs.Metrics.counter "pipeline.explanations");
  { question = phi; sas; explanations; span = root }

(* Total time per algorithm phase (summed across schema alternatives). *)
let phase_durations_ms (r : result) = phase_durations_ms_of_span r.span

(* Convenience: explanation op-id sets in rank order. *)
let explanation_sets (r : result) : int list list =
  List.map Explanation.op_list r.explanations

let pp_result ppf (r : result) =
  let q = r.question.Question.query in
  Fmt.pf ppf "@[<v>%d schema alternative(s):@,%a@,explanations:@,%a@]"
    (List.length r.sas)
    (Fmt.list ~sep:Fmt.cut (fun ppf (sa : Alternatives.sa) ->
         Fmt.pf ppf "  S%d: %s" (sa.Alternatives.index + 1)
           sa.Alternatives.description))
    r.sas
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "  %a" (Explanation.pp_with_query q) e))
    r.explanations
