(* Synthetic Twitter-like data for scenarios T1–T4 and T_ASD.

   Reproduces the structural quirks the paper's Twitter scenarios rely on:
   - media URLs living in [extended_entities] while [entities.media] is
     empty (T1, T3);
   - the tweet's [place] country differing from the user's location-based
     country (T2, T4) — the user location is normalized to a record of the
     same shape as [place], which is how our loader would materialize the
     free-text `user.location` field;
   - retweet/quote ambiguity: [retweeted_status] and [quoted_status] have
     identical shapes, one of them null (T_ASD). *)

open Nested

let str s = Value.String s
let int i = Value.Int i
let tup fields = Value.Tuple fields
let bag = Value.bag_of_list

let countries = [ "US"; "UK"; "FR"; "DE"; "BR"; "JP"; "KR" ]
let players = [ "Jordan"; "LeBron"; "Curry"; "Durant" ]

let user_names =
  [ "hoops4life"; "dataqueen"; "nightowl"; "skywalker"; "quietstorm";
    "pixelpusher"; "marathoner"; "catlady"; "oldschool"; "zenmaster" ]

(* --- T1 / T3: tweets with entities and extended entities ------------------ *)

let media_schema = Vtype.relation [ ("murl", Vtype.TString) ]

let tweets_media_schema =
  Vtype.relation
    [
      ("tuser", Vtype.TString);
      ("text", Vtype.TString);
      ("entities", Vtype.TTuple [ ("media", media_schema) ]);
      ("extended_entities", Vtype.TTuple [ ("media", media_schema) ]);
    ]

let t1_target_text = "LeBron with the poster dunk tonight"
let t1_target_url = "https://t.co/lebron-dunk.mp4"
let t3_target_user = "hoops4life"
let t3_target_url = "https://t.co/hoops-clip.mp4"

let mentions_schema = Vtype.relation [ ("mentioned", Vtype.TString) ]

let gen_tweets_media g ~scale =
  let n = 60 * scale in
  let media urls = tup [ ("media", bag (List.map (fun u -> tup [ ("murl", str u) ]) urls)) ] in
  let tweet ~user ~text ~entities_media ~extended_media =
    tup
      [
        ("tuser", str user);
        ("text", str text);
        ("entities", media entities_media);
        ("extended_entities", media extended_media);
      ]
  in
  let fillers =
    List.init n (fun i ->
        let player = Prng.pick g players in
        let url = Fmt.str "https://t.co/clip-%d.mp4" i in
        let has_inline_media = Prng.bool g ~p:0.5 in
        tweet
          ~user:(Prng.pick g user_names)
          ~text:(Fmt.str "%s highlights part %d" player i)
          ~entities_media:(if has_inline_media then [ url ] else [])
          ~extended_media:[ url ])
  in
  (* T1 target: a LeBron tweet whose media URL only exists in
     extended_entities *)
  let t1_target =
    tweet ~user:"nba_fan" ~text:t1_target_text ~entities_media:[]
      ~extended_media:[ t1_target_url ]
  in
  (* T3 target: a mentioned user whose own tweet has the same quirk *)
  let t3_target =
    tweet ~user:t3_target_user ~text:"my new highlight reel" ~entities_media:[]
      ~extended_media:[ t3_target_url ]
  in
  let mentions =
    List.map
      (fun u -> tup [ ("mentioned", str u) ])
      (t3_target_user :: Prng.sample g (10 * scale) user_names)
  in
  ( Relation.of_tuples ~schema:tweets_media_schema (t1_target :: t3_target :: fillers),
    Relation.of_tuples ~schema:mentions_schema mentions )

(* --- T2 / T4: tweets with place and normalized user location -------------- *)

let loc_schema = Vtype.TTuple [ ("country", Vtype.TString) ]

let tweets_geo_schema =
  Vtype.relation
    [
      ("guser", Vtype.TString);
      ("gtext", Vtype.TString);
      ("place", loc_schema);
      ("userloc", loc_schema);
      ("hashtags", Vtype.relation [ ("tag", Vtype.TString) ]);
    ]

let t2_target_user = "btsarmy_sarah"
let t4_target_tag = "#ChelseaFC"

let gen_tweets_geo g ~scale =
  let n = 60 * scale in
  let loc country = tup [ ("country", country) ] in
  let tweet ~user ~text ~place ~userloc ~tags =
    tup
      [
        ("guser", str user);
        ("gtext", str text);
        ("place", loc place);
        ("userloc", loc userloc);
        ("hashtags", bag (List.map (fun t -> tup [ ("tag", str t) ]) tags));
      ]
  in
  let fillers =
    List.init n (fun i ->
        let c = str (Prng.pick g countries) in
        tweet
          ~user:(Prng.pick g user_names)
          ~text:
            (Fmt.str "%s stuff %d"
               (Prng.pick g [ "BTS"; "UEFA"; "random"; "coffee" ])
               i)
          ~place:c ~userloc:c
          ~tags:(Prng.sample g (Prng.range g ~lo:0 ~hi:2) [ "#kpop"; "#UCL"; "#food" ]))
  in
  (* T2 target: a US fan whose tweets carry no / foreign place data *)
  let t2_targets =
    [
      tweet ~user:t2_target_user ~text:"BTS concert was unreal"
        ~place:Value.Null ~userloc:(str "US") ~tags:[ "#kpop" ];
      tweet ~user:t2_target_user ~text:"airport coffee again"
        ~place:(str "KR") ~userloc:(str "JP") ~tags:[];
    ]
  in
  (* T4 targets: #ChelseaFC tweets; countries reachable only via userloc or
     via a tweet whose text lacks "UEFA" *)
  let t4_targets =
    [
      tweet ~user:"blues_fan" ~text:"UEFA final here we go"
        ~place:Value.Null ~userloc:(str "UK") ~tags:[ t4_target_tag ];
      tweet ~user:"paris_blue" ~text:"match day"
        ~place:(str "FR") ~userloc:(str "FR") ~tags:[ t4_target_tag ];
    ]
  in
  Relation.of_tuples ~schema:tweets_geo_schema (t2_targets @ t4_targets @ fillers)

(* --- T_ASD: retweets vs quotes -------------------------------------------- *)

let status_schema =
  Vtype.TTuple [ ("rid", Vtype.TString); ("rcount", Vtype.TInt) ]

let tweets_asd_schema =
  Vtype.relation
    [
      ("tid", Vtype.TString);
      ("retweeted_status", status_schema);
      ("quoted_status", status_schema);
    ]

let tasd_target_rid = "famous-755371"

let gen_tweets_asd g ~scale =
  let n = 50 * scale in
  let status rid rcount = tup [ ("rid", str rid); ("rcount", rcount) ] in
  let tweet ~tid ~retweeted ~quoted =
    tup [ ("tid", str tid); ("retweeted_status", retweeted); ("quoted_status", quoted) ]
  in
  let fillers =
    List.init n (fun i ->
        let is_retweet = Prng.bool g ~p:0.6 in
        let s = status (Fmt.str "status-%d" i) (int (Prng.int g 10000)) in
        tweet
          ~tid:(Fmt.str "tweet-%d" i)
          ~retweeted:(if is_retweet then s else Value.Null)
          ~quoted:(if is_retweet then Value.Null else s))
  in
  let targets =
    [
      (* the famous retweet: only present as retweeted_status *)
      tweet ~tid:"tweet-target-a"
        ~retweeted:(status tasd_target_rid (int 50000))
        ~quoted:Value.Null;
      (* a second retweet of it with a null count — exercises the filter *)
      tweet ~tid:"tweet-target-b"
        ~retweeted:(status tasd_target_rid Value.Null)
        ~quoted:Value.Null;
    ]
  in
  Relation.of_tuples ~schema:tweets_asd_schema (targets @ fillers)

(* --- Assembled database ---------------------------------------------------- *)

let db ?(seed = 7) ~scale () : Relation.Db.t =
  let g = Prng.create ~seed in
  let tweets_media, mentions = gen_tweets_media g ~scale in
  let tweets_geo = gen_tweets_geo g ~scale in
  let tweets_asd = gen_tweets_asd g ~scale in
  Relation.Db.of_list
    [
      ("tweets_media", tweets_media);
      ("mentions", mentions);
      ("tweets_geo", tweets_geo);
      ("tweets_asd", tweets_asd);
    ]
