(** Stage-level checkpoint store: durable {!Columnar.t} batches on disk.

    Post-shuffle partitions written through this module become {e
    recovery roots}: a task fault downstream of a checkpointed shuffle
    replays from the checkpoint file instead of re-deriving the whole
    upstream operator chain, and large intermediates can spill here and
    be re-mapped on demand when a memory watermark is set.

    Files use a versioned binary codec (magic ["WNCK"], version byte,
    payload length, CRC-32 of the payload).  Dict codes are
    process-local, so string columns serialize their strings and
    re-intern on read.  Writes are crash-safe: the frame goes to a
    [.tmp] sibling first and is renamed into place, so a torn write can
    never leave a plausible-looking partial file under the final name —
    and if one is garbled anyway, the CRC rejects it ({!Corrupt}) and
    recovery falls back to recomputation.

    All checkpoints of one process live in a single per-run directory
    (created lazily under [config.dir], or the system temp dir), swept
    by {!sweep} — called from catalog eviction, server shutdown, and an
    [at_exit] hook — so no files leak.  In-flight executions pin the
    directory ({!retain}/{!release}); a sweep that arrives while any
    pin is held is deferred to the last release, so spilled partitions
    whose only copy is on disk are never deleted from under a live
    run. *)

(** {1 Configuration}

    The engine reads the ambient process-global config rather than
    threading a parameter through every operator: [None] (the default)
    turns the whole layer off, so existing runs are unaffected. *)

type config = {
  dir : string option;  (** base directory; system temp dir if [None] *)
  checkpoint_shuffles : bool;
      (** make post-shuffle partitions durable recovery roots *)
  max_memory_bytes : int option;
      (** spill watermark for intermediates ([None] = never spill) *)
}

val config :
  ?dir:string ->
  ?checkpoint_shuffles:bool ->
  ?max_memory_mb:int ->
  unit ->
  config

(** The ambient config.  Initialized from [WHYNOT_CHECKPOINT_DIR],
    [WHYNOT_CHECKPOINT_SHUFFLES] and [WHYNOT_MAX_MEMORY_MB] when any is
    set; [None] otherwise. *)
val active : unit -> config option

val set_active : config option -> unit

(** Run [f] with the ambient config swapped to [c], restoring the
    previous value afterwards (also on exceptions). *)
val with_config : config option -> (unit -> 'a) -> 'a

(** {1 Codec}

    Exposed separately from file IO so property tests can round-trip
    and corrupt payloads without touching the filesystem. *)

(** Raised on bad magic, unsupported version, truncation, CRC mismatch,
    or a malformed payload.  Callers with a recompute closure (barrier
    checkpoints) swallow it and fall back to lineage; for a spilled
    partition whose file is the only copy there is no fallback — the
    file is {!verify}-checked at spill time, so a later [Corrupt]
    means on-disk corruption and surfaces as
    [Dataset.Spill_lost]. *)
exception Corrupt of string

val encode : Columnar.t -> string

(** Inverse of {!encode} on the raw payload (no frame); raises
    {!Corrupt} on malformed input. *)
val decode : string -> Columnar.t

(** [frame payload] prepends the magic/version/length/CRC header. *)
val frame : string -> string

(** Validates the header + CRC and returns the payload. *)
val unframe : string -> string

(** {1 Store} *)

(** A fresh file path inside the per-run directory (created on first
    use, with an [at_exit] {!sweep} registered).  [label] is
    sanitized into the file name for debuggability. *)
val fresh_path : label:string -> string

(** Write one batch crash-safely (tmp + rename).  Returns the framed
    size in bytes.  Fires the ["engine.checkpoint.io"] transform site
    on the framed content, so chaos tests can tear the file after the
    CRC is computed.  Counters: [engine.checkpoint.writes] /
    [engine.checkpoint.bytes]. *)
val write : path:string -> Columnar.t -> int

(** Read one batch back; raises {!Corrupt} on a missing, torn, or
    garbled file (counter [engine.checkpoint.corrupt]; successful reads
    bump [engine.checkpoint.reads]).  Fires ["engine.checkpoint.io"]. *)
val read : path:string -> Columnar.t

(** [verify ~path] is [true] iff the file exists and its frame + CRC
    check out.  A pure durability probe: fires no fault site and bumps
    no counters, so spill can confirm a sole-copy file actually made it
    to disk before dropping the resident data. *)
val verify : path:string -> bool

(** The per-run directory, if it has been created and not yet swept. *)
val run_dir : unit -> string option

(** Remove the per-run directory and everything in it.  Idempotent; a
    later {!fresh_path} starts a fresh directory.  While any
    {!retain} pin is held the removal is deferred to the last
    {!release} — the files may be the only copy of a live run's
    spilled partitions. *)
val sweep : unit -> unit

(** Pin the run directory: a {!sweep} arriving while pinned is
    deferred.  {!Exec.run} pins for its whole duration. *)
val retain : unit -> unit

(** Drop one pin; the last release performs a deferred {!sweep}. *)
val release : unit -> unit

(** [with_retained f] runs [f] between {!retain} and {!release} (also
    on exceptions). *)
val with_retained : (unit -> 'a) -> 'a
