(** Metrics registry — named counters, gauges, and log-scale histograms
    with p50/p95/max summaries.

    Counters are atomic (safe to increment from the engine's
    per-partition domains); gauges and histograms are mutex-protected.
    Registries are find-or-create by name: asking twice for the same
    name returns the same metric, asking for an existing name with a
    different kind raises [Invalid_argument]. *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
  val name : t -> string
end

module Histogram : sig
  type t

  (** Bucket ratio 2^(1/16): percentile estimates carry ≤ ~4.4%%
      relative bucket error (then clamped to the observed min/max). *)
  val observe : t -> float -> unit

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p95 : float;
  }

  val summary : t -> summary

  (** [percentile h q] for [q] in [0,1]. *)
  val percentile : t -> float -> float

  (** Non-empty buckets as [(le, cumulative_count)] pairs in increasing
      [le] order — the cumulative form of the Prometheus exposition
      (the [+Inf] bucket is the exporter's to add). *)
  val cumulative_buckets : t -> (float * int) list

  (** Zero counts, sum, and the observed min/max (so post-reset
      percentile clamping never uses stale bounds). *)
  val reset : t -> unit

  val name : t -> string
end

type t

val create : unit -> t

(** The process-wide registry the engine and pipeline record into when
    no explicit registry is passed. *)
val default : t

val counter : ?registry:t -> string -> Counter.t
val gauge : ?registry:t -> string -> Gauge.t
val histogram : ?registry:t -> string -> Histogram.t

(** Zero every metric, keeping registrations. *)
val reset : t -> unit

(** Synonym of {!reset}, named for what it does: one call zeroes the
    whole registry — use this in tests instead of chasing individual
    metrics with per-metric resets. *)
val reset_all : t -> unit

(** Drop all registrations. *)
val clear : t -> unit

type snapshot_entry =
  [ `Counter of int | `Gauge of float | `Histogram of Histogram.summary ]

(** A point-in-time copy of every metric's value, sorted by name. *)
val snapshot : t -> (string * snapshot_entry) list

(** All metrics, sorted by name. *)
val metrics :
  t ->
  (string
  * [ `Counter of Counter.t | `Gauge of Gauge.t | `Histogram of Histogram.t ])
  list

val pp : Format.formatter -> t -> unit
