(* Quickstart: the paper's running example, end to end.

   We build the person table of Figure 1a, the query of Figure 1c, ask
   "why is NY not in the result?" and compute query-based explanations.

     dune exec examples/quickstart.exe *)

open Nested
open Nrab

let () =
  (* 1. Define the nested schema: persons with two address relations. *)
  let address = Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ] in
  let person_schema =
    Vtype.relation
      [ ("name", Vtype.TString); ("address1", address); ("address2", address) ]
  in

  (* 2. Build the data of Figure 1a. *)
  let addr city year =
    Value.Tuple [ ("city", Value.String city); ("year", Value.Int year) ]
  in
  let person name a1 a2 =
    Value.Tuple
      [
        ("name", Value.String name);
        ("address1", Value.bag_of_list a1);
        ("address2", Value.bag_of_list a2);
      ]
  in
  let db =
    Relation.Db.of_list
      [
        ( "person",
          Relation.of_tuples ~schema:person_schema
            [
              person "Peter"
                [ addr "NY" 2010; addr "LA" 2019; addr "LV" 2017 ]
                [ addr "LA" 2010; addr "SF" 2018 ];
              person "Sue"
                [ addr "LA" 2019; addr "NY" 2018 ]
                [ addr "LA" 2019; addr "NY" 2018 ];
            ] );
      ]
  in

  (* 3. The query of Figure 1c: cities that are the workplace of at least
     one person since 2019, with the persons working there.
       N^R_{name→nList}(π_{name,city}(σ_{year≥2019}(F^I_{address2}(person)))) *)
  let g = Query.Gen.create () in
  let query =
    Query.nest_rel g [ "name" ] ~into:"nList"
      (Query.project_attrs g [ "name"; "city" ]
         (Query.select g
            (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
            (Query.flatten_inner g "address2" (Query.table g "person"))))
  in
  Fmt.pr "query:   %a@." Query.pp query;

  (* 4. Run it — the result of Figure 1b: only LA qualifies. *)
  let result = Eval.eval db query in
  Fmt.pr "result:  %a@." Value.pp (Relation.data result);

  (* 5. Ask the why-not question: why is there no NY tuple (with at least
     one person)?  ⟨city: NY, nList: {{?, *}}⟩ *)
  let missing =
    Whynot.Nip.tup
      [ ("city", Whynot.Nip.str "NY"); ("nList", Whynot.Nip.some_element) ]
  in
  let phi = Whynot.Question.make ~query ~db ~missing in
  Fmt.pr "why-not: %a@." Whynot.Nip.pp missing;
  assert (Whynot.Question.is_proper phi);

  (* 6. Compute explanations.  The attribute alternatives say that
     address1 and address2 are plausibly interchangeable. *)
  let result =
    Whynot.Pipeline.explain
      ~alternatives:[ ("person", [ [ "address2" ]; [ "address1" ] ]) ]
      phi
  in
  Fmt.pr "@.%a@." Whynot.Pipeline.pp_result result;

  (* 7. The two explanations of Example 10: fix the selection ({σ}), or
     flatten address1 instead and fix the selection ({F, σ}). *)
  match Whynot.Pipeline.explanation_sets result with
  | [ [ sigma ]; pair ] ->
    Fmt.pr "@.=> change σ^%d alone, or the pair {%s}@." sigma
      (String.concat ", " (List.map string_of_int pair))
  | _ -> Fmt.pr "unexpected explanation structure@."
