type tok =
  | Ident of string
  | Kw of string
  | Int of int
  | Float of float
  | Str of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

type token = { tok : tok; left : int; right : int }

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "NEST"; "INTO";
    "TUPLE"; "JOIN"; "ON"; "INNER"; "LEFT"; "RIGHT"; "FULL"; "OUTER";
    "UNION"; "EXCEPT"; "ALL"; "WITH"; "AS"; "CASE"; "WHEN"; "THEN"; "ELSE";
    "END"; "AND"; "OR"; "NOT"; "NULL"; "IS"; "TRUE"; "FALSE"; "FLATTEN";
    "UNNEST"; "RENAME"; "CONTAINS";
  ]

let describe = function
  | Ident s -> Fmt.str "identifier %S" s
  | Kw s -> Fmt.str "keyword %s" s
  | Int i -> Fmt.str "integer %d" i
  | Float f -> Fmt.str "float %g" f
  | Str s -> Fmt.str "string '%s'" s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Star -> "'*'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Slash -> "'/'"
  | Eq -> "'='"
  | Neq -> "'!='"
  | Lt -> "'<'"
  | Le -> "'<='"
  | Gt -> "'>'"
  | Ge -> "'>='"
  | Eof -> "end of input"

exception Lex_error of Diagnostic.t

let err ~left ~right fmt =
  Fmt.kstr
    (fun message ->
      raise
        (Lex_error
           (Diagnostic.make ~span:{ Diagnostic.left; right } `Lex message)))
    fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize source =
  let n = String.length source in
  let toks = ref [] in
  let emit tok left right = toks := { tok; left; right } :: !toks in
  let i = ref 0 in
  try
    while !i < n do
      let c = source.[!i] in
      let start = !i in
      if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
      else if c = '-' && !i + 1 < n && source.[!i + 1] = '-' then begin
        (* line comment *)
        while !i < n && source.[!i] <> '\n' do
          incr i
        done
      end
      else if is_ident_start c then begin
        while !i < n && is_ident_char source.[!i] do
          incr i
        done;
        let word = String.sub source start (!i - start) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (Kw upper) start !i
        else emit (Ident word) start !i
      end
      else if is_digit c then begin
        while !i < n && is_digit source.[!i] do
          incr i
        done;
        let is_float = ref false in
        if !i < n && source.[!i] = '.' then begin
          is_float := true;
          incr i;
          while !i < n && is_digit source.[!i] do
            incr i
          done
        end;
        if !i < n && (source.[!i] = 'e' || source.[!i] = 'E') then begin
          let j = !i + 1 in
          let j = if j < n && (source.[j] = '+' || source.[j] = '-') then j + 1 else j in
          if j < n && is_digit source.[j] then begin
            is_float := true;
            i := j;
            while !i < n && is_digit source.[!i] do
              incr i
            done
          end
        end;
        (* Letters or underscores glued to the digits — OCaml-isms like
           0x1F, 0b101, 1_000, or a typo like 12abc — would otherwise
           silently lex as a number followed by an identifier.  Consume
           the whole blob and reject it as one bad literal. *)
        if !i < n && is_ident_char source.[!i] then begin
          while !i < n && is_ident_char source.[!i] do
            incr i
          done;
          err ~left:start ~right:!i "malformed number %S"
            (String.sub source start (!i - start))
        end;
        let text = String.sub source start (!i - start) in
        if !is_float then
          match float_of_string_opt text with
          | Some f -> emit (Float f) start !i
          | None -> err ~left:start ~right:!i "malformed number %S" text
        else begin
          match int_of_string_opt text with
          | Some v -> emit (Int v) start !i
          | None -> err ~left:start ~right:!i "integer literal %S out of range" text
        end
      end
      else if c = '\'' then begin
        (* string literal, '' escapes a quote *)
        let b = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          if source.[!i] = '\'' then
            if !i + 1 < n && source.[!i + 1] = '\'' then begin
              Buffer.add_char b '\'';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char b source.[!i];
            incr i
          end
        done;
        if not !closed then
          err ~left:start ~right:(start + 1) "unterminated string literal";
        emit (Str (Buffer.contents b)) start !i
      end
      else if c = '"' then begin
        (* quoted identifier, "" escapes a quote *)
        let b = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          if source.[!i] = '"' then
            if !i + 1 < n && source.[!i + 1] = '"' then begin
              Buffer.add_char b '"';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char b source.[!i];
            incr i
          end
        done;
        if not !closed then
          err ~left:start ~right:(start + 1) "unterminated quoted identifier";
        if Buffer.length b = 0 then
          err ~left:start ~right:!i "empty quoted identifier";
        emit (Ident (Buffer.contents b)) start !i
      end
      else begin
        let two =
          if !i + 1 < n then Some (String.sub source !i 2) else None
        in
        match two with
        | Some "!=" | Some "<>" ->
            emit Neq start (start + 2);
            i := !i + 2
        | Some "<=" ->
            emit Le start (start + 2);
            i := !i + 2
        | Some ">=" ->
            emit Ge start (start + 2);
            i := !i + 2
        | _ -> (
            let one t =
              emit t start (start + 1);
              incr i
            in
            match c with
            | '(' -> one Lparen
            | ')' -> one Rparen
            | ',' -> one Comma
            | '.' -> one Dot
            | '*' -> one Star
            | '+' -> one Plus
            | '-' -> one Minus
            | '/' -> one Slash
            | '=' -> one Eq
            | '<' -> one Lt
            | '>' -> one Gt
            | _ ->
                err ~left:start ~right:(start + 1) "unexpected character %C" c)
      end
    done;
    emit Eof n n;
    Ok (Array.of_list (List.rev !toks))
  with Lex_error d -> Error d
