(* Columnar boundary tests: the arena representation must be an exact
   inverse of the tree representation ([to_rows ∘ of_rows = id]), and
   the vectorized kernels must agree with their row-at-a-time
   counterparts on the engine zoo's awkward cases (empty partitions,
   all-Null join keys, shape-mixed columns). *)

open Nested
module C = Engine.Columnar

(* --- Generators ---------------------------------------------------- *)

(* Nested values biased toward the cases that stress the arena: deep
   nesting, empty bags, Null-heavy columns, duplicate strings. *)
let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           frequency
             [
               (2, return Value.Null);
               (1, map (fun b -> Value.Bool b) bool);
               (2, map (fun i -> Value.Int i) small_signed_int);
               (1, map (fun f -> Value.Float f) (float_bound_inclusive 100.));
               (* Tiny alphabet so duplicate strings hit the dictionary. *)
               (2, map (fun s -> Value.String s) (string_size ~gen:(char_range 'a' 'c') (return 2)));
             ]
         else
           frequency
             [
               (2, map (fun i -> Value.Int i) small_signed_int);
               (1, return Value.Null);
               ( 2,
                 map
                   (fun vs ->
                     Value.Tuple (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) vs))
                   (list_size (int_range 1 3) (self (n / 2))) );
               ( 2,
                 map
                   (fun vs -> Value.bag_of_list vs)
                   (list_size (int_range 0 4) (self (n / 2))) );
             ])

let arb_rows =
  QCheck.make
    ~print:(fun vs -> Fmt.str "%a" (Fmt.Dump.list Value.pp) vs)
    QCheck.Gen.(list_size (int_range 0 12) value_gen)

(* Uniform tuple rows (the common relational case: typed columns). *)
let arb_uniform_rows =
  let open QCheck.Gen in
  let row =
    map3
      (fun i s b ->
        Value.Tuple
          [
            ("id", Value.Int i);
            ("name", (match s with Some s -> Value.String s | None -> Value.Null));
            ("flag", Value.Bool b);
          ])
      small_signed_int
      (opt (string_size ~gen:(char_range 'a' 'c') (return 2)))
      bool
  in
  QCheck.make
    ~print:(fun vs -> Fmt.str "%a" (Fmt.Dump.list Value.pp) vs)
    (list_size (int_range 0 20) row)

(* --- Properties ---------------------------------------------------- *)

let eq_rows a b = List.length a = List.length b && List.for_all2 Value.equal a b

let prop_roundtrip =
  QCheck.Test.make ~name:"to_rows (of_rows rows) = rows" ~count:500 arb_rows
    (fun rows -> eq_rows (C.to_rows (C.of_rows rows)) rows)

(* Byte-identity is stronger than [Value.equal]: the reconstructed bags
   must keep canonical element order so printed output is identical. *)
let prop_roundtrip_printed =
  QCheck.Test.make ~name:"printed roundtrip is byte-identical" ~count:500
    arb_rows (fun rows ->
      let back = C.to_rows (C.of_rows rows) in
      List.for_all2
        (fun a b -> String.equal (Value.to_string a) (Value.to_string b))
        rows back)

let prop_get_row =
  QCheck.Test.make ~name:"get_row agrees with to_rows" ~count:200 arb_rows
    (fun rows ->
      let b = C.of_rows rows in
      List.for_all2 Value.equal
        (List.init (C.length b) (C.get_row b))
        (C.to_rows b))

let prop_gather =
  QCheck.Test.make ~name:"gather matches list indexing" ~count:200 arb_rows
    (fun rows ->
      let b = C.of_rows rows in
      let n = C.length b in
      QCheck.assume (n > 0);
      let arr = Array.of_list rows in
      let idx = Array.init n (fun i -> (i * 7) mod n) in
      eq_rows
        (C.to_rows (C.gather b idx))
        (Array.to_list (Array.map (fun i -> arr.(i)) idx)))

let prop_filter_mask =
  QCheck.Test.make ~name:"filter matches List.filteri" ~count:200 arb_rows
    (fun rows ->
      let b = C.of_rows rows in
      let mask = C.Bitv.init (C.length b) (fun i -> i mod 2 = 0) in
      eq_rows
        (C.to_rows (C.filter b mask))
        (List.filteri (fun i _ -> i mod 2 = 0) rows))

let prop_vstack =
  QCheck.Test.make ~name:"vstack = list append" ~count:200
    (QCheck.pair arb_rows arb_rows) (fun (xs, ys) ->
      eq_rows
        (C.to_rows (C.vstack [ C.of_rows xs; C.of_rows ys ]))
        (xs @ ys))

let prop_hash =
  QCheck.Test.make ~name:"hash_col matches value_hash" ~count:200 arb_rows
    (fun rows ->
      let b = C.of_rows rows in
      let hs = C.hash_col b.C.row in
      List.for_all2
        (fun v h -> C.value_hash v = h)
        rows (Array.to_list hs))

let prop_codes =
  QCheck.Test.make ~name:"coder codes = structural equality classes"
    ~count:200
    QCheck.(pair arb_rows arb_rows)
    (fun (xs, ys) ->
      (* One coder across two batches: equal codes across batches must
         mean structurally equal values (the join-key requirement). *)
      let coder = C.Coder.create () in
      let ca = C.row_codes coder (C.of_rows xs) in
      let cb = C.row_codes coder (C.of_rows ys) in
      let all =
        Array.to_list (Array.combine (Array.of_list (xs @ ys)) (Array.append ca cb))
      in
      List.for_all
        (fun (v1, c1) ->
          List.for_all
            (fun (v2, c2) -> c1 = c2 = (v1 = v2))
            all)
        all)

let prop_pred_mask =
  QCheck.Test.make ~name:"eval_pred_mask = per-row eval_pred" ~count:200
    arb_uniform_rows (fun rows ->
      let b = C.of_rows rows in
      let preds =
        let open Nrab.Expr.Infix in
        [
          Nrab.Expr.attr "id" > Nrab.Expr.int 3;
          Nrab.Expr.Contains (Nrab.Expr.attr "name", "a");
          Nrab.Expr.IsNull (Nrab.Expr.attr "name");
          (Nrab.Expr.attr "id" >= Nrab.Expr.int 0)
          && Nrab.Expr.IsNotNull (Nrab.Expr.attr "name");
          Nrab.Expr.attr "name" = Nrab.Expr.str "aa";
          Nrab.Expr.attr "id" + Nrab.Expr.int 1 <= Nrab.Expr.int 10;
        ]
      in
      List.for_all
        (fun p ->
          let mask = C.eval_pred_mask b p in
          List.for_all2
            (fun i row -> C.Bitv.get mask i = Nrab.Expr.eval_pred row p)
            (List.init (C.length b) Fun.id)
            rows)
        preds)

(* --- Engine-zoo unit cases ---------------------------------------- *)

let test_empty () =
  let b = C.of_rows [] in
  Alcotest.(check int) "empty length" 0 (C.length b);
  Alcotest.(check (list string)) "empty roundtrip" []
    (List.map Value.to_string (C.to_rows b));
  let v = C.vstack [ b; b ] in
  Alcotest.(check int) "vstack of empties" 0 (C.length v)

let test_all_null_column () =
  let rows =
    List.init 8 (fun i ->
        Value.Tuple [ ("k", Value.Null); ("v", Value.Int i) ])
  in
  let b = C.of_rows rows in
  (match C.find_col b "k" with
  | Some c ->
    (match C.null_mask c with
    | Some m -> Alcotest.(check int) "all key nulls" 8 (C.Bitv.count m)
    | None -> Alcotest.fail "expected null mask")
  | None -> Alcotest.fail "missing column");
  (* All-Null join keys: every key codes to null_code, so a hash join
     that excludes nulls must produce no matches. *)
  let coder = C.Coder.create () in
  let codes =
    C.Coder.col_codes coder (Option.get (C.find_col b "k"))
  in
  Alcotest.(check bool) "all codes are null_code" true
    (Array.for_all (fun c -> c = C.Coder.null_code) codes)

let test_mixed_shape_fallback () =
  (* Mixed Int/String column degrades to a boxed column but stays
     semantically exact. *)
  let rows =
    [
      Value.Tuple [ ("x", Value.Int 1) ];
      Value.Tuple [ ("x", Value.String "one") ];
      Value.Tuple [ ("x", Value.Null) ];
    ]
  in
  let b = C.of_rows rows in
  Alcotest.(check bool) "roundtrip" true (eq_rows (C.to_rows b) rows);
  let open Nrab.Expr.Infix in
  let mask = C.eval_pred_mask b (Nrab.Expr.attr "x" = Nrab.Expr.int 1) in
  Alcotest.(check (list bool)) "mixed compare" [ true; false; false ]
    (List.init 3 (C.Bitv.get mask))

let test_dict_dedup () =
  let rows =
    List.init 100 (fun i ->
        Value.Tuple [ ("s", Value.String (if i mod 2 = 0 then "even" else "odd")) ])
  in
  let before = C.Dict.size () in
  let b = C.of_rows rows in
  let after = C.Dict.size () in
  Alcotest.(check bool) "at most two new strings" true (after - before <= 2);
  Alcotest.(check bool) "roundtrip" true (eq_rows (C.to_rows b) rows)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip;
      prop_roundtrip_printed;
      prop_get_row;
      prop_gather;
      prop_filter_mask;
      prop_vstack;
      prop_hash;
      prop_codes;
      prop_pred_mask;
    ]

let () =
  Alcotest.run "columnar"
    [
      ("properties", qsuite);
      ( "zoo",
        [
          Alcotest.test_case "empty partitions" `Quick test_empty;
          Alcotest.test_case "all-null join keys" `Quick test_all_null_column;
          Alcotest.test_case "mixed-shape fallback" `Quick test_mixed_shape_fallback;
          Alcotest.test_case "dictionary dedup" `Quick test_dict_dedup;
        ] );
    ]
