lib/nrab/query.ml: Agg Expr Fmt List String
