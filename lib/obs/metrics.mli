(** Metrics registry — named counters, gauges, and log-scale histograms
    with p50/p95/max summaries.

    Counters are atomic (safe to increment from the engine's
    per-partition domains); gauges and histograms are mutex-protected.
    Registries are find-or-create by name: asking twice for the same
    name returns the same metric, asking for an existing name with a
    different kind raises [Invalid_argument]. *)

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
  val name : t -> string
end

module Histogram : sig
  type t

  (** Bucket ratio 2^(1/16): percentile estimates carry ≤ ~4.4%%
      relative bucket error (then clamped to the observed min/max). *)
  val observe : t -> float -> unit

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    p50 : float;
    p95 : float;
  }

  val summary : t -> summary

  (** [percentile h q] for [q] in [0,1]. *)
  val percentile : t -> float -> float

  val reset : t -> unit
  val name : t -> string
end

type t

val create : unit -> t

(** The process-wide registry the engine and pipeline record into when
    no explicit registry is passed. *)
val default : t

val counter : ?registry:t -> string -> Counter.t
val gauge : ?registry:t -> string -> Gauge.t
val histogram : ?registry:t -> string -> Histogram.t

(** Zero every metric, keeping registrations. *)
val reset : t -> unit

(** Drop all registrations. *)
val clear : t -> unit

(** All metrics, sorted by name. *)
val metrics :
  t ->
  (string
  * [ `Counter of Counter.t | `Gauge of Gauge.t | `Histogram of Histogram.t ])
  list

val pp : Format.formatter -> t -> unit
