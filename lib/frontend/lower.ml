open Nested
open Nrab

exception Lerr of Diagnostic.t

let err ?hint ~left ~right fmt =
  Fmt.kstr
    (fun message ->
      raise
        (Lerr (Diagnostic.make ?hint ~span:{ Diagnostic.left; right } `Type message)))
    fmt

type ctx = {
  env : Typecheck.env;
  gen : Query.Gen.t;
  ctes : (string * (Query.t * Vtype.t)) list;
  later : string list;  (** CTE names not yet in scope (for hints) *)
}

let numeric = function Vtype.TInt | Vtype.TFloat -> true | _ -> false

let primitive = function
  | Vtype.TBool | Vtype.TInt | Vtype.TFloat | Vtype.TString -> true
  | _ -> false

let comparable a b = (numeric a && numeric b) || Vtype.equal a b

let fields_of ~left ~right ty =
  match ty with
  | Vtype.TBag (Vtype.TTuple fs) -> fs
  | _ -> err ~left ~right "expected a bag of tuples, got %a" Vtype.pp ty

let available fields = String.concat ", " (List.map fst fields)

(* Type one operator in isolation: bind each child's relation type to a
   synthetic table and run the core checker over the single node.  This
   keeps the frontend's typing rules identical to [Nrab.Typecheck] by
   construction — the frontend only adds better spans on top. *)
let infer_node ~left ~right node child_tys =
  let name i = Printf.sprintf "$%d" i in
  let penv = List.mapi (fun i ty -> (name i, ty)) child_tys in
  let children =
    List.mapi
      (fun i _ -> { Query.id = -(i + 1); node = Query.Table (name i); children = [] })
      child_tys
  in
  let probe = { Query.id = 0; node; children } in
  match Typecheck.infer_result penv probe with
  | Ok ty -> ty
  | Error e -> err ~left ~right "%s" e.Typecheck.message

let build ctx ~left ~right node children child_tys =
  let ty = infer_node ~left ~right node child_tys in
  (Query.mk ctx.gen node children, ty)

(* ---- scalar expressions ---- *)

let rec lower_expr fields (e : Ast.expr) : Expr.t * Vtype.t =
  match e.it with
  | Ast.E_attr a -> (
      match List.assoc_opt a fields with
      | Some ty -> (Expr.Attr a, ty)
      | None ->
          err ~left:e.left ~right:e.right "unknown column %S (available: %s)" a
            (available fields))
  | Ast.E_int i -> (Expr.int i, Vtype.TInt)
  | Ast.E_bool b -> (Expr.const (Value.Bool b), Vtype.TBool)
  | Ast.E_float f -> (Expr.flt f, Vtype.TFloat)
  | Ast.E_string s -> (Expr.str s, Vtype.TString)
  | Ast.E_add (a, b) -> arith fields "+" (fun x y -> Expr.Add (x, y)) a b
  | Ast.E_sub (a, b) -> arith fields "-" (fun x y -> Expr.Sub (x, y)) a b
  | Ast.E_mul (a, b) -> arith fields "*" (fun x y -> Expr.Mul (x, y)) a b
  | Ast.E_div (a, b) -> arith fields "/" (fun x y -> Expr.Div (x, y)) a b

and arith fields sym mk a b =
  let ea, ta = lower_expr fields a in
  let eb, tb = lower_expr fields b in
  let ty =
    match (ta, tb) with
    | Vtype.TInt, Vtype.TInt -> Vtype.TInt
    | (Vtype.TInt | Vtype.TFloat), (Vtype.TInt | Vtype.TFloat) -> Vtype.TFloat
    | _ ->
        let bad, bt = if numeric ta then (b, tb) else (a, ta) in
        err ~left:bad.Ast.left ~right:bad.Ast.right
          "operator %s expects numeric operands, got %a" sym Vtype.pp bt
  in
  (mk ea eb, ty)

(* ---- predicates ---- *)

let rec lower_pred fields (p : Ast.pred) : Expr.pred =
  match p.it with
  | Ast.P_true -> Expr.True
  | Ast.P_false -> Expr.False
  | Ast.P_and (a, b) -> Expr.And (lower_pred fields a, lower_pred fields b)
  | Ast.P_or (a, b) -> Expr.Or (lower_pred fields a, lower_pred fields b)
  | Ast.P_not a -> Expr.Not (lower_pred fields a)
  | Ast.P_cmp (c, a, b) ->
      let ea, ta = lower_expr fields a in
      let eb, tb = lower_expr fields b in
      let scalar (e : Ast.expr) ty =
        if not (primitive ty) then
          err ~left:e.left ~right:e.right
            "cannot compare a value of type %a — comparisons need primitive values"
            Vtype.pp ty
            ~hint:
              "bag attributes can be FLATTENed, aggregated, or tested with a why-not pattern"
      in
      scalar a ta;
      scalar b tb;
      if not (comparable ta tb) then
        err ~left:p.left ~right:p.right "incomparable types %a vs %a" Vtype.pp ta
          Vtype.pp tb;
      Expr.Cmp (c, ea, eb)
  | Ast.P_is_null e -> Expr.IsNull (fst (lower_expr fields e))
  | Ast.P_is_not_null e -> Expr.IsNotNull (fst (lower_expr fields e))
  | Ast.P_contains (e, s) ->
      let ex, ty = lower_expr fields e in
      if not (Vtype.equal ty Vtype.TString) then
        err ~left:e.left ~right:e.right "CONTAINS expects a string value, got %a"
          Vtype.pp ty;
      Expr.Contains (ex, s.it)
  | Ast.P_case (arms, els) ->
      (* CASE WHEN c THEN t ... ELSE e END over predicates desugars to
         (c AND t) OR (NOT c AND ...); a missing ELSE defaults to FALSE. *)
      let rec desugar = function
        | [] -> (
            match els with Some e -> lower_pred fields e | None -> Expr.False)
        | (c, t) :: rest ->
            let pc = lower_pred fields c in
            Expr.Or
              (Expr.And (pc, lower_pred fields t),
               Expr.And (Expr.Not pc, desugar rest))
      in
      desugar arms

(* ---- aggregates ---- *)

let agg_fn_of (fn : Ast.ident) (arg : Ast.agg_arg) : Agg.fn * string option =
  match (String.lowercase_ascii fn.it, arg) with
  | "count", Ast.A_star -> (Agg.Count, None)
  | "count", Ast.A_distinct a -> (Agg.Count_distinct, Some a.it)
  | "count", Ast.A_attr a -> (Agg.Count, Some a.it)
  | _, Ast.A_star ->
      err ~left:fn.left ~right:fn.right "%s(*) is not supported — only count(*)"
        fn.it
  | _, Ast.A_distinct _ ->
      err ~left:fn.left ~right:fn.right
        "DISTINCT inside an aggregate is only supported for count"
  | "sum", Ast.A_attr a -> (Agg.Sum, Some a.it)
  | "avg", Ast.A_attr a -> (Agg.Avg, Some a.it)
  | "min", Ast.A_attr a -> (Agg.Min, Some a.it)
  | "max", Ast.A_attr a -> (Agg.Max, Some a.it)
  | _, _ ->
      err ~left:fn.left ~right:fn.right "unknown aggregate function %S" fn.it

let check_agg_arg ~fields (arg : Ast.agg_arg) =
  match arg with
  | Ast.A_star -> ()
  | Ast.A_attr a | Ast.A_distinct a ->
      if not (List.mem_assoc a.it fields) then
        err ~left:a.left ~right:a.right "unknown column %S (available: %s)" a.it
          (available fields)

(* ---- FROM ---- *)

let rec lower_from ctx (f : Ast.from_item) : Query.t * Vtype.t =
  let left = f.left and right = f.right in
  match f.it with
  | Ast.F_table name -> (
      match List.assoc_opt name ctx.ctes with
      | Some (q, ty) -> (Query.relabel ctx.gen q, ty)
      | None -> (
          match List.assoc_opt name ctx.env with
          | Some ty -> (Query.table ctx.gen name, ty)
          | None ->
              let hint =
                if List.mem name ctx.later then
                  Fmt.str
                    "CTE %S is not in scope here; a CTE can only reference tables and CTEs defined before it"
                    name
                else
                  "available tables: "
                  ^ String.concat ", " (List.map fst ctx.env)
              in
              err ~left ~right ~hint "unknown table %S" name))
  | Ast.F_sub q -> lower_query ctx q
  | Ast.F_flatten (kind, src, attr) -> (
      let qc, tc = lower_from ctx src in
      let fields = fields_of ~left ~right tc in
      match List.assoc_opt attr.it fields with
      | None ->
          err ~left:attr.left ~right:attr.right "unknown column %S (available: %s)"
            attr.it (available fields)
      | Some aty -> (
          match kind with
          | `Tuple ->
              if
                match aty with Vtype.TTuple _ -> false | _ -> true
              then
                err ~left:attr.left ~right:attr.right
                  "FLATTEN TUPLE expects a tuple-valued attribute, but %s : %a"
                  attr.it Vtype.pp aty;
              build ctx ~left:attr.left ~right:attr.right
                (Query.Flatten_tuple attr.it) [ qc ] [ tc ]
          | (`Inner | `Outer) as k ->
              (if match aty with Vtype.TBag (Vtype.TTuple _) -> false | _ -> true
               then
                 err ~left:attr.left ~right:attr.right
                   "FLATTEN expects a bag-of-tuples attribute, but %s : %a"
                   attr.it Vtype.pp aty
                   ~hint:"only nested bag attributes can be flattened");
              let fk =
                match k with
                | `Inner -> Query.Flat_inner
                | `Outer -> Query.Flat_outer
              in
              build ctx ~left:attr.left ~right:attr.right
                (Query.Flatten (fk, attr.it)) [ qc ] [ tc ]))
  | Ast.F_rename (src, pairs) ->
      let qc, tc = lower_from ctx src in
      let fields = fields_of ~left ~right tc in
      List.iter
        (fun ((old : Ast.ident), _) ->
          if not (List.mem_assoc old.it fields) then
            err ~left:old.left ~right:old.right
              "unknown column %S (available: %s)" old.it (available fields))
        pairs;
      (* surface pairs are (old AS new); the core node stores (new, old) *)
      let core_pairs =
        List.map (fun ((old : Ast.ident), (nw : Ast.ident)) -> (nw.it, old.it)) pairs
      in
      build ctx ~left ~right (Query.Rename core_pairs) [ qc ] [ tc ]
  | Ast.F_join (kind, l, r, p) ->
      let ql, tl = lower_from ctx l in
      let qr, tr = lower_from ctx r in
      let lf = fields_of ~left ~right tl and rf = fields_of ~left ~right tr in
      check_disjoint ~left ~right lf rf;
      let pred = lower_pred (lf @ rf) p in
      let k =
        match kind with
        | `Inner -> Query.Inner
        | `Left -> Query.Left
        | `Right -> Query.Right
        | `Full -> Query.Full
      in
      build ctx ~left ~right (Query.Join (k, pred)) [ ql; qr ] [ tl; tr ]
  | Ast.F_product (l, r) ->
      let ql, tl = lower_from ctx l in
      let qr, tr = lower_from ctx r in
      let lf = fields_of ~left ~right tl and rf = fields_of ~left ~right tr in
      check_disjoint ~left ~right lf rf;
      build ctx ~left ~right Query.Product [ ql; qr ] [ tl; tr ]

and check_disjoint ~left ~right lf rf =
  let dups =
    List.filter_map
      (fun (n, _) -> if List.mem_assoc n lf then Some n else None)
      rf
  in
  match dups with
  | [] -> ()
  | ds ->
      err ~left ~right "attributes %s appear on both sides"
        (String.concat ", " ds)
        ~hint:"RENAME one side so every attribute name is unique"

(* ---- SELECT ---- *)

(* Lower the select list over [q1], excluding GROUP BY handling: plain
   projections and per-tuple aggregate chains. *)
and lower_items ctx ~allow_aggs (q1, t1) (items : Ast.select_item list) ~left
    ~right =
  match items with
  | [ Ast.I_star _ ] -> (q1, t1)
  | _ ->
      let stars = List.filter (function Ast.I_star _ -> true | _ -> false) items in
      let aggs =
        List.filter_map (function Ast.I_agg a -> Some a | _ -> None) items
      in
      (match (aggs, allow_aggs) with
      | Ast.{ left; right; _ } :: _, false ->
          err ~left ~right "aggregates cannot be combined with NEST ... INTO"
            ~hint:"nest the attribute, or aggregate in an outer query"
      | _ -> ());
      (* Per-tuple aggregates: chain γ in select-list order. *)
      let qa, ta =
        List.fold_left
          (fun (q, t) (a : Ast.agg_item) ->
            let fields = fields_of ~left ~right t in
            check_agg_arg ~fields a.Ast.arg;
            let fn, over = agg_fn_of a.Ast.fn a.Ast.arg in
            match over with
            | None ->
                err ~left:a.Ast.left ~right:a.Ast.right
                  "count(*) needs a GROUP BY clause"
                  ~hint:"per-tuple aggregates run over a bag attribute: count(address2) AS n"
            | Some over ->
                build ctx ~left:a.Ast.left ~right:a.Ast.right
                  (Query.Agg_tuple (fn, over, a.Ast.out.it)) [ q ] [ t ])
          (q1, t1) aggs
      in
      let plains =
        List.filter_map (function Ast.I_expr (e, a) -> Some (e, a) | _ -> None) items
      in
      (match (stars, plains) with
      | Ast.I_star (l, r) :: _, _ :: _ ->
          err ~left:l ~right:r "'*' cannot be mixed with plain select items"
            ~hint:"list the attributes explicitly, or select only '*' and aggregates"
      | _ :: Ast.I_star (l, r) :: _, [] ->
          err ~left:l ~right:r "'*' can appear at most once"
      | _ -> ());
      if stars <> [] then
        (* SELECT *, agg(...) AS out — the γ chain already appended the
           outputs; no projection needed. *)
        (qa, ta)
      else begin
        let fields = fields_of ~left ~right ta in
        let seen = Hashtbl.create 8 in
        let cols =
          List.filter_map
            (function
              | Ast.I_star _ -> None
              | Ast.I_agg a -> Some (a.Ast.out.it, Expr.Attr a.Ast.out.it, (a.Ast.out.left, a.Ast.out.right))
              | Ast.I_expr (e, alias) ->
                  let name, (nl, nr) =
                    match (alias, e.Ast.it) with
                    | Some (a : Ast.ident), _ -> (a.it, (a.left, a.right))
                    | None, Ast.E_attr a -> (a, (e.Ast.left, e.Ast.right))
                    | None, _ ->
                        err ~left:e.Ast.left ~right:e.Ast.right
                          "computed select items need an AS name"
                          ~hint:"write: expr AS name"
                  in
                  let ex, _ = lower_expr fields e in
                  Some (name, ex, (nl, nr)))
            items
        in
        List.iter
          (fun (name, _, (nl, nr)) ->
            if Hashtbl.mem seen name then
              err ~left:nl ~right:nr "duplicate output attribute %S" name;
            Hashtbl.add seen name ())
          cols;
        build ctx ~left ~right
          (Query.Project (List.map (fun (n, e, _) -> (n, e)) cols))
          [ qa ] [ ta ]
      end

and lower_group ctx (q1, t1) (sc : Ast.select_core) (g : Ast.group_clause)
    ~left ~right =
  let gspan_l = g.Ast.gc_left and gspan_r = g.Ast.gc_right in
  match g.Ast.gc_nest with
  | Some n ->
      (* Nesting: an optional projection narrows the input first, then
         Nᴿ/Nᵀ groups on everything that is not nested. *)
      List.iter
        (fun (gi : Ast.group_item) ->
          match gi.Ast.g_label with
          | Some lab ->
              err ~left:lab.left ~right:lab.right
                "GROUP BY labels (AS) are only for aggregation queries"
                ~hint:"rename nested attributes in the NEST clause instead"
          | None -> ())
        g.Ast.gc_items;
      let qp, tp = lower_items ctx ~allow_aggs:false (q1, t1) sc.Ast.items ~left ~right in
      let fields = fields_of ~left ~right tp in
      let known (a : Ast.ident) =
        if not (List.mem_assoc a.it fields) then
          err ~left:a.left ~right:a.right "unknown column %S (available: %s)" a.it
            (available fields)
      in
      List.iter (fun (gi : Ast.group_item) -> known gi.Ast.g_attr) g.Ast.gc_items;
      let group_names =
        List.map (fun (gi : Ast.group_item) -> gi.Ast.g_attr.it) g.Ast.gc_items
      in
      let pairs =
        List.map
          (fun (gi : Ast.group_item) ->
            let a = gi.Ast.g_attr in
            known a;
            let label = match gi.Ast.g_label with Some l -> l.it | None -> a.it in
            (label, a.it, (a.left, a.right)))
          n.Ast.n_items
      in
      let nested_names = List.map (fun (_, a, _) -> a) pairs in
      List.iter
        (fun (label, a, (al, ar)) ->
          ignore label;
          if List.length (List.filter (String.equal a) nested_names) > 1 then
            err ~left:al ~right:ar "attribute %S is nested twice" a;
          if List.mem a group_names then
            err ~left:al ~right:ar "attribute %S is both grouped and nested" a)
        pairs;
      List.iter
        (fun (fname, _) ->
          if not (List.mem fname group_names || List.mem fname nested_names)
          then
            err ~left:gspan_l ~right:gspan_r
              "attribute %S is neither grouped nor nested" fname
              ~hint:
                "with NEST, every input attribute must appear in GROUP BY or in the NEST list")
        fields;
      let into = n.Ast.n_into in
      if
        List.exists
          (fun (fname, _) ->
            String.equal fname into.it && not (List.mem fname nested_names))
          fields
      then
        err ~left:into.left ~right:into.right
          "attribute name %S already exists in the group schema" into.it;
      let core_pairs = List.map (fun (l, a, _) -> (l, a)) pairs in
      let node =
        match n.Ast.n_kind with
        | `Rel -> Query.Nest_rel (core_pairs, into.it)
        | `Tuple -> Query.Nest_tuple (core_pairs, into.it)
      in
      build ctx ~left:gspan_l ~right:gspan_r node [ qp ] [ tp ]
  | None ->
      (* Aggregation: SELECT [labels,] aggs FROM ... GROUP BY a [AS l], ... *)
      let fields = fields_of ~left ~right t1 in
      let group_pairs =
        List.map
          (fun (gi : Ast.group_item) ->
            let a = gi.Ast.g_attr in
            if not (List.mem_assoc a.it fields) then
              err ~left:a.left ~right:a.right "unknown column %S (available: %s)"
                a.it (available fields);
            let label = match gi.Ast.g_label with Some l -> l.it | None -> a.it in
            (label, a.it))
          g.Ast.gc_items
      in
      if group_pairs = [] then
        err ~left:gspan_l ~right:gspan_r
          "GROUP BY needs at least one attribute or a NEST clause";
      let labels = List.map fst group_pairs in
      let plain = ref [] and aggs = ref [] in
      List.iter
        (function
          | Ast.I_star (l, r) ->
              err ~left:l ~right:r "'*' cannot be combined with GROUP BY aggregation"
          | Ast.I_expr (e, alias) -> (
              (match alias with
              | Some (a : Ast.ident) ->
                  err ~left:a.left ~right:a.right
                    "aliases on group attributes belong in GROUP BY"
                    ~hint:"write: GROUP BY attr AS label, then select the label"
              | None -> ());
              match e.Ast.it with
              | Ast.E_attr a -> plain := (a, (e.Ast.left, e.Ast.right)) :: !plain
              | _ ->
                  err ~left:e.Ast.left ~right:e.Ast.right
                    "only group labels and aggregates can be selected with GROUP BY")
          | Ast.I_agg a ->
              check_agg_arg ~fields a.Ast.arg;
              let fn, over = agg_fn_of a.Ast.fn a.Ast.arg in
              aggs := (fn, over, a.Ast.out.it) :: !aggs)
        sc.Ast.items;
      let plain = List.rev !plain and aggs = List.rev !aggs in
      (if plain <> [] then
         let names = List.map fst plain in
         if names <> labels then
           let bad, (bl, br) =
             try List.find (fun (n, _) -> not (List.mem n labels)) plain
             with Not_found -> List.hd plain
           in
           err ~left:bl ~right:br
             "select item %S does not match the GROUP BY labels" bad
             ~hint:
               (Fmt.str "expected the group labels in order: %s"
                  (String.concat ", " labels)));
      build ctx ~left:gspan_l ~right:gspan_r
        (Query.Group_agg (group_pairs, aggs))
        [ q1 ] [ t1 ]

and lower_select_core ctx (sc : Ast.select_core) ~left ~right =
  let q0, t0 = lower_from ctx sc.Ast.from in
  let q1, t1 =
    match sc.Ast.where with
    | None -> (q0, t0)
    | Some p ->
        let fields = fields_of ~left:p.Ast.left ~right:p.Ast.right t0 in
        let pred = lower_pred fields p in
        build ctx ~left:p.Ast.left ~right:p.Ast.right (Query.Select pred) [ q0 ]
          [ t0 ]
  in
  let q2, t2 =
    match sc.Ast.group with
    | Some g -> lower_group ctx (q1, t1) sc g ~left ~right
    | None -> lower_items ctx ~allow_aggs:true (q1, t1) sc.Ast.items ~left ~right
  in
  if sc.Ast.distinct then build ctx ~left ~right Query.Dedup [ q2 ] [ t2 ]
  else (q2, t2)

and lower_query ctx (q : Ast.query) : Query.t * Vtype.t =
  match q.it with
  | Ast.Q_select sc -> lower_select_core ctx sc ~left:q.left ~right:q.right
  | Ast.Q_setop (op, a, b) ->
      let qa, ta = lower_query ctx a in
      let qb, tb = lower_query ctx b in
      if not (Vtype.equal ta tb) then
        err ~left:q.left ~right:q.right "%s over different schemas: %a vs %a"
          (match op with `Union -> "UNION" | `Except -> "EXCEPT")
          Vtype.pp ta Vtype.pp tb
          ~hint:"project both sides to the same attributes in the same order";
      build ctx ~left:q.left ~right:q.right
        (match op with `Union -> Query.Union | `Except -> Query.Diff)
        [ qa; qb ] [ ta; tb ]

let statement ~env ~gen (s : Ast.statement) =
  try
    let rec lower_ctes acc = function
      | [] -> acc
      | ((name : Ast.ident), q) :: rest ->
          if List.mem_assoc name.it acc then
            err ~left:name.left ~right:name.right "duplicate CTE name %S" name.it;
          if List.mem_assoc name.it env then
            err ~left:name.left ~right:name.right
              "CTE %S shadows a table of the same name" name.it
              ~hint:"pick a different CTE name";
          let later = name.it :: List.map (fun ((n : Ast.ident), _) -> n.it) rest in
          let ctx = { env; gen; ctes = acc; later } in
          let qt = lower_query ctx q in
          lower_ctes ((name.it, qt) :: acc) rest
    in
    let ctes = lower_ctes [] s.Ast.ctes in
    let ctx = { env; gen; ctes; later = [] } in
    Ok (lower_query ctx s.Ast.body)
  with Lerr d -> Error d
