(* Algebra fragments (Section 3.2 / Table 3 of the paper).

   SPC is the subset of NRAB⁰ sufficient for select-project-join queries;
   SPC⁺ adds additive union; everything else is full NRAB.  The paper uses
   the fragments to compare which operators each explanation formalism can
   return (Table 3): lineage-based approaches only blame data-pruning
   operators (selections, joins), while the reparameterization-based
   formalism also blames schema-shaping ones (projections, renaming,
   flattening, nesting, aggregation). *)

type t = Spc | Spc_plus | Nrab

let to_string = function Spc -> "SPC" | Spc_plus -> "SPC+" | Nrab -> "NRAB"

let of_node (n : Query.node) : t =
  match n with
  | Query.Table _ | Query.Select _ | Query.Project _
  | Query.Join (Query.Inner, _)
  | Query.Product ->
    Spc
  | Query.Union -> Spc_plus
  | Query.Rename _ | Query.Join (_, _) | Query.Diff | Query.Dedup
  | Query.Flatten_tuple _ | Query.Flatten _ | Query.Nest_tuple _
  | Query.Nest_rel _ | Query.Agg_tuple _ | Query.Group_agg _ ->
    Nrab

let max_fragment a b =
  match a, b with
  | Nrab, _ | _, Nrab -> Nrab
  | Spc_plus, _ | _, Spc_plus -> Spc_plus
  | Spc, Spc -> Spc

(* Smallest fragment containing a query. *)
let classify (q : Query.t) : t =
  Query.fold (fun acc op -> max_fragment acc (of_node op.Query.node)) Spc q

(* Which operator types can appear in explanations, per formalism
   (Table 3)?  Lineage-based formalisms only return operators that prune
   compatible data. *)
type formalism = Lineage_based | Reparameterization_based

let explainable_op_types (formalism : formalism) (fragment : t) :
    Query.op_type list =
  match formalism, fragment with
  | Lineage_based, (Spc | Spc_plus) -> [ Query.Op_select; Query.Op_join ]
  | Lineage_based, Nrab -> [ Query.Op_select; Query.Op_join; Query.Op_flatten ]
  | Reparameterization_based, (Spc | Spc_plus) ->
    [ Query.Op_select; Query.Op_join; Query.Op_project ]
  | Reparameterization_based, Nrab ->
    [
      Query.Op_select; Query.Op_join; Query.Op_project; Query.Op_rename;
      Query.Op_flatten; Query.Op_nest; Query.Op_agg;
    ]

(* Can an operator of this type be part of an explanation under the given
   formalism for queries of this fragment? *)
let explainable (formalism : formalism) (fragment : t) (ty : Query.op_type) :
    bool =
  List.mem ty (explainable_op_types formalism fragment)
