lib/nested/value.ml: Fmt List Stdlib String
