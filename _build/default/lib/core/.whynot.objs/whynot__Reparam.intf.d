lib/core/reparam.mli: Expr Nested Nrab Opset Query
