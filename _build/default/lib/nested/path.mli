(** Attribute paths into nested tuple types.

    A path addresses an attribute of a relation's tuple type, descending
    through tuple-valued attributes and through nested relations — e.g.
    [["address2"; "city"]] addresses the [city] attribute of the tuples
    nested in [address2].  Paths are how the paper names source
    attributes such as [T.entities.media]. *)

type t = string list

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t

(** Resolve a path against a type, descending through bags. *)
val resolve_type : Vtype.t -> t -> Vtype.t option

(** All values reachable along a path; descending into a bag yields the
    values of every element. *)
val resolve_values : Value.t -> t -> Value.t list

(** Rewrite the type addressed by a path; [None] if the path does not
    exist. *)
val update_type : Vtype.t -> t -> f:(Vtype.t -> Vtype.t) -> Vtype.t option

(** The attribute's own name (last component).  Raises on []. *)
val leaf : t -> string
