(** Fault injection — named hook points that engine tasks, the why-not
    pipeline, and the server's loops call into, armed by tests and the
    chaos bench to simulate the fault classes a long-running service
    must survive.

    A {e site} is a string naming a hook point.  Current sites:
    - engine: ["engine.partition"] (per-partition task attempts, fired
      once per attempt inside {!Engine.Dataset.map_partitions} and the
      executor's join tasks), ["engine.pool.worker"] (the pool's worker
      loop, fired before each dequeue — arming it kills a worker
      domain);
    - pipeline: ["tracing.relaxed"] (per schema alternative, at the
      entry of the relaxed data-tracing evaluation);
    - server: ["server.accept"], ["server.read"], ["server.write"],
      ["server.explain"].

    Unarmed sites cost one atomic load per {!fire}; the process-global
    table is only consulted while at least one site is armed, so
    production traffic never pays for the harness.

    Actions:
    - [Fail { times; exn_ }] — raise [exn_] on the next [times] fires
      (a negative [times] means every fire).  [fail_once e] is
      [Fail { times = 1; exn_ = e }].
    - [Flaky { period; exn_ }] — raise [exn_] on every [period]-th fire
      of the site (deterministic: the decision depends only on the
      site's consultation count, never on [Random] or the clock).
      [period = 20] ≈ 5%% of task attempts fault; a retried task fires
      the site again, lands off the period boundary, and succeeds —
      the transient-fault shape the retry layer is built for.
    - [Delay_ms d] — sleep [d] milliseconds at each fire (slow-job
      injection, e.g. to push an explain past its deadline).
    - [Garble g] — rewrite the string passing through a {!transform}
      site (malformed-payload injection); ignored by {!fire} sites.

    Triggered injections are counted per site ({!fired}) and mirrored
    into {!Metrics} as [fault.<site>]. *)

type action =
  | Fail of { times : int; exn_ : exn }
  | Flaky of { period : int; exn_ : exn }
  | Delay_ms of float
  | Garble of (string -> string)

val fail_once : exn -> action

(** Arm [site] with [action], replacing any previous arming (and
    zeroing the Flaky consultation count). *)
val arm : string -> action -> unit

val disarm : string -> unit

(** Disarm every site and zero the per-site trigger counts. *)
val reset : unit -> unit

(** Hook point: may sleep or raise according to the site's action. *)
val fire : string -> unit

(** Hook point for payloads: applies a [Garble] action, otherwise
    returns the string unchanged ([Fail]/[Delay_ms] also apply, before
    the return). *)
val transform : string -> string -> string

(** How many times [site]'s action has triggered since the last
    {!reset}. *)
val fired : string -> int

(** {1 Site registry}

    Modules that fire a hook point declare it once at module-init time
    with {!register_site} (which returns its argument, so the usual
    idiom is [let site_foo = Faultinject.register_site "x.foo"]).  The
    chaos-coverage lint enumerates {!registered_sites} and fails when
    any is missing from {!ever_armed} — so a new site cannot ship
    without a test arming it.  Both sets survive {!reset}. *)

(** Declare a hook point; returns the name unchanged.  Idempotent. *)
val register_site : string -> string

(** Every declared site, sorted. *)
val registered_sites : unit -> string list

(** Every site {!arm} has ever been called on in this process, sorted.
    Not cleared by {!reset}. *)
val ever_armed : unit -> string list
