(* Ordered-tree representation of nested values.

   The paper quantifies side effects of reparameterizations with a tree
   distance over nested relations (Figure 2 shows such trees).  Unordered
   tree edit distance is NP-hard [Zhang-Statman-Shasha 92], so we convert
   values to *canonically ordered* trees (bags sorted by Value.compare,
   tuple fields in schema order) and use an ordered tree edit distance.
   Canonical ordering makes the metric deterministic and permutation
   invariant for bags. *)

type t = { label : string; children : t list }

let node label children = { label; children }
let leaf label = { label; children = [] }

let rec size (t : t) : int = 1 + List.fold_left (fun a c -> a + size c) 0 t.children

(* Canonical tree of a value.  A bag element of multiplicity m appears as m
   identical children. *)
let rec of_value (v : Value.t) : t =
  match v with
  | Value.Null -> leaf "⊥"
  | Value.Bool b -> leaf (string_of_bool b)
  | Value.Int i -> leaf (string_of_int i)
  | Value.Float f -> leaf (string_of_float f)
  | Value.String s -> leaf s
  | Value.Tuple fields ->
    node "⟨⟩" (List.map (fun (l, fv) -> node l [ of_value fv ]) fields)
  | Value.Bag es ->
    let children =
      List.concat_map (fun (e, m) -> List.init m (fun _ -> of_value e)) es
    in
    node "{{}}" children

(* Post-order traversal with leftmost-leaf-descendant indices, as required
   by the Zhang–Shasha algorithm (implemented in Ted). *)
let postorder (t : t) : (string * int) array =
  (* Returns array of (label, leftmost-leaf index in postorder). *)
  let acc = ref [] in
  let rec go (t : t) : int =
    (* Returns the postorder index of t's leftmost leaf. *)
    let lml =
      match t.children with
      | [] -> List.length !acc
      | first :: _ ->
        let l = go first in
        List.iter (fun c -> ignore (go c)) (List.tl t.children);
        l
    in
    acc := (t.label, lml) :: !acc;
    lml
  in
  ignore (go t);
  Array.of_list (List.rev !acc)

let rec pp ppf (t : t) =
  match t.children with
  | [] -> Fmt.string ppf t.label
  | cs -> Fmt.pf ppf "%s(%a)" t.label (Fmt.list ~sep:(Fmt.any ",") pp) cs
