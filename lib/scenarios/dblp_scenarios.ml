(* DBLP scenarios D1–D5 (Tables 4 and 10). *)

open Nested
open Nrab

let ( ==? ) a b = Expr.Cmp (Expr.Eq, a, b)

(* D1: all authors and titles of papers published at SIGMOD.
   Error: the projection feeding the venue filter picks the proceedings'
   long [ptitle] instead of [pbooktitle]; only the latter contains the
   string "SIGMOD" for the missing paper's venue. *)
let d1 : Scenario.t =
  {
    name = "D1";
    family = Scenario.Dblp;
    description = "All authors and titles of papers that are published at SIGMOD";
    operators = "π,σ,⋈,Fᴵ,Fᵀ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Dblp.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let proc =
          Query.project ~id:1 g
            [ ("pkey", Expr.attr "pkey"); ("venue", Expr.attr "ptitle") ]
            (Query.table g "proceedings")
        in
        let joined =
          Query.join ~id:2 g Query.Inner
            (Expr.attr "crossref" ==? Expr.attr "pkey")
            (Query.table g "inproceedings")
            proc
        in
        let query =
          Query.project ~id:6 g
            [ ("author", Expr.attr "name"); ("title", Expr.attr "text") ]
            (Query.select ~id:5 g
               (Expr.Contains (Expr.attr "venue", "SIGMOD"))
               (Query.flatten_tuple ~id:4 g "title"
                  (Query.flatten_inner ~id:3 g "authors" joined)))
        in
        let missing =
          Whynot.Nip.tup
            [ ("author", Whynot.Nip.any); ("title", Whynot.Nip.str Datagen.Dblp.d1_missing_title) ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("proceedings", [ [ "ptitle" ]; [ "pbooktitle" ] ]) ];
          gold = Some [ [ 1 ] ];
        });
  }

(* D2: number of articles per author not named "Dey".
   Error: the query flattens the [bibtex] record (null for >99 % of
   articles) instead of [fulltext]; the count over the nested titles is 0
   for the missing author. *)
let d2 : Scenario.t =
  {
    name = "D2";
    family = Scenario.Dblp;
    description = "Number of articles for authors who do not have \"Dey\" in their name";
    operators = "π,σ,Fᴵ,Fᵀ,Nᴿ,γ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Dblp.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.agg_tuple ~id:6 g Agg.Count ~over:"titles" ~into:"cnt"
            (Query.nest_rel ~id:5 g [ "content" ] ~into:"titles"
               (Query.project_attrs ~id:4 g [ "name"; "content" ]
                  (Query.flatten_tuple ~id:3 g "bibtex"
                     (Query.select ~id:2 g
                        (Expr.Not (Expr.Contains (Expr.attr "name", "Dey")))
                        (Query.flatten_inner ~id:1 g "authors"
                           (Query.table g "articles"))))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("name", Whynot.Nip.str Datagen.Dblp.d2_target_author);
              ("cnt", Whynot.Nip.pred Expr.Ge (Value.Int 5));
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("articles", [ [ "bibtex" ]; [ "fulltext" ] ]) ];
          gold = Some [ [ 3 ] ];
        });
  }

(* D3: author–paper pairs per booktitle and year.
   Error: the tuple nesting pairs the [author] with the paper; the missing
   person only appears as [editor]. *)
let d3 : Scenario.t =
  {
    name = "D3";
    family = Scenario.Dblp;
    description = "Lists all author-paper-pairs per booktitle and year";
    operators = "π,Fᵀ,Nᵀ,Nᴿ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Dblp.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.nest_rel ~id:5 g [ "pair" ] ~into:"pairs"
            (Query.project_attrs ~id:4 g [ "booktitle"; "year"; "pair" ]
               (Query.nest_tuple_labeled ~id:3 g
                  [ ("author", "author"); ("ptitle", "ptitle") ]
                  ~into:"pair"
                  (Query.project_attrs ~id:2 g
                     [ "booktitle"; "year"; "author"; "editor"; "ptitle" ]
                     (Query.flatten_tuple ~id:1 g "meta"
                        (Query.table g "entries")))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("booktitle", Whynot.Nip.str Datagen.Dblp.d3_target_booktitle);
              ("year", Whynot.Nip.int Datagen.Dblp.d3_target_year);
              ( "pairs",
                Whynot.Nip.bag ~star:true
                  [
                    Whynot.Nip.tup
                      [
                        ( "pair",
                          Whynot.Nip.tup
                            [
                              ("author", Whynot.Nip.str Datagen.Dblp.d3_target_person);
                              ("ptitle", Whynot.Nip.any);
                            ] );
                      ];
                  ] );
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("entries", [ [ "author" ]; [ "editor" ] ]) ];
          gold = Some [ [ 3 ] ];
        });
  }

(* D4: collection of papers per author who published through ACM after
   2010.  Errors: the tuple flatten exposes the [publisher] label (the
   "ACM" value sits in the [series]), and the year filter says 2015
   instead of 2010. *)
let d4 : Scenario.t =
  {
    name = "D4";
    family = Scenario.Dblp;
    description = "Collection of papers per author having published through ACM after 2010";
    operators = "π,σ,Fᴵ,Fᵀ,⋈,Nᴿ,γ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Dblp.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.agg_tuple ~id:8 g Agg.Count ~over:"papers" ~into:"cnt"
            (Query.nest_rel ~id:7 g [ "ptitle" ] ~into:"papers"
               (Query.project_attrs ~id:6 g [ "name"; "ptitle" ]
                  (Query.select ~id:5 g
                     (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2015))
                     (Query.select ~id:4 g
                        (Expr.attr "plabel" ==? Expr.str "ACM")
                        (Query.flatten_tuple ~id:3 g "publisher"
                           (Query.flatten_inner ~id:2 g "authors"
                              (Query.join ~id:1 g Query.Inner
                                 (Expr.attr "pcrossref" ==? Expr.attr "pkey")
                                 (Query.table g "ipubs")
                                 (Query.table g "pubinfo"))))))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("name", Whynot.Nip.str Datagen.Dblp.d4_target_author);
              ("papers", Whynot.Nip.some_element);
              ("cnt", Whynot.Nip.pred Expr.Ge (Value.Int 1));
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("pubinfo", [ [ "publisher" ]; [ "series" ] ]) ];
          gold = Some [ [ 3; 5 ] ];
        });
  }

(* D5: list of homepage URLs per author.
   Error: the projection picks the [url] attribute; DBLP stores the
   homepage in [note] for the missing author. *)
let d5 : Scenario.t =
  {
    name = "D5";
    family = Scenario.Dblp;
    description = "List of (homepage) urls for each author";
    operators = "π,Fᴵ,Fᵀ,Nᴿ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Dblp.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.nest_rel ~id:4 g [ "homepage" ] ~into:"pages"
            (Query.project ~id:3 g
               [ ("aname", Expr.attr "aname"); ("homepage", Expr.attr "url") ]
               (Query.flatten_inner ~id:2 g "sites"
                  (Query.flatten_tuple ~id:1 g "person"
                     (Query.table g "authors"))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("aname", Whynot.Nip.str Datagen.Dblp.d5_target_author);
              ( "pages",
                Whynot.Nip.bag ~star:true
                  [ Whynot.Nip.tup [ ("homepage", Whynot.Nip.str Datagen.Dblp.d5_target_url) ] ] );
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("authors", [ [ "sites"; "url" ]; [ "sites"; "note" ] ]) ];
          gold = Some [ [ 3 ] ];
        });
  }

let all = [ d1; d2; d3; d4; d5 ]
