(* Evaluation scenarios (Section 6.2, Tables 4–6, 9, 10).

   A scenario packages a query (possibly with deliberately injected
   errors), a data generator, a why-not question, the attribute
   alternatives handed to the algorithm, and — when errors were injected —
   the gold-standard explanation. *)

open Nrab

type family = Paper | Dblp | Twitter | Tpch | Tpch_flat | Crime | Forestry

type instance = {
  question : Whynot.Question.t;
  alternatives : Whynot.Alternatives.alternatives;
  gold : int list list option;
      (* the operator sets that exactly cover the injected errors *)
}

type t = {
  name : string;
  family : family;
  description : string;
  operators : string;  (* operator summary, e.g. "π,σ,⋈,F,N,γ" *)
  make : scale:int -> ?seed:int -> unit -> instance;
}

let family_to_string = function
  | Paper -> "Paper"
  | Dblp -> "DBLP"
  | Twitter -> "Twitter"
  | Tpch -> "TPC-H"
  | Tpch_flat -> "TPC-H flat"
  | Crime -> "Crime"
  | Forestry -> "Forestry"

(* Helpers shared by the scenario definitions. *)

let ids_by_symbol (q : Query.t) : (string * int) list =
  List.map
    (fun (op : Query.t) -> (Query.op_symbol op.Query.node, op.Query.id))
    (Query.operators q)

let pp_instance ppf (i : instance) =
  Fmt.pf ppf "%a" Whynot.Question.pp i.question
