(* Crime scenarios C1–C3 (Table 6) — the qualitative comparison against
   Why-Not and Conseil.  The dataset is small enough that the exact MSR
   search (Whynot.Exact) can be used as ground truth. *)

open Nrab

let ( ==? ) a b = Expr.Cmp (Expr.Eq, a, b)

(* C1: who of a given description is tied to a crime?
   Roger exists only without blue hair (selection), and the sighting of
   his description names a dangling witness (join). *)
let c1 : Scenario.t =
  {
    name = "C1";
    family = Scenario.Crime;
    description = "π_{name,type}(C ⋈ (W ⋈ (S ⋈ σ_{hair=blue}(P))))";
    operators = "π,σ,⋈,⋈,⋈";
    make =
      (fun ~scale:_ ?seed:_ () ->
        let db = Datagen.Crime.db () in
        let g = Query.Gen.create ~start:10 () in
        let query =
          Query.project_attrs ~id:6 g [ "name"; "ctype" ]
            (Query.join ~id:4 g Query.Inner
               (Expr.attr "witness" ==? Expr.attr "wname")
               (Query.join ~id:3 g Query.Inner
                  (Expr.attr "ssector" ==? Expr.attr "csector")
                  (Query.join ~id:2 g Query.Inner
                     (Expr.And
                        ( Expr.attr "hair" ==? Expr.attr "shair",
                          Expr.attr "clothes" ==? Expr.attr "sclothes" ))
                     (Query.select ~id:1 g
                        (Expr.attr "hair" ==? Expr.str "blue")
                        (Query.table g "persons"))
                     (Query.table g "sightings"))
                  (Query.table g "crimes"))
               (Query.table g "witnesses"))
        in
        let missing =
          Whynot.Nip.tup
            [ ("name", Whynot.Nip.str "Roger"); ("ctype", Whynot.Nip.any) ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("sightings", [ [ "witness" ]; [ "reporter" ] ]) ];
          gold = Some [ [ 1; 4 ] ];
        });
  }

(* C2: which suspects match the description reported by witness Susan in
   a high sector?  Susan's sector is low; Helen (wrong name) and Joe
   (wrong name and sector) saw the suspect. *)
let c2 : Scenario.t =
  {
    name = "C2";
    family = Scenario.Crime;
    description = "π_{P.name}(P ⋈ (S ⋈ (C ⋈ σ_{name=Susan}(σ_{sector>90}(W)))))";
    operators = "π,σ,σ,⋈,⋈,⋈";
    make =
      (fun ~scale:_ ?seed:_ () ->
        let db = Datagen.Crime.db () in
        let g = Query.Gen.create ~start:10 () in
        let query =
          Query.project_attrs ~id:6 g [ "name" ]
            (Query.join ~id:5 g Query.Inner
               (Expr.And
                  ( Expr.attr "hair" ==? Expr.attr "shair",
                    Expr.attr "clothes" ==? Expr.attr "sclothes" ))
               (Query.table g "persons")
               (Query.join ~id:2 g Query.Inner
                  (Expr.attr "witness" ==? Expr.attr "wname")
                  (Query.table g "sightings")
                  (Query.join ~id:1 g Query.Inner
                     (Expr.attr "csector" ==? Expr.attr "wsector")
                     (Query.table g "crimes")
                     (Query.select ~id:4 g
                        (Expr.attr "wname" ==? Expr.str "Susan")
                        (Query.select ~id:3 g
                           (Expr.Cmp (Expr.Gt, Expr.attr "wsector", Expr.int 90))
                           (Query.table g "witnesses"))))))
        in
        let missing = Whynot.Nip.tup [ ("name", Whynot.Nip.str "Conedera") ] in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [];
          gold = Some [ [ 4 ]; [ 3; 4 ] ];
        });
  }

(* C3: witness descriptions per crime.  The projection exposes the hair
   description; "snow" is the clothing. *)
let c3 : Scenario.t =
  {
    name = "C3";
    family = Scenario.Crime;
    description = "π_{name,desc←hair}(S ⋈ (W ⋈ C))";
    operators = "π,⋈,⋈";
    make =
      (fun ~scale:_ ?seed:_ () ->
        let db = Datagen.Crime.db () in
        let g = Query.Gen.create ~start:10 () in
        let query =
          Query.project ~id:6 g
            [ ("name", Expr.attr "wname"); ("desc", Expr.attr "shair") ]
            (Query.join ~id:5 g Query.Inner
               (Expr.attr "witness" ==? Expr.attr "wname")
               (Query.table g "sightings")
               (Query.join ~id:1 g Query.Inner
                  (Expr.attr "wsector" ==? Expr.attr "csector")
                  (Query.table g "witnesses")
                  (Query.table g "crimes")))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("name", Whynot.Nip.str "Ashishbakshi");
              ("desc", Whynot.Nip.str "snow");
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("sightings", [ [ "shair" ]; [ "sclothes" ] ]) ];
          gold = Some [ [ 6 ] ];
        });
  }

let all = [ c1; c2; c3 ]
