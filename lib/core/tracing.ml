(* Data tracing (Section 5.3).

   For one schema alternative, evaluate the (attribute-substituted) query
   with *relaxed* operators — selections pass everything, inner flattens
   and joins are generalized to their outer variants — and annotate every
   intermediate tuple with:

   - [consistent]: the tuple matches the backtraced NIP at this operator
     (the re-validation that distinguishes this algorithm from prior
     lineage-based work);
   - [retained]:  the operator, with its (SA-substituted) original
     parameters, produces/keeps this tuple — false marks tuples that only a
     reparameterization of this operator lets through;
   - [surviving]: the tuple appears in the unrelaxed intermediate result
     (cumulative across upstream operators) — identifies the original
     query's data inside the trace;
   - [parents]:   the immediate-predecessor rows (lineage).

   The per-SA relations here correspond to the per-SA column groups of the
   merged annotated tables in Figures 4–7; merging by id is unnecessary in
   a structural (rather than columnar) representation.

   Aggregate constraints of the why-not question (e.g. revenue > 0) are
   checked *optimistically* via achievable ranges over sub-multisets of
   contributions, since the algorithm does not trace aggregate subsets
   (Section 5.5, corner (iii)). *)

open Nested
open Nrab
module Int_set = Opset.Int_set

type trow = {
  rid : int;
  data : Value.t;
  consistent : bool;
  retained : bool;   (* this operator's original parameters keep this row *)
  surviving : bool;  (* row appears in the unrelaxed intermediate result *)
  parents : int list;
  ranges : (string * (float * float)) list;
      (* achievable intervals for aggregate-output fields *)
}

type op_trace = {
  op_id : int;
  op_node : Query.node;
  nip : Nip.t;
  rows : trow list;
}

type t = {
  sa : Alternatives.sa;
  ops : op_trace list;  (* topological order: children before parents *)
  root_op : int;
}

let op_trace (tr : t) (op_id : int) : op_trace option =
  List.find_opt (fun o -> o.op_id = op_id) tr.ops

let root_rows (tr : t) : trow list =
  match op_trace tr tr.root_op with Some o -> o.rows | None -> []

let find_row (tr : t) (rid : int) : (trow * int) option =
  List.find_map
    (fun o ->
      List.find_map
        (fun r -> if r.rid = rid then Some (r, o.op_id) else None)
        o.rows)
    tr.ops

(* --- Optimistic NIP matching over rows with aggregate ranges ----------- *)

let float_of_value (v : Value.t) : float option =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

let interval_satisfies (c : Expr.cmp) (bound : Value.t) ((lo, hi) : float * float)
    : bool =
  match float_of_value bound with
  | None -> false
  | Some b -> (
    match c with
    | Expr.Eq -> lo <= b && b <= hi
    | Expr.Neq -> not (lo = b && hi = b)
    | Expr.Lt -> lo < b
    | Expr.Le -> lo <= b
    | Expr.Gt -> hi > b
    | Expr.Ge -> hi >= b)

(* Match a traced row against an operator-level NIP, using achievable
   intervals for fields produced by aggregation. *)
let row_matches (nip : Nip.t) (row_data : Value.t)
    (ranges : (string * (float * float)) list) : bool =
  match nip with
  | Nip.Tup constraints ->
    List.for_all
      (fun (label, pat) ->
        match pat, List.assoc_opt label ranges with
        | Nip.Pred (c, bound), Some interval -> interval_satisfies c bound interval
        | Nip.Prim bound, Some interval ->
          interval_satisfies Expr.Eq bound interval
        | _ -> (
          match Value.field label row_data with
          | Some fv -> Nip.matches fv pat
          | None -> false))
      constraints
  | other -> Nip.matches row_data other

(* --- Tracing ------------------------------------------------------------ *)

type state = { mutable next_rid : int; mutable traces : op_trace list }

let fresh_rid st =
  let rid = st.next_rid in
  st.next_rid <- rid + 1;
  rid

let record st op nip rows =
  st.traces <-
    { op_id = op.Query.id; op_node = op.Query.node; nip; rows } :: st.traces;
  rows

(* key projection on a plain tuple *)
let key_of attrs (t : Value.t) : Value.t =
  Value.Tuple
    (List.map
       (fun a -> (a, Option.value ~default:Value.Null (Value.field a t)))
       attrs)

let group_by (key : trow -> Value.t) (rows : trow list) :
    (Value.t * trow list) list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = key row in
      match Hashtbl.find_opt tbl k with
      | Some rs -> Hashtbl.replace tbl k (row :: rs)
      | None ->
        order := k :: !order;
        Hashtbl.replace tbl k [ row ])
    rows;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let run ?(revalidate = true) ~(env : Typecheck.env) (db : Relation.Db.t)
    (sa : Alternatives.sa) (bt : Backtrace.t) : t =
  (* Chaos hook: fires once per SA's relaxed evaluation, inside the
     pipeline's per-phase retry scope, so an armed transient fault here
     is recomputed from the (immutable) backtrace and database. *)
  Obs.Faultinject.fire "tracing.relaxed";
  let st = { next_rid = 0; traces = [] } in
  let q = sa.Alternatives.query in
  (* rid -> consistency, for the no-re-validation ablation, which checks
     compatibility at the table accesses only and then propagates the flag
     forward (the behaviour of prior lineage-based approaches) *)
  let row_consistency : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let fields_of sub =
    match Typecheck.infer_result env sub with
    | Ok ty -> Vtype.relation_fields ty
    | Error e ->
      invalid_arg ("Tracing.run: ill-typed SA query: " ^ e.Typecheck.message)
  in
  let rec go (op : Query.t) : trow list =
    let nip = Backtrace.op_nip bt op.Query.id in
    let is_table =
      match op.Query.node with Query.Table _ -> true | _ -> false
    in
    let mk ?(ranges = []) ?(retained = true) ?surviving ~parents data =
      let surviving = Option.value ~default:retained surviving in
      let consistent =
        if revalidate || is_table then row_matches nip data ranges
        else
          List.exists
            (fun pid ->
              Option.value ~default:false
                (Hashtbl.find_opt row_consistency pid))
            parents
      in
      let rid = fresh_rid st in
      Hashtbl.replace row_consistency rid consistent;
      { rid; data; consistent; retained; surviving; parents; ranges }
    in
    match op.Query.node, op.Query.children with
    | Query.Table name, [] ->
      let rel = Relation.Db.find_exn name db in
      let rows =
        List.map
          (fun t -> mk ~retained:true ~surviving:true ~parents:[] t)
          (Relation.tuples rel)
      in
      record st op nip rows
    | Query.Select pred, [ c ] ->
      let input = go c in
      let rows =
        List.map
          (fun r ->
            let keeps = Expr.eval_pred r.data pred in
            {
              (mk ~ranges:r.ranges ~retained:keeps
                 ~surviving:(r.surviving && keeps) ~parents:[ r.rid ] r.data)
              with
              consistent = r.consistent;
            })
          input
      in
      record st op nip rows
    | Query.Project cols, [ c ] ->
      let input = go c in
      let project t =
        Value.Tuple (List.map (fun (n, e) -> (n, Expr.eval t e)) cols)
      in
      let project_ranges ranges =
        List.filter_map
          (fun (n, e) ->
            match e with
            | Expr.Attr a ->
              Option.map (fun iv -> (n, iv)) (List.assoc_opt a ranges)
            | _ -> None)
          cols
      in
      let rows =
        List.map
          (fun r ->
            mk
              ~ranges:(project_ranges r.ranges)
              ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              (project r.data))
          input
      in
      record st op nip rows
    | Query.Rename pairs, [ c ] ->
      let input = go c in
      let rename_label l =
        match List.find_opt (fun (_, old) -> String.equal old l) pairs with
        | Some (fresh, _) -> fresh
        | None -> l
      in
      let rename t =
        match t with
        | Value.Tuple fs ->
          Value.Tuple (List.map (fun (l, v) -> (rename_label l, v)) fs)
        | other -> other
      in
      let rows =
        List.map
          (fun r ->
            mk
              ~ranges:(List.map (fun (l, iv) -> (rename_label l, iv)) r.ranges)
              ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              (rename r.data))
          input
      in
      record st op nip rows
    | Query.Dedup, [ c ] ->
      let input = go c in
      let rows =
        List.map
          (fun (data, members) ->
            {
              (mk ~retained:true
                 ~surviving:(List.exists (fun m -> m.surviving) members)
                 ~parents:(List.map (fun m -> m.rid) members)
                 data)
              with
              consistent = List.exists (fun m -> m.consistent) members;
            })
          (group_by (fun r -> r.data) input)
      in
      record st op nip rows
    | Query.Union, [ l; r ] ->
      let il = go l and ir = go r in
      let rows =
        List.map
          (fun p ->
            {
              (mk ~ranges:p.ranges ~retained:true ~surviving:p.surviving
                 ~parents:[ p.rid ] p.data)
              with
              consistent = p.consistent;
            })
          (il @ ir)
      in
      record st op nip rows
    | Query.Diff, [ l; r ] ->
      let il = go l and ir = go r in
      (* Relaxation keeps every left row; [surviving] reflects true bag
         difference against the surviving right rows. *)
      let surviving_right = Hashtbl.create 32 in
      List.iter
        (fun p ->
          if p.surviving then
            Hashtbl.replace surviving_right p.data
              (1
              + Option.value ~default:0
                  (Hashtbl.find_opt surviving_right p.data)))
        ir;
      let rows =
        List.map
          (fun p ->
            let removed =
              p.surviving
              &&
              match Hashtbl.find_opt surviving_right p.data with
              | Some n when n > 0 ->
                Hashtbl.replace surviving_right p.data (n - 1);
                true
              | _ -> false
            in
            {
              (mk ~ranges:p.ranges ~retained:(not removed)
                 ~surviving:(p.surviving && not removed) ~parents:[ p.rid ]
                 p.data)
              with
              consistent = p.consistent;
            })
          il
      in
      record st op nip rows
    | Query.Flatten_tuple a, [ c ] ->
      let input = go c in
      let inner_ty =
        match List.assoc_opt a (fields_of c) with
        | Some ty -> ty
        | None -> invalid_arg ("Tracing: unknown attribute " ^ a)
      in
      let rows =
        List.map
          (fun r ->
            let data =
              match Value.field a r.data with
              | Some (Value.Tuple _ as inner) -> Value.concat_tuples r.data inner
              | _ -> Value.concat_tuples r.data (Vtype.null_tuple inner_ty)
            in
            mk ~ranges:r.ranges ~retained:true ~surviving:r.surviving
              ~parents:[ r.rid ] data)
          input
      in
      record st op nip rows
    | Query.Flatten (kind, a), [ c ] ->
      let input = go c in
      let inner_ty =
        match List.assoc_opt a (fields_of c) with
        | Some (Vtype.TBag ety) -> ety
        | _ -> invalid_arg ("Tracing: attribute " ^ a ^ " is not a relation")
      in
      let rows =
        List.concat_map
          (fun r ->
            let elems =
              match Value.field a r.data with
              | Some (Value.Bag _ as bag) -> Value.expand bag
              | _ -> []
            in
            match elems with
            | [] ->
              (* tracked exactly because the inner flatten drops it *)
              let keeps = kind = Query.Flat_outer in
              [
                mk ~ranges:r.ranges ~retained:keeps
                  ~surviving:(r.surviving && keeps) ~parents:[ r.rid ]
                  (Value.concat_tuples r.data (Vtype.null_tuple inner_ty));
              ]
            | elems ->
              List.map
                (fun u ->
                  mk ~ranges:r.ranges ~retained:true ~surviving:r.surviving
                    ~parents:[ r.rid ]
                    (Value.concat_tuples r.data u))
                elems)
          input
      in
      record st op nip rows
    | Query.Join (kind, pred), [ l; r ] ->
      let il = go l and ir = go r in
      let lnull = Vtype.null_tuple (Vtype.TTuple (fields_of l)) in
      let rnull = Vtype.null_tuple (Vtype.TTuple (fields_of r)) in
      let matched_l = Hashtbl.create 64 and matched_r = Hashtbl.create 64 in
      let surv_matched_l = Hashtbl.create 64
      and surv_matched_r = Hashtbl.create 64 in
      (* Equi-key conjuncts make the candidate enumeration a hash join —
         one of the design choices that keep tracing scalable (§6.1); any
         pair satisfying the full predicate necessarily agrees on the
         equi-key conjuncts, so probing by key is lossless and only the
         residual predicate needs evaluating per candidate.  Candidates
         are enumerated lazily, so even the keyless (cross-product) trace
         never materializes the |L|·|R| pair list. *)
      let lfields = List.map fst (fields_of l)
      and rfields = List.map fst (fields_of r) in
      let keys, residual = Engine.Exec.equi_split lfields rfields pred in
      let candidate_pairs : (trow * trow) Seq.t =
        match keys with
        | [] ->
          Seq.concat_map
            (fun lp -> Seq.map (fun rp -> (lp, rp)) (List.to_seq ir))
            (List.to_seq il)
        | keys ->
          let lkey_attrs = List.map fst keys
          and rkey_attrs = List.map snd keys in
          let key_of_row attrs t =
            List.map
              (fun a -> Option.value ~default:Value.Null (Value.field a t))
              attrs
          in
          (* Rows whose key contains Null are not indexed: [Null = Null]
             is false under [eval_pred], so they cannot match (and a Null
             in a probe key then finds no bucket either). *)
          let right_index = Hashtbl.create 256 in
          List.iter
            (fun rp ->
              let k = key_of_row rkey_attrs rp.data in
              if not (List.exists (fun v -> v = Value.Null) k) then
                Hashtbl.replace right_index k
                  (rp :: Option.value ~default:[] (Hashtbl.find_opt right_index k)))
            ir;
          Seq.concat_map
            (fun lp ->
              let k = key_of_row lkey_attrs lp.data in
              Seq.map
                (fun rp -> (lp, rp))
                (List.to_seq
                   (Option.value ~default:[] (Hashtbl.find_opt right_index k))))
            (List.to_seq il)
      in
      let matched =
        Seq.filter_map
          (fun (lp, rp) ->
            let data = Value.concat_tuples lp.data rp.data in
            if Expr.eval_pred data residual then begin
              Hashtbl.replace matched_l lp.rid ();
              Hashtbl.replace matched_r rp.rid ();
              if lp.surviving && rp.surviving then begin
                Hashtbl.replace surv_matched_l lp.rid ();
                Hashtbl.replace surv_matched_r rp.rid ()
              end;
              Some
                (mk
                   ~ranges:(lp.ranges @ rp.ranges)
                   ~retained:true
                   ~surviving:(lp.surviving && rp.surviving)
                   ~parents:[ lp.rid; rp.rid ]
                   data)
            end
            else None)
          candidate_pairs
        |> List.of_seq
      in
      let pad_left =
        List.filter_map
          (fun lp ->
            if Hashtbl.mem matched_l lp.rid then None
            else
              let keeps = kind = Query.Left || kind = Query.Full in
              Some
                (mk ~ranges:lp.ranges ~retained:keeps
                   ~surviving:
                     (lp.surviving && keeps
                     && not (Hashtbl.mem surv_matched_l lp.rid))
                   ~parents:[ lp.rid ]
                   (Value.concat_tuples lp.data rnull)))
          il
      in
      let pad_right =
        List.filter_map
          (fun rp ->
            if Hashtbl.mem matched_r rp.rid then None
            else
              let keeps = kind = Query.Right || kind = Query.Full in
              Some
                (mk ~ranges:rp.ranges ~retained:keeps
                   ~surviving:
                     (rp.surviving && keeps
                     && not (Hashtbl.mem surv_matched_r rp.rid))
                   ~parents:[ rp.rid ]
                   (Value.concat_tuples lnull rp.data)))
          ir
      in
      record st op nip (matched @ pad_left @ pad_right)
    | Query.Nest_tuple (pairs, c_name), [ c ] ->
      let input = go c in
      let attrs = List.map snd pairs in
      let nest t =
        match t with
        | Value.Tuple fs ->
          let rest = List.filter (fun (l, _) -> not (List.mem l attrs)) fs in
          let nested =
            List.map
              (fun (label, a) ->
                (label, Option.value ~default:Value.Null (List.assoc_opt a fs)))
              pairs
          in
          Value.Tuple (rest @ [ (c_name, Value.Tuple nested) ])
        | other -> other
      in
      let rows =
        List.map
          (fun r ->
            mk
              ~ranges:
                (List.filter (fun (l, _) -> not (List.mem l attrs)) r.ranges)
              ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              (nest r.data))
          input
      in
      record st op nip rows
    | Query.Nest_rel (pairs, c_name), [ c ] ->
      let input = go c in
      let attrs = List.map snd pairs in
      let all = List.map fst (fields_of c) in
      let group_attrs = List.filter (fun a -> not (List.mem a attrs)) all in
      let proj t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               (label, Option.value ~default:Value.Null (Value.field a t)))
             pairs)
      in
      let nest_members members =
        Value.bag_of_list (List.map (fun m -> proj m.data) members)
      in
      let rows =
        List.concat_map
          (fun (k, members) ->
            let relaxed_data =
              Value.concat_tuples k
                (Value.Tuple [ (c_name, nest_members members) ])
            in
            let surviving_members = List.filter (fun m -> m.surviving) members in
            let original_data =
              if surviving_members = [] then None
              else
                Some
                  (Value.concat_tuples k
                     (Value.Tuple [ (c_name, nest_members surviving_members) ]))
            in
            let relaxed =
              mk ~retained:true
                ~surviving:(original_data = Some relaxed_data)
                ~parents:(List.map (fun m -> m.rid) members)
                relaxed_data
            in
            match original_data with
            | Some od when od <> relaxed_data ->
              [
                relaxed;
                mk ~retained:true ~surviving:true
                  ~parents:(List.map (fun m -> m.rid) surviving_members)
                  od;
              ]
            | _ -> [ relaxed ])
          (group_by (fun r -> key_of group_attrs r.data) input)
      in
      record st op nip rows
    | Query.Agg_tuple (fn, a, b), [ c ] ->
      let input = go c in
      let rows =
        List.map
          (fun r ->
            let values =
              match Value.field a r.data with
              | Some (Value.Bag _ as bag) ->
                List.map
                  (fun v ->
                    match v with
                    | Value.Tuple [ (_, inner) ] -> inner
                    | other -> other)
                  (Value.expand bag)
              | _ -> []
            in
            let data =
              Value.concat_tuples r.data
                (Value.Tuple [ (b, Agg.apply fn values) ])
            in
            let ranges =
              match Agg.achievable_range fn values with
              | Some iv -> (b, iv) :: r.ranges
              | None -> r.ranges
            in
            mk ~ranges ~retained:true ~surviving:r.surviving ~parents:[ r.rid ]
              data)
          input
      in
      record st op nip rows
    | Query.Group_agg (group, aggs), [ c ] ->
      let input = go c in
      let group_key t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               (label, Option.value ~default:Value.Null (Value.field a t)))
             group)
      in
      let aggregate members =
        let agg_fields_and_ranges =
          List.map
            (fun (fn, a, out) ->
              let values =
                match a with
                | Some a ->
                  List.map
                    (fun m ->
                      Option.value ~default:Value.Null (Value.field a m.data))
                    members
                | None -> List.map (fun _ -> Value.Int 1) members
              in
              let field = (out, Agg.apply fn values) in
              let range =
                Option.map (fun iv -> (out, iv)) (Agg.achievable_range fn values)
              in
              (field, range))
            aggs
        in
        let fields = List.map fst agg_fields_and_ranges in
        let ranges = List.filter_map snd agg_fields_and_ranges in
        (fields, ranges)
      in
      let rows =
        List.concat_map
          (fun (k, members) ->
            let fields, ranges = aggregate members in
            let relaxed_data = Value.concat_tuples k (Value.Tuple fields) in
            let surviving_members = List.filter (fun m -> m.surviving) members in
            let original_data =
              if surviving_members = [] then None
              else
                let fields, _ = aggregate surviving_members in
                Some (Value.concat_tuples k (Value.Tuple fields))
            in
            let relaxed =
              mk ~ranges ~retained:true
                ~surviving:(original_data = Some relaxed_data)
                ~parents:(List.map (fun m -> m.rid) members)
                relaxed_data
            in
            match original_data with
            | Some od when od <> relaxed_data ->
              [
                relaxed;
                mk ~retained:true ~surviving:true
                  ~parents:(List.map (fun m -> m.rid) surviving_members)
                  od;
              ]
            | _ -> [ relaxed ])
          (group_by (fun r -> group_key r.data) input)
      in
      record st op nip rows
    | _ -> invalid_arg "Tracing.run: malformed query"
  in
  ignore (go q);
  { sa; ops = List.rev st.traces; root_op = q.Query.id }
