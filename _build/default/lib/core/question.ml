(* Why-not questions (Definition 5): Φ = ⟨Q, D, t⟩ where t is a NIP over
   the output schema of Q. *)

open Nested
open Nrab

type t = { query : Query.t; db : Relation.Db.t; missing : Nip.t }

let make ~query ~db ~missing = { query; db; missing }

(* Does the NIP conform to the query's output schema (Definition 5
   requires a NIP of the output's tuple type)? *)
let check_missing (phi : t) : (unit, string) result =
  let env =
    List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables phi.db)
  in
  match Typecheck.infer_result env phi.query with
  | Error e -> Error ("query is ill-typed: " ^ e.Typecheck.message)
  | Ok ty -> Nip.check (Vtype.element ty) phi.missing

(* A why-not question is proper only if no tuple of the original result
   matches the NIP (the answer really is missing). *)
let is_proper (phi : t) : bool =
  let result = Eval.eval phi.db phi.query in
  not
    (List.exists
       (fun tuple -> Nip.matches tuple phi.missing)
       (Relation.distinct_tuples result))

let original_result (phi : t) : Relation.t = Eval.eval phi.db phi.query

(* Tuples of the result of query [q] (a reparameterization of Φ's query)
   that match the missing-answer NIP. *)
let matching_tuples (phi : t) (q : Query.t) : Value.t list =
  let result = Eval.eval phi.db q in
  List.filter
    (fun tuple -> Nip.matches tuple phi.missing)
    (Relation.distinct_tuples result)

let is_successful (phi : t) (q : Query.t) : bool =
  match matching_tuples phi q with [] -> false | _ :: _ -> true

let pp ppf (phi : t) =
  Fmt.pf ppf "@[<v>why-not %a@,in %a@]" Nip.pp phi.missing Query.pp phi.query
