lib/nested/path.ml: Fmt List Option String Value Vtype
