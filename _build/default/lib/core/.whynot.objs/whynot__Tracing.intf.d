lib/core/tracing.mli: Alternatives Backtrace Expr Nested Nip Nrab Query Relation Typecheck Value
