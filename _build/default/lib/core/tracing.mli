(** Data tracing (Section 5.3).

    For one schema alternative, the (attribute-substituted) query is
    evaluated with *relaxed* operators — selections pass everything,
    inner flattens and joins are generalized to their outer variants —
    and every intermediate tuple is annotated.  The per-SA relations here
    correspond to the per-SA column groups of the merged annotated tables
    of Figures 4–7, represented structurally instead of columnar.

    Aggregate constraints of the why-not question are checked
    *optimistically* via achievable ranges over sub-multisets of
    contributions, since the algorithm does not trace aggregate subsets
    (Section 5.5, corner (iii)). *)

open Nested
open Nrab

type trow = {
  rid : int;  (** unique row id within the trace *)
  data : Value.t;
  consistent : bool;
      (** matches the backtraced NIP at this operator — the re-validation
          that distinguishes the approach from prior lineage-based work *)
  retained : bool;
      (** this operator, with its (SA-substituted) original parameters,
          produces/keeps this row; [false] marks rows only a
          reparameterization admits *)
  surviving : bool;
      (** the row appears in the unrelaxed intermediate result
          (cumulative across upstream operators) *)
  parents : int list;  (** immediate-predecessor rows (lineage) *)
  ranges : (string * (float * float)) list;
      (** achievable intervals for aggregate-output fields *)
}

type op_trace = {
  op_id : int;
  op_node : Query.node;
  nip : Nip.t;
  rows : trow list;
}

type t = {
  sa : Alternatives.sa;
  ops : op_trace list;  (** topological order: children before parents *)
  root_op : int;
}

val op_trace : t -> int -> op_trace option
val root_rows : t -> trow list
val find_row : t -> int -> (trow * int) option

(** Optimistic NIP matching for annotated rows: [Pred]/[Prim] constraints
    on fields with achievable intervals are checked by interval
    satisfiability. *)
val row_matches : Nip.t -> Value.t -> (string * (float * float)) list -> bool

val interval_satisfies : Expr.cmp -> Value.t -> float * float -> bool

(** Trace one schema alternative.  [bt] must be the backtrace of the SA's
    (substituted) query.

    [revalidate] (default true) controls the paper's second novel
    technique: with [false], compatibility is checked at the table
    accesses only and the flag is merely propagated forward — the
    behaviour of prior lineage-based approaches, exposed as an ablation
    (it admits false positives on nested data). *)
val run :
  ?revalidate:bool ->
  env:Typecheck.env ->
  Relation.Db.t ->
  Alternatives.sa ->
  Backtrace.t ->
  t
