lib/nrab/df.ml: Eval Fmt List Nested Query
