(* Stage-level recovery: the checkpoint codec (round-trip + corruption
   corpus), replay-from-checkpoint semantics (lineage truncated at the
   barrier), disk spill under a memory watermark, and chaos-hardened
   byte-identity for every shuffle/checkpoint fault site.  Ends with
   the chaos-coverage lint: every registered fault site must have been
   armed by some test in this binary. *)

open Nested
module C = Engine.Columnar
module Ck = Engine.Checkpoint
module D = Engine.Dataset

let transient msg = Engine.Fault.Transient (Failure msg)

let fast_retries n =
  Engine.Fault.retries ~base_backoff_ms:0.0 ~max_backoff_ms:0.0 n

let counter_value name = Obs.Metrics.Counter.value (Obs.Metrics.counter name)

(* Run [f] with an isolated checkpoint config rooted in a fresh temp
   directory, sweeping the scratch afterwards so tests never leak. *)
let with_ckpt ?(shuffles = true) ?max_memory_bytes f =
  let base = Filename.temp_file "whynot-recover" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  let cfg =
    {
      Ck.dir = Some base;
      checkpoint_shuffles = shuffles;
      max_memory_bytes;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Ck.sweep ();
      try Unix.rmdir base with Unix.Unix_error _ -> ())
    (fun () -> Ck.with_config (Some cfg) f)

(* --- codec: round-trip --------------------------------------------------- *)

(* Nested values biased toward the codec's hard cases: deep nesting,
   empty bags, Null-heavy columns, duplicate strings (dictionary
   re-interning). *)
let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           frequency
             [
               (2, return Value.Null);
               (1, map (fun b -> Value.Bool b) bool);
               (2, map (fun i -> Value.Int i) small_signed_int);
               (1, map (fun f -> Value.Float f) (float_bound_inclusive 100.));
               ( 2,
                 map
                   (fun s -> Value.String s)
                   (string_size ~gen:(char_range 'a' 'c') (return 2)) );
             ]
         else
           frequency
             [
               (2, map (fun i -> Value.Int i) small_signed_int);
               (1, return Value.Null);
               ( 2,
                 map
                   (fun vs ->
                     Value.Tuple (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) vs))
                   (list_size (int_range 1 3) (self (n / 2))) );
               ( 2,
                 map
                   (fun vs -> Value.bag_of_list vs)
                   (list_size (int_range 0 4) (self (n / 2))) );
             ])

let arb_rows =
  QCheck.make
    ~print:(fun vs -> Fmt.str "%a" (Fmt.Dump.list Value.pp) vs)
    QCheck.Gen.(list_size (int_range 0 12) value_gen)

let rows_equal a b =
  List.length a = List.length b && List.for_all2 Value.equal a b

let qcheck_codec_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips any batch" ~count:300
    arb_rows (fun rows ->
      let b = C.of_rows rows in
      rows_equal rows (C.to_rows (Ck.decode (Ck.encode b))))

let qcheck_frame_roundtrip =
  QCheck.Test.make ~name:"frame/unframe round-trips any payload" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 200))
    (fun payload -> Ck.unframe (Ck.frame payload) = payload)

(* Garbage into [unframe] must raise [Corrupt] — never anything else,
   and never a giant allocation. *)
let qcheck_unframe_garbage =
  QCheck.Test.make ~name:"unframe rejects garbage with Corrupt" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s ->
      match Ck.unframe s with
      | _ -> s = Ck.unframe s (* vanishingly unlikely; accept fixpoints *)
      | exception Ck.Corrupt _ -> true
      | exception _ -> false)

let test_codec_special_shapes () =
  let check_batch name (b : C.t) =
    let back = Ck.decode (Ck.encode b) in
    Alcotest.(check bool)
      (name ^ " round-trips") true
      (rows_equal (C.to_rows b) (C.to_rows back))
  in
  check_batch "empty" C.empty;
  check_batch "all-null" { C.n = 5; row = C.CNull 5 };
  check_batch "const int" { C.n = 4; row = C.CConst (4, Value.Int 42) };
  check_batch "const string"
    { C.n = 3; row = C.CConst (3, Value.String "forest") };
  check_batch "const nested"
    {
      C.n = 2;
      row =
        C.CConst
          ( 2,
            Value.Tuple
              [ ("b", Value.bag_of_list [ Value.Int 1; Value.Int 1 ]) ] );
    };
  check_batch "dict strings"
    (C.of_rows
       [
         Value.String "aa";
         Value.String "bb";
         Value.String "aa";
         Value.Null;
         Value.String "bb";
       ])

(* --- codec: corruption corpus -------------------------------------------- *)

let corpus_batch () =
  C.of_rows
    (List.init 16 (fun i ->
         Value.Tuple
           [
             ("id", Value.Int i);
             ("name", Value.String (if i mod 2 = 0 then "even" else "odd"));
             ( "tags",
               Value.bag_of_list
                 (List.init (i mod 3) (fun j -> Value.Int (i * 10 + j))) );
           ]))

let test_truncation_rejected () =
  let framed = Ck.frame (Ck.encode (corpus_batch ())) in
  for len = 0 to String.length framed - 1 do
    match Ck.unframe (String.sub framed 0 len) with
    | _ -> Alcotest.fail (Fmt.str "truncation to %d bytes accepted" len)
    | exception Ck.Corrupt _ -> ()
    | exception e ->
      Alcotest.fail
        (Fmt.str "truncation to %d raised %s, not Corrupt" len
           (Printexc.to_string e))
  done

let test_bitflips_rejected () =
  let framed = Ck.frame (Ck.encode (corpus_batch ())) in
  (* every single-bit flip anywhere in the frame — header, length, CRC,
     or payload — must be caught by the magic/length/CRC checks *)
  for i = 0 to String.length framed - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string framed in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Ck.unframe (Bytes.to_string b) with
      | _ -> Alcotest.fail (Fmt.str "bit %d of byte %d accepted" bit i)
      | exception Ck.Corrupt _ -> ()
      | exception e ->
        Alcotest.fail
          (Fmt.str "bit %d of byte %d raised %s, not Corrupt" bit i
             (Printexc.to_string e))
    done
  done

(* [decode] is only reached behind the CRC in production, but it must
   still be hardened: a flipped payload byte may decode to a different
   (valid) batch or raise [Corrupt], never crash or over-allocate. *)
let test_payload_bitflips_never_crash () =
  let payload = Ck.encode (corpus_batch ()) in
  for i = 0 to String.length payload - 1 do
    let b = Bytes.of_string payload in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x55));
    match Ck.decode (Bytes.to_string b) with
    | (_ : C.t) -> ()
    | exception Ck.Corrupt _ -> ()
    | exception e ->
      Alcotest.fail
        (Fmt.str "payload byte %d raised %s, not Corrupt" i
           (Printexc.to_string e))
  done

(* A CRC-valid frame whose payload is structurally malformed (bad bag
   offsets) must be rejected at decode time — not surface later as
   [Invalid_argument] deep in a columnar kernel.  [encode] writes the
   arrays verbatim, so building invalid [CBag]s directly produces
   exactly the payloads a direct [decode] caller (or a corrupted-but-
   CRC-colliding file) could present. *)
let test_malformed_bag_offsets_rejected () =
  let ints a = C.CInt (a, None) in
  let bag bn boff bmult belems =
    { C.n = bn; row = C.CBag { bn; boff; bmult; belems; bpresent = None } }
  in
  let cases =
    [
      ("offsets not starting at 0", bag 2 [| 1; 2; 3 |] [| 1; 1; 1 |]
         (ints [| 1; 2; 3 |]));
      ("decreasing offsets", bag 2 [| 0; 3; 1 |] [| 1; 1; 1 |]
         (ints [| 1; 2; 3 |]));
      ("offsets beyond stored elements", bag 2 [| 0; 2; 9 |] [| 1; 1; 1 |]
         (ints [| 1; 2; 3 |]));
      ("multiplicities shorter than offsets", bag 2 [| 0; 2; 3 |] [| 1 |]
         (ints [| 1; 2; 3 |]));
    ]
  in
  List.iter
    (fun (name, b) ->
      match Ck.decode (Ck.encode b) with
      | _ -> Alcotest.fail (Fmt.str "%s: accepted" name)
      | exception Ck.Corrupt _ -> ()
      | exception e ->
        Alcotest.fail
          (Fmt.str "%s: raised %s, not Corrupt" name (Printexc.to_string e)))
    cases

(* --- replay from checkpoint ---------------------------------------------- *)

let key_of = function
  | Value.Tuple fields -> (
    match List.assoc_opt "k" fields with Some v -> v | None -> Value.Null)
  | _ -> Value.Null

let shuffle_input () =
  D.distribute ~partitions:4
    (List.init 64 (fun i ->
         Value.Tuple [ ("k", Value.Int (i mod 7)); ("v", Value.Int i) ]))

let sorted_list d = List.sort Value.compare (D.to_list d)

(* A transient fault downstream of a checkpointed shuffle replays from
   the barrier: [from_checkpoint] moves, [from_source] does not. *)
let test_replay_from_checkpoint () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:true (fun () ->
      let shuffled, _ =
        D.shuffle_by ~barrier:"t-replay" ~partitions:4 key_of (shuffle_input ())
      in
      let expected =
        sorted_list (D.map_partitions ~label:"base" Fun.id shuffled)
      in
      let from_ckpt0 = counter_value "engine.recover.from_checkpoint" in
      let from_src0 = counter_value "engine.recover.from_source" in
      let replayed0 = counter_value "engine.recover.replayed_partitions" in
      let failed = ref false in
      let out =
        D.map_partitions ~retry:(fast_retries 3) ~label:"flaky"
          (fun rows ->
            if not !failed then begin
              failed := true;
              raise (transient "chaos")
            end;
            rows)
          shuffled
      in
      Alcotest.(check (list string))
        "replayed run is identical"
        (List.map Value.to_string expected)
        (List.map Value.to_string (sorted_list out));
      Alcotest.(check bool)
        "replay hit the checkpoint" true
        (counter_value "engine.recover.from_checkpoint" - from_ckpt0 >= 1);
      Alcotest.(check int)
        "nothing recomputed from source" 0
        (counter_value "engine.recover.from_source" - from_src0);
      Alcotest.(check bool)
        "replayed partitions counted" true
        (counter_value "engine.recover.replayed_partitions" - replayed0 >= 1))

(* The contrast case: no barrier, so the same fault replays from the
   source input instead. *)
let test_replay_from_source_without_barrier () =
  Obs.Faultinject.reset ();
  let shuffled, _ = D.shuffle_by ~partitions:4 key_of (shuffle_input ()) in
  let from_ckpt0 = counter_value "engine.recover.from_checkpoint" in
  let from_src0 = counter_value "engine.recover.from_source" in
  let failed = ref false in
  let out =
    D.map_partitions ~retry:(fast_retries 3) ~label:"flaky"
      (fun rows ->
        if not !failed then begin
          failed := true;
          raise (transient "chaos")
        end;
        rows)
      shuffled
  in
  Alcotest.(check int) "all rows survive" 64 (List.length (D.to_list out));
  Alcotest.(check int)
    "no checkpoint to replay from" 0
    (counter_value "engine.recover.from_checkpoint" - from_ckpt0);
  Alcotest.(check int)
    "source replay counted" 1
    (counter_value "engine.recover.from_source" - from_src0)

(* A torn read of the checkpoint file itself is a transient fault inside
   the task's retry scope: the re-attempt re-reads and succeeds. *)
let test_torn_shuffle_read_is_retryable () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:true (fun () ->
      let shuffled, _ =
        D.shuffle_by ~barrier:"t-torn" ~partitions:4 key_of (shuffle_input ())
      in
      (* lose a partition, then make its first re-read fault *)
      D.recover_partition shuffled 0;
      Obs.Faultinject.arm "engine.shuffle.read"
        (Obs.Faultinject.fail_once (transient "torn read"));
      let out =
        D.map_partitions ~retry:(fast_retries 3) ~label:"reader" Fun.id
          shuffled
      in
      Obs.Faultinject.reset ();
      Alcotest.(check int) "all rows survive the torn read" 64
        (List.length (D.to_list out)))

(* A garbled checkpoint file fails its CRC and falls back to the lineage
   recompute — wrong data can never re-enter the run. *)
let test_garbled_checkpoint_recomputes () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:true (fun () ->
      (* every write is garbled after the CRC is computed *)
      Obs.Faultinject.arm "engine.checkpoint.io"
        (Obs.Faultinject.Garble
           (fun s ->
             if String.length s <= 17 then s
             else begin
               let b = Bytes.of_string s in
               Bytes.set b 17 (Char.chr (Char.code (Bytes.get b 17) lxor 0xff));
               Bytes.to_string b
             end));
      let shuffled, _ =
        D.shuffle_by ~barrier:"t-crc" ~partitions:4 key_of (shuffle_input ())
      in
      let expected =
        sorted_list (D.map_partitions ~label:"base" Fun.id shuffled)
      in
      let corrupt0 = counter_value "engine.checkpoint.corrupt" in
      let from_src0 = counter_value "engine.recover.from_source" in
      let failed = ref false in
      let out =
        D.map_partitions ~retry:(fast_retries 3) ~label:"flaky"
          (fun rows ->
            if not !failed then begin
              failed := true;
              raise (transient "chaos")
            end;
            rows)
          shuffled
      in
      Obs.Faultinject.reset ();
      Alcotest.(check (list string))
        "recomputed run is identical"
        (List.map Value.to_string expected)
        (List.map Value.to_string (sorted_list out));
      Alcotest.(check bool)
        "CRC rejected the garbled file" true
        (counter_value "engine.checkpoint.corrupt" - corrupt0 >= 1);
      Alcotest.(check bool)
        "lineage recompute counted" true
        (counter_value "engine.recover.from_source" - from_src0 >= 1))

(* Losing several partitions of one barrier costs ONE upstream
   re-shuffle, not one per partition: the recompute closures share a
   memoized shuffle body.  Counted via the key function — the shuffle
   body calls it once per row, so k independent re-shuffles would show
   k * 64 calls. *)
let test_barrier_recompute_memoized () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:true (fun () ->
      (* garble every write so each lost partition must fall back *)
      Obs.Faultinject.arm "engine.checkpoint.io"
        (Obs.Faultinject.Garble
           (fun s ->
             if String.length s <= 17 then s
             else begin
               let b = Bytes.of_string s in
               Bytes.set b 17 (Char.chr (Char.code (Bytes.get b 17) lxor 0xff));
               Bytes.to_string b
             end));
      let calls = ref 0 in
      let key v =
        incr calls;
        key_of v
      in
      let shuffled, _ =
        D.shuffle_by ~barrier:"t-memo" ~partitions:4 key (shuffle_input ())
      in
      calls := 0;
      for i = 0 to 3 do
        D.recover_partition shuffled i
      done;
      Alcotest.(check int)
        "all rows recomputed" 64
        (List.length (D.to_list shuffled));
      Obs.Faultinject.reset ();
      Alcotest.(check int)
        "one upstream re-shuffle covered every lost partition" 64 !calls)

(* A failed checkpoint write degrades to a plain in-memory partition:
   the run loses its recovery shortcut, never its data. *)
let test_failed_checkpoint_write_degrades () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:true (fun () ->
      Obs.Faultinject.arm "engine.shuffle.write"
        (Obs.Faultinject.Fail { times = -1; exn_ = Failure "disk full" });
      let wf0 = counter_value "engine.checkpoint.write_failures" in
      let shuffled, _ =
        D.shuffle_by ~barrier:"t-wfail" ~partitions:4 key_of (shuffle_input ())
      in
      Obs.Faultinject.reset ();
      Alcotest.(check int) "all rows survive failed writes" 64
        (List.length (D.to_list shuffled));
      Alcotest.(check bool)
        "write failures counted" true
        (counter_value "engine.checkpoint.write_failures" - wf0 >= 4))

(* --- spill ---------------------------------------------------------------- *)

let test_spill_and_restore () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:false (fun () ->
      let d = shuffle_input () in
      let before = D.memory_bytes d in
      Alcotest.(check bool) "dataset starts resident" true (before > 0);
      let batches0 = counter_value "engine.spill.batches" in
      let restores0 = counter_value "engine.spill.restores" in
      let freed = D.spill_over ~watermark:0 d in
      Alcotest.(check int) "everything spilled" before freed;
      Alcotest.(check int) "spilled footprint is zero" 0 (D.memory_bytes d);
      Alcotest.(check int)
        "spill batches counted" 4
        (counter_value "engine.spill.batches" - batches0);
      (* access transparently re-maps the spilled partitions *)
      Alcotest.(check int) "all rows restored" 64 (List.length (D.to_list d));
      Alcotest.(check int)
        "restores counted" 4
        (counter_value "engine.spill.restores" - restores0);
      (* second spill of an already-checkpointed partition is a pure
         cache drop — no second write *)
      let writes0 = counter_value "engine.checkpoint.writes" in
      ignore (D.spill_over ~watermark:0 d);
      Alcotest.(check int)
        "re-spill drops caches without rewriting" 0
        (counter_value "engine.checkpoint.writes" - writes0))

let test_spill_under_watermark_is_noop () =
  with_ckpt ~shuffles:false (fun () ->
      let d = shuffle_input () in
      Alcotest.(check int) "no spill under the watermark" 0
        (D.spill_over ~watermark:max_int d))

(* A sweep arriving while an execution pins the run directory (the
   catalog-eviction-during-query shape) must not delete spilled
   sole-copy partitions: it defers to the last release. *)
let test_sweep_deferred_while_pinned () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:false (fun () ->
      Ck.with_retained (fun () ->
          let d = shuffle_input () in
          ignore (D.spill_over ~watermark:0 d);
          Ck.sweep ();
          (* concurrent eviction *)
          Alcotest.(check bool)
            "run dir survives the sweep while pinned" true
            (match Ck.run_dir () with
            | Some p -> Sys.file_exists p
            | None -> false);
          Alcotest.(check int)
            "spilled sole copies still restore" 64
            (List.length (D.to_list d)));
      Alcotest.(check bool)
        "deferred sweep ran on the last release" true
        (Ck.run_dir () = None))

(* A garbled spill write is caught by the write-time verification: the
   partition stays resident (degraded, never lost). *)
let test_garbled_spill_write_keeps_partition_resident () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:false (fun () ->
      Obs.Faultinject.arm "engine.checkpoint.io"
        (Obs.Faultinject.Garble
           (fun s ->
             if String.length s <= 17 then s
             else begin
               let b = Bytes.of_string s in
               Bytes.set b 17 (Char.chr (Char.code (Bytes.get b 17) lxor 0xff));
               Bytes.to_string b
             end));
      let d = shuffle_input () in
      let wf0 = counter_value "engine.checkpoint.write_failures" in
      let freed = D.spill_over ~watermark:0 d in
      Obs.Faultinject.reset ();
      Alcotest.(check int) "nothing spilled through garbled writes" 0 freed;
      Alcotest.(check bool)
        "partitions stayed resident" true
        (D.memory_bytes d > 0);
      Alcotest.(check bool)
        "write failures counted" true
        (counter_value "engine.checkpoint.write_failures" - wf0 >= 4);
      Alcotest.(check int) "data intact" 64 (List.length (D.to_list d)))

(* A spill file verified at write time but lost afterwards (external
   delete, on-disk corruption) is a hard failure: [Spill_lost], not a
   silent wrong answer and not an unrelated exception. *)
let test_deleted_spill_file_raises_spill_lost () =
  Obs.Faultinject.reset ();
  with_ckpt ~shuffles:false (fun () ->
      let d = shuffle_input () in
      ignore (D.spill_over ~watermark:0 d);
      (match Ck.run_dir () with
      | Some dir ->
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir)
      | None -> Alcotest.fail "spill created no run directory");
      match D.to_list d with
      | _ -> Alcotest.fail "reading a deleted sole-copy spill succeeded"
      | exception D.Spill_lost _ -> ()
      | exception e ->
        Alcotest.fail
          (Fmt.str "raised %s, not Spill_lost" (Printexc.to_string e)))

(* --- pipeline byte-identity ----------------------------------------------- *)

let result_fingerprint (r : Whynot.Pipeline.result) =
  Fmt.str "%a|%a" Whynot.Pipeline.pp_result r
    Fmt.(Dump.list (Dump.list int))
    (Whynot.Pipeline.explanation_sets r)

let scenario_insts n =
  List.filteri (fun i _ -> i < n)
    (List.map
       (fun (s : Scenarios.Scenario.t) ->
         (s.Scenarios.Scenario.name, s.Scenarios.Scenario.make ~scale:1 ()))
       Scenarios.Registry.all)

let explain ?retry (inst : Scenarios.Scenario.instance) =
  Whynot.Pipeline.explain
    ?retry
    ~alternatives:inst.Scenarios.Scenario.alternatives
    inst.Scenarios.Scenario.question

(* Checkpoint barriers alone must not change a single explanation. *)
let test_pipeline_identical_with_checkpoints () =
  let insts = scenario_insts 3 in
  let plain =
    Ck.with_config None (fun () ->
        List.map (fun (n, i) -> (n, result_fingerprint (explain i))) insts)
  in
  let ckpt =
    with_ckpt ~shuffles:true (fun () ->
        List.map (fun (n, i) -> (n, result_fingerprint (explain i))) insts)
  in
  List.iter2
    (fun (name, expected) (_, got) ->
      Alcotest.(check string)
        (Fmt.str "%s: checkpointed run byte-identical" name)
        expected got)
    plain ckpt

(* A starvation-level watermark spills every intermediate; explanations
   must still be byte-identical. *)
let test_pipeline_identical_under_spill () =
  let insts = scenario_insts 3 in
  let plain =
    Ck.with_config None (fun () ->
        List.map (fun (n, i) -> (n, result_fingerprint (explain i))) insts)
  in
  let batches0 = counter_value "engine.spill.batches" in
  let spilled =
    with_ckpt ~shuffles:false ~max_memory_bytes:1 (fun () ->
        List.map (fun (n, i) -> (n, result_fingerprint (explain i))) insts)
  in
  Alcotest.(check bool)
    "spill actually happened" true
    (counter_value "engine.spill.batches" - batches0 > 0);
  List.iter2
    (fun (name, expected) (_, got) ->
      Alcotest.(check string)
        (Fmt.str "%s: spilled run byte-identical" name)
        expected got)
    plain spilled

(* Pipeline-level chaos: checkpoints on, per-SA tracing faults flaking —
   explanations still byte-identical.  (Task-level faults are exercised
   by the exec-level test below, whose engine config carries the task
   retry budget.) *)
let test_pipeline_identical_under_recovery_chaos () =
  let insts = scenario_insts 3 in
  Obs.Faultinject.reset ();
  let plain =
    Ck.with_config None (fun () ->
        List.map (fun (n, i) -> (n, result_fingerprint (explain i))) insts)
  in
  Obs.Faultinject.arm "tracing.relaxed"
    (Obs.Faultinject.Flaky { period = 3; exn_ = transient "chaos" });
  let armed =
    with_ckpt ~shuffles:true (fun () ->
        List.map
          (fun (n, i) -> (n, result_fingerprint (explain ~retry:(fast_retries 3) i)))
          insts)
  in
  let fired = Obs.Faultinject.fired "tracing.relaxed" in
  Obs.Faultinject.reset ();
  Alcotest.(check bool) "chaos actually fired" true (fired > 0);
  List.iter2
    (fun (name, expected) (_, got) ->
      Alcotest.(check string)
        (Fmt.str "%s: chaos run byte-identical" name)
        expected got)
    plain armed

(* Exec-level chaos: task partitions flaking under a task retry budget,
   with checkpointed shuffles enabled — every query result identical. *)
let test_exec_identical_under_chaos_with_checkpoints () =
  let insts = scenario_insts 3 in
  let run retry (inst : Scenarios.Scenario.instance) =
    let phi = inst.Scenarios.Scenario.question in
    let r, _ =
      Engine.Exec.run
        ~config:{ Engine.Exec.partitions = 4; parallel = false; retry }
        phi.Whynot.Question.db phi.Whynot.Question.query
    in
    Value.to_string (Relation.data r)
  in
  Obs.Faultinject.reset ();
  let plain =
    Ck.with_config None (fun () ->
        List.map (fun (n, i) -> (n, run Engine.Fault.no_retry i)) insts)
  in
  Obs.Faultinject.arm "engine.partition"
    (Obs.Faultinject.Flaky { period = 20; exn_ = transient "chaos" });
  let armed =
    with_ckpt ~shuffles:true (fun () ->
        List.map (fun (n, i) -> (n, run (fast_retries 3) i)) insts)
  in
  let fired = Obs.Faultinject.fired "engine.partition" in
  Obs.Faultinject.reset ();
  Alcotest.(check bool) "chaos actually fired" true (fired > 0);
  List.iter2
    (fun (name, expected) (_, got) ->
      Alcotest.(check string)
        (Fmt.str "%s: chaos run identical" name)
        expected got)
    plain armed

(* --- pool supervision under chaos (arms the worker site) ------------------ *)

let test_pool_worker_death_survived () =
  Obs.Faultinject.reset ();
  Obs.Faultinject.arm "engine.pool.worker"
    (Obs.Faultinject.Fail { times = 1; exn_ = Failure "chaos: worker killed" });
  let pool = Engine.Pool.create ~size:2 () in
  let fut = Engine.Pool.submit pool (fun () -> 6 * 7) in
  Alcotest.(check int) "job survives the dead worker" 42
    (Engine.Pool.await fut);
  Engine.Pool.shutdown pool;
  Obs.Faultinject.reset ()

(* --- chaos-coverage lint --------------------------------------------------- *)

(* Every registered fault-injection site must have been armed by some
   test in this binary — a site nobody ever arms is dead chaos
   surface.  Runs last (suites execute in order). *)
let test_every_site_armed () =
  let registered = Obs.Faultinject.registered_sites () in
  let armed = Obs.Faultinject.ever_armed () in
  Alcotest.(check bool) "sites are registered" true (registered <> []);
  List.iter
    (fun site ->
      if not (List.mem site armed) then
        Alcotest.fail
          (Fmt.str
             "chaos site %S is registered but never armed by any test in \
              this binary — add a chaos test exercising it"
             site))
    registered

let () =
  Alcotest.run "recover"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_unframe_garbage;
          Alcotest.test_case "special shapes round-trip" `Quick
            test_codec_special_shapes;
          Alcotest.test_case "every truncation rejected" `Quick
            test_truncation_rejected;
          Alcotest.test_case "every frame bit-flip rejected" `Quick
            test_bitflips_rejected;
          Alcotest.test_case "payload bit-flips never crash" `Quick
            test_payload_bitflips_never_crash;
          Alcotest.test_case "malformed bag offsets rejected" `Quick
            test_malformed_bag_offsets_rejected;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replay from checkpoint" `Quick
            test_replay_from_checkpoint;
          Alcotest.test_case "replay from source without barrier" `Quick
            test_replay_from_source_without_barrier;
          Alcotest.test_case "torn shuffle read is retryable" `Quick
            test_torn_shuffle_read_is_retryable;
          Alcotest.test_case "garbled checkpoint recomputes" `Quick
            test_garbled_checkpoint_recomputes;
          Alcotest.test_case "barrier recompute is memoized" `Quick
            test_barrier_recompute_memoized;
          Alcotest.test_case "failed checkpoint write degrades" `Quick
            test_failed_checkpoint_write_degrades;
        ] );
      ( "spill",
        [
          Alcotest.test_case "spill and restore" `Quick test_spill_and_restore;
          Alcotest.test_case "under-watermark is a no-op" `Quick
            test_spill_under_watermark_is_noop;
          Alcotest.test_case "sweep deferred while a run is pinned" `Quick
            test_sweep_deferred_while_pinned;
          Alcotest.test_case "garbled spill write stays resident" `Quick
            test_garbled_spill_write_keeps_partition_resident;
          Alcotest.test_case "deleted spill file raises Spill_lost" `Quick
            test_deleted_spill_file_raises_spill_lost;
        ] );
      ( "pipeline byte-identity",
        [
          Alcotest.test_case "with checkpoints" `Quick
            test_pipeline_identical_with_checkpoints;
          Alcotest.test_case "under spill" `Quick
            test_pipeline_identical_under_spill;
          Alcotest.test_case "under recovery chaos" `Quick
            test_pipeline_identical_under_recovery_chaos;
          Alcotest.test_case "exec under task chaos" `Quick
            test_exec_identical_under_chaos_with_checkpoints;
        ] );
      ( "pool",
        [
          Alcotest.test_case "worker death survived" `Quick
            test_pool_worker_death_survived;
        ] );
      ( "chaos coverage",
        [
          Alcotest.test_case "every registered site armed" `Quick
            test_every_site_armed;
        ] );
    ]
