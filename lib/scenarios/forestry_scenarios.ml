(* Forestry scenarios F1/F2: the first scenario family whose queries are
   defined in the SQL-ish surface syntax and compiled through the
   frontend, exactly as a text-registered query arrives over the wire.
   The data carries the running-example error pattern one level up: the
   reported [years] series loses the South Asia region, the modelled
   [estimates] series would keep it. *)

open Nrab

let compile db text : Query.t =
  let env = Frontend.Compile.env_of_db db in
  match Frontend.Compile.sql ~env text with
  | Ok (q, _) -> q
  | Error d ->
      invalid_arg
        (Printf.sprintf "forestry scenario query failed to compile:\n%s"
           (Frontend.Diagnostic.render ~source:text d))

let f1_sql =
  "WITH recent AS (SELECT fcode, year, pct FROM FLATTEN(forest, years) \
   WHERE year >= 2015)\n\
   SELECT region, cname, pct\n\
   FROM countries JOIN recent ON ccode = fcode\n\
   WHERE CASE WHEN income = 'High income' THEN pct >= 40. ELSE pct >= 60. END\n\
   GROUP BY region NEST cname, pct INTO top"

let f2_sql =
  "SELECT region, avg(pct) AS mean, count(*) AS n\n\
   FROM (SELECT region, pct FROM countries JOIN FLATTEN(forest, years) ON \
   ccode = fcode WHERE year >= 2015)\n\
   GROUP BY region"

let alternatives = [ ("forest", [ [ "years" ]; [ "estimates" ] ]) ]

(* F1: which countries keep high recent forest cover, nested per region?
   South Asia vanishes: its reported recent figures sit below both CASE
   thresholds. *)
let f1 : Scenario.t =
  {
    name = "F1";
    family = Scenario.Forestry;
    description =
      "regions with their high-forest-cover countries (reported series \
       loses South Asia)";
    operators = "Fᴵ,σ,π,⋈,Nᴿ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Forestry.db ?seed ~scale () in
        let query = compile db f1_sql in
        let missing =
          Whynot.Nip.tup
            [
              ("region", Whynot.Nip.str Datagen.Forestry.target_region);
              ("top", Whynot.Nip.some_element);
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives;
          gold = None;
        });
  }

(* F2: average recent cover per region — why does no South Asia row with
   a high mean show up? *)
let f2 : Scenario.t =
  {
    name = "F2";
    family = Scenario.Forestry;
    description =
      "average recent forest cover per region (South Asia's mean is \
       reported too low)";
    operators = "Fᴵ,σ,π,⋈,γ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Forestry.db ?seed ~scale () in
        let query = compile db f2_sql in
        let missing =
          Whynot.Nip.tup
            [
              ("region", Whynot.Nip.str Datagen.Forestry.target_region);
              ("mean", Whynot.Nip.pred Nrab.Expr.Ge (Nested.Value.Float 60.));
              ("n", Whynot.Nip.any);
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives;
          gold = None;
        });
  }

let all : Scenario.t list = [ f1; f2 ]
