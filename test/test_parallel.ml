(* The parallel execution layer must be invisible in the results: the
   engine with [parallel = true] agrees with [Nrab.Eval] and with the
   sequential engine on every registered scenario, and the pipeline's
   explanation ranking is byte-identical with schema alternatives fanned
   out over the domain pool. *)

open Nested

let relation_string r = Value.to_string (Relation.data r)

let scenario_instances () =
  List.map
    (fun (s : Scenarios.Scenario.t) ->
      (s.Scenarios.Scenario.name, s.Scenarios.Scenario.make ~scale:1 ()))
    Scenarios.Registry.all

(* Eval = sequential engine = parallel engine, for every scenario. *)
let test_engine_agreement () =
  List.iter
    (fun (name, (inst : Scenarios.Scenario.instance)) ->
      let phi = inst.Scenarios.Scenario.question in
      let db = phi.Whynot.Question.db in
      let q = phi.Whynot.Question.query in
      let expected = relation_string (Nrab.Eval.eval db q) in
      let run parallel =
        let r, _ =
          Engine.Exec.run
            ~config:
              {
                Engine.Exec.partitions = 4;
                parallel;
                retry = Engine.Fault.no_retry;
              }
            db q
        in
        relation_string r
      in
      Alcotest.(check string)
        (Fmt.str "%s: sequential engine = Eval" name)
        expected (run false);
      Alcotest.(check string)
        (Fmt.str "%s: parallel engine = Eval" name)
        expected (run true))
    (scenario_instances ())

(* RP with parallel SAs ranks identically to the sequential pipeline. *)
let test_pipeline_ranking_identical () =
  List.iter
    (fun (name, (inst : Scenarios.Scenario.instance)) ->
      let phi = inst.Scenarios.Scenario.question in
      let alternatives = inst.Scenarios.Scenario.alternatives in
      let seq = Whynot.Pipeline.explain ~alternatives phi in
      let par = Whynot.Pipeline.explain ~parallel:true ~alternatives phi in
      Alcotest.(check (list (list int)))
        (Fmt.str "%s: explanation sets" name)
        (Whynot.Pipeline.explanation_sets seq)
        (Whynot.Pipeline.explanation_sets par))
    (scenario_instances ())

(* The span tree keeps one sa:S<i> child per schema alternative even
   when the SAs run concurrently, and each still has its three phases. *)
let test_parallel_span_tree () =
  (* pick the first scenario that enumerates more than one SA — only
     then does the pipeline actually fan out over the pool *)
  let par =
    List.find_map
      (fun (_, (inst : Scenarios.Scenario.instance)) ->
        let r =
          Whynot.Pipeline.explain ~parallel:true
            ~alternatives:inst.Scenarios.Scenario.alternatives
            inst.Scenarios.Scenario.question
        in
        if List.length r.Whynot.Pipeline.sas > 1 then Some r else None)
      (scenario_instances ())
    |> Option.get
  in
  let n_sas = List.length par.Whynot.Pipeline.sas in
  let span = par.Whynot.Pipeline.span in
  let sa_spans =
    Obs.Span.find_all
      (fun sp ->
        String.length (Obs.Span.name sp) > 3
        && String.sub (Obs.Span.name sp) 0 3 = "sa:")
      span
  in
  Alcotest.(check int) "one sa span per SA" n_sas (List.length sa_spans);
  List.iter
    (fun sp ->
      Alcotest.(check bool)
        (Fmt.str "%s finished" (Obs.Span.name sp))
        true (Obs.Span.finished sp);
      List.iter
        (fun phase ->
          Alcotest.(check int)
            (Fmt.str "%s has %s" (Obs.Span.name sp) phase)
            1
            (Obs.Span.count_named phase sp))
        [ "backtrace"; "tracing"; "msr" ])
    sa_spans;
  match Obs.Span.attr span "parallel_sas" with
  | Some (Obs.Span.Bool true) -> ()
  | _ -> Alcotest.fail "root span must record parallel_sas"

let () =
  Alcotest.run "parallel"
    [
      ( "agreement",
        [
          Alcotest.test_case "engine parallel = sequential = Eval" `Quick
            test_engine_agreement;
          Alcotest.test_case "pipeline ranking parallel = sequential" `Quick
            test_pipeline_ranking_identical;
        ] );
      ( "spans",
        [ Alcotest.test_case "parallel span tree" `Quick test_parallel_span_tree ] );
    ]
