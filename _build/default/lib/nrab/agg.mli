(** Aggregation functions, restricted to the standard SQL ones — the
    restriction under which explanation computation stays in PTIME
    (Theorem 1). *)

open Nested

type fn = Sum | Count | Count_distinct | Avg | Min | Max

val pp_fn : Format.formatter -> fn -> unit
val fn_to_string : fn -> string

(** Apply a function to a multiset of values (already expanded to
    multiplicities).  Nulls are skipped as in SQL; [Sum]/[Avg]/[Min]/[Max]
    of an empty input are [Null], counts are 0. *)
val apply : fn -> Value.t list -> Value.t

(** Output type given the aggregated attribute's type. *)
val output_type : fn -> Vtype.t -> Vtype.t

(** Range of values achievable by aggregating a sub-multiset of the given
    contributions; [None] when no numeric value is achievable.  This is
    the optimistic test the tracing step uses for aggregate constraints of
    why-not questions (the algorithm does not trace aggregate subsets —
    Section 5.5, corner (iii)). *)
val achievable_range : fn -> Value.t list -> (float * float) option
