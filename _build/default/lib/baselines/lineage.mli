(** Shared successor tracking for the lineage-based baselines.

    A {e compatible} is an input tuple matching the backtraced NIP of its
    table; tables with trivial NIPs impose no constraint (all their tuples
    are vacuous compatibles).  Successors propagate forward through the
    trace:

    - through unary operators, from the single parent;
    - through flattens at element granularity (the successor must still
      carry the compatible nested element — the nested-data extension of
      WN++ described in Section 6.2);
    - through joins only when both parents are successors; a null-padded
      row counts only if the padded-away side holds no constrained table;
    - through grouping/aggregation when some parent is a successor. *)

open Nrab

module Int_set : module type of Set.Make (Int)
module String_set : module type of Set.Make (String)

type info = {
  trace : Whynot.Tracing.t;  (** the SA-0 trace of the question *)
  bt : Whynot.Backtrace.t;
  query : Query.t;
}

(** Build the original-schema trace both baselines work on. *)
val original_trace : Whynot.Question.t -> info

(** Tables whose backtraced NIP is non-trivial. *)
val constrained_tables : info -> String_set.t

(** Successor row ids.  [surviving_only] restricts propagation to the
    unrelaxed intermediate results (Why-Not); with [false], rows that
    only a repair would admit also propagate (Conseil). *)
val successor_rids : surviving_only:bool -> info -> (int, unit) Hashtbl.t

(** Operators where successors die: every child trace has a successor but
    no (alive) output row is one. *)
val picky_ops : surviving_only:bool -> info -> (int, unit) Hashtbl.t -> int list
