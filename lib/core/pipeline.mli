(** Algorithm 1 — the four-step heuristic why-not pipeline:

    + schema backtracing ({!Backtrace})
    + schema alternatives ({!Alternatives})
    + data tracing ({!Tracing})
    + approximate MSRs ({!Msr})

    [explain ~use_sas:false] is the paper's RPnoSA configuration (only the
    original schema alternative); [explain] with alternatives is RP. *)

open Nested
open Nrab

type result = {
  question : Question.t;
  sas : Alternatives.sa list;
  explanations : Explanation.t list;  (** pruned and ranked *)
  approx : Approx.report option;
      (** [None] = exact run; [Some r] = the run was budgeted/approximate
          and [r] records the degradation actually applied (mode,
          confidence, largest tracing stride, top-k cutoff, candidates
          skipped unevaluated) *)
  span : Obs.Span.t;
      (** finished root span of the run: one [sa:S<i>] child per schema
          alternative, each with [backtrace]/[tracing]/[msr] children,
          plus the [alternatives] enumeration and the final [msr]
          rank/prune *)
}

(** Typing environment of a database. *)
val schema_env : Relation.Db.t -> Typecheck.env

(** Compute query-based why-not explanations.

    @param approx running approximation budget (see {!Approx}).  Omitted,
           the run is exact and [result.approx] is [None].  Given, each
           schema alternative consults {!Approx.decide} before tracing —
           sampling the NIP re-validation at the decided stride and
           ranking only the decided top k — and [result.approx] reports
           the degradation actually applied.  An [Approx.start
           Approx.exact] budget decides stride 1 / no top-k everywhere,
           and the explanation list is byte-identical to an unbudgeted
           run
    @param use_sas consider schema alternatives (default true)
    @param max_sas cap on enumerated SAs (default 16)
    @param revalidate re-validate consistency at every operator (default
           true); [false] is the no-re-validation ablation, reproducing
           the false positives of prior lineage-based approaches
    @param alternatives attribute-alternative groups per table
    @param parallel process schema alternatives concurrently on the
           shared {!Engine.Pool} (default false).  The explanation list
           is byte-identical to the sequential pipeline's (per-SA results
           are recombined in SA order before pruning and ranking); only
           the span tree differs — concurrent sa:S<i> phases overlap, so
           per-phase sums can exceed the root span's duration
    @param cancel cooperative cancellation token (default
           {!Cancel.none}).  Polled at phase and schema-alternative
           boundaries; when it trips, {!Cancel.Cancelled} is raised with
           the boundary's name, and the run's root span is finished with
           a [cancelled_at] attribute (partial-phase attribution)
    @param retry per-phase task retry policy (default
           {!Engine.Fault.no_retry}).  A phase body raising
           {!Engine.Fault.Transient} is recomputed from its immutable
           inputs; exhaustion raises {!Engine.Fault.Exhausted} attributed
           as e.g. ["sa:S2/tracing"].  {!Cancel.Cancelled} is permanent —
           a cancelled run is never retried
    @param checkpoint stage-level recovery/spill config for this call
           only (swaps the ambient {!Engine.Checkpoint.active} config
           for the duration); omitted means inherit the process config
    @param parent optional parent span; the run's root span is attached
           under it (and always returned in [result.span]) *)
val explain :
  ?approx:Approx.t ->
  ?use_sas:bool ->
  ?max_sas:int ->
  ?revalidate:bool ->
  ?alternatives:Alternatives.alternatives ->
  ?parallel:bool ->
  ?cancel:Cancel.t ->
  ?retry:Engine.Fault.policy ->
  ?checkpoint:Engine.Checkpoint.config ->
  ?parent:Obs.Span.t ->
  Question.t ->
  result

(** {1 Prepared traced runs}

    The first half of the pipeline — schema-alternative enumeration and
    the execution of ⟦Q⟧_D anchoring the side-effect bounds — depends
    only on ⟨query, database, alternatives⟩, not on the missing-answer
    pattern.  A {!handle} captures those artifacts so a long-lived
    service can pay for them once and answer every subsequent why-not
    pattern over the same ⟨Q, D⟩ with {!explain_with}, which runs only
    the pattern-dependent per-SA backtrace→tracing→MSR chains. *)

type handle

(** Run the pattern-independent phases.  The work is recorded under a
    [pipeline.prepare] span (with [alternatives]/[msr] children, exactly
    like the first half of {!explain}'s span tree). *)
val prepare :
  ?use_sas:bool ->
  ?max_sas:int ->
  ?alternatives:Alternatives.alternatives ->
  ?cancel:Cancel.t ->
  ?retry:Engine.Fault.policy ->
  ?checkpoint:Engine.Checkpoint.config ->
  ?parent:Obs.Span.t ->
  db:Nested.Relation.Db.t ->
  Query.t ->
  handle

val handle_query : handle -> Query.t
val handle_sas : handle -> Alternatives.sa list

(** Answer one why-not pattern from a prepared handle.  The result is
    identical to {!explain} on the same inputs (same explanations, same
    ranking); the [pipeline.explain] span just lacks the
    [alternatives]/initial-[msr] children, which were charged to
    {!prepare}. *)
val explain_with :
  ?approx:Approx.t ->
  ?revalidate:bool ->
  ?parallel:bool ->
  ?cancel:Cancel.t ->
  ?retry:Engine.Fault.policy ->
  ?checkpoint:Engine.Checkpoint.config ->
  ?parent:Obs.Span.t ->
  handle ->
  Nip.t ->
  result

(** The four algorithm phases, in pipeline order:
    ["backtrace"; "alternatives"; "tracing"; "msr"]. *)
val phases : string list

(** Wall time per phase in ms, summed across schema alternatives (the
    per-phase breakdown of Figures 8–11); pairs are in {!phases} order. *)
val phase_durations_ms : result -> (string * float) list

(** Allocation pressure per phase — (bytes allocated, minor collections),
    summed across schema alternatives; pairs are in {!phases} order. *)
val phase_gc : result -> (string * (float * int)) list

(** Explanation operator-id sets, in rank order. *)
val explanation_sets : result -> int list list

val pp_result : Format.formatter -> result -> unit
