(* Tests for the serving layer: fingerprint stability and
   alpha-equivalence, the explanation JSON codec (round-trip
   properties), the dataset catalog, the LRU cache, the bounded
   scheduler, the wire protocol, and an in-process request session
   against the full server (cache-hit byte-identity). *)

open Nrab

let q str = Parser.query_of_string str

let running_example =
  "(nest (name) nList (project (name city) (select (>= year 2019) \
   (flatten-inner address2 (table person)))))"

(* --- fingerprints ------------------------------------------------------ *)

let test_fp_deterministic () =
  let h1 = Serve.Fingerprint.query (q running_example) in
  let h2 = Serve.Fingerprint.query (q running_example) in
  Alcotest.(check bool) "same text, same hash" true (Int64.equal h1 h2)

let test_fp_alpha_equivalent () =
  (* relabeling operator ids must not change the fingerprint *)
  let q1 = q running_example in
  let q2 = Query.relabel (Query.Gen.create ~start:1000 ()) q1 in
  let ids query = List.map (fun (op : Query.t) -> op.Query.id) (Query.operators query) in
  Alcotest.(check bool) "ids differ" true (ids q1 <> ids q2);
  Alcotest.(check string) "alpha-equivalent queries hash equal"
    (Serve.Fingerprint.to_hex (Serve.Fingerprint.query q1))
    (Serve.Fingerprint.to_hex (Serve.Fingerprint.query q2))

let test_fp_param_sensitive () =
  let h t = Serve.Fingerprint.query (q t) in
  let base = h "(select (>= year 2019) (table person))" in
  List.iter
    (fun (label, text) ->
      Alcotest.(check bool) label false (Int64.equal base (h text)))
    [
      ("constant", "(select (>= year 2020) (table person))");
      ("comparison", "(select (> year 2019) (table person))");
      ("attribute", "(select (>= month 2019) (table person))");
      ("table", "(select (>= year 2019) (table persons))");
      ("structure", "(dedup (select (>= year 2019) (table person)))");
    ]

let test_fp_nip_and_options () =
  let p1 = Whynot.Nip_syntax.of_string "(tuple (city (str NY)) (nList (bag ? *)))" in
  let p2 = Whynot.Nip_syntax.of_string "(tuple (city (str LA)) (nList (bag ? *)))" in
  Alcotest.(check bool) "patterns distinguish" false
    (Int64.equal (Serve.Fingerprint.nip p1) (Serve.Fingerprint.nip p2));
  let o = Serve.Fingerprint.default_options in
  Alcotest.(check bool) "options distinguish" false
    (Int64.equal
       (Serve.Fingerprint.options o)
       (Serve.Fingerprint.options { o with max_sas = o.max_sas + 1 }))

let test_fp_keys () =
  let query = q running_example in
  let pat = Whynot.Nip_syntax.of_string "(tuple (city (str NY)) (nList (bag ? *)))" in
  let o = Serve.Fingerprint.default_options in
  let k v =
    Serve.Fingerprint.explain_key ~dataset:"RE@1#0" ~version:v ~options:o
      ~alternatives:[] query pat
  in
  Alcotest.(check bool) "version bump changes the key" true (k 1 <> k 2);
  let pk =
    Serve.Fingerprint.prepare_key ~dataset:"RE@1#0" ~version:1 ~options:o
      ~alternatives:[] query
  in
  Alcotest.(check bool) "pattern-free key differs from full key" true (pk <> k 1)

(* --- codec ------------------------------------------------------------- *)

let explanation_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* ops = list_size (return n) (int_range 1 60) in
    let* lb = int_range 0 5 in
    let* extra = int_range 0 5 in
    let* sa = int_range 0 4 in
    return
      (Whynot.Explanation.make ~sa ~lb ~ub:(lb + extra)
         (Whynot.Explanation.Int_set.of_list ops)))

let explanation_arb =
  QCheck.make ~print:(Fmt.to_to_string Whynot.Explanation.pp) explanation_gen

let expl_equal (a : Whynot.Explanation.t) (b : Whynot.Explanation.t) =
  Whynot.Explanation.equal_ops a b
  && a.Whynot.Explanation.side_effect_lb = b.Whynot.Explanation.side_effect_lb
  && a.Whynot.Explanation.side_effect_ub = b.Whynot.Explanation.side_effect_ub
  && a.Whynot.Explanation.sa = b.Whynot.Explanation.sa

let prop_explanation_roundtrip =
  QCheck.Test.make ~count:200 ~name:"explanation JSON roundtrip"
    explanation_arb (fun e ->
      expl_equal e (Serve.Codec.explanation_of_json (Serve.Codec.explanation_to_json e)))

let prop_explanations_roundtrip =
  QCheck.Test.make ~count:100 ~name:"explanation list JSON roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 8) explanation_arb)
    (fun es ->
      let back =
        Serve.Codec.explanations_of_json (Serve.Codec.explanations_to_json es)
      in
      List.length back = List.length es && List.for_all2 expl_equal es back)

let prop_roundtrip_via_text =
  QCheck.Test.make ~count:100 ~name:"roundtrip survives printing"
    explanation_arb (fun e ->
      let text = Nested.Json.to_line (Serve.Codec.explanation_to_json e) in
      expl_equal e (Serve.Codec.explanation_of_json (Nested.Json.of_string text)))

let test_codec_result_payload () =
  (* a real pipeline result decodes back to the same explanation list *)
  let inst =
    match Scenarios.Registry.find "RE" with
    | Some s -> s.Scenarios.Scenario.make ~scale:1 ()
    | None -> Alcotest.fail "running example scenario missing"
  in
  let result =
    Whynot.Pipeline.explain
      ~alternatives:inst.Scenarios.Scenario.alternatives
      inst.Scenarios.Scenario.question
  in
  let payload = Serve.Codec.result_to_json ~timings:false result in
  let back = Serve.Codec.result_explanations_of_json payload in
  Alcotest.(check int) "explanation count survives"
    (List.length result.Whynot.Pipeline.explanations)
    (List.length back);
  Alcotest.(check bool) "explanations survive" true
    (List.for_all2 expl_equal result.Whynot.Pipeline.explanations back);
  (* timings:false must not leak wall-clock fields *)
  let text = Nested.Json.to_line payload in
  let contains needle =
    let n = String.length text and m = String.length needle in
    let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no timings in deterministic payload" false
    (contains "phases_ms" || contains "total_ms")

let test_codec_rejects_garbage () =
  List.iter
    (fun text ->
      match Serve.Codec.explanation_of_json (Nested.Json.of_string text) with
      | exception Serve.Codec.Decode_error _ -> ()
      | _ -> Alcotest.fail ("decoded garbage: " ^ text))
    [ "42"; "{}"; "{\"ops\": 1}"; "{\"ops\": [1], \"side_effect_lb\": true}" ]

(* --- catalog ----------------------------------------------------------- *)

let test_catalog_register_reuse_refresh () =
  let c = Serve.Catalog.create () in
  (match Serve.Catalog.register c ~name:"re" ~scale:1 () with
  | Error m -> Alcotest.fail m
  | Ok (e, fresh) ->
    Alcotest.(check string) "canonical name" "RE" e.Serve.Catalog.key.Serve.Catalog.name;
    Alcotest.(check bool) "first registration generates" true fresh;
    Alcotest.(check int) "version starts at 1" 1 e.Serve.Catalog.version);
  (match Serve.Catalog.register c ~name:"RE" ~scale:1 () with
  | Error m -> Alcotest.fail m
  | Ok (e, fresh) ->
    Alcotest.(check bool) "second registration reuses" false fresh;
    Alcotest.(check int) "version unchanged" 1 e.Serve.Catalog.version);
  (match Serve.Catalog.register c ~refresh:true ~name:"RE" ~scale:1 () with
  | Error m -> Alcotest.fail m
  | Ok (e, fresh) ->
    Alcotest.(check bool) "refresh regenerates" true fresh;
    Alcotest.(check int) "refresh bumps version" 2 e.Serve.Catalog.version);
  Alcotest.(check int) "one dataset" 1 (Serve.Catalog.size c);
  (match Serve.Catalog.register c ~name:"no-such-scenario" ~scale:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scenario must be an error");
  Alcotest.(check bool) "evict present" true
    (Serve.Catalog.evict c ~name:"RE" ~scale:1 ());
  Alcotest.(check bool) "evict absent" false
    (Serve.Catalog.evict c ~name:"RE" ~scale:1 ());
  Alcotest.(check int) "empty again" 0 (Serve.Catalog.size c)

let test_catalog_keys_are_distinct () =
  let c = Serve.Catalog.create () in
  let reg ?seed ~scale () =
    match Serve.Catalog.register c ?seed ~name:"Q1" ~scale () with
    | Ok (e, _) -> e
    | Error m -> Alcotest.fail m
  in
  let a = reg ~scale:1 () in
  let b = reg ~scale:2 () in
  let d = reg ~seed:7 ~scale:1 () in
  Alcotest.(check int) "three entries" 3 (Serve.Catalog.size c);
  Alcotest.(check bool) "scales share nothing" true
    (a.Serve.Catalog.instance != b.Serve.Catalog.instance);
  Alcotest.(check bool) "seeds share nothing" true
    (a.Serve.Catalog.instance != d.Serve.Catalog.instance);
  (* same key → same interned instance *)
  let a2 = reg ~scale:1 () in
  Alcotest.(check bool) "same key shares the instance" true
    (a.Serve.Catalog.instance == a2.Serve.Catalog.instance)

(* --- LRU cache --------------------------------------------------------- *)

let test_cache_lru_eviction () =
  let c = Serve.Cache.create ~name:"t1" ~capacity:2 in
  Serve.Cache.add c "a" 1;
  Serve.Cache.add c "b" 2;
  ignore (Serve.Cache.find c "a" : int option);
  (* "a" is now most recent, so inserting "c" evicts "b" *)
  Serve.Cache.add c "c" 3;
  Alcotest.(check (option int)) "a kept" (Some 1) (Serve.Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Serve.Cache.find c "b");
  Alcotest.(check (option int)) "c kept" (Some 3) (Serve.Cache.find c "c");
  let s = Serve.Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Serve.Cache.evictions;
  Alcotest.(check int) "size capped" 2 s.Serve.Cache.size

let test_cache_overwrite_and_invalidate () =
  let c = Serve.Cache.create ~name:"t2" ~capacity:8 in
  Serve.Cache.add c "k1/x" 1;
  Serve.Cache.add c "k1/y" 2;
  Serve.Cache.add c "k2/z" 3;
  Serve.Cache.add c "k1/x" 10;
  Alcotest.(check (option int)) "overwrite wins" (Some 10)
    (Serve.Cache.find c "k1/x");
  Alcotest.(check int) "no duplicate entries" 3 (Serve.Cache.length c);
  Alcotest.(check int) "prefix invalidation drops both" 2
    (Serve.Cache.invalidate c (String.starts_with ~prefix:"k1/"));
  Alcotest.(check (option int)) "other prefix survives" (Some 3)
    (Serve.Cache.find c "k2/z");
  Alcotest.(check int) "clear reports" 1 (Serve.Cache.clear c);
  Alcotest.(check int) "empty" 0 (Serve.Cache.length c)

let test_cache_disabled () =
  let c = Serve.Cache.create ~name:"t3" ~capacity:0 in
  Serve.Cache.add c "a" 1;
  Alcotest.(check (option int)) "capacity 0 never caches" None
    (Serve.Cache.find c "a")

let test_cache_many_keys () =
  (* LRU discipline over a longer run: last [cap] inserts survive *)
  let cap = 16 in
  let c = Serve.Cache.create ~name:"t4" ~capacity:cap in
  for i = 1 to 100 do
    Serve.Cache.add c (string_of_int i) i
  done;
  Alcotest.(check int) "size is capacity" cap (Serve.Cache.length c);
  for i = 85 to 100 do
    Alcotest.(check (option int))
      (Fmt.str "key %d survives" i)
      (Some i)
      (Serve.Cache.find c (string_of_int i))
  done;
  Alcotest.(check (option int)) "older key evicted" None
    (Serve.Cache.find c "84")

(* --- scheduler --------------------------------------------------------- *)

let test_scheduler_runs_jobs () =
  let s = Serve.Scheduler.create ~queue_capacity:4 () in
  (match Serve.Scheduler.run s (fun _cancel -> 6 * 7) with
  | Ok n -> Alcotest.(check int) "result" 42 n
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e));
  let st = Serve.Scheduler.stats s in
  Alcotest.(check int) "submitted" 1 st.Serve.Scheduler.submitted;
  Alcotest.(check int) "completed" 1 st.Serve.Scheduler.completed;
  Alcotest.(check int) "drained" 0 (Serve.Scheduler.depth s)

let test_scheduler_backpressure () =
  let pool = Engine.Pool.create ~size:1 () in
  let s = Serve.Scheduler.create ~pool ~queue_capacity:1 () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  (* fill the only admission slot with a job blocked on the gate *)
  let first =
    match
      Serve.Scheduler.submit s (fun _ ->
          Mutex.lock gate;
          Mutex.unlock gate;
          "first")
    with
    | Ok t -> t
    | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  in
  (match Serve.Scheduler.submit s (fun _ -> "second") with
  | Error (Serve.Scheduler.Overloaded { depth; capacity }) ->
    Alcotest.(check int) "depth at capacity" 1 depth;
    Alcotest.(check int) "capacity" 1 capacity
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Overloaded");
  Mutex.unlock gate;
  (match Serve.Scheduler.await first with
  | Ok v -> Alcotest.(check string) "first completes" "first" v
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e));
  let st = Serve.Scheduler.stats s in
  Alcotest.(check int) "one rejection" 1 st.Serve.Scheduler.rejected;
  Engine.Pool.shutdown pool

let test_scheduler_deadline () =
  let pool = Engine.Pool.create ~size:1 () in
  let s = Serve.Scheduler.create ~pool ~queue_capacity:8 () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let blocker =
    match
      Serve.Scheduler.submit s (fun _ ->
          Mutex.lock gate;
          Mutex.unlock gate)
    with
    | Ok t -> t
    | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  in
  (* queued behind the blocker with a deadline that lapses while waiting *)
  let doomed =
    match Serve.Scheduler.submit s ~deadline_ms:5.0 (fun _ -> "ran") with
    | Ok t -> t
    | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  in
  Unix.sleepf 0.05;
  Mutex.unlock gate;
  (match Serve.Scheduler.await blocker with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e));
  (match Serve.Scheduler.await doomed with
  | Error (Serve.Scheduler.Deadline_exceeded { waited_ms; deadline_ms; phase })
    ->
    Alcotest.(check bool) "waited past deadline" true (waited_ms > deadline_ms);
    Alcotest.(check bool) "expired while queued (no phase)" true (phase = None)
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded");
  let st = Serve.Scheduler.stats s in
  Alcotest.(check int) "one expiry" 1 st.Serve.Scheduler.expired;
  Engine.Pool.shutdown pool

let test_scheduler_cancels_mid_run () =
  (* a job that cooperatively polls its token is reclaimed mid-flight,
     with the polling point named in the error *)
  let pool = Engine.Pool.create ~size:1 () in
  let s = Serve.Scheduler.create ~pool ~queue_capacity:4 () in
  (match
     Serve.Scheduler.run s ~deadline_ms:10.0 (fun cancel ->
         let give_up = Unix.gettimeofday () +. 5.0 in
         while Unix.gettimeofday () < give_up do
           Unix.sleepf 0.005;
           Whynot.Cancel.check cancel ~where:"spin"
         done;
         "never")
   with
  | Error (Serve.Scheduler.Deadline_exceeded { phase = Some "spin"; waited_ms; _ })
    ->
    Alcotest.(check bool) "ran past the deadline" true (waited_ms >= 10.0)
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  | Ok _ -> Alcotest.fail "expected mid-run Deadline_exceeded");
  let st = Serve.Scheduler.stats s in
  Alcotest.(check int) "counted as expired" 1 st.Serve.Scheduler.expired;
  Alcotest.(check int) "depth back to 0" 0 (Serve.Scheduler.depth s);
  Engine.Pool.shutdown pool

(* --- cancellation tokens ------------------------------------------------ *)

let test_cancel_token () =
  let c = Whynot.Cancel.create () in
  Alcotest.(check bool) "fresh token live" false (Whynot.Cancel.cancelled c);
  Whynot.Cancel.cancel c;
  Alcotest.(check bool) "flag cancels" true (Whynot.Cancel.cancelled c);
  (match Whynot.Cancel.check c ~where:"here" with
  | exception Whynot.Cancel.Cancelled "here" -> ()
  | exception e -> Alcotest.fail (Printexc.to_string e)
  | () -> Alcotest.fail "check must raise on a cancelled token");
  let d = Whynot.Cancel.with_deadline_ms 0.0 in
  Unix.sleepf 0.002;
  Alcotest.(check bool) "deadline cancels" true (Whynot.Cancel.cancelled d);
  Whynot.Cancel.cancel Whynot.Cancel.none;
  Alcotest.(check bool) "none is never cancelled" false
    (Whynot.Cancel.cancelled Whynot.Cancel.none)

let test_pipeline_cancelled_run () =
  let inst =
    match Scenarios.Registry.find "RE" with
    | Some s -> s.Scenarios.Scenario.make ~scale:1 ()
    | None -> Alcotest.fail "running example scenario missing"
  in
  let cancel = Whynot.Cancel.create () in
  Whynot.Cancel.cancel cancel;
  match
    Whynot.Pipeline.explain ~cancel
      ~alternatives:inst.Scenarios.Scenario.alternatives
      inst.Scenarios.Scenario.question
  with
  | exception Whynot.Cancel.Cancelled where ->
    (* the very first phase boundary observes the cancellation *)
    Alcotest.(check string) "first boundary attributed" "alternatives" where
  | _ -> Alcotest.fail "cancelled run must raise"

(* --- single-flight ------------------------------------------------------ *)

let test_inflight_coalesces () =
  let fl = Serve.Inflight.create ~name:"t-basic" () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let n = 4 in
  let outcomes = Array.make n None in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            outcomes.(i) <-
              Some
                (Serve.Inflight.run fl "key" (fun () ->
                     Mutex.lock gate;
                     Mutex.unlock gate;
                     42)))
          ())
  in
  Unix.sleepf 0.05;
  Mutex.unlock gate;
  Array.iter Thread.join threads;
  let leaders = ref 0 and followers = ref 0 in
  Array.iter
    (fun o ->
      match o with
      | Some (Serve.Inflight.Leader, Ok 42) -> incr leaders
      | Some (Serve.Inflight.Follower _, Ok 42) -> incr followers
      | _ -> Alcotest.fail "every caller must get Ok 42")
    outcomes;
  Alcotest.(check int) "exactly one leader" 1 !leaders;
  Alcotest.(check int) "everybody else coalesced" (n - 1) !followers;
  Alcotest.(check int) "table drained" 0 (Serve.Inflight.active fl);
  let s = Serve.Inflight.stats fl in
  Alcotest.(check int) "one execution" 1 s.Serve.Inflight.leaders;
  Alcotest.(check int) "coalesced counted" (n - 1) s.Serve.Inflight.coalesced

let test_inflight_leader_failure_releases () =
  let fl = Serve.Inflight.create ~name:"t-fail" () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let n = 3 in
  let outcomes = Array.make n None in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            outcomes.(i) <-
              Some
                (Serve.Inflight.run fl "key" (fun () ->
                     Mutex.lock gate;
                     Mutex.unlock gate;
                     failwith "boom")))
          ())
  in
  Unix.sleepf 0.05;
  Mutex.unlock gate;
  Array.iter Thread.join threads;
  Array.iter
    (fun o ->
      match o with
      | Some (_, Error (Failure msg)) when msg = "boom" -> ()
      | Some (_, Ok _) -> Alcotest.fail "leader failed — nobody may succeed"
      | _ -> Alcotest.fail "every caller must be released with the error")
    outcomes;
  Alcotest.(check int) "nothing left in flight" 0 (Serve.Inflight.active fl);
  let s = Serve.Inflight.stats fl in
  Alcotest.(check int) "failure counted" 1 s.Serve.Inflight.failures;
  (* the key leads afresh after the failed flight *)
  match Serve.Inflight.run fl "key" (fun () -> 7) with
  | Serve.Inflight.Leader, Ok 7 -> ()
  | _ -> Alcotest.fail "a later request must lead afresh"

(* --- fault injection ---------------------------------------------------- *)

let test_faultinject_actions () =
  Obs.Faultinject.reset ();
  Obs.Faultinject.arm "t.site" (Obs.Faultinject.fail_once (Failure "inj"));
  (match Obs.Faultinject.fire "t.site" with
  | exception Failure msg when msg = "inj" -> ()
  | () -> Alcotest.fail "armed site must raise");
  (* fail-once disarms itself *)
  Obs.Faultinject.fire "t.site";
  Alcotest.(check int) "fired once" 1 (Obs.Faultinject.fired "t.site");
  Obs.Faultinject.arm "t.garble" (Obs.Faultinject.Garble (fun s -> "!" ^ s));
  Alcotest.(check string) "garble rewrites" "!abc"
    (Obs.Faultinject.transform "t.garble" "abc");
  Alcotest.(check string) "unarmed transform is identity" "abc"
    (Obs.Faultinject.transform "t.other" "abc");
  Obs.Faultinject.reset ();
  Alcotest.(check int) "reset zeroes counts" 0
    (Obs.Faultinject.fired "t.site")

(* --- protocol ---------------------------------------------------------- *)

let test_protocol_parse_requests () =
  (match Serve.Protocol.request_of_string "{\"op\": \"register\", \"dataset\": \"RE\"}" with
  | Ok (Serve.Protocol.Register { dataset; scale; seed; refresh }) ->
    Alcotest.(check string) "dataset" "RE" dataset;
    Alcotest.(check int) "default scale" 1 scale;
    Alcotest.(check int) "default seed" 0 seed;
    Alcotest.(check bool) "default refresh" false refresh
  | Ok _ -> Alcotest.fail "wrong request"
  | Error m -> Alcotest.fail m);
  (match
     Serve.Protocol.request_of_string
       "{\"op\": \"explain\", \"dataset\": \"RE\", \"whynot\": \"(tuple (city \
        (str NY)) (nList (bag ? *)))\", \"max_sas\": 4, \"deadline_ms\": 250}"
   with
  | Ok (Serve.Protocol.Explain e) ->
    Alcotest.(check bool) "pattern parsed" true (e.pattern <> None);
    Alcotest.(check bool) "query defaulted" true (e.query = None);
    Alcotest.(check int) "max_sas" 4 e.options.Serve.Protocol.max_sas;
    Alcotest.(check (option (float 0.01))) "deadline" (Some 250.0) e.deadline_ms
  | Ok _ -> Alcotest.fail "wrong request"
  | Error m -> Alcotest.fail m);
  List.iter
    (fun line ->
      match Serve.Protocol.request_of_string line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad request: " ^ line))
    [
      "not json";
      "{}";
      "{\"op\": \"frobnicate\"}";
      "{\"op\": \"register\"}";
      "{\"op\": \"explain\", \"dataset\": \"RE\", \"query\": \"(((\"}";
      "{\"op\": \"explain\", \"dataset\": \"RE\", \"max_sas\": \"lots\"}";
    ]

let test_protocol_response_lines () =
  let line =
    Serve.Protocol.response_to_string
      (Serve.Protocol.Error
         { code = Serve.Protocol.Overloaded; message = "try later"; details = None })
  in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match Nested.Json.of_string line with
  | Nested.Json.J_object fields ->
    Alcotest.(check bool) "ok=false" true
      (List.assoc "ok" fields = Nested.Json.J_bool false);
    Alcotest.(check bool) "code" true
      (List.assoc "code" fields = Nested.Json.J_string "overloaded")
  | _ -> Alcotest.fail "response is not an object"

(* --- server sessions --------------------------------------------------- *)

let quiet_config =
  { Serve.Server.default_config with timings = false }

let expect_ok label = function
  | Serve.Protocol.Error { message; _ } ->
    Alcotest.fail (Fmt.str "%s: unexpected error: %s" label message)
  | r -> r

let test_server_cache_hit_is_byte_identical () =
  let srv = Serve.Server.create ~config:quiet_config () in
  (match
     expect_ok "register"
       (Serve.Server.handle_request srv
          (Serve.Protocol.Register
             { dataset = "RE"; scale = 1; seed = 0; refresh = false }))
   with
  | Serve.Protocol.Registered { fresh; _ } ->
    Alcotest.(check bool) "fresh" true fresh
  | _ -> Alcotest.fail "expected registered");
  let explain () =
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           query_name = None;
           pattern = None;
           options = Serve.Protocol.default_options;
           deadline_ms = None;
           budget_ms = None;
         })
  in
  let r1 = expect_ok "explain#1" (explain ()) in
  let r2 = expect_ok "explain#2" (explain ()) in
  (match (r1, r2) with
  | ( Serve.Protocol.Explained { cache = c1; result = j1; _ },
      Serve.Protocol.Explained { cache = c2; result = j2; _ } ) ->
    Alcotest.(check bool) "first is a miss" true (c1 = `Miss);
    Alcotest.(check bool) "second is a hit" true (c2 = `Hit);
    Alcotest.(check string) "payloads byte-identical"
      (Nested.Json.to_line j1) (Nested.Json.to_line j2)
  | _ -> Alcotest.fail "expected two explained responses");
  match Serve.Server.handle_request srv Serve.Protocol.Stats with
  | Serve.Protocol.Stats_reply sections ->
    (match List.assoc "cache" sections with
    | Nested.Json.J_object fields ->
      Alcotest.(check bool) "stats show the hit" true
        (List.assoc "hits" fields = Nested.Json.J_int 1)
    | _ -> Alcotest.fail "cache section missing")
  | _ -> Alcotest.fail "expected stats"

let test_server_handle_reuse_across_patterns () =
  let srv = Serve.Server.create ~config:quiet_config () in
  ignore
    (expect_ok "register"
       (Serve.Server.handle_request srv
          (Serve.Protocol.Register
             { dataset = "RE"; scale = 1; seed = 0; refresh = false })));
  let explain pattern =
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           query_name = None;
           pattern;
           options = Serve.Protocol.default_options;
           deadline_ms = None;
           budget_ms = None;
         })
  in
  (match expect_ok "pattern A" (explain None) with
  | Serve.Protocol.Explained { cache = `Miss; _ } -> ()
  | _ -> Alcotest.fail "first pattern: expected a full miss");
  let other =
    Some (Whynot.Nip_syntax.of_string "(tuple (city (str LA)) (nList (bag ? *)))")
  in
  match expect_ok "pattern B" (explain other) with
  | Serve.Protocol.Explained { cache = `Handle; _ } ->
    (* new pattern, same query: the traced-run handle was reused *)
    ()
  | Serve.Protocol.Explained { cache = c; _ } ->
    Alcotest.fail
      (Fmt.str "expected handle reuse, got %s"
         (match c with
         | `Hit -> "hit"
         | `Miss -> "miss"
         | `Handle -> "handle"
         | `Coalesced -> "coalesced"))
  | _ -> Alcotest.fail "expected explained"

let test_server_refresh_invalidates () =
  let srv = Serve.Server.create ~config:quiet_config () in
  let register refresh =
    expect_ok "register"
      (Serve.Server.handle_request srv
         (Serve.Protocol.Register { dataset = "RE"; scale = 1; seed = 0; refresh }))
  in
  ignore (register false);
  let explain () =
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           query_name = None;
           pattern = None;
           options = Serve.Protocol.default_options;
           deadline_ms = None;
           budget_ms = None;
         })
  in
  (match expect_ok "cold" (explain ()) with
  | Serve.Protocol.Explained { cache = `Miss; version = 1; _ } -> ()
  | _ -> Alcotest.fail "expected miss at version 1");
  ignore (register true);
  match expect_ok "after refresh" (explain ()) with
  | Serve.Protocol.Explained { cache = `Miss; version = 2; _ } -> ()
  | Serve.Protocol.Explained { cache = `Hit; _ } ->
    Alcotest.fail "refresh must invalidate the cache"
  | _ -> Alcotest.fail "expected explained at version 2"

let test_server_typed_errors () =
  let srv = Serve.Server.create ~config:quiet_config () in
  (match
     Serve.Server.handle_request srv
       (Serve.Protocol.Explain
          {
            dataset = "RE";
            scale = 1;
            seed = 0;
            query = None;
            query_name = None;
            pattern = None;
            options = Serve.Protocol.default_options;
            deadline_ms = None;
            budget_ms = None;
          })
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "explain before register must be not_found");
  match
    Serve.Server.handle_request srv
      (Serve.Protocol.Register
         { dataset = "no-such"; scale = 1; seed = 0; refresh = false })
  with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "registering an unknown scenario must be not_found"

(* --- the SQL frontend over the wire ------------------------------------- *)

let re_sql =
  "SELECT name, city FROM FLATTEN(person, address2) WHERE year >= 2019 \
   GROUP BY city NEST name INTO nList"

let re_pattern = "(tuple (city (str NY)) (nList (bag ? *)))"

let register_dataset srv name =
  ignore
    (expect_ok "register"
       (Serve.Server.handle_request srv
          (Serve.Protocol.Register
             { dataset = name; scale = 1; seed = 0; refresh = false })))

let explain_via srv ~dataset ?query ?query_name () =
  Serve.Server.handle_request srv
    (Serve.Protocol.Explain
       {
         dataset;
         scale = 1;
         seed = 0;
         query;
         query_name;
         pattern = None;
         options = Serve.Protocol.default_options;
         deadline_ms = None;
         budget_ms = None;
       })

let register_query srv ~dataset ~name ~query ~pattern =
  Serve.Server.handle_request srv
    (Serve.Protocol.Register_query
       { name; dataset; scale = 1; seed = 0; query; pattern })

let explained_payload label = function
  | Serve.Protocol.Explained { result; _ } -> Nested.Json.to_line result
  | Serve.Protocol.Error { message; _ } ->
    Alcotest.fail (Fmt.str "%s: %s" label message)
  | _ -> Alcotest.fail (label ^ ": expected explained")

(* The acceptance property of the text path: a query arriving as SQL
   text — inline or stored via register_query — explains byte-for-byte
   identically to the scenario's programmatically constructed query.
   Each leg runs on a fresh server so no shared cache can mask a
   divergence. *)
let check_text_byte_identity ~dataset ~sql =
  let reference =
    let srv = Serve.Server.create ~config:quiet_config () in
    register_dataset srv dataset;
    explained_payload "programmatic" (explain_via srv ~dataset ())
  in
  let by_name =
    let srv = Serve.Server.create ~config:quiet_config () in
    register_dataset srv dataset;
    (match register_query srv ~dataset ~name:"q" ~query:sql ~pattern:None with
    | Serve.Protocol.Query_registered { replaced = false; _ } -> ()
    | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
    | _ -> Alcotest.fail "expected query_registered");
    explained_payload "by name" (explain_via srv ~dataset ~query_name:"q" ())
  in
  Alcotest.(check string) "registered text is byte-identical" reference by_name;
  let inline =
    let srv = Serve.Server.create ~config:quiet_config () in
    register_dataset srv dataset;
    explained_payload "inline sql" (explain_via srv ~dataset ~query:(`Sql sql) ())
  in
  Alcotest.(check string) "inline text is byte-identical" reference inline

let test_wire_text_identity_re () =
  check_text_byte_identity ~dataset:"RE" ~sql:re_sql

let test_wire_text_identity_forestry () =
  check_text_byte_identity ~dataset:"F1"
    ~sql:Scenarios.Forestry_scenarios.f1_sql

let test_wire_parse_verb () =
  let srv = Serve.Server.create ~config:quiet_config () in
  register_dataset srv "RE";
  (match
     Serve.Server.handle_request srv
       (Serve.Protocol.Parse
          {
            dataset = "RE";
            scale = 1;
            seed = 0;
            query = Some re_sql;
            pattern = Some re_pattern;
          })
   with
  | Serve.Protocol.Parsed { sql; sexp; fingerprint; output_type; pattern; _ }
    ->
    Alcotest.(check bool) "has canonical sql" true (sql <> None);
    let expected =
      Serve.Fingerprint.to_hex (Serve.Fingerprint.query (q running_example))
    in
    Alcotest.(check (option string)) "fingerprint matches the programmatic \
                                      query" (Some expected) fingerprint;
    (match sexp with
    | Some s ->
      Alcotest.(check string) "canonical sexp reparses to the same query"
        expected
        (Serve.Fingerprint.to_hex (Serve.Fingerprint.query (q s)))
    | None -> Alcotest.fail "expected a canonical sexp");
    Alcotest.(check bool) "typed output" true (output_type <> None);
    Alcotest.(check bool) "pattern echoed" true (pattern <> None)
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected parsed");
  match
    Serve.Server.handle_request srv
      (Serve.Protocol.Parse
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = Some "SELECT nope FROM person";
           pattern = None;
         })
  with
  | Serve.Protocol.Error { code = Serve.Protocol.Invalid_query; details; _ }
    -> (
    match details with
    | Some (Nested.Json.J_object fields) ->
      Alcotest.(check bool) "diagnostic names its stage" true
        (List.mem_assoc "stage" fields);
      Alcotest.(check bool) "diagnostic carries a position" true
        (List.mem_assoc "line" fields)
    | _ -> Alcotest.fail "expected structured diagnostic details")
  | _ -> Alcotest.fail "expected invalid_query"

let test_wire_register_query_lifecycle () =
  let srv = Serve.Server.create ~config:quiet_config () in
  register_dataset srv "RE";
  (match
     register_query srv ~dataset:"RE" ~name:"Top" ~query:re_sql ~pattern:None
   with
  | Serve.Protocol.Query_registered { replaced = false; _ } -> ()
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected query_registered");
  (* names are case-insensitive: re-registering replaces *)
  (match
     register_query srv ~dataset:"RE" ~name:"top" ~query:re_sql ~pattern:None
   with
  | Serve.Protocol.Query_registered { replaced = true; _ } -> ()
  | _ -> Alcotest.fail "expected replacement");
  (match explain_via srv ~dataset:"RE" ~query_name:"nope" () with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "unknown query_name must be not_found");
  (match
     explain_via srv ~dataset:"RE" ~query:(`Sql re_sql) ~query_name:"top" ()
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "query and query_name together must be bad_request");
  (* a registration whose query doesn't compile is rejected at the door *)
  (match
     register_query srv ~dataset:"RE" ~name:"bad"
       ~query:"SELECT nope FROM person" ~pattern:None
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Invalid_query; _ } -> ()
  | _ -> Alcotest.fail "expected invalid_query");
  (* ... and so is a pattern that cannot fit the query's output type *)
  match
    register_query srv ~dataset:"RE" ~name:"bad-pattern" ~query:re_sql
      ~pattern:(Some "(tuple (nosuch ?))")
  with
  | Serve.Protocol.Error { code = Serve.Protocol.Invalid_query; _ } -> ()
  | _ -> Alcotest.fail "expected invalid_query for the pattern"

let test_wire_stored_pattern_defaults () =
  let srv = Serve.Server.create ~config:quiet_config () in
  register_dataset srv "RE";
  (match
     register_query srv ~dataset:"RE" ~name:"q" ~query:re_sql
       ~pattern:(Some re_pattern)
   with
  | Serve.Protocol.Query_registered _ -> ()
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected query_registered");
  let reference = explained_payload "default" (explain_via srv ~dataset:"RE" ()) in
  (* the stored query + stored pattern hash to the scenario's own cache
     key, so this must be a cache hit — the strongest identity there is *)
  match explain_via srv ~dataset:"RE" ~query_name:"q" () with
  | Serve.Protocol.Explained { cache = `Hit; result; _ } ->
    Alcotest.(check string) "same cache entry" reference
      (Nested.Json.to_line result)
  | Serve.Protocol.Explained { cache = _; _ } ->
    Alcotest.fail
      "expected a cache hit: same query, same pattern, same cache key"
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected explained"

let test_wire_query_eviction () =
  let srv = Serve.Server.create ~config:quiet_config () in
  register_dataset srv "RE";
  (match
     register_query srv ~dataset:"RE" ~name:"Top" ~query:re_sql ~pattern:None
   with
  | Serve.Protocol.Query_registered { replaced = false; _ } -> ()
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected query_registered");
  (* case-insensitive lookup: the stored "Top" answers as "TOP" *)
  (match explain_via srv ~dataset:"RE" ~query_name:"TOP" () with
  | Serve.Protocol.Explained _ -> ()
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected explained");
  (* evicting the dataset must drop its registered queries too *)
  (match
     Serve.Server.handle_request srv
       (Serve.Protocol.Evict
          { dataset = Some "RE"; scale = 1; seed = 0; cache = false })
   with
  | Serve.Protocol.Evicted { datasets; queries; _ } ->
    Alcotest.(check int) "one dataset evicted" 1 datasets;
    Alcotest.(check int) "its query dropped with it" 1 queries
  | _ -> Alcotest.fail "expected evicted");
  register_dataset srv "RE";
  (* the dataset is back but the stale query must not be *)
  (match explain_via srv ~dataset:"RE" ~query_name:"Top" () with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "evicted query must be not_found after re-register");
  (* re-registering is a fresh insert, not a replacement *)
  match
    register_query srv ~dataset:"RE" ~name:"Top" ~query:re_sql ~pattern:None
  with
  | Serve.Protocol.Query_registered { replaced; _ } ->
    Alcotest.(check bool) "registry was really empty" false replaced;
    (match explain_via srv ~dataset:"RE" ~query_name:"top" () with
    | Serve.Protocol.Explained _ -> ()
    | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
    | _ -> Alcotest.fail "expected explained")
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected query_registered"

let list_queries srv ?dataset () =
  Serve.Server.handle_request srv
    (Serve.Protocol.List_queries { dataset; scale = 1; seed = 0 })

let test_wire_list_queries () =
  let srv = Serve.Server.create ~config:quiet_config () in
  (* listing an unregistered dataset is not_found, like register_query *)
  (match list_queries srv ~dataset:"RE" () with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "list over an unknown dataset must be not_found");
  register_dataset srv "RE";
  (* an empty registry lists as an empty, well-typed reply *)
  (match list_queries srv ~dataset:"RE" () with
  | Serve.Protocol.Queries { dataset = Some "RE"; queries = [] } -> ()
  | _ -> Alcotest.fail "expected an empty queries reply");
  let fingerprint =
    match
      register_query srv ~dataset:"RE" ~name:"Zeta" ~query:re_sql ~pattern:None
    with
    | Serve.Protocol.Query_registered { fingerprint; _ } -> fingerprint
    | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
    | _ -> Alcotest.fail "expected query_registered"
  in
  (match
     register_query srv ~dataset:"RE" ~name:"Alpha" ~query:re_sql ~pattern:None
   with
  | Serve.Protocol.Query_registered _ -> ()
  | _ -> Alcotest.fail "expected query_registered");
  (* per-dataset listing: sorted by name, carrying the registration's
     fingerprint and canonical forms *)
  (match list_queries srv ~dataset:"RE" () with
  | Serve.Protocol.Queries { dataset = Some "RE"; queries } ->
    Alcotest.(check (list string))
      "sorted by name" [ "Alpha"; "Zeta" ]
      (List.map (fun q -> q.Serve.Protocol.q_name) queries);
    List.iter
      (fun (q : Serve.Protocol.query_info) ->
        Alcotest.(check string) "fingerprint" fingerprint q.q_fingerprint;
        Alcotest.(check bool) "canonical sql present" true (q.q_sql <> None);
        Alcotest.(check bool) "canonical sexp present" true (q.q_sexp <> ""))
      queries
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected queries");
  (* the unfiltered listing spans datasets, sorted dataset-major *)
  register_dataset srv "F1";
  (match
     register_query srv ~dataset:"F1" ~name:"f"
       ~query:Scenarios.Forestry_scenarios.f1_sql ~pattern:None
   with
  | Serve.Protocol.Query_registered _ -> ()
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected query_registered");
  (match list_queries srv () with
  | Serve.Protocol.Queries { dataset = None; queries } ->
    Alcotest.(check (list (pair string string)))
      "dataset-major order"
      [ ("F1", "f"); ("RE", "Alpha"); ("RE", "Zeta") ]
      (List.map
         (fun q -> (q.Serve.Protocol.q_dataset, q.Serve.Protocol.q_name))
         queries)
  | _ -> Alcotest.fail "expected queries");
  (* eviction empties the dataset's slice of the listing *)
  ignore
    (Serve.Server.handle_request srv
       (Serve.Protocol.Evict
          { dataset = Some "RE"; scale = 1; seed = 0; cache = false }));
  register_dataset srv "RE";
  match list_queries srv ~dataset:"RE" () with
  | Serve.Protocol.Queries { queries = []; _ } -> ()
  | _ -> Alcotest.fail "evicted queries must not be listed"

let test_server_approx_no_alias () =
  let srv = Serve.Server.create ~config:quiet_config () in
  register_dataset srv "RE";
  let explain options =
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           query_name = None;
           pattern = None;
           options;
           deadline_ms = None;
           budget_ms = None;
         })
  in
  let has_approx j =
    match j with
    | Nested.Json.J_object fields -> List.mem_assoc "approx" fields
    | _ -> false
  in
  let exact =
    match expect_ok "exact" (explain Serve.Protocol.default_options) with
    | Serve.Protocol.Explained { cache = `Miss; result; _ } ->
      Alcotest.(check bool) "exact payload has no approx report" false
        (has_approx result);
      Nested.Json.to_line result
    | _ -> Alcotest.fail "expected a miss"
  in
  let sampled_options =
    { Serve.Protocol.default_options with sample_stride = Some 2 }
  in
  (* a sampled request must never be served from the exact cache entry *)
  (match expect_ok "sampled" (explain sampled_options) with
  | Serve.Protocol.Explained { cache = `Hit; _ } ->
    Alcotest.fail "sampled explain aliased the exact cache entry"
  | Serve.Protocol.Explained { cache = _; result; _ } ->
    Alcotest.(check bool) "sampled payload carries the approx report" true
      (has_approx result)
  | _ -> Alcotest.fail "expected explained");
  (* and the exact entry is still there, byte-identical *)
  match expect_ok "exact again" (explain Serve.Protocol.default_options) with
  | Serve.Protocol.Explained { cache = `Hit; result; _ } ->
    Alcotest.(check string) "exact entry untouched" exact
      (Nested.Json.to_line result)
  | _ -> Alcotest.fail "expected the exact entry to still hit"

let test_server_line_session () =
  (* the line-level entry point the transports share *)
  let srv = Serve.Server.create ~config:quiet_config () in
  let step line =
    let text, stop = Serve.Server.handle_line srv line in
    (Nested.Json.of_string text, stop)
  in
  let field name = function
    | Nested.Json.J_object fields -> List.assoc_opt name fields
    | _ -> None
  in
  let j, stop = step "{\"op\": \"register\", \"dataset\": \"RE\"}" in
  Alcotest.(check bool) "register continues" false stop;
  Alcotest.(check bool) "register ok" true
    (field "ok" j = Some (Nested.Json.J_bool true));
  let j, _ = step "nonsense" in
  Alcotest.(check bool) "parse errors answer, not kill" true
    (field "code" j = Some (Nested.Json.J_string "bad_request"));
  let j, _ = step "{\"op\": \"evict\", \"dataset\": \"RE\"}" in
  Alcotest.(check bool) "evict drops one dataset" true
    (field "datasets" j = Some (Nested.Json.J_int 1));
  let j, stop = step "{\"op\": \"shutdown\"}" in
  Alcotest.(check bool) "shutdown stops the loop" true stop;
  Alcotest.(check bool) "goodbye" true
    (field "type" j = Some (Nested.Json.J_string "goodbye"))

(* --- robustness: coalescing, mid-run deadlines, faults, sockets --------- *)

let str_contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let explain_request ?deadline_ms () =
  Serve.Protocol.Explain
    {
      dataset = "RE";
      scale = 1;
      seed = 0;
      query = None;
      query_name = None;
      pattern = None;
      options = Serve.Protocol.default_options;
      deadline_ms;
      budget_ms = None;
    }

let register_re srv =
  ignore
    (expect_ok "register"
       (Serve.Server.handle_request srv
          (Serve.Protocol.Register
             { dataset = "RE"; scale = 1; seed = 0; refresh = false })))

let stats_section srv name =
  match Serve.Server.handle_request srv Serve.Protocol.Stats with
  | Serve.Protocol.Stats_reply sections -> (
    match List.assoc_opt name sections with
    | Some (Nested.Json.J_object fields) -> fields
    | _ -> Alcotest.fail ("stats section missing: " ^ name))
  | _ -> Alcotest.fail "expected stats"

let stat fields name =
  match List.assoc_opt name fields with
  | Some (Nested.Json.J_int n) -> n
  | _ -> Alcotest.fail ("stats field missing: " ^ name)

let test_server_single_flight () =
  Obs.Faultinject.reset ();
  (* 2x the scheduler capacity in identical concurrent explains:
     coalescing must shield the queue, so nobody sees overloaded *)
  let config = { quiet_config with queue_capacity = 2 } in
  let srv = Serve.Server.create ~config () in
  register_re srv;
  (* hold the one real execution open long enough for everyone to pile in *)
  Obs.Faultinject.arm "server.explain" (Obs.Faultinject.Delay_ms 200.0);
  let k = 4 in
  let responses = Array.make k None in
  let threads =
    Array.init k (fun i ->
        Thread.create
          (fun () ->
            responses.(i) <-
              Some (Serve.Server.handle_request srv (explain_request ())))
          ())
  in
  Array.iter Thread.join threads;
  Obs.Faultinject.reset ();
  let payloads = ref [] and miss = ref 0 and coalesced = ref 0 in
  Array.iter
    (fun r ->
      match r with
      | Some (Serve.Protocol.Explained { cache; result; _ }) -> (
        payloads := Nested.Json.to_line result :: !payloads;
        match cache with
        | `Miss -> incr miss
        | `Coalesced -> incr coalesced
        | `Hit | `Handle -> ())
      | Some (Serve.Protocol.Error { message; _ }) -> Alcotest.fail message
      | _ -> Alcotest.fail "missing response")
    responses;
  Alcotest.(check int) "exactly one leader miss" 1 !miss;
  Alcotest.(check int) "everyone else coalesced" (k - 1) !coalesced;
  (match !payloads with
  | p :: rest ->
    List.iter (Alcotest.(check string) "payloads byte-identical" p) rest
  | [] -> Alcotest.fail "no payloads");
  let server = stats_section srv "server" in
  Alcotest.(check int) "exactly one pipeline execution" 1
    (stat server "prepares");
  let flight = stats_section srv "inflight" in
  Alcotest.(check int) "one flight leader" 1 (stat flight "leaders");
  Alcotest.(check int) "flight coalesced the rest" (k - 1)
    (stat flight "coalesced");
  let sched = stats_section srv "scheduler" in
  Alcotest.(check int) "scheduler saw one job" 1 (stat sched "submitted");
  Alcotest.(check int) "depth drained" 0 (stat sched "depth")

let test_server_deadline_mid_execution () =
  Obs.Faultinject.reset ();
  let srv = Serve.Server.create ~config:quiet_config () in
  register_re srv;
  (* the job outlives its deadline while already running: the slow-job
     fault fires inside the scheduler job, past the admission check *)
  Obs.Faultinject.arm "server.explain" (Obs.Faultinject.Delay_ms 60.0);
  (match
     Serve.Server.handle_request srv (explain_request ~deadline_ms:15.0 ())
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Deadline_exceeded; message; _ }
    ->
    Alcotest.(check bool)
      (Fmt.str "mid-run phase attribution in %S" message)
      true
      (str_contains ~needle:"cancelled at" message)
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected deadline_exceeded");
  Obs.Faultinject.reset ();
  (* the cancelled run must leave no trace: no cached payload, no cached
     handle, and the scheduler fully drained *)
  (match Serve.Server.handle_request srv (explain_request ()) with
  | Serve.Protocol.Explained { cache = `Miss; _ } -> ()
  | Serve.Protocol.Explained { cache = `Hit; _ } ->
    Alcotest.fail "cancelled run must not populate the explanation cache"
  | Serve.Protocol.Explained { cache = `Handle; _ } ->
    Alcotest.fail "cancelled run must not leave a handle behind"
  | Serve.Protocol.Explained _ -> Alcotest.fail "unexpected cache label"
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected explained");
  let sched = stats_section srv "scheduler" in
  Alcotest.(check int) "one expiry" 1 (stat sched "expired");
  Alcotest.(check int) "depth drained" 0 (stat sched "depth")

(* feed [lines] through [serve_channels] and return the response lines *)
let run_stdio config lines =
  let in_path = Filename.temp_file "whynot_serve" ".in" in
  let out_path = Filename.temp_file "whynot_serve" ".out" in
  let oc = open_out in_path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let srv = Serve.Server.create ~config () in
  let ic = open_in in_path and oc = open_out out_path in
  Serve.Server.serve_channels srv ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = read [] in
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  out

let test_server_request_size_limit () =
  Obs.Faultinject.reset ();
  let config = { quiet_config with max_request_bytes = 64 } in
  let big = "{\"op\": \"stats\", \"pad\": \"" ^ String.make 200 'x' ^ "\"}" in
  match run_stdio config [ big; "{\"op\": \"stats\"}" ] with
  | [ first; second ] ->
    Alcotest.(check bool) "oversized line answers bad_request" true
      (str_contains ~needle:"bad_request" first);
    Alcotest.(check bool) "oversize is named" true
      (str_contains ~needle:"64" first);
    Alcotest.(check bool) "the session stays in sync" true
      (str_contains ~needle:"scheduler" second)
  | lines ->
    Alcotest.fail
      (Fmt.str "expected 2 response lines, got %d" (List.length lines))

let test_server_garbled_input_survives () =
  Obs.Faultinject.reset ();
  (* byte corruption on the read path: the poisoned line answers
     bad_request and the session keeps going *)
  let first = ref true in
  Obs.Faultinject.arm "server.read"
    (Obs.Faultinject.Garble
       (fun s ->
         if !first then begin
           first := false;
           "\xff{" ^ s
         end
         else s));
  let out = run_stdio quiet_config [ "{\"op\": \"stats\"}"; "{\"op\": \"stats\"}" ] in
  Obs.Faultinject.reset ();
  match out with
  | [ poisoned; clean ] ->
    Alcotest.(check bool) "garbled line answers bad_request" true
      (str_contains ~needle:"bad_request" poisoned);
    Alcotest.(check bool) "next request is fine" true
      (str_contains ~needle:"scheduler" clean)
  | lines ->
    Alcotest.fail
      (Fmt.str "expected 2 response lines, got %d" (List.length lines))

let connect_unix path =
  (* serve_unix unlinks and binds the path after the thread starts: retry
     until the listener is up *)
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.02;
      go (tries - 1)
  in
  go 100

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let test_server_unix_lifecycle () =
  Obs.Faultinject.reset ();
  let path = Filename.temp_file "whynot" ".sock" in
  let srv = Serve.Server.create ~config:quiet_config () in
  let server_thread =
    Thread.create (fun () -> Serve.Server.serve_unix srv ~path) ()
  in
  (* connection A: a write fault (EPIPE) kills this connection only *)
  let a = connect_unix path in
  let ica = Unix.in_channel_of_descr a in
  let oca = Unix.out_channel_of_descr a in
  send_line oca "{\"op\": \"register\", \"dataset\": \"RE\"}";
  Alcotest.(check bool) "A served before the fault" true
    (str_contains ~needle:"\"ok\": true" (input_line ica));
  Obs.Faultinject.arm "server.write"
    (Obs.Faultinject.fail_once (Unix.Unix_error (Unix.EPIPE, "write", "")));
  send_line oca "{\"op\": \"stats\"}";
  (match input_line ica with
  | exception End_of_file -> ()
  | line -> Alcotest.fail ("EPIPE'd connection must close, got: " ^ line));
  Alcotest.(check int) "write fault fired" 1
    (Obs.Faultinject.fired "server.write");
  (* a transient accept fault is retried, and the next connection works:
     one connection's death did not take the server down *)
  Obs.Faultinject.arm "server.accept"
    (Obs.Faultinject.Fail
       {
         times = 1;
         exn_ = Unix.Unix_error (Unix.ECONNABORTED, "accept", "");
       });
  let b = connect_unix path in
  let icb = Unix.in_channel_of_descr b in
  let ocb = Unix.out_channel_of_descr b in
  send_line ocb "{\"op\": \"stats\"}";
  Alcotest.(check bool) "B served after both faults" true
    (str_contains ~needle:"scheduler" (input_line icb));
  Alcotest.(check int) "accept fault fired" 1
    (Obs.Faultinject.fired "server.accept");
  (* a shutdown request actually stops the server: serve_unix returns *)
  send_line ocb "{\"op\": \"shutdown\"}";
  Alcotest.(check bool) "goodbye" true
    (str_contains ~needle:"goodbye" (input_line icb));
  Thread.join server_thread;
  Alcotest.(check bool) "stop flag latched" true (Serve.Server.stopping srv);
  Alcotest.(check int) "connections drained" 0
    (Serve.Server.active_connections srv);
  Obs.Faultinject.reset ();
  (try Unix.close a with Unix.Unix_error _ -> ());
  (try Unix.close b with Unix.Unix_error _ -> ())

let test_server_connection_cap () =
  Obs.Faultinject.reset ();
  let path = Filename.temp_file "whynot" ".sock" in
  let config = { quiet_config with max_connections = 1 } in
  let srv = Serve.Server.create ~config () in
  let server_thread =
    Thread.create (fun () -> Serve.Server.serve_unix srv ~path) ()
  in
  let a = connect_unix path in
  let ica = Unix.in_channel_of_descr a in
  let oca = Unix.out_channel_of_descr a in
  send_line oca "{\"op\": \"stats\"}";
  ignore (input_line ica);
  (* A occupies the only slot: B gets one overloaded line, then EOF *)
  let b = connect_unix path in
  let icb = Unix.in_channel_of_descr b in
  Alcotest.(check bool) "over-cap connection answers overloaded" true
    (str_contains ~needle:"overloaded" (input_line icb));
  (match input_line icb with
  | exception End_of_file -> ()
  | line -> Alcotest.fail ("rejected connection must close, got: " ^ line));
  Unix.close b;
  send_line oca "{\"op\": \"shutdown\"}";
  ignore (input_line ica);
  Thread.join server_thread;
  (try Unix.close a with Unix.Unix_error _ -> ())

(* Checkpoint hygiene: a server session that produced checkpoint/spill
   files must not leak them — evicting the dataset sweeps the per-run
   scratch directory. *)
let test_server_checkpoint_no_leak () =
  let base = Filename.temp_file "whynot-hygiene" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  Engine.Checkpoint.with_config
    (Some (Engine.Checkpoint.config ~dir:base ~checkpoint_shuffles:true ()))
    (fun () ->
      let srv = Serve.Server.create ~config:quiet_config () in
      register_dataset srv "RE";
      (match explain_via srv ~dataset:"RE" () with
      | Serve.Protocol.Explained _ -> ()
      | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
      | _ -> Alcotest.fail "expected explained");
      (match Engine.Checkpoint.run_dir () with
      | Some d ->
        Alcotest.(check bool) "run dir exists while live" true
          (Sys.file_exists d && Sys.is_directory d)
      | None ->
        Alcotest.fail "a checkpointing explain must create the run dir");
      let before = Engine.Checkpoint.run_dir () in
      (match
         Serve.Server.handle_request srv
           (Serve.Protocol.Evict
              { dataset = Some "RE"; scale = 1; seed = 0; cache = true })
       with
      | Serve.Protocol.Evicted { datasets = 1; _ } -> ()
      | _ -> Alcotest.fail "expected evicted");
      Alcotest.(check bool) "run dir forgotten after evict" true
        (Engine.Checkpoint.run_dir () = None);
      (match before with
      | Some d ->
        Alcotest.(check bool) "run dir removed after evict" false
          (Sys.file_exists d)
      | None -> ());
      Alcotest.(check (list string)) "no stray files under the base dir" []
        (Array.to_list (Sys.readdir base)));
  Unix.rmdir base

let test_resolve_host () =
  (match Serve.Server.resolve_host "127.0.0.1" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("numeric address: " ^ m));
  (match Serve.Server.resolve_host "localhost" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("hostname: " ^ m));
  match Serve.Server.resolve_host "no-such-host.invalid" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "an unresolvable name must be an Error"

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "deterministic" `Quick test_fp_deterministic;
          Alcotest.test_case "alpha-equivalence" `Quick test_fp_alpha_equivalent;
          Alcotest.test_case "parameter sensitivity" `Quick
            test_fp_param_sensitive;
          Alcotest.test_case "nip and options" `Quick test_fp_nip_and_options;
          Alcotest.test_case "cache keys" `Quick test_fp_keys;
        ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_explanation_roundtrip;
          QCheck_alcotest.to_alcotest prop_explanations_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_via_text;
          Alcotest.test_case "result payload" `Quick test_codec_result_payload;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "register/reuse/refresh" `Quick
            test_catalog_register_reuse_refresh;
          Alcotest.test_case "distinct keys" `Quick
            test_catalog_keys_are_distinct;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "overwrite and invalidate" `Quick
            test_cache_overwrite_and_invalidate;
          Alcotest.test_case "capacity 0 disables" `Quick test_cache_disabled;
          Alcotest.test_case "long run" `Quick test_cache_many_keys;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "runs jobs" `Quick test_scheduler_runs_jobs;
          Alcotest.test_case "backpressure" `Quick test_scheduler_backpressure;
          Alcotest.test_case "deadline" `Quick test_scheduler_deadline;
          Alcotest.test_case "cancels mid-run" `Quick
            test_scheduler_cancels_mid_run;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "token semantics" `Quick test_cancel_token;
          Alcotest.test_case "pipeline observes cancellation" `Quick
            test_pipeline_cancelled_run;
        ] );
      ( "inflight",
        [
          Alcotest.test_case "coalesces concurrent callers" `Quick
            test_inflight_coalesces;
          Alcotest.test_case "leader failure releases followers" `Quick
            test_inflight_leader_failure_releases;
        ] );
      ( "faultinject",
        [ Alcotest.test_case "actions" `Quick test_faultinject_actions ] );
      ( "protocol",
        [
          Alcotest.test_case "parse requests" `Quick test_protocol_parse_requests;
          Alcotest.test_case "response lines" `Quick
            test_protocol_response_lines;
        ] );
      ( "server",
        [
          Alcotest.test_case "cache hit is byte-identical" `Quick
            test_server_cache_hit_is_byte_identical;
          Alcotest.test_case "handle reuse across patterns" `Quick
            test_server_handle_reuse_across_patterns;
          Alcotest.test_case "refresh invalidates" `Quick
            test_server_refresh_invalidates;
          Alcotest.test_case "typed errors" `Quick test_server_typed_errors;
          Alcotest.test_case "approx options do not alias" `Quick
            test_server_approx_no_alias;
          Alcotest.test_case "line session" `Quick test_server_line_session;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "RE text explains byte-identically" `Quick
            test_wire_text_identity_re;
          Alcotest.test_case "forestry text explains byte-identically" `Quick
            test_wire_text_identity_forestry;
          Alcotest.test_case "parse verb" `Quick test_wire_parse_verb;
          Alcotest.test_case "register_query lifecycle" `Quick
            test_wire_register_query_lifecycle;
          Alcotest.test_case "stored pattern defaults" `Quick
            test_wire_stored_pattern_defaults;
          Alcotest.test_case "query eviction" `Quick test_wire_query_eviction;
          Alcotest.test_case "list_queries verb" `Quick test_wire_list_queries;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "single-flight coalescing" `Quick
            test_server_single_flight;
          Alcotest.test_case "deadline mid-execution" `Quick
            test_server_deadline_mid_execution;
          Alcotest.test_case "request size limit" `Quick
            test_server_request_size_limit;
          Alcotest.test_case "garbled input survives" `Quick
            test_server_garbled_input_survives;
          Alcotest.test_case "unix socket lifecycle" `Quick
            test_server_unix_lifecycle;
          Alcotest.test_case "connection cap" `Quick test_server_connection_cap;
          Alcotest.test_case "checkpoint files do not leak" `Quick
            test_server_checkpoint_no_leak;
          Alcotest.test_case "resolve host" `Quick test_resolve_host;
        ] );
    ]
