(* Exact MSR computation by bounded enumeration.

   The brute-force PTIME algorithm sketched in the proof of Theorem 1:
   enumerate the (polynomially many) distinguishable reparameterizations —
   attribute swaps, comparison-operator switches, constants drawn from the
   active domain, join/flatten kind changes — evaluate each candidate, keep
   the successful ones, and compute the minimal ones under the partial
   order of Definition 9 with the tree edit distance as d.

   Exponential in the number of simultaneously changed operators, so only
   usable on small instances; it serves as ground truth for the heuristic
   pipeline in the test suite and for the crime-dataset comparison. *)

open Nested
open Nrab
module Int_set = Opset.Int_set

type sr = { query : Query.t; changed : Int_set.t; distance : int }

(* Input fields (name × type) of operator [op] inside query [q]. *)
let input_fields env (op : Query.t) : (string * Vtype.t) list =
  List.concat_map
    (fun child ->
      match Typecheck.infer_result env child with
      | Ok ty -> Vtype.relation_fields ty
      | Error _ -> [])
    op.Query.children

(* Active domain of attribute [a] in the input of [op]. *)
let active_domain (db : Relation.Db.t) (op : Query.t) (a : string) :
    Value.t list =
  let values =
    List.concat_map
      (fun child ->
        match Eval.eval db child with
        | rel ->
          List.filter_map
            (fun t -> Value.field a t)
            (Relation.distinct_tuples rel)
        | exception _ -> [])
      op.Query.children
  in
  List.sort_uniq Value.compare values

(* All candidate node replacements for one operator (one or two admissible
   changes deep). *)
let candidates ~(depth : int) (db : Relation.Db.t) env (op : Query.t) :
    Query.node list =
  let fields = input_fields env op in
  let type_of a = List.assoc_opt a fields in
  let attr_pool a =
    match type_of a with
    | None -> []
    | Some ty ->
      List.filter_map
        (fun (a', ty') -> if Vtype.equal ty ty' then Some a' else None)
        fields
  in
  let const_pool attr_hint (v : Value.t) =
    let domain =
      match attr_hint with
      | Some a -> active_domain db op a
      | None -> []
    in
    let same_type v' =
      match v, v' with
      | Value.Int _, Value.Int _
      | Value.Float _, Value.Float _
      | Value.String _, Value.String _
      | Value.Bool _, Value.Bool _ ->
        true
      | _ -> false
    in
    List.filter same_type domain
  in
  let step node = Reparam.node_variants ~attr_pool ~const_pool node in
  let rec go d frontier acc =
    if d = 0 then acc
    else
      let next = List.sort_uniq compare (List.concat_map step frontier) in
      let fresh =
        List.filter (fun n -> n <> op.Query.node && not (List.mem n acc)) next
      in
      go (d - 1) fresh (acc @ fresh)
  in
  go depth [ op.Query.node ] []

(* Enumerate subsets of operators up to [max_ops] and all combinations of
   their candidate replacements. *)
let reparameterizations ?(max_ops = 2) ?(depth = 2) (phi : Question.t) :
    (Query.t * Int_set.t) list =
  let q = phi.Question.query in
  let db = phi.Question.db in
  let env =
    List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)
  in
  let ops =
    List.filter
      (fun (op : Query.t) ->
        match op.Query.node with
        | Query.Table _ | Query.Product | Query.Union | Query.Diff
        | Query.Dedup ->
          false
        | _ -> true)
      (Query.operators q)
  in
  let per_op =
    List.map (fun op -> (op.Query.id, candidates ~depth db env op)) ops
  in
  let per_op = List.filter (fun (_, cs) -> cs <> []) per_op in
  (* subsets of changed operators *)
  let rec subsets k = function
    | [] -> [ [] ]
    | _ when k = 0 -> [ [] ]
    | x :: rest ->
      let without = subsets k rest in
      let with_x = List.map (fun s -> x :: s) (subsets (k - 1) rest) in
      without @ with_x
  in
  let combos =
    List.concat_map
      (fun subset ->
        let rec product = function
          | [] -> [ [] ]
          | (id, cs) :: rest ->
            let tails = product rest in
            List.concat_map
              (fun c -> List.map (fun tl -> (id, c) :: tl) tails)
              cs
        in
        product subset)
      (subsets max_ops per_op)
  in
  List.filter_map
    (fun rp ->
      if rp = [] then None
      else
        let q' = Reparam.apply q rp in
        if Typecheck.well_typed env q' then
          Some (q', Int_set.of_list (List.map fst rp))
        else None)
    combos

(* Successful reparameterizations (Definition 8) with their tree edit
   distance side effects. *)
let successful ?max_ops ?depth (phi : Question.t) : sr list =
  let original = Question.original_result phi in
  let original_data = Relation.data original in
  List.filter_map
    (fun (q', changed) ->
      match Question.is_successful phi q' with
      | true ->
        let result = Eval.eval phi.Question.db q' in
        let distance = Ted.distance original_data (Relation.data result) in
        Some { query = q'; changed; distance }
      | false -> None
      | exception _ -> None)
    (reparameterizations ?max_ops ?depth phi)

(* MSRs: SRs minimal w.r.t. the partial order (Definition 9). *)
let msrs ?max_ops ?depth (phi : Question.t) : sr list =
  let srs = successful ?max_ops ?depth phi in
  let leq (a : sr) (b : sr) =
    Int_set.subset a.changed b.changed && a.distance <= b.distance
  in
  let strictly_less a b = leq a b && not (leq b a) in
  List.filter (fun s -> not (List.exists (fun s' -> strictly_less s' s) srs)) srs

(* Explanations: the distinct Δ sets of the MSRs (Definition 10). *)
let explanations ?max_ops ?depth (phi : Question.t) : Explanation.t list =
  let ms = msrs ?max_ops ?depth phi in
  let sets =
    List.fold_left
      (fun acc (s : sr) ->
        match
          List.find_opt (fun (set, _) -> Int_set.equal set s.changed) acc
        with
        | Some (_, d) when d <= s.distance -> acc
        | Some _ ->
          (s.changed, s.distance)
          :: List.filter (fun (set, _) -> not (Int_set.equal set s.changed)) acc
        | None -> (s.changed, s.distance) :: acc)
      [] ms
  in
  Explanation.rank
    (List.map (fun (set, d) -> Explanation.make ~lb:d ~ub:d set) sets)
