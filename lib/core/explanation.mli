(** Explanations (Definition 10) under the partial order of Definition 9.

    The heuristic algorithm knows side effects only up to the lower/upper
    bounds of Section 5.4, so explanations carry an interval; the exact
    search produces degenerate intervals [[d, d]] with the true tree edit
    distance. *)

module Int_set = Opset.Int_set

type t = {
  ops : Int_set.t;  (** Δ(Q, Q') — the operators to reparameterize *)
  side_effect_lb : int;
  side_effect_ub : int;
  sa : int;  (** index of the originating schema alternative; 0 = original *)
  confidence : float option;
      (** [None] = exact tracing witnessed the bounds; [Some c] = the
          bounds came from a 1-in-N sampled trace with [c = 1/N] *)
}

val make : ?sa:int -> ?confidence:float -> lb:int -> ub:int -> Int_set.t -> t

(** Stamp a sampled-trace confidence onto an explanation. *)
val with_confidence : float -> t -> t
val ops : t -> Int_set.t
val op_list : t -> int list

(** Definitive dominance given only bounds: [e'] dominates [e] when it
    changes a strict subset of [e]'s operators and its worst-case side
    effects do not exceed [e]'s best case (so [e] cannot be an MSR). *)
val dominates : t -> t -> bool

(** Merge duplicates and drop dominated explanations. *)
val prune_dominated : t list -> t list

(** Linearization of the partial order for presentation: fewer operators
    first, then smaller side-effect upper bound, then the original schema
    alternative first. *)
val rank : t list -> t list

(** Render in the paper's [{σ^2, F^5}] style, resolving operator symbols
    against the query. *)
val pp_with_query : Nrab.Query.t -> Format.formatter -> t -> unit

val to_string_with_query : Nrab.Query.t -> t -> string
val pp : Format.formatter -> t -> unit
val equal_ops : t -> t -> bool
