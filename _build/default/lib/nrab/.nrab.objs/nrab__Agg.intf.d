lib/nrab/agg.mli: Format Nested Value Vtype
