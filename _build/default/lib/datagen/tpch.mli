(** Synthetic TPC-H-like data, flat and nested (lineitems nested into
    orders, following the nested TPC-H variant of Pirzadeh et al. the
    paper evaluates on).  Dates are yyyymmdd integers.  Target entities
    of scenarios Q1–Q13 are embedded deterministically; volume scales
    with [scale]. *)

open Nested

(** {1 Schemas} *)

val nested_orders_schema : Vtype.t
val orders_schema : Vtype.t
val lineitem_schema : Vtype.t
val customer_schema : Vtype.t
val nation_schema : Vtype.t

(** {1 Target keys of the why-not questions} *)

val q3_target_orderkey : int
val q3_target_custkey : int
val q10_target_custkey : int

(** Tables: [nested_orders], [orders], [lineitem], [customer],
    [nested_customers] (orders nested into customers, for the nested Q13
    variant), [nation]. *)
val db : ?seed:int -> scale:int -> unit -> Relation.Db.t
