lib/core/exact.mli: Explanation Nrab Opset Query Question
