(** Nested relational values (Definition 2 of the paper).

    A value is a primitive, a labelled tuple, or a bag of values with
    positive multiplicities.  Bags are kept canonical — elements sorted by
    {!compare}, duplicates merged, non-positive multiplicities dropped —
    so that structural equality coincides with bag equality. *)

type t =
  | Null  (** ⊥, a valid value of every type *)
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Tuple of (string * t) list  (** labelled fields, in schema order *)
  | Bag of (t * int) list
      (** canonical contents; construct with {!bag} or {!bag_of_list} *)

(** {1 Ordering} *)

(** Total order on values.  Primitives order by kind then value; tuples
    lexicographically by (label, value); bags by their canonical element
    lists. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** {1 Constructors} *)

(** [bag elems] builds a canonical bag from arbitrary (value,
    multiplicity) pairs. *)
val bag : (t * int) list -> t

(** [bag_of_list vs] builds a bag where each list occurrence counts 1. *)
val bag_of_list : t list -> t

val empty_bag : t
val tuple : (string * t) list -> t
val str : string -> t
val int : int -> t
val boolean : bool -> t
val float : float -> t

(** {1 Tuple accessors} *)

(** [field label t] is the value of field [label], or [None] if [t] is
    not a tuple or lacks the field. *)
val field : string -> t -> t option

(** Like {!field} but raises [Invalid_argument] on a missing field. *)
val field_exn : string -> t -> t

(** The paper's tuple concatenation [t ∘ t'].  Raises on non-tuples. *)
val concat_tuples : t -> t -> t

(** Field labels of a tuple; [[]] for non-tuples. *)
val labels : t -> string list

(** {1 Bag operations} *)

(** Canonical (value, multiplicity) contents.  [Null] counts as the empty
    bag; raises on other non-bags. *)
val elems : t -> (t * int) list

val is_empty_bag : t -> bool

(** Total multiplicity. *)
val cardinal : t -> int

(** [multiplicity b v] is MULT(b, v) — 0 when absent. *)
val multiplicity : t -> t -> int

(** Additive union: multiplicities are summed ([t^{k+l}] semantics). *)
val bag_union : t -> t -> t

(** Bag difference: multiplicities subtract, clamped at 0. *)
val bag_diff : t -> t -> t

(** Map over distinct elements, keeping multiplicities (results merge if
    the function collides). *)
val bag_map : (t -> t) -> t -> t

val bag_filter : (t -> bool) -> t -> t

(** Duplicate elimination: every multiplicity becomes 1. *)
val dedup : t -> t

val bag_fold : ('a -> t -> int -> 'a) -> 'a -> t -> 'a

(** Elements expanded to their multiplicities (each element repeated). *)
val expand : t -> t list

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
