(** A fluent, Spark-DataFrame-style construction API for NRAB plans.

    The paper targets debugging of Spark programs whose operator pipelines
    correspond to NRAB queries (Figure 1c); this combinator layer lets
    such pipelines be written the way they read in Spark:

    {[
      Df.table "person"
      |> Df.explode "address2"
      |> Df.filter Expr.(Infix.(attr "year" >= int 2019))
      |> Df.select_cols [ "name"; "city" ]
      |> Df.group_nest [ "name" ] ~into:"nList"
      |> Df.plan
    ]} *)

type t

(** The underlying NRAB plan. *)
val plan : t -> Query.t

(** Wrap an existing plan (fresh ids continue from [gen]). *)
val of_query : ?gen:Query.Gen.t -> Query.t -> t

(** {1 Sources} *)

val table : ?gen:Query.Gen.t -> string -> t

(** {1 Row-wise transformations} *)

val filter : Expr.pred -> t -> t
val select_cols : string list -> t -> t

(** Projection with computed columns. *)
val with_columns : (string * Expr.t) list -> t -> t

val rename_cols : (string * string) list -> t -> t
val distinct : t -> t

(** {1 Nesting and flattening} *)

(** Spark's [explode] of an array column (inner relation flatten). *)
val explode : string -> t -> t

(** [explode_outer]: keeps rows whose array is empty or null. *)
val explode_outer : string -> t -> t

(** Expose a struct column's fields ([select("s.*")]). *)
val flatten_struct : string -> t -> t

(** [collect_list]-style grouping of [attrs] into a nested relation. *)
val group_nest : string list -> into:string -> t -> t

val pack_struct : string list -> into:string -> t -> t

(** {1 Joins and set operations} *)

val join : ?kind:Query.join_kind -> on:Expr.pred -> t -> t -> t
val cross_join : t -> t -> t
val union : t -> t -> t
val except : t -> t -> t

(** {1 Aggregation} *)

(** Per-row aggregation over a nested relation column. *)
val agg_over_nested : Agg.fn -> over:string -> into:string -> t -> t

val group_by : string list -> (Agg.fn * string option * string) list -> t -> t

(** {1 Execution shortcuts} *)

val collect : Nested.Relation.Db.t -> t -> Nested.Relation.t
val show : ?max_rows:int -> Nested.Relation.Db.t -> t -> unit
