lib/core/repair.mli: Explanation Format Nrab Query Question
