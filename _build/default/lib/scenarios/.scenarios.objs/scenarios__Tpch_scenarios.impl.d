lib/scenarios/tpch_scenarios.ml: Agg Datagen Eval Expr List Nested Nrab Query Relation Scenario Value Whynot
