(* Partitioned datasets — the engine's unit of distribution.

   A dataset is an array of partitions.  Each partition holds tuples
   already expanded to their multiplicities (like rows of a Spark
   DataFrame), stored either as a row list or as a columnar
   {!Columnar.t} batch.  The row view ([partitions]/[to_list]) stays
   the semantic boundary: columnar partitions reconstruct rows on
   demand, so callers that think in trees keep working unchanged while
   vectorized operators move contiguous column slices. *)

open Nested

type part = Rows of Value.t list | Cols of Columnar.t

type t = { parts : part array }

let part_rows = function Rows l -> l | Cols b -> Columnar.to_rows b
let part_cols = function Cols b -> b | Rows l -> Columnar.of_rows l

let part_length = function
  | Rows l -> List.length l
  | Cols b -> Columnar.length b

let of_partitions partitions = { parts = Array.map (fun l -> Rows l) partitions }
let of_cpartitions batches = { parts = Array.map (fun b -> Cols b) batches }
let partitions d = Array.map part_rows d.parts
let cpartitions d = Array.map part_cols d.parts
let partition_count d = Array.length d.parts
let cardinal d = Array.fold_left (fun acc p -> acc + part_length p) 0 d.parts

let to_list (d : t) : Value.t list =
  List.concat_map part_rows (Array.to_list d.parts)

(* Hash of a value, stable across runs (no use of OCaml's randomized
   hashing).  The columnar engine vectorizes the identical function
   ({!Columnar.hash_col}), so both layouts shuffle rows to the same
   partitions. *)
let value_hash = Columnar.value_hash

(* Distribute a list of tuples round-robin over [n] partitions. *)
let distribute ~partitions:n (rows : Value.t list) : t =
  let n = max 1 n in
  let parts = Array.make n [] in
  List.iteri (fun i row -> parts.(i mod n) <- row :: parts.(i mod n)) rows;
  { parts = Array.map (fun l -> Rows (List.rev l)) parts }

(* Round-robin distribution of a columnar batch: partition [i] takes
   rows [i, i+n, ...] — the same rows, in the same order, as
   [distribute] over the reconstructed list. *)
let distribute_cols ~partitions:n (b : Columnar.t) : t =
  let n = max 1 n in
  let total = Columnar.length b in
  { parts =
      Array.init n (fun i ->
          let m = if total <= i then 0 else 1 + ((total - i - 1) / n) in
          Cols (Columnar.gather b (Array.init m (fun j -> i + (j * n)))));
  }

(* Repartition by a key function (a shuffle).  Returns the dataset and the
   number of rows moved across partitions. *)
let shuffle_by ~partitions:n (key : Value.t -> Value.t) (d : t) : t * int =
  let n = max 1 n in
  let parts = Array.make n [] in
  let moved = ref 0 in
  Array.iteri
    (fun src p ->
      List.iter
        (fun row ->
          (* [land max_int] rather than [abs]: [abs min_int] is negative
             (it overflows), which would make [dst] out of bounds. *)
          let dst = value_hash (key row) land max_int mod n in
          if dst <> src then incr moved;
          parts.(dst) <- row :: parts.(dst))
        (part_rows p))
    d.parts;
  ({ parts = Array.map (fun l -> Rows (List.rev l)) parts }, !moved)

(* Vectorized shuffle: [hash_of] produces one destination hash per row
   of a batch; moved rows travel as contiguous gathered column slices,
   and the bytes shipped are reported on the
   [engine.columnar.bytes_moved] counter. *)
let shuffle_hashed ~partitions:n (hash_of : Columnar.t -> int array) (d : t) :
    t * int =
  let n = max 1 n in
  let bs = cpartitions d in
  let moved = ref 0 and bytes = ref 0 in
  let dests = Array.make n [] in
  Array.iteri
    (fun src b ->
      let h = hash_of b in
      let idxs = Array.make n [] in
      Array.iteri
        (fun i hv ->
          let dst = hv land max_int mod n in
          if dst <> src then incr moved;
          idxs.(dst) <- i :: idxs.(dst))
        h;
      for dst = 0 to n - 1 do
        match idxs.(dst) with
        | [] -> ()
        | l ->
          let slice = Columnar.gather b (Array.of_list (List.rev l)) in
          if dst <> src then bytes := !bytes + Columnar.bytes slice;
          dests.(dst) <- slice :: dests.(dst)
      done)
    bs;
  Columnar.note_bytes_moved !bytes;
  ( { parts =
        Array.map (fun l -> Cols (Columnar.vstack (List.rev l))) dests;
    },
    !moved )

(* Collapse to a single partition (a gather). *)
let gather (d : t) : t * int =
  let all_cols =
    Array.for_all (function Cols _ -> true | Rows _ -> false) d.parts
  in
  if all_cols then begin
    let b = Columnar.vstack (Array.to_list (cpartitions d)) in
    Columnar.note_bytes_moved (Columnar.bytes b);
    ({ parts = [| Cols b |] }, Columnar.length b)
  end
  else
    let rows = to_list d in
    ({ parts = [| Rows rows |] }, List.length rows)

(* [parallel] fans the partitions out over the shared domain {!Pool}
   (the engine's stand-in for a DISC system's task parallelism) instead
   of spawning a fresh domain per partition per operator, which cost
   more than it bought.  [f] must be pure.

   Every partition is a *task attempt*: under [retry], a task that
   raises [Fault.Transient] is recomputed from its input partition (our
   lineage is the closure plus the input, so recomputation is exact —
   the Spark task-retry model).  The ["engine.partition"] chaos site
   fires once per attempt, inside the retry scope, so an armed fault on
   one attempt is survived by the next. *)
let map_parts_generic ?(parallel = false) ?pool ?(retry = Fault.no_retry)
    ?(label = "partition") ?on_retry (f : part -> part) (d : t) : t =
  let task _i (p : part) () =
    Obs.Faultinject.fire "engine.partition";
    f p
  and fault_retry i =
    Option.map (fun cb ~attempt e -> cb ~partition:i ~attempt e) on_retry
  in
  let run i p =
    Fault.protect ~policy:retry
      ~task:(Fmt.str "%s/p%d" label i)
      ~task_id:i ?on_retry:(fault_retry i) (task i p)
  in
  if (not parallel) || Array.length d.parts <= 1 then
    { parts = Array.mapi run d.parts }
  else
    let pool = match pool with Some p -> p | None -> Pool.default () in
    let indexed = Array.mapi (fun i p -> (i, p)) d.parts in
    { parts = Pool.map_array pool (fun (i, p) -> run i p) indexed }

let map_partitions ?parallel ?pool ?retry ?label ?on_retry
    (f : Value.t list -> Value.t list) (d : t) : t =
  map_parts_generic ?parallel ?pool ?retry ?label ?on_retry
    (fun p -> Rows (f (part_rows p)))
    d

(* Columnar sibling of {!map_partitions}: same task-attempt semantics
   (chaos site, retries), batch-in/batch-out. *)
let map_cpartitions ?parallel ?pool ?retry ?label ?on_retry
    (f : Columnar.t -> Columnar.t) (d : t) : t =
  map_parts_generic ?parallel ?pool ?retry ?label ?on_retry
    (fun p -> Cols (f (part_cols p)))
    d

let of_relation ~partitions (r : Relation.t) : t =
  if Columnar.row_engine () then distribute ~partitions (Relation.tuples r)
  else distribute_cols ~partitions (Columnar.of_relation r)

let to_relation ~schema (d : t) : Relation.t =
  Relation.of_tuples ~schema (to_list d)
