lib/engine/dataset.mli: Nested Relation Value Vtype
