lib/core/nip_syntax.mli: Nip Nrab
