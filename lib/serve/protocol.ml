(* Line-delimited JSON wire protocol: request parsing and response
   serialization.  Queries and why-not patterns are embedded in their
   existing s-expression surface syntaxes; the JSON layer reuses
   Nested.Json (no external dependency). *)

open Nested
open Nrab

type explain_options = {
  use_sas : bool;
  max_sas : int;
  revalidate : bool;
  parallel : bool;
  sample_stride : int option;
  top_k : int option;
}

let default_options =
  {
    use_sas = true;
    max_sas = 16;
    revalidate = true;
    parallel = false;
    sample_stride = None;
    top_k = None;
  }

type query_text = [ `Ast of Query.t | `Sql of string ]

type request =
  | Register of { dataset : string; scale : int; seed : int; refresh : bool }
  | Explain of {
      dataset : string;
      scale : int;
      seed : int;
      query : query_text option;
      query_name : string option;
      pattern : Whynot.Nip.t option;
      options : explain_options;
      deadline_ms : float option;
      budget_ms : float option;
    }
  | Parse of {
      dataset : string;
      scale : int;
      seed : int;
      query : string option;
      pattern : string option;
    }
  | Register_query of {
      name : string;
      dataset : string;
      scale : int;
      seed : int;
      query : string;
      pattern : string option;
    }
  | List_queries of { dataset : string option; scale : int; seed : int }
  | Stats
  | Telemetry of { format : [ `Prometheus | `Json ] }
  | Evict of { dataset : string option; scale : int; seed : int; cache : bool }
  | Shutdown

type envelope = { req : request; trace_id : string option }

(* -- request parsing ----------------------------------------------------- *)

exception Bad of string

let bad fmt = Fmt.kstr (fun m -> raise (Bad m)) fmt

let member name = function
  | Json.J_object fields -> List.assoc_opt name fields
  | _ -> None

let get_string name j =
  match member name j with
  | Some (Json.J_string s) -> Some s
  | Some _ -> bad "field %S must be a string" name
  | None -> None

let get_int ?default name j =
  match member name j with
  | Some (Json.J_int n) -> n
  | Some _ -> bad "field %S must be an integer" name
  | None -> ( match default with Some d -> d | None -> bad "missing field %S" name)

let get_bool ~default name j =
  match member name j with
  | Some (Json.J_bool b) -> b
  | Some _ -> bad "field %S must be a boolean" name
  | None -> default

let get_float_opt name j =
  match member name j with
  | Some (Json.J_float f) -> Some f
  | Some (Json.J_int n) -> Some (float_of_int n)
  | Some _ -> bad "field %S must be a number" name
  | None -> None

let get_int_opt name j =
  match member name j with
  | Some (Json.J_int n) -> Some n
  | Some _ -> bad "field %S must be an integer" name
  | None -> None

let required_string name j =
  match get_string name j with
  | Some s -> s
  | None -> bad "missing field %S" name

(* An s-expression query is parsed right here (it needs no schema, and a
   malformed one should fail the request before any handler runs); SQL
   text is deferred to the handler, where the dataset's schema
   environment is available for typechecking. *)
let parse_query j =
  match get_string "query" j with
  | None -> None
  | Some text -> (
    match Frontend.Compile.detect text with
    | `Sql -> Some (`Sql text)
    | `Sexp -> (
      try Some (`Ast (Parser.query_of_string text))
      with Parser.Parse_error m | Sexp.Parse_error m ->
        bad "cannot parse \"query\": %s" m))

let parse_pattern j =
  match get_string "whynot" j with
  | None -> None
  | Some text -> (
    try Some (Whynot.Nip_syntax.of_string text)
    with Whynot.Nip_syntax.Parse_error m | Sexp.Parse_error m ->
      bad "cannot parse \"whynot\": %s" m)

let positive name = function
  | Some n when n < 1 -> bad "field %S must be >= 1" name
  | v -> v

let parse_options j =
  {
    use_sas = get_bool ~default:default_options.use_sas "use_sas" j;
    max_sas = get_int ~default:default_options.max_sas "max_sas" j;
    revalidate = get_bool ~default:default_options.revalidate "revalidate" j;
    parallel = get_bool ~default:default_options.parallel "parallel" j;
    sample_stride = positive "sample_stride" (get_int_opt "sample_stride" j);
    top_k = positive "top_k" (get_int_opt "top_k" j);
  }

let request_of_json (j : Json.json) : (request, string) result =
  try
    match get_string "op" j with
    | None -> Error "missing field \"op\""
    | Some "register" ->
      Ok
        (Register
           {
             dataset = required_string "dataset" j;
             scale = get_int ~default:1 "scale" j;
             seed = get_int ~default:0 "seed" j;
             refresh = get_bool ~default:false "refresh" j;
           })
    | Some "explain" ->
      Ok
        (Explain
           {
             dataset = required_string "dataset" j;
             scale = get_int ~default:1 "scale" j;
             seed = get_int ~default:0 "seed" j;
             query = parse_query j;
             query_name = get_string "query_name" j;
             pattern = parse_pattern j;
             options = parse_options j;
             deadline_ms = get_float_opt "deadline_ms" j;
             budget_ms = get_float_opt "budget_ms" j;
           })
    | Some "parse" ->
      let query = get_string "query" j and pattern = get_string "whynot" j in
      if query = None && pattern = None then
        Error "a parse request needs a \"query\" or a \"whynot\" pattern"
      else
        Ok
          (Parse
             {
               dataset = required_string "dataset" j;
               scale = get_int ~default:1 "scale" j;
               seed = get_int ~default:0 "seed" j;
               query;
               pattern;
             })
    | Some "register_query" ->
      Ok
        (Register_query
           {
             name = required_string "name" j;
             dataset = required_string "dataset" j;
             scale = get_int ~default:1 "scale" j;
             seed = get_int ~default:0 "seed" j;
             query = required_string "query" j;
             pattern = get_string "whynot" j;
           })
    | Some "list_queries" ->
      Ok
        (List_queries
           {
             dataset = get_string "dataset" j;
             scale = get_int ~default:1 "scale" j;
             seed = get_int ~default:0 "seed" j;
           })
    | Some "stats" -> Ok Stats
    | Some "telemetry" ->
      let format =
        match get_string "format" j with
        | None | Some "prometheus" -> `Prometheus
        | Some "json" -> `Json
        | Some f -> bad "unknown telemetry format %S (prometheus|json)" f
      in
      Ok (Telemetry { format })
    | Some "evict" ->
      Ok
        (Evict
           {
             dataset = get_string "dataset" j;
             scale = get_int ~default:1 "scale" j;
             seed = get_int ~default:0 "seed" j;
             cache = get_bool ~default:false "cache" j;
           })
    | Some "shutdown" -> Ok Shutdown
    | Some op -> Error (Fmt.str "unknown op %S" op)
  with Bad m -> Error m

let request_of_string line =
  match Json.of_string line with
  | exception Json.Parse_error m -> Error ("invalid JSON: " ^ m)
  | j -> request_of_json j

(* A client-supplied trace id rides in the optional "trace_id" field —
   validated (so a hostile id cannot smuggle spaces or quotes into log
   lines) and echoed verbatim on the response. *)
let envelope_of_json (j : Json.json) : (envelope, string) result =
  match
    match get_string "trace_id" j with
    | None -> Ok None
    | Some t when Obs.Trace_context.is_valid t -> Ok (Some t)
    | Some t ->
      Error
        (Fmt.str "invalid \"trace_id\" %S (1-64 chars of [A-Za-z0-9._:-])" t)
  with
  | exception Bad m -> Error m
  | Error m -> Error m
  | Ok trace_id -> (
    match request_of_json j with
    | Ok req -> Ok { req; trace_id }
    | Error m -> Error m)

let envelope_of_string line =
  match Json.of_string line with
  | exception Json.Parse_error m -> Error ("invalid JSON: " ^ m)
  | j -> envelope_of_json j

(* -- responses ----------------------------------------------------------- *)

type query_info = {
  q_name : string;
  q_dataset : string;
  q_fingerprint : string;
  q_sql : string option;
  q_sexp : string;
}

type error_code =
  | Bad_request
  | Invalid_query
  | Not_found
  | Overloaded
  | Deadline_exceeded
  | Task_failed
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Invalid_query -> "invalid_query"
  | Not_found -> "not_found"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Task_failed -> "task_failed"
  | Internal -> "internal"

type response =
  | Registered of {
      dataset : string;
      scale : int;
      seed : int;
      version : int;
      fresh : bool;
      rows : int;
      tables : (string * int) list;
    }
  | Explained of {
      dataset : string;
      version : int;
      cache : [ `Hit | `Miss | `Handle | `Coalesced ];
      result : Json.json;
    }
  | Parsed of {
      dataset : string;
      sql : string option;
      sexp : string option;
      fingerprint : string option;
      output_type : string option;
      pattern : string option;
    }
  | Query_registered of {
      name : string;
      dataset : string;
      fingerprint : string;
      sql : string option;
      sexp : string;
      replaced : bool;
    }
  | Queries of { dataset : string option; queries : query_info list }
  | Stats_reply of (string * Json.json) list
  | Telemetry_reply of { format : [ `Prometheus | `Json ]; metrics : Json.json }
  | Evicted of { datasets : int; cache_entries : int; queries : int }
  | Error of {
      code : error_code;
      message : string;
      details : Json.json option;  (** diagnostic payload, when there is one *)
    }
  | Goodbye

let response_to_json = function
  | Registered { dataset; scale; seed; version; fresh; rows; tables } ->
    Json.J_object
      [
        ("ok", Json.J_bool true);
        ("type", Json.J_string "registered");
        ("dataset", Json.J_string dataset);
        ("scale", Json.J_int scale);
        ("seed", Json.J_int seed);
        ("version", Json.J_int version);
        ("fresh", Json.J_bool fresh);
        ("rows", Json.J_int rows);
        ( "tables",
          Json.J_object (List.map (fun (n, c) -> (n, Json.J_int c)) tables) );
      ]
  | Explained { dataset; version; cache; result } ->
    Json.J_object
      [
        ("ok", Json.J_bool true);
        ("type", Json.J_string "explained");
        ("dataset", Json.J_string dataset);
        ("version", Json.J_int version);
        ( "cache",
          Json.J_string
            (match cache with
            | `Hit -> "hit"
            | `Miss -> "miss"
            | `Handle -> "handle"
            | `Coalesced -> "coalesced") );
        ("result", result);
      ]
  | Stats_reply sections ->
    Json.J_object
      (("ok", Json.J_bool true) :: ("type", Json.J_string "stats") :: sections)
  | Telemetry_reply { format; metrics } ->
    Json.J_object
      [
        ("ok", Json.J_bool true);
        ("type", Json.J_string "telemetry");
        ( "format",
          Json.J_string
            (match format with `Prometheus -> "prometheus" | `Json -> "json") );
        ("metrics", metrics);
      ]
  | Evicted { datasets; cache_entries; queries } ->
    Json.J_object
      [
        ("ok", Json.J_bool true);
        ("type", Json.J_string "evicted");
        ("datasets", Json.J_int datasets);
        ("cache_entries", Json.J_int cache_entries);
        ("queries", Json.J_int queries);
      ]
  | Parsed { dataset; sql; sexp; fingerprint; output_type; pattern } ->
    let opt name = function
      | None -> []
      | Some s -> [ (name, Json.J_string s) ]
    in
    Json.J_object
      ([
         ("ok", Json.J_bool true);
         ("type", Json.J_string "parsed");
         ("dataset", Json.J_string dataset);
       ]
      @ opt "sql" sql @ opt "sexp" sexp
      @ opt "fingerprint" fingerprint
      @ opt "output_type" output_type
      @ opt "whynot" pattern)
  | Query_registered { name; dataset; fingerprint; sql; sexp; replaced } ->
    Json.J_object
      ([
         ("ok", Json.J_bool true);
         ("type", Json.J_string "query_registered");
         ("name", Json.J_string name);
         ("dataset", Json.J_string dataset);
         ("fingerprint", Json.J_string fingerprint);
       ]
      @ (match sql with None -> [] | Some s -> [ ("sql", Json.J_string s) ])
      @ [ ("sexp", Json.J_string sexp); ("replaced", Json.J_bool replaced) ])
  | Queries { dataset; queries } ->
    let info q =
      Json.J_object
        ([
           ("name", Json.J_string q.q_name);
           ("dataset", Json.J_string q.q_dataset);
           ("fingerprint", Json.J_string q.q_fingerprint);
         ]
        @ (match q.q_sql with
          | None -> []
          | Some s -> [ ("sql", Json.J_string s) ])
        @ [ ("sexp", Json.J_string q.q_sexp) ])
    in
    Json.J_object
      ([ ("ok", Json.J_bool true); ("type", Json.J_string "queries") ]
      @ (match dataset with
        | None -> []
        | Some d -> [ ("dataset", Json.J_string d) ])
      @ [
          ("count", Json.J_int (List.length queries));
          ("queries", Json.J_array (List.map info queries));
        ])
  | Error { code; message; details } ->
    Json.J_object
      ([
         ("ok", Json.J_bool false);
         ("type", Json.J_string "error");
         ("code", Json.J_string (error_code_to_string code));
         ("message", Json.J_string message);
       ]
      @ match details with None -> [] | Some d -> [ ("details", d) ])
  | Goodbye ->
    Json.J_object [ ("ok", Json.J_bool true); ("type", Json.J_string "goodbye") ]

(* [?trace_id] (the client-supplied id, when there was one) is echoed as
   a trailing "trace_id" field — last, so transcripts without ids are
   byte-identical to the pre-telemetry protocol. *)
let response_to_json ?trace_id r =
  let j = response_to_json r in
  match (trace_id, j) with
  | Some t, Json.J_object fields ->
    Json.J_object (fields @ [ ("trace_id", Json.J_string t) ])
  | _ -> j

let response_to_string ?trace_id r = Json.to_line (response_to_json ?trace_id r)

let bad_request message = Error { code = Bad_request; message; details = None }
let not_found message = Error { code = Not_found; message; details = None }

(* A frontend diagnostic as a typed error response: the one-line message
   plus the structured payload (stage, span, snippet, hint) under
   "details". *)
let invalid_query ~source (d : Frontend.Diagnostic.t) =
  Error
    {
      code = Invalid_query;
      message = Frontend.Diagnostic.one_line ~source d;
      details = Some (Frontend.Diagnostic.to_json ~source d);
    }
