(** Exact MSR computation by bounded enumeration — the brute-force PTIME
    algorithm sketched in the proof of Theorem 1.

    Candidate reparameterizations are enumerated per operator (attribute
    swaps, comparison-operator switches, constants from the active domain,
    join/flatten kind changes), combined over operator subsets, evaluated,
    and minimized under the partial order of Definition 9 with the tree
    edit distance as side-effect measure.

    Exponential in the number of simultaneously changed operators
    ([max_ops]) — use on small instances only.  Serves as ground truth
    for the heuristic pipeline in the test suite and for the
    crime-dataset comparison. *)

open Nrab

module Int_set = Opset.Int_set

(** A successful reparameterization: the repaired query, the changed
    operators Δ(Q, Q'), and the exact tree-edit-distance side effects. *)
type sr = { query : Query.t; changed : Int_set.t; distance : int }

(** All candidate reparameterizations touching at most [max_ops]
    operators with up to [depth] admissible changes each. *)
val reparameterizations :
  ?max_ops:int -> ?depth:int -> Question.t -> (Query.t * Int_set.t) list

(** The successful ones (Definition 8). *)
val successful : ?max_ops:int -> ?depth:int -> Question.t -> sr list

(** The minimal ones (Definition 9). *)
val msrs : ?max_ops:int -> ?depth:int -> Question.t -> sr list

(** The explanations: distinct Δ sets of the MSRs (Definition 10), ranked. *)
val explanations : ?max_ops:int -> ?depth:int -> Question.t -> Explanation.t list
