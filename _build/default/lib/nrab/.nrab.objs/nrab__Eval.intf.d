lib/nrab/eval.mli: Nested Query Relation Typecheck Value
