(* Schema backtracing tests (Section 5.1): the running example of the
   paper (Examples 11/12) plus per-operator backward transformations. *)

open Nested
open Nrab
module Nip = Whynot.Nip
module Backtrace = Whynot.Backtrace

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
      ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let env = [ ("person", person_schema) ]

(* the running-example query: N^R(π(σ(F^I(person)))) *)
let query =
  let g = Query.Gen.create () in
  Query.nest_rel ~id:5 g [ "name" ] ~into:"nList"
    (Query.project_attrs ~id:4 g [ "name"; "city" ]
       (Query.select ~id:3 g
          (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
          (Query.flatten_inner ~id:2 g "address2" (Query.table ~id:1 g "person"))))

let missing = Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.some_element) ]

let bt = Backtrace.run ~env query missing

let test_example11_table_nip () =
  (* t̄_person constrains address2 to contain a city-NY element *)
  let nip = Backtrace.table_nip bt "person" in
  match nip with
  | Nip.Tup fields ->
    Alcotest.(check (list string)) "only address2 constrained" [ "address2" ]
      (List.map fst fields);
    (match List.assoc "address2" fields with
    | Nip.Bag ([ Nip.Tup inner ], true) ->
      Alcotest.(check bool) "city = NY" true
        (List.assoc_opt "city" inner = Some (Nip.str "NY"))
    | other -> Alcotest.failf "unexpected address2 pattern %a" Nip.pp other)
  | other -> Alcotest.failf "unexpected table NIP %a" Nip.pp other

let test_selection_level_nip () =
  (* after flattening, the NIP constrains the top-level [city] column *)
  let nip = Backtrace.op_nip bt 2 in
  match nip with
  | Nip.Tup fields ->
    Alcotest.(check bool) "city constrained at flatten output" true
      (List.assoc_opt "city" fields = Some (Nip.str "NY"))
  | other -> Alcotest.failf "unexpected NIP %a" Nip.pp other

let test_root_nip_is_question () =
  Alcotest.(check string) "root NIP is the why-not tuple"
    (Nip.to_string missing)
    (Nip.to_string (Backtrace.op_nip bt 5))

(* --- other operators --- *)

let flat_schema = Vtype.relation [ ("a", Vtype.TInt); ("b", Vtype.TString) ]
let s_schema = Vtype.relation [ ("c", Vtype.TInt) ]
let env2 = [ ("r", flat_schema); ("s", s_schema) ]

let test_join_splits_constraints () =
  let g = Query.Gen.create () in
  let q =
    Query.join ~id:3 g Query.Inner
      (Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.attr "c"))
      (Query.table ~id:1 g "r") (Query.table ~id:2 g "s")
  in
  let bt =
    Backtrace.run ~env:env2 q
      (Nip.tup [ ("b", Nip.str "x"); ("c", Nip.int 7) ])
  in
  Alcotest.(check string) "left side keeps b" "⟨b: \"x\"⟩"
    (Nip.to_string (Backtrace.table_nip bt "r"));
  Alcotest.(check string) "right side keeps c" "⟨c: 7⟩"
    (Nip.to_string (Backtrace.table_nip bt "s"))

let test_rename_backwards () =
  let g = Query.Gen.create () in
  let q = Query.rename ~id:2 g [ ("alpha", "a") ] (Query.table ~id:1 g "r") in
  let bt = Backtrace.run ~env:env2 q (Nip.tup [ ("alpha", Nip.int 1) ]) in
  Alcotest.(check string) "constraint maps to old name" "⟨a: 1⟩"
    (Nip.to_string (Backtrace.table_nip bt "r"))

let test_projection_computed_column_not_pushed () =
  let g = Query.Gen.create () in
  let q =
    Query.project ~id:2 g
      [ ("a2", Expr.(Mul (attr "a", attr "a"))) ]
      (Query.table ~id:1 g "r")
  in
  let bt = Backtrace.run ~env:env2 q (Nip.tup [ ("a2", Nip.int 4) ]) in
  Alcotest.(check bool) "computed constraint stays at the projection" true
    (Nip.is_trivial (Backtrace.table_nip bt "r"))

let test_group_agg_drops_aggregate_constraint () =
  let g = Query.Gen.create () in
  let q =
    Query.group_agg ~id:2 g [ "b" ]
      [ (Agg.Sum, Some "a", "total") ]
      (Query.table ~id:1 g "r")
  in
  let bt =
    Backtrace.run ~env:env2 q
      (Nip.tup [ ("b", Nip.str "x"); ("total", Nip.pred Expr.Gt (Value.Int 0)) ])
  in
  (* group constraint pushes down, aggregate constraint does not *)
  Alcotest.(check string) "only group constraint" "⟨b: \"x\"⟩"
    (Nip.to_string (Backtrace.table_nip bt "r"));
  (* but it is retained at the aggregation operator itself *)
  match Backtrace.op_nip bt 2 with
  | Nip.Tup fields ->
    Alcotest.(check bool) "aggregate constraint kept at op" true
      (List.mem_assoc "total" fields)
  | other -> Alcotest.failf "unexpected NIP %a" Nip.pp other

let test_nest_tuple_labels () =
  let g = Query.Gen.create () in
  let q =
    Query.nest_tuple_labeled ~id:2 g [ ("x", "a") ] ~into:"pair"
      (Query.table ~id:1 g "r")
  in
  let bt =
    Backtrace.run ~env:env2 q
      (Nip.tup [ ("pair", Nip.tup [ ("x", Nip.int 3) ]) ])
  in
  Alcotest.(check string) "label x maps to source a" "⟨a: 3⟩"
    (Nip.to_string (Backtrace.table_nip bt "r"))

let test_diff_right_unconstrained () =
  let g = Query.Gen.create () in
  let q = Query.diff ~id:3 g (Query.table ~id:1 g "r") (Query.table ~id:2 g "r") in
  let bt = Backtrace.run ~env:env2 q (Nip.tup [ ("a", Nip.int 1) ]) in
  (* both table accesses share the table name; at least one is constrained *)
  Alcotest.(check bool) "op 1 constrained" false (Nip.is_trivial (Backtrace.op_nip bt 1));
  Alcotest.(check bool) "op 2 unconstrained" true (Nip.is_trivial (Backtrace.op_nip bt 2))

let () =
  Alcotest.run "backtrace"
    [
      ( "running-example",
        [
          Alcotest.test_case "table NIP (Example 11)" `Quick test_example11_table_nip;
          Alcotest.test_case "flatten-level NIP" `Quick test_selection_level_nip;
          Alcotest.test_case "root NIP" `Quick test_root_nip_is_question;
        ] );
      ( "operators",
        [
          Alcotest.test_case "join split" `Quick test_join_splits_constraints;
          Alcotest.test_case "rename" `Quick test_rename_backwards;
          Alcotest.test_case "computed projection" `Quick test_projection_computed_column_not_pushed;
          Alcotest.test_case "aggregation" `Quick test_group_agg_drops_aggregate_constraint;
          Alcotest.test_case "labeled nest" `Quick test_nest_tuple_labels;
          Alcotest.test_case "difference" `Quick test_diff_right_unconstrained;
        ] );
    ]
