lib/nrab/agg.ml: Fmt List Nested Value Vtype
