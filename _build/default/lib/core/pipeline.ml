(* Algorithm 1: the four-step heuristic why-not pipeline.

     1. schema backtracing          (Backtrace)
     2. schema alternatives         (Alternatives)
     3. data tracing                (Tracing)
     4. approximate MSRs            (Msr)

   [explain ~use_sas:false] is the paper's RPnoSA configuration (only the
   original schema alternative); [explain] with alternatives is RP. *)

open Nested
open Nrab

type result = {
  question : Question.t;
  sas : Alternatives.sa list;
  explanations : Explanation.t list;
}

let schema_env (db : Relation.Db.t) : Typecheck.env =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

let explain ?(use_sas = true) ?(max_sas = 16) ?(revalidate = true)
    ?(alternatives : Alternatives.alternatives = []) (phi : Question.t) :
    result =
  let env = schema_env phi.Question.db in
  let q = phi.Question.query in
  (* step 2 (schema alternatives); step 1 (backtracing) runs per SA since
     the NIPs depend on the substituted attributes *)
  let sas =
    if use_sas then Alternatives.enumerate ~max_sas ~env q alternatives
    else
      [
        {
          Alternatives.index = 0;
          query = q;
          changed_ops = Msr.Int_set.empty;
          description = "original";
        };
      ]
  in
  let original_result =
    Relation.tuples (Question.original_result phi)
  in
  let bi = { Msr.original_result } in
  let explanations =
    List.concat_map
      (fun (sa : Alternatives.sa) ->
        let bt =
          Backtrace.run ~env sa.Alternatives.query phi.Question.missing
        in
        (* steps 3 and 4 *)
        let trace = Tracing.run ~revalidate ~env phi.Question.db sa bt in
        Msr.from_trace ~bi ~q trace)
      sas
  in
  let explanations =
    Explanation.rank (Explanation.prune_dominated explanations)
  in
  { question = phi; sas; explanations }

(* Convenience: explanation op-id sets in rank order. *)
let explanation_sets (r : result) : int list list =
  List.map Explanation.op_list r.explanations

let pp_result ppf (r : result) =
  let q = r.question.Question.query in
  Fmt.pf ppf "@[<v>%d schema alternative(s):@,%a@,explanations:@,%a@]"
    (List.length r.sas)
    (Fmt.list ~sep:Fmt.cut (fun ppf (sa : Alternatives.sa) ->
         Fmt.pf ppf "  S%d: %s" (sa.Alternatives.index + 1)
           sa.Alternatives.description))
    r.sas
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "  %a" (Explanation.pp_with_query q) e))
    r.explanations
