lib/scenarios/registry.ml: Crime_scenarios Dblp_scenarios List Scenario String Tpch_scenarios Twitter_scenarios
