lib/nrab/parser.mli: Expr Query Sexp
