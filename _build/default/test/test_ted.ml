(* Tree edit distance tests: known small cases, metric properties on random
   nested values, and the Figure 2 comparison from the paper (the SR that
   changes only the selection has larger side effects than the one that
   also swaps the flattened attribute). *)

open Nested
module Ted = Whynot.Ted

let v_int i = Value.Int i
let v_str s = Value.String s
let tup = Value.tuple

let test_identity () =
  let v = tup [ ("a", v_int 1); ("b", Value.bag_of_list [ v_int 2; v_int 3 ]) ] in
  Alcotest.(check int) "d(v, v) = 0" 0 (Ted.distance v v)

let test_leaf_relabel () =
  Alcotest.(check int) "relabel one leaf" 1 (Ted.distance (v_int 1) (v_int 2))

let test_insert_delete () =
  let a = Value.bag_of_list [ v_int 1 ] in
  let b = Value.bag_of_list [ v_int 1; v_int 2 ] in
  Alcotest.(check int) "insert a leaf" 1 (Ted.distance a b);
  Alcotest.(check int) "delete a leaf" 1 (Ted.distance b a)

let test_bag_permutation_is_free () =
  (* canonical ordering makes element order irrelevant *)
  let a = Value.bag [ (v_int 1, 1); (v_int 2, 1) ] in
  let b = Value.bag [ (v_int 2, 1); (v_int 1, 1) ] in
  Alcotest.(check int) "permutation distance 0" 0 (Ted.distance a b)

let test_nested_change () =
  let person name cities =
    tup
      [
        ("name", v_str name);
        ("cities", Value.bag_of_list (List.map (fun c -> tup [ ("city", v_str c) ]) cities));
      ]
  in
  let a = Value.bag_of_list [ person "Sue" [ "LA" ] ] in
  let b = Value.bag_of_list [ person "Sue" [ "LA"; "NY" ] ] in
  (* adding ⟨city: NY⟩ = insert tuple node + field node + leaf *)
  Alcotest.(check int) "insert nested tuple" 3 (Ted.distance a b)

(* Figure 2: T2 adds a whole result tuple, T3 only adds a nested name; the
   paper argues d(T1, T2) > d(T1, T3). *)
let result city_names =
  Value.bag_of_list
    (List.map
       (fun (city, names) ->
         tup
           [
             ("city", v_str city);
             ( "nList",
               Value.bag_of_list (List.map (fun n -> tup [ ("name", v_str n) ]) names) );
           ])
       city_names)

let test_figure2 () =
  let t1 = result [ ("LA", [ "Sue" ]) ] in
  let t2 = result [ ("LA", [ "Sue" ]); ("NY", [ "Sue" ]); ("SF", [ "Peter" ]) ] in
  let t3 = result [ ("LA", [ "Sue"; "Peter" ]); ("NY", [ "Sue" ]) ] in
  let d12 = Ted.distance t1 t2 and d13 = Ted.distance t1 t3 in
  Alcotest.(check bool)
    (Fmt.str "d(T1,T2)=%d > d(T1,T3)=%d" d12 d13)
    true (d12 > d13)

(* --- metric properties --- *)

let value_gen = QCheck.Gen.(
  sized @@ fix (fun self n ->
    if n <= 0 then map (fun i -> Value.Int i) (int_range 0 3)
    else
      frequency
        [
          (2, map (fun i -> Value.Int i) (int_range 0 3));
          (1, map (fun vs -> Value.bag_of_list vs) (list_size (int_range 0 3) (self (n / 2))));
          ( 1,
            map
              (fun vs -> Value.Tuple (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) vs))
              (list_size (int_range 1 2) (self (n / 2))) );
        ]))

let arb = QCheck.make ~print:Value.to_string value_gen

let prop_symmetry =
  QCheck.Test.make ~name:"symmetry" ~count:100 (QCheck.pair arb arb)
    (fun (a, b) -> Ted.distance a b = Ted.distance b a)

let prop_identity =
  QCheck.Test.make ~name:"identity of indiscernibles" ~count:100 arb (fun v ->
      Ted.distance v v = 0)

let prop_triangle =
  QCheck.Test.make ~name:"triangle inequality" ~count:60
    (QCheck.triple arb arb arb) (fun (a, b, c) ->
      Ted.distance a c <= Ted.distance a b + Ted.distance b c)

let prop_positive =
  QCheck.Test.make ~name:"non-negative, zero iff equal" ~count:100
    (QCheck.pair arb arb) (fun (a, b) ->
      let d = Ted.distance a b in
      d >= 0 && (d = 0) = Value.equal a b)

let () =
  Alcotest.run "ted"
    [
      ( "cases",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "leaf relabel" `Quick test_leaf_relabel;
          Alcotest.test_case "insert/delete" `Quick test_insert_delete;
          Alcotest.test_case "bag permutation" `Quick test_bag_permutation_is_free;
          Alcotest.test_case "nested change" `Quick test_nested_change;
          Alcotest.test_case "figure 2" `Quick test_figure2;
        ] );
      ( "metric",
        List.map QCheck_alcotest.to_alcotest
          [ prop_symmetry; prop_identity; prop_triangle; prop_positive ] );
    ]
