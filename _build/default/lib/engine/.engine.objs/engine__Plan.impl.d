lib/engine/plan.ml: Exec Fmt List Nested Nrab Query String Typecheck
