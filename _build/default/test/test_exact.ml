(* The exact (brute-force) MSR search of Theorem 1's PTIME fragment, used
   as ground truth for the heuristic pipeline on small instances. *)

open Nested
open Nrab
module Nip = Whynot.Nip
module Int_set = Whynot.Msr.Int_set

(* Tiny database: employees and departments. *)
let emp_schema =
  Vtype.relation
    [ ("ename", Vtype.TString); ("dept", Vtype.TString); ("salary", Vtype.TInt) ]

let v_str s = Value.String s
let v_int i = Value.Int i
let tup = Value.tuple

let emp name dept salary =
  tup [ ("ename", v_str name); ("dept", v_str dept); ("salary", v_int salary) ]

let db =
  Relation.Db.of_list
    [
      ( "emp",
        Relation.of_tuples ~schema:emp_schema
          [ emp "ann" "sales" 100; emp "bob" "eng" 80; emp "cyd" "eng" 120 ] );
    ]

let test_selection_constant_repair () =
  (* why is bob missing from σ_{salary ≥ 100}? — fix the constant *)
  let g = Query.Gen.create () in
  let query =
    Query.select ~id:2 g
      (Expr.Cmp (Expr.Ge, Expr.attr "salary", Expr.int 100))
      (Query.table ~id:1 g "emp")
  in
  let missing = Nip.tup [ ("ename", Nip.str "bob") ] in
  let phi = Whynot.Question.make ~query ~db ~missing in
  let expls = Whynot.Exact.explanations ~max_ops:1 phi in
  Alcotest.(check bool) "at least one explanation" true (expls <> []);
  Alcotest.(check (list (list int))) "the selection"
    [ [ 2 ] ]
    (List.map Whynot.Explanation.op_list expls)

let test_projection_attribute_repair () =
  (* why is ⟨out: eng⟩ missing from π_{out←ename}? — project dept instead *)
  let g = Query.Gen.create () in
  let query =
    Query.project ~id:2 g [ ("out", Expr.attr "ename") ] (Query.table ~id:1 g "emp")
  in
  let missing = Nip.tup [ ("out", Nip.str "eng") ] in
  let phi = Whynot.Question.make ~query ~db ~missing in
  let expls = Whynot.Exact.explanations ~max_ops:1 phi in
  Alcotest.(check (list (list int))) "the projection" [ [ 2 ] ]
    (List.map Whynot.Explanation.op_list expls)

let test_join_kind_repair () =
  let dept_schema = Vtype.relation [ ("dname", Vtype.TString) ] in
  let db =
    Relation.Db.add "dept"
      (Relation.of_tuples ~schema:dept_schema [ tup [ ("dname", v_str "sales") ] ])
      db
  in
  (* inner join loses eng employees; left join keeps them *)
  let g = Query.Gen.create () in
  let query =
    Query.join ~id:3 g Query.Inner
      (Expr.Cmp (Expr.Eq, Expr.attr "dept", Expr.attr "dname"))
      (Query.table ~id:1 g "emp") (Query.table ~id:2 g "dept")
  in
  let missing = Nip.tup [ ("ename", Nip.str "bob"); ("dname", Nip.any) ] in
  let phi = Whynot.Question.make ~query ~db ~missing in
  let expls = Whynot.Exact.explanations ~max_ops:1 phi in
  Alcotest.(check (list (list int))) "the join" [ [ 3 ] ]
    (List.map Whynot.Explanation.op_list expls)

let test_two_operator_repair () =
  (* both selections must change *)
  let g = Query.Gen.create () in
  let query =
    Query.select ~id:3 g
      (Expr.Cmp (Expr.Ge, Expr.attr "salary", Expr.int 100))
      (Query.select ~id:2 g
         (Expr.Cmp (Expr.Eq, Expr.attr "dept", Expr.str "sales"))
         (Query.table ~id:1 g "emp"))
  in
  let missing = Nip.tup [ ("ename", Nip.str "bob") ] in
  let phi = Whynot.Question.make ~query ~db ~missing in
  let expls = Whynot.Exact.explanations ~max_ops:2 phi in
  Alcotest.(check (list (list int))) "both selections" [ [ 2; 3 ] ]
    (List.map Whynot.Explanation.op_list expls)

let test_minimality () =
  (* a repairable selection below an irrelevant one: the MSR changes only
     the broken operator *)
  let g = Query.Gen.create () in
  let query =
    Query.select ~id:3 g
      (Expr.Cmp (Expr.Ge, Expr.attr "salary", Expr.int 0))
      (Query.select ~id:2 g
         (Expr.Cmp (Expr.Eq, Expr.attr "dept", Expr.str "sales"))
         (Query.table ~id:1 g "emp"))
  in
  let missing = Nip.tup [ ("ename", Nip.str "cyd") ] in
  let phi = Whynot.Question.make ~query ~db ~missing in
  let expls = Whynot.Exact.explanations ~max_ops:2 phi in
  Alcotest.(check (list (list int))) "only σ²" [ [ 2 ] ]
    (List.map Whynot.Explanation.op_list expls)

(* --- heuristic vs exact on the paper's running example --- *)

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
      ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let addr c y = tup [ ("city", v_str c); ("year", v_int y) ]

let person name a1 a2 =
  tup
    [
      ("name", v_str name);
      ("address1", Value.bag_of_list a1);
      ("address2", Value.bag_of_list a2);
    ]

let running_example_phi () =
  let db =
    Relation.Db.of_list
      [
        ( "person",
          Relation.of_tuples ~schema:person_schema
            [
              person "Peter"
                [ addr "NY" 2010; addr "LA" 2019; addr "LV" 2017 ]
                [ addr "LA" 2010; addr "SF" 2018 ];
              person "Sue" [ addr "LA" 2019; addr "NY" 2018 ] [ addr "LA" 2019; addr "NY" 2018 ];
            ] );
      ]
  in
  let g = Query.Gen.create () in
  let query =
    Query.nest_rel ~id:5 g [ "name" ] ~into:"nList"
      (Query.project_attrs ~id:4 g [ "name"; "city" ]
         (Query.select ~id:3 g
            (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
            (Query.flatten_inner ~id:2 g "address2" (Query.table ~id:1 g "person"))))
  in
  let missing = Nip.tup [ ("city", Nip.str "NY"); ("nList", Nip.some_element) ] in
  Whynot.Question.make ~query ~db ~missing

let test_exact_on_running_example () =
  let phi = running_example_phi () in
  let expls = Whynot.Exact.explanations ~max_ops:2 phi in
  let sets = List.map (fun e -> Int_set.elements (Whynot.Explanation.ops e)) expls in
  (* the paper's explanations {σ} and {F, σ} are both found by the exact
     search (the flatten swap is an admissible attribute change) *)
  Alcotest.(check bool) "{σ} is exact-minimal" true (List.mem [ 3 ] sets);
  Alcotest.(check bool) "{F, σ} is exact-minimal" true (List.mem [ 2; 3 ] sets)

let test_heuristic_sound_wrt_exact () =
  (* every explanation returned by the heuristic is a successful
     reparameterization according to the exact evaluator *)
  let phi = running_example_phi () in
  let result =
    Whynot.Pipeline.explain
      ~alternatives:[ ("person", [ [ "address2" ]; [ "address1" ] ]) ]
      phi
  in
  let srs = Whynot.Exact.successful ~max_ops:2 phi in
  let sr_sets = List.map (fun (s : Whynot.Exact.sr) -> s.Whynot.Exact.changed) srs in
  List.iter
    (fun e ->
      let ops = Whynot.Explanation.ops e in
      Alcotest.(check bool)
        (Fmt.str "heuristic explanation %s is a real SR"
           (Whynot.Explanation.to_string_with_query phi.Whynot.Question.query e))
        true
        (List.exists (fun s -> Int_set.equal s ops) sr_sets))
    result.Whynot.Pipeline.explanations

let () =
  Alcotest.run "exact"
    [
      ( "repairs",
        [
          Alcotest.test_case "selection constant" `Quick test_selection_constant_repair;
          Alcotest.test_case "projection attribute" `Quick test_projection_attribute_repair;
          Alcotest.test_case "join kind" `Quick test_join_kind_repair;
          Alcotest.test_case "two operators" `Quick test_two_operator_repair;
          Alcotest.test_case "minimality" `Quick test_minimality;
        ] );
      ( "vs-heuristic",
        [
          Alcotest.test_case "running example (exact)" `Quick test_exact_on_running_example;
          Alcotest.test_case "heuristic soundness" `Quick test_heuristic_sound_wrt_exact;
        ] );
    ]
