(** Partitioned datasets — the engine's unit of distribution.

    A dataset is an array of partitions, each holding tuples already
    expanded to their multiplicities (like rows of a Spark DataFrame). *)

open Nested

type t

val of_partitions : Value.t list array -> t

(** Row view of every partition (columnar partitions reconstruct). *)
val partitions : t -> Value.t list array

(** Columnar view of every partition (row partitions build batches). *)
val cpartitions : t -> Columnar.t array

val of_cpartitions : Columnar.t array -> t
val partition_count : t -> int
val cardinal : t -> int
val to_list : t -> Value.t list

(** Deterministic, run-stable value hash (partitioning must not depend on
    OCaml's randomized hashing). *)
val value_hash : Value.t -> int

(** Round-robin distribution over [partitions] partitions (≥ 1). *)
val distribute : partitions:int -> Value.t list -> t

(** Hash-repartition by a key — a shuffle.  Also returns the number of
    rows that crossed partitions. *)
val shuffle_by : partitions:int -> (Value.t -> Value.t) -> t -> t * int

(** Vectorized shuffle: [hash_of] yields one destination hash per batch
    row (use {!Columnar.hash_col} over the key columns for parity with
    {!shuffle_by}).  Moved rows travel as contiguous gathered column
    slices; shipped bytes land on [engine.columnar.bytes_moved]. *)
val shuffle_hashed : partitions:int -> (Columnar.t -> int array) -> t -> t * int

(** Collapse to a single partition; returns the rows moved. *)
val gather : t -> t * int

(** Transform every partition; with [parallel] the partitions are
    processed concurrently on [pool] (default {!Pool.default} — the
    engine's task parallelism).  [f] must be pure.

    Each partition is a retryable task attempt: under [retry], a run of
    [f] that raises {!Fault.Transient} is recomputed from its input
    partition (exact — the input is immutable and [f] pure) until the
    policy's attempt budget runs out, then {!Fault.Exhausted} propagates
    with the task attributed as ["<label>/p<i>"].  The
    ["engine.partition"] chaos site fires once per attempt inside the
    retry scope.  [on_retry] fires before each re-attempt (for span
    attribution). *)
val map_partitions :
  ?parallel:bool ->
  ?pool:Pool.t ->
  ?retry:Fault.policy ->
  ?label:string ->
  ?on_retry:(partition:int -> attempt:int -> exn -> unit) ->
  (Value.t list -> Value.t list) ->
  t ->
  t

(** Columnar sibling of {!map_partitions}: identical task-attempt
    semantics (chaos site, retries, pool fan-out), batch-in/batch-out —
    no per-row tree materialization on the fast path. *)
val map_cpartitions :
  ?parallel:bool ->
  ?pool:Pool.t ->
  ?retry:Fault.policy ->
  ?label:string ->
  ?on_retry:(partition:int -> attempt:int -> exn -> unit) ->
  (Columnar.t -> Columnar.t) ->
  t ->
  t

(** Columnar when the columnar engine is active (cached arena build of
    the relation, round-robin column slices), row lists under
    [WHYNOT_ROW_ENGINE]. *)
val of_relation : partitions:int -> Relation.t -> t
val to_relation : schema:Vtype.t -> t -> Relation.t
