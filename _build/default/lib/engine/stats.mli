(** Execution statistics: per-operator input/output cardinalities and
    shuffle volumes — what one reads off a Spark UI when profiling the
    paper's implementation. *)

type op_stats = {
  op_id : int;
  op_label : string;
  mutable input_rows : int;
  mutable output_rows : int;
  mutable shuffled_rows : int;
}

type t

val create : unit -> t

(** Find-or-create the stats record of an operator. *)
val op : t -> op_id:int -> op_label:string -> op_stats

(** Record a shuffle; a non-empty shuffle starts a new stage. *)
val record_shuffle : t -> op_stats -> int -> unit

val total_output : t -> int
val total_shuffled : t -> int
val pp : Format.formatter -> t -> unit
