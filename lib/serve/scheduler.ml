(* Bounded admission + deadlines in front of the shared domain pool.

   The pool's own queue is unbounded; the scheduler adds the service
   discipline: a depth counter capped at [queue_capacity] (reject beyond
   it — backpressure), and cooperative deadlines.  A deadline is
   enforced twice:

   - on the queued→running edge: a request whose deadline lapsed while
     waiting is dropped without being run;
   - DURING execution: each admitted job receives a Whynot.Cancel token
     anchored at admission time; the pipeline polls it at phase and
     schema-alternative boundaries, and the resulting Cancel.Cancelled
     is converted here into Deadline_exceeded with the name of the
     boundary that observed the lapse (partial-phase attribution).

   Every counter event updates the scheduler's mirror inside a single
   critical section — stats never observes a half-applied event (the
   global Obs counters are atomic on their own and are bumped outside
   the lock). *)

type error =
  | Overloaded of { depth : int; capacity : int }
  | Deadline_exceeded of {
      waited_ms : float;
      deadline_ms : float;
      phase : string option;
    }
  | Faulted of { task : string; attempts : int; message : string }

let error_to_string = function
  | Overloaded { depth; capacity } ->
    Fmt.str "overloaded: %d requests queued or running (capacity %d)" depth
      capacity
  | Deadline_exceeded { waited_ms; deadline_ms; phase = None } ->
    Fmt.str "deadline exceeded: queued %.1f ms past the %.1f ms deadline"
      waited_ms deadline_ms
  | Deadline_exceeded { waited_ms; deadline_ms; phase = Some p } ->
    Fmt.str
      "deadline exceeded: cancelled at %s after %.1f ms (deadline %.1f ms)" p
      waited_ms deadline_ms
  | Faulted { task; attempts; message } ->
    Fmt.str "task failed: %s gave up after %d attempt(s): %s" task attempts
      message

type t = {
  pool : Engine.Pool.t;
  capacity : int;
  default_deadline_ms : float option;
  mutex : Mutex.t;
  mutable depth : int;
  (* per-instance mirrors of the global counters, for per-server stats *)
  mutable submitted_n : int;
  mutable rejected_n : int;
  mutable completed_n : int;
  mutable expired_n : int;
  mutable faulted_n : int;
}

type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  expired : int;
  faulted : int;
  depth : int;
  capacity : int;
}

type 'a ticket = ('a, error) result Engine.Pool.future

let submitted = lazy (Obs.Metrics.counter "serve.sched.submitted")
let rejected = lazy (Obs.Metrics.counter "serve.sched.rejected")
let completed = lazy (Obs.Metrics.counter "serve.sched.completed")
let expired = lazy (Obs.Metrics.counter "serve.sched.expired")
let faulted = lazy (Obs.Metrics.counter "serve.sched.faulted")
let depth_gauge = lazy (Obs.Metrics.gauge "serve.sched.depth")
let wait_hist = lazy (Obs.Metrics.histogram "serve.sched.wait_ms")

let create ?pool ~queue_capacity ?default_deadline_ms () =
  {
    pool = (match pool with Some p -> p | None -> Engine.Pool.default ());
    capacity = max 1 queue_capacity;
    default_deadline_ms;
    mutex = Mutex.create ();
    depth = 0;
    submitted_n = 0;
    rejected_n = 0;
    completed_n = 0;
    expired_n = 0;
    faulted_n = 0;
  }

let depth (t : t) =
  Mutex.lock t.mutex;
  let d = t.depth in
  Mutex.unlock t.mutex;
  d

let queue_capacity (t : t) = t.capacity

let set_depth_gauge (t : t) =
  Obs.Metrics.Gauge.set (Lazy.force depth_gauge) (float_of_int t.depth)

let submit t ?deadline_ms ?budget (f : Whynot.Cancel.t -> 'a) :
    ('a ticket, error) result =
  let deadline_ms =
    match deadline_ms with Some _ as d -> d | None -> t.default_deadline_ms
  in
  Mutex.lock t.mutex;
  if t.depth >= t.capacity then begin
    (* one critical section: the depth read and the rejection count are
       never observable apart *)
    let d = t.depth in
    t.rejected_n <- t.rejected_n + 1;
    Mutex.unlock t.mutex;
    Obs.Metrics.Counter.incr (Lazy.force rejected);
    Obs.Log.warn "sched.reject" (fun () ->
        [ Obs.Log.int "depth" d; Obs.Log.int "capacity" t.capacity ]);
    Error (Overloaded { depth = d; capacity = t.capacity })
  end
  else begin
    t.depth <- t.depth + 1;
    t.submitted_n <- t.submitted_n + 1;
    set_depth_gauge t;
    Mutex.unlock t.mutex;
    Obs.Metrics.Counter.incr (Lazy.force submitted);
    Obs.Log.debug "sched.admit" (fun () ->
        [ Obs.Log.int "depth" (t.depth); Obs.Log.int "capacity" t.capacity ]);
    let admitted_ns = Obs.Clock.now_ns () in
    (* the execution budget is anchored at admission, so time spent
       queued behind other requests counts against it — and so is the
       approximation budget: a request that waited long degrades the
       same way one that ran slowly does *)
    Option.iter
      (fun b -> Whynot.Approx.rebase b ~from_ns:admitted_ns)
      budget;
    let cancel =
      match deadline_ms with
      | Some budget -> Whynot.Cancel.with_deadline_ms ~from_ns:admitted_ns budget
      | None -> Whynot.Cancel.create ()
    in
    let expire ~phase ~budget =
      let elapsed_ms =
        float_of_int (Obs.Clock.now_ns () - admitted_ns) /. 1e6
      in
      Obs.Metrics.Counter.incr (Lazy.force expired);
      Mutex.lock t.mutex;
      t.expired_n <- t.expired_n + 1;
      Mutex.unlock t.mutex;
      Obs.Log.warn "sched.expired" (fun () ->
          [
            Obs.Log.float "waited_ms" elapsed_ms;
            Obs.Log.float "deadline_ms" budget;
            Obs.Log.str "phase"
              (match phase with Some p -> p | None -> "queued");
          ]);
      Error
        (Deadline_exceeded { waited_ms = elapsed_ms; deadline_ms = budget; phase })
    in
    let job () =
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.mutex;
          t.depth <- t.depth - 1;
          set_depth_gauge t;
          Mutex.unlock t.mutex)
        (fun () ->
          let waited_ms =
            float_of_int (Obs.Clock.now_ns () - admitted_ns) /. 1e6
          in
          Obs.Metrics.Histogram.observe (Lazy.force wait_hist) waited_ms;
          match deadline_ms with
          | Some budget when waited_ms > budget ->
            expire ~phase:None ~budget
          | _ -> (
            match f cancel with
            | v ->
              Obs.Metrics.Counter.incr (Lazy.force completed);
              Mutex.lock t.mutex;
              t.completed_n <- t.completed_n + 1;
              Mutex.unlock t.mutex;
              Ok v
            | exception Engine.Fault.Exhausted { task; attempts; last } ->
              (* Retry budget exhausted inside the run: a typed error,
                 not a crashed connection.  The fault is attributed to
                 the failing task (operator/partition or SA/phase). *)
              Obs.Metrics.Counter.incr (Lazy.force faulted);
              Mutex.lock t.mutex;
              t.faulted_n <- t.faulted_n + 1;
              Mutex.unlock t.mutex;
              Obs.Log.warn "sched.faulted" (fun () ->
                  [
                    Obs.Log.str "task" task;
                    Obs.Log.int "attempts" attempts;
                    Obs.Log.str "error" (Printexc.to_string last);
                  ]);
              Error
                (Faulted
                   { task; attempts; message = Printexc.to_string last })
            | exception Whynot.Cancel.Cancelled where ->
              let budget =
                match deadline_ms with
                | Some b -> b
                | None ->
                  (* cancelled by flag, not deadline; report elapsed *)
                  float_of_int (Obs.Clock.now_ns () - admitted_ns) /. 1e6
              in
              expire ~phase:(Some where) ~budget))
    in
    Ok (Engine.Pool.submit t.pool job)
  end

let await (ticket : 'a ticket) : ('a, error) result = Engine.Pool.await ticket

let run t ?deadline_ms ?budget f =
  match submit t ?deadline_ms ?budget f with
  | Error e -> Error e
  | Ok ticket -> await ticket

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      submitted = t.submitted_n;
      rejected = t.rejected_n;
      completed = t.completed_n;
      expired = t.expired_n;
      faulted = t.faulted_n;
      depth = t.depth;
      capacity = t.capacity;
    }
  in
  Mutex.unlock t.mutex;
  s
