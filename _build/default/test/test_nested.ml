(* Unit and property tests for the nested data model (lib/nested):
   values, canonical bags, types, paths, and tree conversion. *)

open Nested

let v_int i = Value.Int i
let v_str s = Value.String s

let tuple_ab a b = Value.Tuple [ ("a", v_int a); ("b", v_str b) ]

(* --- Value --- *)

let test_bag_normalization () =
  let b1 = Value.bag [ (v_int 2, 1); (v_int 1, 2); (v_int 2, 3) ] in
  let b2 = Value.bag [ (v_int 1, 2); (v_int 2, 4) ] in
  Alcotest.(check bool) "merged and sorted" true (Value.equal b1 b2);
  Alcotest.(check int) "multiplicity" 4 (Value.multiplicity b1 (v_int 2));
  Alcotest.(check int) "cardinal" 6 (Value.cardinal b1)

let test_bag_drops_nonpositive () =
  let b = Value.bag [ (v_int 1, 0); (v_int 2, -3); (v_int 3, 1) ] in
  Alcotest.(check int) "only positive survive" 1 (Value.cardinal b)

let test_bag_union_diff () =
  let a = Value.bag [ (v_int 1, 2); (v_int 2, 1) ] in
  let b = Value.bag [ (v_int 1, 1); (v_int 3, 1) ] in
  let u = Value.bag_union a b in
  Alcotest.(check int) "union multiplicity" 3 (Value.multiplicity u (v_int 1));
  let d = Value.bag_diff a b in
  Alcotest.(check int) "diff multiplicity" 1 (Value.multiplicity d (v_int 1));
  Alcotest.(check int) "diff removes absent" 1 (Value.multiplicity d (v_int 2));
  Alcotest.(check int) "no negative" 0 (Value.multiplicity d (v_int 3))

let test_tuple_concat () =
  let t = Value.concat_tuples (tuple_ab 1 "x") (Value.Tuple [ ("c", v_int 2) ]) in
  Alcotest.(check (list string)) "labels" [ "a"; "b"; "c" ] (Value.labels t)

let test_field_access () =
  let t = tuple_ab 7 "hello" in
  Alcotest.(check bool) "field a" true (Value.field "a" t = Some (v_int 7));
  Alcotest.(check bool) "missing field" true (Value.field "z" t = None)

let test_dedup_expand () =
  let b = Value.bag [ (v_int 1, 3); (v_int 2, 1) ] in
  Alcotest.(check int) "dedup" 2 (Value.cardinal (Value.dedup b));
  Alcotest.(check int) "expand" 4 (List.length (Value.expand b))

let test_compare_total_order () =
  (* Null < Bool < Int < Float < String < Tuple < Bag *)
  let vs =
    [
      Value.Null; Value.Bool true; v_int 0; Value.Float 1.0; v_str "a";
      Value.Tuple []; Value.Bag [];
    ]
  in
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool)
        (Fmt.str "%a < %a" Value.pp a Value.pp b)
        true
        (Value.compare a b < 0);
      adjacent rest
    | _ -> ()
  in
  adjacent vs

(* --- Vtype --- *)

let addr_ty = Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]

let test_has_type () =
  let addr = Value.bag_of_list [ Value.Tuple [ ("city", v_str "NY"); ("year", v_int 2018) ] ] in
  Alcotest.(check bool) "well-typed bag" true (Vtype.has_type addr addr_ty);
  Alcotest.(check bool) "null inhabits any type" true (Vtype.has_type Value.Null addr_ty);
  let bad = Value.bag_of_list [ Value.Tuple [ ("city", v_int 1); ("year", v_int 2018) ] ] in
  Alcotest.(check bool) "ill-typed bag" false (Vtype.has_type bad addr_ty)

let test_infer () =
  let t = tuple_ab 1 "x" in
  Alcotest.(check bool) "inferred tuple type" true
    (Vtype.infer t = Some (Vtype.TTuple [ ("a", Vtype.TInt); ("b", Vtype.TString) ]))

let test_null_tuple () =
  let ty = Vtype.TTuple [ ("a", Vtype.TInt); ("b", Vtype.TString) ] in
  Alcotest.(check bool) "null tuple" true
    (Value.equal (Vtype.null_tuple ty)
       (Value.Tuple [ ("a", Value.Null); ("b", Value.Null) ]))

(* --- Path --- *)

let person_ty =
  Vtype.relation [ ("name", Vtype.TString); ("address2", addr_ty) ]

let test_path_resolve_type () =
  Alcotest.(check bool) "nested path type" true
    (Path.resolve_type person_ty [ "address2"; "city" ] = Some Vtype.TString);
  Alcotest.(check bool) "missing path" true
    (Path.resolve_type person_ty [ "address2"; "zip" ] = None)

let test_path_resolve_values () =
  let t =
    Value.Tuple
      [
        ("name", v_str "Sue");
        ( "address2",
          Value.bag_of_list
            [
              Value.Tuple [ ("city", v_str "LA"); ("year", v_int 2019) ];
              Value.Tuple [ ("city", v_str "NY"); ("year", v_int 2018) ];
            ] );
      ]
  in
  let cities = Path.resolve_values t [ "address2"; "city" ] in
  Alcotest.(check int) "two cities through the bag" 2 (List.length cities)

(* --- Tree --- *)

let test_tree_size () =
  let t = Tree.of_value (tuple_ab 1 "x") in
  (* ⟨⟩ → a → 1, b → x : 5 nodes *)
  Alcotest.(check int) "size" 5 (Tree.size t)

let test_tree_canonical_bag_order () =
  let b1 = Value.bag [ (v_int 2, 1); (v_int 1, 1) ] in
  let b2 = Value.bag [ (v_int 1, 1); (v_int 2, 1) ] in
  Alcotest.(check bool) "same canonical tree" true
    (Tree.of_value b1 = Tree.of_value b2)

let test_postorder () =
  let t = Tree.node "r" [ Tree.leaf "a"; Tree.node "b" [ Tree.leaf "c" ] ] in
  let po = Tree.postorder t in
  Alcotest.(check (list string)) "postorder labels" [ "a"; "c"; "b"; "r" ]
    (Array.to_list (Array.map fst po))

(* --- Property tests (qcheck) --- *)

let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return Value.Null;
               map (fun b -> Value.Bool b) bool;
               map (fun i -> Value.Int i) small_signed_int;
               map (fun s -> Value.String s) (string_size (return 3));
             ]
         else
           frequency
             [
               (2, map (fun i -> Value.Int i) small_signed_int);
               ( 1,
                 map
                   (fun vs ->
                     Value.Tuple (List.mapi (fun i v -> (Fmt.str "f%d" i, v)) vs))
                   (list_size (int_range 1 3) (self (n / 2))) );
               ( 1,
                 map
                   (fun vs -> Value.bag_of_list vs)
                   (list_size (int_range 0 4) (self (n / 2))) );
             ])

let arb_value = QCheck.make ~print:Value.to_string value_gen

let small_list arb = QCheck.list_of_size (QCheck.Gen.int_range 0 5) arb

let prop_compare_reflexive =
  QCheck.Test.make ~name:"compare is reflexive" ~count:200 arb_value (fun v ->
      Value.compare v v = 0)

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:200
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0 && c2 = 0) || c1 * c2 < 0)

let prop_bag_union_cardinal =
  QCheck.Test.make ~name:"union cardinality is additive" ~count:200
    (QCheck.pair (small_list arb_value) (small_list arb_value))
    (fun (xs, ys) ->
      let a = Value.bag_of_list xs and b = Value.bag_of_list ys in
      Value.cardinal (Value.bag_union a b) = Value.cardinal a + Value.cardinal b)

let prop_bag_diff_then_union =
  QCheck.Test.make ~name:"(a union b) minus b = a" ~count:200
    (QCheck.pair (small_list arb_value) (small_list arb_value))
    (fun (xs, ys) ->
      let a = Value.bag_of_list xs and b = Value.bag_of_list ys in
      Value.equal (Value.bag_diff (Value.bag_union a b) b) a)

let prop_expand_roundtrip =
  QCheck.Test.make ~name:"bag_of_list (expand b) = b" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arb_value) (fun xs ->
      let b = Value.bag_of_list xs in
      Value.equal (Value.bag_of_list (Value.expand b)) b)

let prop_infer_has_type =
  QCheck.Test.make ~name:"inferred type is inhabited" ~count:200 arb_value
    (fun v ->
      match Vtype.infer v with
      | Some ty -> Vtype.has_type v ty
      | None -> true)

let () =
  Alcotest.run "nested"
    [
      ( "value",
        [
          Alcotest.test_case "bag normalization" `Quick test_bag_normalization;
          Alcotest.test_case "non-positive multiplicities" `Quick test_bag_drops_nonpositive;
          Alcotest.test_case "bag union/diff" `Quick test_bag_union_diff;
          Alcotest.test_case "tuple concat" `Quick test_tuple_concat;
          Alcotest.test_case "field access" `Quick test_field_access;
          Alcotest.test_case "dedup and expand" `Quick test_dedup_expand;
          Alcotest.test_case "total order" `Quick test_compare_total_order;
        ] );
      ( "vtype",
        [
          Alcotest.test_case "has_type" `Quick test_has_type;
          Alcotest.test_case "infer" `Quick test_infer;
          Alcotest.test_case "null tuple" `Quick test_null_tuple;
        ] );
      ( "path",
        [
          Alcotest.test_case "resolve type" `Quick test_path_resolve_type;
          Alcotest.test_case "resolve values" `Quick test_path_resolve_values;
        ] );
      ( "tree",
        [
          Alcotest.test_case "size" `Quick test_tree_size;
          Alcotest.test_case "canonical bag order" `Quick test_tree_canonical_bag_order;
          Alcotest.test_case "postorder" `Quick test_postorder;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compare_reflexive;
            prop_compare_antisymmetric;
            prop_bag_union_cardinal;
            prop_bag_diff_then_union;
            prop_expand_roundtrip;
            prop_infer_has_type;
          ] );
    ]
