(* Tests for the serving layer: fingerprint stability and
   alpha-equivalence, the explanation JSON codec (round-trip
   properties), the dataset catalog, the LRU cache, the bounded
   scheduler, the wire protocol, and an in-process request session
   against the full server (cache-hit byte-identity). *)

open Nrab

let q str = Parser.query_of_string str

let running_example =
  "(nest (name) nList (project (name city) (select (>= year 2019) \
   (flatten-inner address2 (table person)))))"

(* --- fingerprints ------------------------------------------------------ *)

let test_fp_deterministic () =
  let h1 = Serve.Fingerprint.query (q running_example) in
  let h2 = Serve.Fingerprint.query (q running_example) in
  Alcotest.(check bool) "same text, same hash" true (Int64.equal h1 h2)

let test_fp_alpha_equivalent () =
  (* relabeling operator ids must not change the fingerprint *)
  let q1 = q running_example in
  let q2 = Query.relabel (Query.Gen.create ~start:1000 ()) q1 in
  let ids query = List.map (fun (op : Query.t) -> op.Query.id) (Query.operators query) in
  Alcotest.(check bool) "ids differ" true (ids q1 <> ids q2);
  Alcotest.(check string) "alpha-equivalent queries hash equal"
    (Serve.Fingerprint.to_hex (Serve.Fingerprint.query q1))
    (Serve.Fingerprint.to_hex (Serve.Fingerprint.query q2))

let test_fp_param_sensitive () =
  let h t = Serve.Fingerprint.query (q t) in
  let base = h "(select (>= year 2019) (table person))" in
  List.iter
    (fun (label, text) ->
      Alcotest.(check bool) label false (Int64.equal base (h text)))
    [
      ("constant", "(select (>= year 2020) (table person))");
      ("comparison", "(select (> year 2019) (table person))");
      ("attribute", "(select (>= month 2019) (table person))");
      ("table", "(select (>= year 2019) (table persons))");
      ("structure", "(dedup (select (>= year 2019) (table person)))");
    ]

let test_fp_nip_and_options () =
  let p1 = Whynot.Nip_syntax.of_string "(tuple (city (str NY)) (nList (bag ? *)))" in
  let p2 = Whynot.Nip_syntax.of_string "(tuple (city (str LA)) (nList (bag ? *)))" in
  Alcotest.(check bool) "patterns distinguish" false
    (Int64.equal (Serve.Fingerprint.nip p1) (Serve.Fingerprint.nip p2));
  let o = Serve.Fingerprint.default_options in
  Alcotest.(check bool) "options distinguish" false
    (Int64.equal
       (Serve.Fingerprint.options o)
       (Serve.Fingerprint.options { o with max_sas = o.max_sas + 1 }))

let test_fp_keys () =
  let query = q running_example in
  let pat = Whynot.Nip_syntax.of_string "(tuple (city (str NY)) (nList (bag ? *)))" in
  let o = Serve.Fingerprint.default_options in
  let k v =
    Serve.Fingerprint.explain_key ~dataset:"RE@1#0" ~version:v ~options:o
      ~alternatives:[] query pat
  in
  Alcotest.(check bool) "version bump changes the key" true (k 1 <> k 2);
  let pk =
    Serve.Fingerprint.prepare_key ~dataset:"RE@1#0" ~version:1 ~options:o
      ~alternatives:[] query
  in
  Alcotest.(check bool) "pattern-free key differs from full key" true (pk <> k 1)

(* --- codec ------------------------------------------------------------- *)

let explanation_gen =
  QCheck.Gen.(
    let* n = int_range 1 6 in
    let* ops = list_size (return n) (int_range 1 60) in
    let* lb = int_range 0 5 in
    let* extra = int_range 0 5 in
    let* sa = int_range 0 4 in
    return
      (Whynot.Explanation.make ~sa ~lb ~ub:(lb + extra)
         (Whynot.Explanation.Int_set.of_list ops)))

let explanation_arb =
  QCheck.make ~print:(Fmt.to_to_string Whynot.Explanation.pp) explanation_gen

let expl_equal (a : Whynot.Explanation.t) (b : Whynot.Explanation.t) =
  Whynot.Explanation.equal_ops a b
  && a.Whynot.Explanation.side_effect_lb = b.Whynot.Explanation.side_effect_lb
  && a.Whynot.Explanation.side_effect_ub = b.Whynot.Explanation.side_effect_ub
  && a.Whynot.Explanation.sa = b.Whynot.Explanation.sa

let prop_explanation_roundtrip =
  QCheck.Test.make ~count:200 ~name:"explanation JSON roundtrip"
    explanation_arb (fun e ->
      expl_equal e (Serve.Codec.explanation_of_json (Serve.Codec.explanation_to_json e)))

let prop_explanations_roundtrip =
  QCheck.Test.make ~count:100 ~name:"explanation list JSON roundtrip"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 8) explanation_arb)
    (fun es ->
      let back =
        Serve.Codec.explanations_of_json (Serve.Codec.explanations_to_json es)
      in
      List.length back = List.length es && List.for_all2 expl_equal es back)

let prop_roundtrip_via_text =
  QCheck.Test.make ~count:100 ~name:"roundtrip survives printing"
    explanation_arb (fun e ->
      let text = Nested.Json.to_line (Serve.Codec.explanation_to_json e) in
      expl_equal e (Serve.Codec.explanation_of_json (Nested.Json.of_string text)))

let test_codec_result_payload () =
  (* a real pipeline result decodes back to the same explanation list *)
  let inst =
    match Scenarios.Registry.find "RE" with
    | Some s -> s.Scenarios.Scenario.make ~scale:1 ()
    | None -> Alcotest.fail "running example scenario missing"
  in
  let result =
    Whynot.Pipeline.explain
      ~alternatives:inst.Scenarios.Scenario.alternatives
      inst.Scenarios.Scenario.question
  in
  let payload = Serve.Codec.result_to_json ~timings:false result in
  let back = Serve.Codec.result_explanations_of_json payload in
  Alcotest.(check int) "explanation count survives"
    (List.length result.Whynot.Pipeline.explanations)
    (List.length back);
  Alcotest.(check bool) "explanations survive" true
    (List.for_all2 expl_equal result.Whynot.Pipeline.explanations back);
  (* timings:false must not leak wall-clock fields *)
  let text = Nested.Json.to_line payload in
  let contains needle =
    let n = String.length text and m = String.length needle in
    let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no timings in deterministic payload" false
    (contains "phases_ms" || contains "total_ms")

let test_codec_rejects_garbage () =
  List.iter
    (fun text ->
      match Serve.Codec.explanation_of_json (Nested.Json.of_string text) with
      | exception Serve.Codec.Decode_error _ -> ()
      | _ -> Alcotest.fail ("decoded garbage: " ^ text))
    [ "42"; "{}"; "{\"ops\": 1}"; "{\"ops\": [1], \"side_effect_lb\": true}" ]

(* --- catalog ----------------------------------------------------------- *)

let test_catalog_register_reuse_refresh () =
  let c = Serve.Catalog.create () in
  (match Serve.Catalog.register c ~name:"re" ~scale:1 () with
  | Error m -> Alcotest.fail m
  | Ok (e, fresh) ->
    Alcotest.(check string) "canonical name" "RE" e.Serve.Catalog.key.Serve.Catalog.name;
    Alcotest.(check bool) "first registration generates" true fresh;
    Alcotest.(check int) "version starts at 1" 1 e.Serve.Catalog.version);
  (match Serve.Catalog.register c ~name:"RE" ~scale:1 () with
  | Error m -> Alcotest.fail m
  | Ok (e, fresh) ->
    Alcotest.(check bool) "second registration reuses" false fresh;
    Alcotest.(check int) "version unchanged" 1 e.Serve.Catalog.version);
  (match Serve.Catalog.register c ~refresh:true ~name:"RE" ~scale:1 () with
  | Error m -> Alcotest.fail m
  | Ok (e, fresh) ->
    Alcotest.(check bool) "refresh regenerates" true fresh;
    Alcotest.(check int) "refresh bumps version" 2 e.Serve.Catalog.version);
  Alcotest.(check int) "one dataset" 1 (Serve.Catalog.size c);
  (match Serve.Catalog.register c ~name:"no-such-scenario" ~scale:1 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown scenario must be an error");
  Alcotest.(check bool) "evict present" true
    (Serve.Catalog.evict c ~name:"RE" ~scale:1 ());
  Alcotest.(check bool) "evict absent" false
    (Serve.Catalog.evict c ~name:"RE" ~scale:1 ());
  Alcotest.(check int) "empty again" 0 (Serve.Catalog.size c)

let test_catalog_keys_are_distinct () =
  let c = Serve.Catalog.create () in
  let reg ?seed ~scale () =
    match Serve.Catalog.register c ?seed ~name:"Q1" ~scale () with
    | Ok (e, _) -> e
    | Error m -> Alcotest.fail m
  in
  let a = reg ~scale:1 () in
  let b = reg ~scale:2 () in
  let d = reg ~seed:7 ~scale:1 () in
  Alcotest.(check int) "three entries" 3 (Serve.Catalog.size c);
  Alcotest.(check bool) "scales share nothing" true
    (a.Serve.Catalog.instance != b.Serve.Catalog.instance);
  Alcotest.(check bool) "seeds share nothing" true
    (a.Serve.Catalog.instance != d.Serve.Catalog.instance);
  (* same key → same interned instance *)
  let a2 = reg ~scale:1 () in
  Alcotest.(check bool) "same key shares the instance" true
    (a.Serve.Catalog.instance == a2.Serve.Catalog.instance)

(* --- LRU cache --------------------------------------------------------- *)

let test_cache_lru_eviction () =
  let c = Serve.Cache.create ~name:"t1" ~capacity:2 in
  Serve.Cache.add c "a" 1;
  Serve.Cache.add c "b" 2;
  ignore (Serve.Cache.find c "a" : int option);
  (* "a" is now most recent, so inserting "c" evicts "b" *)
  Serve.Cache.add c "c" 3;
  Alcotest.(check (option int)) "a kept" (Some 1) (Serve.Cache.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Serve.Cache.find c "b");
  Alcotest.(check (option int)) "c kept" (Some 3) (Serve.Cache.find c "c");
  let s = Serve.Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Serve.Cache.evictions;
  Alcotest.(check int) "size capped" 2 s.Serve.Cache.size

let test_cache_overwrite_and_invalidate () =
  let c = Serve.Cache.create ~name:"t2" ~capacity:8 in
  Serve.Cache.add c "k1/x" 1;
  Serve.Cache.add c "k1/y" 2;
  Serve.Cache.add c "k2/z" 3;
  Serve.Cache.add c "k1/x" 10;
  Alcotest.(check (option int)) "overwrite wins" (Some 10)
    (Serve.Cache.find c "k1/x");
  Alcotest.(check int) "no duplicate entries" 3 (Serve.Cache.length c);
  Alcotest.(check int) "prefix invalidation drops both" 2
    (Serve.Cache.invalidate c (String.starts_with ~prefix:"k1/"));
  Alcotest.(check (option int)) "other prefix survives" (Some 3)
    (Serve.Cache.find c "k2/z");
  Alcotest.(check int) "clear reports" 1 (Serve.Cache.clear c);
  Alcotest.(check int) "empty" 0 (Serve.Cache.length c)

let test_cache_disabled () =
  let c = Serve.Cache.create ~name:"t3" ~capacity:0 in
  Serve.Cache.add c "a" 1;
  Alcotest.(check (option int)) "capacity 0 never caches" None
    (Serve.Cache.find c "a")

let test_cache_many_keys () =
  (* LRU discipline over a longer run: last [cap] inserts survive *)
  let cap = 16 in
  let c = Serve.Cache.create ~name:"t4" ~capacity:cap in
  for i = 1 to 100 do
    Serve.Cache.add c (string_of_int i) i
  done;
  Alcotest.(check int) "size is capacity" cap (Serve.Cache.length c);
  for i = 85 to 100 do
    Alcotest.(check (option int))
      (Fmt.str "key %d survives" i)
      (Some i)
      (Serve.Cache.find c (string_of_int i))
  done;
  Alcotest.(check (option int)) "older key evicted" None
    (Serve.Cache.find c "84")

(* --- scheduler --------------------------------------------------------- *)

let test_scheduler_runs_jobs () =
  let s = Serve.Scheduler.create ~queue_capacity:4 () in
  (match Serve.Scheduler.run s (fun () -> 6 * 7) with
  | Ok n -> Alcotest.(check int) "result" 42 n
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e));
  let st = Serve.Scheduler.stats s in
  Alcotest.(check int) "submitted" 1 st.Serve.Scheduler.submitted;
  Alcotest.(check int) "completed" 1 st.Serve.Scheduler.completed;
  Alcotest.(check int) "drained" 0 (Serve.Scheduler.depth s)

let test_scheduler_backpressure () =
  let pool = Engine.Pool.create ~size:1 () in
  let s = Serve.Scheduler.create ~pool ~queue_capacity:1 () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  (* fill the only admission slot with a job blocked on the gate *)
  let first =
    match
      Serve.Scheduler.submit s (fun () ->
          Mutex.lock gate;
          Mutex.unlock gate;
          "first")
    with
    | Ok t -> t
    | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  in
  (match Serve.Scheduler.submit s (fun () -> "second") with
  | Error (Serve.Scheduler.Overloaded { depth; capacity }) ->
    Alcotest.(check int) "depth at capacity" 1 depth;
    Alcotest.(check int) "capacity" 1 capacity
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Overloaded");
  Mutex.unlock gate;
  (match Serve.Scheduler.await first with
  | Ok v -> Alcotest.(check string) "first completes" "first" v
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e));
  let st = Serve.Scheduler.stats s in
  Alcotest.(check int) "one rejection" 1 st.Serve.Scheduler.rejected;
  Engine.Pool.shutdown pool

let test_scheduler_deadline () =
  let pool = Engine.Pool.create ~size:1 () in
  let s = Serve.Scheduler.create ~pool ~queue_capacity:8 () in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let blocker =
    match
      Serve.Scheduler.submit s (fun () ->
          Mutex.lock gate;
          Mutex.unlock gate)
    with
    | Ok t -> t
    | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  in
  (* queued behind the blocker with a deadline that lapses while waiting *)
  let doomed =
    match Serve.Scheduler.submit s ~deadline_ms:5.0 (fun () -> "ran") with
    | Ok t -> t
    | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  in
  Unix.sleepf 0.05;
  Mutex.unlock gate;
  (match Serve.Scheduler.await blocker with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e));
  (match Serve.Scheduler.await doomed with
  | Error (Serve.Scheduler.Deadline_exceeded { waited_ms; deadline_ms }) ->
    Alcotest.(check bool) "waited past deadline" true (waited_ms > deadline_ms)
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Deadline_exceeded");
  let st = Serve.Scheduler.stats s in
  Alcotest.(check int) "one expiry" 1 st.Serve.Scheduler.expired;
  Engine.Pool.shutdown pool

(* --- protocol ---------------------------------------------------------- *)

let test_protocol_parse_requests () =
  (match Serve.Protocol.request_of_string "{\"op\": \"register\", \"dataset\": \"RE\"}" with
  | Ok (Serve.Protocol.Register { dataset; scale; seed; refresh }) ->
    Alcotest.(check string) "dataset" "RE" dataset;
    Alcotest.(check int) "default scale" 1 scale;
    Alcotest.(check int) "default seed" 0 seed;
    Alcotest.(check bool) "default refresh" false refresh
  | Ok _ -> Alcotest.fail "wrong request"
  | Error m -> Alcotest.fail m);
  (match
     Serve.Protocol.request_of_string
       "{\"op\": \"explain\", \"dataset\": \"RE\", \"whynot\": \"(tuple (city \
        (str NY)) (nList (bag ? *)))\", \"max_sas\": 4, \"deadline_ms\": 250}"
   with
  | Ok (Serve.Protocol.Explain e) ->
    Alcotest.(check bool) "pattern parsed" true (e.pattern <> None);
    Alcotest.(check bool) "query defaulted" true (e.query = None);
    Alcotest.(check int) "max_sas" 4 e.options.Serve.Protocol.max_sas;
    Alcotest.(check (option (float 0.01))) "deadline" (Some 250.0) e.deadline_ms
  | Ok _ -> Alcotest.fail "wrong request"
  | Error m -> Alcotest.fail m);
  List.iter
    (fun line ->
      match Serve.Protocol.request_of_string line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted bad request: " ^ line))
    [
      "not json";
      "{}";
      "{\"op\": \"frobnicate\"}";
      "{\"op\": \"register\"}";
      "{\"op\": \"explain\", \"dataset\": \"RE\", \"query\": \"(((\"}";
      "{\"op\": \"explain\", \"dataset\": \"RE\", \"max_sas\": \"lots\"}";
    ]

let test_protocol_response_lines () =
  let line =
    Serve.Protocol.response_to_string
      (Serve.Protocol.Error
         { code = Serve.Protocol.Overloaded; message = "try later" })
  in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match Nested.Json.of_string line with
  | Nested.Json.J_object fields ->
    Alcotest.(check bool) "ok=false" true
      (List.assoc "ok" fields = Nested.Json.J_bool false);
    Alcotest.(check bool) "code" true
      (List.assoc "code" fields = Nested.Json.J_string "overloaded")
  | _ -> Alcotest.fail "response is not an object"

(* --- server sessions --------------------------------------------------- *)

let quiet_config =
  { Serve.Server.default_config with timings = false }

let expect_ok label = function
  | Serve.Protocol.Error { message; _ } ->
    Alcotest.fail (Fmt.str "%s: unexpected error: %s" label message)
  | r -> r

let test_server_cache_hit_is_byte_identical () =
  let srv = Serve.Server.create ~config:quiet_config () in
  (match
     expect_ok "register"
       (Serve.Server.handle_request srv
          (Serve.Protocol.Register
             { dataset = "RE"; scale = 1; seed = 0; refresh = false }))
   with
  | Serve.Protocol.Registered { fresh; _ } ->
    Alcotest.(check bool) "fresh" true fresh
  | _ -> Alcotest.fail "expected registered");
  let explain () =
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           pattern = None;
           options = Serve.Protocol.default_options;
           deadline_ms = None;
         })
  in
  let r1 = expect_ok "explain#1" (explain ()) in
  let r2 = expect_ok "explain#2" (explain ()) in
  (match (r1, r2) with
  | ( Serve.Protocol.Explained { cache = c1; result = j1; _ },
      Serve.Protocol.Explained { cache = c2; result = j2; _ } ) ->
    Alcotest.(check bool) "first is a miss" true (c1 = `Miss);
    Alcotest.(check bool) "second is a hit" true (c2 = `Hit);
    Alcotest.(check string) "payloads byte-identical"
      (Nested.Json.to_line j1) (Nested.Json.to_line j2)
  | _ -> Alcotest.fail "expected two explained responses");
  match Serve.Server.handle_request srv Serve.Protocol.Stats with
  | Serve.Protocol.Stats_reply sections ->
    (match List.assoc "cache" sections with
    | Nested.Json.J_object fields ->
      Alcotest.(check bool) "stats show the hit" true
        (List.assoc "hits" fields = Nested.Json.J_int 1)
    | _ -> Alcotest.fail "cache section missing")
  | _ -> Alcotest.fail "expected stats"

let test_server_handle_reuse_across_patterns () =
  let srv = Serve.Server.create ~config:quiet_config () in
  ignore
    (expect_ok "register"
       (Serve.Server.handle_request srv
          (Serve.Protocol.Register
             { dataset = "RE"; scale = 1; seed = 0; refresh = false })));
  let explain pattern =
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           pattern;
           options = Serve.Protocol.default_options;
           deadline_ms = None;
         })
  in
  (match expect_ok "pattern A" (explain None) with
  | Serve.Protocol.Explained { cache = `Miss; _ } -> ()
  | _ -> Alcotest.fail "first pattern: expected a full miss");
  let other =
    Some (Whynot.Nip_syntax.of_string "(tuple (city (str LA)) (nList (bag ? *)))")
  in
  match expect_ok "pattern B" (explain other) with
  | Serve.Protocol.Explained { cache = `Handle; _ } ->
    (* new pattern, same query: the traced-run handle was reused *)
    ()
  | Serve.Protocol.Explained { cache = c; _ } ->
    Alcotest.fail
      (Fmt.str "expected handle reuse, got %s"
         (match c with `Hit -> "hit" | `Miss -> "miss" | `Handle -> "handle"))
  | _ -> Alcotest.fail "expected explained"

let test_server_refresh_invalidates () =
  let srv = Serve.Server.create ~config:quiet_config () in
  let register refresh =
    expect_ok "register"
      (Serve.Server.handle_request srv
         (Serve.Protocol.Register { dataset = "RE"; scale = 1; seed = 0; refresh }))
  in
  ignore (register false);
  let explain () =
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           pattern = None;
           options = Serve.Protocol.default_options;
           deadline_ms = None;
         })
  in
  (match expect_ok "cold" (explain ()) with
  | Serve.Protocol.Explained { cache = `Miss; version = 1; _ } -> ()
  | _ -> Alcotest.fail "expected miss at version 1");
  ignore (register true);
  match expect_ok "after refresh" (explain ()) with
  | Serve.Protocol.Explained { cache = `Miss; version = 2; _ } -> ()
  | Serve.Protocol.Explained { cache = `Hit; _ } ->
    Alcotest.fail "refresh must invalidate the cache"
  | _ -> Alcotest.fail "expected explained at version 2"

let test_server_typed_errors () =
  let srv = Serve.Server.create ~config:quiet_config () in
  (match
     Serve.Server.handle_request srv
       (Serve.Protocol.Explain
          {
            dataset = "RE";
            scale = 1;
            seed = 0;
            query = None;
            pattern = None;
            options = Serve.Protocol.default_options;
            deadline_ms = None;
          })
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "explain before register must be not_found");
  match
    Serve.Server.handle_request srv
      (Serve.Protocol.Register
         { dataset = "no-such"; scale = 1; seed = 0; refresh = false })
  with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "registering an unknown scenario must be not_found"

let test_server_line_session () =
  (* the line-level entry point the transports share *)
  let srv = Serve.Server.create ~config:quiet_config () in
  let step line =
    let text, stop = Serve.Server.handle_line srv line in
    (Nested.Json.of_string text, stop)
  in
  let field name = function
    | Nested.Json.J_object fields -> List.assoc_opt name fields
    | _ -> None
  in
  let j, stop = step "{\"op\": \"register\", \"dataset\": \"RE\"}" in
  Alcotest.(check bool) "register continues" false stop;
  Alcotest.(check bool) "register ok" true
    (field "ok" j = Some (Nested.Json.J_bool true));
  let j, _ = step "nonsense" in
  Alcotest.(check bool) "parse errors answer, not kill" true
    (field "code" j = Some (Nested.Json.J_string "bad_request"));
  let j, _ = step "{\"op\": \"evict\", \"dataset\": \"RE\"}" in
  Alcotest.(check bool) "evict drops one dataset" true
    (field "datasets" j = Some (Nested.Json.J_int 1));
  let j, stop = step "{\"op\": \"shutdown\"}" in
  Alcotest.(check bool) "shutdown stops the loop" true stop;
  Alcotest.(check bool) "goodbye" true
    (field "type" j = Some (Nested.Json.J_string "goodbye"))

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "deterministic" `Quick test_fp_deterministic;
          Alcotest.test_case "alpha-equivalence" `Quick test_fp_alpha_equivalent;
          Alcotest.test_case "parameter sensitivity" `Quick
            test_fp_param_sensitive;
          Alcotest.test_case "nip and options" `Quick test_fp_nip_and_options;
          Alcotest.test_case "cache keys" `Quick test_fp_keys;
        ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_explanation_roundtrip;
          QCheck_alcotest.to_alcotest prop_explanations_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_via_text;
          Alcotest.test_case "result payload" `Quick test_codec_result_payload;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "register/reuse/refresh" `Quick
            test_catalog_register_reuse_refresh;
          Alcotest.test_case "distinct keys" `Quick
            test_catalog_keys_are_distinct;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "overwrite and invalidate" `Quick
            test_cache_overwrite_and_invalidate;
          Alcotest.test_case "capacity 0 disables" `Quick test_cache_disabled;
          Alcotest.test_case "long run" `Quick test_cache_many_keys;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "runs jobs" `Quick test_scheduler_runs_jobs;
          Alcotest.test_case "backpressure" `Quick test_scheduler_backpressure;
          Alcotest.test_case "deadline" `Quick test_scheduler_deadline;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse requests" `Quick test_protocol_parse_requests;
          Alcotest.test_case "response lines" `Quick
            test_protocol_response_lines;
        ] );
      ( "server",
        [
          Alcotest.test_case "cache hit is byte-identical" `Quick
            test_server_cache_hit_is_byte_identical;
          Alcotest.test_case "handle reuse across patterns" `Quick
            test_server_handle_reuse_across_patterns;
          Alcotest.test_case "refresh invalidates" `Quick
            test_server_refresh_invalidates;
          Alcotest.test_case "typed errors" `Quick test_server_typed_errors;
          Alcotest.test_case "line session" `Quick test_server_line_session;
        ] );
    ]
