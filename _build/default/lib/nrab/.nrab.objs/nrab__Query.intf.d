lib/nrab/query.mli: Agg Expr Format
