lib/datagen/twitter.ml: Fmt List Nested Prng Relation Value Vtype
