(* Execution statistics collected by the engine: per-operator input/output
   cardinalities and shuffle volumes, mirroring what one reads off a Spark
   UI when profiling the paper's implementation. *)

type op_stats = {
  op_id : int;
  op_label : string;
  mutable input_rows : int;
  mutable output_rows : int;
  mutable shuffled_rows : int;
}

type t = {
  mutable ops : op_stats list;
  mutable stages : int;  (* narrow chains broken by shuffles *)
}

let create () = { ops = []; stages = 1 }

let op (t : t) ~op_id ~op_label : op_stats =
  match List.find_opt (fun o -> o.op_id = op_id) t.ops with
  | Some o -> o
  | None ->
    let o = { op_id; op_label; input_rows = 0; output_rows = 0; shuffled_rows = 0 } in
    t.ops <- o :: t.ops;
    o

let record_shuffle (t : t) (o : op_stats) rows =
  o.shuffled_rows <- o.shuffled_rows + rows;
  if rows > 0 then t.stages <- t.stages + 1

let total_output (t : t) =
  List.fold_left (fun acc o -> acc + o.output_rows) 0 t.ops

let total_shuffled (t : t) =
  List.fold_left (fun acc o -> acc + o.shuffled_rows) 0 t.ops

let pp ppf (t : t) =
  let ops = List.sort (fun a b -> compare a.op_id b.op_id) t.ops in
  Fmt.pf ppf "@[<v>stages: %d@,%a@]" t.stages
    (Fmt.list ~sep:Fmt.cut (fun ppf o ->
         Fmt.pf ppf "op %2d %-14s in=%-8d out=%-8d shuffled=%d" o.op_id
           o.op_label o.input_rows o.output_rows o.shuffled_rows))
    ops
