(* Reparameterizations (Definitions 6–8) and the admissible parameter
   changes of Table 2.

   A reparameterization replaces operator parameters while preserving query
   structure: the operator constructor family stays fixed (up to the
   admissible kind switches: join type changes, inner↔outer flatten), no
   operator is added or removed, and ids are retained. *)

open Nrab
module Int_set = Opset.Int_set

(* Is [replacement] an admissible reparameterization of [original]
   according to Table 2?  This checks shape only; whether the new
   parameters type-check is decided against the query by the caller. *)
let admissible_change (original : Query.node) (replacement : Query.node) : bool
    =
  match original, replacement with
  | Query.Select _, Query.Select _ -> true
  | Query.Project cols, Query.Project cols' ->
    (* attribute substitutions only: same width, same output names *)
    List.length cols = List.length cols'
    && List.for_all2 (fun (n, _) (n', _) -> String.equal n n') cols cols'
  | Query.Rename pairs, Query.Rename pairs' ->
    (* permutations of the output names *)
    List.length pairs = List.length pairs'
    && List.sort compare (List.map fst pairs)
       = List.sort compare (List.map fst pairs')
  | Query.Join _, Query.Join _ -> true
  | Query.Flatten_tuple _, Query.Flatten_tuple _ -> true
  | Query.Flatten _, Query.Flatten _ -> true
  | Query.Nest_tuple _, Query.Nest_tuple _ -> true
  | Query.Nest_rel _, Query.Nest_rel _ -> true
  | Query.Agg_tuple _, Query.Agg_tuple _ -> true
  | Query.Group_agg (g, aggs), Query.Group_agg (g', aggs') ->
    List.length g = List.length g' && List.length aggs = List.length aggs'
  | (Query.Table _ | Query.Product | Query.Union | Query.Diff | Query.Dedup), _
    ->
    false (* parameter-free operators cannot be reparameterized *)
  | _, _ -> false

(* A reparameterization: node replacements keyed by operator id. *)
type t = (int * Query.node) list

let apply (q : Query.t) (rp : t) : Query.t =
  List.fold_left (fun q (id, node) -> Query.replace_node q id node) q rp

let is_valid (q : Query.t) (rp : t) : bool =
  List.for_all
    (fun (id, node) ->
      match Query.find_op q id with
      | Some op -> admissible_change op.Query.node node
      | None -> false)
    rp

(* Δ(Q, Q'): identifiers of operators whose parameters differ
   (Definition 9). *)
let delta (q : Query.t) (q' : Query.t) : Int_set.t =
  let ops = Query.operators q in
  List.fold_left
    (fun acc (op : Query.t) ->
      match Query.find_op q' op.Query.id with
      | Some op' when op.Query.node <> op'.Query.node ->
        Int_set.add op.Query.id acc
      | _ -> acc)
    Int_set.empty ops

(* --- Candidate enumeration (used by the exact MSR search) -------------- *)

(* Candidate parameter changes for one operator, within the PTIME
   restrictions of Theorem 1: selection structure is preserved (constants
   and attribute references swapped, comparison operators switched),
   aggregation functions are the standard SQL ones, map is restricted to
   projection.  [attr_pool] maps a type-compatibility witness: for an
   attribute a, the attributes of the operator's input that may replace it.
   [const_pool] supplies replacement constants per attribute (from the
   active domain). *)

let comparison_ops = [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]

let rec pred_variants ~attr_pool ~const_pool (p : Expr.pred) : Expr.pred list =
  match p with
  | Expr.True | Expr.False -> [ p ]
  | Expr.Cmp (c, lhs, rhs) ->
    let cmp_changes =
      List.filter_map
        (fun c' -> if c' <> c then Some (Expr.Cmp (c', lhs, rhs)) else None)
        comparison_ops
    in
    let side_changes side other mk =
      match side with
      | Expr.Attr a ->
        List.filter_map
          (fun a' ->
            if String.equal a a' then None else Some (mk (Expr.Attr a') other))
          (attr_pool a)
      | Expr.Const v ->
        List.filter_map
          (fun v' ->
            if Nested.Value.equal v v' then None
            else Some (mk (Expr.Const v') other))
          (const_pool (match other with Expr.Attr a -> Some a | _ -> None) v)
      | _ -> []
    in
    cmp_changes
    @ side_changes lhs rhs (fun l r -> Expr.Cmp (c, l, r))
    @ side_changes rhs lhs (fun r l -> Expr.Cmp (c, l, r))
  | Expr.And (a, b) ->
    List.map (fun a' -> Expr.And (a', b)) (pred_variants ~attr_pool ~const_pool a)
    @ List.map (fun b' -> Expr.And (a, b')) (pred_variants ~attr_pool ~const_pool b)
  | Expr.Or (a, b) ->
    List.map (fun a' -> Expr.Or (a', b)) (pred_variants ~attr_pool ~const_pool a)
    @ List.map (fun b' -> Expr.Or (a, b')) (pred_variants ~attr_pool ~const_pool b)
  | Expr.Not a ->
    List.map (fun a' -> Expr.Not a') (pred_variants ~attr_pool ~const_pool a)
  | Expr.IsNull _ | Expr.IsNotNull _ | Expr.Contains _ -> []

let rec expr_attr_variants ~attr_pool (e : Expr.t) : Expr.t list =
  match e with
  | Expr.Const _ -> []
  | Expr.Attr a ->
    List.filter_map
      (fun a' -> if String.equal a a' then None else Some (Expr.Attr a'))
      (attr_pool a)
  | Expr.Add (a, b) ->
    List.map (fun a' -> Expr.Add (a', b)) (expr_attr_variants ~attr_pool a)
    @ List.map (fun b' -> Expr.Add (a, b')) (expr_attr_variants ~attr_pool b)
  | Expr.Sub (a, b) ->
    List.map (fun a' -> Expr.Sub (a', b)) (expr_attr_variants ~attr_pool a)
    @ List.map (fun b' -> Expr.Sub (a, b')) (expr_attr_variants ~attr_pool b)
  | Expr.Mul (a, b) ->
    List.map (fun a' -> Expr.Mul (a', b)) (expr_attr_variants ~attr_pool a)
    @ List.map (fun b' -> Expr.Mul (a, b')) (expr_attr_variants ~attr_pool b)
  | Expr.Div (a, b) ->
    List.map (fun a' -> Expr.Div (a', b)) (expr_attr_variants ~attr_pool a)
    @ List.map (fun b' -> Expr.Div (a, b')) (expr_attr_variants ~attr_pool b)

(* One-step admissible changes of an operator's node. *)
let node_variants ~attr_pool ~const_pool (node : Query.node) : Query.node list
    =
  match node with
  | Query.Select p ->
    List.map (fun p' -> Query.Select p') (pred_variants ~attr_pool ~const_pool p)
  | Query.Project cols ->
    List.concat_map
      (fun (name, e) ->
        List.map
          (fun e' ->
            Query.Project
              (List.map
                 (fun (n, old) -> if String.equal n name then (n, e') else (n, old))
                 cols))
          (expr_attr_variants ~attr_pool e))
      cols
  | Query.Join (kind, p) ->
    let kind_changes =
      List.filter_map
        (fun k -> if k <> kind then Some (Query.Join (k, p)) else None)
        [ Query.Inner; Query.Left; Query.Right; Query.Full ]
    in
    let pred_changes =
      List.map (fun p' -> Query.Join (kind, p')) (pred_variants ~attr_pool ~const_pool p)
    in
    kind_changes @ pred_changes
  | Query.Flatten_tuple a ->
    List.filter_map
      (fun a' ->
        if String.equal a a' then None else Some (Query.Flatten_tuple a'))
      (attr_pool a)
  | Query.Flatten (kind, a) ->
    let other =
      match kind with
      | Query.Flat_inner -> Query.Flat_outer
      | Query.Flat_outer -> Query.Flat_inner
    in
    Query.Flatten (other, a)
    :: List.filter_map
         (fun a' ->
           if String.equal a a' then None else Some (Query.Flatten (kind, a')))
         (attr_pool a)
  | Query.Nest_tuple (pairs, c) | Query.Nest_rel (pairs, c) ->
    let mk pairs c =
      match node with
      | Query.Nest_tuple _ -> Query.Nest_tuple (pairs, c)
      | _ -> Query.Nest_rel (pairs, c)
    in
    let attrs = List.map snd pairs in
    List.concat_map
      (fun (label, a) ->
        List.filter_map
          (fun a' ->
            if String.equal a a' || List.mem a' attrs then None
            else
              Some
                (mk
                   (List.map
                      (fun (l, x) ->
                        if String.equal l label then (l, a') else (l, x))
                      pairs)
                   c))
          (attr_pool a))
      pairs
  | Query.Agg_tuple (fn, a, b) ->
    let fn_changes =
      List.filter_map
        (fun fn' -> if fn' <> fn then Some (Query.Agg_tuple (fn', a, b)) else None)
        [ Agg.Sum; Agg.Count; Agg.Count_distinct; Agg.Avg; Agg.Min; Agg.Max ]
    in
    let attr_changes =
      List.filter_map
        (fun a' ->
          if String.equal a a' then None else Some (Query.Agg_tuple (fn, a', b)))
        (attr_pool a)
    in
    fn_changes @ attr_changes
  | Query.Group_agg (group, aggs) ->
    let agg_attr_changes =
      List.concat_map
        (fun (fn, a, out) ->
          match a with
          | None -> []
          | Some a ->
            List.filter_map
              (fun a' ->
                if String.equal a a' then None
                else
                  Some
                    (Query.Group_agg
                       ( group,
                         List.map
                           (fun (fn', x, o) ->
                             if
                               fn' = fn && x = Some a && String.equal o out
                             then (fn', Some a', o)
                             else (fn', x, o))
                           aggs )))
              (attr_pool a))
        aggs
    in
    let group_attrs = List.map snd group in
    let group_changes =
      List.concat_map
        (fun (label, g) ->
          List.filter_map
            (fun g' ->
              if String.equal g g' || List.mem g' group_attrs then None
              else
                Some
                  (Query.Group_agg
                     ( List.map
                         (fun (l, x) ->
                           if String.equal l label then (l, g') else (l, x))
                         group,
                       aggs )))
            (attr_pool g))
        group
    in
    agg_attr_changes @ group_changes
  | Query.Rename _ | Query.Table _ | Query.Product | Query.Union | Query.Diff
  | Query.Dedup ->
    []
