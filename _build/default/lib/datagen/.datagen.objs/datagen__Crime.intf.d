lib/datagen/crime.mli: Nested Relation Vtype
