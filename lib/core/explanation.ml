(* Explanations (Definition 10) and the partial order of Definition 9.

   The heuristic algorithm knows side effects only up to the lower/upper
   bounds of Section 5.4, so explanations carry an interval; the exact
   search (Exact) produces degenerate intervals [d, d] with the true tree
   edit distance. *)

module Int_set = Opset.Int_set

type t = {
  ops : Int_set.t;         (* Δ(Q, Q') — operator ids to reparameterize *)
  side_effect_lb : int;
  side_effect_ub : int;
  sa : int;                (* index of the schema alternative; 0 = original *)
  confidence : float option;
      (* None = exact tracing witnessed the bounds; Some c = the bounds
         came from a 1-in-N sampled trace with c = 1/N *)
}

let make ?(sa = 0) ?confidence ~lb ~ub ops =
  { ops; side_effect_lb = lb; side_effect_ub = ub; sa; confidence }

let with_confidence c e = { e with confidence = Some c }

let ops e = e.ops
let op_list e = Int_set.elements e.ops

(* Definitive dominance given only bounds: e' dominates e when it changes a
   strict subset of e's operators and its worst-case side effects do not
   exceed e's best case. *)
let dominates (e' : t) (e : t) : bool =
  Int_set.subset e'.ops e.ops
  && (not (Int_set.equal e'.ops e.ops))
  && e'.side_effect_ub <= e.side_effect_lb

let prune_dominated (es : t list) : t list =
  (* also merge duplicates (same op set, same SA origin kept smallest) *)
  let dedup =
    List.fold_left
      (fun acc e ->
        match List.find_opt (fun e' -> Int_set.equal e'.ops e.ops) acc with
        | Some e' ->
          let merged =
            {
              e' with
              side_effect_lb = min e.side_effect_lb e'.side_effect_lb;
              side_effect_ub = min e.side_effect_ub e'.side_effect_ub;
              sa = min e.sa e'.sa;
              (* an exact witness (None) beats any sampled one; two
                 sampled witnesses keep the denser sample *)
              confidence =
                (match (e.confidence, e'.confidence) with
                | Some a, Some b -> Some (Float.max a b)
                | _ -> None);
            }
          in
          merged :: List.filter (fun x -> not (Int_set.equal x.ops e.ops)) acc
        | None -> e :: acc)
      [] es
  in
  List.filter
    (fun e -> not (List.exists (fun e' -> dominates e' e) dedup))
    (List.rev dedup)

(* Linearization of the partial order for presentation: fewer operators
   first, then smaller side-effect upper bound, then original schema
   alternative first. *)
let rank (es : t list) : t list =
  List.sort
    (fun a b ->
      let c = compare (Int_set.cardinal a.ops) (Int_set.cardinal b.ops) in
      if c <> 0 then c
      else
        let c = compare a.side_effect_ub b.side_effect_ub in
        if c <> 0 then c
        else
          let c = compare a.sa b.sa in
          if c <> 0 then c
          else compare (Int_set.elements a.ops) (Int_set.elements b.ops))
    es

(* Render an explanation with the operator symbols of the query, in the
   paper's {σ^2, F^5} style. *)
let pp_with_query (q : Nrab.Query.t) ppf (e : t) =
  let symbol id =
    match Nrab.Query.find_op q id with
    | Some op -> Fmt.str "%s^%d" (Nrab.Query.op_symbol op.Nrab.Query.node) id
    | None -> Fmt.str "op^%d" id
  in
  Fmt.pf ppf "{%s}" (String.concat ", " (List.map symbol (op_list e)))

let to_string_with_query q e = Fmt.str "%a" (pp_with_query q) e

let pp ppf e =
  Fmt.pf ppf "{%a} (side effects in [%d, %d], SA %d)"
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.int)
    (op_list e) e.side_effect_lb e.side_effect_ub e.sa

let equal_ops a b = Int_set.equal a.ops b.ops
