(** Hierarchical spans — named, timed regions with parent links and
    key/value attributes.  Start/stop uses the monotonic {!Clock};
    mutation is thread-safe (the engine finishes spans around
    per-partition domain work).

    Spans started with a [?parent] are registered as that parent's
    children; a span without a parent is a root (one trace tree). *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string

type t

(** Start a span now.  With [?parent], the new span is appended to the
    parent's children (order of [start] calls is preserved).  [?at]
    overrides the start timestamp (ns) — callers use it to tile sibling
    spans wall-to-wall, so clock reads and span bookkeeping between
    phases are charged to a phase instead of falling into gaps; it is
    clamped to the parent's start.

    When an ambient {!Trace_context} is installed (the serve tier does
    this per request), the new span is born with a [trace_id] string
    attribute — every span a request opens carries its id. *)
val start : ?parent:t -> ?at:int -> string -> t

(** Stop the span now (or at the explicit [?at] nanosecond timestamp,
    clamped to the span's start).  Idempotent: the first call wins. *)
val finish : ?at:int -> t -> unit

(** [with_ ?parent name f] runs [f span] and finishes the span even if
    [f] raises. *)
val with_ : ?parent:t -> string -> (t -> 'a) -> 'a

(** {1 Attributes} *)

val set : t -> string -> value -> unit
val set_int : t -> string -> int -> unit
val set_float : t -> string -> float -> unit
val set_bool : t -> string -> bool -> unit
val set_string : t -> string -> string -> unit
val attr : t -> string -> value option
val attrs : t -> (string * value) list

(** {1 Inspection} *)

val name : t -> string
val id : t -> int
val parent_id : t -> int option
val finished : t -> bool
val start_ns : t -> int

(** [None] while the span is running. *)
val end_ns : t -> int option

(** Elapsed so far for a running span, final once finished; never
    negative (monotonic clock). *)
val duration_ns : t -> int

val duration_ms : t -> float

(** Children in start order. *)
val children : t -> t list

(** Pre-order traversal (parent before children). *)
val iter : (t -> unit) -> t -> unit

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
val find_all : (t -> bool) -> t -> t list

(** Number of descendant spans (the root included) with that exact name. *)
val count_named : string -> t -> int

(** Total duration of descendant spans with that exact name — a phase
    that runs once per schema alternative sums across its instances. *)
val sum_duration_ms_named : string -> t -> float

(** Box-drawing pretty-printer for a span tree with durations and
    attributes. *)
val pp_tree : Format.formatter -> t -> unit

val pp_value : Format.formatter -> value -> unit
