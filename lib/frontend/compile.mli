(** End-to-end frontend: text → tokens → surface AST → typed
    [Nrab.Query].

    [text] auto-detects the concrete syntax: input whose first
    non-whitespace character is ['('] or [';'] is parsed as the legacy
    s-expression syntax ([Nrab.Parser]), anything else as SQL-ish.
    Both paths end in the same place — a query that type-checked
    against [env] — and both report failures as {!Diagnostic.t}. *)

open Nrab

type syntax = [ `Sql | `Sexp ]

val detect : string -> syntax

(** Schema environment of a database: table name → relation type. *)
val env_of_db : Nested.Relation.Db.t -> Typecheck.env

(** Compile SQL-ish text.  Fresh operator ids come from [gen]
    (default: a new generator starting at 1). *)
val sql :
  env:Typecheck.env ->
  ?gen:Query.Gen.t ->
  string ->
  (Query.t * Nested.Vtype.t, Diagnostic.t) result

(** Compile s-expression text through [Nrab.Parser] + [Nrab.Typecheck],
    wrapping failures as diagnostics. *)
val sexp :
  env:Typecheck.env ->
  ?gen:Query.Gen.t ->
  string ->
  (Query.t * Nested.Vtype.t, Diagnostic.t) result

(** [sql] or [sexp] according to {!detect}. *)
val text :
  env:Typecheck.env ->
  ?gen:Query.Gen.t ->
  string ->
  (Query.t * Nested.Vtype.t, Diagnostic.t) result
