(* Request-scoped trace context: the ambient trace id of the work the
   current thread is doing.

   The serve layer installs a trace id around each protocol request;
   everything downstream — spans ({!Span.start} tags roots and children
   alike), log records ({!Log} stamps every record), task retries —
   reads it back ambiently, so no signature between the server and the
   engine has to grow a [?trace_id] parameter.

   Storage is keyed by ⟨domain id, thread id⟩, not by domain alone:
   the server runs one *systhread* per connection and all connection
   threads of one domain would otherwise share (and clobber) a single
   slot.  {!Engine.Pool.submit} captures the submitting thread's
   context and re-installs it around the job on the worker domain, so
   the context follows a request across the pool boundary. *)

type key = int * int

let key () : key =
  ((Domain.self () :> int), Thread.id (Thread.self ()))

let lock = Mutex.create ()
let table : (key, string) Hashtbl.t = Hashtbl.create 16

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let current () = protect (fun () -> Hashtbl.find_opt table (key ()))

let set id =
  protect (fun () ->
      let k = key () in
      match id with
      | Some id -> Hashtbl.replace table k id
      | None -> Hashtbl.remove table k)

let with_opt id f =
  let k = key () in
  let prev = protect (fun () -> Hashtbl.find_opt table k) in
  protect (fun () ->
      match id with
      | Some id -> Hashtbl.replace table k id
      | None -> Hashtbl.remove table k);
  Fun.protect
    ~finally:(fun () ->
      protect (fun () ->
          match prev with
          | Some p -> Hashtbl.replace table k p
          | None -> Hashtbl.remove table k))
    f

let with_id id f = with_opt (Some id) f

(* -- id generation -------------------------------------------------------- *)

(* Fresh ids are 16 hex chars from a splitmix64 stream seeded once per
   process from the clock and the pid — unique across a fleet with very
   high probability, and cheap (one fetch_and_add + a few mixes). *)

let seed =
  lazy
    (Int64.logxor
       (Int64.of_int (Clock.now_ns ()))
       (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (Unix.getpid ()))))

let counter = Atomic.make 0

let splitmix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make () =
  let n = Atomic.fetch_and_add counter 1 in
  let z =
    splitmix64
      (Int64.add (Lazy.force seed)
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (n + 1))))
  in
  Printf.sprintf "%016Lx" z

(* Client-supplied ids must be greppable tokens, not payloads: bounded
   length, no whitespace, no quoting hazards. *)
let is_valid id =
  let n = String.length id in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' -> true
         | _ -> false)
       id
