(** Metrics export — Prometheus text exposition and a JSON snapshot.

    Dotted registry names are sanitized to Prometheus identifiers
    ([serve.sched.wait_ms] → [serve_sched_wait_ms]); counters are
    rendered with the conventional [_total] suffix; histograms are
    exposed in cumulative [_bucket{le="..."}] form (non-empty buckets
    only, plus the [+Inf] bucket) with [_sum] and [_count].

    Each metric is read atomically but the render itself holds no
    registry-wide lock, so a scrape never stalls the serving path. *)

(** Prometheus text exposition (version 0.0.4) of a registry. *)
val prometheus_of : Metrics.t -> string

(** {!prometheus_of} on {!Metrics.default}. *)
val prometheus : unit -> string

(** JSON object keyed by (unsanitized) metric name: counters as ints,
    gauges as floats, histograms as [{count,sum,min,max,p50,p95}]. *)
val json_of : Metrics.t -> Nested.Json.json

(** {!json_of} on {!Metrics.default}. *)
val json : unit -> Nested.Json.json
