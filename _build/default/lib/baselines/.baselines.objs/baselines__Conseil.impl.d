lib/baselines/conseil.ml: Explanation_set Hashtbl Int Lineage List Set Whynot
