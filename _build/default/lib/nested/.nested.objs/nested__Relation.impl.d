lib/nested/relation.ml: Fmt List Map String Value Vtype
