lib/nrab/fragment.mli: Query
