(* Explanation ordering and pruning tests (Definitions 9–10). *)

module E = Whynot.Explanation
module Int_set = Whynot.Msr.Int_set

let mk ?(sa = 0) ~lb ~ub ids = E.make ~sa ~lb ~ub (Int_set.of_list ids)

let sets es = List.map E.op_list es

let test_rank_by_cardinality () =
  let es = [ mk ~lb:0 ~ub:5 [ 1; 2 ]; mk ~lb:0 ~ub:9 [ 3 ] ] in
  Alcotest.(check (list (list int))) "singleton first" [ [ 3 ]; [ 1; 2 ] ]
    (sets (E.rank es))

let test_rank_by_side_effects () =
  let es = [ mk ~lb:0 ~ub:9 [ 1 ]; mk ~lb:0 ~ub:2 [ 2 ] ] in
  Alcotest.(check (list (list int))) "smaller UB first" [ [ 2 ]; [ 1 ] ]
    (sets (E.rank es))

let test_rank_by_sa () =
  let es = [ mk ~sa:1 ~lb:0 ~ub:3 [ 1 ]; mk ~sa:0 ~lb:0 ~ub:3 [ 2 ] ] in
  Alcotest.(check (list (list int))) "original SA first" [ [ 2 ]; [ 1 ] ]
    (sets (E.rank es))

let test_dominates () =
  let small = mk ~lb:0 ~ub:0 [ 1 ] in
  let big = mk ~lb:0 ~ub:7 [ 1; 2 ] in
  Alcotest.(check bool) "subset with certain lower side effects dominates" true
    (E.dominates small big);
  Alcotest.(check bool) "no self domination" false (E.dominates small small);
  let big_cheap = mk ~lb:3 ~ub:7 [ 1; 2 ] in
  let small_pricey = mk ~lb:0 ~ub:5 [ 1 ] in
  (* ub 5 > lb 3, so domination must NOT hold *)
  Alcotest.(check bool) "uncertain bounds do not dominate" false
    (E.dominates small_pricey big_cheap)

let test_prune_dominated () =
  let es =
    [ mk ~lb:0 ~ub:0 [ 1 ]; mk ~lb:0 ~ub:4 [ 1; 2 ]; mk ~lb:0 ~ub:1 [ 3 ] ]
  in
  let pruned = E.prune_dominated es in
  Alcotest.(check int) "dominated pair removed" 2 (List.length pruned);
  Alcotest.(check bool) "{1} kept" true
    (List.exists (fun e -> E.op_list e = [ 1 ]) pruned);
  Alcotest.(check bool) "{3} kept (different ops)" true
    (List.exists (fun e -> E.op_list e = [ 3 ]) pruned)

let test_prune_merges_duplicates () =
  let es = [ mk ~lb:2 ~ub:9 [ 1 ]; mk ~sa:1 ~lb:1 ~ub:5 [ 1 ] ] in
  let pruned = E.prune_dominated es in
  Alcotest.(check int) "merged" 1 (List.length pruned);
  let e = List.hd pruned in
  Alcotest.(check int) "min lb" 1 e.E.side_effect_lb;
  Alcotest.(check int) "min ub" 5 e.E.side_effect_ub;
  Alcotest.(check int) "min sa" 0 e.E.sa

let test_pp_with_query () =
  let g = Nrab.Query.Gen.create () in
  let q =
    Nrab.Query.select ~id:7 g Nrab.Expr.True (Nrab.Query.table ~id:1 g "r")
  in
  Alcotest.(check string) "paper-style rendering" "{σ^7}"
    (E.to_string_with_query q (mk ~lb:0 ~ub:0 [ 7 ]))

let () =
  Alcotest.run "explanation"
    [
      ( "ranking",
        [
          Alcotest.test_case "by cardinality" `Quick test_rank_by_cardinality;
          Alcotest.test_case "by side effects" `Quick test_rank_by_side_effects;
          Alcotest.test_case "by schema alternative" `Quick test_rank_by_sa;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "dominance" `Quick test_dominates;
          Alcotest.test_case "prune dominated" `Quick test_prune_dominated;
          Alcotest.test_case "merge duplicates" `Quick test_prune_merges_duplicates;
        ] );
      ("rendering", [ Alcotest.test_case "pp" `Quick test_pp_with_query ]);
    ]
