(** Conseil — the hybrid lineage-based baseline [Herschel, JDIQ 2015].

    Unlike Why-Not it keeps tracing past a picky operator (as if it were
    repaired) and returns the combined set of operators pruning a
    compatible's derivation.  Like Why-Not it performs no re-validation
    and no content check on what the repaired operators would produce —
    in scenario C3 it blames a join whose only "fix" is a cross
    product. *)

(** With [?parent], a [conseil.explain] span (children
    [tracing]/[failure-sets]) is recorded under it. *)
val explanations : ?parent:Obs.Span.t -> Whynot.Question.t -> Explanation_set.t list
