examples/quickstart.mli:
