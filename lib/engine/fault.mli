(** Typed fault taxonomy and retry policy — task-level fault tolerance
    for the mini-DISC engine.

    Spark (the paper's substrate) silently retries failed partition
    tasks and recomputes them from lineage.  Here the lineage of a task
    is its closure plus its input partition, so recomputation is exact:
    {!protect} re-runs the closure on the same input.

    Only exceptions wrapped in {!Transient} are retried; everything
    else — including [Whynot.Cancel.Cancelled] — is a permanent fault
    and propagates on the first attempt.  When a transient fault
    survives every attempt, {!Exhausted} propagates the {e last} fault
    wrapped with task attribution.

    The retry {e decision} path is deterministic: backoff durations are
    a pure function of the task id and the attempt number (capped
    exponential with hash-derived jitter) — no [Random], no wall-clock
    reads — so chaos runs with a deterministic fault schedule are
    exactly reproducible.

    Counters: [engine.task.attempts] (every execution attempt),
    [engine.task.retries] (re-runs after a transient fault),
    [engine.task.exhausted] (tasks that ran out of attempts). *)

(** Wrap an exception to mark it retryable. *)
exception Transient of exn

(** Raised when a task's transient fault survives every attempt;
    [last] is the final fault, unwrapped. *)
exception Exhausted of { task : string; attempts : int; last : exn }

type kind = Transient_fault | Permanent_fault

val classify : exn -> kind

(** Strip one {!Transient} wrapper (identity otherwise). *)
val unwrap : exn -> exn

type policy = {
  max_attempts : int;  (** total attempts, ≥ 1; 1 = no retries *)
  base_backoff_ms : float;
  max_backoff_ms : float;
}

(** One attempt, no retries, no backoff — the default everywhere. *)
val no_retry : policy

(** [retries n] allows [n] retries (so [n + 1] attempts); default
    backoff 1 ms doubling, capped at 50 ms. *)
val retries : ?base_backoff_ms:float -> ?max_backoff_ms:float -> int -> policy

(** Deterministic backoff before re-attempt [attempt + 1]: capped
    exponential scaled by a jitter factor in [0.5, 1.0) derived from
    [(task_id, attempt)]. *)
val backoff_ms : policy -> task_id:int -> attempt:int -> float

(** [protect ~policy ~task ~task_id ~abort ~on_retry f] runs [f],
    re-running it on {!Transient} faults up to [policy.max_attempts]
    total attempts.  [abort] is polled before every re-attempt:
    returning [Some e] raises [e] instead of retrying (how cancellation
    composes with retries).  [on_retry ~attempt last] fires before each
    re-run with the attempt number about to execute (2 for the first
    retry) — used to attribute [attempt=n] on spans.  Permanent faults
    propagate unchanged; exhausted transients raise {!Exhausted}. *)
val protect :
  ?policy:policy ->
  ?task:string ->
  ?task_id:int ->
  ?abort:(unit -> exn option) ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  (unit -> 'a) ->
  'a
