(** All evaluation scenarios: D1–D5 (DBLP), T1–T4 and TASD (Twitter),
    Q1/Q3/Q4/Q6/Q10/Q13 nested and flat (…F suffix, TPC-H), C1–C3
    (crime), and F1/F2 (forestry — queries compiled from the SQL-ish
    surface syntax). *)

val all : Scenario.t list

(** Case-insensitive lookup by scenario name. *)
val find : string -> Scenario.t option
