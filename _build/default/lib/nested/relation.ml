(* Nested relations: a bag of tuples together with its schema, and nested
   databases mapping table names to relations. *)

type t = { schema : Vtype.t; data : Value.t (* always a Bag of Tuples *) }

let make ~schema ~data =
  (match schema with
  | Vtype.TBag (Vtype.TTuple _) -> ()
  | _ -> invalid_arg "Relation.make: schema must be a bag of tuples");
  (match data with
  | Value.Bag _ -> ()
  | _ -> invalid_arg "Relation.make: data must be a bag");
  { schema; data }

let schema r = r.schema
let data r = r.data
let fields r = Vtype.relation_fields r.schema
let attribute_names r = List.map fst (fields r)
let cardinal r = Value.cardinal r.data
let tuples r = Value.expand r.data
let distinct_tuples r = List.map fst (Value.elems r.data)

let of_tuples ~schema tuples =
  make ~schema ~data:(Value.bag_of_list tuples)

let well_typed r = Vtype.has_type r.data r.schema

let pp ppf r =
  Fmt.pf ppf "@[<v>schema: %a@,%a@]" Vtype.pp r.schema Value.pp r.data

module Db = struct
  module M = Map.Make (String)

  type nonrec t = t M.t

  let empty : t = M.empty
  let add name rel (db : t) = M.add name rel db
  let find name (db : t) = M.find_opt name db

  let find_exn name (db : t) =
    match M.find_opt name db with
    | Some r -> r
    | None -> Fmt.invalid_arg "Db.find_exn: unknown table %s" name

  let of_list rels = List.fold_left (fun db (n, r) -> add n r db) empty rels
  let tables (db : t) = M.bindings db
end
