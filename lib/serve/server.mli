(** The why-not explanation service: a dataset {!Catalog}, an LRU
    explanation {!Cache} plus a traced-run handle cache, and a
    {!Scheduler} fanning execution over the shared {!Engine.Pool},
    speaking the line-delimited JSON {!Protocol} over stdin/stdout or a
    Unix/TCP socket.

    Request flow for [explain]: resolve the dataset in the catalog (a
    typed [not_found] if it was never registered), look the full
    ⟨query, dataset version, pattern, options⟩ key up in the explanation
    cache, and on a miss schedule the pipeline run — reusing the
    pattern-independent {!Whynot.Pipeline.handle} for the same
    ⟨query, dataset version, options⟩ when one is cached, so repeated
    questions over the same query pay only the per-pattern phases. *)

type config = {
  cache_capacity : int;  (** explanation cache entries (≤ 0 disables) *)
  handle_capacity : int;  (** traced-run handles kept (≤ 0 disables) *)
  queue_capacity : int;  (** scheduler admission bound *)
  default_deadline_ms : float option;
  parallel : bool;  (** run schema alternatives on the pool *)
  timings : bool;
      (** include wall-clock timings in responses; [false] makes
          responses fully deterministic (the smoke test diffs them) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val config : t -> config

(** Handle one already-parsed request.  Never raises: pipeline and
    catalog failures come back as typed error responses. *)
val handle_request : t -> Protocol.request -> Protocol.response

(** Parse one request line, dispatch, serialize the response line (no
    trailing newline).  The second component is [true] when the request
    was [shutdown] and the session loop should end. *)
val handle_line : t -> string -> string * bool

(** Serve line-delimited requests until EOF or [shutdown].  Responses
    are flushed after every line (the transcript is pipe-friendly:
    [printf '...' | whynot_server --stdio]). *)
val serve_channels : t -> in_channel -> out_channel -> unit

(** Listen on a Unix-domain socket (the path is unlinked first), one
    thread per connection; never returns. *)
val serve_unix : t -> path:string -> unit

(** Listen on TCP [host:port] (default host 127.0.0.1), one thread per
    connection; never returns. *)
val serve_tcp : ?host:string -> t -> port:int -> unit
