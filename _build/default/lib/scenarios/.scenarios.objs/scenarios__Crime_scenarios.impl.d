lib/scenarios/crime_scenarios.ml: Datagen Expr Nrab Query Scenario Whynot
