lib/baselines/lineage.ml: Hashtbl Int List Nested Nrab Option Query Set String Whynot
