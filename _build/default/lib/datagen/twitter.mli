(** Synthetic Twitter-like data for scenarios T1–T4 and T_ASD.

    Reproduces the structural quirks the paper's Twitter scenarios rely
    on: media URLs in [extended_entities] while [entities.media] is empty
    (T1/T3); the tweet's place country differing from the user's
    normalized location country (T2/T4); and the retweet/quote ambiguity
    with two identically shaped, mutually null status records (T_ASD). *)

open Nested

(** {1 Schemas} *)

val media_schema : Vtype.t
val tweets_media_schema : Vtype.t
val mentions_schema : Vtype.t
val loc_schema : Vtype.t
val tweets_geo_schema : Vtype.t
val status_schema : Vtype.t
val tweets_asd_schema : Vtype.t

(** {1 Target entities of the why-not questions} *)

val t1_target_text : string
val t1_target_url : string
val t2_target_user : string
val t3_target_user : string
val t3_target_url : string
val t4_target_tag : string
val tasd_target_rid : string

(** Tables: [tweets_media], [mentions], [tweets_geo], [tweets_asd]. *)
val db : ?seed:int -> scale:int -> unit -> Relation.Db.t
