lib/core/alternatives.ml: Expr Fmt Hashtbl List Logs Nested Nrab Opset Option Path Query String Typecheck Vtype
