lib/nested/relation.mli: Format Value Vtype
