lib/baselines/lineage.mli: Hashtbl Int Nrab Query Set String Whynot
