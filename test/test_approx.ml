(* Exact-vs-approximate agreement.

   The budget ladder must degrade, never corrupt: an unlimited budget
   (or a fully-off config) renders byte-identical to an exact run, a
   top-k cutoff at or above the result size is the full ranking, and
   sampled runs carry honest confidences — at most 1.0, monotonically
   non-increasing in the stride — identically on both engines. *)

let with_engine row f =
  let saved = Engine.Columnar.row_engine () in
  Engine.Columnar.set_row_engine row;
  Fun.protect ~finally:(fun () -> Engine.Columnar.set_row_engine saved) f

let render (q : Nrab.Query.t) (rp : Whynot.Pipeline.result) =
  String.concat "\n"
    (List.map
       (fun (e : Whynot.Explanation.t) ->
         Fmt.str "%s lb=%d ub=%d sa=%d conf=%s"
           (Whynot.Explanation.to_string_with_query q e)
           e.Whynot.Explanation.side_effect_lb
           e.Whynot.Explanation.side_effect_ub e.Whynot.Explanation.sa
           (match e.Whynot.Explanation.confidence with
           | None -> "-"
           | Some c -> Fmt.str "%.4f" c))
       rp.Whynot.Pipeline.explanations)

let approx cfg = Whynot.Approx.start cfg

let sampled stride =
  { Whynot.Approx.exact with Whynot.Approx.sample_stride = Some stride }

let scenario_runs f =
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      let inst = s.Scenarios.Scenario.make ~scale:1 () in
      let phi = inst.Scenarios.Scenario.question in
      let explain ?approx () =
        Whynot.Pipeline.explain ?approx
          ~alternatives:inst.Scenarios.Scenario.alternatives phi
      in
      f s.Scenarios.Scenario.name phi.Whynot.Question.query explain)
    Scenarios.Registry.all

(* no budget, unlimited budget, and an all-off config are the same run *)
let test_unlimited_budget_is_exact () =
  scenario_runs (fun name q explain ->
      let reference = render q (explain ()) in
      let unlimited =
        approx
          {
            Whynot.Approx.exact with
            Whynot.Approx.budget_ms = Some 3.6e6 (* an hour: never burns *);
          }
      in
      Alcotest.(check string)
        (name ^ ": unlimited budget is byte-identical")
        reference
        (render q (explain ~approx:unlimited ()));
      Alcotest.(check string)
        (name ^ ": all-off config is byte-identical")
        reference
        (render q (explain ~approx:(approx Whynot.Approx.exact) ()));
      match (explain ~approx:unlimited ()).Whynot.Pipeline.approx with
      | Some r ->
        Alcotest.(check string) (name ^ ": mode is exact") "exact"
          r.Whynot.Approx.mode;
        Alcotest.(check (float 0.0)) (name ^ ": confidence 1") 1.0
          r.Whynot.Approx.confidence;
        Alcotest.(check int) (name ^ ": nothing skipped") 0
          r.Whynot.Approx.skipped
      | None -> ())

(* a top-k cutoff at (or above) the result size is the full ranking *)
let test_topk_at_size_is_full_ranking () =
  scenario_runs (fun name q explain ->
      let exact = explain () in
      let n = List.length exact.Whynot.Pipeline.explanations in
      let at k =
        explain
          ~approx:
            (approx { Whynot.Approx.exact with Whynot.Approx.top_k = Some k })
          ()
      in
      List.iter
        (fun k ->
          let r = at k in
          Alcotest.(check string)
            (Fmt.str "%s: top-%d of %d is the full ranking" name k n)
            (render q exact) (render q r);
          match r.Whynot.Pipeline.approx with
          | Some rep ->
            Alcotest.(check (option int))
              (name ^ ": report names the cutoff")
              (Some k) rep.Whynot.Approx.top_k
          | None -> Alcotest.fail (name ^ ": top-k run must carry a report"))
        [ n; n + 3 ];
      (* a genuine cutoff keeps exactly the k best, and they are a
         prefix of the exact ranking *)
      if n > 1 then begin
        let r = at 1 in
        let kept = r.Whynot.Pipeline.explanations in
        Alcotest.(check int) (name ^ ": top-1 keeps one") 1 (List.length kept);
        match (kept, exact.Whynot.Pipeline.explanations) with
        | e :: _, best :: _ ->
          Alcotest.(check string)
            (name ^ ": top-1 is the exact winner")
            (Whynot.Explanation.to_string_with_query q best)
            (Whynot.Explanation.to_string_with_query q e)
        | _ -> Alcotest.fail (name ^ ": empty ranking")
      end)

(* sampled confidences: at most 1, stamped from the stride, and
   non-increasing as the stride grows *)
let test_confidence_bounds_and_monotonicity () =
  scenario_runs (fun name _q explain ->
      let confidence stride =
        let r = explain ~approx:(approx (sampled stride)) () in
        List.iter
          (fun (e : Whynot.Explanation.t) ->
            match e.Whynot.Explanation.confidence with
            | Some c ->
              Alcotest.(check bool)
                (Fmt.str "%s: confidence %g in (0,1]" name c)
                true
                (c > 0.0 && c <= 1.0)
            | None ->
              if stride > 1 then
                Alcotest.fail
                  (name ^ ": sampled explanations must carry a confidence"))
          r.Whynot.Pipeline.explanations;
        match r.Whynot.Pipeline.approx with
        | Some rep ->
          Alcotest.(check bool)
            (name ^ ": report confidence in (0,1]")
            true
            (rep.Whynot.Approx.confidence > 0.0
            && rep.Whynot.Approx.confidence <= 1.0);
          rep.Whynot.Approx.confidence
        | None -> 1.0
      in
      let cs = List.map confidence [ 1; 2; 4; 8 ] in
      let rec check_monotone = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool)
            (Fmt.str "%s: confidence non-increasing (%g >= %g)" name a b)
            true (a >= b);
          check_monotone rest
        | _ -> ()
      in
      check_monotone cs)

(* stride sampling keys on global row ids, which both engines allocate
   identically — sampled runs are engine-deterministic too *)
let test_sampled_runs_engine_identical () =
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      let inst = s.Scenarios.Scenario.make ~scale:1 () in
      let phi = inst.Scenarios.Scenario.question in
      let q = phi.Whynot.Question.query in
      let run row =
        with_engine row (fun () ->
            render q
              (Whynot.Pipeline.explain
                 ~approx:(approx (sampled 3))
                 ~alternatives:inst.Scenarios.Scenario.alternatives phi))
      in
      Alcotest.(check string)
        (s.Scenarios.Scenario.name ^ ": sampled row = columnar")
        (run true) (run false))
    Scenarios.Registry.all

let () =
  Alcotest.run "approx"
    [
      ( "agreement",
        [
          Alcotest.test_case "unlimited budget is exact" `Quick
            test_unlimited_budget_is_exact;
          Alcotest.test_case "top-k at size is the full ranking" `Quick
            test_topk_at_size_is_full_ranking;
          Alcotest.test_case "confidence bounds and monotonicity" `Quick
            test_confidence_bounds_and_monotonicity;
          Alcotest.test_case "sampled runs engine-identical" `Quick
            test_sampled_runs_engine_identical;
        ] );
    ]
