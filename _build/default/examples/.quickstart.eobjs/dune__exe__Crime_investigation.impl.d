examples/crime_investigation.ml: Baselines Fmt List Nrab Option Scenarios String Whynot
