(* Conseil — the hybrid lineage-based baseline [Herschel, JDIQ 2015].

   Unlike Why-Not, Conseil keeps tracing past a picky operator (as if it
   were repaired) and returns the *combined* set of operators that prune
   successors of a compatible on its way to the output.  Like Why-Not it
   performs no re-validation downstream of flattening and no content check
   on what the repaired operators would actually produce — in scenario C3
   it reports a join that could only be "fixed" by a cross product. *)

module Int_set = Set.Make (Int)

let explanations ?parent (phi : Whynot.Question.t) : Explanation_set.t list =
  Obs.Span.with_ ?parent "conseil.explain" @@ fun root ->
  let info =
    Obs.Span.with_ ~parent:root "tracing" (fun _ ->
        Lineage.original_trace phi)
  in
  Obs.Span.with_ ~parent:root "failure-sets" @@ fun _ ->
  let q = info.Lineage.query in
  (* follow successors also through rows that only a repair admits *)
  let successor = Lineage.successor_rids ~surviving_only:false info in
  let fs = Whynot.Msr.failure_sets info.Lineage.trace in
  let candidate_roots =
    List.filter
      (fun (r : Whynot.Tracing.trow) ->
        Hashtbl.mem successor r.Whynot.Tracing.rid)
      (Whynot.Tracing.root_rows info.Lineage.trace)
  in
  let sets =
    List.fold_left
      (fun acc (r : Whynot.Tracing.trow) ->
        Whynot.Msr.Set_set.fold
          (fun s acc -> if Int_set.is_empty s then acc else s :: acc)
          (fs r.Whynot.Tracing.rid)
          acc)
      [] candidate_roots
  in
  match
    List.sort (fun a b -> compare (Int_set.cardinal a) (Int_set.cardinal b)) sets
  with
  | smallest :: _ ->
    (* the smallest operator set along a compatible's derivation *)
    [ Explanation_set.make q smallest ]
  | [] -> (
    (* no compatible derivation reaches the output even under relaxation:
       report the operators where the successors die *)
    match Lineage.picky_ops ~surviving_only:false info successor with
    | [] -> []
    | picky -> [ Explanation_set.make q (Int_set.of_list picky) ])
