(* Synthetic DBLP-like data for scenarios D1–D5.

   The generator reproduces the structural properties the paper's DBLP
   scenarios depend on:
   - proceedings whose [ptitle] spells the conference name out in full
     while [pbooktitle] carries the short form ("SIGMOD '19") — D1;
   - [bibtex] records that are null for >99 % of entries while [fulltext]
     is populated — D2;
   - entries where a person appears as *editor* but not as author — D3;
   - publications whose publisher and series disagree ("ACM" appears in
     the series, not the publisher) — D4;
   - author sites whose homepage URL is stored in the [note] attribute
     with a null [url], a known quirk of DBLP — D5.

   Target entities (the missing answers the scenarios ask about) are
   embedded deterministically; filler volume scales with [scale]. *)

open Nested

let str s = Value.String s
let int i = Value.Int i
let tup fields = Value.Tuple fields
let bag = Value.bag_of_list

let venues = [ "SIGMOD"; "VLDB"; "ICDE"; "EDBT"; "CIKM"; "PODS" ]

let venue_long = function
  | "SIGMOD" -> "Proceedings of the International Conference on Management of Data"
  | "VLDB" -> "Proceedings of the VLDB Endowment"
  | "ICDE" -> "Proceedings of the International Conference on Data Engineering"
  | "EDBT" -> "Proceedings of the Conference on Extending Database Technology"
  | "CIKM" -> "Proceedings of the Conference on Information and Knowledge Management"
  | v -> "Proceedings of " ^ v

let first_names =
  [ "Alice"; "Carlos"; "Dana"; "Erik"; "Fatima"; "Igor"; "Jun"; "Lena";
    "Marco"; "Nadia"; "Omar"; "Priya"; "Quentin"; "Rosa"; "Tariq"; "Wei" ]

let last_names =
  [ "Schmidt"; "Garcia"; "Chen"; "Okafor"; "Dubois"; "Novak"; "Haddad";
    "Kim"; "Rossi"; "Tanaka"; "Iyer"; "Kowalski" ]

let person g = Prng.pick g first_names ^ " " ^ Prng.pick g last_names

(* --- D1: inproceedings × proceedings ------------------------------------ *)

let inproceedings_schema =
  Vtype.relation
    [
      ("ikey", Vtype.TString);
      ("title", Vtype.TTuple [ ("text", Vtype.TString); ("subtitle", Vtype.TString) ]);
      ("authors", Vtype.relation [ ("name", Vtype.TString) ]);
      ("crossref", Vtype.TString);
    ]

let proceedings_schema =
  Vtype.relation
    [
      ("pkey", Vtype.TString);
      ("ptitle", Vtype.TString);
      ("pbooktitle", Vtype.TString);
    ]

(* D1 target: this paper appeared at SIGMOD 2019, whose [ptitle] does not
   contain the string "SIGMOD". *)
let d1_missing_title = "Holistic Explanations for Missing Answers"
let d1_missing_author = "Ralf D."

let gen_d1 g ~scale =
  let n_proc = 4 * scale and papers_per_proc = 6 in
  let procs =
    List.init n_proc (fun i ->
        let venue = Prng.pick g venues in
        let year = Prng.range g ~lo:2015 ~hi:2021 in
        let pkey = Fmt.str "conf/%s/%d-%d" (String.lowercase_ascii venue) year i in
        (* some proceedings spell the venue in the long title as well — they
           feed the non-empty original result *)
        let ptitle =
          if Prng.bool g ~p:0.3 then Fmt.str "%s %d Companion" venue year
          else Fmt.str "%s %d" (venue_long venue) year
        in
        let pbooktitle = Fmt.str "%s '%02d" venue (year mod 100) in
        (pkey, venue, ptitle, pbooktitle))
  in
  let sigmod19 =
    ( "conf/sigmod/2019-target", "SIGMOD",
      venue_long "SIGMOD" ^ " 2019", "SIGMOD '19" )
  in
  let procs = sigmod19 :: procs in
  let inprocs =
    List.concat_map
      (fun (pkey, _, _, _) ->
        List.init papers_per_proc (fun j ->
            tup
              [
                ("ikey", str (Fmt.str "%s/p%d" pkey j));
                ( "title",
                  tup
                    [
                      ("text", str (Fmt.str "Paper %d of %s" j pkey));
                      ("subtitle", str "");
                    ] );
                ( "authors",
                  bag (List.init (Prng.range g ~lo:1 ~hi:3) (fun _ ->
                           tup [ ("name", str (person g)) ])) );
                ("crossref", str pkey);
              ]))
      procs
  in
  let target_paper =
    tup
      [
        ("ikey", str "conf/sigmod/2019-target/epic");
        ( "title",
          tup [ ("text", str d1_missing_title); ("subtitle", str "") ] );
        ( "authors",
          bag [ tup [ ("name", str d1_missing_author) ] ] );
        ("crossref", str "conf/sigmod/2019-target");
      ]
  in
  let proc_tuples =
    List.map
      (fun (pkey, _, ptitle, pbooktitle) ->
        tup
          [ ("pkey", str pkey); ("ptitle", str ptitle); ("pbooktitle", str pbooktitle) ])
      procs
  in
  ( Relation.of_tuples ~schema:inproceedings_schema (target_paper :: inprocs),
    Relation.of_tuples ~schema:proceedings_schema proc_tuples )

(* --- D2: articles with mostly-null bibtex -------------------------------- *)

let articles_schema =
  Vtype.relation
    [
      ("authors", Vtype.relation [ ("name", Vtype.TString) ]);
      ("bibtex", Vtype.TTuple [ ("content", Vtype.TString) ]);
      ("fulltext", Vtype.TTuple [ ("content", Vtype.TString) ]);
    ]

let d2_target_author = "Bora Keller"
let d2_target_article_count = 6

let gen_d2 g ~scale =
  let n = 40 * scale in
  let article ~author ~idx ~with_bibtex =
    tup
      [
        ("authors", bag [ tup [ ("name", str author) ] ]);
        ( "bibtex",
          if with_bibtex then
            tup [ ("content", str (Fmt.str "@article{%s-%d}" author idx)) ]
          else Value.Null );
        ("fulltext", tup [ ("content", str (Fmt.str "Article %d by %s" idx author)) ]);
      ]
  in
  let fillers =
    List.init n (fun i ->
        (* >99 % of bibtex entries are null in DBLP *)
        article ~author:(person g) ~idx:i ~with_bibtex:(Prng.bool g ~p:0.01))
  in
  let targets =
    List.init d2_target_article_count (fun i ->
        article ~author:d2_target_author ~idx:i ~with_bibtex:false)
  in
  Relation.of_tuples ~schema:articles_schema (targets @ fillers)

(* --- D3: entries with authors and editors -------------------------------- *)

let entries_schema =
  Vtype.relation
    [
      ("meta", Vtype.TTuple [ ("booktitle", Vtype.TString); ("year", Vtype.TInt) ]);
      ("author", Vtype.TString);
      ("editor", Vtype.TString);
      ("ptitle", Vtype.TString);
    ]

let d3_target_person = "Eva Maler"
let d3_target_booktitle = "VLDB"
let d3_target_year = 2019

let gen_d3 g ~scale =
  let n = 30 * scale in
  let entry booktitle year author editor ptitle =
    tup
      [
        ("meta", tup [ ("booktitle", str booktitle); ("year", int year) ]);
        ("author", str author);
        ("editor", str editor);
        ("ptitle", str ptitle);
      ]
  in
  let fillers =
    List.init n (fun i ->
        entry (Prng.pick g venues)
          (Prng.range g ~lo:2015 ~hi:2021)
          (person g) (person g)
          (Fmt.str "Entry %d" i))
  in
  (* the target person edited — but never authored — at VLDB 2019 *)
  let target =
    entry d3_target_booktitle d3_target_year (person g) d3_target_person
      "Edited Volume on Provenance"
  in
  Relation.of_tuples ~schema:entries_schema (target :: fillers)

(* --- D4: publications joined with publisher info -------------------------- *)

let ipubs_schema =
  Vtype.relation
    [
      ("authors", Vtype.relation [ ("name", Vtype.TString) ]);
      ("ptitle", Vtype.TString);
      ("year", Vtype.TInt);
      ("pcrossref", Vtype.TString);
    ]

let pubinfo_schema =
  Vtype.relation
    [
      ("pkey", Vtype.TString);
      ("publisher", Vtype.TTuple [ ("plabel", Vtype.TString) ]);
      ("series", Vtype.TTuple [ ("plabel", Vtype.TString) ]);
    ]

let d4_target_author = "Frank Ott"

let gen_d4 g ~scale =
  let publishers = [ "ACM"; "IEEE"; "Springer"; "Elsevier" ] in
  let n_info = 10 * scale in
  let info pkey publisher series =
    tup
      [
        ("pkey", str pkey);
        ("publisher", tup [ ("plabel", str publisher) ]);
        ("series", tup [ ("plabel", str series) ]);
      ]
  in
  let infos =
    List.init n_info (fun i ->
        info (Fmt.str "pub-%d" i) (Prng.pick g publishers) (Prng.pick g publishers))
  in
  (* target publication records: the "ACM" value sits in the series *)
  let infos =
    info "pub-frank-a" "IEEE" "IEEE CS" (* pub1: wrong everywhere *)
    :: info "pub-frank-b" "Springer" "ACM" (* pub2: ACM in the series *)
    :: info "pub-frank-c" "Elsevier" "LNCS" (* pub3: wrong everywhere *)
    :: infos
  in
  let pub ~author ~title ~year ~crossref =
    tup
      [
        ("authors", bag [ tup [ ("name", str author) ] ]);
        ("ptitle", str title);
        ("year", int year);
        ("pcrossref", str crossref);
      ]
  in
  let fillers =
    List.init (20 * scale) (fun i ->
        pub ~author:(person g)
          ~title:(Fmt.str "Pub %d" i)
          ~year:(Prng.range g ~lo:2008 ~hi:2021)
          ~crossref:(Fmt.str "pub-%d" (Prng.int g n_info)))
  in
  let targets =
    [
      pub ~author:d4_target_author ~title:"Old ACM-series work" ~year:2012
        ~crossref:"pub-frank-b";
      pub ~author:d4_target_author ~title:"Recent IEEE work" ~year:2016
        ~crossref:"pub-frank-a";
      pub ~author:d4_target_author ~title:"Older LNCS work" ~year:2011
        ~crossref:"pub-frank-c";
    ]
  in
  ( Relation.of_tuples ~schema:ipubs_schema (targets @ fillers),
    Relation.of_tuples ~schema:pubinfo_schema infos )

(* --- D5: author homepages -------------------------------------------------*)

let authors_schema =
  Vtype.relation
    [
      ("person", Vtype.TTuple [ ("aname", Vtype.TString) ]);
      ( "sites",
        Vtype.relation [ ("url", Vtype.TString); ("note", Vtype.TString) ] );
    ]

let d5_target_author = "Grace Lindgren"
let d5_target_url = "http://grace-lindgren.example.org"

let gen_d5 g ~scale =
  let n = 25 * scale in
  let author name sites =
    tup [ ("person", tup [ ("aname", str name) ]); ("sites", bag sites) ]
  in
  let site ?(url = Value.Null) ?(note = Value.Null) () =
    tup [ ("url", url); ("note", note) ]
  in
  let fillers =
    List.init n (fun i ->
        let name = person g in
        let sites =
          if Prng.bool g ~p:0.3 then []
          else
            [
              site ~url:(str (Fmt.str "http://author%d.example.org" i)) ();
            ]
        in
        author name sites)
  in
  (* DBLP quirk: the homepage URL is stored in [note], [url] is null *)
  let target =
    author d5_target_author [ site ~note:(str d5_target_url) () ]
  in
  Relation.of_tuples ~schema:authors_schema (target :: fillers)

(* --- Assembled database --------------------------------------------------- *)

let db ?(seed = 42) ~scale () : Relation.Db.t =
  let g = Prng.create ~seed in
  let inproc, proc = gen_d1 g ~scale in
  let articles = gen_d2 g ~scale in
  let entries = gen_d3 g ~scale in
  let ipubs, pubinfo = gen_d4 g ~scale in
  let authors = gen_d5 g ~scale in
  Relation.Db.of_list
    [
      ("inproceedings", inproc);
      ("proceedings", proc);
      ("articles", articles);
      ("entries", entries);
      ("ipubs", ipubs);
      ("pubinfo", pubinfo);
      ("authors", authors);
    ]
