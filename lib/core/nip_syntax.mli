(** Surface syntax for why-not patterns (NIPs).

    The running example's question reads
    [(tuple (city (str NY)) (nList (bag ? STAR)))] where STAR is the
    literal asterisk atom.

    Grammar:
    - [?] — the instance placeholder
    - [123], [1.5], [true] — primitive constants; bare words are strings
    - [(str TEXT)] — explicit string constant
    - [(null)] — the null value
    - [(CMP CONST)] with [CMP ∈ = != < <= > >=] — predicate placeholder
    - [(tuple (NAME nip) ...)] — field constraints
    - [(bag nip ... *?)] — element patterns; a trailing [*] atom is the
      multiplicity placeholder *)

exception Parse_error of string

val of_sexp : Nrab.Sexp.t -> Nip.t
val to_sexp : Nip.t -> Nrab.Sexp.t

(** Raises {!Parse_error}. *)
val of_string : string -> Nip.t

(** Like {!of_string}, but every failure — lexical or structural —
    comes back as a span-carrying [Frontend.Diagnostic.t] (stage
    [`Pattern]), rendering uniformly with query diagnostics. *)
val parse : string -> (Nip.t, Frontend.Diagnostic.t) result

val to_string : Nip.t -> string
