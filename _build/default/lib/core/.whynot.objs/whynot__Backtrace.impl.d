lib/core/backtrace.ml: Expr List Nested Nip Nrab Option Query String Typecheck Vtype
