(* End-to-end checks on the paper's running example (Figures 1–7):
   person table, query N^R(π(σ(F^I(person)))), why-not question "why is NY
   (with some person) missing?".  Expected explanations (Examples 9/10/19):
   {σ} and {F, σ}. *)

open Nested
open Nrab

let address_schema =
  Vtype.TBag (Vtype.TTuple [ ("city", Vtype.TString); ("year", Vtype.TInt) ])

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", address_schema);
      ("address2", address_schema);
    ]

let addr city year =
  Value.Tuple [ ("city", Value.String city); ("year", Value.Int year) ]

let person name a1 a2 =
  Value.Tuple
    [
      ("name", Value.String name);
      ("address1", Value.bag_of_list a1);
      ("address2", Value.bag_of_list a2);
    ]

let peter =
  person "Peter"
    [ addr "NY" 2010; addr "LA" 2019; addr "LV" 2017 ]
    [ addr "LA" 2010; addr "SF" 2018 ]

let sue =
  person "Sue" [ addr "LA" 2019; addr "NY" 2018 ] [ addr "LA" 2019; addr "NY" 2018 ]

let db =
  Relation.Db.of_list
    [ ("person", Relation.of_tuples ~schema:person_schema [ peter; sue ]) ]

(* Query ids: 1 = table, 2 = flatten, 3 = select, 4 = project, 5 = nest *)
let query =
  let g = Query.Gen.create () in
  let year_ge_2019 = Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019) in
  Query.nest_rel g [ "name" ] ~into:"nList"
    (Query.project_attrs g [ "name"; "city" ]
       (Query.select g year_ge_2019
          (Query.flatten_inner g "address2" (Query.table g "person"))))

let ids =
  let ops = Query.operators query in
  List.map (fun (op : Query.t) -> (Query.op_symbol op.Query.node, op.Query.id)) ops

let id_of symbol = List.assoc symbol ids

let missing =
  Whynot.Nip.tup [ ("city", Whynot.Nip.str "NY"); ("nList", Whynot.Nip.some_element) ]

let phi = Whynot.Question.make ~query ~db ~missing

let alternatives : Whynot.Alternatives.alternatives =
  [ ("person", [ [ "address2" ]; [ "address1" ] ]) ]

let test_original_result () =
  let result = Eval.eval db query in
  Alcotest.(check int) "one result tuple" 1 (Relation.cardinal result);
  let t = List.hd (Relation.tuples result) in
  Alcotest.(check string)
    "the LA tuple" "⟨city: \"LA\", nList: {{⟨name: \"Sue\"⟩}}⟩"
    (Value.to_string t)

let test_question_proper () =
  Alcotest.(check bool) "NY is really missing" true (Whynot.Question.is_proper phi)

let test_schema_alternatives () =
  let env = [ ("person", person_schema) ] in
  let sas = Whynot.Alternatives.enumerate ~env query alternatives in
  (* Figure 3: exactly two SAs survive pruning *)
  Alcotest.(check int) "two SAs" 2 (List.length sas);
  let s2 = List.nth sas 1 in
  Alcotest.(check int)
    "S2 changes exactly the flatten operator" 1
    (Whynot.Msr.Int_set.cardinal s2.Whynot.Alternatives.changed_ops)

let explanation_sets result =
  List.map
    (fun e -> Whynot.Explanation.op_list e)
    result.Whynot.Pipeline.explanations

let test_explanations_with_sas () =
  let result = Whynot.Pipeline.explain ~alternatives phi in
  let sets = explanation_sets result in
  let sigma = id_of "σ" and flat = id_of "Fᴵ" in
  Alcotest.(check (list (list int)))
    "explanations are {σ} then {F, σ}"
    [ [ sigma ]; List.sort compare [ flat; sigma ] ]
    sets

let test_explanations_without_sas () =
  let result = Whynot.Pipeline.explain ~use_sas:false phi in
  let sets = explanation_sets result in
  let sigma = id_of "σ" in
  Alcotest.(check (list (list int))) "RPnoSA finds only {σ}" [ [ sigma ] ] sets

let () =
  Alcotest.run "running-example"
    [
      ( "figure-1",
        [
          Alcotest.test_case "original result" `Quick test_original_result;
          Alcotest.test_case "question is proper" `Quick test_question_proper;
          Alcotest.test_case "schema alternatives" `Quick test_schema_alternatives;
          Alcotest.test_case "explanations (RP)" `Quick test_explanations_with_sas;
          Alcotest.test_case "explanations (RPnoSA)" `Quick
            test_explanations_without_sas;
        ] );
    ]
