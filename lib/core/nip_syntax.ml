(* Surface syntax for why-not patterns (NIPs), e.g. the running example's
   question reads:  ⟨tuple ⟨city (str NY)⟩ ⟨nList (bag ? star)⟩⟩ with the
   usual parentheses.

   Grammar:
     nip    := ?                       instance placeholder
             | 123 | 1.5               primitive constants
             | (str TEXT)              string constant
             | (null)                  the null value
             | (CMP CONST)             predicate placeholder, CMP one of = != < <= > >=
             | (tuple (NAME nip) ...)  field constraints
             | (bag nip ... star?)     element patterns; a trailing "*" atom
                                       is the multiplicity placeholder      *)

open Nested
open Nrab

exception Parse_error = Sexp.Parse_error

let fail = Sexp.fail

let const_of_atom (a : string) : Value.t =
  match int_of_string_opt a with
  | Some i -> Value.Int i
  | None -> (
    match float_of_string_opt a with
    | Some f when String.contains a '.' -> Value.Float f
    | _ -> (
      match a with
      | "true" -> Value.Bool true
      | "false" -> Value.Bool false
      | s -> Value.String s))

let cmp_of_string = function
  | "=" -> Some Expr.Eq
  | "!=" -> Some Expr.Neq
  | "<" -> Some Expr.Lt
  | "<=" -> Some Expr.Le
  | ">" -> Some Expr.Gt
  | ">=" -> Some Expr.Ge
  | _ -> None

(* Span-carrying parse over [Sexp.spanned]; [of_sexp] keeps the legacy
   message-only behavior by parsing with dummy spans. *)

exception Nerr of int * int * string

let nerr ~left ~right fmt = Fmt.kstr (fun m -> raise (Nerr (left, right, m))) fmt

let rec of_spanned (s : Sexp.spanned) : Nip.t =
  match s.Sexp.node with
  | Sexp.SAtom "?" -> Nip.Any
  | Sexp.SAtom a -> Nip.Prim (const_of_atom a)
  | Sexp.SList els -> (
    match els with
    | [ { Sexp.node = Sexp.SAtom "str"; _ }; { Sexp.node = Sexp.SAtom text; _ } ]
      ->
      Nip.Prim (Value.String text)
    | [ { Sexp.node = Sexp.SAtom "null"; _ } ] -> Nip.Prim Value.Null
    | [ { Sexp.node = Sexp.SAtom op; _ }; { Sexp.node = Sexp.SAtom c; _ } ]
      when cmp_of_string op <> None ->
      Nip.Pred (Option.get (cmp_of_string op), const_of_atom c)
    | { Sexp.node = Sexp.SAtom "tuple"; _ } :: fields ->
      let field (f : Sexp.spanned) =
        match f.Sexp.node with
        | Sexp.SList [ { Sexp.node = Sexp.SAtom name; _ }; p ] ->
          (name, of_spanned p)
        | _ ->
          nerr ~left:f.Sexp.left ~right:f.Sexp.right "invalid tuple field %s"
            (Sexp.to_string (Sexp.strip f))
      in
      Nip.Tup (List.map field fields)
    | { Sexp.node = Sexp.SAtom "bag"; _ } :: elements ->
      let is_star (e : Sexp.spanned) = e.Sexp.node = Sexp.SAtom "*" in
      let star = List.exists is_star elements in
      let elements = List.filter (fun e -> not (is_star e)) elements in
      Nip.Bag (List.map of_spanned elements, star)
    | _ ->
      nerr ~left:s.Sexp.left ~right:s.Sexp.right "invalid why-not pattern %s"
        (Sexp.to_string (Sexp.strip s)))

let rec dummy_span (s : Sexp.t) : Sexp.spanned =
  match s with
  | Sexp.Atom a -> { Sexp.node = Sexp.SAtom a; left = 0; right = 0 }
  | Sexp.List els ->
    { Sexp.node = Sexp.SList (List.map dummy_span els); left = 0; right = 0 }

let of_sexp (s : Sexp.t) : Nip.t =
  try of_spanned (dummy_span s) with Nerr (_, _, m) -> raise (Parse_error m)

let cmp_to_string = function
  | Expr.Eq -> "="
  | Expr.Neq -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

let rec to_sexp (p : Nip.t) : Sexp.t =
  match p with
  | Nip.Any -> Sexp.Atom "?"
  | Nip.Prim (Value.Int i) -> Sexp.Atom (string_of_int i)
  | Nip.Prim (Value.Float f) -> Sexp.Atom (Fmt.str "%F" f)
  | Nip.Prim (Value.Bool b) -> Sexp.Atom (string_of_bool b)
  | Nip.Prim (Value.String s) -> Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ]
  | Nip.Prim Value.Null -> Sexp.List [ Sexp.Atom "null" ]
  | Nip.Prim v -> fail "cannot print constant %a" Value.pp v
  | Nip.Pred (c, v) ->
    Sexp.List
      [
        Sexp.Atom (cmp_to_string c);
        (match to_sexp (Nip.Prim v) with
        | Sexp.Atom a -> Sexp.Atom a
        | other -> other);
      ]
  | Nip.Tup fields ->
    Sexp.List
      (Sexp.Atom "tuple"
      :: List.map (fun (l, fp) -> Sexp.List [ Sexp.Atom l; to_sexp fp ]) fields)
  | Nip.Bag (elements, star) ->
    Sexp.List
      ((Sexp.Atom "bag" :: List.map to_sexp elements)
      @ if star then [ Sexp.Atom "*" ] else [])

let of_string (s : string) : Nip.t = of_sexp (Sexp.of_string s)
let to_string (p : Nip.t) : string = Sexp.to_string (to_sexp p)

let parse (s : string) : (Nip.t, Frontend.Diagnostic.t) result =
  try Ok (of_spanned (Sexp.of_string_spanned s)) with
  | Nerr (left, right, message) ->
    Error
      (Frontend.Diagnostic.make
         ~span:{ Frontend.Diagnostic.left; right }
         `Pattern message)
  | Sexp.Parse_error_at { offset; message } ->
    Error
      (Frontend.Diagnostic.make
         ~span:{ Frontend.Diagnostic.left = offset; right = offset + 1 }
         `Pattern message)
  | Sexp.Parse_error message ->
    Error (Frontend.Diagnostic.make `Pattern message)
