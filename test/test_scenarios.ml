(* All 25 evaluation scenarios: the why-not question must be proper, the
   gold-standard explanation must be found by RP, and the qualitative
   relationships of Table 7 must hold (WN++ ⊑ RPnoSA ⊑ RP in explanatory
   power; SA-only scenarios yield nothing without SAs). *)

let scale = 1

let instance_of (s : Scenarios.Scenario.t) = s.Scenarios.Scenario.make ~scale ()

let sorted xs = List.sort compare (List.map (List.sort compare) xs)

let run_all (s : Scenarios.Scenario.t) =
  let inst = instance_of s in
  let phi = inst.Scenarios.Scenario.question in
  let rp =
    Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives phi
  in
  let rpnosa = Whynot.Pipeline.explain ~use_sas:false phi in
  let wnpp = Baselines.Wnpp.explanations phi in
  (phi, rp, rpnosa, wnpp)

let test_proper (s : Scenarios.Scenario.t) () =
  let inst = instance_of s in
  (match Whynot.Question.check_missing inst.Scenarios.Scenario.question with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "ill-formed why-not pattern: %s" msg);
  Alcotest.(check bool) "question is proper" true
    (Whynot.Question.is_proper inst.Scenarios.Scenario.question)

let test_gold_found (s : Scenarios.Scenario.t) () =
  let inst = instance_of s in
  match inst.Scenarios.Scenario.gold with
  | None -> ()
  | Some gold ->
    let phi = inst.Scenarios.Scenario.question in
    let rp =
      Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives phi
    in
    let sets = sorted (Whynot.Pipeline.explanation_sets rp) in
    List.iter
      (fun g ->
        Alcotest.(check bool)
          (Fmt.str "gold {%s} found" (String.concat "," (List.map string_of_int g)))
          true
          (List.mem (List.sort compare g) sets))
      gold

let test_rp_superset (s : Scenarios.Scenario.t) () =
  let _, rp, rpnosa, wnpp = run_all s in
  let n_rp = List.length rp.Whynot.Pipeline.explanations in
  let n_rpnosa = List.length rpnosa.Whynot.Pipeline.explanations in
  let n_wnpp = List.length wnpp in
  Alcotest.(check bool)
    (Fmt.str "RP (%d) finds at least as many as RPnoSA (%d)" n_rp n_rpnosa)
    true (n_rp >= n_rpnosa);
  Alcotest.(check bool)
    (Fmt.str "RPnoSA (%d) finds at least as many as WN++ (%d)" n_rpnosa n_wnpp)
    true (n_rpnosa >= n_wnpp)

(* Scenarios where schema alternatives are the only way to an explanation
   (the paper's D2, D3, T_ASD, Q4). *)
let sa_only = [ "D2"; "D3"; "TASD"; "Q4"; "Q4F" ]

let test_sa_essential (s : Scenarios.Scenario.t) () =
  let _, rp, rpnosa, wnpp = run_all s in
  Alcotest.(check int) "WN++ finds nothing" 0 (List.length wnpp);
  Alcotest.(check int) "RPnoSA finds nothing" 0
    (List.length rpnosa.Whynot.Pipeline.explanations);
  Alcotest.(check bool) "RP finds explanations" true
    (rp.Whynot.Pipeline.explanations <> [])

(* Flat and nested TPC-H scenarios produce the same explanations (the
   paper: "our solution finds the same explanations on the nested and the
   flat data"). *)
let test_flat_matches_nested name () =
  let get n =
    let s = Option.get (Scenarios.Registry.find n) in
    let inst = instance_of s in
    let rp =
      Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives
        inst.Scenarios.Scenario.question
    in
    sorted (Whynot.Pipeline.explanation_sets rp)
  in
  Alcotest.(check (list (list int)))
    (name ^ " flat = nested")
    (get name)
    (get (name ^ "F"))

let scenario_cases =
  List.concat_map
    (fun (s : Scenarios.Scenario.t) ->
      let n = s.Scenarios.Scenario.name in
      [
        Alcotest.test_case (n ^ " proper") `Quick (test_proper s);
        Alcotest.test_case (n ^ " gold") `Quick (test_gold_found s);
      ]
      (* the count hierarchy is a Table 7 observation about the D/T/Q
         scenarios; in the crime scenarios WN++'s extra explanations are
         incorrect ones (C3), so the comparison is meaningless there *)
      @ (if s.Scenarios.Scenario.family = Scenarios.Scenario.Crime then []
         else [ Alcotest.test_case (n ^ " hierarchy") `Quick (test_rp_superset s) ])
      @
      if List.mem n sa_only then
        [ Alcotest.test_case (n ^ " needs SAs") `Quick (test_sa_essential s) ]
      else [])
    Scenarios.Registry.all

let flat_vs_nested_cases =
  List.map
    (fun n ->
      Alcotest.test_case (n ^ " flat = nested") `Quick (test_flat_matches_nested n))
    [ "Q1"; "Q3"; "Q4"; "Q6"; "Q10" ]

(* Lock the Table 7 reproduction numbers: (WN++, RPnoSA, RP) per
   scenario.  Any behavioural drift in the pipeline shows up here. *)
let expected_counts =
  [
    ("D1", (1, 1, 2)); ("D2", (0, 0, 1)); ("D3", (0, 0, 2)); ("D4", (1, 2, 5));
    ("D5", (0, 0, 1)); ("T1", (1, 1, 2)); ("T2", (1, 2, 3)); ("T3", (0, 0, 1));
    ("T4", (1, 1, 3)); ("TASD", (0, 0, 2));
    ("Q1", (1, 1, 3)); ("Q3", (1, 1, 2)); ("Q4", (0, 0, 4)); ("Q6", (1, 7, 15));
    ("Q10", (1, 2, 4)); ("Q13", (1, 1, 1));
    ("Q1F", (1, 1, 3)); ("Q3F", (1, 1, 2)); ("Q4F", (0, 0, 4)); ("Q6F", (1, 7, 15));
    ("Q10F", (1, 2, 4)); ("Q13F", (1, 1, 1));
    ("C1", (1, 1, 1)); ("C2", (1, 2, 2)); ("C3", (1, 0, 1));
  ]

let table7_counts () =
  List.iter
    (fun (name, (ew, en, er)) ->
      let s = Option.get (Scenarios.Registry.find name) in
      let _, rp, rpnosa, wnpp = run_all s in
      Alcotest.(check (triple int int int))
        (name ^ " counts (WN++, RPnoSA, RP)")
        (ew, en, er)
        ( List.length wnpp,
          List.length rpnosa.Whynot.Pipeline.explanations,
          List.length rp.Whynot.Pipeline.explanations ))
    expected_counts

(* Explanations must not depend on filler volume: the injected errors and
   targets are scale-independent. *)
let test_scale_invariance name () =
  let s = Option.get (Scenarios.Registry.find name) in
  let sets scale =
    let inst = s.Scenarios.Scenario.make ~scale () in
    sorted
      (Whynot.Pipeline.explanation_sets
         (Whynot.Pipeline.explain
            ~alternatives:inst.Scenarios.Scenario.alternatives
            inst.Scenarios.Scenario.question))
  in
  Alcotest.(check (list (list int))) (name ^ " scale 1 = scale 4") (sets 1) (sets 4)

let scale_invariance_cases =
  List.map
    (fun n -> Alcotest.test_case (n ^ " scale invariance") `Quick (test_scale_invariance n))
    [ "D1"; "D2"; "T1"; "TASD"; "Q3"; "Q13" ]

let crime_expected () =
  (* Table 6 / Section 6.4: the exact comparison points *)
  let get name =
    let s = Option.get (Scenarios.Registry.find name) in
    let inst = instance_of s in
    let phi = inst.Scenarios.Scenario.question in
    let rp =
      Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives phi
    in
    let wnpp = Baselines.Wnpp.explanations phi in
    let conseil = Baselines.Conseil.explanations phi in
    ( sorted (Whynot.Pipeline.explanation_sets rp),
      sorted (List.map Baselines.Explanation_set.op_list wnpp),
      sorted (List.map Baselines.Explanation_set.op_list conseil) )
  in
  (* C1: Why-Not stops at the selection; Conseil and RP find {σ, ⋈} *)
  let rp1, wn1, co1 = get "C1" in
  Alcotest.(check (list (list int))) "C1 Why-Not" [ [ 1 ] ] wn1;
  Alcotest.(check (list (list int))) "C1 Conseil" [ [ 1; 4 ] ] co1;
  Alcotest.(check bool) "C1 RP contains {σ,⋈}" true (List.mem [ 1; 4 ] rp1);
  (* C2: RP additionally returns {σ³, σ⁴} *)
  let rp2, wn2, _ = get "C2" in
  Alcotest.(check (list (list int))) "C2 Why-Not" [ [ 4 ] ] wn2;
  Alcotest.(check (list (list int))) "C2 RP" [ [ 3; 4 ]; [ 4 ] ] rp2;
  (* C3: the lineage baselines blame the join (a cross-product "fix");
     RP refuses it and pinpoints the projection via an SA *)
  let rp3, wn3, co3 = get "C3" in
  Alcotest.(check (list (list int))) "C3 Why-Not" [ [ 5 ] ] wn3;
  Alcotest.(check (list (list int))) "C3 Conseil" [ [ 5 ] ] co3;
  Alcotest.(check (list (list int))) "C3 RP" [ [ 6 ] ] rp3;
  Alcotest.(check bool) "C3 RP avoids the join" true
    (not (List.exists (List.mem 5) rp3))

let crime_exact_agreement () =
  (* on the tiny crime data the exact search validates C2's heuristic
     explanations as true SRs *)
  let s = Option.get (Scenarios.Registry.find "C2") in
  let inst = instance_of s in
  let phi = inst.Scenarios.Scenario.question in
  let srs = Whynot.Exact.successful ~max_ops:2 ~depth:1 phi in
  let sr_sets =
    List.map
      (fun (sr : Whynot.Exact.sr) ->
        Whynot.Msr.Int_set.elements sr.Whynot.Exact.changed)
      srs
  in
  Alcotest.(check bool) "{σ⁴} is a real SR" true (List.mem [ 4 ] sr_sets);
  Alcotest.(check bool) "{σ³,σ⁴} is a real SR" true (List.mem [ 3; 4 ] sr_sets)

let () =
  Alcotest.run "scenarios"
    [
      ("all-scenarios", scenario_cases);
      ("flat-vs-nested", flat_vs_nested_cases);
      ("scale-invariance", scale_invariance_cases);
      ( "table7-counts",
        [ Alcotest.test_case "locked reproduction numbers" `Quick table7_counts ] );
      ( "crime-comparison",
        [
          Alcotest.test_case "Table 6 expectations" `Quick crime_expected;
          Alcotest.test_case "exact agreement" `Quick crime_exact_agreement;
        ] );
    ]
