lib/datagen/dblp.ml: Fmt List Nested Prng Relation String Value Vtype
