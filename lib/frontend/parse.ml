open Ast

type state = { toks : Lexer.token array; mutable i : int }

exception Perr of { left : int; right : int; message : string; hint : string option }

let perr ?hint ~left ~right fmt =
  Fmt.kstr (fun message -> raise (Perr { left; right; message; hint })) fmt

let cur st = st.toks.(st.i)
let peek st = (cur st).tok

let peek2 st =
  if st.i + 1 < Array.length st.toks then st.toks.(st.i + 1).tok else Lexer.Eof

let advance st = if st.i + 1 < Array.length st.toks then st.i <- st.i + 1

(* Right edge of the last consumed token — used to close spans. *)
let last_right st = if st.i = 0 then 0 else st.toks.(st.i - 1).right

let tok_err ?hint st what =
  let t = cur st in
  perr ?hint ~left:t.left ~right:t.right "expected %s, found %s" what
    (Lexer.describe t.tok)

let expect ?hint st tok what =
  if peek st = tok then advance st else tok_err ?hint st what

let expect_kw ?hint st kw = expect ?hint st (Lexer.Kw kw) ("keyword " ^ kw)

let ident ?hint st what =
  match peek st with
  | Lexer.Ident s ->
      let t = cur st in
      advance st;
      { it = s; left = t.left; right = t.right }
  | _ -> tok_err ?hint st what

let is_kw st kw = peek st = Lexer.Kw kw

let eat_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let agg_fns = [ "sum"; "count"; "avg"; "min"; "max" ]

let cmp_of_tok = function
  | Lexer.Eq -> Some Nrab.Expr.Eq
  | Lexer.Neq -> Some Nrab.Expr.Neq
  | Lexer.Lt -> Some Nrab.Expr.Lt
  | Lexer.Le -> Some Nrab.Expr.Le
  | Lexer.Gt -> Some Nrab.Expr.Gt
  | Lexer.Ge -> Some Nrab.Expr.Ge
  | _ -> None

(* ---- expressions ---- *)

let rec expr st : expr =
  let left = (cur st).left in
  let e = ref (term st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.Plus ->
        advance st;
        let r = term st in
        e := { it = E_add (!e, r); left; right = last_right st }
    | Lexer.Minus ->
        advance st;
        let r = term st in
        e := { it = E_sub (!e, r); left; right = last_right st }
    | _ -> continue := false
  done;
  !e

and term st : expr =
  let left = (cur st).left in
  let e = ref (factor st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.Star ->
        advance st;
        let r = factor st in
        e := { it = E_mul (!e, r); left; right = last_right st }
    | Lexer.Slash ->
        advance st;
        let r = factor st in
        e := { it = E_div (!e, r); left; right = last_right st }
    | _ -> continue := false
  done;
  !e

and factor st : expr =
  let t = cur st in
  match t.tok with
  | Lexer.Ident a ->
      advance st;
      { it = E_attr a; left = t.left; right = t.right }
  | Lexer.Int v ->
      advance st;
      { it = E_int v; left = t.left; right = t.right }
  | Lexer.Float v ->
      advance st;
      { it = E_float v; left = t.left; right = t.right }
  | Lexer.Str s ->
      advance st;
      { it = E_string s; left = t.left; right = t.right }
  | Lexer.Kw "TRUE" ->
      advance st;
      { it = E_bool true; left = t.left; right = t.right }
  | Lexer.Kw "FALSE" ->
      advance st;
      { it = E_bool false; left = t.left; right = t.right }
  | Lexer.Minus -> (
      advance st;
      let u = cur st in
      match u.tok with
      | Lexer.Int v ->
          advance st;
          { it = E_int (-v); left = t.left; right = u.right }
      | Lexer.Float v ->
          advance st;
          { it = E_float (-.v); left = t.left; right = u.right }
      | _ ->
          perr ~left:t.left ~right:t.right
            "unary minus is only supported on numeric literals")
  | Lexer.Lparen ->
      advance st;
      let e = expr st in
      expect st Lexer.Rparen "')'";
      { e with left = t.left; right = last_right st }
  | _ -> tok_err st "an expression"

(* ---- predicates ---- *)

exception Not_a_pred_group

let rec pred st : pred = or_pred st

and or_pred st : pred =
  let left = (cur st).left in
  let p = ref (and_pred st) in
  while eat_kw st "OR" do
    let r = and_pred st in
    p := { it = P_or (!p, r); left; right = last_right st }
  done;
  !p

and and_pred st : pred =
  let left = (cur st).left in
  let p = ref (not_pred st) in
  while eat_kw st "AND" do
    let r = not_pred st in
    p := { it = P_and (!p, r); left; right = last_right st }
  done;
  !p

and not_pred st : pred =
  let t = cur st in
  if is_kw st "NOT" then begin
    advance st;
    let p = not_pred st in
    { it = P_not p; left = t.left; right = last_right st }
  end
  else pred_atom st

and pred_atom st : pred =
  let t = cur st in
  match t.tok with
  | Lexer.Kw (("TRUE" | "FALSE") as kw) -> (
      (* "TRUE" alone is a predicate; "true = active" starts a
         comparison with a boolean literal. *)
      match peek2 st with
      | Lexer.Eq | Lexer.Neq | Lexer.Lt | Lexer.Le | Lexer.Gt | Lexer.Ge
      | Lexer.Kw "IS" ->
          comparison st
      | _ ->
          advance st;
          let it = if String.equal kw "TRUE" then P_true else P_false in
          { it; left = t.left; right = t.right })
  | Lexer.Kw "CASE" -> case_pred st
  | Lexer.Kw "CONTAINS" ->
      advance st;
      expect st Lexer.Lparen "'('";
      let e = expr st in
      expect st Lexer.Comma "','";
      let s =
        match peek st with
        | Lexer.Str s ->
            let u = cur st in
            advance st;
            { it = s; left = u.left; right = u.right }
        | _ -> tok_err st "a string literal"
      in
      expect st Lexer.Rparen "')'";
      { it = P_contains (e, s); left = t.left; right = last_right st }
  | Lexer.Lparen -> (
      (* Ambiguous: "(a = 1) AND b" groups a predicate, "(a) = 1" and
         "(a + b) = 1" group an expression.  Try the predicate reading;
         back off if the closing paren is followed by an operator that
         only makes sense after an expression. *)
      let save = st.i in
      try
        advance st;
        let p = pred st in
        expect st Lexer.Rparen "')'";
        (match peek st with
        | Lexer.Plus | Lexer.Minus | Lexer.Star | Lexer.Slash | Lexer.Eq
        | Lexer.Neq | Lexer.Lt | Lexer.Le | Lexer.Gt | Lexer.Ge
        | Lexer.Kw "IS" ->
            raise Not_a_pred_group
        | _ -> ());
        { p with left = t.left; right = last_right st }
      with Perr _ | Not_a_pred_group ->
        st.i <- save;
        comparison st)
  | _ -> comparison st

and case_pred st : pred =
  let t = cur st in
  expect_kw st "CASE";
  let arms = ref [] in
  expect_kw st "WHEN" ~hint:"CASE branches are predicates: CASE WHEN c THEN p ... END";
  let parse_arm () =
    let c = pred st in
    expect_kw st "THEN";
    let p = pred st in
    arms := (c, p) :: !arms
  in
  parse_arm ();
  while eat_kw st "WHEN" do
    parse_arm ()
  done;
  let els = if eat_kw st "ELSE" then Some (pred st) else None in
  expect_kw st "END";
  { it = P_case (List.rev !arms, els); left = t.left; right = last_right st }

and comparison st : pred =
  let left = (cur st).left in
  let e = expr st in
  match cmp_of_tok (peek st) with
  | Some c ->
      advance st;
      let r = expr st in
      { it = P_cmp (c, e, r); left; right = last_right st }
  | None ->
      if eat_kw st "IS" then begin
        let neg = eat_kw st "NOT" in
        expect_kw st "NULL";
        let node = if neg then P_is_not_null e else P_is_null e in
        { it = node; left; right = last_right st }
      end
      else if eat_kw st "CONTAINS" then begin
        let s =
          match peek st with
          | Lexer.Str s ->
              let u = cur st in
              advance st;
              { it = s; left = u.left; right = u.right }
          | _ -> tok_err st "a string literal"
        in
        { it = P_contains (e, s); left; right = last_right st }
      end
      else
        tok_err st "a comparison operator"
          ~hint:"predicates are comparisons (a >= 1), IS [NOT] NULL, CONTAINS, or boolean combinations"

(* ---- select items ---- *)

let agg_item st : select_item =
  let t = cur st in
  let fn = ident st "an aggregate function" in
  expect st Lexer.Lparen "'('";
  let arg =
    match peek st with
    | Lexer.Star ->
        advance st;
        A_star
    | Lexer.Kw "DISTINCT" ->
        advance st;
        A_distinct (ident st "an attribute name")
    | _ -> A_attr (ident st "an attribute name")
  in
  expect st Lexer.Rparen "')'";
  expect_kw st "AS" ~hint:"aggregates need an output name: count(*) AS n";
  let out = ident st "an output name" in
  I_agg { fn; arg; out; left = t.left; right = last_right st }

let select_item st : select_item =
  match peek st with
  | Lexer.Star ->
      let t = cur st in
      advance st;
      I_star (t.left, t.right)
  | Lexer.Ident f
    when List.mem (String.lowercase_ascii f) agg_fns && peek2 st = Lexer.Lparen
    ->
      agg_item st
  | _ ->
      let e = expr st in
      let alias = if eat_kw st "AS" then Some (ident st "an alias") else None in
      I_expr (e, alias)

(* ---- FROM clause ---- *)

let rec from_clause st : from_item =
  let left = (cur st).left in
  let f = ref (from_item st) in
  while peek st = Lexer.Comma do
    advance st;
    let r = from_item st in
    f := { it = F_product (!f, r); left; right = last_right st }
  done;
  !f

and from_item st : from_item =
  let left = (cur st).left in
  let f = ref (from_primary st) in
  let continue = ref true in
  while !continue do
    let kind =
      match peek st with
      | Lexer.Kw "JOIN" -> Some `Inner
      | Lexer.Kw "INNER" when peek2 st = Lexer.Kw "JOIN" -> Some `Inner
      | Lexer.Kw "LEFT" -> Some `Left
      | Lexer.Kw "RIGHT" -> Some `Right
      | Lexer.Kw "FULL" -> Some `Full
      | _ -> None
    in
    match kind with
    | None -> continue := false
    | Some k ->
        (match peek st with
        | Lexer.Kw "JOIN" -> advance st
        | Lexer.Kw "INNER" ->
            advance st;
            advance st
        | _ ->
            (* LEFT/RIGHT/FULL [OUTER] JOIN *)
            advance st;
            ignore (eat_kw st "OUTER");
            expect_kw st "JOIN");
        let r = from_primary st in
        expect_kw st "ON" ~hint:"joins need an explicit predicate: ... JOIN t ON a = b";
        let p = pred st in
        f := { it = F_join (k, !f, r, p); left; right = last_right st }
  done;
  !f

and from_primary st : from_item =
  let t = cur st in
  match t.tok with
  | Lexer.Ident name ->
      advance st;
      { it = F_table name; left = t.left; right = t.right }
  | Lexer.Kw ("FLATTEN" | "UNNEST") ->
      advance st;
      let kind =
        if eat_kw st "OUTER" then `Outer
        else if eat_kw st "TUPLE" then `Tuple
        else `Inner
      in
      expect st Lexer.Lparen "'('";
      let f = from_item st in
      expect st Lexer.Comma "','"
        ~hint:"FLATTEN takes a source and an attribute: FLATTEN(person, address2)";
      let a = ident st "a bag-valued attribute name" in
      expect st Lexer.Rparen "')'";
      { it = F_flatten (kind, f, a); left = t.left; right = last_right st }
  | Lexer.Kw "RENAME" ->
      advance st;
      expect st Lexer.Lparen "'('";
      let f = from_item st in
      expect st Lexer.Comma "','"
        ~hint:"RENAME takes a source and pairs: RENAME(t, old AS new)";
      let pair () =
        let old = ident st "an attribute name" in
        expect_kw st "AS";
        let nw = ident st "a new attribute name" in
        (old, nw)
      in
      let pairs = ref [ pair () ] in
      while peek st = Lexer.Comma do
        advance st;
        pairs := pair () :: !pairs
      done;
      expect st Lexer.Rparen "')'";
      { it = F_rename (f, List.rev !pairs); left = t.left; right = last_right st }
  | Lexer.Lparen -> (
      advance st;
      match peek st with
      | Lexer.Kw "SELECT" ->
          let q = query st in
          expect st Lexer.Rparen "')'";
          { it = F_sub q; left = t.left; right = last_right st }
      | Lexer.Lparen -> (
          (* Could be a parenthesized query "((SELECT ...))" or a
             parenthesized product "((a, b), c)".  Try the query. *)
          let save = st.i in
          try
            let q = query st in
            expect st Lexer.Rparen "')'";
            { it = F_sub q; left = t.left; right = last_right st }
          with Perr _ ->
            st.i <- save;
            let f = from_clause st in
            expect st Lexer.Rparen "')'";
            { f with left = t.left; right = last_right st })
      | _ ->
          let f = from_clause st in
          expect st Lexer.Rparen "')'";
          { f with left = t.left; right = last_right st })
  | _ ->
      tok_err st "a table name, FLATTEN, RENAME, or a subquery"
        ~hint:"FROM takes tables, FLATTEN(...), RENAME(...), or (SELECT ...)"

(* ---- GROUP BY / NEST ---- *)

and group_item st : group_item =
  let g_attr = ident st "an attribute name" in
  let g_label = if eat_kw st "AS" then Some (ident st "a label") else None in
  { g_attr; g_label }

and group_items st : group_item list =
  let items = ref [ group_item st ] in
  while peek st = Lexer.Comma do
    advance st;
    items := group_item st :: !items
  done;
  List.rev !items

and nest_clause st : nest_clause =
  expect_kw st "NEST";
  let n_kind = if eat_kw st "TUPLE" then `Tuple else `Rel in
  let n_items = group_items st in
  expect_kw st "INTO" ~hint:"NEST needs a target attribute: NEST name INTO nList";
  let n_into = ident st "a bag attribute name" in
  { n_kind; n_items; n_into }

and group_clause st : group_clause =
  let gc_left = (cur st).left in
  expect_kw st "GROUP";
  expect_kw st "BY";
  let gc_items = if is_kw st "NEST" then [] else group_items st in
  let gc_nest = if is_kw st "NEST" then Some (nest_clause st) else None in
  { gc_items; gc_nest; gc_left; gc_right = last_right st }

(* ---- queries ---- *)

and select_core st : select_core =
  expect_kw st "SELECT";
  let distinct = eat_kw st "DISTINCT" in
  let items = ref [ select_item st ] in
  while peek st = Lexer.Comma do
    advance st;
    items := select_item st :: !items
  done;
  let from_hint =
    match peek st with
    | Lexer.Ident _ -> Some "separate select items with commas"
    | _ -> None
  in
  expect_kw ?hint:from_hint st "FROM";
  let from = from_clause st in
  let where = if eat_kw st "WHERE" then Some (pred st) else None in
  let group = if is_kw st "GROUP" then Some (group_clause st) else None in
  { distinct; items = List.rev !items; from; where; group }

and query_atom st : query =
  let t = cur st in
  match t.tok with
  | Lexer.Kw "SELECT" ->
      let sc = select_core st in
      { it = Q_select sc; left = t.left; right = last_right st }
  | Lexer.Lparen ->
      advance st;
      let q = query st in
      expect st Lexer.Rparen "')'";
      { q with left = t.left; right = last_right st }
  | _ -> tok_err st "a query (SELECT ... or a parenthesized query)"

and query st : query =
  let left = (cur st).left in
  let q = ref (query_atom st) in
  let continue = ref true in
  while !continue do
    let op =
      match peek st with
      | Lexer.Kw "UNION" -> Some `Union
      | Lexer.Kw "EXCEPT" -> Some `Except
      | _ -> None
    in
    match op with
    | None -> continue := false
    | Some op ->
        advance st;
        ignore (eat_kw st "ALL");
        let r = query_atom st in
        q := { it = Q_setop (op, !q, r); left; right = last_right st }
  done;
  !q

let cte st : ident * query =
  let name = ident st "a CTE name" in
  expect_kw st "AS" ~hint:"CTEs are written name AS (SELECT ...)";
  expect st Lexer.Lparen "'('";
  let q = query st in
  expect st Lexer.Rparen "')'";
  (name, q)

let statement_toks st : statement =
  let ctes =
    if eat_kw st "WITH" then begin
      let ctes = ref [ cte st ] in
      while peek st = Lexer.Comma do
        advance st;
        ctes := cte st :: !ctes
      done;
      List.rev !ctes
    end
    else []
  in
  let body = query st in
  (match peek st with
  | Lexer.Eof -> ()
  | _ -> tok_err st "end of input");
  { ctes; body }

let statement source =
  match Lexer.tokenize source with
  | Error d -> Error d
  | Ok toks -> (
      let st = { toks; i = 0 } in
      try Ok (statement_toks st)
      with Perr { left; right; message; hint } ->
        Error
          (Diagnostic.make ?hint ~span:{ Diagnostic.left; right } `Parse message))
