lib/core/explanation.ml: Fmt List Nrab Opset String
