(* Typed fault taxonomy + retry policy — the engine's stand-in for a
   DISC scheduler's task-level fault tolerance.

   Spark retries a failed partition task and recomputes it from lineage;
   our lineage is the task's closure plus its input partition, so
   recomputation is exact: re-running the closure on the same input
   yields the same output.  The retry decision path is fully
   deterministic — backoff durations derive from the task id and attempt
   number, never from [Random] or the wall clock — so a chaos run with a
   deterministic fault schedule is exactly reproducible. *)

exception Transient of exn

exception
  Exhausted of {
    task : string;  (** attribution: operator span name / partition *)
    attempts : int;
    last : exn;  (** the final (unwrapped) fault *)
  }

let () =
  Printexc.register_printer (function
    | Transient e -> Some ("Fault.Transient: " ^ Printexc.to_string e)
    | Exhausted { task; attempts; last } ->
      Some
        (Fmt.str "Fault.Exhausted: task %s failed after %d attempt(s): %s" task
           attempts (Printexc.to_string last))
    | _ -> None)

type kind = Transient_fault | Permanent_fault

(* Only faults explicitly wrapped as [Transient] are retryable.  In
   particular a cancellation (Whynot.Cancel.Cancelled) classifies as
   permanent — a cancelled run must not retry. *)
let classify = function Transient _ -> Transient_fault | _ -> Permanent_fault

let unwrap = function Transient e -> e | e -> e

type policy = {
  max_attempts : int;  (** total attempts, ≥ 1; 1 = no retries *)
  base_backoff_ms : float;
  max_backoff_ms : float;
}

let no_retry = { max_attempts = 1; base_backoff_ms = 0.0; max_backoff_ms = 0.0 }

let retries ?(base_backoff_ms = 1.0) ?(max_backoff_ms = 50.0) n =
  { max_attempts = 1 + max 0 n; base_backoff_ms; max_backoff_ms }

(* Capped exponential backoff with deterministic jitter: the jitter
   factor in [0.5, 1.0) comes from a hash of (task id, attempt), so two
   retried partitions don't thunder in lockstep, yet the schedule is a
   pure function of the task — no randomness, no clock reads. *)
let backoff_ms (p : policy) ~task_id ~attempt =
  if p.base_backoff_ms <= 0.0 then 0.0
  else begin
    let raw = p.base_backoff_ms *. (2.0 ** float_of_int (max 0 (attempt - 1))) in
    let capped = Float.min raw p.max_backoff_ms in
    let h = ((task_id * 2654435761) + (attempt * 40503)) land 0xFFFF in
    capped *. (0.5 +. (0.5 *. (float_of_int h /. 65536.0)))
  end

let attempts_c = lazy (Obs.Metrics.counter "engine.task.attempts")
let retries_c = lazy (Obs.Metrics.counter "engine.task.retries")
let exhausted_c = lazy (Obs.Metrics.counter "engine.task.exhausted")

let protect ?(policy = no_retry) ?(task = "task") ?(task_id = 0) ?abort
    ?on_retry (f : unit -> 'a) : 'a =
  let max_attempts = max 1 policy.max_attempts in
  let rec go attempt =
    Obs.Metrics.Counter.incr (Lazy.force attempts_c);
    match f () with
    | v -> v
    | exception Transient inner ->
      if attempt >= max_attempts then begin
        Obs.Metrics.Counter.incr (Lazy.force exhausted_c);
        Obs.Log.err "task.exhausted" (fun () ->
            [
              Obs.Log.str "task" task;
              Obs.Log.int "attempts" attempt;
              Obs.Log.str "error" (Printexc.to_string inner);
            ]);
        raise (Exhausted { task; attempts = attempt; last = inner })
      end
      else begin
        (* The abort hook is polled before every re-attempt: a cancelled
           run gives up immediately instead of burning retries (and
           backoff sleeps) on work nobody wants. *)
        match (match abort with Some a -> a () | None -> None) with
        | Some abort_exn -> raise abort_exn
        | None ->
          Obs.Metrics.Counter.incr (Lazy.force retries_c);
          Obs.Log.warn "task.retry" (fun () ->
              [
                Obs.Log.str "task" task;
                Obs.Log.int "attempt" (attempt + 1);
                Obs.Log.str "error" (Printexc.to_string inner);
              ]);
          (match on_retry with
          | Some cb -> cb ~attempt:(attempt + 1) inner
          | None -> ());
          let d = backoff_ms policy ~task_id ~attempt in
          if d > 0.0 then Unix.sleepf (d /. 1000.0);
          go (attempt + 1)
      end
  in
  go 1
