(** Monotonic nanosecond clock for spans and metrics.

    Backed by the wall clock but clamped to be non-decreasing across the
    whole process (domains included), so span durations are never
    negative and exported timestamps are monotone. *)

(** Nanoseconds since the Unix epoch, never less than any previously
    returned value. *)
val now_ns : unit -> int

(** Install a replacement time source (tests use this for deterministic
    timestamps).  The monotone clamp still applies on top of it. *)
val set_source : (unit -> int) -> unit

(** Restore the default wall-clock source. *)
val reset_source : unit -> unit

val ns_to_ms : int -> float
val ns_to_us : int -> float
