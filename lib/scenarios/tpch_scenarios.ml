(* TPC-H scenarios Q1–Q13 on the nested schema (lineitems nested into
   orders) and their flat counterparts Q1F–Q13F (Table 9).  Operator ids
   follow the paper's superscripts where the paper assigns them. *)

open Nested
open Nrab

let ( ==? ) a b = Expr.Cmp (Expr.Eq, a, b)
let ( <=? ) a b = Expr.Cmp (Expr.Le, a, b)
let ( <? ) a b = Expr.Cmp (Expr.Lt, a, b)
let ( >? ) a b = Expr.Cmp (Expr.Gt, a, b)
let ( >=? ) a b = Expr.Cmp (Expr.Ge, a, b)
let between a lo hi = Expr.And (Expr.int lo <=? a, a <=? Expr.int hi)

let lineitem_alts table prefix =
  [
    (table, [ prefix @ [ "l_tax" ]; prefix @ [ "l_discount" ] ]);
    (table, [ prefix @ [ "l_shipdate" ]; prefix @ [ "l_commitdate" ] ]);
  ]

(* Access to the flat lineitems of the nested or flat schema. *)
let lineitems ~flat g =
  if flat then Query.table g "lineitem"
  else Query.flatten_inner ~id:90 g "o_lineitems" (Query.table g "nested_orders")

(* lineitems together with their order attributes *)
let order_lineitems ~flat g =
  if flat then
    Query.join ~id:91 g Query.Inner
      (Expr.attr "o_orderkey" ==? Expr.attr "l_orderkey")
      (Query.table g "orders") (Query.table g "lineitem")
  else Query.flatten_inner ~id:90 g "o_lineitems" (Query.table g "nested_orders")

let lineitem_table ~flat = if flat then "lineitem" else "nested_orders"
let lineitem_prefix ~flat = if flat then [] else [ "o_lineitems" ]

(* Q1: average discount over recent lineitems.
   Error: the aggregation averages [l_tax] instead of [l_discount]. *)
let q1 ~flat : Scenario.t =
  {
    name = (if flat then "Q1F" else "Q1");
    family = (if flat then Scenario.Tpch_flat else Scenario.Tpch);
    description = "TPC-H query 1 with one modified aggregation";
    operators = "σ,γ" ^ if flat then "" else ",Fᴵ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Tpch.db ?seed ~scale () in
        let g = Query.Gen.create ~start:50 () in
        let query =
          Query.group_agg ~id:23 g []
            [ (Agg.Avg, Some "l_tax", "avgDisc") ]
            (Query.select ~id:24 g
               (Expr.attr "l_shipdate" <=? Expr.int 19980902)
               (lineitems ~flat g))
        in
        let missing =
          Whynot.Nip.tup [ ("avgDisc", Whynot.Nip.pred Expr.Ge (Value.Float 0.05)) ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [
              ( lineitem_table ~flat,
                [
                  lineitem_prefix ~flat @ [ "l_tax" ];
                  lineitem_prefix ~flat @ [ "l_discount" ];
                ] );
            ];
          gold = Some [ [ 23 ] ];
        });
  }

(* Q3: revenue of unshipped orders.
   Errors: the segment filter says HOUSEHOLD (should be BUILDING) and the
   commit-date constant has a typo (03-25 instead of 03-15). *)
let q3 ~flat : Scenario.t =
  {
    name = (if flat then "Q3F" else "Q3");
    family = (if flat then Scenario.Tpch_flat else Scenario.Tpch);
    description = "TPC-H query 3 with two modified selections";
    operators = "σ,σ,⋈,π,γ" ^ if flat then "" else ",Fᴵ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Tpch.db ?seed ~scale () in
        let g = Query.Gen.create ~start:50 () in
        let query =
          Query.group_agg ~id:25 g
            [ "o_orderkey"; "o_orderdate"; "o_shippriority" ]
            [ (Agg.Sum, Some "disc_price", "revenue") ]
            (Query.project ~id:55 g
               [
                 ("o_orderkey", Expr.attr "o_orderkey");
                 ("o_orderdate", Expr.attr "o_orderdate");
                 ("o_shippriority", Expr.attr "o_shippriority");
                 ( "disc_price",
                   Expr.(
                     Mul
                       ( attr "l_extendedprice",
                         Sub (flt 1.0, attr "l_discount") )) );
               ]
               (Query.select ~id:26 g
                  (Expr.attr "c_mktsegment" ==? Expr.str "HOUSEHOLD")
                  (Query.select ~id:56 g
                     (Expr.attr "o_orderdate" <? Expr.int 19950315)
                     (Query.select ~id:27 g
                        (Expr.attr "l_commitdate" >? Expr.int 19950325)
                        (Query.join ~id:57 g Query.Inner
                           (Expr.attr "c_custkey" ==? Expr.attr "o_custkey")
                           (Query.table g "customer")
                           (order_lineitems ~flat g))))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("o_orderkey", Whynot.Nip.int Datagen.Tpch.q3_target_orderkey);
              ("o_orderdate", Whynot.Nip.any);
              ("o_shippriority", Whynot.Nip.any);
              ("revenue", Whynot.Nip.any);
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [
              ( lineitem_table ~flat,
                [
                  lineitem_prefix ~flat @ [ "l_discount" ];
                  lineitem_prefix ~flat @ [ "l_tax" ];
                ] );
            ];
          gold = Some [ [ 26; 27 ] ];
        });
  }

(* Q4: order counts by priority.
   Errors: the lateness filter compares the ship date (should be the
   commit date) with the receipt date, and the aggregation groups on
   [o_shippriority] (should be [o_orderpriority]). *)
let q4 ~flat : Scenario.t =
  {
    name = (if flat then "Q4F" else "Q4");
    family = (if flat then Scenario.Tpch_flat else Scenario.Tpch);
    description = "TPC-H query 4 with a modified selection and aggregation";
    operators = "σ,σ,⋈,γ,γ" ^ if flat then "" else ",Fᴵ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Tpch.db ?seed ~scale () in
        let g = Query.Gen.create ~start:50 () in
        let dist_ord =
          Query.group_agg ~id:58 g [ "l_orderkey" ]
            [ (Agg.Count, None, "cnt") ]
            (Query.select ~id:28 g
               (Expr.attr "l_shipdate" <? Expr.attr "l_receiptdate")
               (lineitems ~flat g))
        in
        let filter_ord =
          Query.select ~id:29 g
            (between (Expr.attr "o_orderdate") 19930701 19930930)
            (Query.table g (if flat then "orders" else "nested_orders"))
        in
        let query =
          Query.group_agg ~id:30 g [ "o_shippriority" ]
            [ (Agg.Count, Some "o_orderkey", "order_count") ]
            (Query.join ~id:59 g Query.Inner
               (Expr.attr "o_orderkey" ==? Expr.attr "l_orderkey")
               filter_ord dist_ord)
        in
        let missing =
          Whynot.Nip.tup
            [
              ("o_shippriority", Whynot.Nip.str "3-MEDIUM");
              ("order_count", Whynot.Nip.pred Expr.Lt (Value.Int 11000));
            ]
        in
        let order_table = if flat then "orders" else "nested_orders" in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [
              (order_table, [ [ "o_shippriority" ]; [ "o_orderpriority" ] ]);
              ( lineitem_table ~flat,
                [
                  lineitem_prefix ~flat @ [ "l_shipdate" ];
                  lineitem_prefix ~flat @ [ "l_commitdate" ];
                ] );
            ];
          gold = Some [ [ 28; 30 ] ];
        });
  }

(* Q6: forecast revenue change.
   Error: the middle filter constrains [l_tax] instead of [l_discount]. *)
let q6 ~flat : Scenario.t =
  {
    name = (if flat then "Q6F" else "Q6");
    family = (if flat then Scenario.Tpch_flat else Scenario.Tpch);
    description = "TPC-H query 6 with one modified selection";
    operators = "σ,σ,σ,π,γ" ^ if flat then "" else ",Fᴵ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Tpch.db ?seed ~scale () in
        let mk_query () =
          let g = Query.Gen.create ~start:50 () in
          Query.group_agg ~id:60 g []
            [ (Agg.Sum, Some "disc_price", "revenue") ]
            (Query.project ~id:31 g
               [
                 ( "disc_price",
                   Expr.(Mul (attr "l_extendedprice", attr "l_discount")) );
               ]
               (Query.select ~id:32 g
                  (between (Expr.attr "l_shipdate") 19940101 19941231)
                  (Query.select ~id:33 g
                     (Expr.And
                        ( Expr.flt 0.05 <=? Expr.attr "l_tax",
                          Expr.attr "l_tax" <=? Expr.flt 0.07 ))
                     (Query.select ~id:34 g
                        (Expr.attr "l_quantity" <=? Expr.int 24)
                        (lineitems ~flat g)))))
        in
        let query = mk_query () in
        (* the revenue threshold of the why-not question is placed below
           the (erroneous) original result, scale-independently *)
        let original = Eval.eval db query in
        let threshold =
          match Relation.tuples original with
          | [ Value.Tuple [ ("revenue", Value.Float r) ] ] -> r *. 0.9
          | _ -> 1.0e8
        in
        let missing =
          Whynot.Nip.tup
            [ ("revenue", Whynot.Nip.pred Expr.Lt (Value.Float threshold)) ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [
              ( lineitem_table ~flat,
                [
                  lineitem_prefix ~flat @ [ "l_tax" ];
                  lineitem_prefix ~flat @ [ "l_discount" ];
                ] );
            ];
          gold = Some [ [ 33 ] ];
        });
  }

(* Q10: returned items and the revenue they lost.
   Errors: the return-flag filter says "A" (should be "R"), the order-date
   window is wrong, and the revenue projection uses [l_tax] instead of
   [l_discount]. *)
let q10 ~flat : Scenario.t =
  {
    name = (if flat then "Q10F" else "Q10");
    family = (if flat then Scenario.Tpch_flat else Scenario.Tpch);
    description = "TPC-H query 10 with two modified selections and a modified projection";
    operators = "σ,σ,⋈,⋈,π,γ" ^ if flat then "" else ",Fᴵ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Tpch.db ?seed ~scale () in
        let g = Query.Gen.create ~start:50 () in
        let flat_ord =
          Query.select ~id:35 g
            (Expr.attr "l_returnflag" ==? Expr.str "A")
            (Query.select ~id:36 g
               (between (Expr.attr "o_orderdate") 19971001 19971231)
               (order_lineitems ~flat g))
        in
        let group =
          [
            "c_custkey"; "c_name"; "c_acctbal"; "c_phone"; "n_name";
            "c_address"; "c_comment";
          ]
        in
        let query =
          Query.group_agg ~id:61 g group
            [ (Agg.Sum, Some "disc_price", "revenue") ]
            (Query.project ~id:37 g
               (List.map (fun a -> (a, Expr.attr a)) group
               @ [
                   ( "disc_price",
                     Expr.(
                       Mul (attr "l_extendedprice", Sub (flt 1.0, attr "l_tax")))
                   );
                 ])
               (Query.join ~id:62 g Query.Inner
                  (Expr.attr "c_nationkey" ==? Expr.attr "n_nationkey")
                  (Query.join ~id:38 g Query.Inner
                     (Expr.attr "c_custkey" ==? Expr.attr "o_custkey")
                     (Query.table g "customer")
                     flat_ord)
                  (Query.table g "nation")))
        in
        let missing =
          Whynot.Nip.tup
            ([ ("c_custkey", Whynot.Nip.int Datagen.Tpch.q10_target_custkey) ]
            @ List.map
                (fun a -> (a, Whynot.Nip.any))
                [ "c_name"; "c_acctbal"; "c_phone"; "n_name"; "c_address"; "c_comment" ]
            @ [ ("revenue", Whynot.Nip.pred Expr.Gt (Value.Float 0.0)) ])
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [
              ( lineitem_table ~flat,
                [
                  lineitem_prefix ~flat @ [ "l_tax" ];
                  lineitem_prefix ~flat @ [ "l_discount" ];
                ] );
            ];
          gold = Some [ [ 35; 36; 37 ] ];
        });
  }

(* Q13: distribution of customers by order count.
   Error: an inner join (flat) / inner flatten (nested) where an outer one
   is needed — customers without orders vanish. *)
let q13 ~flat : Scenario.t =
  {
    name = (if flat then "Q13F" else "Q13");
    family = (if flat then Scenario.Tpch_flat else Scenario.Tpch);
    description = "TPC-H query 13 with one modified join";
    operators = (if flat then "⋈,γ,γ" else "Fᴵ,γ,γ");
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Tpch.db ?seed ~scale () in
        let g = Query.Gen.create ~start:50 () in
        let source =
          if flat then
            Query.join ~id:39 g Query.Inner
              (Expr.attr "c_custkey" ==? Expr.attr "o_custkey")
              (Query.table g "customer")
              (Query.table g "orders")
          else
            Query.flatten_inner ~id:39 g "c_orders"
              (Query.table g "nested_customers")
        in
        let query =
          Query.group_agg ~id:63 g [ "c_count" ]
            [ (Agg.Count, Some "c_custkey", "custdist") ]
            (Query.group_agg ~id:64 g [ "c_custkey" ]
               [ (Agg.Count, Some "o_orderkey", "c_count") ]
               source)
        in
        let missing =
          Whynot.Nip.tup
            [ ("c_count", Whynot.Nip.int 0); ("custdist", Whynot.Nip.any) ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [];
          gold = Some [ [ 39 ] ];
        });
  }

let nested = [ q1 ~flat:false; q3 ~flat:false; q4 ~flat:false; q6 ~flat:false; q10 ~flat:false; q13 ~flat:false ]
let flat = [ q1 ~flat:true; q3 ~flat:true; q4 ~flat:true; q6 ~flat:true; q10 ~flat:true; q13 ~flat:true ]
let all = nested @ flat
