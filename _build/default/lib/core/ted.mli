(** Tree edit distance between nested relations.

    Definition 9 measures reparameterization side effects with a tree
    distance over query results.  Unordered TED is NP-hard
    [Zhang–Statman–Shasha 92], so this implementation runs the
    Zhang–Shasha *ordered* tree edit distance over canonically ordered
    trees ({!Nested.Tree.of_value}), with unit insert/delete/relabel
    costs.  Canonical ordering makes the metric deterministic and
    invariant under bag-element permutation. *)

open Nested

val cost_delete : int
val cost_insert : int
val cost_relabel : string -> string -> int

(** Distance between two trees (Zhang–Shasha, O(|T₁|·|T₂|·depth²)). *)
val distance_trees : Tree.t -> Tree.t -> int

(** Distance between two nested values via their canonical trees. *)
val distance : Value.t -> Value.t -> int
