(* The engine's executor: runs an NRAB plan over partitioned datasets.

   Narrow operators (selection, projection, renaming, flattening, tuple
   nesting, per-tuple aggregation) run partition-local; blocking operators
   (joins, relation nesting, group aggregation, deduplication, difference)
   shuffle by key first, like a DISC system would.  The results agree with
   the reference evaluator [Nrab.Eval] — the test suite checks this. *)

open Nested
open Nrab

exception Engine_error of string

let err fmt = Fmt.kstr (fun m -> raise (Engine_error m)) fmt

type config = { partitions : int; parallel : bool; retry : Fault.policy }

let default_config =
  { partitions = 4; parallel = false; retry = Fault.no_retry }

let schema_env (db : Relation.Db.t) : Typecheck.env =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

(* Split a join predicate's conjunctive closure into equi-join key
   attribute pairs (left attr, right attr) and the residual predicate
   (the conjuncts that are not equi-key comparisons, [True] if none).
   The hash-join kernel probes by key and evaluates only the residual. *)
let equi_split (lfields : string list) (rfields : string list) (p : Expr.pred)
    : (string * string) list * Expr.pred =
  let rec conjuncts = function
    | Expr.And (a, b) -> conjuncts a @ conjuncts b
    | p -> [ p ]
  in
  let keys, residual =
    List.fold_left
      (fun (keys, residual) c ->
        match c with
        | Expr.Cmp (Expr.Eq, Expr.Attr a, Expr.Attr b)
          when List.mem a lfields && List.mem b rfields ->
          ((a, b) :: keys, residual)
        | Expr.Cmp (Expr.Eq, Expr.Attr a, Expr.Attr b)
          when List.mem b lfields && List.mem a rfields ->
          ((b, a) :: keys, residual)
        | c -> (keys, c :: residual))
      ([], []) (conjuncts p)
  in
  let residual =
    match List.rev residual with
    | [] -> Expr.True
    | c :: rest -> List.fold_left (fun acc c -> Expr.And (acc, c)) c rest
  in
  (List.rev keys, residual)

let equi_keys lfields rfields p = fst (equi_split lfields rfields p)

(* Per-row kernels shared by narrow operators.  All of these are staged:
   applying the first argument(s) precomputes the lookup structures once,
   so the per-row closure does no list scans over the parameters. *)

(* Key projection staged over the attribute list: one pass over the
   row's fields instead of one [Value.field] scan per key attribute. *)
let key_of attrs : Value.t -> Value.t =
  let n = List.length attrs in
  let slot = Hashtbl.create (2 * n) in
  List.iteri
    (fun i a -> if not (Hashtbl.mem slot a) then Hashtbl.replace slot a i)
    attrs;
  let attr_arr = Array.of_list attrs in
  fun t ->
    match t with
    | Value.Tuple fields ->
      let found = Array.make (max n 1) None in
      List.iter
        (fun (l, v) ->
          match Hashtbl.find_opt slot l with
          | Some i -> if found.(i) = None then found.(i) <- Some v
          | None -> ())
        fields;
      Value.Tuple
        (List.map
           (fun a ->
             match found.(Hashtbl.find slot a) with
             | Some v -> (a, v)
             | None -> err "engine: unknown key attribute %s" a)
           (Array.to_list attr_arr))
    | _ ->
      Value.Tuple
        (List.map
           (fun a ->
             match Value.field a t with
             | Some v -> (a, v)
             | None -> err "engine: unknown key attribute %s" a)
           attrs)

let project_row cols t =
  Value.Tuple (List.map (fun (name, e) -> (name, Expr.eval t e)) cols)

let rename_row pairs : Value.t -> Value.t =
  let fresh_of = Hashtbl.create (2 * List.length pairs) in
  List.iter
    (fun (fresh, old) ->
      if not (Hashtbl.mem fresh_of old) then Hashtbl.replace fresh_of old fresh)
    pairs;
  let rename_label l =
    match Hashtbl.find_opt fresh_of l with Some fresh -> fresh | None -> l
  in
  fun t ->
    match t with
    | Value.Tuple fields ->
      Value.Tuple (List.map (fun (l, v) -> (rename_label l, v)) fields)
    | _ -> err "engine: rename of non-tuple"

let flatten_tuple_row inner_ty a t =
  match Value.field a t with
  | Some (Value.Tuple _ as inner) -> Value.concat_tuples t inner
  | Some Value.Null -> Value.concat_tuples t (Vtype.null_tuple inner_ty)
  | Some _ -> err "engine: tuple flatten of non-tuple attribute %s" a
  | None -> err "engine: unknown attribute %s" a

let flatten_rel_rows kind inner_ty a t =
  let nested = match Value.field a t with Some v -> v | None -> Value.Null in
  let rows =
    match nested with
    | Value.Bag _ -> List.map (Value.concat_tuples t) (Value.expand nested)
    | Value.Null -> []
    | _ -> err "engine: relation flatten of non-bag attribute %s" a
  in
  match rows, kind with
  | [], Query.Flat_outer -> [ Value.concat_tuples t (Vtype.null_tuple inner_ty) ]
  | rows, _ -> rows

let nest_tuple_row pairs c_name : Value.t -> Value.t =
  let nested_attr = Hashtbl.create (2 * List.length pairs) in
  List.iter (fun (_, a) -> Hashtbl.replace nested_attr a ()) pairs;
  fun t ->
    match t with
    | Value.Tuple fields ->
      let rest =
        List.filter (fun (l, _) -> not (Hashtbl.mem nested_attr l)) fields
      in
      let nested =
        List.map
          (fun (label, a) ->
            match List.assoc_opt a fields with
            | Some v -> (label, v)
            | None -> err "engine: unknown attribute %s" a)
          pairs
      in
      Value.Tuple (rest @ [ (c_name, Value.Tuple nested) ])
    | _ -> err "engine: nest_tuple of non-tuple"

let agg_tuple_row fn a b t =
  let values =
    match Value.field a t with
    | Some (Value.Bag _ as bag) ->
      List.map
        (fun v ->
          match v with Value.Tuple [ (_, inner) ] -> inner | other -> other)
        (Value.expand bag)
    | Some Value.Null | None -> []
    | Some _ -> err "engine: per-tuple aggregation of non-bag attribute %s" a
  in
  Value.concat_tuples t (Value.Tuple [ (b, Agg.apply fn values) ])

(* Partition-local join kernel.  With equi-keys this is a hash join: the
   smaller side is indexed by its key tuple and the other side probes,
   evaluating only the residual predicate on each candidate — candidate
   enumeration is lossless because any pair satisfying the full predicate
   agrees on the equi-key conjuncts.  Without keys it degrades to the
   nested loop (the full predicate is then the residual).  Row order
   within a partition is irrelevant: bags are normalized downstream. *)
let join_partition ~keys ~(residual : Expr.pred) ~kind ~lnull ~rnull
    (lrows : Value.t list) (rrows : Value.t list) : Value.t list =
  let matched_left = Hashtbl.create 16 in
  let matched_right = Hashtbl.create 16 in
  let inner =
    match keys with
    | [] ->
      List.concat
        (List.mapi
           (fun li t ->
             List.filter_map
               (fun (ri, u) ->
                 let joined = Value.concat_tuples t u in
                 if Expr.eval_pred joined residual then begin
                   Hashtbl.replace matched_left li ();
                   Hashtbl.replace matched_right ri ();
                   Some joined
                 end
                 else None)
               (List.mapi (fun ri u -> (ri, u)) rrows))
           lrows)
    | keys ->
      let lkey = key_of (List.map fst keys)
      and rkey = key_of (List.map snd keys) in
      (* Key tuples are compared positionally (labels stripped) so that
         the two sides' attribute names do not have to agree.  A key
         containing Null can never satisfy an equality conjunct
         ([Null = Null] is false, as in SQL), so such rows are excluded
         from both build and probe — they surface only as outer pads. *)
      let key_values k t =
        match k t with
        | Value.Tuple fields -> List.map snd fields
        | v -> [ v ]
      in
      let has_null = List.exists (fun v -> v = Value.Null) in
      let build_is_left = List.length lrows <= List.length rrows in
      let build_rows, build_key, probe_rows, probe_key =
        if build_is_left then (lrows, key_values lkey, rrows, key_values rkey)
        else (rrows, key_values rkey, lrows, key_values lkey)
      in
      let index = Hashtbl.create (2 * List.length build_rows) in
      List.iteri
        (fun bi b ->
          let k = build_key b in
          if not (has_null k) then
            Hashtbl.replace index k
              ((bi, b) :: Option.value ~default:[] (Hashtbl.find_opt index k)))
        build_rows;
      let matched_build, matched_probe =
        if build_is_left then (matched_left, matched_right)
        else (matched_right, matched_left)
      in
      List.concat
        (List.mapi
           (fun pi p ->
             List.filter_map
               (fun (bi, b) ->
                 let joined =
                   if build_is_left then Value.concat_tuples b p
                   else Value.concat_tuples p b
                 in
                 if Expr.eval_pred joined residual then begin
                   Hashtbl.replace matched_build bi ();
                   Hashtbl.replace matched_probe pi ();
                   Some joined
                 end
                 else None)
               (Option.value ~default:[]
                  (Hashtbl.find_opt index (probe_key p))))
           probe_rows)
  in
  let left_pad () =
    List.concat
      (List.mapi
         (fun li t ->
           if Hashtbl.mem matched_left li then []
           else [ Value.concat_tuples t rnull ])
         lrows)
  in
  let right_pad () =
    List.concat
      (List.mapi
         (fun ri u ->
           if Hashtbl.mem matched_right ri then []
           else [ Value.concat_tuples lnull u ])
         rrows)
  in
  match kind with
  | Query.Inner -> inner
  | Query.Left -> inner @ left_pad ()
  | Query.Right -> inner @ right_pad ()
  | Query.Full -> inner @ left_pad () @ right_pad ()

(* Group rows of one partition by key. *)
let group_rows (key : Value.t -> Value.t) (rows : Value.t list) :
    (Value.t * Value.t list) list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let k = key row in
      match Hashtbl.find_opt tbl k with
      | Some rs -> Hashtbl.replace tbl k (row :: rs)
      | None ->
        order := k :: !order;
        Hashtbl.replace tbl k [ row ])
    rows;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order

let group_by_attrs attrs rows = group_rows (key_of attrs) rows

(* Bag difference on row lists. *)
let diff_rows (l : Value.t list) (r : Value.t list) : Value.t list =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun row ->
      Hashtbl.replace counts row
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts row)))
    r;
  List.filter
    (fun row ->
      match Hashtbl.find_opt counts row with
      | Some n when n > 0 ->
        Hashtbl.replace counts row (n - 1);
        false
      | _ -> true)
    l

let run ?(config = default_config) ?parent ?registry (db : Relation.Db.t)
    (q : Query.t) : Relation.t * Stats.t =
  let env = schema_env db in
  let stats = Stats.create () in
  let n = config.partitions in
  let parallel = config.parallel in
  let retry = config.retry in
  (* Retries are attributed on the operator span: a task that needed a
     second attempt leaves [attempt=2] on its operator. *)
  let retry_attr sp ~partition:_ ~attempt _e =
    Option.iter (fun s -> Obs.Span.set_int s "attempt" attempt) sp
  in
  (* Spans are only materialized when a parent is given: untraced runs
     pay nothing beyond the [Stats] counters they always paid. *)
  let sub sp name = Option.map (fun p -> Obs.Span.start ~parent:p name) sp in
  let finish_shuffle ssp moved =
    Option.iter
      (fun s ->
        Obs.Span.set_int s "rows_moved" moved;
        Obs.Span.finish s)
      ssp
  in
  let rec go osp (q : Query.t) : Dataset.t =
    let ostat =
      Stats.op stats ~op_id:q.id ~op_label:(Query.op_symbol q.node)
    in
    let op_name = Fmt.str "op:%s#%d" (Query.op_symbol q.node) q.id in
    let sp = sub osp op_name in
    let record_io input output =
      ostat.Stats.input_rows <- ostat.Stats.input_rows + input;
      ostat.Stats.output_rows <- ostat.Stats.output_rows + output
    in
    (* Every partition-transform of this operator is a retryable task
       attributed to the operator's span name. *)
    let mapp f d =
      Dataset.map_partitions ~parallel ~retry ~label:op_name
        ~on_retry:(retry_attr sp) f d
    in
    let narrow child kernel =
      let d = go sp child in
      let input = Dataset.cardinal d in
      let out = mapp (List.concat_map kernel) d in
      record_io input (Dataset.cardinal out);
      out
    in
    let out = eval_node sp ostat record_io narrow mapp q in
    Option.iter
      (fun s ->
        Obs.Span.set_int s "op_id" q.id;
        Obs.Span.set_int s "input_rows" ostat.Stats.input_rows;
        Obs.Span.set_int s "output_rows" ostat.Stats.output_rows;
        Obs.Span.set_int s "shuffled_rows" ostat.Stats.shuffled_rows;
        Obs.Span.finish s)
      sp;
    out
  and eval_node sp ostat record_io narrow mapp (q : Query.t) : Dataset.t =
    match q.node, q.children with
    | Query.Table name, [] ->
      let rel = Relation.Db.find_exn name db in
      let d = Dataset.of_relation ~partitions:n rel in
      record_io (Relation.cardinal rel) (Dataset.cardinal d);
      d
    | Query.Select pred, [ c ] ->
      narrow c (fun t -> if Expr.eval_pred t pred then [ t ] else [])
    | Query.Project cols, [ c ] -> narrow c (fun t -> [ project_row cols t ])
    | Query.Rename pairs, [ c ] ->
      let rename = rename_row pairs in
      narrow c (fun t -> [ rename t ])
    | Query.Flatten_tuple a, [ c ] ->
      let cty = Typecheck.infer env c in
      let inner_ty =
        match List.assoc_opt a (Vtype.relation_fields cty) with
        | Some ty -> ty
        | None -> err "engine: unknown attribute %s" a
      in
      narrow c (fun t -> [ flatten_tuple_row inner_ty a t ])
    | Query.Flatten (kind, a), [ c ] ->
      let cty = Typecheck.infer env c in
      let inner_ty =
        match List.assoc_opt a (Vtype.relation_fields cty) with
        | Some (Vtype.TBag ety) -> ety
        | Some _ | None -> err "engine: attribute %s is not a relation" a
      in
      narrow c (flatten_rel_rows kind inner_ty a)
    | Query.Nest_tuple (pairs, c_name), [ c ] ->
      let nest = nest_tuple_row pairs c_name in
      narrow c (fun t -> [ nest t ])
    | Query.Agg_tuple (fn, a, b), [ c ] ->
      narrow c (fun t -> [ agg_tuple_row fn a b t ])
    | Query.Union, [ l; r ] ->
      let dl = go sp l and dr = go sp r in
      let input = Dataset.cardinal dl + Dataset.cardinal dr in
      let parts =
        Array.init n (fun i ->
            let pl =
              if i < Dataset.partition_count dl then (Dataset.partitions dl).(i)
              else []
            and pr =
              if i < Dataset.partition_count dr then (Dataset.partitions dr).(i)
              else []
            in
            pl @ pr)
      in
      let out = Dataset.of_partitions parts in
      record_io input (Dataset.cardinal out);
      out
    | Query.Diff, [ l; r ] ->
      let dl = go sp l and dr = go sp r in
      let input = Dataset.cardinal dl + Dataset.cardinal dr in
      let ssp = sub sp "shuffle" in
      let dl, m1 = Dataset.shuffle_by ~partitions:n Fun.id dl in
      let dr, m2 = Dataset.shuffle_by ~partitions:n Fun.id dr in
      Stats.record_shuffle stats ostat (m1 + m2);
      finish_shuffle ssp (m1 + m2);
      let parts =
        Array.init n (fun i ->
            diff_rows (Dataset.partitions dl).(i) (Dataset.partitions dr).(i))
      in
      let out = Dataset.of_partitions parts in
      record_io input (Dataset.cardinal out);
      out
    | Query.Dedup, [ c ] ->
      let d = go sp c in
      let input = Dataset.cardinal d in
      let ssp = sub sp "shuffle" in
      let d, moved = Dataset.shuffle_by ~partitions:n Fun.id d in
      Stats.record_shuffle stats ostat moved;
      finish_shuffle ssp moved;
      let out = mapp (fun rows -> List.map fst (group_rows Fun.id rows)) d in
      record_io input (Dataset.cardinal out);
      out
    | Query.Nest_rel (pairs, c_name), [ c ] ->
      let d = go sp c in
      let input = Dataset.cardinal d in
      let cty = Typecheck.infer env c in
      let attrs = List.map snd pairs in
      let all = List.map fst (Vtype.relation_fields cty) in
      let group_attrs = List.filter (fun a -> not (List.mem a attrs)) all in
      let ssp = sub sp "shuffle" in
      let d, moved = Dataset.shuffle_by ~partitions:n (key_of group_attrs) d in
      Stats.record_shuffle stats ostat moved;
      finish_shuffle ssp moved;
      let proj t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               ( label,
                 Option.value ~default:Value.Null (Value.field a t) ))
             pairs)
      in
      let nest rows =
        List.map
          (fun (k, members) ->
            let nested = List.map proj members in
            Value.concat_tuples k
              (Value.Tuple [ (c_name, Value.bag_of_list nested) ]))
          (group_by_attrs group_attrs rows)
      in
      let out = mapp nest d in
      record_io input (Dataset.cardinal out);
      out
    | Query.Group_agg (group, aggs), [ c ] ->
      let d = go sp c in
      let input = Dataset.cardinal d in
      let group_key t =
        Value.Tuple
          (List.map
             (fun (label, a) ->
               (label, Option.value ~default:Value.Null (Value.field a t)))
             group)
      in
      let ssp = sub sp "shuffle" in
      let d, moved = Dataset.shuffle_by ~partitions:n group_key d in
      Stats.record_shuffle stats ostat moved;
      finish_shuffle ssp moved;
      let aggregate rows =
        List.map
          (fun (k, members) ->
            let agg_fields =
              List.map
                (fun (fn, a, out_name) ->
                  let values =
                    match a with
                    | Some a ->
                      List.map
                        (fun t ->
                          match Value.field a t with
                          | Some v -> v
                          | None -> err "engine: unknown attribute %s" a)
                        members
                    | None -> List.map (fun _ -> Value.Int 1) members
                  in
                  (out_name, Agg.apply fn values))
                aggs
            in
            Value.concat_tuples k (Value.Tuple agg_fields))
          (group_rows group_key rows)
      in
      let out = mapp aggregate d in
      record_io input (Dataset.cardinal out);
      out
    | Query.Join (kind, pred), [ l; r ] ->
      run_join ~task:(Fmt.str "op:⋈#%d" q.id) sp ostat kind pred l r
    | Query.Product, [ l; r ] ->
      run_join ~task:(Fmt.str "op:×#%d" q.id) sp ostat Query.Inner Expr.True l r
    | _ -> err "engine: malformed query node (operator %d)" q.id
  and run_join ~task sp ostat kind pred l r =
    let lty = Typecheck.infer env l and rty = Typecheck.infer env r in
    let lfields = List.map fst (Vtype.relation_fields lty) in
    let rfields = List.map fst (Vtype.relation_fields rty) in
    let lnull = Vtype.null_tuple (Vtype.element lty) in
    let rnull = Vtype.null_tuple (Vtype.element rty) in
    let dl = go sp l and dr = go sp r in
    let input = Dataset.cardinal dl + Dataset.cardinal dr in
    let keys, residual = equi_split lfields rfields pred in
    let ssp = sub sp "shuffle" in
    let dl, dr, moved =
      match keys with
      | [] ->
        (* No equi key: gather both sides (the engine's "broadcast"). *)
        let dl, m1 = Dataset.gather dl and dr, m2 = Dataset.gather dr in
        (dl, dr, m1 + m2)
      | keys ->
        let lkey = key_of (List.map fst keys) in
        let rkey t =
          (* Hash right rows by the same tuple shape as the left key so that
             equal key values land in the same partition. *)
          match key_of (List.map snd keys) t with
          | Value.Tuple fields ->
            Value.Tuple
              (List.map2 (fun (a, _) (_, v) -> (a, v)) keys fields)
          | v -> v
        in
        let dl, m1 = Dataset.shuffle_by ~partitions:n lkey dl in
        let dr, m2 = Dataset.shuffle_by ~partitions:n rkey dr in
        (dl, dr, m1 + m2)
    in
    Stats.record_shuffle stats ostat moved;
    finish_shuffle ssp moved;
    let np = max (Dataset.partition_count dl) (Dataset.partition_count dr) in
    let part d i =
      if i < Dataset.partition_count d then (Dataset.partitions d).(i) else []
    in
    let join_part i =
      join_partition ~keys ~residual ~kind ~lnull ~rnull (part dl i)
        (part dr i)
    in
    (* Join tasks retry like narrow partition tasks: the shuffled input
       partitions are immutable, so recomputation is exact. *)
    let join_task i =
      Fault.protect ~policy:retry ~task:(Fmt.str "%s/p%d" task i) ~task_id:i
        ~on_retry:(fun ~attempt e -> retry_attr sp ~partition:i ~attempt e)
        (fun () ->
          Obs.Faultinject.fire "engine.partition";
          join_part i)
    in
    let parts =
      if parallel && np > 1 then
        Pool.map_array (Pool.default ()) join_task (Array.init np Fun.id)
      else Array.init np join_task
    in
    let out = Dataset.of_partitions parts in
    ostat.Stats.input_rows <- ostat.Stats.input_rows + input;
    ostat.Stats.output_rows <- ostat.Stats.output_rows + Dataset.cardinal out;
    out
  in
  let out_ty = Typecheck.infer env q in
  let root_sp = sub parent "engine.run" in
  let d = go root_sp q in
  let rel = Dataset.to_relation ~schema:out_ty d in
  Option.iter
    (fun s ->
      Obs.Span.set_int s "output_rows" (Relation.cardinal rel);
      Obs.Span.set_int s "shuffled_rows" (Stats.total_shuffled stats);
      Obs.Span.set_int s "stages" (Stats.stages stats);
      Obs.Span.finish s)
    root_sp;
  Stats.fold_into ?registry stats;
  (rel, stats)
