lib/core/nip.mli: Expr Format Nested Nrab Value Vtype
