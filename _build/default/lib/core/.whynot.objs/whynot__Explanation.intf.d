lib/core/explanation.mli: Format Nrab Opset
