lib/core/nip_syntax.ml: Expr Fmt List Nested Nip Nrab Option Sexp String Value
