(* Stage-level checkpoint store — durable Columnar.t batches on disk.

   The codec is deliberately dumb: little-endian fixed-width integers,
   one tag byte per column/value constructor, length-prefixed strings.
   Two subtleties:

   - Dict codes are process-local (the dictionary is hash-consed per
     process), so CStr columns serialize a local string table plus
     indexes into it and re-intern on decode.

   - Decoding must survive arbitrary bit flips: every length is
     validated against the remaining byte budget before allocation, so
     a corrupted count raises [Corrupt] instead of a multi-gigabyte
     [Array.make] or an out-of-bounds read.  (The CRC catches almost
     everything first; the validation is for torn headers and for the
     property tests that flip bits in the payload itself.) *)

open Nested

(* ------------------------------------------------------------------ *)
(* Ambient configuration                                               *)
(* ------------------------------------------------------------------ *)

type config = {
  dir : string option;
  checkpoint_shuffles : bool;
  max_memory_bytes : int option;
}

let mb_bytes mb = mb * 1024 * 1024

let config ?dir ?(checkpoint_shuffles = false) ?max_memory_mb () =
  { dir; checkpoint_shuffles; max_memory_bytes = Option.map mb_bytes max_memory_mb }

let env_config () =
  let dir = Sys.getenv_opt "WHYNOT_CHECKPOINT_DIR" in
  let shuffles =
    match Sys.getenv_opt "WHYNOT_CHECKPOINT_SHUFFLES" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false
  in
  let mb =
    Option.bind (Sys.getenv_opt "WHYNOT_MAX_MEMORY_MB") int_of_string_opt
  in
  if dir = None && (not shuffles) && mb = None then None
  else
    Some
      { dir; checkpoint_shuffles = shuffles;
        max_memory_bytes = Option.map mb_bytes mb }

let state = Atomic.make (env_config ())
let active () = Atomic.get state
let set_active c = Atomic.set state c

let with_config c f =
  let prev = Atomic.exchange state c in
  Fun.protect ~finally:(fun () -> Atomic.set state prev) f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_writes = lazy (Obs.Metrics.counter "engine.checkpoint.writes")
let m_reads = lazy (Obs.Metrics.counter "engine.checkpoint.reads")
let m_bytes = lazy (Obs.Metrics.counter "engine.checkpoint.bytes")
let m_corrupt = lazy (Obs.Metrics.counter "engine.checkpoint.corrupt")
let site_io = Obs.Faultinject.register_site "engine.checkpoint.io"

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE, reflected, poly 0xEDB88320)                           *)
(* ------------------------------------------------------------------ *)

(* Built eagerly: [crc32] runs on pool worker domains, and a lazy
   forced concurrently from two domains can raise
   [CamlinternalLazy.Undefined]. *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s =
  let t = crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* encoding --------------------------------------------------------- *)

let add_u8 = Buffer.add_uint8
let add_i64 b n = Buffer.add_int64_le b (Int64.of_int n)
let add_f64 b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let add_str b s =
  add_i64 b (String.length s);
  Buffer.add_string b s

let add_int_array b a =
  add_i64 b (Array.length a);
  Array.iter (add_i64 b) a

let add_presence b = function
  | None -> add_u8 b 0
  | Some bv ->
    add_u8 b 1;
    add_i64 b (Columnar.Bitv.length bv);
    add_str b (Columnar.Bitv.to_bytes bv)

let rec add_value b (v : Value.t) =
  match v with
  | Null -> add_u8 b 0
  | Bool x ->
    add_u8 b 1;
    add_u8 b (if x then 1 else 0)
  | Int n ->
    add_u8 b 2;
    add_i64 b n
  | Float f ->
    add_u8 b 3;
    add_f64 b f
  | String s ->
    add_u8 b 4;
    add_str b s
  | Tuple fields ->
    add_u8 b 5;
    add_i64 b (List.length fields);
    List.iter
      (fun (l, v) ->
        add_str b l;
        add_value b v)
      fields
  | Bag elems ->
    add_u8 b 6;
    add_i64 b (List.length elems);
    List.iter
      (fun (v, m) ->
        add_value b v;
        add_i64 b m)
      elems

let rec add_col b (c : Columnar.col) =
  match c with
  | CNull n ->
    add_u8 b 0;
    add_i64 b n
  | CConst (n, v) ->
    add_u8 b 1;
    add_i64 b n;
    add_value b v
  | CBool (bits, pres) ->
    add_u8 b 2;
    add_i64 b (Columnar.Bitv.length bits);
    add_str b (Columnar.Bitv.to_bytes bits);
    add_presence b pres
  | CInt (a, pres) ->
    add_u8 b 3;
    add_int_array b a;
    add_presence b pres
  | CFloat (a, pres) ->
    add_u8 b 4;
    add_i64 b (Array.length a);
    Array.iter (add_f64 b) a;
    add_presence b pres
  | CStr (codes, pres) ->
    (* Dict codes are meaningless in another process: emit a local
       string table plus per-row indexes into it.  Absent rows may
       carry placeholder codes; [lookup] of those still has to be
       total, so fall back to "" rather than fail the write. *)
    add_u8 b 5;
    let local = Hashtbl.create 16 in
    let strings = ref [] in
    let m = ref 0 in
    let localize code =
      match Hashtbl.find_opt local code with
      | Some i -> i
      | None ->
        let i = !m in
        Hashtbl.add local code i;
        strings :=
          (try Columnar.Dict.lookup code with _ -> "") :: !strings;
        incr m;
        i
    in
    let idx = Array.map localize codes in
    add_i64 b !m;
    List.iter (add_str b) (List.rev !strings);
    add_int_array b idx;
    add_presence b pres
  | CTuple (n, fields, pres) ->
    add_u8 b 6;
    add_i64 b n;
    add_i64 b (List.length fields);
    List.iter
      (fun (l, c) ->
        add_str b l;
        add_col b c)
      fields;
    add_presence b pres
  | CBag { bn; boff; bmult; belems; bpresent } ->
    add_u8 b 7;
    add_i64 b bn;
    add_int_array b boff;
    add_int_array b bmult;
    add_col b belems;
    add_presence b bpresent
  | CBox a ->
    add_u8 b 8;
    add_i64 b (Array.length a);
    Array.iter (add_value b) a

let encode (t : Columnar.t) =
  let b = Buffer.create 4096 in
  add_i64 b t.Columnar.n;
  add_col b t.Columnar.row;
  Buffer.contents b

(* decoding --------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let need cur n =
  if n < 0 || cur.pos + n > String.length cur.s then
    corrupt "truncated payload: need %d bytes at offset %d of %d" n cur.pos
      (String.length cur.s)

let get_u8 cur =
  need cur 1;
  let v = Char.code cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  v

let get_i64 cur =
  need cur 8;
  let v = Int64.to_int (String.get_int64_le cur.s cur.pos) in
  cur.pos <- cur.pos + 8;
  v

let get_f64 cur =
  need cur 8;
  let v = Int64.float_of_bits (String.get_int64_le cur.s cur.pos) in
  cur.pos <- cur.pos + 8;
  v

(* A logical row count: no allocation is proportional to it, but it
   must be non-negative. *)
let get_nat cur =
  let n = get_i64 cur in
  if n < 0 then corrupt "negative count %d at offset %d" n cur.pos;
  n

(* A count of following encoded items, each of which occupies at least
   one byte — bounding allocations by the remaining payload. *)
let get_count cur =
  let n = get_i64 cur in
  need cur n;
  n

let get_str cur =
  let n = get_i64 cur in
  need cur n;
  let s = String.sub cur.s cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_int_array cur =
  let n = get_i64 cur in
  need cur (8 * n);
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- get_i64 cur
  done;
  a

let get_bitv cur =
  let len = get_nat cur in
  let raw = get_str cur in
  try Columnar.Bitv.of_bytes len raw
  with Invalid_argument m -> corrupt "%s" m

let get_presence cur =
  match get_u8 cur with
  | 0 -> None
  | 1 -> Some (get_bitv cur)
  | t -> corrupt "bad presence tag %d" t

(* Reads happen in list order — List.init's application order is
   unspecified, which would scramble the cursor. *)
let rec read_list n f =
  if n <= 0 then []
  else
    let x = f () in
    x :: read_list (n - 1) f

let rec get_value cur : Value.t =
  match get_u8 cur with
  | 0 -> Null
  | 1 -> Bool (get_u8 cur <> 0)
  | 2 -> Int (get_i64 cur)
  | 3 -> Float (get_f64 cur)
  | 4 -> String (get_str cur)
  | 5 ->
    let n = get_count cur in
    Tuple
      (read_list n (fun () ->
           let l = get_str cur in
           let v = get_value cur in
           (l, v)))
  | 6 ->
    let n = get_count cur in
    (* [Value.bag] re-canonicalizes; encoded contents were canonical,
       so this is the identity on well-formed input and a repair on
       anything else. *)
    Value.bag
      (read_list n (fun () ->
           let v = get_value cur in
           let m = get_i64 cur in
           (v, m)))
  | t -> corrupt "bad value tag %d" t

let rec get_col cur : Columnar.col =
  match get_u8 cur with
  | 0 -> CNull (get_nat cur)
  | 1 ->
    let n = get_nat cur in
    CConst (n, get_value cur)
  | 2 ->
    let bits = get_bitv cur in
    CBool (bits, get_presence cur)
  | 3 ->
    let a = get_int_array cur in
    CInt (a, get_presence cur)
  | 4 ->
    let n = get_i64 cur in
    need cur (8 * n);
    let a = Array.make n 0.0 in
    for i = 0 to n - 1 do
      a.(i) <- get_f64 cur
    done;
    CFloat (a, get_presence cur)
  | 5 ->
    let m = get_count cur in
    let table = Array.make (max m 1) 0 in
    for i = 0 to m - 1 do
      table.(i) <- Columnar.Dict.intern (get_str cur)
    done;
    let idx = get_int_array cur in
    let codes =
      Array.map
        (fun i ->
          if i < 0 || i >= m then corrupt "dict index %d out of %d" i m
          else table.(i))
        idx
    in
    CStr (codes, get_presence cur)
  | 6 ->
    let n = get_nat cur in
    let nf = get_count cur in
    let fields =
      read_list nf (fun () ->
          let l = get_str cur in
          let c = get_col cur in
          (l, c))
    in
    CTuple (n, fields, get_presence cur)
  | 7 ->
    let bn = get_nat cur in
    let boff = get_int_array cur in
    let bmult = get_int_array cur in
    let belems = get_col cur in
    let bpresent = get_presence cur in
    if Array.length boff <> bn + 1 then
      corrupt "bag offset vector has %d entries for %d rows"
        (Array.length boff) bn;
    (* The offsets index [belems]/[bmult] from inside the columnar
       kernels, so a CRC-valid-but-malformed payload (or a direct
       [decode] caller) must be rejected here — not surface later as
       [Invalid_argument] deep in a gather. *)
    if boff.(0) <> 0 then corrupt "bag offsets start at %d, not 0" boff.(0);
    for i = 0 to bn - 1 do
      if boff.(i + 1) < boff.(i) then
        corrupt "bag offsets decrease at row %d (%d -> %d)" i boff.(i)
          boff.(i + 1)
    done;
    let ne = Columnar.col_length belems in
    if boff.(bn) > ne then
      corrupt "bag offsets address %d elements but only %d are stored"
        boff.(bn) ne;
    if Array.length bmult < boff.(bn) then
      corrupt "bag multiplicity vector has %d entries for %d elements"
        (Array.length bmult) boff.(bn);
    CBag { bn; boff; bmult; belems; bpresent }
  | 8 ->
    let n = get_count cur in
    let a = Array.make (max n 1) Value.Null in
    for i = 0 to n - 1 do
      a.(i) <- get_value cur
    done;
    CBox (Array.sub a 0 n)
  | t -> corrupt "bad column tag %d" t

let decode s =
  let cur = { s; pos = 0 } in
  let n = get_nat cur in
  let row = get_col cur in
  if cur.pos <> String.length s then
    corrupt "%d trailing bytes after payload" (String.length s - cur.pos);
  { Columnar.n; row }

(* framing ---------------------------------------------------------- *)

let magic = "WNCK"
let version = 1
let header_len = 4 + 1 + 8 + 4

let frame payload =
  let b = Buffer.create (String.length payload + header_len) in
  Buffer.add_string b magic;
  Buffer.add_uint8 b version;
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (crc32 payload));
  Buffer.add_string b payload;
  Buffer.contents b

let unframe s =
  if String.length s < header_len then
    corrupt "file too short (%d bytes)" (String.length s);
  if String.sub s 0 4 <> magic then corrupt "bad magic";
  let v = Char.code s.[4] in
  if v <> version then corrupt "unsupported codec version %d" v;
  let len64 = String.get_int64_le s 5 in
  let len = Int64.to_int len64 in
  (* compare through int64: Int64.to_int silently drops bit 63, so a
     corrupted top bit would otherwise be invisible to the size check *)
  if Int64.of_int len <> len64 || len < 0 || header_len + len <> String.length s
  then
    corrupt "payload length %d does not match file size %d" len
      (String.length s);
  let stored = Int32.to_int (String.get_int32_le s 13) land 0xFFFFFFFF in
  let payload = String.sub s header_len len in
  if crc32 payload <> stored then
    corrupt "CRC mismatch (stored %08x, computed %08x)" stored (crc32 payload);
  payload

(* ------------------------------------------------------------------ *)
(* Per-run directory                                                   *)
(* ------------------------------------------------------------------ *)

let dir_mutex = Mutex.create ()
let run_dir_ref = ref None
let seq = ref 0
let at_exit_registered = ref false

(* Pins on the run directory (one per in-flight execution) and whether
   a sweep arrived while pinned.  Spilled partitions can hold their
   *only* copy in this directory, so a sweep must never race an
   in-flight run: it is deferred until the last pin is released. *)
let pins = ref 0
let sweep_deferred = ref false

let rm_rf path =
  let rec rm path =
    match (Unix.lstat path).Unix.st_kind with
    | Unix.S_DIR ->
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      (try Unix.rmdir path with _ -> ())
    | _ -> ( try Sys.remove path with _ -> ())
    | exception _ -> ()
  in
  rm path

(* Under [dir_mutex]. *)
let sweep_now () =
  sweep_deferred := false;
  match !run_dir_ref with
  | None -> ()
  | Some d ->
    run_dir_ref := None;
    rm_rf d

let sweep () =
  Mutex.protect dir_mutex (fun () ->
      if !pins > 0 then sweep_deferred := true else sweep_now ())

let retain () = Mutex.protect dir_mutex (fun () -> incr pins)

let release () =
  Mutex.protect dir_mutex (fun () ->
      pins := max 0 (!pins - 1);
      if !pins = 0 && !sweep_deferred then sweep_now ())

let with_retained f =
  retain ();
  Fun.protect ~finally:release f

let run_dir () = Mutex.protect dir_mutex (fun () -> !run_dir_ref)

(* Under [dir_mutex].  A stale directory from a crashed process that
   recycled our pid is cleared, not reused: its files are from a
   different run and must never satisfy a read. *)
let ensure_dir () =
  match !run_dir_ref with
  | Some d -> d
  | None ->
    let base =
      match active () with
      | Some { dir = Some d; _ } -> d
      | _ -> Filename.get_temp_dir_name ()
    in
    (try Unix.mkdir base 0o755 with _ -> ());
    let d = Filename.concat base (Fmt.str "whynot-ckpt-%d" (Unix.getpid ())) in
    rm_rf d;
    Unix.mkdir d 0o700;
    run_dir_ref := Some d;
    if not !at_exit_registered then begin
      at_exit_registered := true;
      (* Force, ignoring pins: at process exit nothing can read the
         directory anymore, and a pin leaked by an aborted run must not
         leave files behind. *)
      at_exit (fun () -> Mutex.protect dir_mutex sweep_now)
    end;
    d

let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    label

let fresh_path ~label =
  Mutex.protect dir_mutex (fun () ->
      let d = ensure_dir () in
      incr seq;
      Filename.concat d (Fmt.str "%s-%06d.ckpt" (sanitize label) !seq))

(* ------------------------------------------------------------------ *)
(* File IO                                                             *)
(* ------------------------------------------------------------------ *)

let write ~path t =
  let framed = frame (encode t) in
  (* The chaos transform runs after the CRC is computed, so a garbled
     write produces exactly the torn-file shape [read] must reject. *)
  let framed = Obs.Faultinject.transform site_io framed in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc framed;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with _ -> ());
     raise e);
  Sys.rename tmp path;
  Obs.Metrics.Counter.incr (Lazy.force m_writes);
  Obs.Metrics.Counter.incr ~by:(String.length framed) (Lazy.force m_bytes);
  String.length framed

(* A local durability check, not a replay read: no fault site, no
   read/corrupt counters — callers decide what a failed verification
   means (spill keeps the partition resident and counts a write
   failure). *)
let verify ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> ( match unframe s with _ -> true | exception Corrupt _ -> false)
  | exception _ -> false

let read ~path =
  Obs.Faultinject.fire site_io;
  try
    let ic =
      try open_in_bin path
      with Sys_error m -> corrupt "cannot open checkpoint: %s" m
    in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let t = decode (unframe s) in
    Obs.Metrics.Counter.incr (Lazy.force m_reads);
    t
  with Corrupt _ as e ->
    Obs.Metrics.Counter.incr (Lazy.force m_corrupt);
    raise e
