(** Surface syntax for NRAB queries, predicates, and expressions.

    Queries are s-expressions, e.g. the paper's running example:

    {v
 (nest (name) nList
   (project (name city)
     (select (>= year 2019)
       (flatten-inner address2 (table person)))))
    v}

    Grammar (see {!query_of_sexp}):
    - [(table NAME)]
    - [(select PRED Q)]
    - [(project (COL ...) Q)] where [COL := NAME | (NAME EXPR)]
    - [(rename ((NEW OLD) ...) Q)]
    - [(join KIND PRED Q Q)] with [KIND ∈ inner|left|right|full]
    - [(product Q Q)], [(union Q Q)], [(diff Q Q)], [(dedup Q)]
    - [(flatten-tuple A Q)], [(flatten-inner A Q)], [(flatten-outer A Q)]
    - [(nest-tuple (N ...) C Q)], [(nest (N ...) C Q)] where
      [N := A | (LABEL A)] relabels the nested attribute in the output
    - [(agg FN A B Q)] — per-tuple aggregation
    - [(groupby (N ...) ((FN A OUT) ...) Q)] with [A = *] for count(·)

    Predicates: [true], [false], [(and P P)], [(or P P)], [(not P)],
    [(= E E)] (and [!=] [<] [<=] [>] [>=]), [(is-null E)], [(not-null E)],
    [(contains E TEXT)].  Expressions: attribute names, integer and float
    literals, [(str TEXT)], [(bool true)], [(bool false)], [(+ E E)]
    (and [-] [*] [/]). *)

exception Parse_error of string

val expr_of_sexp : Sexp.t -> Expr.t
val expr_to_sexp : Expr.t -> Sexp.t
val pred_of_sexp : Sexp.t -> Expr.pred
val pred_to_sexp : Expr.pred -> Sexp.t

(** Parse a query; operator ids come from [gen] (fresh by default). *)
val query_of_sexp : ?gen:Query.Gen.t -> Sexp.t -> Query.t

(** Print a query back to the surface syntax.  Relabeled
    nests/group-bys print their [(LABEL A)] pairs, so every checked
    query round-trips. *)
val query_to_sexp : Query.t -> Sexp.t

val query_of_string : ?gen:Query.Gen.t -> string -> Query.t
val query_to_string : Query.t -> string
val pred_of_string : string -> Expr.pred
val expr_of_string : string -> Expr.t
