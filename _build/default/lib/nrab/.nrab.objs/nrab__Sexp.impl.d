lib/nrab/sexp.ml: Buffer Fmt List String
