lib/scenarios/scenario.mli: Format Nrab Query Whynot
