(** The crime dataset of scenarios C1–C3 (Table 6): persons, witnesses,
    sightings, and crimes.  Small by design — it is the qualitative
    comparison against Why-Not and Conseil, and small enough for the
    exact MSR search to act as ground truth. *)

open Nested

val persons_schema : Vtype.t
val witnesses_schema : Vtype.t
val sightings_schema : Vtype.t
val crimes_schema : Vtype.t

(** Tables: [persons], [witnesses], [sightings], [crimes]. *)
val db : unit -> Relation.Db.t
