(** Nested relations (a bag of tuples with its schema) and nested
    databases (named relations). *)

type t

(** [make ~schema ~data] pairs a bag of tuples with its relation schema.
    Raises [Invalid_argument] when [schema] is not a bag-of-tuples type or
    [data] is not a bag.  Use {!well_typed} for a deep check. *)
val make : schema:Vtype.t -> data:Value.t -> t

val schema : t -> Vtype.t

(** The underlying canonical bag. *)
val data : t -> Value.t

(** Fields (name × type) of the relation's tuples. *)
val fields : t -> (string * Vtype.t) list

val attribute_names : t -> string list

(** Total number of tuples (with multiplicities). *)
val cardinal : t -> int

(** Tuples expanded to their multiplicities. *)
val tuples : t -> Value.t list

(** Distinct tuples (multiplicities dropped). *)
val distinct_tuples : t -> Value.t list

(** Build a relation from a tuple list (each occurrence counts 1). *)
val of_tuples : schema:Vtype.t -> Value.t list -> t

(** Deep type check of the data against the schema. *)
val well_typed : t -> bool

val pp : Format.formatter -> t -> unit

(** Nested databases: table name → relation. *)
module Db : sig
  type relation := t
  type t

  val empty : t
  val add : string -> relation -> t -> t
  val find : string -> t -> relation option

  (** Raises [Invalid_argument] on unknown tables. *)
  val find_exn : string -> t -> relation

  val of_list : (string * relation) list -> t
  val tables : t -> (string * relation) list
end
