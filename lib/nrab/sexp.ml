(* Minimal s-expressions: the concrete syntax for queries, predicates, and
   why-not patterns (see Parser). *)

type t = Atom of string | List of t list

exception Parse_error of string
exception Parse_error_at of { offset : int; message : string }

let fail fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

(* Structured-position failure; [of_string] degrades it to the legacy
   {!Parse_error} with the identical message text. *)
let fail_at offset fmt =
  Fmt.kstr (fun m -> raise (Parse_error_at { offset; message = m })) fmt

(* --- printing --- *)

let atom_needs_quotes (s : string) : bool =
  s = ""
  || String.exists
       (fun c -> c = ' ' || c = '(' || c = ')' || c = '"' || c = '\n' || c = '\t')
       s

let rec pp ppf (s : t) =
  match s with
  | Atom a ->
    if atom_needs_quotes a then Fmt.pf ppf "%S" a else Fmt.string ppf a
  | List els -> Fmt.pf ppf "@[<hov 1>(%a)@]" (Fmt.list ~sep:Fmt.sp pp) els

let to_string s = Fmt.str "%a" pp s

(* --- parsing --- *)

type spanned = { node : spanned_node; left : int; right : int }
and spanned_node = SAtom of string | SList of spanned list

let rec strip (s : spanned) : t =
  match s.node with
  | SAtom a -> Atom a
  | SList els -> List (List.map strip els)

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None
let advance lx = lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | Some ';' ->
    (* comment to end of line *)
    while (match peek lx with Some c when c <> '\n' -> true | _ -> false) do
      advance lx
    done;
    skip_ws lx
  | _ -> ()

(* The error messages below embed the lexer position where the legacy
   parser embedded it (end-of-input for unterminated forms); the
   structured offset instead anchors at the character that opened the
   unterminated form, so caret rendering points somewhere useful. *)

let parse_quoted lx : string =
  let opening = lx.pos in
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> fail_at opening "unterminated string at offset %d" lx.pos
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some 'n' -> advance lx; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance lx; Buffer.add_char buf '\t'; go ()
      | Some c -> advance lx; Buffer.add_char buf c; go ()
      | None -> fail_at opening "unterminated escape")
    | Some c ->
      advance lx;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_atom lx : string =
  let start = lx.pos in
  let is_atom_char c =
    not (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' || c = ')' || c = '"' || c = ';')
  in
  while (match peek lx with Some c -> is_atom_char c | None -> false) do
    advance lx
  done;
  if lx.pos = start then fail_at start "expected atom at offset %d" start;
  String.sub lx.src start (lx.pos - start)

let rec parse_sexp lx : spanned =
  skip_ws lx;
  let start = lx.pos in
  match peek lx with
  | None -> fail_at lx.pos "unexpected end of input"
  | Some '(' ->
    advance lx;
    let rec elements acc =
      skip_ws lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        List.rev acc
      | None -> fail_at start "unterminated list"
      | Some _ -> elements (parse_sexp lx :: acc)
    in
    let els = elements [] in
    { node = SList els; left = start; right = lx.pos }
  | Some ')' -> fail_at lx.pos "unexpected ')' at offset %d" lx.pos
  | Some '"' ->
    let a = parse_quoted lx in
    { node = SAtom a; left = start; right = lx.pos }
  | Some _ ->
    let a = parse_atom lx in
    { node = SAtom a; left = start; right = lx.pos }

let of_string_spanned (s : string) : spanned =
  let lx = { src = s; pos = 0 } in
  let sexp = parse_sexp lx in
  skip_ws lx;
  if lx.pos <> String.length s then
    fail_at lx.pos "trailing input at offset %d" lx.pos;
  sexp

let of_string (s : string) : t =
  try strip (of_string_spanned s)
  with Parse_error_at { message; _ } -> raise (Parse_error message)
