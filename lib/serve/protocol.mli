(** Line-delimited JSON wire protocol of the why-not service.

    One request object per line in, one response object per line out.
    Queries travel as JSON strings in either surface syntax — the
    SQL-ish frontend ({!Frontend.Parse}) or s-expressions
    ({!Nrab.Parser}); the syntax is auto-detected (a first non-blank
    ['('] or [';'] means s-expression).  Why-not patterns use the NIP
    s-expression syntax ({!Whynot.Nip_syntax}).  Everything else is
    plain JSON via {!Nested.Json}.

    Requests ([op] field selects the operation):
    - [{"op":"register","dataset":"D1","scale":2,"seed":7,"refresh":false}]
    - [{"op":"explain","dataset":"D1","scale":2,"query":"SELECT ...",
       "whynot":"(...)","use_sas":true,"max_sas":16,"revalidate":true,
       "deadline_ms":500}] — [query]/[whynot] default to the scenario's
      own question; ["query_name":"..."] (exclusive with [query]) runs a
      query previously stored with [register_query].  Optional
      approximation knobs: ["budget_ms"] (degrade precision as the
      wall-clock budget burns), ["sample_stride"] (1-in-N sampled
      tracing), ["top_k"] (keep only the k best explanations) — any of
      them makes the response carry an ["approx"] report
    - [{"op":"parse","dataset":"D1","query":"SELECT ...","whynot":"(...)"}]
      — compile and typecheck against the dataset's schema without
      running anything; returns the canonical SQL, the s-expression
      form, the fingerprint, and the output type
    - [{"op":"register_query","name":"q1","dataset":"D1",
       "query":"SELECT ...","whynot":"(...)"}] — store a named query
      (and optional default pattern) for later [explain] requests
    - [{"op":"list_queries","dataset":"D1","scale":2}] — enumerate the
      stored queries (name, fingerprint, canonical SQL when printable,
      s-expression), sorted by name; without ["dataset"], every
      dataset's queries sorted by ⟨dataset, name⟩
    - [{"op":"stats"}]
    - [{"op":"telemetry","format":"prometheus"}] (or ["json"]) — metrics
      export
    - [{"op":"evict","dataset":"D1","scale":2}] /
      [{"op":"evict","cache":true}]
    - [{"op":"shutdown"}]

    Any request may carry an optional ["trace_id"] (1–64 chars of
    [A-Za-z0-9._:-]): the server adopts it as the request's trace
    context (all spans and log records it produces carry it) and echoes
    it as a trailing ["trace_id"] field on the response.  Requests
    without one get a server-generated id — used in logs, {e not}
    echoed, so id-less transcripts stay deterministic.

    Every response carries ["ok"] and ["type"]; failures are
    [{"ok":false,"type":"error","code":...,"message":...}] with code one
    of [bad_request], [invalid_query], [not_found], [overloaded],
    [deadline_exceeded], [internal].  An [invalid_query] error carries
    the frontend diagnostic (stage, position, snippet, hint) under
    ["details"]. *)

open Nested
open Nrab

type explain_options = {
  use_sas : bool;
  max_sas : int;
  revalidate : bool;
  parallel : bool;  (** affects scheduling only, never the result *)
  sample_stride : int option;
      (** force 1-in-N sampled tracing (≥ 1); result-affecting, so part
          of the explanation-cache key *)
  top_k : int option;
      (** keep only the k best-ranked explanations (≥ 1);
          result-affecting, so part of the explanation-cache key *)
}

val default_options : explain_options

(** An explain query as it left the protocol layer: s-expressions are
    parsed eagerly (no schema needed), SQL text is compiled by the
    handler against the dataset's schema environment. *)
type query_text = [ `Ast of Query.t | `Sql of string ]

type request =
  | Register of { dataset : string; scale : int; seed : int; refresh : bool }
  | Explain of {
      dataset : string;
      scale : int;
      seed : int;
      query : query_text option;
      query_name : string option;  (** a [register_query]-stored query *)
      pattern : Whynot.Nip.t option;
      options : explain_options;
      deadline_ms : float option;
      budget_ms : float option;
          (** wall-clock approximation budget: the run degrades
              exact → sampled → top-k-only as it burns (it never aborts —
              that is [deadline_ms]'s job); result-affecting, so part of
              the explanation-cache key *)
    }
  | Parse of {
      dataset : string;
      scale : int;
      seed : int;
      query : string option;
      pattern : string option;
    }
  | Register_query of {
      name : string;
      dataset : string;
      scale : int;
      seed : int;
      query : string;
      pattern : string option;
    }
  | List_queries of {
      dataset : string option;  (** [None] lists every dataset's queries *)
      scale : int;
      seed : int;
    }
  | Stats
  | Telemetry of { format : [ `Prometheus | `Json ] }
  | Evict of {
      dataset : string option;  (** [None] with [cache] clears caches only *)
      scale : int;
      seed : int;
      cache : bool;  (** also clear the explanation + handle caches *)
    }
  | Shutdown

(** A request plus its optional client-supplied trace id. *)
type envelope = { req : request; trace_id : string option }

(** Parse one request line.  [Error] is a bad-request message. *)
val request_of_string : string -> (request, string) result

val request_of_json : Json.json -> (request, string) result

(** Like {!request_of_string}, also extracting (and validating — see
    {!Obs.Trace_context.is_valid}) the optional ["trace_id"] field. *)
val envelope_of_string : string -> (envelope, string) result

val envelope_of_json : Json.json -> (envelope, string) result

type error_code =
  | Bad_request
  | Invalid_query
      (** the query or pattern text failed to lex, parse, or typecheck *)
  | Not_found
  | Overloaded
  | Deadline_exceeded
  | Task_failed  (** a task's retry budget was exhausted mid-run *)
  | Internal

val error_code_to_string : error_code -> string

(** One stored query, as reported by [list_queries]. *)
type query_info = {
  q_name : string;  (** the name it was registered under *)
  q_dataset : string;
  q_fingerprint : string;  (** hex, id-insensitive *)
  q_sql : string option;  (** canonical SQL reprint, when printable *)
  q_sexp : string;  (** canonical s-expression form *)
}

type response =
  | Registered of {
      dataset : string;
      scale : int;
      seed : int;
      version : int;
      fresh : bool;  (** whether this call (re)generated the data *)
      rows : int;
      tables : (string * int) list;
    }
  | Explained of {
      dataset : string;
      version : int;
      cache : [ `Hit | `Miss | `Handle | `Coalesced ];
          (** [`Handle]: explanations were recomputed but the traced-run
              handle was reused, skipping re-tracing; [`Coalesced]: this
              request shared a concurrent identical request's execution
              (single-flight) *)
      result : Json.json;  (** {!Codec.result_to_json} payload *)
    }
  | Parsed of {
      dataset : string;
      sql : string option;
          (** canonical SQL reprint (absent for query-less requests) *)
      sexp : string option;  (** canonical s-expression form *)
      fingerprint : string option;  (** hex, id-insensitive *)
      output_type : string option;
      pattern : string option;  (** canonical pattern reprint *)
    }
  | Query_registered of {
      name : string;
      dataset : string;
      fingerprint : string;
      sql : string option;
      sexp : string;
      replaced : bool;  (** an earlier query of the same name was replaced *)
    }
  | Queries of {
      dataset : string option;  (** echoed filter, when one was given *)
      queries : query_info list;  (** sorted by ⟨dataset, name⟩ *)
    }
  | Stats_reply of (string * Json.json) list  (** named stat sections *)
  | Telemetry_reply of {
      format : [ `Prometheus | `Json ];
      metrics : Json.json;
          (** Prometheus: a [J_string] holding the text exposition;
              JSON: the {!Obs.Export.json} object *)
    }
  | Evicted of {
      datasets : int;
      cache_entries : int;
      queries : int;  (** registered queries dropped with the dataset *)
    }
  | Error of {
      code : error_code;
      message : string;
      details : Json.json option;
          (** for [Invalid_query]: the {!Frontend.Diagnostic.to_json}
              payload *)
    }
  | Goodbye

(** One line, no embedded newlines.  [?trace_id] (the id the client
    supplied, if any) is appended as a trailing ["trace_id"] field. *)
val response_to_string : ?trace_id:string -> response -> string

val response_to_json : ?trace_id:string -> response -> Json.json

(** Convenience constructors for error responses. *)
val bad_request : string -> response

val not_found : string -> response

(** An [Invalid_query] error from a frontend diagnostic: the one-line
    rendering as the message, the structured payload as details. *)
val invalid_query : source:string -> Frontend.Diagnostic.t -> response
