(* Canonical, structure-stable fingerprints — the serving layer's cache
   keys.

   64-bit FNV-1a over a token stream of the AST.  Every variable-length
   component (strings, lists) is length-prefixed, so adjacent tokens
   cannot alias across boundaries ("ab"+"c" vs "a"+"bc").  Operator ids
   are excluded from query fingerprints: ids are assigned by whichever
   generator parsed or built the query, and the cache must recognize the
   same query text registered twice (alpha-equivalent parameterization).
   Everything that changes the result — structure, parameters, constants,
   attribute names — is mixed in. *)

open Nested
open Nrab

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int h n =
  let rec go h i = if i = 8 then h else go (mix_byte h (n asr (8 * i))) (i + 1) in
  go h 0

let mix_int64 h (n : int64) =
  let rec go h i =
    if i = 8 then h
    else go (mix_byte h (Int64.to_int (Int64.shift_right_logical n (8 * i)))) (i + 1)
  in
  go h 0

let mix_string h s =
  let h = mix_int h (String.length s) in
  let r = ref h in
  String.iter (fun c -> r := mix_byte !r (Char.code c)) s;
  !r

(* Constructor tags are single characters; the token they start is always
   followed by length-prefixed payloads, so single-byte tags suffice. *)
let tag h c = mix_byte h (Char.code c)

let mix_list mix h xs =
  List.fold_left mix (mix_int h (List.length xs)) xs

let rec mix_value h (v : Value.t) =
  match v with
  | Value.Null -> tag h 'N'
  | Value.Bool b -> mix_int (tag h 'B') (Bool.to_int b)
  | Value.Int i -> mix_int (tag h 'I') i
  | Value.Float f -> mix_int64 (tag h 'F') (Int64.bits_of_float f)
  | Value.String s -> mix_string (tag h 'S') s
  | Value.Tuple fields ->
    mix_list
      (fun h (l, v) -> mix_value (mix_string h l) v)
      (tag h 'T') fields
  | Value.Bag elems ->
    (* canonical order by construction, so order-sensitive mixing is
       deterministic *)
    mix_list
      (fun h (v, m) -> mix_int (mix_value h v) m)
      (tag h 'G') elems

let rec mix_expr h (e : Expr.t) =
  match e with
  | Expr.Const v -> mix_value (tag h 'c') v
  | Expr.Attr a -> mix_string (tag h 'a') a
  | Expr.Add (x, y) -> mix_expr (mix_expr (tag h '+') x) y
  | Expr.Sub (x, y) -> mix_expr (mix_expr (tag h '-') x) y
  | Expr.Mul (x, y) -> mix_expr (mix_expr (tag h '*') x) y
  | Expr.Div (x, y) -> mix_expr (mix_expr (tag h '/') x) y

let mix_cmp h (c : Expr.cmp) =
  tag h
    (match c with
    | Expr.Eq -> '='
    | Expr.Neq -> '!'
    | Expr.Lt -> '<'
    | Expr.Le -> 'l'
    | Expr.Gt -> '>'
    | Expr.Ge -> 'g')

let rec mix_pred h (p : Expr.pred) =
  match p with
  | Expr.True -> tag h 't'
  | Expr.False -> tag h 'f'
  | Expr.Cmp (c, x, y) -> mix_expr (mix_expr (mix_cmp (tag h 'C') c) x) y
  | Expr.And (a, b) -> mix_pred (mix_pred (tag h '&') a) b
  | Expr.Or (a, b) -> mix_pred (mix_pred (tag h '|') a) b
  | Expr.Not a -> mix_pred (tag h '~') a
  | Expr.IsNull e -> mix_expr (tag h '0') e
  | Expr.IsNotNull e -> mix_expr (tag h '1') e
  | Expr.Contains (e, s) -> mix_string (mix_expr (tag h 's') e) s

let mix_pairs h pairs =
  mix_list (fun h (a, b) -> mix_string (mix_string h a) b) h pairs

let mix_agg_fn h fn = mix_string h (Agg.fn_to_string fn)

let mix_node h (n : Query.node) =
  match n with
  | Query.Table name -> mix_string (tag h 'R') name
  | Query.Select p -> mix_pred (tag h 'S') p
  | Query.Project cols ->
    mix_list (fun h (name, e) -> mix_expr (mix_string h name) e) (tag h 'P') cols
  | Query.Rename pairs -> mix_pairs (tag h 'r') pairs
  | Query.Join (kind, p) ->
    let h = tag h 'J' in
    let h =
      tag h
        (match kind with
        | Query.Inner -> 'i'
        | Query.Left -> 'l'
        | Query.Right -> 'r'
        | Query.Full -> 'f')
    in
    mix_pred h p
  | Query.Product -> tag h 'X'
  | Query.Union -> tag h 'U'
  | Query.Diff -> tag h 'D'
  | Query.Dedup -> tag h 'd'
  | Query.Flatten_tuple a -> mix_string (tag h 'T') a
  | Query.Flatten (kind, a) ->
    let h = tag h 'F' in
    let h = tag h (match kind with Query.Flat_inner -> 'i' | Query.Flat_outer -> 'o') in
    mix_string h a
  | Query.Nest_tuple (pairs, into) -> mix_string (mix_pairs (tag h 'n') pairs) into
  | Query.Nest_rel (pairs, into) -> mix_string (mix_pairs (tag h 'M') pairs) into
  | Query.Agg_tuple (fn, over, into) ->
    mix_string (mix_string (mix_agg_fn (tag h 'A') fn) over) into
  | Query.Group_agg (groups, aggs) ->
    let h = mix_pairs (tag h 'G') groups in
    mix_list
      (fun h (fn, over, out) ->
        let h = mix_agg_fn h fn in
        let h =
          match over with
          | None -> tag h '*'
          | Some a -> mix_string (tag h '.') a
        in
        mix_string h out)
      h aggs

(* Pre-order, children length-prefixed; ids never touched. *)
let rec mix_query h (q : Query.t) =
  mix_list mix_query (mix_node h q.Query.node) q.Query.children

let rec mix_nip h (p : Whynot.Nip.t) =
  match p with
  | Whynot.Nip.Any -> tag h '?'
  | Whynot.Nip.Prim v -> mix_value (tag h 'p') v
  | Whynot.Nip.Pred (c, v) -> mix_value (mix_cmp (tag h 'q') c) v
  | Whynot.Nip.Tup fields ->
    mix_list (fun h (l, p) -> mix_nip (mix_string h l) p) (tag h 't') fields
  | Whynot.Nip.Bag (elems, star) ->
    mix_int (mix_list mix_nip (tag h 'b') elems) (Bool.to_int star)

let mix_alternatives h (alts : Whynot.Alternatives.alternatives) =
  mix_list
    (fun h (table, group) ->
      mix_list
        (fun h path -> mix_list mix_string h path)
        (mix_string h table) group)
    h alts

let value v = mix_value fnv_offset v
let expr e = mix_expr fnv_offset e
let pred p = mix_pred fnv_offset p
let query q = mix_query fnv_offset q
let nip p = mix_nip fnv_offset p
let alternatives a = mix_alternatives fnv_offset a

type options = {
  use_sas : bool;
  max_sas : int;
  revalidate : bool;
  sample_stride : int option;
  top_k : int option;
  budget_ms : float option;
}

let default_options =
  {
    use_sas = true;
    max_sas = 16;
    revalidate = true;
    sample_stride = None;
    top_k = None;
    budget_ms = None;
  }

(* Options absent (the exact path) mix a sentinel distinct from every
   present value, so an exact entry can never alias an approximate one —
   and vice versa — even for degenerate knob values. *)
let mix_int_opt h = function
  | None -> mix_int h (-1)
  | Some v -> mix_int (mix_int h 1) v

let mix_float_opt h = function
  | None -> mix_int h (-1)
  | Some v -> mix_int64 (mix_int h 1) (Int64.bits_of_float v)

let options o =
  let h =
    mix_int
      (mix_int (mix_int fnv_offset (Bool.to_int o.use_sas)) o.max_sas)
      (Bool.to_int o.revalidate)
  in
  mix_float_opt (mix_int_opt (mix_int_opt h o.sample_stride) o.top_k)
    o.budget_ms

let combine hs = List.fold_left mix_int64 fnv_offset hs

let to_hex h = Printf.sprintf "%016Lx" h

let prepare_key ~dataset ~version ~options:o ~alternatives:alts q =
  to_hex
    (combine
       [ mix_string fnv_offset dataset; Int64.of_int version; options o;
         mix_alternatives fnv_offset alts; query q ])

let explain_key ~dataset ~version ~options:o ~alternatives:alts q pattern =
  to_hex
    (combine
       [ mix_string fnv_offset dataset; Int64.of_int version; options o;
         mix_alternatives fnv_offset alts; query q; nip pattern ])
