lib/core/question.mli: Format Nested Nip Nrab Query Relation Value
