(* Reference evaluator for NRAB with bag semantics (Table 1).

   This is the semantic ground truth; the mini-DISC engine in [lib/engine]
   must agree with it (and the test suite checks that it does). *)

open Nested

exception Runtime_error of string

let err fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

let schema_env (db : Relation.Db.t) : Typecheck.env =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

let tuple_fields_of_type op ty =
  match ty with
  | Vtype.TBag (Vtype.TTuple fields) -> fields
  | _ -> err "operator %d: not a relation type" op

(* Evaluate query [q] over database [db] to a nested relation. *)
let rec eval (db : Relation.Db.t) (q : Query.t) : Relation.t =
  let env = schema_env db in
  let out_ty = Typecheck.infer env q in
  let data = eval_data db q in
  Relation.make ~schema:out_ty ~data

and eval_data (db : Relation.Db.t) (q : Query.t) : Value.t =
  let env = schema_env db in
  match q.node, q.children with
  | Query.Table name, [] -> Relation.data (Relation.Db.find_exn name db)
  | Query.Select pred, [ c ] ->
    Value.bag_filter (fun t -> Expr.eval_pred t pred) (eval_data db c)
  | Query.Project cols, [ c ] ->
    let project t =
      Value.Tuple (List.map (fun (name, e) -> (name, Expr.eval t e)) cols)
    in
    Value.bag_map project (eval_data db c)
  | Query.Rename pairs, [ c ] ->
    let rename_label l =
      match List.find_opt (fun (_, old) -> String.equal old l) pairs with
      | Some (fresh, _) -> fresh
      | None -> l
    in
    let rename t =
      match t with
      | Value.Tuple fields ->
        Value.Tuple (List.map (fun (l, v) -> (rename_label l, v)) fields)
      | _ -> err "rename: non-tuple element"
    in
    Value.bag_map rename (eval_data db c)
  | Query.Join (kind, pred), [ l; r ] ->
    let lty = Typecheck.infer env l and rty = Typecheck.infer env r in
    let lnull = Vtype.null_tuple (Vtype.element lty) in
    let rnull = Vtype.null_tuple (Vtype.element rty) in
    let lv = eval_data db l and rv = eval_data db r in
    eval_join kind pred ~lnull ~rnull lv rv
  | Query.Product, [ l; r ] ->
    let lv = eval_data db l and rv = eval_data db r in
    let pairs =
      List.concat_map
        (fun (t, k) ->
          List.map
            (fun (u, m) -> (Value.concat_tuples t u, k * m))
            (Value.elems rv))
        (Value.elems lv)
    in
    Value.bag pairs
  | Query.Union, [ l; r ] -> Value.bag_union (eval_data db l) (eval_data db r)
  | Query.Diff, [ l; r ] -> Value.bag_diff (eval_data db l) (eval_data db r)
  | Query.Dedup, [ c ] -> Value.dedup (eval_data db c)
  | Query.Flatten_tuple a, [ c ] ->
    let flatten t =
      match Value.field a t with
      | Some (Value.Tuple _ as inner) -> Value.concat_tuples t inner
      | Some Value.Null ->
        (* A null tuple attribute behaves like the null-padded tuple. *)
        let cty = Typecheck.infer env c in
        let inner_ty =
          match List.assoc_opt a (tuple_fields_of_type q.id cty) with
          | Some ty -> ty
          | None -> err "flatten_tuple: unknown attribute %s" a
        in
        Value.concat_tuples t (Vtype.null_tuple inner_ty)
      | Some _ -> err "flatten_tuple: attribute %s is not a tuple" a
      | None -> err "flatten_tuple: unknown attribute %s" a
    in
    Value.bag_map flatten (eval_data db c)
  | Query.Flatten (kind, a), [ c ] ->
    let cty = Typecheck.infer env c in
    let inner_ty =
      match List.assoc_opt a (tuple_fields_of_type q.id cty) with
      | Some (Vtype.TBag ety) -> ety
      | Some _ | None -> err "flatten: attribute %s is not a relation" a
    in
    let flatten_one (t, k) =
      let nested = match Value.field a t with Some v -> v | None -> Value.Null in
      let element_rows =
        match nested with
        | Value.Bag es ->
          List.map (fun (u, m) -> (Value.concat_tuples t u, k * m)) es
        | Value.Null -> []
        | _ -> err "flatten: attribute %s does not hold a bag" a
      in
      match element_rows, kind with
      | [], Query.Flat_outer ->
        [ (Value.concat_tuples t (Vtype.null_tuple inner_ty), k) ]
      | rows, _ -> rows
    in
    Value.bag (List.concat_map flatten_one (Value.elems (eval_data db c)))
  | Query.Nest_tuple (pairs, c_name), [ c ] ->
    let attrs = List.map snd pairs in
    let nest t =
      match t with
      | Value.Tuple fields ->
        let rest = List.filter (fun (l, _) -> not (List.mem l attrs)) fields in
        let nested =
          List.map
            (fun (label, a) ->
              match List.assoc_opt a fields with
              | Some v -> (label, v)
              | None -> err "nest_tuple: unknown attribute %s" a)
            pairs
        in
        Value.Tuple (rest @ [ (c_name, Value.Tuple nested) ])
      | _ -> err "nest_tuple: non-tuple element"
    in
    Value.bag_map nest (eval_data db c)
  | Query.Nest_rel (pairs, c_name), [ c ] ->
    eval_nest_rel pairs c_name (eval_data db c)
  | Query.Agg_tuple (fn, a, b), [ c ] ->
    let agg t =
      let values =
        match Value.field a t with
        | Some (Value.Bag _ as bag) ->
          List.map
            (fun v ->
              match v with
              | Value.Tuple [ (_, inner) ] -> inner
              | other -> other)
            (Value.expand bag)
        | Some Value.Null | None -> []
        | Some _ -> err "agg_tuple: attribute %s is not a relation" a
      in
      Value.concat_tuples t (Value.Tuple [ (b, Agg.apply fn values) ])
    in
    Value.bag_map agg (eval_data db c)
  | Query.Group_agg (group, aggs), [ c ] ->
    eval_group_agg group aggs (eval_data db c)
  | _ -> err "malformed query node (operator %d)" q.id

and eval_join kind pred ~lnull ~rnull (lv : Value.t) (rv : Value.t) : Value.t =
  let inner =
    List.concat_map
      (fun (t, k) ->
        List.filter_map
          (fun (u, m) ->
            let joined = Value.concat_tuples t u in
            if Expr.eval_pred joined pred then Some (joined, k * m) else None)
          (Value.elems rv))
      (Value.elems lv)
  in
  let left_matched t =
    List.exists
      (fun (u, _) -> Expr.eval_pred (Value.concat_tuples t u) pred)
      (Value.elems rv)
  in
  let right_matched u =
    List.exists
      (fun (t, _) -> Expr.eval_pred (Value.concat_tuples t u) pred)
      (Value.elems lv)
  in
  let left_padded () =
    List.filter_map
      (fun (t, k) ->
        if left_matched t then None else Some (Value.concat_tuples t rnull, k))
      (Value.elems lv)
  in
  let right_padded () =
    List.filter_map
      (fun (u, m) ->
        if right_matched u then None else Some (Value.concat_tuples lnull u, m))
      (Value.elems rv)
  in
  match kind with
  | Query.Inner -> Value.bag inner
  | Query.Left -> Value.bag (inner @ left_padded ())
  | Query.Right -> Value.bag (inner @ right_padded ())
  | Query.Full -> Value.bag (inner @ left_padded () @ right_padded ())

and eval_nest_rel pairs c_name (v : Value.t) : Value.t =
  let attrs = List.map snd pairs in
  let key t =
    match t with
    | Value.Tuple fields ->
      Value.Tuple (List.filter (fun (l, _) -> not (List.mem l attrs)) fields)
    | _ -> err "nest_rel: non-tuple element"
  in
  let proj t =
    Value.Tuple
      (List.map
         (fun (label, a) ->
           match Value.field a t with
           | Some fv -> (label, fv)
           | None -> err "nest_rel: unknown attribute %s" a)
         pairs)
  in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (t, m) ->
      let k = key t in
      match Hashtbl.find_opt groups k with
      | Some members -> Hashtbl.replace groups k ((proj t, m) :: members)
      | None ->
        order := k :: !order;
        Hashtbl.replace groups k [ (proj t, m) ])
    (Value.elems v);
  let rows =
    List.rev_map
      (fun k ->
        let members = Hashtbl.find groups k in
        (Value.concat_tuples k (Value.Tuple [ (c_name, Value.bag members) ]), 1))
      !order
  in
  Value.bag rows

and eval_group_agg group aggs (v : Value.t) : Value.t =
  let key t =
    Value.Tuple
      (List.map
         (fun (label, a) ->
           match Value.field a t with
           | Some fv -> (label, fv)
           | None -> err "group_agg: unknown attribute %s" a)
         group)
  in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (t, m) ->
      let k = key t in
      let rows = List.init m (fun _ -> t) in
      match Hashtbl.find_opt groups k with
      | Some members -> Hashtbl.replace groups k (rows @ members)
      | None ->
        order := k :: !order;
        Hashtbl.replace groups k rows)
    (Value.elems v);
  let rows =
    List.rev_map
      (fun k ->
        let members = Hashtbl.find groups k in
        let agg_fields =
          List.map
            (fun (fn, a, out) ->
              let values =
                match a with
                | Some a ->
                  List.map
                    (fun t ->
                      match Value.field a t with
                      | Some fv -> fv
                      | None -> err "group_agg: unknown attribute %s" a)
                    members
                | None -> List.map (fun _ -> Value.Int 1) members
              in
              (out, Agg.apply fn values))
            aggs
        in
        (Value.concat_tuples k (Value.Tuple agg_fields), 1))
      !order
  in
  Value.bag rows
