(* The why-not explanation service.

   One server value owns a catalog, two LRU caches, and a scheduler:

   - explanation cache: key ⟨dataset key, version, options, alternatives,
     query, pattern⟩ → serialized result payload.  A hit costs a hash
     lookup; cached and freshly computed payloads are byte-identical
     (the payload is stored serialized).
   - handle cache: the pattern-free prefix of the same key → prepared
     Pipeline.handle (enumerated SAs + executed ⟦Q⟧_D).  A new pattern
     on a cached handle skips straight to the per-SA phases.

   Cache keys are prefixed with the dataset key + version, so evicting a
   dataset invalidates its entries by prefix, and a version bump
   (refresh) makes old entries unreachable without scanning. *)

open Nested

type config = {
  cache_capacity : int;
  handle_capacity : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  parallel : bool;
  timings : bool;
}

let default_config =
  {
    cache_capacity = 128;
    handle_capacity = 32;
    queue_capacity = 64;
    default_deadline_ms = None;
    parallel = false;
    timings = true;
  }

type t = {
  cfg : config;
  catalog : Catalog.t;
  explain_cache : Json.json Cache.t;
  handle_cache : Whynot.Pipeline.handle Cache.t;
  scheduler : Scheduler.t;
  mutex : Mutex.t;  (* guards the per-server request counters *)
  mutable requests : int;
  mutable explains : int;
  mutable prepares : int;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    catalog = Catalog.create ();
    explain_cache = Cache.create ~name:"explain" ~capacity:config.cache_capacity;
    handle_cache = Cache.create ~name:"handles" ~capacity:config.handle_capacity;
    scheduler =
      Scheduler.create ~queue_capacity:config.queue_capacity
        ?default_deadline_ms:config.default_deadline_ms ();
    mutex = Mutex.create ();
    requests = 0;
    explains = 0;
    prepares = 0;
  }

let config t = t.cfg

let bump t f =
  Mutex.lock t.mutex;
  f t;
  Mutex.unlock t.mutex

(* -- keys ---------------------------------------------------------------- *)

let dataset_key (key : Catalog.key) =
  Fmt.str "%s@%d#%d" key.Catalog.name key.Catalog.scale key.Catalog.seed

let dataset_prefix key = dataset_key key ^ "/"

let fp_options (o : Protocol.explain_options) : Fingerprint.options =
  {
    Fingerprint.use_sas = o.Protocol.use_sas;
    max_sas = o.Protocol.max_sas;
    revalidate = o.Protocol.revalidate;
  }

(* -- request handlers ---------------------------------------------------- *)

let handle_register t ~dataset ~scale ~seed ~refresh : Protocol.response =
  if refresh then begin
    (* version bump: entries for the old version are unreachable; drop
       them eagerly so they don't occupy LRU slots *)
    match Catalog.find t.catalog ~seed ~name:dataset ~scale () with
    | Some old ->
      let prefix = dataset_prefix old.Catalog.key in
      let matches k = String.starts_with ~prefix k in
      ignore (Cache.invalidate t.explain_cache matches);
      ignore (Cache.invalidate t.handle_cache matches)
    | None -> ()
  end;
  match Catalog.register t.catalog ~seed ~refresh ~name:dataset ~scale () with
  | Error msg -> Protocol.not_found msg
  | Ok (entry, fresh) ->
    Protocol.Registered
      {
        dataset = entry.Catalog.key.Catalog.name;
        scale = entry.Catalog.key.Catalog.scale;
        seed = entry.Catalog.key.Catalog.seed;
        version = entry.Catalog.version;
        fresh;
        rows = entry.Catalog.rows;
        tables = entry.Catalog.tables;
      }

let handle_explain t ~dataset ~scale ~seed ~query ~pattern
    ~(options : Protocol.explain_options) ~deadline_ms : Protocol.response =
  match Catalog.find t.catalog ~seed ~name:dataset ~scale () with
  | None ->
    Protocol.not_found
      (Fmt.str "dataset %S (scale %d, seed %d) is not registered — send a \
                register request first" dataset scale seed)
  | Some entry ->
    let inst = entry.Catalog.instance in
    let phi0 = inst.Scenarios.Scenario.question in
    let q =
      match query with Some q -> q | None -> phi0.Whynot.Question.query
    in
    let missing =
      match pattern with Some p -> p | None -> phi0.Whynot.Question.missing
    in
    let db = phi0.Whynot.Question.db in
    let alternatives = inst.Scenarios.Scenario.alternatives in
    let phi = Whynot.Question.make ~query:q ~db ~missing in
    (match Whynot.Question.check_missing phi with
    | Error msg -> Protocol.bad_request ("invalid why-not question: " ^ msg)
    | Ok () ->
      let dskey = dataset_key entry.Catalog.key in
      let version = entry.Catalog.version in
      let fpo = fp_options options in
      let prefix = dataset_prefix entry.Catalog.key in
      let ekey =
        prefix
        ^ Fingerprint.explain_key ~dataset:dskey ~version ~options:fpo
            ~alternatives q missing
      in
      bump t (fun t -> t.explains <- t.explains + 1);
      (match Cache.find t.explain_cache ekey with
      | Some payload ->
        Protocol.Explained
          { dataset = entry.Catalog.key.Catalog.name; version; cache = `Hit;
            result = payload }
      | None ->
        let job () =
          let hkey =
            prefix
            ^ Fingerprint.prepare_key ~dataset:dskey ~version ~options:fpo
                ~alternatives q
          in
          let handle, reused_handle =
            match Cache.find t.handle_cache hkey with
            | Some h -> (h, true)
            | None ->
              let h =
                Whynot.Pipeline.prepare ~use_sas:options.Protocol.use_sas
                  ~max_sas:options.Protocol.max_sas ~alternatives ~db q
              in
              bump t (fun t -> t.prepares <- t.prepares + 1);
              Cache.add t.handle_cache hkey h;
              (h, false)
          in
          let result =
            Whynot.Pipeline.explain_with
              ~revalidate:options.Protocol.revalidate
              ~parallel:(options.Protocol.parallel || t.cfg.parallel)
              handle missing
          in
          let payload = Codec.result_to_json ~timings:t.cfg.timings result in
          Cache.add t.explain_cache ekey payload;
          (payload, reused_handle)
        in
        (match Scheduler.run t.scheduler ?deadline_ms job with
        | Ok (payload, reused_handle) ->
          Protocol.Explained
            {
              dataset = entry.Catalog.key.Catalog.name;
              version;
              cache = (if reused_handle then `Handle else `Miss);
              result = payload;
            }
        | Error (Scheduler.Overloaded _ as e) ->
          Protocol.Error
            { code = Protocol.Overloaded; message = Scheduler.error_to_string e }
        | Error (Scheduler.Deadline_exceeded _ as e) ->
          Protocol.Error
            {
              code = Protocol.Deadline_exceeded;
              message = Scheduler.error_to_string e;
            })))

let cache_stats_json (s : Cache.stats) =
  Json.J_object
    [
      ("hits", Json.J_int s.Cache.hits);
      ("misses", Json.J_int s.Cache.misses);
      ("evictions", Json.J_int s.Cache.evictions);
      ("size", Json.J_int s.Cache.size);
      ("capacity", Json.J_int s.Cache.capacity);
    ]

let handle_stats t : Protocol.response =
  let sched = Scheduler.stats t.scheduler in
  let requests, explains, prepares =
    Mutex.lock t.mutex;
    let r = (t.requests, t.explains, t.prepares) in
    Mutex.unlock t.mutex;
    r
  in
  Protocol.Stats_reply
    [
      ( "server",
        Json.J_object
          [
            ("requests", Json.J_int requests);
            ("explains", Json.J_int explains);
            ("prepares", Json.J_int prepares);
          ] );
      ( "catalog",
        Json.J_object
          [
            ("datasets", Json.J_int (Catalog.size t.catalog));
            ( "entries",
              Json.J_array
                (List.map
                   (fun (e : Catalog.entry) ->
                     Json.J_object
                       [
                         ("dataset", Json.J_string e.Catalog.key.Catalog.name);
                         ("scale", Json.J_int e.Catalog.key.Catalog.scale);
                         ("seed", Json.J_int e.Catalog.key.Catalog.seed);
                         ("version", Json.J_int e.Catalog.version);
                         ("rows", Json.J_int e.Catalog.rows);
                       ])
                   (Catalog.entries t.catalog)) );
          ] );
      ("cache", cache_stats_json (Cache.stats t.explain_cache));
      ("handles", cache_stats_json (Cache.stats t.handle_cache));
      ( "scheduler",
        Json.J_object
          [
            ("submitted", Json.J_int sched.Scheduler.submitted);
            ("rejected", Json.J_int sched.Scheduler.rejected);
            ("completed", Json.J_int sched.Scheduler.completed);
            ("expired", Json.J_int sched.Scheduler.expired);
            ("depth", Json.J_int sched.Scheduler.depth);
            ("capacity", Json.J_int sched.Scheduler.capacity);
          ] );
    ]

let handle_evict t ~dataset ~scale ~seed ~cache : Protocol.response =
  let datasets, dropped_for_dataset =
    match dataset with
    | None -> (0, 0)
    | Some name -> (
      match Catalog.find t.catalog ~seed ~name ~scale () with
      | None -> (0, 0)
      | Some entry ->
        let prefix = dataset_prefix entry.Catalog.key in
        let matches k = String.starts_with ~prefix k in
        let dropped =
          Cache.invalidate t.explain_cache matches
          + Cache.invalidate t.handle_cache matches
        in
        let removed = Catalog.evict t.catalog ~seed ~name ~scale () in
        ((if removed then 1 else 0), dropped))
  in
  let dropped_for_cache =
    if cache then Cache.clear t.explain_cache + Cache.clear t.handle_cache
    else 0
  in
  Protocol.Evicted
    { datasets; cache_entries = dropped_for_dataset + dropped_for_cache }

let handle_request t (req : Protocol.request) : Protocol.response =
  bump t (fun t -> t.requests <- t.requests + 1);
  try
    match req with
    | Protocol.Register { dataset; scale; seed; refresh } ->
      handle_register t ~dataset ~scale ~seed ~refresh
    | Protocol.Explain { dataset; scale; seed; query; pattern; options; deadline_ms }
      ->
      handle_explain t ~dataset ~scale ~seed ~query ~pattern ~options
        ~deadline_ms
    | Protocol.Stats -> handle_stats t
    | Protocol.Evict { dataset; scale; seed; cache } ->
      handle_evict t ~dataset ~scale ~seed ~cache
    | Protocol.Shutdown -> Protocol.Goodbye
  with e ->
    Protocol.Error
      { code = Protocol.Internal; message = Printexc.to_string e }

let handle_line t line : string * bool =
  match Protocol.request_of_string line with
  | Error msg -> (Protocol.response_to_string (Protocol.bad_request msg), false)
  | Ok req ->
    let resp = handle_request t req in
    (Protocol.response_to_string resp, req = Protocol.Shutdown)

(* -- serving loops ------------------------------------------------------- *)

let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      if String.trim line = "" then loop ()
      else begin
        let resp, stop = handle_line t line in
        output_string oc resp;
        output_char oc '\n';
        flush oc;
        if not stop then loop ()
      end
  in
  loop ()

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () ->
      (try flush oc with Sys_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try serve_channels t ic oc with Sys_error _ -> ())

let accept_loop t sock =
  while true do
    let fd, _addr = Unix.accept sock in
    ignore (Thread.create (fun () -> serve_connection t fd) ())
  done

let serve_unix t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  accept_loop t sock

let serve_tcp ?(host = "127.0.0.1") t ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 64;
  accept_loop t sock
