(** Hand-written lexer for the SQL-ish query syntax.

    Keywords are case-insensitive; identifiers keep their case.
    ['...'] is a string literal (doubled quote escapes), ["..."] a
    quoted identifier, [--] starts a line comment, and [<>] is accepted
    as a synonym for [!=]. *)

type tok =
  | Ident of string  (** bare or ["quoted"] identifier *)
  | Kw of string  (** keyword, normalized to uppercase *)
  | Int of int
  | Float of float
  | Str of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star
  | Plus
  | Minus
  | Slash
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

(** Token with its half-open byte span [\[left, right)]. *)
type token = { tok : tok; left : int; right : int }

val keywords : string list

(** Human description of a token for error messages:
    [identifier "city"], [keyword FROM], ['('], [end of input], ... *)
val describe : tok -> string

(** The whole input, ending with a single {!Eof} token. *)
val tokenize : string -> (token array, Diagnostic.t) result
