lib/nrab/expr.mli: Format Nested Value
