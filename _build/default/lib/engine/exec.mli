(** The mini-DISC executor: runs NRAB plans over partitioned datasets.

    Narrow operators (selection, projection, renaming, flattening, tuple
    nesting, per-tuple aggregation) run partition-local; blocking
    operators (joins, relation nesting, group aggregation, deduplication,
    difference) shuffle by key first, as a DISC system would.  Results
    agree with the reference evaluator {!Nrab.Eval} (tested). *)

open Nested
open Nrab

exception Engine_error of string

type config = {
  partitions : int;
  parallel : bool;  (** one domain per partition for partition-local work *)
}

val default_config : config

(** Equi-join key attribute pairs (left attr, right attr) extractable
    from the conjunctive closure of a join predicate; determines whether
    the join hash-partitions or gathers. *)
val equi_keys : string list -> string list -> Expr.pred -> (string * string) list

(** Execute a plan; returns the result relation and execution
    statistics. *)
val run : ?config:config -> Relation.Db.t -> Query.t -> Relation.t * Stats.t
