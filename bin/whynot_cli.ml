(* Command-line driver: run a scenario (or all of them) and print the
   why-not explanations of RP, RPnoSA, WN++, and Conseil.

   Observability: [--metrics] prints the four-phase breakdown
   (backtrace / alternatives / tracing / msr) after each scenario plus
   the metrics registry at the end; [--trace FILE] additionally records
   one span tree per scenario (engine operators included) and writes a
   Chrome trace_event JSON file for chrome://tracing / Perfetto. *)

(* [-log-level L] turns the structured log on at threshold L, mirrored
   to stderr as text (the CLI has no log file of its own). *)
let apply_log_level = function
  | "" -> ()
  | level -> (
    match String.lowercase_ascii level with
    | "off" | "none" -> Obs.Log.set_level None
    | s -> (
      match Obs.Log.level_of_string s with
      | Some l ->
        Obs.Log.set_level (Some l);
        Obs.Log.add_sink "stderr" Obs.Log.stderr_text_sink
      | None ->
        failwith
          (Fmt.str "unknown log level %S (debug|info|warn|error|off)" level)))

let write_prometheus = function
  | "" -> ()
  | path ->
    let oc = open_out path in
    output_string oc (Obs.Export.prometheus ());
    close_out oc;
    Fmt.pr "metrics written to %s@." path

let pp_phase_breakdown ppf (rp : Whynot.Pipeline.result) =
  let total = Obs.Span.duration_ms rp.Whynot.Pipeline.span in
  let phases = Whynot.Pipeline.phase_durations_ms rp in
  let sum = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 phases in
  let pct ms = 100. *. ms /. Float.max total 1e-9 in
  Fmt.pf ppf "@[<v>phase breakdown (RP): total %.3f ms@," total;
  List.iter
    (fun (p, ms) -> Fmt.pf ppf "  %-14s %10.3f ms  %5.1f%%@," p ms (pct ms))
    phases;
  Fmt.pf ppf "  %-14s %10.3f ms  %5.1f%% of total@]" "sum" sum (pct sum)

let pp_approx_report ppf (r : Whynot.Approx.report) =
  Fmt.pf ppf "approx: mode=%s confidence=%.3f max_stride=%d%s%s"
    r.Whynot.Approx.mode r.Whynot.Approx.confidence r.Whynot.Approx.max_stride
    (match r.Whynot.Approx.top_k with
    | Some k -> Fmt.str " top_k=%d (skipped %d)" k r.Whynot.Approx.skipped
    | None -> "")
    (match r.Whynot.Approx.budget_ms with
    | Some b -> Fmt.str " budget_ms=%.0f" b
    | None -> "")

let run_scenario ~scale ~verbose ~metrics ~config ~parallel ~retry ~root
    ~approx_cfg (s : Scenarios.Scenario.t) =
  let inst = s.Scenarios.Scenario.make ~scale () in
  let phi = inst.Scenarios.Scenario.question in
  let q = phi.Whynot.Question.query in
  Fmt.pr "@.=== %s (%s): %s ===@." s.Scenarios.Scenario.name
    (Scenarios.Scenario.family_to_string s.Scenarios.Scenario.family)
    s.Scenarios.Scenario.description;
  Fmt.pr "query: %a@." Nrab.Query.pp q;
  Fmt.pr "why-not: %a@." Whynot.Nip.pp phi.Whynot.Question.missing;
  if not (Whynot.Question.is_proper phi) then
    Fmt.pr "WARNING: question is not proper (the answer is present)@.";
  (* Under --trace/--metrics, also execute the original query on the
     mini-DISC engine: its per-operator spans carry the
     input/output/shuffled cardinalities one reads off a Spark UI. *)
  (if metrics || Option.is_some root then begin
     let _, stats =
       Engine.Exec.run ~config ?parent:root phi.Whynot.Question.db q
     in
     if metrics then Fmt.pr "engine stats (original query):@.%a@." Engine.Stats.pp stats
   end);
  (* The budget (if any) starts burning per scenario, not per process. *)
  let approx = Option.map Whynot.Approx.start approx_cfg in
  let rp =
    Whynot.Pipeline.explain ?approx ~parallel ~retry ?parent:root
      ~alternatives:inst.Scenarios.Scenario.alternatives phi
  in
  let rpnosa =
    Whynot.Pipeline.explain ~parallel ~retry ?parent:root ~use_sas:false phi
  in
  let wnpp = Baselines.Wnpp.explanations ?parent:root phi in
  let conseil = Baselines.Conseil.explanations ?parent:root phi in
  if metrics then begin
    Fmt.pr "%a@." pp_phase_breakdown rp;
    if verbose then Fmt.pr "span tree (RP):@.%a@." Obs.Span.pp_tree rp.Whynot.Pipeline.span
  end;
  if verbose then begin
    Fmt.pr "schema alternatives:@.";
    List.iter
      (fun (sa : Whynot.Alternatives.sa) ->
        Fmt.pr "  S%d: %s@." (sa.Whynot.Alternatives.index + 1)
          sa.Whynot.Alternatives.description)
      rp.Whynot.Pipeline.sas
  end;
  let pp_expls label expls =
    Fmt.pr "%-8s %s@." label
      (if expls = [] then "(none)"
       else
         String.concat ", "
           (List.map (Whynot.Explanation.to_string_with_query q) expls))
  in
  pp_expls "WN++:"
    (List.map
       (fun e ->
         Whynot.Explanation.make ~lb:0 ~ub:0
           (Baselines.Explanation_set.ops e))
       wnpp);
  pp_expls "Conseil:"
    (List.map
       (fun e ->
         Whynot.Explanation.make ~lb:0 ~ub:0
           (Baselines.Explanation_set.ops e))
       conseil);
  pp_expls "RPnoSA:" rpnosa.Whynot.Pipeline.explanations;
  pp_expls "RP:" rp.Whynot.Pipeline.explanations;
  Option.iter
    (fun r -> Fmt.pr "%a@." pp_approx_report r)
    rp.Whynot.Pipeline.approx;
  match inst.Scenarios.Scenario.gold with
  | None -> ()
  | Some gold ->
    let sets = Whynot.Pipeline.explanation_sets rp in
    let position g =
      let g = List.sort compare g in
      let rec go i = function
        | [] -> None
        | s :: rest -> if List.sort compare s = g then Some i else go (i + 1) rest
      in
      go 1 sets
    in
    List.iter
      (fun gset ->
        Fmt.pr "gold {%s}: %s@."
          (String.concat "," (List.map string_of_int gset))
          (match position gset with
          | Some p -> Fmt.str "found at position %d" p
          | None -> "MISSING"))
      gold

(* Ad-hoc mode: explain a why-not question over user-supplied JSON data,
   a query in either surface syntax (SQL-ish or s-expression,
   auto-detected), and an s-expression why-not pattern.

     whynot_cli explain -db data.json -query-file q.sql -whynot pattern.sexp \\
       [-alt table:a.b=c.d]... [-no-sas] [-no-revalidate]                  *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Compile query text through the frontend; on failure, print the
   caret-underlined diagnostic and exit non-zero. *)
let compile_query_text ~db text =
  let env = Frontend.Compile.env_of_db db in
  match Frontend.Compile.text ~env text with
  | Ok (q, ty) -> (q, ty)
  | Error d ->
    Fmt.epr "%s@." (Frontend.Diagnostic.render ~source:text d);
    exit 1

let parse_pattern_text text =
  match Whynot.Nip_syntax.parse text with
  | Ok nip -> nip
  | Error d ->
    Fmt.epr "%s@." (Frontend.Diagnostic.render ~source:text d);
    exit 1

(* The query can arrive inline (-query TEXT) or from a file
   (-query-file FILE). *)
let query_text_of_args ~query ~query_file =
  match (query, query_file) with
  | "", "" -> None
  | text, "" -> Some text
  | "", file -> Some (String.trim (read_file file))
  | _ -> failwith "-query and -query-file are mutually exclusive"

let parse_alt (spec : string) : string * Nested.Path.t list =
  match String.split_on_char ':' spec with
  | [ table; group ] ->
    (table, List.map Nested.Path.of_string (String.split_on_char '=' group))
  | _ -> failwith ("invalid -alt spec (want table:a.b=c.d): " ^ spec)

let run_explain args =
  let db_file = ref "" and query_file = ref "" and whynot_file = ref "" in
  let query_inline = ref "" in
  let alts = ref [] in
  let use_sas = ref true and revalidate = ref true in
  let metrics = ref false and trace_file = ref "" in
  let parallel = ref false in
  let task_retries = ref 0 in
  let budget_ms = ref 0.0 in
  let sample_stride = ref 0 in
  let top_k = ref 0 in
  let log_level = ref "" in
  let prometheus_file = ref "" in
  let spec =
    [
      ("-db", Arg.Set_string db_file, "JSON database file");
      ( "-query",
        Arg.Set_string query_inline,
        "TEXT  inline query (SQL-ish or s-expression, auto-detected)" );
      ("--query", Arg.Set_string query_inline, "TEXT  same as -query");
      ( "-query-file",
        Arg.Set_string query_file,
        "FILE  query file (SQL-ish or s-expression, auto-detected)" );
      ("--query-file", Arg.Set_string query_file, "FILE  same as -query-file");
      ("-whynot", Arg.Set_string whynot_file, "why-not pattern file (s-expression)");
      ( "-alt",
        Arg.String (fun s -> alts := parse_alt s :: !alts),
        "attribute alternatives, table:a.b=c.d" );
      ("-no-sas", Arg.Clear use_sas, "disable schema alternatives");
      ("-no-revalidate", Arg.Clear revalidate, "disable re-validation (ablation)");
      ( "-parallel",
        Arg.Set parallel,
        "process schema alternatives concurrently on the domain pool" );
      ("--parallel", Arg.Set parallel, " same as -parallel");
      ( "-task-retries",
        Arg.Set_int task_retries,
        "N  retry budget for transient task faults (default 0: fail fast)" );
      ("--task-retries", Arg.Set_int task_retries, "N  same as -task-retries");
      ( "-budget-ms",
        Arg.Set_float budget_ms,
        "MS  approximation budget: degrade exact → sampled → top-k-only as \
         the wall-clock budget burns (never aborts)" );
      ("--budget-ms", Arg.Set_float budget_ms, "MS  same as -budget-ms");
      ( "-sample-stride",
        Arg.Set_int sample_stride,
        "N  re-validate only every Nth traced row (1-in-N sampling; \
         explanations carry confidence 1/N)" );
      ("--sample-stride", Arg.Set_int sample_stride, "N  same as -sample-stride");
      ( "-top-k",
        Arg.Set_int top_k,
        "K  rank only the K best explanations (early-terminating MSR)" );
      ("--top-k", Arg.Set_int top_k, "K  same as -top-k");
      ("-metrics", Arg.Set metrics, "print the per-phase timing breakdown");
      ("--metrics", Arg.Set metrics, " same as -metrics");
      ( "-trace",
        Arg.Set_string trace_file,
        "FILE  write a Chrome trace_event JSON file" );
      ("--trace", Arg.Set_string trace_file, "FILE  same as -trace");
      ( "-log-level",
        Arg.Set_string log_level,
        "LEVEL  structured-log threshold (debug|info|warn|error|off), \
         mirrored to stderr" );
      ("--log-level", Arg.Set_string log_level, "LEVEL  same as -log-level");
      ( "-prometheus",
        Arg.Set_string prometheus_file,
        "FILE  write Prometheus-format metrics to FILE at the end" );
      ( "--prometheus",
        Arg.Set_string prometheus_file,
        "FILE  same as -prometheus" );
    ]
  in
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    spec
    (fun a -> failwith ("unexpected argument " ^ a))
    "whynot_cli explain -db FILE (-query TEXT | -query-file FILE) -whynot \
     FILE [options]";
  apply_log_level !log_level;
  if !db_file = "" || !whynot_file = "" then
    failwith "explain needs -db, a query, and -whynot";
  let db = Nested.Json.db_of_string (read_file !db_file) in
  let query =
    match query_text_of_args ~query:!query_inline ~query_file:!query_file with
    | None -> failwith "explain needs -query TEXT or -query-file FILE"
    | Some text -> fst (compile_query_text ~db text)
  in
  let missing = parse_pattern_text (String.trim (read_file !whynot_file)) in
  let phi = Whynot.Question.make ~query ~db ~missing in
  Fmt.pr "query:   %a@." Nrab.Query.pp query;
  Fmt.pr "why-not: %a@." Whynot.Nip.pp missing;
  (match Whynot.Question.check_missing phi with
  | Ok () -> ()
  | Error msg -> failwith ("invalid why-not pattern: " ^ msg));
  if not (Whynot.Question.is_proper phi) then
    Fmt.pr "WARNING: the answer is not actually missing@.";
  let approx =
    let cfg =
      {
        Whynot.Approx.budget_ms =
          (if !budget_ms > 0.0 then Some !budget_ms else None);
        sample_stride = (if !sample_stride > 1 then Some !sample_stride else None);
        top_k = (if !top_k > 0 then Some !top_k else None);
      }
    in
    if Whynot.Approx.is_exact cfg then None
    else Some (Whynot.Approx.start cfg)
  in
  let result =
    Whynot.Pipeline.explain ?approx ~use_sas:!use_sas ~revalidate:!revalidate
      ~parallel:!parallel
      ~retry:(Engine.Fault.retries (max 0 !task_retries))
      ~alternatives:(List.rev !alts) phi
  in
  Fmt.pr "%a@." Whynot.Pipeline.pp_result result;
  Option.iter
    (fun r -> Fmt.pr "%a@." pp_approx_report r)
    result.Whynot.Pipeline.approx;
  if !metrics then Fmt.pr "%a@." pp_phase_breakdown result;
  if !trace_file <> "" then begin
    Obs.Trace_event.write_file !trace_file [ result.Whynot.Pipeline.span ];
    Fmt.pr "trace written to %s@." !trace_file
  end;
  write_prometheus !prometheus_file

(* Dry-run the frontend: compile a query (inline or from a file) against
   a schema — a scenario's or a JSON database's — and print its
   canonical forms without executing anything.

     whynot_cli parse -scenario RE -query "SELECT ..." [-whynot "(tuple ...)"]
     whynot_cli parse -db data.json -query-file q.sql                       *)
let run_parse args =
  let db_file = ref "" and scenario = ref "" and scale = ref 1 in
  let query_inline = ref "" and query_file = ref "" in
  let whynot_text = ref "" in
  let spec =
    [
      ("-db", Arg.Set_string db_file, "FILE  JSON database file (schema source)");
      ( "-scenario",
        Arg.Set_string scenario,
        "NAME  use a scenario's database as the schema source" );
      ("-scale", Arg.Set_int scale, "N  scenario data scale (default 1)");
      ( "-query",
        Arg.Set_string query_inline,
        "TEXT  inline query (SQL-ish or s-expression, auto-detected)" );
      ("--query", Arg.Set_string query_inline, "TEXT  same as -query");
      ("-query-file", Arg.Set_string query_file, "FILE  query file");
      ("--query-file", Arg.Set_string query_file, "FILE  same as -query-file");
      ( "-whynot",
        Arg.Set_string whynot_text,
        "TEXT  why-not pattern to check against the query's output type" );
    ]
  in
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    spec
    (fun a -> failwith ("unexpected argument " ^ a))
    "whynot_cli parse (-db FILE | -scenario NAME) (-query TEXT | -query-file \
     FILE) [-whynot TEXT]";
  let db =
    match (!db_file, !scenario) with
    | "", "" -> failwith "parse needs -db FILE or -scenario NAME"
    | file, "" -> Nested.Json.db_of_string (read_file file)
    | "", name -> (
      match Scenarios.Registry.find name with
      | None -> failwith (Fmt.str "unknown scenario %S (try `whynot_cli list`)" name)
      | Some s ->
        let inst = s.Scenarios.Scenario.make ~scale:!scale () in
        inst.Scenarios.Scenario.question.Whynot.Question.db)
    | _ -> failwith "-db and -scenario are mutually exclusive"
  in
  let text =
    match query_text_of_args ~query:!query_inline ~query_file:!query_file with
    | None -> failwith "parse needs -query TEXT or -query-file FILE"
    | Some text -> text
  in
  let q, ty = compile_query_text ~db text in
  let env = Frontend.Compile.env_of_db db in
  (match Frontend.Print.to_sql ~env q with
  | sql -> Fmt.pr "sql:         %s@." sql
  | exception Frontend.Print.Unprintable _ -> ());
  Fmt.pr "sexp:        %s@." (Nrab.Parser.query_to_string q);
  Fmt.pr "fingerprint: %s@."
    (Serve.Fingerprint.to_hex (Serve.Fingerprint.query q));
  Fmt.pr "output type: %a@." Nested.Vtype.pp ty;
  match !whynot_text with
  | "" -> ()
  | text -> (
    let nip = parse_pattern_text text in
    match Whynot.Nip.check (Nested.Vtype.element ty) nip with
    | Ok () -> Fmt.pr "why-not:     %a (fits the output type)@." Whynot.Nip.pp nip
    | Error msg ->
      Fmt.epr "why-not pattern does not fit the output type: %s@." msg;
      exit 1)

let run_scenarios args =
  let scale = ref 1 in
  let verbose = ref false in
  let metrics = ref false in
  let trace_file = ref "" in
  let names = ref [] in
  let partitions = ref Engine.Exec.default_config.Engine.Exec.partitions in
  let parallel = ref false in
  let task_retries = ref 0 in
  let budget_ms = ref 0.0 in
  let sample_stride = ref 0 in
  let top_k = ref 0 in
  let log_level = ref "" in
  let prometheus_file = ref "" in
  let spec =
    [
      ("-scale", Arg.Set_int scale, "data scale factor (default 1)");
      ("-v", Arg.Set verbose, "verbose (print schema alternatives)");
      ( "-budget-ms",
        Arg.Set_float budget_ms,
        "MS  approximation budget for the RP run: degrade exact → sampled → \
         top-k-only as the wall-clock budget burns (never aborts)" );
      ("--budget-ms", Arg.Set_float budget_ms, "MS  same as -budget-ms");
      ( "-sample-stride",
        Arg.Set_int sample_stride,
        "N  re-validate only every Nth traced row (1-in-N sampling; \
         explanations carry confidence 1/N)" );
      ("--sample-stride", Arg.Set_int sample_stride, "N  same as -sample-stride");
      ( "-top-k",
        Arg.Set_int top_k,
        "K  rank only the K best explanations (early-terminating MSR)" );
      ("--top-k", Arg.Set_int top_k, "K  same as -top-k");
      ( "-partitions",
        Arg.Set_int partitions,
        "N  engine partition count (default 4)" );
      ("--partitions", Arg.Set_int partitions, "N  same as -partitions");
      ( "-parallel",
        Arg.Set parallel,
        "run engine partitions and schema alternatives on the domain pool" );
      ("--parallel", Arg.Set parallel, " same as -parallel");
      ( "-task-retries",
        Arg.Set_int task_retries,
        "N  retry budget for transient task faults (default 0: fail fast)" );
      ("--task-retries", Arg.Set_int task_retries, "N  same as -task-retries");
      ( "-metrics",
        Arg.Set metrics,
        "print the per-phase timing breakdown after each scenario and the \
         metrics registry at the end" );
      ("--metrics", Arg.Set metrics, " same as -metrics");
      ( "-trace",
        Arg.Set_string trace_file,
        "FILE  write a Chrome trace_event JSON file (open in \
         chrome://tracing or https://ui.perfetto.dev)" );
      ("--trace", Arg.Set_string trace_file, "FILE  same as -trace");
      ( "-log-level",
        Arg.Set_string log_level,
        "LEVEL  structured-log threshold (debug|info|warn|error|off), \
         mirrored to stderr" );
      ("--log-level", Arg.Set_string log_level, "LEVEL  same as -log-level");
      ( "-prometheus",
        Arg.Set_string prometheus_file,
        "FILE  write Prometheus-format metrics to FILE at the end" );
      ( "--prometheus",
        Arg.Set_string prometheus_file,
        "FILE  same as -prometheus" );
    ]
  in
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    spec
    (fun n -> names := n :: !names)
    "whynot_cli [scenario...] [--metrics] [--trace out.json]";
  apply_log_level !log_level;
  let approx_cfg =
    let cfg =
      {
        Whynot.Approx.budget_ms =
          (if !budget_ms > 0.0 then Some !budget_ms else None);
        sample_stride = (if !sample_stride > 1 then Some !sample_stride else None);
        top_k = (if !top_k > 0 then Some !top_k else None);
      }
    in
    if Whynot.Approx.is_exact cfg then None else Some cfg
  in
  let scenarios =
    match !names with
    | [] -> Scenarios.Registry.all
    | names ->
      List.filter_map
        (fun n ->
          match Scenarios.Registry.find n with
          | Some s -> Some s
          | None ->
            Fmt.epr "unknown scenario %S (try `whynot_cli list`)@." n;
            None)
        (List.rev names)
  in
  let tracing = !trace_file <> "" in
  let roots = ref [] in
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      let root =
        if tracing || !metrics then begin
          let sp =
            Obs.Span.start (Fmt.str "scenario:%s" s.Scenarios.Scenario.name)
          in
          roots := sp :: !roots;
          Some sp
        end
        else None
      in
      let retry = Engine.Fault.retries (max 0 !task_retries) in
      run_scenario ~scale:!scale ~verbose:!verbose ~metrics:!metrics
        ~config:
          {
            Engine.Exec.partitions = max 1 !partitions;
            parallel = !parallel;
            retry;
          }
        ~parallel:!parallel ~retry ~root ~approx_cfg s;
      Option.iter Obs.Span.finish root)
    scenarios;
  if !metrics then
    Fmt.pr "@.== metrics registry ==@.%a@." Obs.Metrics.pp Obs.Metrics.default;
  write_prometheus !prometheus_file;
  if tracing then
    match Obs.Trace_event.write_file !trace_file (List.rev !roots) with
    | () ->
      Fmt.pr "@.trace written to %s (load in chrome://tracing or \
              https://ui.perfetto.dev)@."
        !trace_file
    | exception Sys_error msg -> Fmt.epr "@.cannot write trace: %s@." msg

let list_scenarios () =
  Fmt.pr "%-6s %-12s %-18s %s@." "name" "family" "operators" "description";
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      Fmt.pr "%-6s %-12s %-18s %s@." s.Scenarios.Scenario.name
        (Scenarios.Scenario.family_to_string s.Scenarios.Scenario.family)
        s.Scenarios.Scenario.operators s.Scenarios.Scenario.description)
    Scenarios.Registry.all

let () =
  at_exit Engine.Pool.shutdown_default;
  match Array.to_list Sys.argv with
  | _ :: "explain" :: rest -> run_explain rest
  | _ :: "parse" :: rest -> run_parse rest
  | _ :: "list" :: _ -> list_scenarios ()
  | _ :: rest -> run_scenarios rest
  | [] -> ()
