(* End-to-end telemetry: trace propagation from the wire envelope
   through the scheduler and pipeline onto pool worker domains (one
   grep over the log stream reconstructs a request's path), the
   trace-id echo policy, retry and coalesced-request attribution, the
   Prometheus exposition (golden test + grammar check on the live
   registry), the telemetry protocol verb, the log-record JSON codec
   (property-tested round-trip), the stats latency section, and the
   slow-query / SLO instrumentation. *)

open Nested

let quiet_config = { Serve.Server.default_config with timings = false }

(* Capture every record emitted while [f] runs: level Debug plus a
   memory sink, both undone on exit (the suite shares process-global
   log state with the engine). *)
let with_debug_capture f =
  let saved = Obs.Log.level () in
  Obs.Log.set_level (Some Obs.Log.Debug);
  let sink, seen = Obs.Log.memory_sink () in
  Obs.Log.add_sink "test.telemetry.mem" sink;
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.remove_sink "test.telemetry.mem";
      Obs.Log.set_level saved)
    (fun () -> f seen)

let member name = function
  | Json.J_object fields -> List.assoc_opt name fields
  | _ -> None

let events_of records = List.map (fun r -> r.Obs.Log.event) records

let field name r = List.assoc_opt name r.Obs.Log.fields

let register_re srv =
  match
    Serve.Server.handle_request srv
      (Serve.Protocol.Register { dataset = "RE"; scale = 1; seed = 0; refresh = false })
  with
  | Serve.Protocol.Registered _ -> ()
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected registered"

let explain_request ?deadline_ms () =
  Serve.Protocol.Explain
    {
      dataset = "RE";
      scale = 1;
      seed = 0;
      query = None;
      query_name = None;
      pattern = None;
      options = Serve.Protocol.default_options;
      deadline_ms;
      budget_ms = None;
    }

(* --- trace propagation ------------------------------------------------- *)

let test_trace_e2e () =
  with_debug_capture @@ fun seen ->
  let srv = Serve.Server.create ~config:quiet_config () in
  let step line = Json.of_string (fst (Serve.Server.handle_line srv line)) in
  let reg =
    step {|{"op": "register", "dataset": "RE", "trace_id": "t-e2e.reg"}|}
  in
  Alcotest.(check (option string))
    "register echoes the client id" (Some "t-e2e.reg")
    (match member "trace_id" reg with Some (Json.J_string s) -> Some s | _ -> None);
  let ex =
    step {|{"op": "explain", "dataset": "RE", "trace_id": "t-e2e.explain"}|}
  in
  Alcotest.(check (option string))
    "explain echoes the client id" (Some "t-e2e.explain")
    (match member "trace_id" ex with Some (Json.J_string s) -> Some s | _ -> None);
  Alcotest.(check bool) "explain succeeded" true
    (member "ok" ex = Some (Json.J_bool true));
  (* one grep for the id reconstructs the request's path *)
  let trail =
    List.filter
      (fun r -> r.Obs.Log.trace_id = Some "t-e2e.explain")
      (seen ())
  in
  let evs = events_of trail in
  List.iter
    (fun e ->
      Alcotest.(check bool) (e ^ " on the trail") true (List.mem e evs))
    [ "serve.request"; "sched.admit"; "pipeline.done"; "serve.response" ];
  Alcotest.(check bool) "phase records on the trail (4 phases/SA)" true
    (List.length (List.filter (( = ) "pipeline.phase") evs) >= 4);
  Alcotest.(check (option string))
    "the trail starts at the request record" (Some "serve.request")
    (match evs with e :: _ -> Some e | [] -> None);
  Alcotest.(check (option string))
    "and ends at the response record" (Some "serve.response")
    (match List.rev evs with e :: _ -> Some e | [] -> None);
  (match List.find_opt (fun r -> r.Obs.Log.event = "serve.response") trail with
  | Some r ->
    Alcotest.(check bool) "response record names the op" true
      (field "op" r = Some (Obs.Span.String "explain"));
    Alcotest.(check bool) "response record says ok" true
      (field "ok" r = Some (Obs.Span.Bool true))
  | None -> Alcotest.fail "serve.response record missing")

let test_trace_echo_policy () =
  with_debug_capture @@ fun seen ->
  let srv = Serve.Server.create ~config:quiet_config () in
  let step line = fst (Serve.Server.handle_line srv line) in
  (* no client id: no echo on the wire, but the records still carry a
     generated (valid) id *)
  let text = step {|{"op": "stats"}|} in
  Alcotest.(check (option Alcotest.string)) "id-less response has no trace_id"
    None
    (match member "trace_id" (Json.of_string text) with
    | Some (Json.J_string s) -> Some s
    | _ -> None);
  (match
     List.find_opt
       (fun r ->
         r.Obs.Log.event = "serve.request"
         && field "op" r = Some (Obs.Span.String "stats"))
       (seen ())
   with
  | Some r -> (
    match r.Obs.Log.trace_id with
    | Some id ->
      Alcotest.(check bool) "generated id is valid" true
        (Obs.Trace_context.is_valid id)
    | None -> Alcotest.fail "id-less request must get a generated trace id")
  | None -> Alcotest.fail "serve.request record missing");
  (* a malformed client id is rejected before dispatch *)
  let bad = Json.of_string (step {|{"op": "stats", "trace_id": "bad id"}|}) in
  Alcotest.(check bool) "invalid trace_id answers bad_request" true
    (member "code" bad = Some (Json.J_string "bad_request"));
  Alcotest.(check bool) "rejected id is not echoed" true
    (member "trace_id" bad = None)

let test_retry_attribution () =
  with_debug_capture @@ fun seen ->
  Obs.Faultinject.reset ();
  let config = { quiet_config with task_retries = 3 } in
  let srv = Serve.Server.create ~config () in
  register_re srv;
  (* exactly one transient fault: the first tracing attempt fails, its
     retry succeeds *)
  Obs.Faultinject.arm "tracing.relaxed"
    (Obs.Faultinject.Fail
       { times = 1; exn_ = Engine.Fault.Transient (Failure "chaos") });
  let resp =
    Obs.Trace_context.with_id "t-retry" (fun () ->
        Serve.Server.handle_request srv (explain_request ()))
  in
  Obs.Faultinject.reset ();
  (match resp with
  | Serve.Protocol.Explained _ -> ()
  | Serve.Protocol.Error { message; _ } -> Alcotest.fail message
  | _ -> Alcotest.fail "expected explained");
  (* the retry happened on a pool worker domain, yet its record carries
     the submitting request's trace id *)
  let retries =
    List.filter (fun r -> r.Obs.Log.event = "task.retry") (seen ())
  in
  Alcotest.(check bool) "chaos produced retry records" true (retries <> []);
  List.iter
    (fun r ->
      Alcotest.(check (option string)) "retry record carries the trace id"
        (Some "t-retry") r.Obs.Log.trace_id;
      (match field "attempt" r with
      | Some (Obs.Span.Int n) ->
        Alcotest.(check bool) "attempt numbering starts at 2" true (n >= 2)
      | _ -> Alcotest.fail "retry record missing attempt");
      match field "task" r with
      | Some (Obs.Span.String _) -> ()
      | _ -> Alcotest.fail "retry record missing task")
    retries

let test_coalesced_attribution () =
  with_debug_capture @@ fun seen ->
  Obs.Faultinject.reset ();
  let srv = Serve.Server.create ~config:quiet_config () in
  register_re srv;
  (* hold the leader's execution open so the second request coalesces *)
  Obs.Faultinject.arm "server.explain" (Obs.Faultinject.Delay_ms 200.0);
  let run id delay_ms =
    Thread.create
      (fun () ->
        if delay_ms > 0.0 then Thread.delay (delay_ms /. 1000.0);
        Obs.Trace_context.with_id id (fun () ->
            ignore (Serve.Server.handle_request srv (explain_request ()))))
      ()
  in
  let a = run "t-co.a" 0.0 in
  let b = run "t-co.b" 30.0 in
  Thread.join a;
  Thread.join b;
  Obs.Faultinject.reset ();
  match
    List.filter (fun r -> r.Obs.Log.event = "serve.coalesced") (seen ())
  with
  | [ r ] ->
    (* the one cross-trace edge: the follower names the leader *)
    Alcotest.(check (option string)) "the follower is the delayed request"
      (Some "t-co.b") r.Obs.Log.trace_id;
    Alcotest.(check bool) "and names the leader's trace" true
      (field "leader_trace" r = Some (Obs.Span.String "t-co.a"))
  | rs ->
    Alcotest.fail
      (Fmt.str "expected exactly one serve.coalesced record, saw %d"
         (List.length rs))

(* --- Prometheus exposition --------------------------------------------- *)

let test_prometheus_golden () =
  let reg = Obs.Metrics.create () in
  Obs.Metrics.Counter.incr ~by:3
    (Obs.Metrics.counter ~registry:reg "serve.requests");
  Obs.Metrics.Gauge.set (Obs.Metrics.gauge ~registry:reg "pool.size") 3.5;
  (* the name needs sanitizing: spaces, '!', and a leading digit *)
  let h = Obs.Metrics.histogram ~registry:reg "9lat ms!" in
  Obs.Metrics.Histogram.observe h 0.5;
  Obs.Metrics.Histogram.observe h 0.5;
  Alcotest.(check string) "exposition is byte-stable"
    (String.concat "\n"
       [
         "# TYPE _9lat_ms_ histogram";
         "_9lat_ms__bucket{le=\"1\"} 2";
         "_9lat_ms__bucket{le=\"+Inf\"} 2";
         "_9lat_ms__sum 1";
         "_9lat_ms__count 2";
         "# TYPE pool_size gauge";
         "pool_size 3.5";
         "# TYPE serve_requests_total counter";
         "serve_requests_total 3";
         "";
       ])
    (Obs.Export.prometheus_of reg)

(* Grammar check: every line is a TYPE comment or `name[{labels}] value`
   with a metric-identifier name and a parseable value. *)
let check_prometheus_text text =
  let is_type_line l = String.length l >= 7 && String.sub l 0 7 = "# TYPE " in
  let valid_name n =
    n <> ""
    && String.for_all
         (function
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' | '{' | '}'
           | '"' | '=' | '+' | '.' | ',' ->
             true
           | _ -> false)
         n
    && (match n.[0] with '0' .. '9' -> false | _ -> true)
  in
  String.split_on_char '\n' text
  |> List.iter (fun l ->
         if l = "" || is_type_line l then ()
         else
           match String.rindex_opt l ' ' with
           | None -> Alcotest.fail ("sample line without a value: " ^ l)
           | Some i ->
             let name = String.sub l 0 i in
             let v = String.sub l (i + 1) (String.length l - i - 1) in
             Alcotest.(check bool) ("sample name ok: " ^ l) true
               (valid_name name);
             Alcotest.(check bool) ("sample value ok: " ^ l) true
               (v = "+Inf" || v = "-Inf" || float_of_string_opt v <> None))

let test_telemetry_verb () =
  let srv = Serve.Server.create ~config:quiet_config () in
  register_re srv;
  (match Serve.Server.handle_request srv (explain_request ()) with
  | Serve.Protocol.Explained _ -> ()
  | _ -> Alcotest.fail "expected explained");
  (match
     Serve.Server.handle_request srv
       (Serve.Protocol.Telemetry { format = `Prometheus })
   with
  | Serve.Protocol.Telemetry_reply { format = `Prometheus; metrics = Json.J_string text } ->
    Alcotest.(check bool) "exposition mentions the explain histogram" true
      (let needle = "serve_explain_latency_ms_count" in
       let n = String.length text and m = String.length needle in
       let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
       go 0);
    check_prometheus_text text
  | _ -> Alcotest.fail "expected a Prometheus telemetry reply");
  (match
     Serve.Server.handle_request srv (Serve.Protocol.Telemetry { format = `Json })
   with
  | Serve.Protocol.Telemetry_reply { format = `Json; metrics = Json.J_object entries } ->
    Alcotest.(check bool) "JSON snapshot has entries" true (entries <> [])
  | _ -> Alcotest.fail "expected a JSON telemetry reply");
  (* the wire spelling *)
  let reply = Json.of_string (fst (Serve.Server.handle_line srv {|{"op": "telemetry"}|})) in
  Alcotest.(check bool) "telemetry over the wire" true
    (member "type" reply = Some (Json.J_string "telemetry")
    && member "format" reply = Some (Json.J_string "prometheus"));
  let bad =
    Json.of_string
      (fst (Serve.Server.handle_line srv {|{"op": "telemetry", "format": "xml"}|}))
  in
  Alcotest.(check bool) "unknown format answers bad_request" true
    (member "code" bad = Some (Json.J_string "bad_request"))

(* --- log-record JSON codec --------------------------------------------- *)

let record_gen =
  QCheck.Gen.(
    let value =
      oneof
        [
          map (fun i -> Obs.Span.Int i) int;
          map (fun f -> Obs.Span.Float f) (float_range (-1e6) 1e6);
          map (fun b -> Obs.Span.Bool b) bool;
          map (fun s -> Obs.Span.String s) (string_size ~gen:printable (int_range 0 12));
        ]
    in
    let* ts_ns = nat in
    let* lvl = oneofl Obs.Log.[ Debug; Info; Warn; Error ] in
    let* event = string_size ~gen:printable (int_range 1 20) in
    let* trace_id =
      opt (string_size ~gen:(oneofl [ 'a'; 'z'; '0'; '.'; ':'; '-' ]) (int_range 1 16))
    in
    (* distinct keys: the JSON object codec keys fields by name *)
    let* n_fields = int_range 0 5 in
    let* values = list_size (return n_fields) value in
    return
      {
        Obs.Log.ts_ns;
        lvl;
        event;
        trace_id;
        fields = List.mapi (fun i v -> (Fmt.str "k%d" i, v)) values;
      })

let record_arb = QCheck.make ~print:(Fmt.to_to_string Obs.Log.pp_text) record_gen

let prop_record_roundtrip =
  QCheck.Test.make ~count:300 ~name:"log record JSON roundtrip" record_arb
    (fun r -> Obs.Log.of_json (Obs.Log.to_json r) = r)

let prop_record_roundtrip_via_text =
  QCheck.Test.make ~count:200 ~name:"roundtrip survives printing" record_arb
    (fun r ->
      Obs.Log.of_json (Json.of_string (Json.to_line (Obs.Log.to_json r))) = r)

let test_codec_rejects_garbage () =
  List.iter
    (fun text ->
      match Obs.Log.of_json (Json.of_string text) with
      | exception Obs.Log.Decode_error _ -> ()
      | _ -> Alcotest.fail ("decoded garbage: " ^ text))
    [
      "42";
      "{}";
      {|{"ts_ns": 1, "level": "loud", "event": "e", "fields": {}}|};
      {|{"ts_ns": 1, "level": "info", "fields": {}}|};
      {|{"ts_ns": 1, "level": "info", "event": "e", "fields": 3}|};
    ]

(* --- stats, slow queries, SLO ------------------------------------------ *)

let test_stats_latency_section () =
  let srv = Serve.Server.create ~config:quiet_config () in
  register_re srv;
  (match Serve.Server.handle_request srv (explain_request ()) with
  | Serve.Protocol.Explained _ -> ()
  | _ -> Alcotest.fail "expected explained");
  match Serve.Server.handle_request srv Serve.Protocol.Stats with
  | Serve.Protocol.Stats_reply sections -> (
    match List.assoc_opt "latency" sections with
    | Some latency ->
      List.iter
        (fun key ->
          match member key latency with
          | Some summary ->
            let num name =
              match member name summary with
              | Some (Json.J_float f) -> f
              | Some (Json.J_int i) -> float_of_int i
              | _ -> Alcotest.fail (key ^ " summary missing " ^ name)
            in
            Alcotest.(check bool) (key ^ " has observations") true
              (num "count" >= 1.0);
            Alcotest.(check bool) (key ^ " p95 >= p50") true
              (num "p95" >= num "p50");
            Alcotest.(check bool) (key ^ " max >= p95") true
              (num "max" >= num "p95" -. 1e-9)
          | None -> Alcotest.fail ("latency section missing " ^ key))
        [ "sched_wait_ms"; "explain_ms" ]
    | None -> Alcotest.fail "stats missing latency section")
  | _ -> Alcotest.fail "expected stats"

let test_slow_query_and_slo () =
  with_debug_capture @@ fun seen ->
  Obs.Metrics.reset_all Obs.Metrics.default;
  let config = { quiet_config with slow_ms = Some 0.0; slo_ms = Some 1e9 } in
  let srv = Serve.Server.create ~config () in
  register_re srv;
  (match Serve.Server.handle_request srv (explain_request ()) with
  | Serve.Protocol.Explained _ -> ()
  | _ -> Alcotest.fail "expected explained");
  (* threshold 0: every request is slow; the explain one carries the
     full attribution *)
  (match
     List.find_opt
       (fun r ->
         r.Obs.Log.event = "serve.slow"
         && field "op" r = Some (Obs.Span.String "explain"))
       (seen ())
   with
  | Some r ->
    Alcotest.(check bool) "disposition" true
      (field "disposition" r = Some (Obs.Span.String "miss"));
    Alcotest.(check bool) "threshold recorded" true
      (field "threshold_ms" r = Some (Obs.Span.Float 0.0));
    Alcotest.(check bool) "retry count recorded" true
      (field "retries" r = Some (Obs.Span.Int 0));
    Alcotest.(check bool) "per-phase attribution" true
      (List.exists
         (fun (k, _) ->
           String.length k > 6 && String.sub k 0 6 = "phase.")
         r.Obs.Log.fields)
  | None -> Alcotest.fail "expected a serve.slow record for the explain");
  Alcotest.(check bool) "slow-query counter ticked" true
    (Obs.Metrics.Counter.value (Obs.Metrics.counter "serve.slow_queries") >= 1);
  (* SLO burn: a fast success is ok ... *)
  Alcotest.(check int) "slo ok" 1
    (Obs.Metrics.Counter.value (Obs.Metrics.counter "serve.slo.ok"));
  Alcotest.(check int) "no breach yet" 0
    (Obs.Metrics.Counter.value (Obs.Metrics.counter "serve.slo.breach"));
  (* ... and an error burns budget like a slow success *)
  (match
     Serve.Server.handle_request srv
       (Serve.Protocol.Explain
          {
            dataset = "Q1";
            scale = 1;
            seed = 0;
            query = None;
            query_name = None;
            pattern = None;
            options = Serve.Protocol.default_options;
            deadline_ms = None;
            budget_ms = None;
          })
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Not_found; _ } -> ()
  | _ -> Alcotest.fail "expected not_found");
  Alcotest.(check int) "error counts as breach" 1
    (Obs.Metrics.Counter.value (Obs.Metrics.counter "serve.slo.breach"))

let () =
  Alcotest.run "telemetry"
    [
      ( "trace",
        [
          Alcotest.test_case "one grep reconstructs a request" `Quick test_trace_e2e;
          Alcotest.test_case "echo policy" `Quick test_trace_echo_policy;
          Alcotest.test_case "retries keep the request's id" `Quick test_retry_attribution;
          Alcotest.test_case "coalesced follower names its leader" `Quick
            test_coalesced_attribution;
        ] );
      ( "export",
        [
          Alcotest.test_case "Prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "telemetry verb" `Quick test_telemetry_verb;
        ] );
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_record_roundtrip;
          QCheck_alcotest.to_alcotest prop_record_roundtrip_via_text;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        ] );
      ( "slo",
        [
          Alcotest.test_case "stats latency section" `Quick test_stats_latency_section;
          Alcotest.test_case "slow-query record and SLO burn" `Quick
            test_slow_query_and_slo;
        ] );
    ]
