(* Process-global fault-injection registry — the chaos harness shared by
   the engine, the why-not pipeline, and the serve layer.

   The armed-site count is mirrored in an atomic so the unarmed fast
   path of [fire]/[transform] is a single load — hook points sit on the
   engine's per-partition task path and the server's hot request path. *)

type action =
  | Fail of { times : int; exn_ : exn }
  | Flaky of { period : int; exn_ : exn }
  | Delay_ms of float
  | Garble of (string -> string)

let fail_once e = Fail { times = 1; exn_ = e }

type site = {
  mutable action : action option;
  mutable fired : int;  (* times the action actually triggered *)
  mutable seen : int;  (* times the armed site was consulted (Flaky) *)
}

let mutex = Mutex.create ()
let table : (string, site) Hashtbl.t = Hashtbl.create 8
let armed = Atomic.make 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let site_of name =
  match Hashtbl.find_opt table name with
  | Some s -> s
  | None ->
    let s = { action = None; fired = 0; seen = 0 } in
    Hashtbl.replace table name s;
    s

let recount () =
  Atomic.set armed
    (Hashtbl.fold
       (fun _ s n -> if s.action <> None then n + 1 else n)
       table 0)

(* Declared hook points and the set of sites a test run has ever armed.
   Both survive [reset]: the registry is the ground truth the chaos-
   coverage lint enumerates, and [armed_log] is what it compares
   against, so arming inside a test that later resets still counts. *)
let registry : (string, unit) Hashtbl.t = Hashtbl.create 16
let armed_log : (string, unit) Hashtbl.t = Hashtbl.create 16

let register_site name =
  locked (fun () -> Hashtbl.replace registry name ());
  name

let sorted_keys tbl =
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let registered_sites () = locked (fun () -> sorted_keys registry)
let ever_armed () = locked (fun () -> sorted_keys armed_log)

let arm name action =
  locked (fun () ->
      let s = site_of name in
      s.action <- Some action;
      s.seen <- 0;
      Hashtbl.replace armed_log name ();
      recount ())

let disarm name =
  locked (fun () ->
      (match Hashtbl.find_opt table name with
      | Some s -> s.action <- None
      | None -> ());
      recount ())

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      recount ())

let fired name =
  locked (fun () ->
      match Hashtbl.find_opt table name with Some s -> s.fired | None -> 0)

let record name s =
  s.fired <- s.fired + 1;
  Metrics.Counter.incr (Metrics.counter ("fault." ^ name))

(* Decide under the lock, act (sleep/raise) outside it. *)
let trigger name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | None | Some { action = None; _ } -> `Nothing
      | Some ({ action = Some a; _ } as s) -> (
        match a with
        | Fail { times = 0; _ } -> `Nothing
        | Fail { times; exn_ } ->
          if times > 0 then begin
            s.action <-
              (if times = 1 then None else Some (Fail { times = times - 1; exn_ }));
            recount ()
          end;
          record name s;
          `Raise exn_
        | Flaky { period; exn_ } ->
          (* Deterministic flakiness: every [period]-th consultation of
             the armed site raises — no Random in the decision path, so a
             chaos run is exactly reproducible.  A retried task consults
             the site again (advancing [seen] by one), lands off the
             period boundary, and succeeds — the transient-fault shape. *)
          s.seen <- s.seen + 1;
          if period > 0 && s.seen mod period = 0 then begin
            record name s;
            `Raise exn_
          end
          else `Nothing
        | Delay_ms d ->
          record name s;
          `Sleep d
        | Garble g ->
          record name s;
          `Garble g))

let act name = function
  | `Nothing -> ()
  | `Sleep d -> Unix.sleepf (d /. 1000.)
  | `Raise e -> raise e
  | `Garble _ ->
    (* a Garble armed on a fire-only site is a harness mistake; ignore *)
    ignore name

let fire name = if Atomic.get armed > 0 then act name (trigger name)

let transform name s =
  if Atomic.get armed = 0 then s
  else
    match trigger name with
    | `Garble g -> g s
    | other ->
      act name other;
      s
