(* Partitioned datasets — the engine's unit of distribution.

   A dataset is an array of partitions, each a list of tuples (already
   expanded to their multiplicities, like rows of a Spark DataFrame). *)

open Nested

type t = { partitions : Value.t list array }

let of_partitions partitions = { partitions }
let partitions d = d.partitions
let partition_count d = Array.length d.partitions

let cardinal d =
  Array.fold_left (fun acc p -> acc + List.length p) 0 d.partitions

let to_list (d : t) : Value.t list =
  List.concat (Array.to_list d.partitions)

(* Hash of a value, stable across runs (no use of OCaml's randomized
   hashing). *)
let rec value_hash (v : Value.t) : int =
  match v with
  | Value.Null -> 17
  | Value.Bool b -> if b then 31 else 37
  | Value.Int i -> i * 2654435761
  | Value.Float f -> Int64.to_int (Int64.bits_of_float f) * 2654435761
  | Value.String s ->
    let h = ref 5381 in
    String.iter (fun c -> h := (!h * 33) + Char.code c) s;
    !h
  | Value.Tuple fields ->
    List.fold_left
      (fun acc (l, fv) -> (acc * 31) + value_hash (Value.String l) + value_hash fv)
      7 fields
  | Value.Bag es ->
    List.fold_left (fun acc (e, m) -> acc + (value_hash e * m)) 11 es

(* Distribute a list of tuples round-robin over [n] partitions. *)
let distribute ~partitions:n (rows : Value.t list) : t =
  let n = max 1 n in
  let parts = Array.make n [] in
  List.iteri (fun i row -> parts.(i mod n) <- row :: parts.(i mod n)) rows;
  { partitions = Array.map List.rev parts }

(* Repartition by a key function (a shuffle).  Returns the dataset and the
   number of rows moved across partitions. *)
let shuffle_by ~partitions:n (key : Value.t -> Value.t) (d : t) : t * int =
  let n = max 1 n in
  let parts = Array.make n [] in
  let moved = ref 0 in
  Array.iteri
    (fun src rows ->
      List.iter
        (fun row ->
          (* [land max_int] rather than [abs]: [abs min_int] is negative
             (it overflows), which would make [dst] out of bounds. *)
          let dst = value_hash (key row) land max_int mod n in
          if dst <> src then incr moved;
          parts.(dst) <- row :: parts.(dst))
        rows)
    d.partitions;
  ({ partitions = Array.map List.rev parts }, !moved)

(* Collapse to a single partition (a gather). *)
let gather (d : t) : t * int =
  let rows = to_list d in
  ({ partitions = [| rows |] }, List.length rows)

(* [parallel] fans the partitions out over the shared domain {!Pool}
   (the engine's stand-in for a DISC system's task parallelism) instead
   of spawning a fresh domain per partition per operator, which cost
   more than it bought.  [f] must be pure.

   Every partition is a *task attempt*: under [retry], a task that
   raises [Fault.Transient] is recomputed from its input partition (our
   lineage is the closure plus the input, so recomputation is exact —
   the Spark task-retry model).  The ["engine.partition"] chaos site
   fires once per attempt, inside the retry scope, so an armed fault on
   one attempt is survived by the next. *)
let map_partitions ?(parallel = false) ?pool ?(retry = Fault.no_retry)
    ?(label = "partition") ?on_retry (f : Value.t list -> Value.t list)
    (d : t) : t =
  let task _i (part : Value.t list) () =
    Obs.Faultinject.fire "engine.partition";
    f part
  and fault_retry i =
    Option.map (fun cb ~attempt e -> cb ~partition:i ~attempt e) on_retry
  in
  let run i part =
    Fault.protect ~policy:retry
      ~task:(Fmt.str "%s/p%d" label i)
      ~task_id:i ?on_retry:(fault_retry i) (task i part)
  in
  if (not parallel) || Array.length d.partitions <= 1 then
    { partitions = Array.mapi run d.partitions }
  else
    let pool =
      match pool with Some p -> p | None -> Pool.default ()
    in
    let indexed = Array.mapi (fun i p -> (i, p)) d.partitions in
    { partitions = Pool.map_array pool (fun (i, p) -> run i p) indexed }

let of_relation ~partitions (r : Relation.t) : t =
  distribute ~partitions (Relation.tuples r)

let to_relation ~schema (d : t) : Relation.t =
  Relation.of_tuples ~schema (to_list d)
