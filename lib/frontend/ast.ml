(* Surface AST for the SQL-ish syntax.  Every node carries its half-open
   byte span [(left, right)] into the original source, so lowering can
   attach precise diagnostics. *)

type 'a spanned = { it : 'a; left : int; right : int }

type ident = string spanned

type expr = expr_node spanned

and expr_node =
  | E_attr of string
  | E_int of int
  | E_float of float
  | E_string of string
  | E_bool of bool
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr

type pred = pred_node spanned

and pred_node =
  | P_true
  | P_false
  | P_cmp of Nrab.Expr.cmp * expr * expr
  | P_and of pred * pred
  | P_or of pred * pred
  | P_not of pred
  | P_is_null of expr
  | P_is_not_null of expr
  | P_contains of expr * string spanned
  | P_case of (pred * pred) list * pred option
      (** [CASE WHEN c THEN t ... ELSE e END], all branches predicates *)

type agg_arg =
  | A_star  (** count of all rows, the [*] argument *)
  | A_attr of ident
  | A_distinct of ident  (** [count(DISTINCT a)] *)

type agg_item = { fn : ident; arg : agg_arg; out : ident; left : int; right : int }

type select_item =
  | I_star of int * int  (** [*] with its span *)
  | I_expr of expr * ident option  (** [expr [AS name]] *)
  | I_agg of agg_item  (** [fn(arg) AS out] *)

type join_kind = [ `Inner | `Left | `Right | `Full ]

type from_item = from_node spanned

and from_node =
  | F_table of string
  | F_sub of query
  | F_flatten of [ `Inner | `Outer | `Tuple ] * from_item * ident
  | F_rename of from_item * (ident * ident) list  (** [(old, new)] pairs *)
  | F_join of join_kind * from_item * from_item * pred
  | F_product of from_item * from_item

and group_item = { g_attr : ident; g_label : ident option }  (** [attr [AS label]] *)

and nest_clause = {
  n_kind : [ `Rel | `Tuple ];
  n_items : group_item list;  (** [attr [AS label]] — attributes to nest *)
  n_into : ident;
}

and group_clause = {
  gc_items : group_item list;
  gc_nest : nest_clause option;
  gc_left : int;
  gc_right : int;
}

and select_core = {
  distinct : bool;
  items : select_item list;
  from : from_item;
  where : pred option;
  group : group_clause option;
}

and query = query_node spanned

and query_node =
  | Q_select of select_core
  | Q_setop of [ `Union | `Except ] * query * query

type statement = { ctes : (ident * query) list; body : query }
