examples/quickstart.ml: Eval Expr Fmt List Nested Nrab Query Relation String Value Vtype Whynot
