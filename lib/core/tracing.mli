(** Data tracing (Section 5.3).

    For one schema alternative, the (attribute-substituted) query is
    evaluated with *relaxed* operators — selections pass everything,
    inner flattens and joins are generalized to their outer variants —
    and every intermediate tuple is annotated.  The per-SA relations here
    correspond to the per-SA column groups of the merged annotated tables
    of Figures 4–7 — and, like them, the annotations are stored columnar:
    flat flag vectors plus an offset-encoded parent adjacency ({!vann}),
    with per-row {!trow} trees reconstructed lazily from the arena-backed
    data batch.

    Aggregate constraints of the why-not question are checked
    *optimistically* via achievable ranges over sub-multisets of
    contributions, since the algorithm does not trace aggregate subsets
    (Section 5.5, corner (iii)). *)

open Nested
open Nrab

type trow = {
  rid : int;  (** unique row id within the trace *)
  data : Value.t;
  consistent : bool;
      (** matches the backtraced NIP at this operator — the re-validation
          that distinguishes the approach from prior lineage-based work *)
  retained : bool;
      (** this operator, with its (SA-substituted) original parameters,
          produces/keeps this row; [false] marks rows only a
          reparameterization admits *)
  surviving : bool;
      (** the row appears in the unrelaxed intermediate result
          (cumulative across upstream operators) *)
  parents : int list;  (** immediate-predecessor rows (lineage) *)
  ranges : (string * (float * float)) list;
      (** achievable intervals for aggregate-output fields *)
}

(** Parent adjacency of one operator's rows, offset-encoded. *)
type parents =
  | P_none  (** source rows *)
  | P_self of int  (** row [i]'s single parent is [base + i] *)
  | P_one of int array  (** one parent per row *)
  | P_many of int array * int array
      (** [offsets] of length [n+1] into the flat rid array *)

(** Columnar annotation vectors: one flag byte per row per annotation,
    rids implicit — row [i] of the operator is rid [v_rid0 + i]. *)
type vann = {
  v_n : int;
  v_rid0 : int;
  v_consistent : Bytes.t;
  v_retained : Bytes.t;
  v_surviving : Bytes.t;
  v_parents : parents;
  v_ranges : (string * (float * float)) list array option;
      (** [None] = no row carries ranges *)
}

type op_trace = {
  op_id : int;
  op_node : Query.node;
  nip : Nip.t;
  ann : vann;
  rows : trow list Lazy.t;
      (** per-row trees, reconstructed on demand — force via {!rows} *)
  data_at : int -> Value.t;
      (** single-row tree, without forcing the whole batch *)
}

type t = {
  sa : Alternatives.sa;
  ops : op_trace list;  (** topological order: children before parents *)
  root_op : int;
}

(** {1 Accessors} *)

(** Force the operator's per-row tree view. *)
val rows : op_trace -> trow list

val n_rows : op_trace -> int
val rid0 : op_trace -> int

(** Row data by index, reconstructing just that row. *)
val data_at : op_trace -> int -> Value.t

(** Flag lookups by row index (no tree reconstruction). *)
val consistent_at : op_trace -> int -> bool

val retained_at : op_trace -> int -> bool
val surviving_at : op_trace -> int -> bool
val parents_at : op_trace -> int -> int list
val parents_list : parents -> int -> int list
val op_trace : t -> int -> op_trace option
val root_rows : t -> trow list
val find_row : t -> int -> (trow * int) option

(** Optimistic NIP matching for annotated rows: [Pred]/[Prim] constraints
    on fields with achievable intervals are checked by interval
    satisfiability. *)
val row_matches : Nip.t -> Value.t -> (string * (float * float)) list -> bool

val interval_satisfies : Expr.cmp -> Value.t -> float * float -> bool

(** Trace one schema alternative.  [bt] must be the backtrace of the SA's
    (substituted) query.  Runs the batch-native relaxed evaluation unless
    the row engine ([WHYNOT_ROW_ENGINE]) is active; both paths produce
    identical traces (rids, flags, lineage, data).

    [revalidate] (default true) controls the paper's second novel
    technique: with [false], compatibility is checked at the table
    accesses only and the flag is merely propagated forward — the
    behaviour of prior lineage-based approaches, exposed as an ablation
    (it admits false positives on nested data).

    [sample_stride] (default 1 = exact) re-validates only rows whose
    global rid is a multiple of the stride; all other rows conservatively
    read inconsistent.  Because both engines allocate identical
    contiguous rid blocks, a sampled trace is still engine-identical.
    Sampling makes the consistent set (and hence the explanations
    derived from it) a 1-in-N subsample — callers must surface the
    [1/stride] confidence. *)
val run :
  ?revalidate:bool ->
  ?sample_stride:int ->
  env:Typecheck.env ->
  Relation.Db.t ->
  Alternatives.sa ->
  Backtrace.t ->
  t
