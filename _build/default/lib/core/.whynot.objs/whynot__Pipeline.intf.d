lib/core/pipeline.mli: Alternatives Explanation Format Nested Nrab Question Relation Typecheck
