lib/engine/exec.mli: Expr Nested Nrab Query Relation Stats
