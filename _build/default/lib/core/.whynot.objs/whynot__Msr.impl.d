lib/core/msr.ml: Alternatives Explanation Hashtbl List Nested Nrab Opset Option Queue Tracing Value
