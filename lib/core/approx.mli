(** Budget-bounded approximation policy for the explanation pipeline.

    A {!config} names the precision/latency trade the caller accepts; a
    {!t} is that config plus the instant its wall-clock budget started
    burning.  {!decide} is consulted once per schema alternative and
    returns the sampling stride and top-k cutoff for that SA — the
    degradation ladder: exact while most of the budget remains, sampled
    tracing once two thirds are spent, sampled + top-k-only MSR in the
    last third.  The budget never aborts a run (that is {!Cancel}'s
    job); it only coarsens it, so a budgeted run always returns an
    answer with an honest confidence attached. *)

type config = {
  budget_ms : float option;
      (** wall-clock budget driving the ladder; [None] = no ladder *)
  sample_stride : int option;
      (** force tracing to re-validate only every Nth row (a floor —
          the ladder can raise it, never lower it) *)
  top_k : int option;  (** keep only the k best-ranked explanations *)
}

val exact : config
(** All three knobs off.  [decide] on an exact config always answers
    stride 1 / no top-k, and the pipeline output is byte-identical to a
    run without any approx argument. *)

val is_exact : config -> bool

type t
(** A running budget: config + start instant (monotone clock). *)

val start : ?from_ns:int -> config -> t
(** [start cfg] anchors the budget now; [~from_ns] anchors it at an
    earlier instant (same clock as [Obs.Clock.now_ns]). *)

val rebase : t -> from_ns:int -> unit
(** Re-anchor the budget, e.g. at scheduler admission so queue wait
    burns budget exactly like it burns the cancellation deadline. *)

val config : t -> config

val remaining_fraction : t -> float
(** Fraction of the budget left, in [0,1]; 1.0 when no budget is set. *)

type decision = { stride : int; top_k : int option }

val decide : t -> decision
(** The per-SA degradation decision.  Explicit config knobs are floors:
    they pass through when the budget is fresh and only coarsen further
    as it burns. *)

type report = {
  mode : string;  (** "exact" | "sampled" | "top_k" *)
  confidence : float;  (** min over SAs of 1/stride; 1.0 = exact tracing *)
  max_stride : int;  (** largest stride any SA was traced at *)
  top_k : int option;  (** cutoff in force, if any SA ranked top-k *)
  skipped : int;  (** MSR candidates pruned unevaluated by top-k bounds *)
  budget_ms : float option;
}
