lib/datagen/crime.ml: Nested Relation Value Vtype
