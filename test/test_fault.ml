(* Fault tolerance: the typed fault taxonomy, the retry policy, pool
   supervision, and — the property the whole layer exists for — that a
   chaos run (deterministic transient faults on ~5% of task attempts)
   produces byte-identical results to a fault-free run. *)

open Nested

let transient msg = Engine.Fault.Transient (Failure msg)

let fast_retries n =
  (* zero backoff: tests measure semantics, not sleeping *)
  Engine.Fault.retries ~base_backoff_ms:0.0 ~max_backoff_ms:0.0 n

let counter_value name = Obs.Metrics.Counter.value (Obs.Metrics.counter name)

(* --- taxonomy and policy ------------------------------------------------- *)

let test_classify () =
  Alcotest.(check bool)
    "Transient is transient" true
    (Engine.Fault.classify (transient "x") = Engine.Fault.Transient_fault);
  Alcotest.(check bool)
    "plain exn is permanent" true
    (Engine.Fault.classify (Failure "x") = Engine.Fault.Permanent_fault);
  Alcotest.(check bool)
    "cancellation is permanent" true
    (Engine.Fault.classify (Whynot.Cancel.Cancelled "deadline")
    = Engine.Fault.Permanent_fault);
  let inner = Failure "io" in
  Alcotest.(check bool)
    "unwrap strips one layer" true
    (Engine.Fault.unwrap (Engine.Fault.Transient inner) == inner);
  Alcotest.(check bool)
    "unwrap is identity on permanent" true
    (Engine.Fault.unwrap inner == inner)

let test_backoff_deterministic_and_bounded () =
  let p = Engine.Fault.retries ~base_backoff_ms:2.0 ~max_backoff_ms:10.0 6 in
  for task_id = 0 to 3 do
    for attempt = 1 to 6 do
      let a = Engine.Fault.backoff_ms p ~task_id ~attempt in
      let b = Engine.Fault.backoff_ms p ~task_id ~attempt in
      Alcotest.(check (float 0.0))
        (Fmt.str "deterministic (task %d attempt %d)" task_id attempt)
        a b;
      Alcotest.(check bool)
        "within [0, max_backoff]" true
        (a >= 0.0 && a <= p.Engine.Fault.max_backoff_ms)
    done
  done;
  (* distinct tasks jitter apart (the factor is task-id-derived): at
     least one pair of task ids must disagree on the same attempt *)
  let all_equal =
    List.for_all
      (fun tid ->
        Engine.Fault.backoff_ms p ~task_id:tid ~attempt:1
        = Engine.Fault.backoff_ms p ~task_id:0 ~attempt:1)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "jitter separates task ids" false all_equal

let test_protect_recovers () =
  let tries = ref 0 in
  let retried_at = ref [] in
  let r =
    Engine.Fault.protect ~policy:(fast_retries 3) ~task:"flaky" ~task_id:7
      ~on_retry:(fun ~attempt _ -> retried_at := attempt :: !retried_at)
      (fun () ->
        incr tries;
        if !tries <= 2 then raise (transient "blip");
        "ok")
  in
  Alcotest.(check string) "recovers" "ok" r;
  Alcotest.(check int) "two faults, three attempts" 3 !tries;
  Alcotest.(check (list int)) "on_retry saw attempts 2,3" [ 3; 2 ] !retried_at

let test_protect_permanent_not_retried () =
  let tries = ref 0 in
  (match
     Engine.Fault.protect ~policy:(fast_retries 5) (fun () ->
         incr tries;
         failwith "permanent")
   with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "one attempt only" 1 !tries

let test_protect_exhaustion () =
  let boom = Failure "disk on fire" in
  let before = counter_value "engine.task.exhausted" in
  (match
     Engine.Fault.protect ~policy:(fast_retries 2) ~task:"op:x#1/p3"
       ~task_id:3 (fun () -> raise (Engine.Fault.Transient boom))
   with
  | _ -> Alcotest.fail "expected Exhausted"
  | exception Engine.Fault.Exhausted { task; attempts; last } ->
    Alcotest.(check string) "task attribution" "op:x#1/p3" task;
    Alcotest.(check int) "all attempts spent" 3 attempts;
    Alcotest.(check bool) "last fault unwrapped" true (last == boom));
  Alcotest.(check int)
    "exhaustion counted" 1
    (counter_value "engine.task.exhausted" - before)

let test_abort_suppresses_retries () =
  (* cancellation composes with retries: the abort hook is polled before
     each re-attempt, so a cancelled run raises instead of burning its
     retry budget *)
  let cancel = Whynot.Cancel.create () in
  let tries = ref 0 in
  (match
     Engine.Fault.protect ~policy:(fast_retries 5)
       ~abort:(fun () ->
         if Whynot.Cancel.cancelled cancel then
           Some (Whynot.Cancel.Cancelled "retry-gate")
         else None)
       (fun () ->
         incr tries;
         Whynot.Cancel.cancel cancel;
         raise (transient "blip"))
   with
  | _ -> Alcotest.fail "expected Cancelled"
  | exception Whynot.Cancel.Cancelled where ->
    Alcotest.(check string) "abort names the gate" "retry-gate" where);
  Alcotest.(check int) "no retry after cancellation" 1 !tries

(* --- pool supervision ---------------------------------------------------- *)

let test_worker_death_detected () =
  Obs.Faultinject.reset ();
  let before = counter_value "engine.pool.worker_deaths" in
  (* every fire of the site raises: both workers die at their first loop
     iteration, before dequeueing anything *)
  Obs.Faultinject.arm "engine.pool.worker"
    (Obs.Faultinject.Fail { times = 2; exn_ = Failure "chaos: worker killed" });
  let pool = Engine.Pool.create ~size:2 () in
  (* the queue survives the deaths; await helps, so the job still runs *)
  let fut = Engine.Pool.submit pool (fun () -> 5 * 5) in
  Alcotest.(check int) "job survives dead workers" 25 (Engine.Pool.await fut);
  Engine.Pool.shutdown pool;
  Obs.Faultinject.reset ();
  Alcotest.(check int)
    "both deaths detected at join" 2
    (counter_value "engine.pool.worker_deaths" - before)

let test_shutdown_drains_stranded_jobs () =
  Obs.Faultinject.reset ();
  Obs.Faultinject.arm "engine.pool.worker"
    (Obs.Faultinject.Fail { times = 1; exn_ = Failure "chaos: worker killed" });
  let pool = Engine.Pool.create ~size:1 () in
  let futs = List.init 4 (fun i -> Engine.Pool.submit pool (fun () -> i * i)) in
  (* no await before shutdown: anything the dead worker stranded in the
     queue must be recomputed inline by shutdown itself *)
  Engine.Pool.shutdown pool;
  Obs.Faultinject.reset ();
  List.iteri
    (fun i fut ->
      Alcotest.(check int)
        (Fmt.str "stranded job %d resolved" i)
        (i * i) (Engine.Pool.await fut))
    futs

let test_map_array_exhaustion_attribution () =
  let pool = Engine.Pool.create ~size:2 () in
  let boom = Failure "flaky shard" in
  (match
     Engine.Pool.map_array ~policy:(fast_retries 2) ~label:"op:σ#4" pool
       (fun i -> if i = 1 then raise (Engine.Fault.Transient boom) else i)
       [| 0; 1; 2 |]
   with
  | _ -> Alcotest.fail "expected Exhausted"
  | exception Engine.Fault.Exhausted { task; attempts; last } ->
    Alcotest.(check string) "partition attributed" "op:σ#4/p1" task;
    Alcotest.(check int) "attempts" 3 attempts;
    Alcotest.(check bool) "last fault kept" true (last == boom));
  Engine.Pool.shutdown pool

let test_map_array_retry_recovers () =
  let pool = Engine.Pool.create ~size:2 () in
  let failed_once = Atomic.make false in
  let before = counter_value "engine.task.retries" in
  let out =
    Engine.Pool.map_array ~policy:(fast_retries 2) ~label:"t" pool
      (fun i ->
        if i = 2 && not (Atomic.exchange failed_once true) then
          raise (transient "blip");
        i + 10)
      (Array.init 5 Fun.id)
  in
  Alcotest.(check (array int))
    "all elements recovered"
    [| 10; 11; 12; 13; 14 |]
    out;
  Alcotest.(check int)
    "one retry counted" 1
    (counter_value "engine.task.retries" - before);
  Engine.Pool.shutdown pool

(* --- determinism under chaos --------------------------------------------- *)

let engine_cfg retry =
  { Engine.Exec.partitions = 4; parallel = false; retry }

let relation_string r = Value.to_string (Relation.data r)

let scenario_questions () =
  List.map
    (fun (s : Scenarios.Scenario.t) ->
      (s.Scenarios.Scenario.name, s.Scenarios.Scenario.make ~scale:1 ()))
    Scenarios.Registry.all

let test_engine_identical_under_chaos () =
  let insts = scenario_questions () in
  let run cfg (inst : Scenarios.Scenario.instance) =
    let phi = inst.Scenarios.Scenario.question in
    let r, _ =
      Engine.Exec.run ~config:cfg phi.Whynot.Question.db
        phi.Whynot.Question.query
    in
    relation_string r
  in
  Obs.Faultinject.reset ();
  let plain =
    List.map (fun (n, i) -> (n, run (engine_cfg Engine.Fault.no_retry) i)) insts
  in
  (* one arming across every scenario: the Flaky consultation count
     accumulates, so faults land in different operators per scenario *)
  Obs.Faultinject.arm "engine.partition"
    (Obs.Faultinject.Flaky { period = 20; exn_ = transient "chaos" });
  let armed =
    List.map (fun (n, i) -> (n, run (engine_cfg (fast_retries 3)) i)) insts
  in
  let triggered = Obs.Faultinject.fired "engine.partition" in
  Obs.Faultinject.reset ();
  Alcotest.(check bool) "chaos actually fired" true (triggered > 0);
  List.iter2
    (fun (name, expected) (_, got) ->
      Alcotest.(check string)
        (Fmt.str "%s: chaos run identical" name)
        expected got)
    plain armed

let result_fingerprint (r : Whynot.Pipeline.result) =
  Json.to_string (Serve.Codec.result_to_json ~timings:false r)

let test_pipeline_identical_under_chaos () =
  let insts = scenario_questions () in
  let run ~retry (inst : Scenarios.Scenario.instance) =
    Whynot.Pipeline.explain ~retry
      ~alternatives:inst.Scenarios.Scenario.alternatives
      inst.Scenarios.Scenario.question
  in
  Obs.Faultinject.reset ();
  let plain =
    List.map (fun (n, i) -> (n, run ~retry:Engine.Fault.no_retry i)) insts
  in
  (* period 3 on the per-SA tracing site: roughly every third schema
     alternative's data-tracing attempt faults and is recomputed *)
  Obs.Faultinject.arm "tracing.relaxed"
    (Obs.Faultinject.Flaky { period = 3; exn_ = transient "chaos" });
  let armed = List.map (fun (n, i) -> (n, run ~retry:(fast_retries 3) i)) insts in
  let triggered = Obs.Faultinject.fired "tracing.relaxed" in
  Obs.Faultinject.reset ();
  Alcotest.(check bool) "chaos actually fired" true (triggered > 0);
  List.iter2
    (fun (name, expected) (_, got) ->
      Alcotest.(check string)
        (Fmt.str "%s: explanation JSON byte-identical" name)
        (result_fingerprint expected) (result_fingerprint got);
      Alcotest.(check (list (list int)))
        (Fmt.str "%s: ranking identical" name)
        (Whynot.Pipeline.explanation_sets expected)
        (Whynot.Pipeline.explanation_sets got))
    plain armed

let test_pipeline_exhaustion_attributed () =
  let inst =
    (Option.get (Scenarios.Registry.find "RE")).Scenarios.Scenario.make
      ~scale:1 ()
  in
  Obs.Faultinject.reset ();
  Obs.Faultinject.arm "tracing.relaxed"
    (Obs.Faultinject.Fail { times = -1; exn_ = transient "hard chaos" });
  (match
     Whynot.Pipeline.explain ~retry:(fast_retries 2)
       ~alternatives:inst.Scenarios.Scenario.alternatives
       inst.Scenarios.Scenario.question
   with
  | _ -> Alcotest.fail "expected Exhausted"
  | exception Engine.Fault.Exhausted { task; attempts; _ } ->
    Alcotest.(check bool)
      "task names the SA phase" true
      (String.length task >= 5 && String.sub task 0 5 = "sa:S1");
    Alcotest.(check int) "budget spent" 3 attempts);
  Obs.Faultinject.reset ()

(* --- serve integration --------------------------------------------------- *)

let test_scheduler_maps_exhaustion_to_faulted () =
  let sched = Serve.Scheduler.create ~queue_capacity:4 () in
  (match
     Serve.Scheduler.run sched (fun _cancel ->
         Engine.Fault.protect ~policy:Engine.Fault.no_retry ~task:"op:⋈#3/p2"
           (fun () -> raise (transient "shard lost")))
   with
  | Error (Serve.Scheduler.Faulted { task; attempts; message }) ->
    Alcotest.(check string) "task attribution survives" "op:⋈#3/p2" task;
    Alcotest.(check int) "attempts" 1 attempts;
    Alcotest.(check bool)
      "message carries the fault" true
      (String.length message > 0)
  | Ok _ -> Alcotest.fail "expected Faulted"
  | Error e -> Alcotest.fail (Serve.Scheduler.error_to_string e));
  let st = Serve.Scheduler.stats sched in
  Alcotest.(check int) "faulted counted" 1 st.Serve.Scheduler.faulted;
  Alcotest.(check int) "not counted as completed" 0 st.Serve.Scheduler.completed

let test_server_explain_retries_transparently () =
  (* a server with a retry budget absorbs transient pipeline faults: the
     client sees a normal response, identical to the fault-free one *)
  let mk task_retries =
    Serve.Server.create
      ~config:
        {
          Serve.Server.default_config with
          timings = false;
          task_retries;
        }
      ()
  in
  let explain srv =
    ignore
      (Serve.Server.handle_request srv
         (Serve.Protocol.Register
            { dataset = "RE"; scale = 1; seed = 0; refresh = false })
        : Serve.Protocol.response);
    Serve.Server.handle_request srv
      (Serve.Protocol.Explain
         {
           dataset = "RE";
           scale = 1;
           seed = 0;
           query = None;
           query_name = None;
           pattern = None;
           options = Serve.Protocol.default_options;
           deadline_ms = None;
           budget_ms = None;
         })
  in
  Obs.Faultinject.reset ();
  let fault_free = explain (mk 0) in
  Obs.Faultinject.arm "tracing.relaxed"
    (Obs.Faultinject.Fail { times = 1; exn_ = transient "chaos" });
  let with_faults = explain (mk 2) in
  Obs.Faultinject.reset ();
  (match (fault_free, with_faults) with
  | ( Serve.Protocol.Explained { result = a; _ },
      Serve.Protocol.Explained { result = b; _ } ) ->
    Alcotest.(check string)
      "retried response byte-identical" (Json.to_string a) (Json.to_string b)
  | _ -> Alcotest.fail "expected two Explained responses");
  (* without a retry budget the same fault surfaces as a typed error *)
  Obs.Faultinject.arm "tracing.relaxed"
    (Obs.Faultinject.Fail { times = 1; exn_ = transient "chaos" });
  let failed = explain (mk 0) in
  Obs.Faultinject.reset ();
  match failed with
  | Serve.Protocol.Error { code = Serve.Protocol.Task_failed; message; _ } ->
    Alcotest.(check bool)
      "error names the task" true
      (String.length message > 0)
  | r ->
    Alcotest.fail
      (Fmt.str "expected task_failed, got %s"
         (Serve.Protocol.response_to_string r))

let () =
  at_exit Engine.Pool.shutdown_default;
  Alcotest.run "fault"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "classify and unwrap" `Quick test_classify;
          Alcotest.test_case "backoff deterministic, bounded" `Quick
            test_backoff_deterministic_and_bounded;
        ] );
      ( "protect",
        [
          Alcotest.test_case "recovers after transient faults" `Quick
            test_protect_recovers;
          Alcotest.test_case "permanent faults not retried" `Quick
            test_protect_permanent_not_retried;
          Alcotest.test_case "exhaustion attributes the task" `Quick
            test_protect_exhaustion;
          Alcotest.test_case "abort suppresses retries" `Quick
            test_abort_suppresses_retries;
        ] );
      ( "pool supervision",
        [
          Alcotest.test_case "worker deaths detected" `Quick
            test_worker_death_detected;
          Alcotest.test_case "shutdown drains stranded jobs" `Quick
            test_shutdown_drains_stranded_jobs;
          Alcotest.test_case "map_array exhaustion attributed" `Quick
            test_map_array_exhaustion_attribution;
          Alcotest.test_case "map_array retry recovers" `Quick
            test_map_array_retry_recovers;
        ] );
      ( "determinism under chaos",
        [
          Alcotest.test_case "engine results identical" `Quick
            test_engine_identical_under_chaos;
          Alcotest.test_case "pipeline results identical" `Quick
            test_pipeline_identical_under_chaos;
          Alcotest.test_case "pipeline exhaustion attributed" `Quick
            test_pipeline_exhaustion_attributed;
        ] );
      ( "serve",
        [
          Alcotest.test_case "scheduler maps Exhausted to Faulted" `Quick
            test_scheduler_maps_exhaustion_to_faulted;
          Alcotest.test_case "server retries transparently" `Quick
            test_server_explain_retries_transparently;
        ] );
    ]
