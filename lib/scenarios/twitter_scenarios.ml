(* Twitter scenarios T1–T4 and T_ASD (Tables 5 and 10). *)

open Nested
open Nrab

let ( ==? ) a b = Expr.Cmp (Expr.Eq, a, b)

(* T1: tweets providing media URLs about a basketball player.
   Errors: the filter says Jordan although the tweet is about LeBron, and
   the media URL lives in [extended_entities] while [entities.media] is
   empty. *)
let t1 : Scenario.t =
  {
    name = "T1";
    family = Scenario.Twitter;
    description = "List of tweets providing media urls about a basketball player";
    operators = "π,σ,Fᴵ,Fᵀ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Twitter.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.project_attrs ~id:13 g [ "text"; "murl" ]
            (Query.select ~id:12 g
               (Expr.Contains (Expr.attr "text", "Jordan"))
               (Query.flatten_inner ~id:11 g "media"
                  (Query.flatten_tuple ~id:10 g "entities"
                     (Query.table g "tweets_media"))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("text", Whynot.Nip.str Datagen.Twitter.t1_target_text);
              ("murl", Whynot.Nip.any);
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [ ("tweets_media", [ [ "entities" ]; [ "extended_entities" ] ]) ];
          gold = Some [ [ 10; 12 ] ];
        });
  }

(* T2: all users who tweeted about BTS in the US.
   Error: the tuple flatten exposes the tweet's [place] country; the
   missing fan's tweets only carry a US country in the normalized user
   location. *)
let t2 : Scenario.t =
  {
    name = "T2";
    family = Scenario.Twitter;
    description = "All users who tweeted about BTS in the US";
    operators = "π,σ,Fᵀ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Twitter.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.project_attrs ~id:16 g [ "guser"; "country" ]
            (Query.select ~id:15 g
               (Expr.attr "country" ==? Expr.str "US")
               (Query.select ~id:14 g
                  (Expr.Contains (Expr.attr "gtext", "BTS"))
                  (Query.flatten_tuple ~id:13 g "place"
                     (Query.table g "tweets_geo"))))
        in
        let missing =
          Whynot.Nip.tup [ ("guser", Whynot.Nip.str Datagen.Twitter.t2_target_user) ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("tweets_geo", [ [ "place" ]; [ "userloc" ] ]) ];
          gold = Some [ [ 13 ] ];
        });
  }

(* T3: hashtags and media for users that are mentioned in other tweets.
   Error: the missing user's media URL only exists in
   [extended_entities]. *)
let t3 : Scenario.t =
  {
    name = "T3";
    family = Scenario.Twitter;
    description = "Hashtags and medias for users that are mentioned in other tweets";
    operators = "π,σ,Fᴵ,Fᵀ,⋈";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Twitter.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.project_attrs ~id:20 g [ "mentioned"; "murl" ]
            (Query.select ~id:19 g
               (Expr.IsNotNull (Expr.attr "murl"))
               (Query.join ~id:18 g Query.Inner
                  (Expr.attr "tuser" ==? Expr.attr "mentioned")
                  (Query.flatten_inner ~id:17 g "media"
                     (Query.flatten_tuple ~id:16 g "entities"
                        (Query.table g "tweets_media")))
                  (Query.dedup g (Query.table g "mentions"))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("mentioned", Whynot.Nip.str Datagen.Twitter.t3_target_user);
              ("murl", Whynot.Nip.str Datagen.Twitter.t3_target_url);
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [ ("tweets_media", [ [ "entities" ]; [ "extended_entities" ] ]) ];
          gold = Some [ [ 16 ] ];
        });
  }

(* T4: nested list of countries per hashtag for tweets about UEFA, with
   hashtags whose country count is zero removed.
   Error: the country is taken from [place]; the missing hashtag's UEFA
   tweet only has a country in the user location. *)
let t4 : Scenario.t =
  {
    name = "T4";
    family = Scenario.Twitter;
    description = "Nested list of countries for each hashtag, if tweet contains UEFA";
    operators = "π,σ,Fᴵ,Fᵀ,Nᴿ,γ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Twitter.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.select ~id:25 g
            (Expr.Cmp (Expr.Ge, Expr.attr "cnt", Expr.int 1))
            (Query.agg_tuple ~id:24 g Agg.Count ~over:"countries" ~into:"cnt"
               (Query.nest_rel ~id:23 g [ "country" ] ~into:"countries"
                  (Query.project_attrs ~id:22 g [ "tag"; "country" ]
                     (Query.select ~id:21 g
                        (Expr.Contains (Expr.attr "gtext", "UEFA"))
                        (Query.flatten_tuple ~id:19 g "place"
                           (Query.flatten_inner ~id:18 g "hashtags"
                              (Query.table g "tweets_geo")))))))
        in
        let missing =
          Whynot.Nip.tup
            [
              ("tag", Whynot.Nip.str Datagen.Twitter.t4_target_tag);
              ("countries", Whynot.Nip.any);
              ("cnt", Whynot.Nip.pred Expr.Ge (Value.Int 1));
            ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives = [ ("tweets_geo", [ [ "place" ]; [ "userloc" ] ]) ];
          gold = Some [ [ 19 ] ];
        });
  }

(* T_ASD: extract the flat relation of retweeted tweets (the adaptive
   schema database example).  Errors: the flatten targets [quoted_status]
   instead of [retweeted_status] (and the count filter consequently reads
   the quote count). *)
let t_asd : Scenario.t =
  {
    name = "TASD";
    family = Scenario.Twitter;
    description = "ASD example: flatten, filter, project quoted tweets";
    operators = "π,σ,Fᵀ";
    make =
      (fun ~scale ?seed () ->
        let db = Datagen.Twitter.db ?seed ~scale () in
        let g = Query.Gen.create () in
        let query =
          Query.project_attrs ~id:23 g [ "rid"; "rcount" ]
            (Query.select ~id:22 g
               (Expr.IsNotNull (Expr.attr "rcount"))
               (Query.flatten_tuple ~id:21 g "quoted_status"
                  (Query.table g "tweets_asd")))
        in
        let missing =
          Whynot.Nip.tup [ ("rid", Whynot.Nip.str Datagen.Twitter.tasd_target_rid) ]
        in
        {
          Scenario.question = Whynot.Question.make ~query ~db ~missing;
          alternatives =
            [ ("tweets_asd", [ [ "quoted_status" ]; [ "retweeted_status" ] ]) ];
          gold = Some [ [ 21 ]; [ 21; 22 ] ];
        });
  }

let all = [ t1; t2; t3; t4; t_asd ]
