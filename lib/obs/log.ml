(* Leveled structured logging.

   A record is an event name plus typed key→value fields (reusing
   {!Span.value}), stamped with a monotone timestamp ({!Clock}) and the
   ambient trace id ({!Trace_context}) — so one grep for a trace id over
   a JSON log file reconstructs a request's path.

   Fast path: the level test is one atomic load and an integer compare;
   a call at a disabled level never evaluates its field thunk, so the
   per-call-site cost of disabled logging is the thunk closure plus the
   load (benched in `bench obs`, recorded in BENCH_PR6.json).

   Enabled records go to a bounded ring buffer (the last N records are
   always inspectable — tests and the telemetry verb read it) and to
   every registered sink.  Built-in sinks: human text on stderr,
   JSON-lines to a channel (each record flushed, so a live server's log
   file is greppable mid-run), and an in-memory collector for tests.
   Sink emission is serialized by one mutex — sinks never interleave
   half-records — which is "lock-free enough": the lock is only taken
   for records that passed the level gate. *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* The enabled threshold, as an int for the one-atomic-load fast path;
   a sentinel above Error means "off". *)
let off_sentinel = 100

let threshold = Atomic.make (severity Info)

let set_level = function
  | None -> Atomic.set threshold off_sentinel
  | Some l -> Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let enabled l = severity l >= Atomic.get threshold

(* -- records -------------------------------------------------------------- *)

type field = string * Span.value

let str k v : field = (k, Span.String v)
let int k v : field = (k, Span.Int v)
let float k v : field = (k, Span.Float v)
let bool k v : field = (k, Span.Bool v)

type record = {
  ts_ns : int;
  lvl : level;
  event : string;
  trace_id : string option;
  fields : field list;
}

(* -- ring buffer + sinks -------------------------------------------------- *)

type sink = record -> unit

type state = {
  mutable ring : record option array;
  mutable head : int;  (* next write slot *)
  mutable stored : int;  (* total records ever stored *)
  mutable sinks : (string * sink) list;
  lock : Mutex.t;
}

let state =
  {
    ring = Array.make 512 None;
    head = 0;
    stored = 0;
    sinks = [];
    lock = Mutex.create ();
  }

let protect f =
  Mutex.lock state.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.lock) f

let records_c = lazy (Metrics.counter "obs.log.records")

let set_ring_capacity n =
  protect (fun () ->
      state.ring <- Array.make (max 1 n) None;
      state.head <- 0)

let recent () =
  protect (fun () ->
      let n = Array.length state.ring in
      let out = ref [] in
      for i = 0 to n - 1 do
        (* oldest-first: walk forward from the write head *)
        match state.ring.((state.head + i) mod n) with
        | Some r -> out := r :: !out
        | None -> ()
      done;
      List.rev !out)

let clear_ring () =
  protect (fun () ->
      Array.fill state.ring 0 (Array.length state.ring) None;
      state.head <- 0)

let add_sink name sink =
  protect (fun () ->
      state.sinks <- (name, sink) :: List.remove_assoc name state.sinks)

let remove_sink name =
  protect (fun () -> state.sinks <- List.remove_assoc name state.sinks)

let clear_sinks () = protect (fun () -> state.sinks <- [])

let push r =
  Metrics.Counter.incr (Lazy.force records_c);
  protect (fun () ->
      let n = Array.length state.ring in
      state.ring.(state.head) <- Some r;
      state.head <- (state.head + 1) mod n;
      state.stored <- state.stored + 1;
      (* Sinks run under the lock: records in a file sink never
         interleave.  Sinks must not log (they would deadlock). *)
      List.iter
        (fun (_, sink) -> try sink r with _ -> ())
        state.sinks)

(* -- emission ------------------------------------------------------------- *)

let log lvl event fields =
  if enabled lvl then
    push
      {
        ts_ns = Clock.now_ns ();
        lvl;
        event;
        trace_id = Trace_context.current ();
        fields = fields ();
      }

let debug event fields = log Debug event fields
let info event fields = log Info event fields
let warn event fields = log Warn event fields
let err event fields = log Error event fields

(* -- rendering ------------------------------------------------------------ *)

let pp_text ppf (r : record) =
  Fmt.pf ppf "%.6f %-5s %s" (Clock.ns_to_ms r.ts_ns /. 1000.0)
    (level_to_string r.lvl) r.event;
  (match r.trace_id with
  | Some t -> Fmt.pf ppf " trace_id=%s" t
  | None -> ());
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%a" k Span.pp_value v) r.fields

open Nested

let value_to_json : Span.value -> Json.json = function
  | Span.Int i -> Json.J_int i
  | Span.Float f -> Json.J_float f
  | Span.Bool b -> Json.J_bool b
  | Span.String s -> Json.J_string s

let to_json (r : record) : Json.json =
  Json.J_object
    ([
       ("ts_ns", Json.J_int r.ts_ns);
       ("level", Json.J_string (level_to_string r.lvl));
       ("event", Json.J_string r.event);
     ]
    @ (match r.trace_id with
      | Some t -> [ ("trace_id", Json.J_string t) ]
      | None -> [])
    @ [
        ( "fields",
          Json.J_object (List.map (fun (k, v) -> (k, value_to_json v)) r.fields)
        );
      ])

exception Decode_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Decode_error m)) fmt

let of_json (j : Json.json) : record =
  let member name fields = List.assoc_opt name fields in
  match j with
  | Json.J_object fields ->
    let ts_ns =
      match member "ts_ns" fields with
      | Some (Json.J_int n) -> n
      | _ -> fail "log record: missing or non-integer \"ts_ns\""
    in
    let lvl =
      match member "level" fields with
      | Some (Json.J_string s) -> (
        match level_of_string s with
        | Some l -> l
        | None -> fail "log record: unknown level %S" s)
      | _ -> fail "log record: missing \"level\""
    in
    let event =
      match member "event" fields with
      | Some (Json.J_string s) -> s
      | _ -> fail "log record: missing \"event\""
    in
    let trace_id =
      match member "trace_id" fields with
      | Some (Json.J_string s) -> Some s
      | None -> None
      | Some _ -> fail "log record: \"trace_id\" must be a string"
    in
    let fields =
      match member "fields" fields with
      | Some (Json.J_object kvs) ->
        List.map
          (fun (k, v) ->
            match v with
            | Json.J_int i -> (k, Span.Int i)
            | Json.J_float f -> (k, Span.Float f)
            | Json.J_bool b -> (k, Span.Bool b)
            | Json.J_string s -> (k, Span.String s)
            | _ -> fail "log record: field %S has a non-scalar value" k)
          kvs
      | None -> []
      | Some _ -> fail "log record: \"fields\" must be an object"
    in
    { ts_ns; lvl; event; trace_id; fields }
  | _ -> fail "log record: expected an object"

(* -- built-in sinks ------------------------------------------------------- *)

let stderr_text_sink (r : record) =
  Fmt.epr "%a@." pp_text r

(* One JSON object per line, flushed per record: a live server's log
   file is greppable while the server runs (the e2e acceptance test
   relies on this). *)
let json_line_sink oc (r : record) =
  output_string oc (Json.to_line (to_json r));
  output_char oc '\n';
  flush oc

let memory_sink () =
  let lock = Mutex.create () in
  let acc = ref [] in
  let sink r =
    Mutex.lock lock;
    acc := r :: !acc;
    Mutex.unlock lock
  in
  let contents () =
    Mutex.lock lock;
    let rs = List.rev !acc in
    Mutex.unlock lock;
    rs
  in
  (sink, contents)
