(* Columnar arena representation of nested-value batches.

   A batch stores rows struct-of-arrays: flat typed arrays for
   primitive columns, offset vectors for nested bags, one global
   hash-consed dictionary for strings, and packed presence bitmaps for
   Null.  [of_values]/[to_values] are exact inverses on arbitrary
   [Value.t] rows — canonical bag order is preserved verbatim, never
   re-normalized — so the tree API remains the semantic boundary and
   row reconstruction can stay lazy.

   Columns whose rows disagree on shape (mixed primitive kinds,
   differing tuple labels) fall back to a boxed [CBox] column; every
   kernel keeps working, just row-at-a-time for that column. *)

open Nested

(* ------------------------------------------------------------------ *)
(* Packed bit vectors                                                  *)
(* ------------------------------------------------------------------ *)

module Bitv = struct
  type t = { len : int; bits : Bytes.t }

  let create len v =
    { len; bits = Bytes.make ((len + 7) lsr 3) (if v then '\xff' else '\x00') }

  let length t = t.len

  let get t i =
    Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set t i v =
    let j = i lsr 3 in
    let c = Char.code (Bytes.unsafe_get t.bits j) in
    let m = 1 lsl (i land 7) in
    Bytes.unsafe_set t.bits j
      (Char.unsafe_chr (if v then c lor m else c land lnot m land 0xff))

  let init len f =
    let t = create len false in
    for i = 0 to len - 1 do
      if f i then set t i true
    done;
    t

  let copy t = { len = t.len; bits = Bytes.copy t.bits }

  let bytewise2 f a b =
    let bits = Bytes.create (Bytes.length a.bits) in
    for j = 0 to Bytes.length bits - 1 do
      Bytes.unsafe_set bits j
        (Char.unsafe_chr
           (f (Char.code (Bytes.unsafe_get a.bits j))
              (Char.code (Bytes.unsafe_get b.bits j))
           land 0xff))
    done;
    { len = a.len; bits }

  let logand a b = bytewise2 (fun x y -> x land y) a b
  let logor a b = bytewise2 (fun x y -> x lor y) a b

  let lognot a =
    let bits = Bytes.create (Bytes.length a.bits) in
    for j = 0 to Bytes.length bits - 1 do
      Bytes.unsafe_set bits j
        (Char.unsafe_chr (lnot (Char.code (Bytes.unsafe_get a.bits j)) land 0xff))
    done;
    { len = a.len; bits }

  let popcount_byte = Array.init 256 (fun c ->
      let n = ref 0 in
      for b = 0 to 7 do
        if c land (1 lsl b) <> 0 then incr n
      done;
      !n)

  (* Count of set bits among the first [len] positions (trailing bits of
     the last byte are ignored). *)
  let count t =
    let full = t.len lsr 3 in
    let n = ref 0 in
    for j = 0 to full - 1 do
      n := !n + popcount_byte.(Char.code (Bytes.unsafe_get t.bits j))
    done;
    for i = full lsl 3 to t.len - 1 do
      if get t i then incr n
    done;
    !n

  let indices t =
    let out = Array.make (count t) 0 in
    let k = ref 0 in
    for i = 0 to t.len - 1 do
      if get t i then begin
        out.(!k) <- i;
        incr k
      end
    done;
    out

  let for_all t =
    let ok = ref true in
    (try
       for i = 0 to t.len - 1 do
         if not (get t i) then begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    !ok

  (* Raw packed form, for the checkpoint codec.  [of_bytes] validates
     the byte count so a truncated file cannot build an out-of-bounds
     bitmap. *)
  let to_bytes t = Bytes.to_string t.bits

  let of_bytes len s =
    if String.length s <> (len + 7) lsr 3 then
      invalid_arg "Bitv.of_bytes: length mismatch";
    { len; bits = Bytes.of_string s }
end

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let m_rows_scanned = lazy (Obs.Metrics.counter "engine.columnar.rows_scanned")
let m_bytes_moved = lazy (Obs.Metrics.counter "engine.columnar.bytes_moved")
let m_dict_hits = lazy (Obs.Metrics.counter "engine.columnar.dict_hits")

let note_rows_scanned n =
  if n > 0 then Obs.Metrics.Counter.incr ~by:n (Lazy.force m_rows_scanned)

let note_bytes_moved n =
  if n > 0 then Obs.Metrics.Counter.incr ~by:n (Lazy.force m_bytes_moved)

(* ------------------------------------------------------------------ *)
(* Global string dictionary (hash-consed)                              *)
(* ------------------------------------------------------------------ *)

(* The stable per-value hash of {!Dataset.value_hash}, reproduced here
   so vectorized shuffles land rows on exactly the same partitions as
   the row engine. *)
let rec value_hash (v : Value.t) : int =
  match v with
  | Value.Null -> 17
  | Value.Bool b -> if b then 31 else 37
  | Value.Int i -> i * 2654435761
  | Value.Float f -> Int64.to_int (Int64.bits_of_float f) * 2654435761
  | Value.String s ->
    let h = ref 5381 in
    String.iter (fun c -> h := (!h * 33) + Char.code c) s;
    !h
  | Value.Tuple fields ->
    List.fold_left
      (fun acc (l, fv) ->
        (acc * 31) + value_hash (Value.String l) + value_hash fv)
      7 fields
  | Value.Bag es ->
    List.fold_left (fun acc (e, m) -> acc + (value_hash e * m)) 11 es

module Dict = struct
  let mu = Mutex.create ()
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 1024
  let strings = ref (Array.make 1024 "")
  let hashes = ref (Array.make 1024 0)
  let next = ref 0

  let grow () =
    let cap = Array.length !strings in
    if !next >= cap then begin
      let s = Array.make (cap * 2) "" and h = Array.make (cap * 2) 0 in
      Array.blit !strings 0 s 0 cap;
      Array.blit !hashes 0 h 0 cap;
      strings := s;
      hashes := h
    end

  (* Returns the code and whether the string was already interned. *)
  let intern_hit (s : string) : int * bool =
    Mutex.protect mu (fun () ->
        match Hashtbl.find_opt tbl s with
        | Some c -> (c, true)
        | None ->
          grow ();
          let c = !next in
          incr next;
          !strings.(c) <- s;
          !hashes.(c) <- value_hash (Value.String s);
          Hashtbl.add tbl s c;
          (c, false))

  let intern s =
    let c, hit = intern_hit s in
    if hit then Obs.Metrics.Counter.incr (Lazy.force m_dict_hits);
    c

  let lookup c = !strings.(c)
  let hash c = !hashes.(c)
  let size () = Mutex.protect mu (fun () -> !next)
end

(* ------------------------------------------------------------------ *)
(* Columns and batches                                                 *)
(* ------------------------------------------------------------------ *)

type col =
  | CNull of int  (** [n] all-Null rows *)
  | CConst of int * Value.t  (** [n] copies of one non-Null value *)
  | CBool of Bitv.t * Bitv.t option
  | CInt of int array * Bitv.t option
  | CFloat of float array * Bitv.t option
  | CStr of int array * Bitv.t option  (** global dictionary codes *)
  | CTuple of int * (string * col) list * Bitv.t option
  | CBag of bag
  | CBox of Value.t array  (** fallback for shape-mixed columns *)

and bag = {
  bn : int;
  boff : int array;  (** [bn + 1] element offsets *)
  bmult : int array;  (** per stored element, its multiplicity *)
  belems : col;  (** flattened distinct elements, canonical order *)
  bpresent : Bitv.t option;  (** absent rows are [Null], not empty bags *)
}

type t = { n : int; row : col }

let length t = t.n

let col_length = function
  | CNull n | CConst (n, _) | CTuple (n, _, _) -> n
  | CBool (b, _) -> Bitv.length b
  | CInt (a, _) -> Array.length a
  | CFloat (a, _) -> Array.length a
  | CStr (a, _) -> Array.length a
  | CBag b -> b.bn
  | CBox a -> Array.length a

let present (p : Bitv.t option) i =
  match p with None -> true | Some p -> Bitv.get p i

(* ------------------------------------------------------------------ *)
(* Shape inference and building                                        *)
(* ------------------------------------------------------------------ *)

type shape =
  | SBot
  | SNull
  | SBool
  | SInt
  | SFloat
  | SStr
  | STuple of (string * shape) list
  | SBag of shape
  | SMixed

let rec shape_join a b =
  match (a, b) with
  | SBot, s | s, SBot -> s
  | SNull, s | s, SNull -> s
  | SBool, SBool -> SBool
  | SInt, SInt -> SInt
  | SFloat, SFloat -> SFloat
  | SStr, SStr -> SStr
  | STuple fa, STuple fb ->
    if
      List.length fa = List.length fb
      && List.for_all2 (fun (la, _) (lb, _) -> String.equal la lb) fa fb
    then STuple (List.map2 (fun (l, sa) (_, sb) -> (l, shape_join sa sb)) fa fb)
    else SMixed
  | SBag ea, SBag eb -> SBag (shape_join ea eb)
  | _ -> SMixed

let rec shape_of (v : Value.t) : shape =
  match v with
  | Value.Null -> SNull
  | Value.Bool _ -> SBool
  | Value.Int _ -> SInt
  | Value.Float _ -> SFloat
  | Value.String _ -> SStr
  | Value.Tuple fs -> STuple (List.map (fun (l, fv) -> (l, shape_of fv)) fs)
  | Value.Bag es ->
    SBag (List.fold_left (fun acc (e, _) -> shape_join acc (shape_of e)) SBot es)

(* [shape_join acc (shape_of v)], fused: walk the value directly into
   the accumulated shape, preserving physical sharing on the (typical)
   homogeneous rows so the sweep allocates almost nothing. *)
let rec shape_join_value (acc : shape) (v : Value.t) : shape =
  match (acc, v) with
  | SMixed, _ -> SMixed
  | _, Value.Null -> ( match acc with SBot -> SNull | s -> s)
  | (SBot | SNull), _ -> shape_of v
  | SBool, Value.Bool _ -> acc
  | SInt, Value.Int _ -> acc
  | SFloat, Value.Float _ -> acc
  | SStr, Value.String _ -> acc
  | STuple fs, Value.Tuple vfs ->
    if
      List.length fs = List.length vfs
      && List.for_all2 (fun (l, _) (l', _) -> String.equal l l') fs vfs
    then begin
      let changed = ref false in
      let fs' =
        List.map2
          (fun (l, s) (_, fv) ->
            let s' = shape_join_value s fv in
            if s' != s then changed := true;
            (l, s'))
          fs vfs
      in
      if !changed then STuple fs' else acc
    end
    else SMixed
  | SBag es, Value.Bag elems ->
    let es' =
      List.fold_left (fun a (e, _) -> shape_join_value a e) es elems
    in
    if es' != es then SBag es' else acc
  | _ -> SMixed

let shape_of_values (vs : Value.t array) : shape =
  Array.fold_left shape_join_value SBot vs

(* Presence bitmap builder: [None] when every row is present. *)
let presence_of n is_null =
  let p = ref None in
  for i = 0 to n - 1 do
    if is_null i then begin
      (match !p with None -> p := Some (Bitv.create n true) | Some _ -> ());
      Bitv.set (Option.get !p) i false
    end
  done;
  !p

let rec build_col (sh : shape) (vs : Value.t array) : col =
  let n = Array.length vs in
  match sh with
  | SBot | SNull -> CNull n
  | SMixed -> CBox vs
  | SBool ->
    let b = Bitv.create n false in
    Array.iteri
      (fun i v -> match v with Value.Bool x -> Bitv.set b i x | _ -> ())
      vs;
    CBool (b, presence_of n (fun i -> vs.(i) = Value.Null))
  | SInt ->
    let a = Array.make n 0 in
    Array.iteri
      (fun i v -> match v with Value.Int x -> a.(i) <- x | _ -> ())
      vs;
    CInt (a, presence_of n (fun i -> vs.(i) = Value.Null))
  | SFloat ->
    let a = Array.make n 0. in
    Array.iteri
      (fun i v -> match v with Value.Float x -> a.(i) <- x | _ -> ())
      vs;
    CFloat (a, presence_of n (fun i -> vs.(i) = Value.Null))
  | SStr ->
    let a = Array.make n 0 in
    let hits = ref 0 in
    Array.iteri
      (fun i v ->
        match v with
        | Value.String s ->
          let c, hit = Dict.intern_hit s in
          if hit then incr hits;
          a.(i) <- c
        | _ -> ())
      vs;
    if !hits > 0 then
      Obs.Metrics.Counter.incr ~by:!hits (Lazy.force m_dict_hits);
    CStr (a, presence_of n (fun i -> vs.(i) = Value.Null))
  | STuple fields ->
    let k = List.length fields in
    let children = Array.init k (fun _ -> Array.make n Value.Null) in
    Array.iteri
      (fun i v ->
        match v with
        | Value.Tuple fs -> List.iteri (fun j (_, fv) -> children.(j).(i) <- fv) fs
        | _ -> ())
      vs;
    let cols =
      List.mapi (fun j (l, s) -> (l, build_col s children.(j))) fields
    in
    CTuple (n, cols, presence_of n (fun i -> vs.(i) = Value.Null))
  | SBag esh ->
    let total =
      Array.fold_left
        (fun acc v ->
          match v with Value.Bag es -> acc + List.length es | _ -> acc)
        0 vs
    in
    let boff = Array.make (n + 1) 0 in
    let bmult = Array.make total 0 in
    let evs = Array.make total Value.Null in
    let k = ref 0 in
    Array.iteri
      (fun i v ->
        boff.(i) <- !k;
        match v with
        | Value.Bag es ->
          List.iter
            (fun (e, m) ->
              evs.(!k) <- e;
              bmult.(!k) <- m;
              incr k)
            es
        | _ -> ())
      vs;
    boff.(n) <- !k;
    CBag
      {
        bn = n;
        boff;
        bmult;
        belems = build_col esh evs;
        bpresent = presence_of n (fun i -> vs.(i) = Value.Null);
      }

let of_values (vs : Value.t array) : t =
  note_rows_scanned (Array.length vs);
  { n = Array.length vs; row = build_col (shape_of_values vs) vs }

let of_rows (rows : Value.t list) : t = of_values (Array.of_list rows)

(* ------------------------------------------------------------------ *)
(* Reconstruction                                                      *)
(* ------------------------------------------------------------------ *)

(* Exact inverse of [build_col]: bags are reconstructed in stored
   (canonical) order via the raw [Value.Bag] constructor — no
   re-normalization, so the result is byte-identical to the input. *)
let rec col_values (c : col) : Value.t array =
  match c with
  | CNull n -> Array.make n Value.Null
  | CConst (n, v) -> Array.make n v
  | CBool (b, p) ->
    Array.init (Bitv.length b) (fun i ->
        if present p i then Value.Bool (Bitv.get b i) else Value.Null)
  | CInt (a, p) ->
    Array.init (Array.length a) (fun i ->
        if present p i then Value.Int a.(i) else Value.Null)
  | CFloat (a, p) ->
    Array.init (Array.length a) (fun i ->
        if present p i then Value.Float a.(i) else Value.Null)
  | CStr (a, p) ->
    Array.init (Array.length a) (fun i ->
        if present p i then Value.String (Dict.lookup a.(i)) else Value.Null)
  | CTuple (n, fields, p) ->
    let labelled =
      List.map (fun (l, c) -> (l, col_values c)) fields
    in
    Array.init n (fun i ->
        if present p i then
          Value.Tuple (List.map (fun (l, vs) -> (l, vs.(i))) labelled)
        else Value.Null)
  | CBag bg ->
    let evs = col_values bg.belems in
    Array.init bg.bn (fun i ->
        if present bg.bpresent i then begin
          let lo = bg.boff.(i) and hi = bg.boff.(i + 1) in
          let rec pairs j =
            if j >= hi then [] else (evs.(j), bg.bmult.(j)) :: pairs (j + 1)
          in
          Value.Bag (pairs lo)
        end
        else Value.Null)
  | CBox a -> a

let to_values t = col_values t.row
let to_rows t = Array.to_list (to_values t)

let rec col_get (c : col) (i : int) : Value.t =
  match c with
  | CNull _ -> Value.Null
  | CConst (_, v) -> v
  | CBool (b, p) -> if present p i then Value.Bool (Bitv.get b i) else Value.Null
  | CInt (a, p) -> if present p i then Value.Int a.(i) else Value.Null
  | CFloat (a, p) -> if present p i then Value.Float a.(i) else Value.Null
  | CStr (a, p) ->
    if present p i then Value.String (Dict.lookup a.(i)) else Value.Null
  | CTuple (_, fields, p) ->
    if present p i then
      Value.Tuple (List.map (fun (l, c) -> (l, col_get c i)) fields)
    else Value.Null
  | CBag bg ->
    if present bg.bpresent i then begin
      let evs = bg.belems in
      let lo = bg.boff.(i) and hi = bg.boff.(i + 1) in
      let rec pairs j =
        if j >= hi then [] else (col_get evs j, bg.bmult.(j)) :: pairs (j + 1)
      in
      Value.Bag (pairs lo)
    end
    else Value.Null
  | CBox a -> a.(i)

let get_row t i = col_get t.row i

(* Compare the values two cells of one column would reconstruct to,
   without building them.  Must order exactly like [Value.compare] on
   [col_get c i] vs [col_get c j]; the constructor ranks below follow
   [Value.t]'s declaration order. *)
let value_rank : Value.t -> int = function
  | Value.Null -> 0
  | Value.Bool _ -> 1
  | Value.Int _ -> 2
  | Value.Float _ -> 3
  | Value.String _ -> 4
  | Value.Tuple _ -> 5
  | Value.Bag _ -> 6

let cell_rank (c : col) (i : int) : int =
  match c with
  | CNull _ -> 0
  | CConst (_, v) -> value_rank v
  | CBool (_, p) -> if present p i then 1 else 0
  | CInt (_, p) -> if present p i then 2 else 0
  | CFloat (_, p) -> if present p i then 3 else 0
  | CStr (_, p) -> if present p i then 4 else 0
  | CTuple (_, _, p) -> if present p i then 5 else 0
  | CBag bg -> if present bg.bpresent i then 6 else 0
  | CBox a -> value_rank a.(i)

let rec cmp_cells (c : col) (i : int) (j : int) : int =
  match c with
  | CNull _ | CConst _ -> 0
  | CBox a -> Value.compare a.(i) a.(j)
  | _ ->
    let ri = cell_rank c i and rj = cell_rank c j in
    if ri <> rj then Stdlib.compare ri rj
    else if ri = 0 then 0
    else begin
      match c with
      | CBool (b, _) -> Stdlib.compare (Bitv.get b i) (Bitv.get b j)
      | CInt (a, _) -> Stdlib.compare a.(i) a.(j)
      | CFloat (a, _) -> Stdlib.compare a.(i) a.(j)
      | CStr (a, _) -> String.compare (Dict.lookup a.(i)) (Dict.lookup a.(j))
      | CTuple (_, fields, _) ->
        (* Both rows reconstruct with the same labels in the same order,
           so [Value.compare_fields] reduces to field-wise comparison. *)
        let rec go = function
          | [] -> 0
          | (_, fc) :: rest ->
            let c = cmp_cells fc i j in
            if c <> 0 then c else go rest
        in
        go fields
      | CBag bg ->
        (* Stored contents are canonical, so bag comparison is
           lexicographic over (element, multiplicity) pairs. *)
        let rec go u v =
          let endu = u >= bg.boff.(i + 1) and endv = v >= bg.boff.(j + 1) in
          if endu && endv then 0
          else if endu then -1
          else if endv then 1
          else
            let c = cmp_cells bg.belems u v in
            if c <> 0 then c
            else
              let c = Stdlib.compare bg.bmult.(u) bg.bmult.(v) in
              if c <> 0 then c else go (u + 1) (v + 1)
        in
        go bg.boff.(i) bg.boff.(j)
      | CNull _ | CConst _ | CBox _ -> 0
    end

let cmp_rows (t : t) (i : int) (j : int) : int = cmp_cells t.row i j

(* ------------------------------------------------------------------ *)
(* Tuple-structure access                                              *)
(* ------------------------------------------------------------------ *)

let cols t =
  match t.row with
  | CTuple (_, fields, None) -> Some fields
  | CNull 0 -> Some []
  | _ -> None

let find_col t name =
  match t.row with
  | CTuple (_, fields, None) -> List.assoc_opt name fields
  | _ -> None

let of_cols n (fields : (string * col) list) : t =
  { n; row = CTuple (n, fields, None) }

(* ------------------------------------------------------------------ *)
(* Size accounting                                                     *)
(* ------------------------------------------------------------------ *)

let rec value_bytes (v : Value.t) : int =
  match v with
  | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ -> 8
  | Value.String s -> 24 + String.length s
  | Value.Tuple fs ->
    List.fold_left (fun acc (l, fv) -> acc + 24 + String.length l + value_bytes fv) 8 fs
  | Value.Bag es ->
    List.fold_left (fun acc (e, _) -> acc + 24 + value_bytes e) 8 es

let opt_bitv_bytes = function None -> 0 | Some p -> (Bitv.length p + 7) / 8

let rec col_bytes (c : col) : int =
  match c with
  | CNull n -> 8 + (n / 64)
  | CConst (_, v) -> 16 + value_bytes v
  | CBool (b, p) -> ((Bitv.length b + 7) / 8) + opt_bitv_bytes p
  | CInt (a, p) -> (8 * Array.length a) + opt_bitv_bytes p
  | CFloat (a, p) -> (8 * Array.length a) + opt_bitv_bytes p
  | CStr (a, p) -> (8 * Array.length a) + opt_bitv_bytes p
  | CTuple (_, fields, p) ->
    List.fold_left (fun acc (_, c) -> acc + col_bytes c) (opt_bitv_bytes p) fields
  | CBag bg ->
    (8 * (bg.bn + 1))
    + (8 * Array.length bg.bmult)
    + col_bytes bg.belems
    + opt_bitv_bytes bg.bpresent
  | CBox a -> Array.fold_left (fun acc v -> acc + value_bytes v) 0 a

let bytes t = col_bytes t.row

(* ------------------------------------------------------------------ *)
(* Gather / filter / stack kernels                                     *)
(* ------------------------------------------------------------------ *)

let opt_bitv_gather p idx =
  match p with
  | None -> None
  | Some p ->
    let q = Bitv.init (Array.length idx) (fun j -> Bitv.get p idx.(j)) in
    if Bitv.for_all q then None else Some q

let rec col_gather (c : col) (idx : int array) : col =
  let m = Array.length idx in
  match c with
  | CNull _ -> CNull m
  | CConst (_, v) -> CConst (m, v)
  | CBool (b, p) ->
    CBool (Bitv.init m (fun j -> Bitv.get b idx.(j)), opt_bitv_gather p idx)
  | CInt (a, p) ->
    CInt (Array.init m (fun j -> a.(idx.(j))), opt_bitv_gather p idx)
  | CFloat (a, p) ->
    CFloat (Array.init m (fun j -> a.(idx.(j))), opt_bitv_gather p idx)
  | CStr (a, p) ->
    CStr (Array.init m (fun j -> a.(idx.(j))), opt_bitv_gather p idx)
  | CTuple (_, fields, p) ->
    CTuple
      ( m,
        List.map (fun (l, c) -> (l, col_gather c idx)) fields,
        opt_bitv_gather p idx )
  | CBag bg ->
    let boff = Array.make (m + 1) 0 in
    let total = ref 0 in
    for j = 0 to m - 1 do
      boff.(j) <- !total;
      total := !total + (bg.boff.(idx.(j) + 1) - bg.boff.(idx.(j)))
    done;
    boff.(m) <- !total;
    let eidx = Array.make !total 0 in
    let bmult = Array.make !total 0 in
    let k = ref 0 in
    for j = 0 to m - 1 do
      for e = bg.boff.(idx.(j)) to bg.boff.(idx.(j) + 1) - 1 do
        eidx.(!k) <- e;
        bmult.(!k) <- bg.bmult.(e);
        incr k
      done
    done;
    CBag
      {
        bn = m;
        boff;
        bmult;
        belems = col_gather bg.belems eidx;
        bpresent = opt_bitv_gather bg.bpresent idx;
      }
  | CBox a -> CBox (Array.init m (fun j -> a.(idx.(j))))

let gather t idx =
  note_rows_scanned (Array.length idx);
  { n = Array.length idx; row = col_gather t.row idx }

(* Every index in [0, n) congruent to [offset] mod [stride] — the
   sampling pattern of approximate tracing, where the congruence class is
   fixed by the global row id of the batch's first row so both engines
   pick the same rows. *)
let stride_indices ~n ~offset ~stride =
  if stride <= 1 then Array.init n Fun.id
  else if offset >= n then [||]
  else Array.init ((n - offset + stride - 1) / stride) (fun j -> offset + (j * stride))

let filter t (mask : Bitv.t) =
  note_rows_scanned t.n;
  let idx = Bitv.indices mask in
  { n = Array.length idx; row = col_gather t.row idx }

(* Row-wise tuple concatenation.  The fast path concatenates column
   lists; anything irregular falls back to per-row
   [Value.concat_tuples], which also reproduces the row engine's
   exception on non-tuple rows. *)
let hstack a b =
  if a.n <> b.n then invalid_arg "Columnar.hstack: length mismatch";
  match (a.row, b.row) with
  | CTuple (_, fa, None), CTuple (_, fb, None) ->
    { n = a.n; row = CTuple (a.n, fa @ fb, None) }
  | _ ->
    let va = to_values a and vb = to_values b in
    of_values (Array.init a.n (fun i -> Value.concat_tuples va.(i) vb.(i)))

let rec col_shape (c : col) : shape =
  match c with
  | CNull _ -> SNull
  | CConst (_, v) -> shape_of v
  | CBool _ -> SBool
  | CInt _ -> SInt
  | CFloat _ -> SFloat
  | CStr _ -> SStr
  | CTuple (_, fields, _) ->
    STuple (List.map (fun (l, c) -> (l, col_shape c)) fields)
  | CBag bg -> SBag (col_shape bg.belems)
  | CBox a -> if Array.length a = 0 then SBot else SMixed

(* Concatenate columns after unifying on a target shape.  Falls back to
   materialize-and-rebuild when the shapes genuinely disagree. *)
let vstack (ts : t list) : t =
  match ts with
  | [] -> { n = 0; row = CNull 0 }
  | [ t ] -> t
  | _ ->
    let sh =
      List.fold_left (fun acc t -> shape_join acc (col_shape t.row)) SBot ts
    in
    let n = List.fold_left (fun acc t -> acc + t.n) 0 ts in
    (* Splice pieces without materializing rows whenever every piece is
       either the target constructor, an all-Null block, or a constant
       block: Null pieces become presence bits, constant pieces become
       array fills.  Only genuinely shape-mixed inputs still round-trip
       through [build_col]. *)
    let rec concat sh (cs : col list) total : col =
      match sh with
      | SBot | SNull -> CNull total
      | SMixed -> CBox (Array.concat (List.map col_values cs))
      | _ -> (
        let vals = lazy (Array.concat (List.map col_values cs)) in
        (* Shared presence accumulator over the spliced rows. *)
        let pres = ref None in
        let mark_absent idx =
          (match !pres with
          | None -> pres := Some (Bitv.create total true)
          | Some _ -> ());
          Bitv.set (Option.get !pres) idx false
        in
        let splice_presence off len = function
          | None -> ()
          | Some b ->
            for i = 0 to len - 1 do
              if not (Bitv.get b i) then mark_absent (off + i)
            done
        in
        match sh with
        | STuple fields
          when List.for_all
                 (function
                   | CTuple (_, fs, _) ->
                     List.length fs = List.length fields
                     && List.for_all2
                          (fun (l, _) (l', _) -> String.equal l l')
                          fs fields
                   | CNull _ -> true
                   | CConst (_, Value.Tuple fs) ->
                     List.length fs = List.length fields
                     && List.for_all2
                          (fun (l, _) (l', _) -> String.equal l l')
                          fs fields
                   | _ -> false)
                 cs ->
          let fields' =
            List.mapi
              (fun j (l, fsh) ->
                ( l,
                  concat fsh
                    (List.map
                       (function
                         | CTuple (_, fs, _) -> snd (List.nth fs j)
                         | CNull k -> CNull k
                         | CConst (k, Value.Tuple fs) -> (
                           match snd (List.nth fs j) with
                           | Value.Null -> CNull k
                           | fv -> CConst (k, fv))
                         | _ -> assert false)
                       cs)
                    total ))
              fields
          in
          let off = ref 0 in
          List.iter
            (fun c ->
              (match c with
              | CTuple (_, _, p) -> splice_presence !off (col_length c) p
              | CNull k ->
                for i = 0 to k - 1 do
                  mark_absent (!off + i)
                done
              | CConst _ -> ()
              | _ -> assert false);
              off := !off + col_length c)
            cs;
          CTuple (total, fields', !pres)
        | SBool
          when List.for_all
                 (function
                   | CBool _ | CNull _ | CConst (_, Value.Bool _) -> true
                   | _ -> false)
                 cs ->
          let bits = Bitv.create total false in
          let off = ref 0 in
          List.iter
            (fun c ->
              (match c with
              | CBool (b, p) ->
                let len = col_length c in
                for i = 0 to len - 1 do
                  if Bitv.get b i then Bitv.set bits (!off + i) true
                done;
                splice_presence !off len p
              | CNull k ->
                for i = 0 to k - 1 do
                  mark_absent (!off + i)
                done
              | CConst (k, Value.Bool x) ->
                if x then
                  for i = 0 to k - 1 do
                    Bitv.set bits (!off + i) true
                  done
              | _ -> assert false);
              off := !off + col_length c)
            cs;
          CBool (bits, !pres)
        | SInt
          when List.for_all
                 (function
                   | CInt _ | CNull _ | CConst (_, Value.Int _) -> true
                   | _ -> false)
                 cs ->
          let arr = Array.make total 0 in
          let off = ref 0 in
          List.iter
            (fun c ->
              (match c with
              | CInt (a, p) ->
                Array.blit a 0 arr !off (Array.length a);
                splice_presence !off (Array.length a) p
              | CNull k ->
                for i = 0 to k - 1 do
                  mark_absent (!off + i)
                done
              | CConst (k, Value.Int x) -> Array.fill arr !off k x
              | _ -> assert false);
              off := !off + col_length c)
            cs;
          CInt (arr, !pres)
        | SFloat
          when List.for_all
                 (function
                   | CFloat _ | CNull _ | CConst (_, Value.Float _) -> true
                   | _ -> false)
                 cs ->
          let arr = Array.make total 0.0 in
          let off = ref 0 in
          List.iter
            (fun c ->
              (match c with
              | CFloat (a, p) ->
                Array.blit a 0 arr !off (Array.length a);
                splice_presence !off (Array.length a) p
              | CNull k ->
                for i = 0 to k - 1 do
                  mark_absent (!off + i)
                done
              | CConst (k, Value.Float x) -> Array.fill arr !off k x
              | _ -> assert false);
              off := !off + col_length c)
            cs;
          CFloat (arr, !pres)
        | SStr
          when List.for_all
                 (function
                   | CStr _ | CNull _ | CConst (_, Value.String _) -> true
                   | _ -> false)
                 cs ->
          let arr = Array.make total 0 in
          let off = ref 0 in
          List.iter
            (fun c ->
              (match c with
              | CStr (a, p) ->
                Array.blit a 0 arr !off (Array.length a);
                splice_presence !off (Array.length a) p
              | CNull k ->
                for i = 0 to k - 1 do
                  mark_absent (!off + i)
                done
              | CConst (k, Value.String s) ->
                Array.fill arr !off k (Dict.intern s)
              | _ -> assert false);
              off := !off + col_length c)
            cs;
          CStr (arr, !pres)
        | SBag esh
          when List.for_all
                 (function CBag _ | CNull _ -> true | _ -> false)
                 cs ->
          let boff = Array.make (total + 1) 0 in
          let row = ref 0 in
          (* Per CBag piece, the packed (elems, mults) slice it uses. *)
          let elem_pieces = ref [] and mult_pieces = ref [] in
          List.iter
            (fun c ->
              match c with
              | CBag bg ->
                for i = 0 to bg.bn - 1 do
                  boff.(!row + i + 1) <-
                    boff.(!row + i) + (bg.boff.(i + 1) - bg.boff.(i))
                done;
                splice_presence !row bg.bn bg.bpresent;
                let lo = bg.boff.(0) and hi = bg.boff.(bg.bn) in
                if lo = 0 && hi = col_length bg.belems then begin
                  elem_pieces := bg.belems :: !elem_pieces;
                  mult_pieces := bg.bmult :: !mult_pieces
                end
                else begin
                  let idx = Array.init (hi - lo) (fun i -> lo + i) in
                  elem_pieces := col_gather bg.belems idx :: !elem_pieces;
                  mult_pieces := Array.sub bg.bmult lo (hi - lo) :: !mult_pieces
                end;
                row := !row + bg.bn
              | CNull k ->
                for i = 0 to k - 1 do
                  boff.(!row + i + 1) <- boff.(!row + i);
                  mark_absent (!row + i)
                done;
                row := !row + k
              | _ -> assert false)
            cs;
          let elem_cols = List.rev !elem_pieces in
          let ne = List.fold_left (fun acc c -> acc + col_length c) 0 elem_cols in
          CBag
            {
              bn = total;
              boff;
              bmult = Array.concat (List.rev !mult_pieces);
              belems = concat esh elem_cols ne;
              bpresent = !pres;
            }
        | _ -> build_col sh (Lazy.force vals))
    in
    { n; row = concat sh (List.map (fun t -> t.row) ts) n }

let empty = { n = 0; row = CNull 0 }
let broadcast n (v : Value.t) : t =
  match v with
  | Value.Null -> { n; row = CNull n }
  | Value.Tuple fs ->
    (* Per-field constant columns keep [hstack]/[vstack] on their
       column fast paths (join/flatten pads broadcast null tuples). *)
    { n;
      row =
        CTuple
          ( n,
            List.map
              (fun (l, fv) ->
                ( l,
                  match fv with
                  | Value.Null -> CNull n
                  | _ -> CConst (n, fv) ))
              fs,
            None );
    }
  | _ -> { n; row = CConst (n, v) }

(* ------------------------------------------------------------------ *)
(* Null masks                                                          *)
(* ------------------------------------------------------------------ *)

(* [Some mask] marks the rows whose value is [Null]; [None] = no nulls. *)
let null_mask (c : col) : Bitv.t option =
  match c with
  | CNull n -> Some (Bitv.create n true)
  | CConst (n, v) ->
    if v = Value.Null then Some (Bitv.create n true) else None
  | CBool (_, p) | CInt (_, p) | CFloat (_, p) | CStr (_, p)
  | CTuple (_, _, p) ->
    Option.map Bitv.lognot p
  | CBag bg -> Option.map Bitv.lognot bg.bpresent
  | CBox a ->
    let m = Bitv.init (Array.length a) (fun i -> a.(i) = Value.Null) in
    if Bitv.count m = 0 then None else Some m

(* ------------------------------------------------------------------ *)
(* Value coding (exact grouping / join keys)                           *)
(* ------------------------------------------------------------------ *)

module Coder = struct
  (* Codes are hash-consed integers: two values get the same code iff
     they are structurally equal (the same equivalence the row engine's
     generic [Hashtbl] grouping uses).  Tuples and bags fold their
     member codes through a pair-interning table, so coding a column is
     linear in its flattened size. *)

  type coder = {
    mutable next : int;
    ints : (int, int) Hashtbl.t;
    floats : (float, int) Hashtbl.t;
    strs : (int, int) Hashtbl.t;  (* dict code -> code *)
    labels : (string, int) Hashtbl.t;
    pairs : (int * int, int) Hashtbl.t;
    boxed : (Value.t, int) Hashtbl.t;
  }

  type t = coder

  let null_code = 0
  let false_code = 1
  let true_code = 2
  let tup_tag = 3
  let bag_tag = 4

  let create () =
    {
      next = 5;
      ints = Hashtbl.create 64;
      floats = Hashtbl.create 16;
      strs = Hashtbl.create 64;
      labels = Hashtbl.create 16;
      pairs = Hashtbl.create 256;
      boxed = Hashtbl.create 16;
    }

  let fresh t =
    let c = t.next in
    t.next <- c + 1;
    c

  let via : 'a. coder -> ('a, int) Hashtbl.t -> 'a -> int =
   fun t tbl k ->
    match Hashtbl.find_opt tbl k with
    | Some c -> c
    | None ->
      let c = fresh t in
      Hashtbl.add tbl k c;
      c

  let int_code t i = via t t.ints i
  let float_code t f = via t t.floats f
  let str_code t dcode = via t t.strs dcode
  let label_code t l = via t t.labels l
  let pair t a b = via t t.pairs (a, b)

  let rec value_code t (v : Value.t) : int =
    match v with
    | Value.Null -> null_code
    | Value.Bool false -> false_code
    | Value.Bool true -> true_code
    | Value.Int i -> int_code t i
    | Value.Float f -> float_code t f
    | Value.String s -> str_code t (Dict.intern s)
    | Value.Tuple fs ->
      List.fold_left
        (fun acc (l, fv) -> pair t acc (pair t (label_code t l) (value_code t fv)))
        tup_tag fs
    | Value.Bag es ->
      List.fold_left
        (fun acc (e, m) -> pair t acc (pair t (value_code t e) (int_code t m)))
        bag_tag es

  let rec col_codes t (c : col) : int array =
    match c with
    | CNull n -> Array.make n null_code
    | CConst (n, v) -> Array.make n (value_code t v)
    | CBool (b, p) ->
      Array.init (Bitv.length b) (fun i ->
          if not (present p i) then null_code
          else if Bitv.get b i then true_code
          else false_code)
    | CInt (a, p) ->
      Array.init (Array.length a) (fun i ->
          if present p i then int_code t a.(i) else null_code)
    | CFloat (a, p) ->
      Array.init (Array.length a) (fun i ->
          if present p i then float_code t a.(i) else null_code)
    | CStr (a, p) ->
      Array.init (Array.length a) (fun i ->
          if present p i then str_code t a.(i) else null_code)
    | CTuple (n, fields, p) ->
      let fcodes =
        List.map (fun (l, c) -> (label_code t l, col_codes t c)) fields
      in
      Array.init n (fun i ->
          if present p i then
            List.fold_left
              (fun acc (lc, cs) -> pair t acc (pair t lc cs.(i)))
              tup_tag fcodes
          else null_code)
    | CBag bg ->
      let ecodes = col_codes t bg.belems in
      Array.init bg.bn (fun i ->
          if present bg.bpresent i then begin
            let acc = ref bag_tag in
            for j = bg.boff.(i) to bg.boff.(i + 1) - 1 do
              acc := pair t !acc (pair t ecodes.(j) (int_code t bg.bmult.(j)))
            done;
            !acc
          end
          else null_code)
    | CBox a -> Array.map (value_code t) a

  (* Combine per-column code arrays into one code per row (order
     sensitive, like an unlabelled tuple). *)
  let mix t (cols : int array list) : int array =
    match cols with
    | [] -> [||]
    | first :: rest ->
      let n = Array.length first in
      let acc = Array.init n (fun i -> pair t tup_tag first.(i)) in
      List.iter
        (fun cs ->
          for i = 0 to n - 1 do
            acc.(i) <- pair t acc.(i) cs.(i)
          done)
        rest;
      acc

end

let row_codes (coder : Coder.t) (t : t) : int array =
  Coder.col_codes coder t.row

(* ------------------------------------------------------------------ *)
(* Vectorized hash (shuffle destinations)                              *)
(* ------------------------------------------------------------------ *)

let rec hash_col (c : col) : int array =
  match c with
  | CNull n -> Array.make n 17
  | CConst (n, v) -> Array.make n (value_hash v)
  | CBool (b, p) ->
    Array.init (Bitv.length b) (fun i ->
        if not (present p i) then 17 else if Bitv.get b i then 31 else 37)
  | CInt (a, p) ->
    Array.init (Array.length a) (fun i ->
        if present p i then a.(i) * 2654435761 else 17)
  | CFloat (a, p) ->
    Array.init (Array.length a) (fun i ->
        if present p i then
          Int64.to_int (Int64.bits_of_float a.(i)) * 2654435761
        else 17)
  | CStr (a, p) ->
    Array.init (Array.length a) (fun i ->
        if present p i then Dict.hash a.(i) else 17)
  | CTuple (n, fields, p) ->
    let fhashes =
      List.map
        (fun (l, c) -> (value_hash (Value.String l), hash_col c))
        fields
    in
    Array.init n (fun i ->
        if present p i then
          List.fold_left
            (fun acc (lh, hs) -> (acc * 31) + lh + hs.(i))
            7 fhashes
        else 17)
  | CBag bg ->
    let ehashes = hash_col bg.belems in
    Array.init bg.bn (fun i ->
        if present bg.bpresent i then begin
          let acc = ref 11 in
          for j = bg.boff.(i) to bg.boff.(i + 1) - 1 do
            acc := !acc + (ehashes.(j) * bg.bmult.(j))
          done;
          !acc
        end
        else 17)
  | CBox a -> Array.map value_hash a

(* Equivalence classes of rows over a list of columns: [result.(i)] is
   the smallest row index whose cells equal row [i]'s on every listed
   column.  Hash candidates are verified with [cmp_cells], so classes
   are exact (class equality iff structural row equality). *)
(* Equivalence classes over a single integer key per row (the key is
   already a structural-equality witness: dict codes, raw ints). *)
let eqclasses_codes (n : int) (key : int -> int) : int array =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create ((n / 2) + 11) in
  let cls = Array.make n 0 in
  for i = 0 to n - 1 do
    let k = key i in
    match Hashtbl.find_opt tbl k with
    | Some r -> cls.(i) <- r
    | None ->
      Hashtbl.add tbl k i;
      cls.(i) <- i
  done;
  cls

let eqclasses_general (n : int) (cs : col list) : int array =
  let h = Array.make n 0 in
  List.iter
    (fun c ->
      let ha = hash_col c in
      for i = 0 to n - 1 do
        h.(i) <- (h.(i) * 31) + ha.(i)
      done)
    cs;
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create ((n / 2) + 11) in
  let cls = Array.make n 0 in
  for i = 0 to n - 1 do
    match Hashtbl.find_opt tbl h.(i) with
    | None ->
      Hashtbl.add tbl h.(i) (ref [ i ]);
      cls.(i) <- i
    | Some bucket ->
      let rec find = function
        | [] ->
          bucket := i :: !bucket;
          cls.(i) <- i
        | r :: rest ->
          if List.for_all (fun c -> cmp_cells c r i = 0) cs then cls.(i) <- r
          else find rest
      in
      find !bucket
  done;
  cls

let eqclasses (n : int) (cs : col list) : int array =
  match cs with
  (* Dict codes and raw ints are equality witnesses on their own; a
     presence bitmap folds in as a sentinel ([Null] = [Null]). *)
  | [ CStr (codes, None) ] -> eqclasses_codes n (fun i -> codes.(i))
  | [ CStr (codes, Some p) ] ->
    eqclasses_codes n (fun i -> if Bitv.get p i then codes.(i) else min_int)
  | [ CInt (a, None) ] -> eqclasses_codes n (fun i -> a.(i))
  | [ CInt (a, Some p) ] ->
    eqclasses_codes n (fun i -> if Bitv.get p i then a.(i) else min_int)
  | _ -> eqclasses_general n cs

(* ------------------------------------------------------------------ *)
(* Vectorized expression evaluation                                    *)
(* ------------------------------------------------------------------ *)

exception Fallback

(* Presence bitmap of a column ([None] = all rows present).  [CBox]
   callers must handle separately. *)
let col_presence (c : col) n : Bitv.t option =
  match c with
  | CNull _ -> Some (Bitv.create n false)
  | CConst (_, v) -> if v = Value.Null then Some (Bitv.create n false) else None
  | CBool (_, p) | CInt (_, p) | CFloat (_, p) | CStr (_, p)
  | CTuple (_, _, p) ->
    p
  | CBag bg -> bg.bpresent
  | CBox a ->
    let p = Bitv.init (Array.length a) (fun i -> a.(i) <> Value.Null) in
    if Bitv.for_all p then None else Some p

let num2 name fi ff (a : col) (b : col) n : col =
  (match (a, b) with CBox _, _ | _, CBox _ -> raise Fallback | _ -> ());
  let pa = col_presence a n and pb = col_presence b n in
  (* Rows where both operands are non-Null; only those can compute or
     raise — everything else is Null, like [numeric_binop]. *)
  let both =
    match (pa, pb) with
    | None, None -> if n > 0 then `All else `None
    | None, Some p | Some p, None -> if Bitv.count p > 0 then `Mask p else `None
    | Some p, Some q ->
      let m = Bitv.logand p q in
      if Bitv.count m > 0 then `Mask m else `None
  in
  match both with
  | `None -> CNull n
  | _ ->
    let view c =
      match c with
      | CInt (x, _) -> `I x
      | CFloat (x, _) -> `F x
      | CConst (_, Value.Int k) -> `CI k
      | CConst (_, Value.Float k) -> `CF k
      | _ -> raise (Nrab.Expr.Eval_error ("non-numeric operands to " ^ name))
    in
    let va = view a and vb = view b in
    let live i = match both with `All -> true | `Mask m -> Bitv.get m i | `None -> false in
    let pres = match both with `All -> None | `Mask m -> Some m | `None -> assert false in
    (match (va, vb) with
    | (`I _ | `CI _), (`I _ | `CI _) ->
      let geta i = match va with `I x -> x.(i) | `CI k -> k | _ -> 0 in
      let getb i = match vb with `I x -> x.(i) | `CI k -> k | _ -> 0 in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        if live i then out.(i) <- fi (geta i) (getb i)
      done;
      CInt (out, pres)
    | _ ->
      let getf v i =
        match v with
        | `I x -> float_of_int x.(i)
        | `F x -> x.(i)
        | `CI k -> float_of_int k
        | `CF k -> k
      in
      let out = Array.make n 0. in
      for i = 0 to n - 1 do
        if live i then out.(i) <- ff (getf va i) (getf vb i)
      done;
      CFloat (out, pres))

let rec eval_col (t : t) (e : Nrab.Expr.t) : col =
  match e with
  | Nrab.Expr.Const v ->
    if v = Value.Null then CNull t.n else CConst (t.n, v)
  | Nrab.Expr.Attr a -> (
    match find_col t a with
    | Some c -> c
    | None -> (
      match t.row with
      | CTuple _ | CNull _ ->
        raise (Nrab.Expr.Eval_error ("unknown attribute " ^ a))
      | _ -> raise Fallback))
  | Nrab.Expr.Add (a, b) ->
    num2 "+" ( + ) ( +. ) (eval_col t a) (eval_col t b) t.n
  | Nrab.Expr.Sub (a, b) ->
    num2 "-" ( - ) ( -. ) (eval_col t a) (eval_col t b) t.n
  | Nrab.Expr.Mul (a, b) ->
    num2 "*" ( * ) ( *. ) (eval_col t a) (eval_col t b) t.n
  | Nrab.Expr.Div (a, b) ->
    num2 "/" ( / ) ( /. ) (eval_col t a) (eval_col t b) t.n

let eval_expr (t : t) (e : Nrab.Expr.t) : col =
  note_rows_scanned t.n;
  try eval_col t e
  with Fallback | Division_by_zero ->
    (* Exact per-row semantics (ordering of raises included). *)
    let vs = Array.init t.n (fun i -> Nrab.Expr.eval (get_row t i) e) in
    build_col (shape_of_values vs) vs

(* Comparison of two columns with [Expr.compare_values] semantics. *)
let cmp_mask (c : Nrab.Expr.cmp) (a : col) (b : col) n : Bitv.t =
  let test r =
    match c with
    | Nrab.Expr.Eq -> r = 0
    | Nrab.Expr.Neq -> r <> 0
    | Nrab.Expr.Lt -> r < 0
    | Nrab.Expr.Le -> r <= 0
    | Nrab.Expr.Gt -> r > 0
    | Nrab.Expr.Ge -> r >= 0
  in
  match (a, b) with
  | CNull _, _ | _, CNull _ -> Bitv.create n false
  | CInt (xa, pa), CInt (xb, pb) ->
    Bitv.init n (fun i ->
        present pa i && present pb i && test (compare xa.(i) xb.(i)))
  | CInt (xa, pa), CConst (_, Value.Int k) ->
    Bitv.init n (fun i -> present pa i && test (compare xa.(i) k))
  | CConst (_, Value.Int k), CInt (xb, pb) ->
    Bitv.init n (fun i -> present pb i && test (compare k xb.(i)))
  | CFloat (xa, pa), CFloat (xb, pb) ->
    Bitv.init n (fun i ->
        present pa i && present pb i && test (compare xa.(i) xb.(i)))
  | CFloat (xa, pa), CConst (_, Value.Float k) ->
    Bitv.init n (fun i -> present pa i && test (compare xa.(i) k))
  | CConst (_, Value.Float k), CFloat (xb, pb) ->
    Bitv.init n (fun i -> present pb i && test (compare k xb.(i)))
  | CInt (xa, pa), CFloat (xb, pb) ->
    Bitv.init n (fun i ->
        present pa i && present pb i
        && test (compare (float_of_int xa.(i)) xb.(i)))
  | CFloat (xa, pa), CInt (xb, pb) ->
    Bitv.init n (fun i ->
        present pa i && present pb i
        && test (compare xa.(i) (float_of_int xb.(i))))
  | CInt (xa, pa), CConst (_, Value.Float k) ->
    Bitv.init n (fun i ->
        present pa i && test (compare (float_of_int xa.(i)) k))
  | CFloat (xa, pa), CConst (_, Value.Int k) ->
    Bitv.init n (fun i ->
        present pa i && test (compare xa.(i) (float_of_int k)))
  | CStr (xa, pa), CConst (_, Value.String s) -> (
    match c with
    | Nrab.Expr.Eq | Nrab.Expr.Neq ->
      let kc, _ = Dict.intern_hit s in
      Bitv.init n (fun i ->
          present pa i && test (if xa.(i) = kc then 0 else 1))
    | _ ->
      Bitv.init n (fun i ->
          present pa i && test (String.compare (Dict.lookup xa.(i)) s)))
  | CConst (_, Value.String s), CStr (xb, pb) -> (
    match c with
    | Nrab.Expr.Eq | Nrab.Expr.Neq ->
      let kc, _ = Dict.intern_hit s in
      Bitv.init n (fun i ->
          present pb i && test (if xb.(i) = kc then 0 else 1))
    | _ ->
      Bitv.init n (fun i ->
          present pb i && test (String.compare s (Dict.lookup xb.(i)))))
  | CStr (xa, pa), CStr (xb, pb) -> (
    match c with
    | Nrab.Expr.Eq | Nrab.Expr.Neq ->
      Bitv.init n (fun i ->
          present pa i && present pb i
          && test (if xa.(i) = xb.(i) then 0 else 1))
    | _ ->
      Bitv.init n (fun i ->
          present pa i && present pb i
          && test (String.compare (Dict.lookup xa.(i)) (Dict.lookup xb.(i)))))
  | CBool (xa, pa), CBool (xb, pb) ->
    Bitv.init n (fun i ->
        present pa i && present pb i
        && test (compare (Bitv.get xa i) (Bitv.get xb i)))
  | _ ->
    (* Generic (exotic or mixed kinds): per-row comparison on
       reconstructed values; [eval_cmp] is the row semantics. *)
    let va = col_values a and vb = col_values b in
    Bitv.init n (fun i -> Nrab.Expr.eval_cmp c va.(i) vb.(i))

let rec pred_mask (t : t) (p : Nrab.Expr.pred) : Bitv.t =
  match p with
  | Nrab.Expr.True -> Bitv.create t.n true
  | Nrab.Expr.False -> Bitv.create t.n false
  | Nrab.Expr.Cmp (c, a, b) -> cmp_mask c (eval_col t a) (eval_col t b) t.n
  | Nrab.Expr.And (a, b) -> Bitv.logand (pred_mask t a) (pred_mask t b)
  | Nrab.Expr.Or (a, b) -> Bitv.logor (pred_mask t a) (pred_mask t b)
  | Nrab.Expr.Not p -> Bitv.lognot (pred_mask t p)
  | Nrab.Expr.IsNull e -> (
    match null_mask (eval_col t e) with
    | None -> Bitv.create t.n false
    | Some m -> m)
  | Nrab.Expr.IsNotNull e -> (
    match null_mask (eval_col t e) with
    | None -> Bitv.create t.n true
    | Some m -> Bitv.lognot m)
  | Nrab.Expr.Contains (e, s) -> (
    match eval_col t e with
    | CStr (a, p) ->
      let memo = Hashtbl.create 16 in
      Bitv.init t.n (fun i ->
          present p i
          &&
          match Hashtbl.find_opt memo a.(i) with
          | Some r -> r
          | None ->
            let r =
              Nrab.Expr.string_contains ~needle:s (Dict.lookup a.(i))
            in
            Hashtbl.add memo a.(i) r;
            r)
    | CConst (_, Value.String text) ->
      Bitv.create t.n (Nrab.Expr.string_contains ~needle:s text)
    | CBox a ->
      Bitv.init t.n (fun i ->
          match a.(i) with
          | Value.String text -> Nrab.Expr.string_contains ~needle:s text
          | _ -> false)
    | _ -> Bitv.create t.n false)

let eval_pred_mask (t : t) (p : Nrab.Expr.pred) : Bitv.t =
  note_rows_scanned t.n;
  try pred_mask t p
  with Fallback | Division_by_zero | Nrab.Expr.Eval_error _ ->
    (* Per-row fallback reproduces short-circuit evaluation exactly,
       including which exceptions (if any) escape. *)
    Bitv.init t.n (fun i -> Nrab.Expr.eval_pred (get_row t i) p)

(* ------------------------------------------------------------------ *)
(* Row-engine escape hatch                                             *)
(* ------------------------------------------------------------------ *)

let row_engine_flag =
  ref
    (match Sys.getenv_opt "WHYNOT_ROW_ENGINE" with
    | Some "" | Some "0" | None -> false
    | Some _ -> true)

let row_engine () = !row_engine_flag
let set_row_engine b = row_engine_flag := b

(* ------------------------------------------------------------------ *)
(* Relation -> batch cache                                             *)
(* ------------------------------------------------------------------ *)

(* Tables are re-scanned once per alternative query; cache the columnar
   build keyed by the relation's physical identity (relations are
   immutable values shared across scans). *)
let rel_cache : (Relation.t * t) list ref = ref []
let rel_cache_mu = Mutex.create ()
let rel_cache_cap = 32

let of_relation (r : Relation.t) : t =
  Mutex.protect rel_cache_mu (fun () ->
      match List.find_opt (fun (r', _) -> r' == r) !rel_cache with
      | Some (_, b) -> b
      | None ->
        let b = of_rows (Relation.tuples r) in
        let keep =
          if List.length !rel_cache >= rel_cache_cap then
            List.filteri (fun i _ -> i < rel_cache_cap - 1) !rel_cache
          else !rel_cache
        in
        rel_cache := (r, b) :: keep;
        b)
