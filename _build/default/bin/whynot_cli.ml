(* Command-line driver: run a scenario (or all of them) and print the
   why-not explanations of RP, RPnoSA, WN++, and Conseil. *)

let run_scenario ~scale ~verbose (s : Scenarios.Scenario.t) =
  let inst = s.Scenarios.Scenario.make ~scale in
  let phi = inst.Scenarios.Scenario.question in
  let q = phi.Whynot.Question.query in
  Fmt.pr "@.=== %s (%s): %s ===@." s.Scenarios.Scenario.name
    (Scenarios.Scenario.family_to_string s.Scenarios.Scenario.family)
    s.Scenarios.Scenario.description;
  Fmt.pr "query: %a@." Nrab.Query.pp q;
  Fmt.pr "why-not: %a@." Whynot.Nip.pp phi.Whynot.Question.missing;
  if not (Whynot.Question.is_proper phi) then
    Fmt.pr "WARNING: question is not proper (the answer is present)@.";
  let rp = Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives phi in
  let rpnosa = Whynot.Pipeline.explain ~use_sas:false phi in
  let wnpp = Baselines.Wnpp.explanations phi in
  let conseil = Baselines.Conseil.explanations phi in
  if verbose then begin
    Fmt.pr "schema alternatives:@.";
    List.iter
      (fun (sa : Whynot.Alternatives.sa) ->
        Fmt.pr "  S%d: %s@." (sa.Whynot.Alternatives.index + 1)
          sa.Whynot.Alternatives.description)
      rp.Whynot.Pipeline.sas
  end;
  let pp_expls label expls =
    Fmt.pr "%-8s %s@." label
      (if expls = [] then "(none)"
       else
         String.concat ", "
           (List.map (Whynot.Explanation.to_string_with_query q) expls))
  in
  pp_expls "WN++:"
    (List.map
       (fun e ->
         Whynot.Explanation.make ~lb:0 ~ub:0
           (Baselines.Explanation_set.ops e))
       wnpp);
  pp_expls "Conseil:"
    (List.map
       (fun e ->
         Whynot.Explanation.make ~lb:0 ~ub:0
           (Baselines.Explanation_set.ops e))
       conseil);
  pp_expls "RPnoSA:" rpnosa.Whynot.Pipeline.explanations;
  pp_expls "RP:" rp.Whynot.Pipeline.explanations;
  match inst.Scenarios.Scenario.gold with
  | None -> ()
  | Some gold ->
    let sets = Whynot.Pipeline.explanation_sets rp in
    let position g =
      let g = List.sort compare g in
      let rec go i = function
        | [] -> None
        | s :: rest -> if List.sort compare s = g then Some i else go (i + 1) rest
      in
      go 1 sets
    in
    List.iter
      (fun gset ->
        Fmt.pr "gold {%s}: %s@."
          (String.concat "," (List.map string_of_int gset))
          (match position gset with
          | Some p -> Fmt.str "found at position %d" p
          | None -> "MISSING"))
      gold

(* Ad-hoc mode: explain a why-not question over user-supplied JSON data,
   an s-expression query, and an s-expression why-not pattern.

     whynot_cli explain -db data.json -query q.sexp -whynot pattern.sexp \\
       [-alt table:a.b=c.d]... [-no-sas] [-no-revalidate]                  *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_alt (spec : string) : string * Nested.Path.t list =
  match String.split_on_char ':' spec with
  | [ table; group ] ->
    (table, List.map Nested.Path.of_string (String.split_on_char '=' group))
  | _ -> failwith ("invalid -alt spec (want table:a.b=c.d): " ^ spec)

let run_explain args =
  let db_file = ref "" and query_file = ref "" and whynot_file = ref "" in
  let alts = ref [] in
  let use_sas = ref true and revalidate = ref true in
  let spec =
    [
      ("-db", Arg.Set_string db_file, "JSON database file");
      ("-query", Arg.Set_string query_file, "query file (s-expression)");
      ("-whynot", Arg.Set_string whynot_file, "why-not pattern file (s-expression)");
      ( "-alt",
        Arg.String (fun s -> alts := parse_alt s :: !alts),
        "attribute alternatives, table:a.b=c.d" );
      ("-no-sas", Arg.Clear use_sas, "disable schema alternatives");
      ("-no-revalidate", Arg.Clear revalidate, "disable re-validation (ablation)");
    ]
  in
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    spec
    (fun a -> failwith ("unexpected argument " ^ a))
    "whynot_cli explain -db FILE -query FILE -whynot FILE [options]";
  if !db_file = "" || !query_file = "" || !whynot_file = "" then
    failwith "explain needs -db, -query, and -whynot";
  let db = Nested.Json.db_of_string (read_file !db_file) in
  let query = Nrab.Parser.query_of_string (String.trim (read_file !query_file)) in
  let missing = Whynot.Nip_syntax.of_string (String.trim (read_file !whynot_file)) in
  let phi = Whynot.Question.make ~query ~db ~missing in
  Fmt.pr "query:   %a@." Nrab.Query.pp query;
  Fmt.pr "why-not: %a@." Whynot.Nip.pp missing;
  (match Whynot.Question.check_missing phi with
  | Ok () -> ()
  | Error msg -> failwith ("invalid why-not pattern: " ^ msg));
  if not (Whynot.Question.is_proper phi) then
    Fmt.pr "WARNING: the answer is not actually missing@.";
  let result =
    Whynot.Pipeline.explain ~use_sas:!use_sas ~revalidate:!revalidate
      ~alternatives:(List.rev !alts) phi
  in
  Fmt.pr "%a@." Whynot.Pipeline.pp_result result

let run_scenarios args =
  let scale = ref 1 in
  let verbose = ref false in
  let names = ref [] in
  let spec =
    [
      ("-scale", Arg.Set_int scale, "data scale factor (default 1)");
      ("-v", Arg.Set verbose, "verbose (print schema alternatives)");
    ]
  in
  Arg.parse_argv ~current:(ref 0)
    (Array.of_list (Sys.argv.(0) :: args))
    spec
    (fun n -> names := n :: !names)
    "whynot_cli [scenario...]";
  let scenarios =
    match !names with
    | [] -> Scenarios.Registry.all
    | names -> List.filter_map Scenarios.Registry.find (List.rev names)
  in
  List.iter (run_scenario ~scale:!scale ~verbose:!verbose) scenarios

let list_scenarios () =
  Fmt.pr "%-6s %-12s %-18s %s@." "name" "family" "operators" "description";
  List.iter
    (fun (s : Scenarios.Scenario.t) ->
      Fmt.pr "%-6s %-12s %-18s %s@." s.Scenarios.Scenario.name
        (Scenarios.Scenario.family_to_string s.Scenarios.Scenario.family)
        s.Scenarios.Scenario.operators s.Scenarios.Scenario.description)
    Scenarios.Registry.all

let () =
  match Array.to_list Sys.argv with
  | _ :: "explain" :: rest -> run_explain rest
  | _ :: "list" :: _ -> list_scenarios ()
  | _ :: rest -> run_scenarios rest
  | [] -> ()
