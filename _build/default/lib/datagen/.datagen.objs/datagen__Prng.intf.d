lib/datagen/prng.mli:
