(* Schema-alternative tests (Section 5.2): attribute origins, choice
   points, the enumerate-and-prune behaviour of Figure 3, and the
   output-schema preservation rule. *)

open Nested
open Nrab
module Alt = Whynot.Alternatives

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
      ("address2", Vtype.relation [ ("city", Vtype.TString); ("year", Vtype.TInt) ]);
    ]

let env = [ ("person", person_schema) ]

let running_example_query () =
  let g = Query.Gen.create () in
  Query.nest_rel ~id:5 g [ "name" ] ~into:"nList"
    (Query.project_attrs ~id:4 g [ "name"; "city" ]
       (Query.select ~id:3 g
          (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
          (Query.flatten_inner ~id:2 g "address2" (Query.table ~id:1 g "person"))))

let alternatives : Alt.alternatives =
  [ ("person", [ [ "address2" ]; [ "address1" ] ]) ]

(* --- origins --- *)

let test_origins_through_flatten () =
  let g = Query.Gen.create () in
  let q = Query.flatten_inner ~id:2 g "address2" (Query.table ~id:1 g "person") in
  let origins = Alt.origins ~env q in
  Alcotest.(check bool) "top-level attribute" true
    (List.assoc_opt "name" origins = Some ("person", [ "name" ]));
  Alcotest.(check bool) "flattened inner attribute gets the nested path" true
    (List.assoc_opt "city" origins = Some ("person", [ "address2"; "city" ]))

let test_origins_through_rename_and_project () =
  let g = Query.Gen.create () in
  let q =
    Query.project ~id:3 g
      [ ("n2", Expr.attr "n1"); ("computed", Expr.(Mul (attr "n1", attr "n1"))) ]
      (Query.rename ~id:2 g [ ("n1", "a") ] (Query.table ~id:1 g "r"))
  in
  let env = [ ("r", Vtype.relation [ ("a", Vtype.TInt) ]) ] in
  let origins = Alt.origins ~env q in
  Alcotest.(check bool) "rename then project tracks origin" true
    (List.assoc_opt "n2" origins = Some ("r", [ "a" ]));
  Alcotest.(check bool) "computed columns have no origin" true
    (List.assoc_opt "computed" origins = None)

(* --- choice points --- *)

let test_choice_points () =
  let q = running_example_query () in
  let cps = Alt.choice_points ~env q alternatives in
  (* only the flatten references an attribute whose source is in the
     group (σ references year, whose source address2.year is not listed) *)
  Alcotest.(check int) "one choice point" 1 (List.length cps);
  let cp = List.hd cps in
  Alcotest.(check int) "at the flatten" 2 cp.Alt.cp_op;
  Alcotest.(check string) "referencing address2" "address2" cp.Alt.cp_attr

let test_choice_points_with_year_group () =
  (* with the year attributes also declared interchangeable, the
     selection becomes a choice point too — Figure 3's full tree *)
  let q = running_example_query () in
  let alts =
    alternatives
    @ [ ("person", [ [ "address2"; "year" ]; [ "address1"; "year" ] ]) ]
  in
  let cps = Alt.choice_points ~env q alts in
  Alcotest.(check int) "two choice points" 2 (List.length cps)

(* --- enumeration and pruning (Figure 3) --- *)

let test_enumerate_figure3 () =
  let q = running_example_query () in
  let alts =
    alternatives
    @ [ ("person", [ [ "address2"; "year" ]; [ "address1"; "year" ] ]) ]
  in
  (* 2 flatten choices × 2 selection choices = 4 assignments, of which
     only the two "aligned" ones survive (the year column is only
     accessible under the matching flatten) *)
  let sas = Alt.enumerate ~env q alts in
  Alcotest.(check int) "two SAs survive pruning" 2 (List.length sas);
  Alcotest.(check bool) "first is the original" true
    (Whynot.Msr.Int_set.is_empty (List.hd sas).Alt.changed_ops)

let test_enumerate_preserves_output_schema () =
  let q = running_example_query () in
  let sas = Alt.enumerate ~env q alternatives in
  let original_ty = Typecheck.infer env q in
  List.iter
    (fun (sa : Alt.sa) ->
      Alcotest.(check string) "output schema unchanged"
        (Vtype.to_string original_ty)
        (Vtype.to_string (Typecheck.infer env sa.Alt.query)))
    sas

let test_enumerate_prunes_type_mismatch () =
  (* a group mixing a string attribute with an int attribute can never be
     substituted: the queries would be ill-typed *)
  let g = Query.Gen.create () in
  let env = [ ("r", Vtype.relation [ ("a", Vtype.TInt); ("b", Vtype.TString) ]) ] in
  let q =
    Query.select ~id:2 g
      (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 3))
      (Query.table ~id:1 g "r")
  in
  let sas = Alt.enumerate ~env q [ ("r", [ [ "a" ]; [ "b" ] ]) ] in
  Alcotest.(check int) "only the original remains" 1 (List.length sas)

let test_max_sas_truncation () =
  let q = running_example_query () in
  let sas = Alt.enumerate ~max_sas:1 ~env q alternatives in
  Alcotest.(check int) "truncated to one" 1 (List.length sas);
  Alcotest.(check bool) "the original is kept" true
    (Whynot.Msr.Int_set.is_empty (List.hd sas).Alt.changed_ops)

let test_no_alternatives_yields_original_only () =
  let q = running_example_query () in
  let sas = Alt.enumerate ~env q [] in
  Alcotest.(check int) "just the original" 1 (List.length sas)

(* --- substitution --- *)

let test_subst_node () =
  let subst a = if a = "x" then "y" else a in
  let sel = Query.Select (Expr.Cmp (Expr.Eq, Expr.attr "x", Expr.int 1)) in
  (match Alt.subst_node sel subst with
  | Query.Select (Expr.Cmp (Expr.Eq, Expr.Attr "y", _)) -> ()
  | _ -> Alcotest.fail "selection substitution");
  let nest = Query.Nest_tuple ([ ("label", "x") ], "c") in
  match Alt.subst_node nest subst with
  | Query.Nest_tuple ([ ("label", "y") ], "c") -> ()
  | _ -> Alcotest.fail "nest substitution keeps the label"

let () =
  Alcotest.run "alternatives"
    [
      ( "origins",
        [
          Alcotest.test_case "through flatten" `Quick test_origins_through_flatten;
          Alcotest.test_case "through rename/project" `Quick
            test_origins_through_rename_and_project;
        ] );
      ( "choice-points",
        [
          Alcotest.test_case "flatten only" `Quick test_choice_points;
          Alcotest.test_case "with year group" `Quick test_choice_points_with_year_group;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "figure 3 pruning" `Quick test_enumerate_figure3;
          Alcotest.test_case "output schema preserved" `Quick
            test_enumerate_preserves_output_schema;
          Alcotest.test_case "type mismatch pruned" `Quick
            test_enumerate_prunes_type_mismatch;
          Alcotest.test_case "max_sas truncation" `Quick test_max_sas_truncation;
          Alcotest.test_case "no alternatives" `Quick
            test_no_alternatives_yields_original_only;
        ] );
      ("substitution", [ Alcotest.test_case "subst_node" `Quick test_subst_node ]);
    ]
