(* The crime-dataset comparison (Table 6): three small scenarios where the
   lineage-based approaches (Why-Not, Conseil) and the
   reparameterization-based approach disagree.  Because the data is tiny,
   the exact MSR search (the brute-force algorithm from the proof of
   Theorem 1) can validate the heuristic's explanations.

     dune exec examples/crime_investigation.exe *)

let show name =
  let s = Option.get (Scenarios.Registry.find name) in
  let inst = s.Scenarios.Scenario.make ~scale:1 () in
  let phi = inst.Scenarios.Scenario.question in
  let q = phi.Whynot.Question.query in
  Fmt.pr "@.--- %s ---@." name;
  Fmt.pr "query:   %a@." Nrab.Query.pp q;
  Fmt.pr "why-not: %a@." Whynot.Nip.pp phi.Whynot.Question.missing;
  let fmt_base es =
    if es = [] then "(none)"
    else String.concat ", " (List.map Baselines.Explanation_set.to_string es)
  in
  Fmt.pr "Why-Not: %s@." (fmt_base (Baselines.Wnpp.explanations phi));
  Fmt.pr "Conseil: %s@." (fmt_base (Baselines.Conseil.explanations phi));
  let rp =
    Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives phi
  in
  Fmt.pr "RP:      %s@."
    (String.concat ", "
       (List.map (Whynot.Explanation.to_string_with_query q)
          rp.Whynot.Pipeline.explanations));
  (* ground truth: which operator sets admit a successful
     reparameterization at all? *)
  let srs = Whynot.Exact.successful ~max_ops:2 ~depth:1 phi in
  let sets =
    List.sort_uniq compare
      (List.map
         (fun (sr : Whynot.Exact.sr) ->
           Whynot.Msr.Int_set.elements sr.Whynot.Exact.changed)
         srs)
  in
  Fmt.pr "exact SR op-sets (≤2 ops, 1 change each): %s@."
    (if sets = [] then "(none)"
     else
       String.concat ", "
         (List.map
            (fun set ->
              "{" ^ String.concat "," (List.map string_of_int set) ^ "}")
            sets))

let () =
  show "C1";
  show "C2";
  show "C3";
  Fmt.pr
    "@.C3 is the showcase: the lineage baselines blame the join, but the\n\
     only way to \"fix\" that join is a cross product — not an admissible\n\
     reparameterization.  RP instead pinpoints the projection: the\n\
     description of \"snow\" is the clothing, not the hair.@."
