(** Concrete repair suggestions for an explanation.

    An explanation names the operators to fix; [suggest] searches for
    actual parameter changes of exactly those operators that make the
    missing answer appear (attribute swaps, comparison-operator switches,
    constants from the active domain, kind changes), ranked by their true
    tree-edit-distance side effects.  This bridges query-based towards
    refinement-based explanations.

    Bounded search — intended for interactive use on one explanation at a
    time, on data small enough to evaluate candidate queries. *)

open Nrab

type suggestion = {
  changes : (int * Query.node) list;  (** per-operator replacement *)
  repaired : Query.t;
  side_effects : int;  (** tree edit distance to the original result *)
}

(** Successful repairs implementing [expl], best (fewest side effects)
    first.  [depth] bounds admissible changes per operator; at most
    [max_suggestions] are returned. *)
val suggest :
  ?depth:int -> ?max_suggestions:int -> Question.t -> Explanation.t -> suggestion list

(** Render one suggestion as per-operator [old → new] lines. *)
val pp_suggestion : Query.t -> Format.formatter -> suggestion -> unit
