(* Execution statistics collected by the engine: per-operator input/output
   cardinalities and shuffle volumes, mirroring what one reads off a Spark
   UI when profiling the paper's implementation. *)

type op_stats = {
  op_id : int;
  op_label : string;
  mutable input_rows : int;
  mutable output_rows : int;
  mutable shuffled_rows : int;
}

type t = {
  mutable ops : op_stats list;
  mutable stages : int;  (* narrow chains broken by shuffles *)
}

let create () = { ops = []; stages = 1 }

let op (t : t) ~op_id ~op_label : op_stats =
  match List.find_opt (fun o -> o.op_id = op_id) t.ops with
  | Some o -> o
  | None ->
    let o = { op_id; op_label; input_rows = 0; output_rows = 0; shuffled_rows = 0 } in
    t.ops <- o :: t.ops;
    o

let reset (t : t) =
  t.ops <- [];
  t.stages <- 1

let record_shuffle (t : t) (o : op_stats) rows =
  o.shuffled_rows <- o.shuffled_rows + rows;
  if rows > 0 then t.stages <- t.stages + 1

(* Deterministic op_id order — find-or-create builds the list in
   insertion order, which must not leak into output or golden tests. *)
let ops (t : t) = List.sort (fun a b -> compare a.op_id b.op_id) t.ops

let stages (t : t) = t.stages

let total_output (t : t) =
  List.fold_left (fun acc o -> acc + o.output_rows) 0 t.ops

let total_shuffled (t : t) =
  List.fold_left (fun acc o -> acc + o.shuffled_rows) 0 t.ops

(* Fold the per-operator counters into an observability registry: totals
   as counters, per-operator cardinalities as log-scale histograms — the
   registry view of what [pp] prints. *)
let fold_into ?registry (t : t) =
  let counter n = Obs.Metrics.counter ?registry n in
  let histogram n = Obs.Metrics.histogram ?registry n in
  Obs.Metrics.Counter.incr ~by:(total_output t) (counter "engine.rows.output");
  Obs.Metrics.Counter.incr ~by:(total_shuffled t)
    (counter "engine.rows.shuffled");
  Obs.Metrics.Counter.incr ~by:t.stages (counter "engine.stages");
  Obs.Metrics.Counter.incr ~by:(List.length t.ops) (counter "engine.operators");
  List.iter
    (fun o ->
      Obs.Metrics.Histogram.observe
        (histogram "engine.op.input_rows")
        (float_of_int o.input_rows);
      Obs.Metrics.Histogram.observe
        (histogram "engine.op.output_rows")
        (float_of_int o.output_rows);
      if o.shuffled_rows > 0 then
        Obs.Metrics.Histogram.observe
          (histogram "engine.op.shuffled_rows")
          (float_of_int o.shuffled_rows))
    t.ops

let pp ppf (t : t) =
  let ops = ops t in
  Fmt.pf ppf "@[<v>stages: %d@,%a@]" t.stages
    (Fmt.list ~sep:Fmt.cut (fun ppf o ->
         Fmt.pf ppf "op %2d %-14s in=%-8d out=%-8d shuffled=%d" o.op_id
           o.op_label o.input_rows o.output_rows o.shuffled_rows))
    ops
