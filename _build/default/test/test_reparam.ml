(* Reparameterization tests (Table 2 / Definitions 6–7): admissibility of
   parameter changes, structure preservation, Δ computation, and the
   candidate enumeration used by the exact search. *)

open Nested
open Nrab
module Rp = Whynot.Reparam

let sel c = Query.Select (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int c))

let test_admissible_same_family () =
  Alcotest.(check bool) "selection condition change" true
    (Rp.admissible_change (sel 1) (sel 2));
  Alcotest.(check bool) "join kind change" true
    (Rp.admissible_change
       (Query.Join (Query.Inner, Expr.True))
       (Query.Join (Query.Left, Expr.True)));
  Alcotest.(check bool) "flatten kind change" true
    (Rp.admissible_change
       (Query.Flatten (Query.Flat_inner, "a"))
       (Query.Flatten (Query.Flat_outer, "a")));
  Alcotest.(check bool) "flatten attribute change" true
    (Rp.admissible_change
       (Query.Flatten (Query.Flat_inner, "a"))
       (Query.Flatten (Query.Flat_inner, "b")))

let test_admissible_rejects_structure_change () =
  Alcotest.(check bool) "selection to projection is not a reparameterization"
    false
    (Rp.admissible_change (sel 1) (Query.Project [ ("a", Expr.attr "a") ]));
  Alcotest.(check bool) "projection must keep its output names" false
    (Rp.admissible_change
       (Query.Project [ ("x", Expr.attr "a") ])
       (Query.Project [ ("y", Expr.attr "a") ]));
  Alcotest.(check bool) "projection width must not change" false
    (Rp.admissible_change
       (Query.Project [ ("x", Expr.attr "a") ])
       (Query.Project [ ("x", Expr.attr "a"); ("y", Expr.attr "b") ]));
  Alcotest.(check bool) "parameter-free operators cannot change" false
    (Rp.admissible_change Query.Dedup Query.Dedup)

let test_apply_preserves_structure () =
  let g = Query.Gen.create () in
  let env = [ ("r", Vtype.relation [ ("a", Vtype.TInt) ]) ] in
  let q = Query.select ~id:2 g (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 5)) (Query.table ~id:1 g "r") in
  let q' = Rp.apply q [ (2, sel 1) ] in
  Alcotest.(check int) "same operator count" (Query.op_count q) (Query.op_count q');
  Alcotest.(check bool) "same ids" true
    (List.map (fun (op : Query.t) -> op.Query.id) (Query.operators q)
    = List.map (fun (op : Query.t) -> op.Query.id) (Query.operators q'));
  Alcotest.(check bool) "still well-typed" true (Typecheck.well_typed env q')

let test_delta () =
  let g = Query.Gen.create () in
  let q =
    Query.select ~id:3 g (sel 5 |> function Query.Select p -> p | _ -> Expr.True)
      (Query.select ~id:2 g
         (Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.int 0))
         (Query.table ~id:1 g "r"))
  in
  let q' = Rp.apply q [ (3, sel 1) ] in
  Alcotest.(check (list int)) "delta is {3}" [ 3 ]
    (Rp.Int_set.elements (Rp.delta q q'));
  Alcotest.(check (list int)) "delta of identity is empty" []
    (Rp.Int_set.elements (Rp.delta q q))

let test_is_valid () =
  let g = Query.Gen.create () in
  let q = Query.select ~id:2 g Expr.True (Query.table ~id:1 g "r") in
  Alcotest.(check bool) "valid change" true (Rp.is_valid q [ (2, sel 1) ]);
  Alcotest.(check bool) "unknown operator" false (Rp.is_valid q [ (9, sel 1) ]);
  Alcotest.(check bool) "table access is frozen" false
    (Rp.is_valid q [ (1, Query.Table "other") ])

(* --- candidate enumeration --- *)

let attr_pool a =
  match a with "a" | "b" -> [ "a"; "b" ] | other -> [ other ]

let const_pool _ v =
  match v with Value.Int _ -> [ Value.Int 0; Value.Int 9 ] | _ -> []

let test_pred_variants () =
  let p = Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 5) in
  let vs = Rp.pred_variants ~attr_pool ~const_pool p in
  (* 5 comparison switches + 1 attribute swap + 2 constant changes *)
  Alcotest.(check int) "variant count" 8 (List.length vs);
  Alcotest.(check bool) "includes the attribute swap" true
    (List.mem (Expr.Cmp (Expr.Ge, Expr.attr "b", Expr.int 5)) vs);
  Alcotest.(check bool) "includes a constant change" true
    (List.mem (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 0)) vs);
  Alcotest.(check bool) "never returns the original" false (List.mem p vs)

let test_node_variants_join () =
  let j = Query.Join (Query.Inner, Expr.Cmp (Expr.Eq, Expr.attr "a", Expr.attr "c")) in
  let vs = Rp.node_variants ~attr_pool ~const_pool j in
  let kinds =
    List.filter (function Query.Join (k, _) -> k <> Query.Inner | _ -> false) vs
  in
  Alcotest.(check int) "three kind changes" 3 (List.length kinds)

let test_node_variants_agg () =
  let a = Query.Agg_tuple (Agg.Sum, "a", "out") in
  let vs = Rp.node_variants ~attr_pool ~const_pool a in
  (* 5 other functions + 1 attribute swap *)
  Alcotest.(check int) "aggregation variants" 6 (List.length vs)

let test_node_variants_rename_frozen () =
  Alcotest.(check int) "renaming enumerates nothing (permutations only)" 0
    (List.length (Rp.node_variants ~attr_pool ~const_pool (Query.Rename [ ("b", "a") ])))

let () =
  Alcotest.run "reparam"
    [
      ( "admissibility",
        [
          Alcotest.test_case "same family" `Quick test_admissible_same_family;
          Alcotest.test_case "structure preserved" `Quick
            test_admissible_rejects_structure_change;
        ] );
      ( "application",
        [
          Alcotest.test_case "apply" `Quick test_apply_preserves_structure;
          Alcotest.test_case "delta" `Quick test_delta;
          Alcotest.test_case "validity" `Quick test_is_valid;
        ] );
      ( "enumeration",
        [
          Alcotest.test_case "predicate variants" `Quick test_pred_variants;
          Alcotest.test_case "join variants" `Quick test_node_variants_join;
          Alcotest.test_case "aggregation variants" `Quick test_node_variants_agg;
          Alcotest.test_case "rename frozen" `Quick test_node_variants_rename_frozen;
        ] );
    ]
