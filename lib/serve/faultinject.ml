(* The fault-injection registry moved to [Obs.Faultinject] so one
   harness can drive faults through the engine, the pipeline, and the
   serve layer alike.  This alias keeps existing call sites (and the
   serve test-suite) compiling unchanged. *)

include Obs.Faultinject
