(* Keyed latch table for single-flight coalescing.

   One mutex guards the table and every entry's state; followers wait on
   the entry's condition variable (associated with the table mutex).
   The leader runs its computation OUTSIDE the lock — only bookkeeping
   is done under it, so followers of other keys are never serialized
   behind a slow computation. *)

type 'v outcome = Pending | Resolved of ('v, exn) result

type 'v entry = {
  cond : Condition.t;
  leader_trace : string option;
      (* the leader's ambient trace at entry creation — followers report
         it so a coalesced request's log line names whose execution it
         rode *)
  mutable outcome : 'v outcome;
}

type 'v t = {
  name : string;
  mutex : Mutex.t;
  table : (string, 'v entry) Hashtbl.t;
  mutable leaders_n : int;
  mutable coalesced_n : int;
  mutable failures_n : int;
}

type role = Leader | Follower of { leader_trace : string option }

let metric t suffix =
  Obs.Metrics.counter ("serve.inflight." ^ t.name ^ "." ^ suffix)

let create ?(name = "default") () =
  {
    name;
    mutex = Mutex.create ();
    table = Hashtbl.create 32;
    leaders_n = 0;
    coalesced_n = 0;
    failures_n = 0;
  }

let run t key (f : unit -> 'v) : role * ('v, exn) result =
  (* read the ambient trace before taking the table mutex — mutexes stay
     un-nested *)
  let my_trace = Obs.Trace_context.current () in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    (* follower: wait for the leader's broadcast.  The entry may already
       be out of the table by the time we wake — we hold our own
       reference, so the outcome is still readable. *)
    t.coalesced_n <- t.coalesced_n + 1;
    let rec awaited () =
      match entry.outcome with
      | Resolved r -> r
      | Pending ->
        Condition.wait entry.cond t.mutex;
        awaited ()
    in
    let r = awaited () in
    Mutex.unlock t.mutex;
    Obs.Metrics.Counter.incr (metric t "coalesced");
    (Follower { leader_trace = entry.leader_trace }, r)
  | None ->
    let entry =
      { cond = Condition.create (); leader_trace = my_trace; outcome = Pending }
    in
    Hashtbl.replace t.table key entry;
    t.leaders_n <- t.leaders_n + 1;
    Mutex.unlock t.mutex;
    Obs.Metrics.Counter.incr (metric t "leaders");
    let r = match f () with v -> Ok v | exception e -> Error e in
    Mutex.lock t.mutex;
    entry.outcome <- Resolved r;
    (match r with
    | Error _ ->
      t.failures_n <- t.failures_n + 1;
      Obs.Metrics.Counter.incr (metric t "failures")
    | Ok _ -> ());
    (* Remove before broadcasting: arrivals from here on lead afresh. *)
    Hashtbl.remove t.table key;
    Condition.broadcast entry.cond;
    Mutex.unlock t.mutex;
    (Leader, r)

let active t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

type stats = { leaders : int; coalesced : int; failures : int }

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      leaders = t.leaders_n;
      coalesced = t.coalesced_n;
      failures = t.failures_n;
    }
  in
  Mutex.unlock t.mutex;
  s
