(** Execution statistics: per-operator input/output cardinalities and
    shuffle volumes — what one reads off a Spark UI when profiling the
    paper's implementation. *)

type op_stats = {
  op_id : int;
  op_label : string;
  mutable input_rows : int;
  mutable output_rows : int;
  mutable shuffled_rows : int;
}

type t

val create : unit -> t

(** Find-or-create the stats record of an operator. *)
val op : t -> op_id:int -> op_label:string -> op_stats

(** Record a shuffle; a non-empty shuffle starts a new stage. *)
val record_shuffle : t -> op_stats -> int -> unit

(** Drop all recorded operators and reset the stage count. *)
val reset : t -> unit

(** All operator records, in [op_id] order (deterministic, independent
    of find-or-create insertion order). *)
val ops : t -> op_stats list

val stages : t -> int
val total_output : t -> int
val total_shuffled : t -> int

(** Fold the counters into an {!Obs.Metrics} registry (the default one
    if none is given): totals as counters, per-operator cardinalities as
    histograms. *)
val fold_into : ?registry:Obs.Metrics.t -> t -> unit

(** Prints operators in [op_id] order. *)
val pp : Format.formatter -> t -> unit
