(** Request-scoped trace context — the ambient trace id of the work the
    current thread is doing.

    A trace id is an opaque string token (see {!is_valid}) that follows
    one request through the serve tier, the pipeline, and the engine.
    The context is keyed per ⟨domain, thread⟩, so concurrent connection
    threads and pool worker domains never observe each other's ids;
    {!Engine.Pool.submit} captures the submitter's context and
    re-installs it around the job, which is how the id crosses the pool
    boundary onto worker domains.

    Consumers read it back ambiently: {!Span.start} tags new spans with
    [trace_id], {!Log} stamps every record, and the engine's retry path
    attributes re-attempts — so a single grep for one trace id over the
    JSON log stream reconstructs the request's full path. *)

(** The current thread's trace id, if one is installed. *)
val current : unit -> string option

(** [with_id id f] runs [f] with [id] installed as the current trace
    id, restoring the previous context (even on raise). *)
val with_id : string -> (unit -> 'a) -> 'a

(** [with_opt None f] runs [f] with no ambient context (clearing any);
    [with_opt (Some id) f] = [with_id id f].  Used to transplant a
    captured context ({!current}) onto another thread. *)
val with_opt : string option -> (unit -> 'a) -> 'a

(** Imperatively install ([Some id]) or clear ([None]) the context —
    prefer {!with_id}, which restores on exit. *)
val set : string option -> unit

(** A fresh 16-hex-char id (splitmix64 stream seeded per process). *)
val make : unit -> string

(** Accept tokens of 1–64 chars from [[A-Za-z0-9._:-]] — greppable,
    quotable, no whitespace. *)
val is_valid : string -> bool
