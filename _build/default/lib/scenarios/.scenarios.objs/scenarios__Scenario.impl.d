lib/scenarios/scenario.ml: Fmt List Nrab Query Whynot
