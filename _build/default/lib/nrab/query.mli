(** The NRAB query AST (Section 3.2 / Table 1 of the paper).

    Every operator node carries a unique integer identifier.  Explanations
    are sets of identifiers, and an operator keeps its identifier across
    reparameterizations (Section 4.2), so identifiers are the common
    currency between queries, traces, and explanations. *)

type join_kind = Inner | Left | Right | Full
type flatten_kind = Flat_inner | Flat_outer

type node =
  | Table of string  (** table access *)
  | Select of Expr.pred  (** σ_θ *)
  | Project of (string * Expr.t) list
      (** generalized π: output name × defining expression; plain π_L is
          the special case where every expression is an attribute *)
  | Rename of (string * string) list
      (** ρ as (new name, old name) pairs; unlisted attributes keep their
          names *)
  | Join of join_kind * Expr.pred  (** ⋈ / ⟕ / ⟖ / ⟗ *)
  | Product  (** × *)
  | Union  (** additive bag union *)
  | Diff  (** bag difference *)
  | Dedup  (** δ *)
  | Flatten_tuple of string  (** Fᵀ *)
  | Flatten of flatten_kind * string  (** Fᴵ / Fᴼ *)
  | Nest_tuple of (string * string) list * string
      (** Nᵀ: (output label, source attr) pairs → new attribute; output
          labels are fixed so attribute swaps preserve the output schema *)
  | Nest_rel of (string * string) list * string
      (** Nᴿ: same, nesting into a relation, grouping on the remaining
          attributes *)
  | Agg_tuple of Agg.fn * string * string
      (** γ_{f(A)→B}: per-tuple aggregation over nested attribute A *)
  | Group_agg of (string * string) list * (Agg.fn * string option * string) list
      (** group-by aggregation (derived operator): labelled group
          attributes × aggregates (function, input attribute or [None] for
          count(·), output name) *)

type t = { id : int; node : node; children : t list }

(** {1 Construction}

    Identifiers come from an explicit generator so scenario definitions
    can pin ids; pass [?id] to override. *)

module Gen : sig
  type t

  val create : ?start:int -> unit -> t
  val fresh : t -> int
end

val mk : ?id:int -> Gen.t -> node -> t list -> t
val table : ?id:int -> Gen.t -> string -> t
val select : ?id:int -> Gen.t -> Expr.pred -> t -> t
val project : ?id:int -> Gen.t -> (string * Expr.t) list -> t -> t

(** Plain π_L over the listed attributes. *)
val project_attrs : ?id:int -> Gen.t -> string list -> t -> t

val rename : ?id:int -> Gen.t -> (string * string) list -> t -> t
val join : ?id:int -> Gen.t -> join_kind -> Expr.pred -> t -> t -> t
val product : ?id:int -> Gen.t -> t -> t -> t
val union : ?id:int -> Gen.t -> t -> t -> t
val diff : ?id:int -> Gen.t -> t -> t -> t
val dedup : ?id:int -> Gen.t -> t -> t
val flatten_tuple : ?id:int -> Gen.t -> string -> t -> t
val flatten : ?id:int -> Gen.t -> flatten_kind -> string -> t -> t
val flatten_inner : ?id:int -> Gen.t -> string -> t -> t
val flatten_outer : ?id:int -> Gen.t -> string -> t -> t
val nest_tuple : ?id:int -> Gen.t -> string list -> into:string -> t -> t
val nest_rel : ?id:int -> Gen.t -> string list -> into:string -> t -> t

val nest_tuple_labeled :
  ?id:int -> Gen.t -> (string * string) list -> into:string -> t -> t

val nest_rel_labeled :
  ?id:int -> Gen.t -> (string * string) list -> into:string -> t -> t

val agg_tuple : ?id:int -> Gen.t -> Agg.fn -> over:string -> into:string -> t -> t

val group_agg :
  ?id:int -> Gen.t -> string list -> (Agg.fn * string option * string) list -> t -> t

val group_agg_labeled :
  ?id:int ->
  Gen.t ->
  (string * string) list ->
  (Agg.fn * string option * string) list ->
  t ->
  t

(** {1 Traversals} *)

(** Bottom-up fold (children before parents). *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** All operators, children before parents (topological order). *)
val operators : t -> t list

val find_op : t -> int -> t option
val op_count : t -> int

(** Input table names, in order of appearance. *)
val input_tables : t -> string list

(** Assign fresh identifiers to every operator — for combining
    independently built plans whose ids collide. *)
val relabel : Gen.t -> t -> t

(** Replace the node of one operator, keeping structure and identifiers —
    the shape-preservation invariant of reparameterizations
    (Definition 7). *)
val replace_node : t -> int -> node -> t

(** {1 Presentation} *)

(** Short operator symbol ("σ", "Fᴵ", …), for paper-style [σ^12] output. *)
val op_symbol : node -> string

(** Coarse operator classes used by the Table 7 summary. *)
type op_type =
  | Op_select
  | Op_project
  | Op_rename
  | Op_join
  | Op_flatten
  | Op_nest
  | Op_agg
  | Op_other

val op_type : node -> op_type
val op_type_to_string : op_type -> string
val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
