(* Hierarchical spans: a named, timed region of execution with a parent
   link, key/value attributes, and children.  The mini-DISC engine opens
   one per operator and per shuffle stage; the why-not pipeline opens one
   per algorithm phase and per schema alternative.

   Mutation (child registration, attributes, finishing) is guarded by a
   single global mutex so spans may be touched from the engine's
   per-partition domains; the hot path is one lock per span event, which
   is far below the per-tuple work the spans measure. *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | String of string

type t = {
  id : int;
  name : string;
  parent_id : int option;
  start_ns : int;
  mutable end_ns : int option;
  mutable attrs : (string * value) list;  (* insertion order, oldest first *)
  mutable rev_children : t list;
}

let lock = Mutex.create ()

let protect f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let next_id = ref 0

let start ?parent ?at name =
  (* Read the ambient trace context before taking the span lock: the
     two mutexes stay un-nested.  Requests tag every span they open, so
     one grep over an exported trace isolates one request's spans. *)
  let trace = Trace_context.current () in
  protect (fun () ->
      let id = !next_id in
      incr next_id;
      (* An explicit [at] lets callers tile sibling spans wall-to-wall
         (OpenTelemetry-style explicit timestamps); clamped to the
         parent's start so trees stay well-formed. *)
      let start_ns =
        match at with
        | None -> Clock.now_ns ()
        | Some at -> (
          match parent with
          | Some p -> max at p.start_ns
          | None -> at)
      in
      let sp =
        {
          id;
          name;
          parent_id = Option.map (fun p -> p.id) parent;
          start_ns;
          end_ns = None;
          attrs =
            (match trace with
            | Some t -> [ ("trace_id", String t) ]
            | None -> []);
          rev_children = [];
        }
      in
      (match parent with
      | Some p -> p.rev_children <- sp :: p.rev_children
      | None -> ());
      sp)

let finish ?at sp =
  protect (fun () ->
      match sp.end_ns with
      | Some _ -> ()  (* idempotent *)
      | None ->
        let e = match at with None -> Clock.now_ns () | Some at -> at in
        sp.end_ns <- Some (max e sp.start_ns))

let set sp key v =
  protect (fun () ->
      sp.attrs <- List.filter (fun (k, _) -> k <> key) sp.attrs @ [ (key, v) ])

let set_int sp key i = set sp key (Int i)
let set_float sp key f = set sp key (Float f)
let set_bool sp key b = set sp key (Bool b)
let set_string sp key s = set sp key (String s)

let attr sp key = List.assoc_opt key sp.attrs
let attrs sp = sp.attrs

let with_ ?parent name f =
  let sp = start ?parent name in
  Fun.protect ~finally:(fun () -> finish sp) (fun () -> f sp)

let name sp = sp.name
let id sp = sp.id
let parent_id sp = sp.parent_id
let finished sp = Option.is_some sp.end_ns
let start_ns sp = sp.start_ns
let end_ns sp = sp.end_ns

let duration_ns sp =
  match sp.end_ns with
  | Some e -> e - sp.start_ns
  | None -> Clock.now_ns () - sp.start_ns

let duration_ms sp = Clock.ns_to_ms (duration_ns sp)

let children sp = List.rev sp.rev_children

let rec iter f sp =
  f sp;
  List.iter (iter f) (children sp)

let fold f acc sp =
  let acc = ref acc in
  iter (fun sp -> acc := f !acc sp) sp;
  !acc

let find_all pred sp = List.rev (fold (fun acc sp -> if pred sp then sp :: acc else acc) [] sp)

let count_named n sp =
  fold (fun acc sp -> if String.equal sp.name n then acc + 1 else acc) 0 sp

(* Total time spent in descendant spans called [n] — used for phase
   breakdowns, where one logical phase runs once per schema
   alternative. *)
let sum_duration_ms_named n sp =
  fold
    (fun acc sp -> if String.equal sp.name n then acc +. duration_ms sp else acc)
    0.0 sp

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Bool b -> Fmt.bool ppf b
  | String s -> Fmt.string ppf s

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
    Fmt.pf ppf "  {%a}"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) ->
           Fmt.pf ppf "%s=%a" k pp_value v))
      attrs

let pp_tree ppf sp =
  let rec go prefix child_prefix sp =
    Fmt.pf ppf "%s%-*s %8.3f ms%a@," prefix
      (max 1 (32 - String.length prefix))
      sp.name (duration_ms sp) pp_attrs sp.attrs;
    let cs = children sp in
    let n = List.length cs in
    List.iteri
      (fun i c ->
        let last = i = n - 1 in
        go
          (child_prefix ^ if last then "└─ " else "├─ ")
          (child_prefix ^ if last then "   " else "│  ")
          c)
      cs
  in
  Fmt.pf ppf "@[<v>";
  go "" "" sp;
  Fmt.pf ppf "@]"
