(* Why-not question tests (Definition 5): properness, matching result
   tuples, and success of candidate reparameterizations. *)

open Nested
open Nrab
module Nip = Whynot.Nip

let schema = Vtype.relation [ ("a", Vtype.TInt); ("b", Vtype.TString) ]

let row a b = Value.Tuple [ ("a", Value.Int a); ("b", Value.String b) ]

let db =
  Relation.Db.of_list
    [ ("r", Relation.of_tuples ~schema [ row 1 "x"; row 2 "y"; row 3 "y" ]) ]

let query_ge n =
  let g = Query.Gen.create () in
  Query.select ~id:2 g
    (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int n))
    (Query.table ~id:1 g "r")

let test_proper () =
  let phi =
    Whynot.Question.make ~query:(query_ge 2) ~db
      ~missing:(Nip.tup [ ("a", Nip.int 1) ])
  in
  Alcotest.(check bool) "a=1 is missing" true (Whynot.Question.is_proper phi);
  let phi_bad =
    Whynot.Question.make ~query:(query_ge 2) ~db
      ~missing:(Nip.tup [ ("a", Nip.int 3) ])
  in
  Alcotest.(check bool) "a=3 is present" false (Whynot.Question.is_proper phi_bad)

let test_placeholder_properness () =
  (* a NIP with only placeholders matches any result tuple: improper as
     long as the result is non-empty *)
  let phi =
    Whynot.Question.make ~query:(query_ge 2) ~db ~missing:(Nip.tup [ ("a", Nip.any) ])
  in
  Alcotest.(check bool) "wildcard over non-empty result" false
    (Whynot.Question.is_proper phi)

let test_original_result () =
  let phi =
    Whynot.Question.make ~query:(query_ge 2) ~db
      ~missing:(Nip.tup [ ("a", Nip.int 1) ])
  in
  Alcotest.(check int) "two result rows" 2
    (Relation.cardinal (Whynot.Question.original_result phi))

let test_is_successful () =
  let phi =
    Whynot.Question.make ~query:(query_ge 2) ~db
      ~missing:(Nip.tup [ ("a", Nip.int 1) ])
  in
  Alcotest.(check bool) "relaxed query succeeds" true
    (Whynot.Question.is_successful phi (query_ge 0));
  Alcotest.(check bool) "tightened query fails" false
    (Whynot.Question.is_successful phi (query_ge 3));
  Alcotest.(check int) "matching tuples" 1
    (List.length (Whynot.Question.matching_tuples phi (query_ge 0)))

let test_pred_nip_questions () =
  (* predicate placeholders in questions (the TPC-H style) *)
  let phi =
    Whynot.Question.make ~query:(query_ge 2) ~db
      ~missing:(Nip.tup [ ("a", Nip.pred Expr.Gt (Value.Int 10)) ])
  in
  Alcotest.(check bool) "a > 10 missing" true (Whynot.Question.is_proper phi);
  let phi2 =
    Whynot.Question.make ~query:(query_ge 2) ~db
      ~missing:(Nip.tup [ ("a", Nip.pred Expr.Gt (Value.Int 2)) ])
  in
  Alcotest.(check bool) "a > 2 present" false (Whynot.Question.is_proper phi2)

let () =
  Alcotest.run "question"
    [
      ( "definition-5",
        [
          Alcotest.test_case "properness" `Quick test_proper;
          Alcotest.test_case "placeholder properness" `Quick test_placeholder_properness;
          Alcotest.test_case "original result" `Quick test_original_result;
          Alcotest.test_case "successful reparameterizations" `Quick test_is_successful;
          Alcotest.test_case "predicate NIPs" `Quick test_pred_nip_questions;
        ] );
    ]
