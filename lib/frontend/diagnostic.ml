type pos = { offset : int; line : int; col : int }
type span = { left : int; right : int }
type stage = [ `Lex | `Parse | `Type | `Pattern ]

type t = {
  stage : stage;
  span : span option;
  message : string;
  hint : string option;
}

let make ?span ?hint stage message = { stage; span; message; hint }

let makef ?span ?hint stage fmt =
  Fmt.kstr (fun message -> make ?span ?hint stage message) fmt

let stage_to_string = function
  | `Lex -> "lex"
  | `Parse -> "parse"
  | `Type -> "type"
  | `Pattern -> "pattern"

let pos_of_offset source offset =
  let n = String.length source in
  let offset = if offset < 0 then 0 else if offset > n then n else offset in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if source.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { offset; line = !line; col = offset - !bol + 1 }

(* The source line (without trailing newline) containing [offset]. *)
let line_at source offset =
  let n = String.length source in
  let offset = if offset < 0 then 0 else if offset > n then n else offset in
  let bol = ref 0 in
  for i = 0 to offset - 1 do
    if source.[i] = '\n' then bol := i + 1
  done;
  let eol = ref n in
  (try
     for i = !bol to n - 1 do
       if source.[i] = '\n' then begin
         eol := i;
         raise Exit
       end
     done
   with Exit -> ());
  String.sub source !bol (!eol - !bol)

let one_line ~source t =
  let where =
    match t.span with
    | None -> ""
    | Some s ->
        let p = pos_of_offset source s.left in
        Fmt.str " at %d:%d" p.line p.col
  in
  Fmt.str "%s error%s: %s" (stage_to_string t.stage) where t.message

let tab_width = 4

(* Expand tabs at fixed [tab_width] stops so the caret line (spaces
   only) aligns with the rendered source line regardless of the
   terminal's tab stops. *)
let expand_tabs line =
  let b = Buffer.create (String.length line) in
  String.iter
    (fun c ->
      if c = '\t' then
        Buffer.add_string b
          (String.make (tab_width - (Buffer.length b mod tab_width)) ' ')
      else Buffer.add_char b c)
    line;
  Buffer.contents b

(* Display width of [line]'s first [stop] bytes after tab expansion. *)
let expanded_width line stop =
  let w = ref 0 in
  for i = 0 to stop - 1 do
    if line.[i] = '\t' then w := !w + (tab_width - (!w mod tab_width))
    else incr w
  done;
  !w

let render ~source t =
  let b = Buffer.create 128 in
  Buffer.add_string b (one_line ~source t);
  (match t.span with
  | None -> ()
  | Some s ->
      let p = pos_of_offset source s.left in
      let line = line_at source s.left in
      let lineno = string_of_int p.line in
      let gutter = String.make (String.length lineno) ' ' in
      (* Underline from the start column to the end of the span, clamped
         to the end of the line (multi-line spans underline the first
         line only), at least one caret. *)
      let line_len = String.length line in
      let start_b = p.col - 1 in
      let start_b = if start_b > line_len then line_len else start_b in
      let stop_b = start_b + (s.right - s.left) in
      let stop_b = if stop_b > line_len then line_len else stop_b in
      (* Caret columns are measured over the tab-expanded rendering, so
         a tab before (or inside) the span cannot skew the underline. *)
      let start = expanded_width line start_b in
      let stop = expanded_width line stop_b in
      let width = if stop - start < 1 then 1 else stop - start in
      Buffer.add_string b
        (Fmt.str "\n  %s | %s\n  %s | %s%s" lineno (expand_tabs line) gutter
           (String.make start ' ') (String.make width '^')));
  (match t.hint with
  | None -> ()
  | Some h -> Buffer.add_string b (Fmt.str "\n  hint: %s" h));
  Buffer.contents b

let to_json ~source t =
  let open Nested.Json in
  let base =
    [
      ("stage", J_string (stage_to_string t.stage));
      ("message", J_string t.message);
    ]
  in
  let where =
    match t.span with
    | None -> []
    | Some s ->
        let p = pos_of_offset source s.left in
        let q = pos_of_offset source s.right in
        [
          ("line", J_int p.line);
          ("col", J_int p.col);
          ("end_line", J_int q.line);
          ("end_col", J_int q.col);
          ("snippet", J_string (render ~source t));
        ]
  in
  let hint = match t.hint with None -> [] | Some h -> [ ("hint", J_string h) ] in
  J_object (base @ where @ hint)
