(* Scalar expressions and selection/join predicates over tuples.

   Expressions reference top-level attributes of the input tuple(s); they
   appear in selections, joins, and computed projection columns (e.g. the
   TPC-H [disc_price ← l_extendedprice × (1 − l_discount)]). *)

open Nested

type t =
  | Const of Value.t
  | Attr of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type pred =
  | True
  | False
  | Cmp of cmp * t * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | IsNull of t
  | IsNotNull of t
  | Contains of t * string  (* substring test, for text filters like "UEFA" *)

(* Constructors *)
let const v = Const v
let attr a = Attr a
let int i = Const (Value.Int i)
let str s = Const (Value.String s)
let flt f = Const (Value.Float f)

(* Infix constructors, meant to be opened locally when building queries. *)
module Infix = struct
  let ( + ) a b = Add (a, b)
  let ( - ) a b = Sub (a, b)
  let ( * ) a b = Mul (a, b)
  let ( / ) a b = Div (a, b)
  let ( = ) a b = Cmp (Eq, a, b)
  let ( <> ) a b = Cmp (Neq, a, b)
  let ( < ) a b = Cmp (Lt, a, b)
  let ( <= ) a b = Cmp (Le, a, b)
  let ( > ) a b = Cmp (Gt, a, b)
  let ( >= ) a b = Cmp (Ge, a, b)
  let ( && ) a b = And (a, b)
  let ( || ) a b = Or (a, b)
  let not_ p = Not p
end

(* Attributes referenced by an expression / predicate. *)
let rec attrs (e : t) : string list =
  match e with
  | Const _ -> []
  | Attr a -> [ a ]
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> attrs a @ attrs b

let rec pred_attrs (p : pred) : string list =
  match p with
  | True | False -> []
  | Cmp (_, a, b) -> attrs a @ attrs b
  | And (a, b) | Or (a, b) -> pred_attrs a @ pred_attrs b
  | Not p -> pred_attrs p
  | IsNull e | IsNotNull e -> attrs e
  | Contains (e, _) -> attrs e

(* Substitute attribute references. *)
let rec subst_attrs (f : string -> string) (e : t) : t =
  match e with
  | Const _ -> e
  | Attr a -> Attr (f a)
  | Add (a, b) -> Add (subst_attrs f a, subst_attrs f b)
  | Sub (a, b) -> Sub (subst_attrs f a, subst_attrs f b)
  | Mul (a, b) -> Mul (subst_attrs f a, subst_attrs f b)
  | Div (a, b) -> Div (subst_attrs f a, subst_attrs f b)

let rec subst_pred_attrs (f : string -> string) (p : pred) : pred =
  match p with
  | True | False -> p
  | Cmp (c, a, b) -> Cmp (c, subst_attrs f a, subst_attrs f b)
  | And (a, b) -> And (subst_pred_attrs f a, subst_pred_attrs f b)
  | Or (a, b) -> Or (subst_pred_attrs f a, subst_pred_attrs f b)
  | Not p -> Not (subst_pred_attrs f p)
  | IsNull e -> IsNull (subst_attrs f e)
  | IsNotNull e -> IsNotNull (subst_attrs f e)
  | Contains (e, s) -> Contains (subst_attrs f e, s)

(* Substitute constants (used by reparameterization search). *)
let rec subst_consts (f : Value.t -> Value.t) (e : t) : t =
  match e with
  | Const v -> Const (f v)
  | Attr _ -> e
  | Add (a, b) -> Add (subst_consts f a, subst_consts f b)
  | Sub (a, b) -> Sub (subst_consts f a, subst_consts f b)
  | Mul (a, b) -> Mul (subst_consts f a, subst_consts f b)
  | Div (a, b) -> Div (subst_consts f a, subst_consts f b)

(* Evaluation.  Arithmetic propagates Null; comparisons with Null are
   false (SQL-style three-valued logic collapsed to two values). *)

exception Eval_error of string

let numeric_binop name fi ff (a : Value.t) (b : Value.t) : Value.t =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (fi x y)
  | Value.Float x, Value.Float y -> Value.Float (ff x y)
  | Value.Int x, Value.Float y -> Value.Float (ff (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (ff x (float_of_int y))
  | _ -> raise (Eval_error ("non-numeric operands to " ^ name))

let rec eval (tuple : Value.t) (e : t) : Value.t =
  match e with
  | Const v -> v
  | Attr a -> (
    match Value.field a tuple with
    | Some v -> v
    | None -> raise (Eval_error ("unknown attribute " ^ a)))
  | Add (a, b) -> numeric_binop "+" ( + ) ( +. ) (eval tuple a) (eval tuple b)
  | Sub (a, b) -> numeric_binop "-" ( - ) ( -. ) (eval tuple a) (eval tuple b)
  | Mul (a, b) -> numeric_binop "*" ( * ) ( *. ) (eval tuple a) (eval tuple b)
  | Div (a, b) -> numeric_binop "/" ( / ) ( /. ) (eval tuple a) (eval tuple b)

(* Numeric-coercing comparison; [None] when either side is Null. *)
let compare_values (a : Value.t) (b : Value.t) : int option =
  match a, b with
  | Value.Null, _ | _, Value.Null -> None
  | Value.Int x, Value.Float y -> Some (compare (float_of_int x) y)
  | Value.Float x, Value.Int y -> Some (compare x (float_of_int y))
  | _ -> Some (Value.compare a b)

let eval_cmp (c : cmp) (a : Value.t) (b : Value.t) : bool =
  match compare_values a b with
  | None -> false
  | Some r -> (
    match c with
    | Eq -> r = 0
    | Neq -> r <> 0
    | Lt -> r < 0
    | Le -> r <= 0
    | Gt -> r > 0
    | Ge -> r >= 0)

let string_contains ~needle haystack =
  let n = String.length needle and m = String.length haystack in
  let rec scan i =
    if i + n > m then false
    else if String.equal (String.sub haystack i n) needle then true
    else scan (i + 1)
  in
  scan 0

let rec eval_pred (tuple : Value.t) (p : pred) : bool =
  match p with
  | True -> true
  | False -> false
  | Cmp (c, a, b) -> eval_cmp c (eval tuple a) (eval tuple b)
  | And (a, b) -> eval_pred tuple a && eval_pred tuple b
  | Or (a, b) -> eval_pred tuple a || eval_pred tuple b
  | Not p -> not (eval_pred tuple p)
  | IsNull e -> Value.equal (eval tuple e) Value.Null
  | IsNotNull e -> not (Value.equal (eval tuple e) Value.Null)
  | Contains (e, s) -> (
    match eval tuple e with
    | Value.String text -> string_contains ~needle:s text
    | _ -> false)

(* Pretty printing *)

let pp_cmp ppf = function
  | Eq -> Fmt.string ppf "="
  | Neq -> Fmt.string ppf "≠"
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "≤"
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf "≥"

let rec pp ppf (e : t) =
  match e with
  | Const v -> Value.pp ppf v
  | Attr a -> Fmt.string ppf a
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a × %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b

let rec pp_pred ppf (p : pred) =
  match p with
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Cmp (c, a, b) -> Fmt.pf ppf "%a %a %a" pp a pp_cmp c pp b
  | And (a, b) -> Fmt.pf ppf "(%a ∧ %a)" pp_pred a pp_pred b
  | Or (a, b) -> Fmt.pf ppf "(%a ∨ %a)" pp_pred a pp_pred b
  | Not p -> Fmt.pf ppf "¬(%a)" pp_pred p
  | IsNull e -> Fmt.pf ppf "%a is null" pp e
  | IsNotNull e -> Fmt.pf ppf "%a is not null" pp e
  | Contains (e, s) -> Fmt.pf ppf "%a contains %S" pp e s

let to_string e = Fmt.str "%a" pp e
let pred_to_string p = Fmt.str "%a" pp_pred p
