# The single committed verify recipe: builds every executable (CLI,
# server, bench, examples) and runs the full test suite.  Run before
# every merge.
.PHONY: verify build test bench-chaos bench-obs

verify:
	dune build @all && dune runtest

build:
	dune build @all

test:
	dune runtest

# Gated chaos measurement (arms process-global fault sites, so it never
# runs as part of the default bench sweep).
bench-chaos:
	dune exec bench/main.exe -- chaos -json BENCH_PR5.json

# Gated telemetry-overhead measurement (flips the process-global log
# level and sink set, so it never runs as part of the default sweep).
bench-obs:
	dune exec bench/main.exe -- obs -json BENCH_PR6.json
