examples/tpch_audit.mli:
