(* Dataset catalog: generate a scenario's dataset once, share the loaded
   instance across requests, and version each entry so downstream caches
   (whose keys embed the version) invalidate on refresh.

   Mutex-protected — the scheduler hands requests to pool domains, and
   registrations may race with lookups. *)

open Nested

type key = { name : string; scale : int; seed : int }

type entry = {
  key : key;
  version : int;
  scenario : Scenarios.Scenario.t;
  instance : Scenarios.Scenario.instance;
  tables : (string * int) list;
  rows : int;
}

type t = {
  mutex : Mutex.t;
  entries : (key, entry) Hashtbl.t;
  mutable order : key list;  (* registration order, newest last *)
}

let create () =
  { mutex = Mutex.create (); entries = Hashtbl.create 16; order = [] }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let registers = lazy (Obs.Metrics.counter "serve.catalog.registers")
let reuses = lazy (Obs.Metrics.counter "serve.catalog.reuses")
let refreshes = lazy (Obs.Metrics.counter "serve.catalog.refreshes")
let datasets = lazy (Obs.Metrics.gauge "serve.catalog.datasets")

let table_stats db =
  let tables =
    List.map
      (fun (name, rel) -> (name, Relation.cardinal rel))
      (Relation.Db.tables db)
  in
  (tables, List.fold_left (fun acc (_, n) -> acc + n) 0 tables)

let build (s : Scenarios.Scenario.t) key version : entry =
  let instance =
    if key.seed = 0 then s.Scenarios.Scenario.make ~scale:key.scale ()
    else s.Scenarios.Scenario.make ~scale:key.scale ~seed:key.seed ()
  in
  let tables, rows =
    table_stats instance.Scenarios.Scenario.question.Whynot.Question.db
  in
  { key; version; scenario = s; instance; tables; rows }

let register t ?(seed = 0) ?(refresh = false) ~name ~scale () =
  match Scenarios.Registry.find name with
  | None -> Error (Fmt.str "unknown scenario %S (try the `list` request)" name)
  | Some s ->
    (* canonical name so "d1" and "D1" share an entry *)
    let key = { name = s.Scenarios.Scenario.name; scale; seed } in
    locked t (fun () ->
        match Hashtbl.find_opt t.entries key with
        | Some e when not refresh ->
          Obs.Metrics.Counter.incr (Lazy.force reuses);
          Ok (e, false)
        | prior ->
          let version =
            match prior with Some e -> e.version + 1 | None -> 1
          in
          let e = build s key version in
          Hashtbl.replace t.entries key e;
          if prior = None then t.order <- t.order @ [ key ]
          else Obs.Metrics.Counter.incr (Lazy.force refreshes);
          Obs.Metrics.Counter.incr (Lazy.force registers);
          Obs.Metrics.Gauge.set (Lazy.force datasets)
            (float_of_int (Hashtbl.length t.entries));
          Ok (e, true))

let canonical_key ?(seed = 0) ~name ~scale () =
  match Scenarios.Registry.find name with
  | Some s -> Some { name = s.Scenarios.Scenario.name; scale; seed }
  | None -> None

let find t ?seed ~name ~scale () =
  match canonical_key ?seed ~name ~scale () with
  | None -> None
  | Some key -> locked t (fun () -> Hashtbl.find_opt t.entries key)

let evict t ?seed ~name ~scale () =
  match canonical_key ?seed ~name ~scale () with
  | None -> false
  | Some key ->
    let present =
      locked t (fun () ->
          let present = Hashtbl.mem t.entries key in
          if present then begin
            Hashtbl.remove t.entries key;
            t.order <- List.filter (fun k -> k <> key) t.order;
            Obs.Metrics.Gauge.set (Lazy.force datasets)
              (float_of_int (Hashtbl.length t.entries))
          end;
          present)
    in
    (* Eviction is the explicit "drop this dataset's footprint" verb, so
       its checkpoint/spill scratch goes with it.  Spilled partitions
       can hold their *only* copy in the run directory (no lineage
       closure), so [sweep] defers while any execution holds a
       {!Engine.Checkpoint.retain} pin — the last in-flight run's
       release performs the sweep. *)
    if present then Engine.Checkpoint.sweep ();
    present

let schema_env (e : entry) =
  Frontend.Compile.env_of_db
    e.instance.Scenarios.Scenario.question.Whynot.Question.db

let entries t =
  locked t (fun () ->
      List.filter_map (fun k -> Hashtbl.find_opt t.entries k) t.order)

let size t = locked t (fun () -> Hashtbl.length t.entries)
