(** Columnar arena representation of nested-value batches.

    A batch stores rows struct-of-arrays: flat typed arrays for
    primitive columns, offset vectors encoding bag nesting, one global
    hash-consed string dictionary, and packed presence bitmaps for
    [Null].  [of_rows]/[to_rows] are exact inverses on arbitrary
    {!Nested.Value.t} rows — canonical bag order is preserved verbatim —
    so the tree API remains the semantic boundary and per-row
    reconstruction can stay lazy.

    Columns whose rows disagree on shape (mixed primitive kinds,
    differing tuple labels) fall back to a boxed [CBox] column; every
    kernel still works, just row-at-a-time for that column. *)

open Nested

(** Packed bit vectors (8 bits per byte). *)
module Bitv : sig
  type t

  val create : int -> bool -> t
  val length : t -> int
  val get : t -> int -> bool
  val set : t -> int -> bool -> unit
  val init : int -> (int -> bool) -> t
  val copy : t -> t
  val logand : t -> t -> t
  val logor : t -> t -> t
  val lognot : t -> t

  (** Number of set bits among the valid positions. *)
  val count : t -> int

  (** Positions of set bits, ascending. *)
  val indices : t -> int array

  val for_all : t -> bool

  (** Raw packed bits ([(len+7)/8] bytes), for the checkpoint codec. *)
  val to_bytes : t -> string

  (** Inverse of [to_bytes]; raises [Invalid_argument] when the string
      is not exactly [(len+7)/8] bytes. *)
  val of_bytes : int -> string -> t
end

(** Process-wide hash-consed string dictionary.  Thread-safe. *)
module Dict : sig
  (** Intern a string, returning its stable code.  Bumps the
      [engine.columnar.dict_hits] counter when the string was already
      present. *)
  val intern : string -> int

  val lookup : int -> string

  (** Memoized {!value_hash} of the interned string. *)
  val hash : int -> int

  val size : unit -> int
end

type col =
  | CNull of int  (** [n] all-Null rows *)
  | CConst of int * Value.t  (** [n] copies of one non-Null value *)
  | CBool of Bitv.t * Bitv.t option  (** values, presence ([None] = all) *)
  | CInt of int array * Bitv.t option
  | CFloat of float array * Bitv.t option
  | CStr of int array * Bitv.t option  (** global dictionary codes *)
  | CTuple of int * (string * col) list * Bitv.t option
  | CBag of bag
  | CBox of Value.t array  (** fallback for shape-mixed columns *)

and bag = {
  bn : int;
  boff : int array;  (** [bn + 1] element offsets *)
  bmult : int array;  (** per stored element, its multiplicity *)
  belems : col;  (** flattened elements, canonical order preserved *)
  bpresent : Bitv.t option;  (** absent rows are [Null], not empty bags *)
}

type t = { n : int; row : col }

val length : t -> int
val col_length : col -> int

(** {1 Building and reconstruction} *)

val of_rows : Value.t list -> t
val of_values : Value.t array -> t

(** Exact inverse of [of_rows]: bags come back in stored canonical
    order, never re-normalized. *)
val to_rows : t -> Value.t list

val to_values : t -> Value.t array
val col_values : col -> Value.t array
val get_row : t -> int -> Value.t

(** [cmp_rows t i j] orders rows [i] and [j] exactly like
    [Value.compare (get_row t i) (get_row t j)], without reconstructing
    either value. *)
val cmp_rows : t -> int -> int -> int

(** [eqclasses n cols] assigns each of the [n] rows the smallest row
    index structurally equal to it on every listed column — an exact
    integer grouping key (hash candidates are verified with the
    columnar comparator). *)
val eqclasses : int -> col list -> int array
val col_get : col -> int -> Value.t

(** Columnar build of a relation's expanded tuples, cached by the
    relation's physical identity (bounded LRU-ish cache). *)
val of_relation : Relation.t -> t

(** {1 Tuple structure} *)

(** Top-level columns when every row is a tuple of the same labels;
    [None] otherwise (fall back to row access). *)
val cols : t -> (string * col) list option

val find_col : t -> string -> col option
val of_cols : int -> (string * col) list -> t

(** {1 Kernels} *)

val gather : t -> int array -> t
val filter : t -> Bitv.t -> t
val col_gather : col -> int array -> col

(** [stride_indices ~n ~offset ~stride] — every index in [\[0, n)]
    congruent to [offset] modulo [stride] ([stride <= 1] means all of
    them).  The gather pattern of stride-sampled tracing scans. *)
val stride_indices : n:int -> offset:int -> stride:int -> int array

(** Row-wise tuple concatenation (raises like [Value.concat_tuples] on
    non-tuple rows). *)
val hstack : t -> t -> t

val vstack : t list -> t
val empty : t

(** [n] copies of one value, as a batch. *)
val broadcast : int -> Value.t -> t

(** Rows whose value is [Null] ([None] = no nulls). *)
val null_mask : col -> Bitv.t option

(** {1 Value coding}

    Hash-consed integer codes: two values receive the same code iff
    they are structurally equal — the equivalence the row engine's
    generic [Hashtbl] grouping uses.  A coder's codes are consistent
    across every column it codes, so join keys from both sides can be
    compared as ints. *)
module Coder : sig
  type t

  val create : unit -> t

  (** Code of [Value.Null] (join key exclusion checks against this). *)
  val null_code : int

  val value_code : t -> Value.t -> int
  val col_codes : t -> col -> int array

  (** Combine per-column code arrays into one code per row
      (order-sensitive, like an unlabelled tuple). *)
  val mix : t -> int array list -> int array
end

val row_codes : Coder.t -> t -> int array

(** {1 Hashing}

    Identical to [Dataset.value_hash], vectorized — shuffles land rows
    on the same partitions as the row engine. *)

val value_hash : Value.t -> int
val hash_col : col -> int array

(** {1 Vectorized expression evaluation}

    Exact [Nrab.Expr] semantics: Null propagation in arithmetic,
    int/float coercing comparisons, Null comparisons false, short-
    circuit [And]/[Or] exception behavior (via a per-row fallback when
    a vectorized kernel would raise). *)

val eval_expr : t -> Nrab.Expr.t -> col
val eval_pred_mask : t -> Nrab.Expr.pred -> Bitv.t

(** {1 Size accounting} *)

val col_bytes : col -> int
val bytes : t -> int
val note_bytes_moved : int -> unit
val note_rows_scanned : int -> unit

(** {1 Row-engine escape hatch}

    Initialized from [WHYNOT_ROW_ENGINE]; settable in-process so tests
    and the bench harness can compare both paths. *)

val row_engine : unit -> bool
val set_row_engine : bool -> unit
