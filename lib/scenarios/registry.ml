(* All evaluation scenarios, keyed by name. *)

let all : Scenario.t list =
  Paper_scenarios.all @ Dblp_scenarios.all @ Twitter_scenarios.all
  @ Tpch_scenarios.all @ Crime_scenarios.all @ Forestry_scenarios.all

let find (name : string) : Scenario.t option =
  List.find_opt
    (fun (s : Scenario.t) ->
      String.equal (String.lowercase_ascii s.Scenario.name)
        (String.lowercase_ascii name))
    all
