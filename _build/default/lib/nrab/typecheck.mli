(** Static typing of NRAB queries, following the output types of
    Table 1.

    Besides validating queries, the type checker drives schema-alternative
    pruning (Section 5.2): an attribute substitution that yields an
    ill-typed query or changes the output schema is discarded. *)

open Nested

(** Table name → relation schema. *)
type env = (string * Vtype.t) list

type error = { op_id : int; message : string }

exception Type_error of error

(** Output type of a query.  Raises {!Type_error}. *)
val infer : env -> Query.t -> Vtype.t

(** Exception-free variant. *)
val infer_result : env -> Query.t -> (Vtype.t, error) result

val well_typed : env -> Query.t -> bool

(** Type of an expression over a tuple type's fields (exposed for query
    tooling).  Raises {!Type_error}. *)
val expr_type : int -> (string * Vtype.t) list -> Expr.t -> Vtype.t
