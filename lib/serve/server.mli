(** The why-not explanation service: a dataset {!Catalog}, an LRU
    explanation {!Cache} plus a traced-run handle cache — each behind a
    single-flight {!Inflight} table — and a {!Scheduler} fanning
    execution over the shared {!Engine.Pool}, speaking the
    line-delimited JSON {!Protocol} over stdin/stdout or a Unix/TCP
    socket.

    Request flow for [explain]: resolve the dataset in the catalog (a
    typed [not_found] if it was never registered), look the full
    ⟨query, dataset version, pattern, options⟩ key up in the explanation
    cache, and on a miss enter single-flight on that key — concurrent
    identical requests share one pipeline execution (the followers
    answer with ["cache": "coalesced"]), and the leader schedules the
    run, reusing the pattern-independent {!Whynot.Pipeline.handle} for
    the same ⟨query, dataset version, options⟩ when one is cached (the
    handle is likewise single-flighted).  Deadlines cancel runs
    cooperatively mid-execution — see {!Scheduler}.

    Robustness model of the socket transports: per-connection faults
    (EPIPE on write, bad bytes) kill only that connection and are
    counted in [serve.conn.faults]; transient accept faults
    (EINTR/ECONNABORTED) are retried ([serve.accept.retries]);
    connections beyond [max_connections] get a one-line overloaded error
    ([serve.conn.rejected]); oversized request lines are answered with
    [bad_request] instead of being buffered; a [shutdown] request drains
    the server gracefully (stop accepting → cut idle readers → finish
    in-flight requests → close). *)

type config = {
  cache_capacity : int;  (** explanation cache entries (≤ 0 disables) *)
  handle_capacity : int;  (** traced-run handles kept (≤ 0 disables) *)
  queue_capacity : int;  (** scheduler admission bound *)
  default_deadline_ms : float option;
  parallel : bool;  (** run schema alternatives on the pool *)
  task_retries : int;
      (** transient-fault retry budget per pipeline task (0 = fail
          fast); see {!Engine.Fault.retries} *)
  timings : bool;
      (** include wall-clock timings in responses; [false] makes
          responses fully deterministic (the smoke test diffs them) *)
  max_connections : int;
      (** socket transports: connections beyond this are answered with a
          one-line overloaded error and closed *)
  max_request_bytes : int;
      (** request lines longer than this answer [bad_request] instead of
          being buffered in full *)
  slow_ms : float option;
      (** requests at or above this latency emit a [serve.slow] Warn
          record with per-phase and cache/coalesce/retry attribution
          ([None] = off) *)
  slo_ms : float option;
      (** explain-latency SLO: each explain request increments
          [serve.slo.ok] or [serve.slo.breach] ([None] = off; error
          responses always count as breaches) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val config : t -> config

(** Handle one already-parsed request.  Never raises: pipeline and
    catalog failures come back as typed error responses. *)
val handle_request : t -> Protocol.request -> Protocol.response

(** Parse one request line, dispatch, serialize the response line (no
    trailing newline).  The second component is [true] when the request
    was [shutdown] and the session loop should end. *)
val handle_line : t -> string -> string * bool

(** Serve line-delimited requests until EOF, [shutdown], or
    {!request_stop}.  Responses are flushed after every line (the
    transcript is pipe-friendly:
    [printf '...' | whynot_server --stdio]). *)
val serve_channels : t -> in_channel -> out_channel -> unit

(** Listen on a Unix-domain socket (the path is unlinked first), one
    thread per connection.  Returns after a [shutdown] request (or
    {!request_stop}) has drained the open connections. *)
val serve_unix : t -> path:string -> unit

(** Listen on TCP [host:port] (default host 127.0.0.1; names are
    resolved via [getaddrinfo]).  One thread per connection; returns
    after a graceful shutdown like {!serve_unix}.  Raises [Failure] with
    a clear message when [host] does not resolve. *)
val serve_tcp : ?host:string -> t -> port:int -> unit

(** Resolve a numeric address or host name to an IPv4 address. *)
val resolve_host : string -> (Unix.inet_addr, string) result

(** Begin a graceful stop: the accept loop stops accepting, idle
    connection readers are cut (EOF), and the serve loops return once
    in-flight requests finish.  Idempotent; also triggered by a
    [shutdown] request on any connection. *)
val request_stop : t -> unit

(** True once {!request_stop} (or a [shutdown] request) happened. *)
val stopping : t -> bool

(** Open socket connections being served right now. *)
val active_connections : t -> int
