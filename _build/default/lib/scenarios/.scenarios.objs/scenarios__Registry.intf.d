lib/scenarios/registry.mli: Scenario
