(* Randomized end-to-end properties of the explanation pipeline:

   - on selection-only queries (where the bounded exact search is
     complete), every heuristic explanation is a genuine successful
     reparameterization;
   - explanations never blame parameter-free operators;
   - explanation op-sets are unique and the pipeline is deterministic;
   - RP without alternatives equals RPnoSA. *)

open Nested
open Nrab
module Int_set = Whynot.Msr.Int_set

(* --- random instances: σ-chains over a small int table --- *)

type inst = {
  phi : Whynot.Question.t;
  n_selects : int;
}

let build_instance (seed : int) : inst option =
  let g = Datagen.Prng.create ~seed in
  let rows =
    List.init 8 (fun i ->
        Value.Tuple
          [
            ("a", Value.Int (Datagen.Prng.int g 5));
            ("b", Value.Int (Datagen.Prng.int g 5));
            ("id", Value.Int i);
          ])
  in
  let schema =
    Vtype.relation [ ("a", Vtype.TInt); ("b", Vtype.TInt); ("id", Vtype.TInt) ]
  in
  let db = Relation.Db.of_list [ ("r", Relation.of_tuples ~schema rows) ] in
  let qg = Query.Gen.create () in
  let n_selects = 1 + Datagen.Prng.int g 2 in
  let random_pred () =
    let attr = Datagen.Prng.pick g [ "a"; "b" ] in
    let cmp = Datagen.Prng.pick g [ Expr.Eq; Expr.Le; Expr.Ge; Expr.Lt; Expr.Gt ] in
    Expr.Cmp (cmp, Expr.attr attr, Expr.int (Datagen.Prng.int g 5))
  in
  let query =
    List.fold_left
      (fun q _ -> Query.select qg (random_pred ()) q)
      (Query.table qg "r")
      (List.init n_selects Fun.id)
  in
  (* ask for a tuple of the table that the query filtered out *)
  let result = Eval.eval db query in
  let missing_rows =
    List.filter
      (fun t -> not (List.exists (Value.equal t) (Relation.tuples result)))
      rows
  in
  match missing_rows with
  | [] -> None
  | t :: _ ->
    let missing =
      Whynot.Nip.tup
        [ ("id", Whynot.Nip.v (Option.get (Value.field "id" t))) ]
    in
    let phi = Whynot.Question.make ~query ~db ~missing in
    if Whynot.Question.is_proper phi then Some { phi; n_selects } else None

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 5000)

let prop_sound_vs_exact =
  QCheck.Test.make ~name:"heuristic explanations are exact SRs (σ-chains)"
    ~count:60 arb_seed (fun seed ->
      match build_instance seed with
      | None -> true
      | Some { phi; n_selects } ->
        let result = Whynot.Pipeline.explain ~use_sas:false phi in
        let srs =
          Whynot.Exact.successful ~max_ops:n_selects ~depth:2 phi
        in
        let sr_sets = List.map (fun (s : Whynot.Exact.sr) -> s.Whynot.Exact.changed) srs in
        List.for_all
          (fun e ->
            let ops = Whynot.Explanation.ops e in
            (* depth-2 exact search covers conjunctions of ≤ 2 atoms *)
            Int_set.cardinal ops > n_selects
            || List.exists (fun s -> Int_set.equal s ops) sr_sets)
          result.Whynot.Pipeline.explanations)

let prop_never_blames_parameter_free =
  QCheck.Test.make ~name:"explanations never contain parameter-free operators"
    ~count:100 arb_seed (fun seed ->
      match build_instance seed with
      | None -> true
      | Some { phi; _ } ->
        let result = Whynot.Pipeline.explain ~use_sas:false phi in
        let q = phi.Whynot.Question.query in
        List.for_all
          (fun e ->
            List.for_all
              (fun id ->
                match Query.find_op q id with
                | Some op -> (
                  match op.Query.node with
                  | Query.Table _ | Query.Dedup | Query.Union | Query.Diff
                  | Query.Product ->
                    false
                  | _ -> true)
                | None -> false)
              (Whynot.Explanation.op_list e))
          result.Whynot.Pipeline.explanations)

let prop_unique_and_deterministic =
  QCheck.Test.make ~name:"op-sets unique; pipeline deterministic" ~count:100
    arb_seed (fun seed ->
      match build_instance seed with
      | None -> true
      | Some { phi; _ } ->
        let sets r = Whynot.Pipeline.explanation_sets r in
        let r1 = Whynot.Pipeline.explain ~use_sas:false phi in
        let r2 = Whynot.Pipeline.explain ~use_sas:false phi in
        let s1 = sets r1 in
        s1 = sets r2
        && List.length (List.sort_uniq compare s1) = List.length s1)

let prop_no_alternatives_equals_rpnosa =
  QCheck.Test.make ~name:"RP with no alternatives = RPnoSA" ~count:100 arb_seed
    (fun seed ->
      match build_instance seed with
      | None -> true
      | Some { phi; _ } ->
        Whynot.Pipeline.explanation_sets
          (Whynot.Pipeline.explain ~alternatives:[] phi)
        = Whynot.Pipeline.explanation_sets
            (Whynot.Pipeline.explain ~use_sas:false phi))

let prop_nonempty_for_selection_filtered =
  QCheck.Test.make ~name:"a selection-filtered tuple always gets an explanation"
    ~count:100 arb_seed (fun seed ->
      match build_instance seed with
      | None -> true
      | Some { phi; _ } ->
        (* the tuple exists in the input and only selections are between it
           and the output, so relaxing them must surface it *)
        Whynot.Pipeline.explanation_sets (Whynot.Pipeline.explain ~use_sas:false phi)
        <> [])

(* --- family 2: flatten + selections over nested data ---------------------

   Explanations here contain only selections and flattens, whose "full
   relaxation" (σ → true, inner flatten → outer flatten) is directly
   expressible; applying it to exactly the explanation's operators must
   surface the missing answer — the soundness of the relaxed tracing. *)

let build_nested_instance (seed : int) : Whynot.Question.t option =
  let g = Datagen.Prng.create ~seed in
  let schema =
    Vtype.relation
      [
        ("id", Vtype.TInt);
        ("kids", Vtype.relation [ ("k", Vtype.TInt) ]);
      ]
  in
  let rows =
    List.init 8 (fun i ->
        Value.Tuple
          [
            ("id", Value.Int i);
            ( "kids",
              Value.bag_of_list
                (List.init (Datagen.Prng.int g 3) (fun _ ->
                     Value.Tuple [ ("k", Value.Int (Datagen.Prng.int g 4)) ])) );
          ])
  in
  let db = Relation.Db.of_list [ ("r", Relation.of_tuples ~schema rows) ] in
  let qg = Query.Gen.create () in
  let pred () =
    Expr.Cmp
      ( Datagen.Prng.pick g [ Expr.Le; Expr.Ge; Expr.Eq ],
        Expr.attr "k",
        Expr.int (Datagen.Prng.int g 4) )
  in
  let query =
    Query.select qg (pred ())
      (Query.flatten_inner qg "kids" (Query.table qg "r"))
  in
  let result = Eval.eval db query in
  let surviving_ids =
    List.filter_map (fun t -> Value.field "id" t) (Relation.tuples result)
  in
  let missing_ids =
    List.filter (fun i -> not (List.mem (Value.Int i) surviving_ids)) (List.init 8 Fun.id)
  in
  match missing_ids with
  | [] -> None
  | i :: _ ->
    let missing = Whynot.Nip.tup [ ("id", Whynot.Nip.int i) ] in
    let phi = Whynot.Question.make ~query ~db ~missing in
    if Whynot.Question.is_proper phi then Some phi else None

let fully_relax (q : Query.t) (ops : Int_set.t) : Query.t =
  List.fold_left
    (fun q (op : Query.t) ->
      if not (Int_set.mem op.Query.id ops) then q
      else
        match op.Query.node with
        | Query.Select _ -> Query.replace_node q op.Query.id (Query.Select Expr.True)
        | Query.Flatten (Query.Flat_inner, a) ->
          Query.replace_node q op.Query.id (Query.Flatten (Query.Flat_outer, a))
        | _ -> q)
    q (Query.operators q)

let prop_relaxation_soundness =
  QCheck.Test.make
    ~name:"fully relaxing an explanation's operators surfaces the answer"
    ~count:80 arb_seed (fun seed ->
      match build_nested_instance seed with
      | None -> true
      | Some phi ->
        let result = Whynot.Pipeline.explain ~use_sas:false phi in
        List.for_all
          (fun e ->
            let q' = fully_relax phi.Whynot.Question.query (Whynot.Explanation.ops e) in
            Whynot.Question.is_successful phi q')
          result.Whynot.Pipeline.explanations)

let prop_nested_nonempty =
  QCheck.Test.make
    ~name:"flatten/selection-filtered tuples always get an explanation"
    ~count:80 arb_seed (fun seed ->
      match build_nested_instance seed with
      | None -> true
      | Some phi ->
        Whynot.Pipeline.explanation_sets (Whynot.Pipeline.explain ~use_sas:false phi)
        <> [])

(* --- observability: every explain call leaves a coherent span tree ------- *)

let prop_phase_spans =
  QCheck.Test.make
    ~name:"phase breakdown has the four phases, non-negative, ≤ total"
    ~count:60 arb_seed (fun seed ->
      match build_instance seed with
      | None -> true
      | Some { phi; _ } ->
        let r = Whynot.Pipeline.explain ~use_sas:false phi in
        let phases = Whynot.Pipeline.phase_durations_ms r in
        let total = Obs.Span.duration_ms r.Whynot.Pipeline.span in
        let sum = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 phases in
        List.map fst phases = Whynot.Pipeline.phases
        && List.for_all (fun (_, ms) -> ms >= 0.0) phases
        (* children cannot outlast the root (small epsilon for float µs) *)
        && sum <= total +. 0.001)

let prop_sa_span_count =
  QCheck.Test.make ~name:"one sa:* span per schema alternative" ~count:60
    arb_seed (fun seed ->
      match build_instance seed with
      | None -> true
      | Some { phi; _ } ->
        let r = Whynot.Pipeline.explain ~alternatives:[] phi in
        let sa_spans =
          Obs.Span.find_all
            (fun sp ->
              let n = Obs.Span.name sp in
              String.length n >= 3 && String.sub n 0 3 = "sa:")
            r.Whynot.Pipeline.span
        in
        List.length sa_spans = List.length r.Whynot.Pipeline.sas
        && Obs.Span.finished r.Whynot.Pipeline.span)

let () =
  Alcotest.run "pipeline-properties"
    [
      ( "random-sigma-chains",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sound_vs_exact;
            prop_never_blames_parameter_free;
            prop_unique_and_deterministic;
            prop_no_alternatives_equals_rpnosa;
            prop_nonempty_for_selection_filtered;
          ] );
      ( "random-flatten-chains",
        List.map QCheck_alcotest.to_alcotest
          [ prop_relaxation_soundness; prop_nested_nonempty ] );
      ( "observability",
        List.map QCheck_alcotest.to_alcotest
          [ prop_phase_spans; prop_sa_span_count ] );
    ]
