(** Deterministic splitmix64 PRNG.

    All generators take explicit seeds so that datasets — and therefore
    every experiment — are reproducible. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

(** Uniform int in [\[0, bound)].  Raises on non-positive bounds. *)
val int : t -> int -> int

(** Uniform int in [\[lo, hi\]] inclusive. *)
val range : t -> lo:int -> hi:int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Bernoulli with probability [p]. *)
val bool : t -> p:float -> bool

(** Uniform choice.  Raises on empty lists. *)
val pick : t -> 'a list -> 'a

(** Weighted choice.  Raises on non-positive total weight. *)
val pick_weighted : t -> ('a * int) list -> 'a

(** [n] samples with replacement. *)
val sample : t -> int -> 'a list -> 'a list
