(* Data-generator tests: determinism, well-typedness, scale behaviour, and
   the targeted structural properties each scenario family depends on. *)

open Nested

let table db name = Relation.Db.find_exn name db

let all_tables db = List.map fst (Relation.Db.tables db)

(* --- PRNG --- *)

let test_prng_deterministic () =
  let g1 = Datagen.Prng.create ~seed:99 in
  let g2 = Datagen.Prng.create ~seed:99 in
  let xs = List.init 50 (fun _ -> Datagen.Prng.int g1 1000) in
  let ys = List.init 50 (fun _ -> Datagen.Prng.int g2 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_prng_bounds () =
  let g = Datagen.Prng.create ~seed:5 in
  for _ = 1 to 500 do
    let x = Datagen.Prng.range g ~lo:3 ~hi:7 in
    Alcotest.(check bool) "in range" true (x >= 3 && x <= 7);
    let f = Datagen.Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_prng_pick_weighted () =
  let g = Datagen.Prng.create ~seed:5 in
  let n = 2000 in
  let hits =
    List.length
      (List.filter
         (fun _ -> Datagen.Prng.pick_weighted g [ ("a", 9); ("b", 1) ] = "b")
         (List.init n Fun.id))
  in
  (* roughly 10 %; allow wide slack *)
  Alcotest.(check bool) (Fmt.str "weighted pick plausible (%d/2000)" hits) true
    (hits > 100 && hits < 350)

(* --- well-typedness and determinism of all generators --- *)

let dbs () =
  [
    ("dblp", Datagen.Dblp.db ~scale:2 ());
    ("twitter", Datagen.Twitter.db ~scale:2 ());
    ("tpch", Datagen.Tpch.db ~scale:2 ());
    ("crime", Datagen.Crime.db ());
  ]

let test_all_well_typed () =
  List.iter
    (fun (name, db) ->
      List.iter
        (fun (tname, rel) ->
          Alcotest.(check bool)
            (Fmt.str "%s.%s well-typed" name tname)
            true (Relation.well_typed rel))
        (Relation.Db.tables db))
    (dbs ())

let test_generators_deterministic () =
  let snapshot db =
    String.concat "|"
      (List.map
         (fun (n, r) -> n ^ ":" ^ Value.to_string (Relation.data r))
         (Relation.Db.tables db))
  in
  Alcotest.(check string) "dblp deterministic"
    (snapshot (Datagen.Dblp.db ~scale:1 ()))
    (snapshot (Datagen.Dblp.db ~scale:1 ()));
  Alcotest.(check string) "tpch deterministic"
    (snapshot (Datagen.Tpch.db ~scale:1 ()))
    (snapshot (Datagen.Tpch.db ~scale:1 ()))

let test_scaling_grows () =
  let rows db = List.fold_left (fun a (_, r) -> a + Relation.cardinal r) 0 (Relation.Db.tables db) in
  Alcotest.(check bool) "dblp scale grows" true
    (rows (Datagen.Dblp.db ~scale:4 ()) > rows (Datagen.Dblp.db ~scale:1 ()));
  Alcotest.(check bool) "twitter scale grows" true
    (rows (Datagen.Twitter.db ~scale:4 ()) > rows (Datagen.Twitter.db ~scale:1 ()))

(* --- targeted structural properties --- *)

let test_dblp_bibtex_mostly_null () =
  let articles = table (Datagen.Dblp.db ~scale:4 ()) "articles" in
  let total = Relation.cardinal articles in
  let nulls =
    List.length
      (List.filter
         (fun t -> Value.field "bibtex" t = Some Value.Null)
         (Relation.tuples articles))
  in
  Alcotest.(check bool)
    (Fmt.str "bibtex null for most articles (%d/%d)" nulls total)
    true
    (float_of_int nulls /. float_of_int total > 0.9)

let test_dblp_d3_target_is_editor_only () =
  let entries = table (Datagen.Dblp.db ~scale:2 ()) "entries" in
  let target = Value.String Datagen.Dblp.d3_target_person in
  let as_author =
    List.filter (fun t -> Value.field "author" t = Some target) (Relation.tuples entries)
  in
  let as_editor =
    List.filter (fun t -> Value.field "editor" t = Some target) (Relation.tuples entries)
  in
  Alcotest.(check int) "never an author" 0 (List.length as_author);
  Alcotest.(check bool) "at least once an editor" true (as_editor <> [])

let test_twitter_target_media_quirk () =
  let tweets = table (Datagen.Twitter.db ~scale:1 ()) "tweets_media" in
  let target =
    List.find
      (fun t -> Value.field "text" t = Some (Value.String Datagen.Twitter.t1_target_text))
      (Relation.tuples tweets)
  in
  let media_of path =
    match Path.resolve_values target path with
    | [ bag ] -> Value.cardinal bag
    | _ -> Alcotest.fail "expected a single media bag"
  in
  Alcotest.(check int) "entities.media empty" 0 (media_of [ "entities"; "media" ]);
  Alcotest.(check bool) "extended_entities.media present" true
    (media_of [ "extended_entities"; "media" ] > 0)

let test_tpch_nested_flat_consistent () =
  let db = Datagen.Tpch.db ~scale:2 () in
  let nested = table db "nested_orders" and flat = table db "lineitem" in
  let nested_lineitems =
    List.fold_left
      (fun acc t ->
        acc + Value.cardinal (Option.get (Value.field "o_lineitems" t)))
      0 (Relation.tuples nested)
  in
  Alcotest.(check int) "flat lineitems = nested lineitems"
    nested_lineitems (Relation.cardinal flat);
  Alcotest.(check int) "orders = nested orders"
    (Relation.cardinal (table db "orders"))
    (Relation.cardinal nested)

let test_tpch_customers_without_orders () =
  let db = Datagen.Tpch.db ~scale:1 () in
  let customers = table db "customer" and orders = table db "orders" in
  let with_orders =
    List.filter_map (fun o -> Value.field "o_custkey" o) (Relation.tuples orders)
  in
  let without =
    List.filter
      (fun c ->
        not (List.mem (Option.get (Value.field "c_custkey" c)) with_orders))
      (Relation.tuples customers)
  in
  Alcotest.(check bool) "Q13 needs customers without orders" true (without <> [])

let test_crime_tables_present () =
  let db = Datagen.Crime.db () in
  Alcotest.(check (list string)) "tables"
    [ "crimes"; "persons"; "sightings"; "witnesses" ]
    (List.sort compare (all_tables db))

let () =
  Alcotest.run "datagen"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "weighted pick" `Quick test_prng_pick_weighted;
        ] );
      ( "generators",
        [
          Alcotest.test_case "well-typed" `Quick test_all_well_typed;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "scaling" `Quick test_scaling_grows;
        ] );
      ( "structural-properties",
        [
          Alcotest.test_case "dblp bibtex nulls" `Quick test_dblp_bibtex_mostly_null;
          Alcotest.test_case "dblp editor-only target" `Quick
            test_dblp_d3_target_is_editor_only;
          Alcotest.test_case "twitter media quirk" `Quick test_twitter_target_media_quirk;
          Alcotest.test_case "tpch nested/flat consistency" `Quick
            test_tpch_nested_flat_consistent;
          Alcotest.test_case "tpch orderless customers" `Quick
            test_tpch_customers_without_orders;
          Alcotest.test_case "crime tables" `Quick test_crime_tables_present;
        ] );
    ]
