(** Minimal s-expressions — the concrete syntax for queries, predicates,
    and why-not patterns (see {!Parser} and [Whynot.Nip_syntax]).
    Supports ["..."]-quoted atoms with escapes and [;]-to-end-of-line
    comments. *)

type t = Atom of string | List of t list

exception Parse_error of string

(** Like {!Parse_error} but carrying the byte offset of the offending
    form, for caret diagnostics.  Raised by {!of_string_spanned};
    {!of_string} degrades it to {!Parse_error} with the same message. *)
exception Parse_error_at of { offset : int; message : string }

(** Raise {!Parse_error} with a formatted message. *)
val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Raise {!Parse_error_at} at the given byte offset. *)
val fail_at : int -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Spanned parsing}

    Every node carries its half-open byte span [\[left, right)] in the
    source text, so downstream syntaxes (queries, NIPs) can anchor
    their own errors. *)

type spanned = { node : spanned_node; left : int; right : int }
and spanned_node = SAtom of string | SList of spanned list

val strip : spanned -> t

(** Raises {!Parse_error_at}. *)
val of_string_spanned : string -> spanned

(** Raises {!Parse_error}. *)
val of_string : string -> t
