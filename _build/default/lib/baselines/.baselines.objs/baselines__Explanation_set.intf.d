lib/baselines/explanation_set.mli: Format Int Nrab Query Set
