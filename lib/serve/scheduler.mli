(** Request scheduler — bounded admission in front of the shared
    {!Engine.Pool}.

    Admission is a counted slot: at most [queue_capacity] requests may be
    queued-or-running at once; a submission past that is rejected
    immediately with {!Overloaded} (backpressure — the caller gets a
    typed error to serialize, not a blocked connection).

    Deadlines are cooperative and enforced at two kinds of point:
    - the queued→running edge — a request still queued when its deadline
      passes is not started;
    - {e during} execution — each admitted job receives a
      {!Whynot.Cancel} token anchored at admission time; work that polls
      it (the pipeline does, at phase and schema-alternative boundaries)
      is cancelled mid-flight, and the resulting
      {!Whynot.Cancel.Cancelled} resolves to {!Deadline_exceeded} whose
      [phase] names the boundary that observed the lapse.

    A run whose task-retry budget runs out ({!Engine.Fault.Exhausted})
    resolves to {!Faulted} — a typed error carrying the failing task's
    attribution, not a crashed connection.

    Counters [serve.sched.{submitted,rejected,completed,expired,faulted}], the
    [serve.sched.depth] gauge, and the [serve.sched.wait_ms] histogram
    land in {!Obs.Metrics}.  Each counter event and its {!stats} mirror
    are applied in one critical section, so [stats] never under-reports
    a rejection or expiry that already produced its typed error. *)

type error =
  | Overloaded of { depth : int; capacity : int }
  | Deadline_exceeded of {
      waited_ms : float;  (** elapsed since admission when it expired *)
      deadline_ms : float;
      phase : string option;
          (** [None]: expired while still queued; [Some p]: cancelled
              during execution at boundary [p] *)
    }
  | Faulted of {
      task : string;  (** e.g. ["op:⋈#3/p2"] or ["sa:S2/tracing"] *)
      attempts : int;
      message : string;  (** the last underlying fault *)
    }

val error_to_string : error -> string

type t

(** [create ?pool ~queue_capacity ?default_deadline_ms ()] — capacity is
    clamped to ≥ 1; [default_deadline_ms] applies to submissions without
    an explicit deadline ([None] = no deadline).  [pool] defaults to the
    process-wide {!Engine.Pool.default}. *)
val create :
  ?pool:Engine.Pool.t ->
  queue_capacity:int ->
  ?default_deadline_ms:float ->
  unit ->
  t

type 'a ticket

(** Admit a job or reject it with {!Overloaded}.  The job receives the
    request's cancellation token (never-cancellable when the request has
    no deadline) — thread it into {!Whynot.Pipeline.prepare} /
    {!Whynot.Pipeline.explain_with} to make the run preemptible.
    [?budget] is an approximation budget ({!Whynot.Approx.t}) to
    re-anchor at admission: queue wait burns it exactly like it burns
    the deadline, so a long-queued budgeted request starts already
    degraded rather than blowing its latency target. *)
val submit :
  t ->
  ?deadline_ms:float ->
  ?budget:Whynot.Approx.t ->
  (Whynot.Cancel.t -> 'a) ->
  ('a ticket, error) result

(** Wait for the outcome (helping with pool work — see
    {!Engine.Pool.await}).  Re-raises the job's own exception if it
    raised (except {!Whynot.Cancel.Cancelled}, which resolves to
    [Error (Deadline_exceeded _)], and {!Engine.Fault.Exhausted}, which
    resolves to [Error (Faulted _)]). *)
val await : 'a ticket -> ('a, error) result

(** [submit] + [await]. *)
val run :
  t ->
  ?deadline_ms:float ->
  ?budget:Whynot.Approx.t ->
  (Whynot.Cancel.t -> 'a) ->
  ('a, error) result

(** Requests currently queued or running. *)
val depth : t -> int

val queue_capacity : t -> int

(** Per-scheduler counts (the global {!Obs.Metrics} counters aggregate
    across schedulers; these don't). *)
type stats = {
  submitted : int;
  rejected : int;
  completed : int;
  expired : int;
  faulted : int;
  depth : int;
  capacity : int;
}

val stats : t -> stats
