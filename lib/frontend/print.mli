(** Canonical SQL-ish rendering of core [Nrab.Query] values.

    [to_sql] is the inverse of the frontend pipeline up to operator ids:
    for every query that type-checks under [env],
    [parse (to_sql ~env q)] lowers to a query with the same structure as
    [q] (identical [Serve.Fingerprint], which ignores ids) — the
    round-trip property the fuzz suite checks.  Raises {!Unprintable}
    for the few core forms with no surface syntax (non-primitive
    constants, aggregates like [sum] without an input attribute). *)

exception Unprintable of string

val to_sql : env:Nrab.Typecheck.env -> Nrab.Query.t -> string
