open Nested
open Nrab

type syntax = [ `Sql | `Sexp ]

let detect (s : string) : syntax =
  let n = String.length s in
  let rec first i =
    if i >= n then None
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first (i + 1)
      | c -> Some c
  in
  match first 0 with Some ('(' | ';') -> `Sexp | _ -> `Sql

let env_of_db db =
  List.map (fun (n, r) -> (n, Relation.schema r)) (Relation.Db.tables db)

let fresh_gen = function Some g -> g | None -> Query.Gen.create ()

let sql ~env ?gen text =
  let gen = fresh_gen gen in
  match Parse.statement text with
  | Error d -> Error d
  | Ok ast -> Lower.statement ~env ~gen ast

let sexp ~env ?gen text =
  let gen = fresh_gen gen in
  try
    let q = Parser.query_of_sexp ~gen (Sexp.of_string_spanned text |> Sexp.strip) in
    match Typecheck.infer_result env q with
    | Ok ty -> Ok (q, ty)
    | Error e ->
        let where =
          match Query.find_op q e.Typecheck.op_id with
          | Some op -> Fmt.str "%s^%d" (Query.op_symbol op.Query.node) e.Typecheck.op_id
          | None -> Fmt.str "operator %d" e.Typecheck.op_id
        in
        Error
          (Diagnostic.makef `Type "ill-typed query at %s: %s" where
             e.Typecheck.message)
  with
  | Sexp.Parse_error_at { offset; message } ->
      Error
        (Diagnostic.make
           ~span:{ Diagnostic.left = offset; right = offset + 1 }
           `Parse message)
  | Sexp.Parse_error message -> Error (Diagnostic.make `Parse message)

let text ~env ?gen t =
  match detect t with `Sql -> sql ~env ?gen t | `Sexp -> sexp ~env ?gen t
