lib/core/pipeline.ml: Alternatives Backtrace Explanation Fmt List Msr Nested Nrab Question Relation Tracing Typecheck
