(** Minimal s-expressions — the concrete syntax for queries, predicates,
    and why-not patterns (see {!Parser} and [Whynot.Nip_syntax]).
    Supports ["..."]-quoted atoms with escapes and [;]-to-end-of-line
    comments. *)

type t = Atom of string | List of t list

exception Parse_error of string

(** Raise {!Parse_error} with a formatted message. *)
val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Raises {!Parse_error}. *)
val of_string : string -> t
