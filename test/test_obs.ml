(* The observability subsystem: span trees, the monotone clock, the
   metrics registry (including cross-domain counter safety), and the
   Chrome trace_event exporter.  The exporter test round-trips through
   [Nested.Json] and checks the invariants chrome://tracing relies on:
   "X" phase events with non-decreasing timestamps, and cardinality
   attributes on every engine operator span. *)

open Nested
open Nrab

(* --- spans ---------------------------------------------------------------- *)

(* Deterministic time: a source returning [base + !t] — [base] sits above
   the process-wide monotone high-water mark, so the clamp is inert. *)
let with_fake_clock f =
  let base = Obs.Clock.now_ns () + 1_000_000_000 in
  let t = ref 0 in
  Obs.Clock.set_source (fun () -> base + !t);
  Fun.protect ~finally:Obs.Clock.reset_source (fun () -> f t)

let test_span_nesting () =
  let root = Obs.Span.start "root" in
  let a = Obs.Span.start ~parent:root "a" in
  let a1 = Obs.Span.start ~parent:a "a1" in
  Obs.Span.finish a1;
  Obs.Span.finish a;
  let b = Obs.Span.start ~parent:root "b" in
  Obs.Span.finish b;
  Obs.Span.finish root;
  Alcotest.(check (list string))
    "children in start order" [ "a"; "b" ]
    (List.map Obs.Span.name (Obs.Span.children root));
  Alcotest.(check (list string))
    "preorder traversal" [ "root"; "a"; "a1"; "b" ]
    (let acc = ref [] in
     Obs.Span.iter (fun s -> acc := Obs.Span.name s :: !acc) root;
     List.rev !acc);
  Alcotest.(check (option int))
    "parent link" (Some (Obs.Span.id root)) (Obs.Span.parent_id a);
  Alcotest.(check (option int)) "root has no parent" None (Obs.Span.parent_id root);
  Alcotest.(check int) "count_named" 1 (Obs.Span.count_named "a1" root);
  Alcotest.(check bool) "finished" true (Obs.Span.finished root)

let test_span_durations () =
  with_fake_clock @@ fun t ->
  let root = Obs.Span.start "root" in
  t := 1000;
  let child = Obs.Span.start ~parent:root "child" in
  t := 4000;
  Obs.Span.finish child;
  t := 5000;
  Obs.Span.finish root;
  Alcotest.(check int) "child duration" 3000 (Obs.Span.duration_ns child);
  Alcotest.(check int) "root duration" 5000 (Obs.Span.duration_ns root);
  (* finish is idempotent: the first call wins *)
  t := 9000;
  Obs.Span.finish child;
  Alcotest.(check int) "finish idempotent" 3000 (Obs.Span.duration_ns child)

let test_span_with_exception () =
  let root = Obs.Span.start "root" in
  (try
     Obs.Span.with_ ~parent:root "boom" (fun sp ->
         Obs.Span.set_int sp "n" 1;
         failwith "boom")
   with Failure _ -> ());
  Obs.Span.finish root;
  match Obs.Span.children root with
  | [ sp ] ->
    Alcotest.(check bool) "finished despite raise" true (Obs.Span.finished sp);
    Alcotest.(check (option int)) "attr survives" (Some 1)
      (match Obs.Span.attr sp "n" with
      | Some (Obs.Span.Int n) -> Some n
      | _ -> None)
  | _ -> Alcotest.fail "expected exactly one child"

let test_clock_monotone () =
  with_fake_clock @@ fun t ->
  t := 5000;
  let t1 = Obs.Clock.now_ns () in
  t := 2000 (* source goes backwards; the clamp must hold the line *);
  let t2 = Obs.Clock.now_ns () in
  t := 7000;
  let t3 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "clamped" true (t2 >= t1);
  Alcotest.(check bool) "resumes" true (t3 > t2)

(* --- metrics -------------------------------------------------------------- *)

let test_histogram_percentiles () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~registry:reg "t" in
  for i = 1 to 1000 do
    Obs.Metrics.Histogram.observe h (float_of_int i)
  done;
  let s = Obs.Metrics.Histogram.summary h in
  Alcotest.(check int) "count" 1000 s.Obs.Metrics.Histogram.count;
  Alcotest.(check (float 0.5)) "sum" 500500.0 s.Obs.Metrics.Histogram.sum;
  Alcotest.(check (float 0.0)) "min" 1.0 s.Obs.Metrics.Histogram.min;
  Alcotest.(check (float 0.0)) "max" 1000.0 s.Obs.Metrics.Histogram.max;
  (* log-scale buckets at ratio 2^(1/16): ≤ ~4.4% relative error *)
  Alcotest.(check bool) "p50 within 10%" true
    (Float.abs (s.Obs.Metrics.Histogram.p50 -. 500.0) < 50.0);
  Alcotest.(check bool) "p95 within 10%" true
    (Float.abs (s.Obs.Metrics.Histogram.p95 -. 950.0) < 95.0)

let test_histogram_clamps () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~registry:reg "one" in
  Obs.Metrics.Histogram.observe h 42.0;
  let s = Obs.Metrics.Histogram.summary h in
  Alcotest.(check (float 0.0)) "p50 of singleton" 42.0 s.Obs.Metrics.Histogram.p50;
  Alcotest.(check (float 0.0)) "p95 of singleton" 42.0 s.Obs.Metrics.Histogram.p95

let test_registry () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "c" in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.Counter.value c);
  Alcotest.(check bool) "find-or-create returns same metric" true
    (Obs.Metrics.Counter.value (Obs.Metrics.counter ~registry:reg "c") = 5);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Obs.Metrics: c already registered with another kind (wanted gauge)")
    (fun () -> ignore (Obs.Metrics.gauge ~registry:reg "c"));
  Obs.Metrics.reset reg;
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.Counter.value c);
  Alcotest.(check int) "registration kept" 1
    (List.length (Obs.Metrics.metrics reg))

let test_concurrent_counters () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "hits" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "4 domains x 10k increments" 40_000
    (Obs.Metrics.Counter.value c)

let test_snapshot_and_reset_all () =
  let reg = Obs.Metrics.create () in
  let c = Obs.Metrics.counter ~registry:reg "b.counter" in
  let g = Obs.Metrics.gauge ~registry:reg "a.gauge" in
  let h = Obs.Metrics.histogram ~registry:reg "c.hist" in
  Obs.Metrics.Counter.incr ~by:7 c;
  Obs.Metrics.Gauge.set g 2.5;
  Obs.Metrics.Histogram.observe h 5.0;
  (match Obs.Metrics.snapshot reg with
  | [ ("a.gauge", `Gauge 2.5); ("b.counter", `Counter 7); ("c.hist", `Histogram s) ]
    ->
    Alcotest.(check int) "histogram count in snapshot" 1
      s.Obs.Metrics.Histogram.count
  | _ -> Alcotest.fail "snapshot shape (sorted by name)");
  Obs.Metrics.reset_all reg;
  (match Obs.Metrics.snapshot reg with
  | [ ("a.gauge", `Gauge 0.0); ("b.counter", `Counter 0); ("c.hist", `Histogram s) ]
    ->
    Alcotest.(check int) "histogram zeroed" 0 s.Obs.Metrics.Histogram.count
  | _ -> Alcotest.fail "reset_all zeroes everything, keeping registrations");
  (* reset must clear the observed min/max, not just the counts: the
     percentile clamp would otherwise use stale bounds *)
  Obs.Metrics.Histogram.observe h 2.0;
  let s = Obs.Metrics.Histogram.summary h in
  Alcotest.(check (float 0.0)) "post-reset min" 2.0 s.Obs.Metrics.Histogram.min;
  Alcotest.(check (float 0.0)) "post-reset max" 2.0 s.Obs.Metrics.Histogram.max

let test_cumulative_buckets () =
  let reg = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram ~registry:reg "cb" in
  List.iter (Obs.Metrics.Histogram.observe h) [ 0.2; 0.9; 100.0; 3000.0 ];
  let buckets = Obs.Metrics.Histogram.cumulative_buckets h in
  Alcotest.(check int) "one entry per non-empty bucket" 3 (List.length buckets);
  let rec monotone = function
    | (le1, c1) :: ((le2, c2) :: _ as rest) ->
      le1 < le2 && c1 <= c2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "le and counts increase" true (monotone buckets);
  (match buckets with
  | (le0, 2) :: _ -> Alcotest.(check (float 0.0)) "sub-1.0 bucket" 1.0 le0
  | _ -> Alcotest.fail "first bucket holds both small observations");
  Alcotest.(check int) "last cumulative count = total" 4
    (snd (List.nth buckets 2))

(* --- structured logging ---------------------------------------------------- *)

(* The global log level/sink/ring state is restored after each test. *)
let with_log_state f =
  let saved = Obs.Log.level () in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.remove_sink "test.mem";
      Obs.Log.set_ring_capacity 512;
      Obs.Log.set_level saved)
    f

let test_log_gating () =
  with_log_state @@ fun () ->
  Obs.Log.set_level (Some Obs.Log.Info);
  let evaluated = ref false in
  Obs.Log.debug "gated" (fun () ->
      evaluated := true;
      []);
  Alcotest.(check bool) "disabled level never evaluates its thunk" false
    !evaluated;
  Alcotest.(check bool) "enabled check" true (Obs.Log.enabled Obs.Log.Warn);
  Alcotest.(check bool) "disabled check" false (Obs.Log.enabled Obs.Log.Debug);
  Obs.Log.set_level None;
  Obs.Log.err "gated" (fun () ->
      evaluated := true;
      []);
  Alcotest.(check bool) "level None disables even errors" false !evaluated;
  Obs.Log.set_level (Some Obs.Log.Debug);
  Obs.Log.debug "open" (fun () ->
      evaluated := true;
      []);
  Alcotest.(check bool) "enabled level evaluates" true !evaluated

let test_log_ring_wraparound () =
  with_log_state @@ fun () ->
  Obs.Log.set_level (Some Obs.Log.Info);
  Obs.Log.set_ring_capacity 4;
  for i = 1 to 6 do
    Obs.Log.info (Fmt.str "e%d" i) (fun () -> [ Obs.Log.int "i" i ])
  done;
  Alcotest.(check (list string))
    "ring keeps the last N, oldest first"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map (fun r -> r.Obs.Log.event) (Obs.Log.recent ()));
  Obs.Log.clear_ring ();
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Obs.Log.recent ()))

let test_log_sinks () =
  with_log_state @@ fun () ->
  Obs.Log.set_level (Some Obs.Log.Info);
  let sink, seen = Obs.Log.memory_sink () in
  (* a sink that raises must not take the record away from the others *)
  Obs.Log.add_sink "test.mem" (fun _ -> failwith "bad sink");
  Obs.Log.add_sink "test.mem" sink (* same name: replaces *);
  Obs.Log.add_sink "test.boom" (fun _ -> failwith "bad sink");
  Obs.Log.info "fanout" (fun () -> [ Obs.Log.str "k" "v" ]);
  Obs.Log.remove_sink "test.boom";
  (match seen () with
  | [ r ] ->
    Alcotest.(check string) "event" "fanout" r.Obs.Log.event;
    Alcotest.(check bool) "field" true
      (List.assoc_opt "k" r.Obs.Log.fields = Some (Obs.Span.String "v"))
  | rs -> Alcotest.fail (Fmt.str "expected one record, saw %d" (List.length rs)));
  Obs.Log.remove_sink "test.mem";
  Obs.Log.info "after" (fun () -> []);
  Alcotest.(check int) "removed sink sees nothing more" 1
    (List.length (seen ()))

(* --- trace context ---------------------------------------------------------- *)

let test_trace_context_scoping () =
  Alcotest.(check (option string)) "no ambient context" None
    (Obs.Trace_context.current ());
  let inner =
    Obs.Trace_context.with_id "outer" (fun () ->
        let a = Obs.Trace_context.current () in
        let b =
          Obs.Trace_context.with_id "inner" (fun () ->
              Obs.Trace_context.current ())
        in
        let c =
          Obs.Trace_context.with_opt None (fun () ->
              Obs.Trace_context.current ())
        in
        (a, b, c, Obs.Trace_context.current ()))
  in
  (match inner with
  | Some "outer", Some "inner", None, Some "outer" -> ()
  | _ -> Alcotest.fail "nesting must restore the outer context");
  (* restored even when the scope raises *)
  (try
     Obs.Trace_context.with_id "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (option string)) "restored after raise" None
    (Obs.Trace_context.current ());
  (* threads do not inherit each other's context *)
  let seen_in_thread = ref (Some "sentinel") in
  Obs.Trace_context.with_id "main-thread" (fun () ->
      let t =
        Thread.create (fun () -> seen_in_thread := Obs.Trace_context.current ()) ()
      in
      Thread.join t);
  Alcotest.(check (option string)) "fresh thread starts blank" None
    !seen_in_thread

let test_trace_ids () =
  let a = Obs.Trace_context.make () and b = Obs.Trace_context.make () in
  Alcotest.(check bool) "generated ids differ" true (a <> b);
  Alcotest.(check int) "16 hex chars" 16 (String.length a);
  List.iter
    (fun (ok, id) ->
      Alcotest.(check bool) (Fmt.str "is_valid %S" id) ok
        (Obs.Trace_context.is_valid id))
    [
      (true, a);
      (true, "t-1.a:B_x");
      (true, String.make 64 'x');
      (false, "");
      (false, String.make 65 'x');
      (false, "has space");
      (false, "newline\n");
      (false, "quote\"");
    ]

let test_span_trace_autotag () =
  let sp =
    Obs.Trace_context.with_id "tag-me" (fun () ->
        let sp = Obs.Span.start "tagged" in
        Obs.Span.finish sp;
        sp)
  in
  Alcotest.(check bool) "span carries the ambient id" true
    (Obs.Span.attr sp "trace_id" = Some (Obs.Span.String "tag-me"));
  let bare = Obs.Span.start "bare" in
  Obs.Span.finish bare;
  Alcotest.(check (option string)) "no context, no tag" None
    (match Obs.Span.attr bare "trace_id" with
    | Some (Obs.Span.String s) -> Some s
    | _ -> None)

(* --- Chrome trace_event export -------------------------------------------- *)

let small_db () =
  let schema = Vtype.relation [ ("a", Vtype.TInt); ("b", Vtype.TString) ] in
  let row a b =
    Value.Tuple [ ("a", Value.Int a); ("b", Value.String b) ]
  in
  Relation.Db.of_list
    [
      ( "r",
        Relation.of_tuples ~schema
          [ row 1 "x"; row 2 "y"; row 2 "y"; row 3 "z"; row 4 "x" ] );
    ]

let member k obj =
  match obj with
  | Json.J_object fields -> List.assoc_opt k fields
  | _ -> None

let expect_string = function Some (Json.J_string s) -> s | _ -> Alcotest.fail "expected string"
let expect_float = function
  | Some (Json.J_float f) -> f
  | Some (Json.J_int i) -> float_of_int i
  | _ -> Alcotest.fail "expected number"

let test_trace_event_json () =
  (* dedup forces a shuffle stage, so the trace has a "shuffle" span and
     non-zero shuffled_rows on the op span *)
  let g = Query.Gen.create () in
  let q =
    Query.dedup g
      (Query.select g
         (Expr.Cmp (Expr.Ge, Expr.attr "a", Expr.int 2))
         (Query.table g "r"))
  in
  let root = Obs.Span.start "test" in
  let _, _ = Engine.Exec.run ~parent:root (small_db ()) q in
  Obs.Span.finish root;
  let json = Json.of_string (Obs.Trace_event.to_string [ root ]) in
  let events =
    match member "traceEvents" json with
    | Some (Json.J_array evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 3);
  (* every event is a complete ("X") event with the required fields *)
  List.iter
    (fun ev ->
      Alcotest.(check string) "phase" "X" (expect_string (member "ph" ev));
      ignore (expect_string (member "name" ev));
      ignore (expect_float (member "ts" ev));
      ignore (expect_float (member "dur" ev));
      ignore (expect_float (member "pid" ev));
      ignore (expect_float (member "tid" ev)))
    events;
  (* timestamps non-decreasing in emission order *)
  let ts = List.map (fun ev -> expect_float (member "ts" ev)) events in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone timestamps" true (monotone ts);
  (* operator spans carry the Spark-UI cardinalities as args *)
  let op_events =
    List.filter
      (fun ev ->
        String.length (expect_string (member "name" ev)) >= 3
        && String.sub (expect_string (member "name" ev)) 0 3 = "op:")
      events
  in
  Alcotest.(check int) "one event per operator" 3 (List.length op_events);
  List.iter
    (fun ev ->
      let args = match member "args" ev with Some a -> a | None -> Alcotest.fail "no args" in
      List.iter
        (fun k ->
          match member k args with
          | Some (Json.J_int n) ->
            Alcotest.(check bool) (k ^ " non-negative") true (n >= 0)
          | _ -> Alcotest.fail ("op span missing arg " ^ k))
        [ "input_rows"; "output_rows"; "shuffled_rows" ])
    op_events;
  (* the dedup op (symbol δ) appears, and its shuffle stage left a span *)
  Alcotest.(check bool) "dedup op span present" true
    (List.exists
       (fun ev ->
         let n = expect_string (member "name" ev) in
         String.length n >= 5 && String.sub n 0 5 = "op:\xce\xb4")
       op_events);
  Alcotest.(check bool) "a shuffle span was recorded" true
    (Obs.Span.count_named "shuffle" root >= 1)

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "deterministic durations" `Quick test_span_durations;
          Alcotest.test_case "with_ finishes on raise" `Quick test_span_with_exception;
          Alcotest.test_case "clock is monotone" `Quick test_clock_monotone;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "histogram clamps to observed" `Quick test_histogram_clamps;
          Alcotest.test_case "registry find-or-create" `Quick test_registry;
          Alcotest.test_case "concurrent counters" `Quick test_concurrent_counters;
          Alcotest.test_case "snapshot and reset_all" `Quick test_snapshot_and_reset_all;
          Alcotest.test_case "cumulative buckets" `Quick test_cumulative_buckets;
        ] );
      ( "log",
        [
          Alcotest.test_case "level gating" `Quick test_log_gating;
          Alcotest.test_case "ring wraparound" `Quick test_log_ring_wraparound;
          Alcotest.test_case "sinks" `Quick test_log_sinks;
        ] );
      ( "trace_context",
        [
          Alcotest.test_case "scoping and restore" `Quick test_trace_context_scoping;
          Alcotest.test_case "id generation and validation" `Quick test_trace_ids;
          Alcotest.test_case "span auto-tag" `Quick test_span_trace_autotag;
        ] );
      ( "trace_event",
        [ Alcotest.test_case "chrome trace JSON" `Quick test_trace_event_json ] );
    ]
