examples/tpch_audit.ml: Baselines Engine Fmt List Nested Nrab Option Scenarios String Whynot
