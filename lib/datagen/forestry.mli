(** Synthetic forestry data for scenarios F1/F2: countries and their
    forest-cover time series, with two parallel nested series per
    country — [years] (reported figures) and [estimates] (modelled
    figures).

    The built-in error mirrors the running-example pattern at the schema
    level: for the {e South Asia} region the reported recent-year cover
    stays below every selection threshold while the modelled estimates
    clear it, so a query flattening [years] loses the region and the
    [estimates] schema alternative brings it back. *)

open Nested

val countries_schema : Vtype.t
val forest_schema : Vtype.t

(** The region whose recent reported figures are deliberately low. *)
val target_region : string

(** Tables: [countries], [forest].  [scale] is the number of countries
    per region. *)
val db : ?seed:int -> scale:int -> unit -> Relation.Db.t
