# The single committed verify recipe: builds every executable (CLI,
# server, bench, examples) and runs the full test suite, then a
# smallest-scale pass over every bench family (the harness itself is
# code that can rot).  Run before every merge.
.PHONY: verify build test fuzz bench-smoke bench-columnar bench-chaos bench-obs bench-approx bench-recover

verify:
	dune build @all && dune runtest && $(MAKE) bench-smoke

build:
	dune build @all

test:
	dune runtest

# High-iteration frontend fuzz: random well-typed queries are printed to
# SQL and to s-expressions, re-parsed, and checked fingerprint-identical.
# The default runtest pass already runs 1000 iterations of each property;
# this gated target cranks it up (override with FUZZ=N).
FUZZ ?= 20000
fuzz:
	FRONTEND_FUZZ_COUNT=$(FUZZ) dune exec test/test_frontend.exe -- test fuzz

# Every bench family at the smallest scale — a CI guard, not a measurement.
bench-smoke:
	dune exec bench/main.exe -- smoke

# Row vs columnar engine A/B on the fig8 scenarios at scale 32; writes
# the committed acceptance baseline for the columnar-engine PR.
bench-columnar:
	dune exec bench/main.exe -- columnar -json BENCH_PR7.json

# Budget-ladder acceptance run (exact vs sampled vs top-k vs combined
# at scales 32-256); writes the committed baseline for the approx PR.
bench-approx:
	dune exec bench/main.exe -- approx -json BENCH_PR9.json

# Stage-recovery acceptance run: checkpoint restore vs full lineage
# recompute, plus pipeline cost under a spill watermark; writes the
# committed baseline for the recovery PR.  (The bench-smoke rung above
# already runs this family at the smallest scale, which doubles as the
# spill smoke: explanations under a starvation watermark must match.)
bench-recover:
	dune exec bench/main.exe -- recover -json BENCH_PR10.json

# Gated chaos measurement (arms process-global fault sites, so it never
# runs as part of the default bench sweep).
bench-chaos:
	dune exec bench/main.exe -- chaos -json BENCH_PR5.json

# Gated telemetry-overhead measurement (flips the process-global log
# level and sink set, so it never runs as part of the default sweep).
bench-obs:
	dune exec bench/main.exe -- obs -json BENCH_PR6.json
