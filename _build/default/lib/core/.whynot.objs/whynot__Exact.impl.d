lib/core/exact.ml: Eval Explanation List Nested Nrab Opset Query Question Relation Reparam Ted Typecheck Value Vtype
