(** Reparameterizations (Definitions 6–8) and the admissible parameter
    changes of Table 2.

    A reparameterization replaces operator parameters while preserving the
    query structure: the operator constructor family stays fixed (up to
    admissible kind switches — join-type changes and inner↔outer
    flatten), no operator is added or removed, and identifiers are
    retained. *)

open Nrab

module Int_set = Opset.Int_set

(** Shape-level admissibility of replacing one node by another, per
    Table 2.  Whether the new parameters type-check is decided against
    the query by the caller. *)
val admissible_change : Query.node -> Query.node -> bool

(** A reparameterization: node replacements keyed by operator id. *)
type t = (int * Query.node) list

val apply : Query.t -> t -> Query.t
val is_valid : Query.t -> t -> bool

(** Δ(Q, Q'): identifiers of operators whose parameters differ
    (Definition 9). *)
val delta : Query.t -> Query.t -> Int_set.t

(** {1 Candidate enumeration}

    One-step admissible changes of an operator's node, within the PTIME
    restrictions of Theorem 1: the structure of selection conditions is
    preserved (attribute swaps, comparison-operator switches, constant
    replacements), aggregation functions are the standard SQL ones.
    [attr_pool a] lists the same-typed attributes that may replace [a];
    [const_pool attr v] supplies replacement constants (from the active
    domain of [attr]). *)

val comparison_ops : Expr.cmp list

val pred_variants :
  attr_pool:(string -> string list) ->
  const_pool:(string option -> Nested.Value.t -> Nested.Value.t list) ->
  Expr.pred ->
  Expr.pred list

val expr_attr_variants :
  attr_pool:(string -> string list) -> Expr.t -> Expr.t list

val node_variants :
  attr_pool:(string -> string list) ->
  const_pool:(string option -> Nested.Value.t -> Nested.Value.t list) ->
  Query.node ->
  Query.node list
