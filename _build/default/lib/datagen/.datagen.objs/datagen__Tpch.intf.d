lib/datagen/tpch.mli: Nested Relation Vtype
