lib/engine/dataset.ml: Array Char Domain Int64 List Nested Relation String Value
