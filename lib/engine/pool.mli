(** Fixed-size domain pool with a work queue and futures.

    Domains are expensive to spawn (each owns a minor heap), so the pool
    spawns its workers once and reuses them across submissions — the
    engine's stand-in for a DISC system's long-lived executors.

    {!await} {e helps}: a domain blocked on a pending future pops and
    runs queued jobs itself, so nested submissions (a pooled job
    submitting to its own pool) cannot deadlock, and a size-1 pool on a
    single-core machine still makes progress.

    Supervision: a shut-down or dead pool degrades gracefully — see
    {!submit} — and {!shutdown} detects worker-domain deaths at join
    ([engine.pool.worker_deaths]) and recomputes any jobs the death
    stranded in the queue inline, so no future is left forever
    pending. *)

type t

type 'a future

(** Spawn a pool of [size] worker domains (default
    [Domain.recommended_domain_count () - 1], at least 1). *)
val create : ?size:int -> unit -> t

val size : t -> int

(** Enqueue a job.  After {!shutdown} — or once every worker domain has
    died — the job instead runs {e inline} on the calling domain
    (counted in [engine.pool.inline_fallback]) and the returned future
    is already resolved: late submissions during at_exit-ordered
    teardown degrade to sequential execution, they never raise.

    [?abort] is polled once when the job is dequeued (the queued→running
    edge): returning [Some e] fails the future with [e] without running
    the job — how cancelled work queued behind slow jobs is reclaimed
    without preemption.  An abort hook that raises fails the future with
    that exception (it cannot kill a worker). *)
val submit : ?abort:(unit -> exn option) -> t -> (unit -> 'a) -> 'a future

(** Block until the future resolves, helping with queued work in the
    meantime.  Re-raises the job's exception if it failed. *)
val await : 'a future -> 'a

(** Apply [f] to every element concurrently; results come back in input
    order (deterministic), and the leftmost exception propagates.

    With [?policy], each element is a retryable task: a run of [f] that
    raises {!Fault.Transient} is recomputed from its input (up to the
    policy's attempt budget) before {!Fault.Exhausted} propagates; the
    task is attributed as ["<label>/p<i>"].  [on_retry] fires before
    each re-attempt with the element index. *)
val map_array :
  ?policy:Fault.policy ->
  ?label:string ->
  ?on_retry:(index:int -> attempt:int -> exn -> unit) ->
  t ->
  ('a -> 'b) ->
  'a array ->
  'b array

val map_list :
  ?policy:Fault.policy ->
  ?label:string ->
  ?on_retry:(index:int -> attempt:int -> exn -> unit) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** Drain-free graceful teardown: workers finish the jobs already
    queued, then exit; [shutdown] joins them all (counting workers that
    died, then recomputing any jobs they stranded).  Idempotent. *)
val shutdown : t -> unit

(** The process-wide shared pool, created on first use. *)
val default : unit -> t

(** {!shutdown} the default pool iff it was ever created (never spawns
    one just to kill it).  Safe to register with [at_exit]. *)
val shutdown_default : unit -> unit
