lib/engine/stats.ml: Fmt List
