(* The paper's running example (Figure 1, Examples 9/10/19) as a
   scenario, so the CLI and the observability tooling can exercise it by
   name: a person table with two nested address relations, the query
   N^R(π_{name,city}(σ_{year≥2019}(F^I_{address2}(person)))), and the
   question "why is NY missing?".  Expected explanations: {σ} and
   {Fᴵ, σ} (via the address1 schema alternative). *)

open Nested
open Nrab

let address_schema =
  Vtype.TBag (Vtype.TTuple [ ("city", Vtype.TString); ("year", Vtype.TInt) ])

let person_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("address1", address_schema);
      ("address2", address_schema);
    ]

let addr city year =
  Value.Tuple [ ("city", Value.String city); ("year", Value.Int year) ]

let person name a1 a2 =
  Value.Tuple
    [
      ("name", Value.String name);
      ("address1", Value.bag_of_list a1);
      ("address2", Value.bag_of_list a2);
    ]

let db =
  let peter =
    person "Peter"
      [ addr "NY" 2010; addr "LA" 2019; addr "LV" 2017 ]
      [ addr "LA" 2010; addr "SF" 2018 ]
  in
  let sue =
    person "Sue"
      [ addr "LA" 2019; addr "NY" 2018 ]
      [ addr "LA" 2019; addr "NY" 2018 ]
  in
  Relation.Db.of_list
    [ ("person", Relation.of_tuples ~schema:person_schema [ peter; sue ]) ]

(* The data is the paper's figure verbatim — scale has nothing to vary. *)
let make ~scale:_ ?seed:_ () : Scenario.instance =
  let g = Query.Gen.create () in
  let year_ge_2019 = Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019) in
  let query =
    Query.nest_rel g [ "name" ] ~into:"nList"
      (Query.project_attrs g [ "name"; "city" ]
         (Query.select g year_ge_2019
            (Query.flatten_inner g "address2" (Query.table g "person"))))
  in
  let missing =
    Whynot.Nip.tup
      [ ("city", Whynot.Nip.str "NY"); ("nList", Whynot.Nip.some_element) ]
  in
  let question = Whynot.Question.make ~query ~db ~missing in
  let ids = Scenario.ids_by_symbol query in
  let sigma = List.assoc "σ" ids and flat = List.assoc "Fᴵ" ids in
  {
    Scenario.question;
    alternatives = [ ("person", [ [ "address2" ]; [ "address1" ] ]) ];
    gold = Some [ [ sigma ]; [ flat; sigma ] ];
  }

let all : Scenario.t list =
  [
    {
      Scenario.name = "RE";
      family = Scenario.Paper;
      description = "running example (Figure 1): why is NY missing?";
      operators = "Fᴵ,σ,π,Nᴿ";
      make;
    };
  ]
