(** Line-delimited JSON wire protocol of the why-not service.

    One request object per line in, one response object per line out.
    Queries and why-not patterns travel in their existing surface
    syntaxes (s-expressions, see {!Nrab.Parser} and
    {!Whynot.Nip_syntax}) embedded as JSON strings; everything else is
    plain JSON via {!Nested.Json}.

    Requests ([op] field selects the operation):
    - [{"op":"register","dataset":"D1","scale":2,"seed":7,"refresh":false}]
    - [{"op":"explain","dataset":"D1","scale":2,"query":"(...)",
       "whynot":"(...)","use_sas":true,"max_sas":16,"revalidate":true,
       "deadline_ms":500}] — [query]/[whynot] default to the scenario's
      own question
    - [{"op":"stats"}]
    - [{"op":"telemetry","format":"prometheus"}] (or ["json"]) — metrics
      export
    - [{"op":"evict","dataset":"D1","scale":2}] /
      [{"op":"evict","cache":true}]
    - [{"op":"shutdown"}]

    Any request may carry an optional ["trace_id"] (1–64 chars of
    [A-Za-z0-9._:-]): the server adopts it as the request's trace
    context (all spans and log records it produces carry it) and echoes
    it as a trailing ["trace_id"] field on the response.  Requests
    without one get a server-generated id — used in logs, {e not}
    echoed, so id-less transcripts stay deterministic.

    Every response carries ["ok"] and ["type"]; failures are
    [{"ok":false,"type":"error","code":...,"message":...}] with code one
    of [bad_request], [not_found], [overloaded], [deadline_exceeded],
    [internal]. *)

open Nested
open Nrab

type explain_options = {
  use_sas : bool;
  max_sas : int;
  revalidate : bool;
  parallel : bool;  (** affects scheduling only, never the result *)
}

val default_options : explain_options

type request =
  | Register of { dataset : string; scale : int; seed : int; refresh : bool }
  | Explain of {
      dataset : string;
      scale : int;
      seed : int;
      query : Query.t option;
      pattern : Whynot.Nip.t option;
      options : explain_options;
      deadline_ms : float option;
    }
  | Stats
  | Telemetry of { format : [ `Prometheus | `Json ] }
  | Evict of {
      dataset : string option;  (** [None] with [cache] clears caches only *)
      scale : int;
      seed : int;
      cache : bool;  (** also clear the explanation + handle caches *)
    }
  | Shutdown

(** A request plus its optional client-supplied trace id. *)
type envelope = { req : request; trace_id : string option }

(** Parse one request line.  [Error] is a bad-request message. *)
val request_of_string : string -> (request, string) result

val request_of_json : Json.json -> (request, string) result

(** Like {!request_of_string}, also extracting (and validating — see
    {!Obs.Trace_context.is_valid}) the optional ["trace_id"] field. *)
val envelope_of_string : string -> (envelope, string) result

val envelope_of_json : Json.json -> (envelope, string) result

type error_code =
  | Bad_request
  | Not_found
  | Overloaded
  | Deadline_exceeded
  | Task_failed  (** a task's retry budget was exhausted mid-run *)
  | Internal

val error_code_to_string : error_code -> string

type response =
  | Registered of {
      dataset : string;
      scale : int;
      seed : int;
      version : int;
      fresh : bool;  (** whether this call (re)generated the data *)
      rows : int;
      tables : (string * int) list;
    }
  | Explained of {
      dataset : string;
      version : int;
      cache : [ `Hit | `Miss | `Handle | `Coalesced ];
          (** [`Handle]: explanations were recomputed but the traced-run
              handle was reused, skipping re-tracing; [`Coalesced]: this
              request shared a concurrent identical request's execution
              (single-flight) *)
      result : Json.json;  (** {!Codec.result_to_json} payload *)
    }
  | Stats_reply of (string * Json.json) list  (** named stat sections *)
  | Telemetry_reply of {
      format : [ `Prometheus | `Json ];
      metrics : Json.json;
          (** Prometheus: a [J_string] holding the text exposition;
              JSON: the {!Obs.Export.json} object *)
    }
  | Evicted of { datasets : int; cache_entries : int }
  | Error of { code : error_code; message : string }
  | Goodbye

(** One line, no embedded newlines.  [?trace_id] (the id the client
    supplied, if any) is appended as a trailing ["trace_id"] field. *)
val response_to_string : ?trace_id:string -> response -> string

val response_to_json : ?trace_id:string -> response -> Json.json

(** Convenience constructors for error responses. *)
val bad_request : string -> response

val not_found : string -> response
