(* Repair-suggestion tests: suggestions implement exactly the
   explanation's operators, genuinely produce the missing answer, and are
   ranked by side effects. *)

open Nested
open Nrab
module Nip = Whynot.Nip
module Int_set = Whynot.Msr.Int_set

let schema =
  Vtype.relation
    [ ("ename", Vtype.TString); ("dept", Vtype.TString); ("salary", Vtype.TInt) ]

let emp name dept salary =
  Value.Tuple
    [ ("ename", Value.String name); ("dept", Value.String dept); ("salary", Value.Int salary) ]

let db =
  Relation.Db.of_list
    [
      ( "emp",
        Relation.of_tuples ~schema
          [ emp "ann" "sales" 100; emp "bob" "eng" 80; emp "cyd" "eng" 120 ] );
    ]

let phi =
  let g = Query.Gen.create () in
  let query =
    Query.select ~id:2 g
      (Expr.Cmp (Expr.Ge, Expr.attr "salary", Expr.int 100))
      (Query.table ~id:1 g "emp")
  in
  Whynot.Question.make ~query ~db
    ~missing:(Nip.tup [ ("ename", Nip.str "bob") ])

let explanation = Whynot.Explanation.make ~lb:0 ~ub:1 (Int_set.singleton 2)

let test_suggestions_succeed () =
  let suggestions = Whynot.Repair.suggest phi explanation in
  Alcotest.(check bool) "at least one repair" true (suggestions <> []);
  List.iter
    (fun (s : Whynot.Repair.suggestion) ->
      Alcotest.(check bool) "repair produces the missing answer" true
        (Whynot.Question.is_successful phi s.Whynot.Repair.repaired);
      Alcotest.(check (list int)) "changes exactly the explanation's ops" [ 2 ]
        (List.map fst s.Whynot.Repair.changes))
    suggestions

let test_suggestions_ranked () =
  let suggestions = Whynot.Repair.suggest ~max_suggestions:10 phi explanation in
  let effects = List.map (fun s -> s.Whynot.Repair.side_effects) suggestions in
  Alcotest.(check (list int)) "ascending side effects" (List.sort compare effects)
    effects

let test_best_repair_is_minimal () =
  (* inserting bob's whole tuple costs 7 edits; the tree edit distance can
     do better by relabeling cyd into bob (2 edits), so the best repair
     must cost at most the insertion *)
  match Whynot.Repair.suggest phi explanation with
  | best :: _ ->
    Alcotest.(check bool) "no worse than inserting the tuple" true
      (best.Whynot.Repair.side_effects <= 7);
    let result = Eval.eval db best.Whynot.Repair.repaired in
    Alcotest.(check bool) "bob appears" true
      (List.exists
         (fun t -> Value.field "ename" t = Some (Value.String "bob"))
         (Relation.tuples result))
  | [] -> Alcotest.fail "no suggestion"

let test_max_suggestions () =
  Alcotest.(check bool) "cap respected" true
    (List.length (Whynot.Repair.suggest ~max_suggestions:1 phi explanation) <= 1)

let test_empty_for_unfixable () =
  (* explanation pointing at the wrong operator yields no successful
     repair: asking for a name that does not exist at all *)
  let phi_bad =
    Whynot.Question.make ~query:phi.Whynot.Question.query ~db
      ~missing:(Nip.tup [ ("ename", Nip.str "nobody") ])
  in
  Alcotest.(check int) "nothing to suggest" 0
    (List.length (Whynot.Repair.suggest phi_bad explanation))

let () =
  Alcotest.run "repair"
    [
      ( "suggestions",
        [
          Alcotest.test_case "succeed" `Quick test_suggestions_succeed;
          Alcotest.test_case "ranked" `Quick test_suggestions_ranked;
          Alcotest.test_case "minimal side effects" `Quick test_best_repair_is_minimal;
          Alcotest.test_case "cap" `Quick test_max_suggestions;
          Alcotest.test_case "unfixable" `Quick test_empty_for_unfixable;
        ] );
    ]
