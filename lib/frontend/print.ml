open Nested
open Nrab

exception Unprintable of string

let unprintable fmt = Fmt.kstr (fun m -> raise (Unprintable m)) fmt

(* ---- lexical forms ---- *)

let bare_ident s =
  let ok_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let ok c = ok_start c || (c >= '0' && c <= '9') in
  String.length s > 0
  && ok_start s.[0]
  && String.for_all ok s
  && not (List.mem (String.uppercase_ascii s) Lexer.keywords)

let quote_with q s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b q;
  String.iter
    (fun c ->
      Buffer.add_char b c;
      if c = q then Buffer.add_char b c)
    s;
  Buffer.add_char b q;
  Buffer.contents b

let pid s =
  if s = "" then unprintable "empty attribute name has no surface form";
  if bare_ident s then s else quote_with '"' s

let pstr s = quote_with '\'' s

let pfloat f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite ->
      unprintable "float literal %h has no surface form" f
  | _ ->
      let s = Fmt.str "%.17g" f in
      (* ensure it re-lexes as a float, not an integer *)
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ "."

(* ---- expressions and predicates ---- *)

(* precedence: 1 = additive, 2 = multiplicative, 3 = atoms *)
let rec pexpr prec (e : Expr.t) =
  let wrap lvl s = if lvl < prec then "(" ^ s ^ ")" else s in
  match e with
  | Expr.Const (Value.Int i) -> string_of_int i
  | Expr.Const (Value.Bool b) -> if b then "TRUE" else "FALSE"
  | Expr.Const (Value.Float f) -> pfloat f
  | Expr.Const (Value.String s) -> pstr s
  | Expr.Const v -> unprintable "constant %a has no surface form" Value.pp v
  | Expr.Attr a -> pid a
  | Expr.Add (a, b) -> wrap 1 (pexpr 1 a ^ " + " ^ pexpr 2 b)
  | Expr.Sub (a, b) -> wrap 1 (pexpr 1 a ^ " - " ^ pexpr 2 b)
  | Expr.Mul (a, b) -> wrap 2 (pexpr 2 a ^ " * " ^ pexpr 3 b)
  | Expr.Div (a, b) -> wrap 2 (pexpr 2 a ^ " / " ^ pexpr 3 b)

let cmp_text = function
  | Expr.Eq -> "="
  | Expr.Neq -> "!="
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

(* precedence: 1 = OR, 2 = AND, 3 = NOT, 4 = atoms *)
let rec ppred prec (p : Expr.pred) =
  let wrap lvl s = if lvl < prec then "(" ^ s ^ ")" else s in
  match p with
  | Expr.True -> "TRUE"
  | Expr.False -> "FALSE"
  | Expr.Or (a, b) -> wrap 1 (ppred 1 a ^ " OR " ^ ppred 2 b)
  | Expr.And (a, b) -> wrap 2 (ppred 2 a ^ " AND " ^ ppred 3 b)
  | Expr.Not a -> wrap 3 ("NOT " ^ ppred 4 a)
  | Expr.Cmp (c, a, b) ->
      wrap 4 (pexpr 1 a ^ " " ^ cmp_text c ^ " " ^ pexpr 1 b)
  | Expr.IsNull e -> wrap 4 (pexpr 1 e ^ " IS NULL")
  | Expr.IsNotNull e -> wrap 4 (pexpr 1 e ^ " IS NOT NULL")
  | Expr.Contains (e, needle) ->
      "CONTAINS(" ^ pexpr 1 e ^ ", " ^ pstr needle ^ ")"

let agg_text (fn : Agg.fn) (over : string option) =
  match (fn, over) with
  | Agg.Count, None -> "count(*)"
  | Agg.Count, Some a -> "count(" ^ pid a ^ ")"
  | Agg.Count_distinct, Some a -> "count(DISTINCT " ^ pid a ^ ")"
  | Agg.Sum, Some a -> "sum(" ^ pid a ^ ")"
  | Agg.Avg, Some a -> "avg(" ^ pid a ^ ")"
  | Agg.Min, Some a -> "min(" ^ pid a ^ ")"
  | Agg.Max, Some a -> "max(" ^ pid a ^ ")"
  | fn, None ->
      unprintable "aggregate %s without an input attribute has no surface form"
        (Agg.fn_to_string fn)

let join_text = function
  | Query.Inner -> "JOIN"
  | Query.Left -> "LEFT JOIN"
  | Query.Right -> "RIGHT JOIN"
  | Query.Full -> "FULL JOIN"

(* ---- queries ---- *)

let to_sql ~env (q : Query.t) =
  (* memoized output types, for NEST's grouped-attribute reconstruction *)
  let types : (int, Vtype.t) Hashtbl.t = Hashtbl.create 16 in
  let infer (q : Query.t) =
    match Hashtbl.find_opt types q.Query.id with
    | Some ty -> ty
    | None ->
        let ty =
          match Typecheck.infer_result env q with
          | Ok ty -> ty
          | Error e ->
              unprintable "cannot print an ill-typed query: %s" e.Typecheck.message
        in
        Hashtbl.add types q.Query.id ty;
        ty
  in
  let fields_of (q : Query.t) =
    match infer q with
    | Vtype.TBag (Vtype.TTuple fs) -> List.map fst fs
    | ty -> unprintable "query output is not a relation: %a" Vtype.pp ty
  in
  let commas = String.concat ", " in
  let pair_text (label, attr) =
    if String.equal label attr then pid attr else pid attr ^ " AS " ^ pid label
  in
  (* [atom]: a FROM-clause primary; [fitem]: a FROM item (join chains);
     [fclause]: a full FROM clause (comma products). *)
  let rec atom (q : Query.t) =
    match (q.Query.node, q.Query.children) with
    | Query.Table name, [] -> pid name
    | Query.Flatten (Query.Flat_inner, a), [ c ] ->
        "FLATTEN(" ^ fitem c ^ ", " ^ pid a ^ ")"
    | Query.Flatten (Query.Flat_outer, a), [ c ] ->
        "FLATTEN OUTER(" ^ fitem c ^ ", " ^ pid a ^ ")"
    | Query.Flatten_tuple a, [ c ] ->
        "FLATTEN TUPLE(" ^ fitem c ^ ", " ^ pid a ^ ")"
    | Query.Rename pairs, [ c ] ->
        if pairs = [] then unprintable "RENAME with no pairs has no surface form";
        let pair (fresh, old) = pid old ^ " AS " ^ pid fresh in
        "RENAME(" ^ fitem c ^ ", " ^ commas (List.map pair pairs) ^ ")"
    | (Query.Join _ | Query.Product), _ -> "(" ^ fclause q ^ ")"
    | _ -> "(" ^ sql q ^ ")"
  and fitem (q : Query.t) =
    match (q.Query.node, q.Query.children) with
    | Query.Join (k, p), [ l; r ] ->
        fitem l ^ " " ^ join_text k ^ " " ^ atom r ^ " ON " ^ ppred 1 p
    | _ -> atom q
  and fclause (q : Query.t) =
    match (q.Query.node, q.Query.children) with
    | Query.Product, [ l; r ] -> fclause l ^ ", " ^ fitem r
    | _ -> fitem q
  and sql (q : Query.t) =
    match (q.Query.node, q.Query.children) with
    | Query.Table _, _
    | Query.Flatten _, _
    | Query.Flatten_tuple _, _
    | Query.Rename _, _
    | Query.Join _, _
    | Query.Product, _ ->
        "SELECT * FROM " ^ fclause q
    | Query.Select p, [ c ] ->
        "SELECT * FROM " ^ fclause c ^ " WHERE " ^ ppred 1 p
    | Query.Dedup, [ c ] -> "SELECT DISTINCT * FROM " ^ fclause c
    | Query.Project cols, [ c ] ->
        if cols = [] then
          unprintable "projection to zero attributes has no surface form";
        let item (name, e) =
          match e with
          | Expr.Attr a when String.equal a name -> pid name
          | _ -> pexpr 1 e ^ " AS " ^ pid name
        in
        "SELECT " ^ commas (List.map item cols) ^ " FROM " ^ fclause c
    | Query.Agg_tuple (fn, over, into), [ c ] ->
        "SELECT *, " ^ agg_text fn (Some over) ^ " AS " ^ pid into ^ " FROM "
        ^ fclause c
    | Query.Nest_rel (pairs, into), [ c ] | Query.Nest_tuple (pairs, into), [ c ]
      ->
        let tuple =
          match q.Query.node with Query.Nest_tuple _ -> true | _ -> false
        in
        let nested = List.map snd pairs in
        let rest =
          List.filter (fun f -> not (List.mem f nested)) (fields_of c)
        in
        let group_text =
          match rest with [] -> "" | _ -> commas (List.map pid rest) ^ " "
        in
        "SELECT * FROM " ^ fclause c ^ " GROUP BY " ^ group_text
        ^ (if tuple then "NEST TUPLE " else "NEST ")
        ^ commas (List.map pair_text pairs)
        ^ " INTO " ^ pid into
    | Query.Group_agg (pairs, aggs), [ c ] ->
        if pairs = [] then
          unprintable "GROUP BY with no group attributes has no surface form";
        let sel =
          List.map (fun (label, _) -> pid label) pairs
          @ List.map
              (fun (fn, over, out) -> agg_text fn over ^ " AS " ^ pid out)
              aggs
        in
        "SELECT " ^ commas sel ^ " FROM " ^ fclause c ^ " GROUP BY "
        ^ commas (List.map pair_text pairs)
    | Query.Union, [ l; r ] -> sql l ^ " UNION " ^ setop_rhs r
    | Query.Diff, [ l; r ] -> sql l ^ " EXCEPT " ^ setop_rhs r
    | _ -> unprintable "malformed query node (wrong arity)"
  and setop_rhs (r : Query.t) =
    (* set operators associate left; a set-op right operand needs parens *)
    match r.Query.node with
    | Query.Union | Query.Diff -> "(" ^ sql r ^ ")"
    | _ -> sql r
  in
  sql q
