(** Canonical, structure-stable fingerprints for queries and why-not
    patterns — the cache keys of the serving layer.

    Operator identifiers are deliberately {e excluded} from the query
    fingerprint: two queries that differ only in operator-id labeling
    (alpha-equivalent parameterizations, e.g. a parsed query vs. the same
    query relabeled with {!Nrab.Query.relabel}) fingerprint identically,
    while any change to structure or parameters — a constant, a predicate
    shape, an attribute name, a join kind — changes the fingerprint.

    Hashes are 64-bit FNV-1a over a length-prefixed token stream of the
    AST, so they are stable across processes and runs (no dependence on
    OCaml's randomized [Hashtbl.hash]). *)

open Nested
open Nrab

val value : Value.t -> int64
val expr : Expr.t -> int64
val pred : Expr.pred -> int64

(** Structure + parameters, operator ids excluded. *)
val query : Query.t -> int64

val nip : Whynot.Nip.t -> int64
val alternatives : Whynot.Alternatives.alternatives -> int64

(** The explain options that affect the {e result} (and therefore belong
    in the cache key).  [parallel] is deliberately absent: the parallel
    pipeline is byte-identical to the sequential one.  The approximation
    knobs ([sample_stride], [top_k], [budget_ms]) {e are} present — an
    approximate result must never be served from (or alias) an exact
    cache entry; [None] mixes a sentinel distinct from every [Some]. *)
type options = {
  use_sas : bool;
  max_sas : int;
  revalidate : bool;
  sample_stride : int option;
  top_k : int option;
  budget_ms : float option;
}

val default_options : options
val options : options -> int64

(** Order-sensitive combination of component hashes. *)
val combine : int64 list -> int64

(** 16-digit lowercase hex rendering. *)
val to_hex : int64 -> string

(** Cache key of a full explain request:
    ⟨query, dataset name + version, why-not pattern, options⟩. *)
val explain_key :
  dataset:string ->
  version:int ->
  options:options ->
  alternatives:Whynot.Alternatives.alternatives ->
  Query.t ->
  Whynot.Nip.t ->
  string

(** Pattern-free key of the reusable traced-run handle:
    ⟨query, dataset name + version, options⟩ — shared by every why-not
    pattern on the same prepared run. *)
val prepare_key :
  dataset:string ->
  version:int ->
  options:options ->
  alternatives:Whynot.Alternatives.alternatives ->
  Query.t ->
  string
