(* Frontend tests: SQL lowering vs programmatic construction, print/parse
   round-trips, caret diagnostics (golden), and a QCheck fuzzer that
   round-trips random well-typed queries through the printer. *)

open Nested
open Nrab

let re_env = Frontend.Compile.env_of_db Scenarios.Paper_scenarios.db

let re_sql =
  "SELECT name, city FROM FLATTEN(person, address2) WHERE year >= 2019 \
   GROUP BY city NEST name INTO nList"

let re_query () =
  let g = Query.Gen.create () in
  Query.nest_rel g [ "name" ] ~into:"nList"
    (Query.project_attrs g [ "name"; "city" ]
       (Query.select g
          (Expr.Cmp (Expr.Ge, Expr.attr "year", Expr.int 2019))
          (Query.flatten_inner g "address2" (Query.table g "person"))))

let compile_exn ~env text =
  match Frontend.Compile.text ~env text with
  | Ok (q, ty) -> (q, ty)
  | Error d ->
      Alcotest.failf "unexpected diagnostic:\n%s"
        (Frontend.Diagnostic.render ~source:text d)

let op_ids q = List.map (fun (op : Query.t) -> op.Query.id) (Query.operators q)

let fp = Serve.Fingerprint.query

(* --- the running example, end to end ------------------------------- *)

let test_re_lowering () =
  let q, ty = compile_exn ~env:re_env re_sql in
  let reference = re_query () in
  Alcotest.(check string)
    "same structure" (Parser.query_to_string reference) (Parser.query_to_string q);
  Alcotest.(check (list int)) "same operator ids" (op_ids reference) (op_ids q);
  Alcotest.(check int64) "same fingerprint" (fp reference) (fp q);
  let expected_ty = Typecheck.infer re_env reference in
  Alcotest.(check bool) "same output type" true (Vtype.equal expected_ty ty)

let test_re_print_roundtrip () =
  let reference = re_query () in
  let sql = Frontend.Print.to_sql ~env:re_env reference in
  let q, _ = compile_exn ~env:re_env sql in
  Alcotest.(check int64) "reprint fingerprints equal" (fp reference) (fp q)

(* --- hand-written round-trips over a synthetic schema --------------- *)

let people_schema =
  Vtype.relation
    [
      ("name", Vtype.TString);
      ("age", Vtype.TInt);
      ("score", Vtype.TFloat);
      ("active", Vtype.TBool);
      ("addrs",
       Vtype.TBag
         (Vtype.TTuple [ ("city", Vtype.TString); ("year", Vtype.TInt) ]));
    ]

let orders_schema =
  Vtype.relation
    [ ("oid", Vtype.TInt); ("item", Vtype.TString); ("qty", Vtype.TInt) ]

let env = [ ("people", people_schema); ("orders", orders_schema) ]

(* compile, print, re-compile: both compilations must agree modulo ids. *)
let roundtrip ?(env = env) text =
  let q, _ = compile_exn ~env text in
  let sql = Frontend.Print.to_sql ~env q in
  let q2, _ = compile_exn ~env sql in
  if not (Int64.equal (fp q) (fp q2)) then
    Alcotest.failf "round-trip changed the query:\n  input:   %s\n  printed: %s"
      text sql

let test_roundtrips () =
  List.iter roundtrip
    [
      "SELECT * FROM people";
      "SELECT name, age FROM people";
      "SELECT DISTINCT item FROM orders";
      "SELECT name FROM people WHERE age >= 30 AND (active = true OR score < 1.5)";
      "SELECT name FROM people WHERE NOT (name CONTAINS 'ete') OR name IS NOT NULL";
      "SELECT name, age + 1 AS next FROM people WHERE age * 2 - 1 <= 99";
      "SELECT city, year FROM FLATTEN(people, addrs) WHERE year >= 2000";
      "SELECT * FROM UNNEST(people, addrs)";
      "SELECT * FROM FLATTEN OUTER (people, addrs)";
      "SELECT * FROM RENAME(orders, oid AS id, qty AS n)";
      "SELECT name, item FROM people JOIN orders ON age = oid";
      "SELECT name, item FROM people LEFT JOIN orders ON age = oid WHERE qty > 2";
      "SELECT name, item FROM people, orders WHERE age = oid";
      "SELECT item FROM orders UNION SELECT name AS item FROM people";
      "SELECT item FROM orders EXCEPT SELECT item FROM orders WHERE qty < 0";
      "SELECT name, age, score FROM people GROUP BY name NEST age, score \
       INTO rest";
      "SELECT name, age, score, active FROM people GROUP BY name, active \
       NEST TUPLE age AS a, score INTO s";
      "SELECT item, count(*) AS n, sum(qty) AS total FROM orders GROUP BY item";
      "SELECT kind, avg(qty) AS mean FROM orders GROUP BY item AS kind";
      "SELECT item, count(DISTINCT oid) AS ids FROM orders GROUP BY item";
      "WITH big AS (SELECT * FROM orders WHERE qty > 10) SELECT item FROM big";
      "WITH a AS (SELECT oid FROM orders), b AS (SELECT oid AS o FROM a) \
       SELECT * FROM b";
      "SELECT name FROM (SELECT name, age FROM people) WHERE age > 1";
      "SELECT name FROM people WHERE CASE WHEN active = true THEN age > 18 \
       ELSE age > 21 END";
    ]

(* CASE is desugared during lowering; make sure the desugaring is the
   documented or/and/not expansion. *)
let test_case_desugars () =
  let q, _ =
    compile_exn ~env
      "SELECT name FROM people WHERE CASE WHEN active = true THEN age > 18 \
       ELSE age > 21 END"
  in
  let q2, _ =
    compile_exn ~env
      "SELECT name FROM people WHERE (active = true AND age > 18) OR \
       (NOT active = true AND age > 21)"
  in
  Alcotest.(check int64) "case = or/and/not expansion" (fp q2) (fp q)

(* --- s-expression surface: labeled nest/group-by round-trips -------- *)

let test_sexp_labeled_roundtrip () =
  let cases =
    [
      "(nest ((x name)) nList (project (name city) (table people)))";
      "(nest-tuple (age (s score)) pair (table people))";
      "(groupby ((kind item)) ((sum qty total) (count * n)) (table orders))";
    ]
  in
  List.iter
    (fun text ->
      let q = Parser.query_of_string text in
      let printed = Parser.query_to_string q in
      let q2 = Parser.query_of_string printed in
      Alcotest.(check string) "sexp round-trip" printed (Parser.query_to_string q2);
      Alcotest.(check int64) "sexp fingerprint" (fp q) (fp q2))
    cases;
  (* the sexp path in Compile typechecks too *)
  let q, _ =
    compile_exn ~env
      "(nest ((x city)) cities (project (name city) (flatten-inner addrs (table people))))"
  in
  Alcotest.(check bool) "labeled nest typechecks" true (Query.op_count q > 0)

(* --- fuzzer: random well-typed queries survive print -> parse -------- *)

let fuzz_count =
  match Sys.getenv_opt "FRONTEND_FUZZ_COUNT" with
  | Some s -> int_of_string s
  | None -> 1000

let is_primitive = function
  | Vtype.TInt | Vtype.TFloat | Vtype.TString | Vtype.TBool -> true
  | _ -> false

let is_numeric = function Vtype.TInt | Vtype.TFloat -> true | _ -> false

let fields_of_ty = function
  | Vtype.TBag (Vtype.TTuple fs) -> fs
  | _ -> invalid_arg "fields_of_ty: not a relation type"

(* Builds a random well-typed query bottom-up: start from a table and
   apply a handful of random compatible operators, reading the schema
   back from the typechecker after each step.  A candidate operator that
   fails to typecheck is simply skipped, so the generator stays honest
   even where the eligibility precondition below is approximate. *)
let gen_query rs : Query.t =
  let open QCheck.Gen in
  let g = Query.Gen.create () in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "x%d" !counter
  in
  let pick l = List.nth l (int_bound (List.length l - 1) rs) in
  let coin () = bool rs in
  let shuffle l = List.map snd (List.sort compare (List.map (fun x -> (int_bound 10_000 rs, x)) l)) in
  let const_of = function
    | Vtype.TInt -> Expr.int (int_bound 100 rs - 5)
    | Vtype.TFloat -> Expr.flt (pick [ 0.5; -2.25; 3.; 12345.6789 ])
    | Vtype.TString -> Expr.str (pick [ "NY"; "LA"; "O'Hara"; "" ])
    | Vtype.TBool -> Expr.const (Value.Bool (coin ()))
    | _ -> Expr.int 0
  in
  let cmps = [ Expr.Eq; Expr.Neq; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
  let rec gen_pred depth fields =
    let prims = List.filter (fun (_, t) -> is_primitive t) fields in
    let leaf () =
      if prims = [] then if coin () then Expr.True else Expr.False
      else
        let a, t = pick prims in
        match int_bound 5 rs with
        | 0 | 1 -> Expr.Cmp (pick cmps, Expr.attr a, const_of t)
        | 2 -> (
            (* attr-vs-attr comparison when a same-typed partner exists *)
            match List.filter (fun (b, u) -> b <> a && Vtype.equal t u) prims with
            | [] -> Expr.Cmp (pick cmps, Expr.attr a, const_of t)
            | partners -> Expr.Cmp (pick cmps, Expr.attr a, Expr.attr (fst (pick partners))))
        | 3 -> if coin () then Expr.IsNull (Expr.attr a) else Expr.IsNotNull (Expr.attr a)
        | _ -> (
            match List.filter (fun (_, t) -> t = Vtype.TString) prims with
            | [] -> Expr.Cmp (pick cmps, Expr.attr a, const_of t)
            | strs -> Expr.Contains (Expr.attr (fst (pick strs)), pick [ "N"; "a"; "'" ]))
    in
    if depth = 0 then leaf ()
    else
      match int_bound 5 rs with
      | 0 -> Expr.And (gen_pred (depth - 1) fields, gen_pred (depth - 1) fields)
      | 1 -> Expr.Or (gen_pred (depth - 1) fields, gen_pred (depth - 1) fields)
      | 2 -> Expr.Not (gen_pred (depth - 1) fields)
      | _ -> leaf ()
  in
  let start = pick [ "people"; "orders" ] in
  let q = ref (Query.table g start) in
  let fields = ref (fields_of_ty (List.assoc start env)) in
  let steps = 1 + int_bound 5 rs in
  for _ = 1 to steps do
    let fs = !fields in
    let candidates = ref [] in
    let add c = candidates := c :: !candidates in
    add (fun () -> Query.select g (gen_pred 2 fs) !q);
    add (fun () -> Query.dedup g !q);
    if fs <> [] then begin
      (* project to a random nonempty subset, sometimes with a computed item *)
      add (fun () ->
          let subset =
            let sh = shuffle fs in
            let k = 1 + int_bound (List.length sh - 1) rs in
            List.filteri (fun i _ -> i < k) sh
          in
          let items = List.map (fun (a, _) -> (a, Expr.attr a)) subset in
          let items =
            match List.filter (fun (_, t) -> is_numeric t) subset with
            | (a, _) :: _ when coin () ->
                items @ [ (fresh (), Expr.Add (Expr.attr a, Expr.int 1)) ]
            | _ -> items
          in
          Query.project g items !q);
      add (fun () ->
          let a, _ = pick fs in
          Query.rename g [ (fresh (), a) ] !q);
      (* nest a nonempty subset, keeping the rest as group attributes *)
      add (fun () ->
          let sh = shuffle fs in
          let k = 1 + int_bound (List.length sh - 1) rs in
          let nested = List.filteri (fun i _ -> i < k) sh in
          let pairs =
            List.map (fun (a, _) -> if coin () then (fresh (), a) else (a, a)) nested
          in
          let into = fresh () in
          if coin () then Query.nest_rel_labeled g pairs ~into !q
          else Query.nest_tuple_labeled g pairs ~into !q);
      (* group-by aggregation over a random subset *)
      add (fun () ->
          let sh = shuffle fs in
          let k = 1 + int_bound (min 2 (List.length sh - 1)) rs in
          let group = List.filteri (fun i _ -> i < k) sh in
          let pairs =
            List.map (fun (a, _) -> if coin () then (fresh (), a) else (a, a)) group
          in
          let agg () =
            match List.filter (fun (_, t) -> is_numeric t) fs with
            | (a, _) :: _ when coin () ->
                (pick [ Agg.Sum; Agg.Avg; Agg.Min; Agg.Max ], Some a, fresh ())
            | _ ->
                if coin () then (Agg.Count, None, fresh ())
                else
                  let a, _ = pick fs in
                  (pick [ Agg.Count; Agg.Count_distinct ], Some a, fresh ())
          in
          let aggs = if coin () then [ agg () ] else [ agg (); agg () ] in
          Query.group_agg_labeled g pairs aggs !q)
    end;
    (* flatten an eligible nested attribute *)
    List.iter
      (fun (a, t) ->
        match t with
        | Vtype.TBag (Vtype.TTuple inner)
          when List.for_all (fun (n, _) -> not (List.mem_assoc n fs)) inner ->
            add (fun () ->
                if coin () then Query.flatten_inner g a !q
                else Query.flatten_outer g a !q)
        | _ -> ())
      fs;
    (* per-tuple aggregation over a single-attribute or primitive bag *)
    List.iter
      (fun (a, t) ->
        let eligible_inner =
          match t with
          | Vtype.TBag (Vtype.TTuple [ (_, it) ]) -> Some it
          | Vtype.TBag it when is_primitive it -> Some it
          | _ -> None
        in
        match eligible_inner with
        | Some it ->
            add (fun () ->
                let fn =
                  if is_numeric it then
                    pick [ Agg.Count; Agg.Count_distinct; Agg.Sum; Agg.Avg; Agg.Min; Agg.Max ]
                  else pick [ Agg.Count; Agg.Count_distinct ]
                in
                Query.agg_tuple g fn ~over:a ~into:(fresh ()) !q)
        | None -> ())
      fs;
    (* join against a freshly-renamed copy of orders *)
    add (fun () ->
        let o1 = fresh () and o2 = fresh () and o3 = fresh () in
        let r =
          Query.rename g [ (o1, "oid"); (o2, "item"); (o3, "qty") ]
            (Query.table g "orders")
        in
        let pred =
          match List.filter (fun (_, t) -> t = Vtype.TInt) fs with
          | (a, _) :: _ when coin () -> Expr.Cmp (Expr.Eq, Expr.attr a, Expr.attr o1)
          | _ -> Expr.True
        in
        Query.join g (pick [ Query.Inner; Query.Left; Query.Right; Query.Full ]) pred !q r);
    (* set operations against a relabeled copy of the query so far *)
    add (fun () ->
        let copy = Query.relabel g !q in
        if coin () then Query.union g !q copy else Query.diff g !q copy);
    let q' = (pick !candidates) () in
    match Typecheck.infer_result env q' with
    | Ok ty ->
        q := q';
        fields := fields_of_ty ty
    | Error _ -> ()
  done;
  !q

let arb_query =
  QCheck.make ~print:(fun q -> Parser.query_to_string q) gen_query

let fuzz_print_roundtrip =
  QCheck.Test.make ~count:fuzz_count ~name:"print/parse round-trip" arb_query
    (fun q ->
      match Frontend.Print.to_sql ~env q with
      | exception Frontend.Print.Unprintable msg ->
          QCheck.Test.fail_reportf "unprintable query: %s\n%s" msg
            (Parser.query_to_string q)
      | sql -> (
          match Frontend.Compile.sql ~env sql with
          | Error d ->
              QCheck.Test.fail_reportf "printed SQL no longer compiles:\n%s\nsexp: %s"
                (Frontend.Diagnostic.render ~source:sql d)
                (Parser.query_to_string q)
          | Ok (q2, _) ->
              if Int64.equal (fp q) (fp q2) then true
              else
                QCheck.Test.fail_reportf
                  "fingerprint drift through print/parse:\n\
                   sql: %s\nbefore: %s\nafter:  %s"
                  sql
                  (Parser.query_to_string q)
                  (Parser.query_to_string q2)))

let fuzz_sexp_roundtrip =
  QCheck.Test.make ~count:fuzz_count ~name:"sexp round-trip" arb_query (fun q ->
      let text = Parser.query_to_string q in
      let q2 = Parser.query_of_string text in
      Int64.equal (fp q) (fp q2))

(* --- diagnostics: exact caret renders ------------------------------- *)

let check_diag ~name text expected =
  match Frontend.Compile.text ~env text with
  | Ok _ -> Alcotest.failf "%s: expected a diagnostic, got Ok" name
  | Error d ->
      Alcotest.(check string) name expected
        (Frontend.Diagnostic.render ~source:text d)

(* Exact caret renders for malformed inputs: the golden strings pin down
   line/column arithmetic, caret width, and hint plumbing. *)
let test_diagnostics () =
  check_diag ~name:"unterminated string"
    "SELECT name FROM people WHERE name = 'unterminated"
    "lex error at 1:38: unterminated string literal\n\
    \  1 | SELECT name FROM people WHERE name = 'unterminated\n\
    \    |                                      ^";
  check_diag ~name:"unknown column" "SELECT nam FROM people"
    "type error at 1:8: unknown column \"nam\" (available: name, age, score, \
     active, addrs)\n\
    \  1 | SELECT nam FROM people\n\
    \    |        ^^^";
  check_diag ~name:"bag/scalar comparison"
    "SELECT name FROM people WHERE addrs = 1"
    "type error at 1:31: cannot compare a value of type {{\u{27E8}city: STR, \
     year: INT\u{27E9}}} \u{2014} comparisons need primitive values\n\
    \  1 | SELECT name FROM people WHERE addrs = 1\n\
    \    |                               ^^^^^\n\
    \  hint: bag attributes can be FLATTENed, aggregated, or tested with a \
     why-not pattern";
  check_diag ~name:"dangling CTE reference"
    "WITH a AS (SELECT * FROM b),\n\
    \     b AS (SELECT * FROM orders)\n\
     SELECT * FROM a"
    "type error at 1:26: unknown table \"b\"\n\
    \  1 | WITH a AS (SELECT * FROM b),\n\
    \    |                          ^\n\
    \  hint: CTE \"b\" is not in scope here; a CTE can only reference tables \
     and CTEs defined before it";
  check_diag ~name:"missing comma between items" "SELECT name age FROM people"
    "parse error at 1:13: expected keyword FROM, found identifier \"age\"\n\
    \  1 | SELECT name age FROM people\n\
    \    |             ^^^\n\
    \  hint: separate select items with commas";
  check_diag ~name:"nest of unselected attribute"
    "SELECT name FROM people GROUP BY name NEST age INTO rest"
    "type error at 1:44: unknown column \"age\" (available: name)\n\
    \  1 | SELECT name FROM people GROUP BY name NEST age INTO rest\n\
    \    |                                            ^^^";
  check_diag ~name:"duplicate output attribute"
    "SELECT name, age AS name FROM people"
    "type error at 1:21: duplicate output attribute \"name\"\n\
    \  1 | SELECT name, age AS name FROM people\n\
    \    |                     ^^^^";
  check_diag ~name:"unknown table" "SELECT * FROM persons"
    "type error at 1:15: unknown table \"persons\"\n\
    \  1 | SELECT * FROM persons\n\
    \    |               ^^^^^^^\n\
    \  hint: available tables: people, orders";
  check_diag ~name:"count(*) without GROUP BY"
    "SELECT count(*) AS n FROM orders"
    "type error at 1:8: count(*) needs a GROUP BY clause\n\
    \  1 | SELECT count(*) AS n FROM orders\n\
    \    |        ^^^^^^^^^^^^^\n\
    \  hint: per-tuple aggregates run over a bag attribute: count(address2) \
     AS n";
  check_diag ~name:"flatten of a scalar" "SELECT * FROM FLATTEN(people, name)"
    "type error at 1:31: FLATTEN expects a bag-of-tuples attribute, but name \
     : STR\n\
    \  1 | SELECT * FROM FLATTEN(people, name)\n\
    \    |                               ^^^^\n\
    \  hint: only nested bag attributes can be flattened";
  check_diag ~name:"join mismatch spans line 4"
    "SELECT name,\n       item\nFROM people\nJOIN orders ON name = qty"
    "type error at 4:16: incomparable types STR vs INT\n\
    \  4 | JOIN orders ON name = qty\n\
    \    |                ^^^^^^^^^^";
  check_diag ~name:"union schema mismatch"
    "SELECT item FROM orders UNION SELECT * FROM people"
    "type error at 1:1: UNION over different schemas: {{\u{27E8}item: \
     STR\u{27E9}}} vs {{\u{27E8}name: STR, age: INT, score: FLOAT, active: \
     BOOL, addrs: {{\u{27E8}city: STR, year: INT\u{27E9}}}\u{27E9}}}\n\
    \  1 | SELECT item FROM orders UNION SELECT * FROM people\n\
    \    | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^\n\
    \  hint: project both sides to the same attributes in the same order"

(* OCaml-isms glued to digits (0x1F, 0b101, 1_000) must be rejected as
   one bad literal, not silently split into a number followed by an
   identifier. *)
let test_malformed_numbers () =
  check_diag ~name:"hex literal"
    "SELECT name FROM people WHERE age = 0x1F"
    "lex error at 1:37: malformed number \"0x1F\"\n\
    \  1 | SELECT name FROM people WHERE age = 0x1F\n\
    \    |                                     ^^^^";
  check_diag ~name:"binary literal"
    "SELECT name FROM people WHERE age = 0b101"
    "lex error at 1:37: malformed number \"0b101\"\n\
    \  1 | SELECT name FROM people WHERE age = 0b101\n\
    \    |                                     ^^^^^";
  check_diag ~name:"underscore separator"
    "SELECT name FROM people WHERE age = 1_000"
    "lex error at 1:37: malformed number \"1_000\"\n\
    \  1 | SELECT name FROM people WHERE age = 1_000\n\
    \    |                                     ^^^^^";
  check_diag ~name:"trailing junk on a float"
    "SELECT name FROM people WHERE score = 1.5x"
    "lex error at 1:39: malformed number \"1.5x\"\n\
    \  1 | SELECT name FROM people WHERE score = 1.5x\n\
    \    |                                       ^^^^"

(* A tab before the error span: the snippet expands tabs (width 4) and
   measures the carets over the expanded line, so they stay under the
   offending token. *)
let test_tab_expansion () =
  check_diag ~name:"tab before the span"
    "SELECT name\nFROM people\nWHERE\tage = 0x1F"
    "lex error at 3:13: malformed number \"0x1F\"\n\
    \  3 | WHERE   age = 0x1F\n\
    \    |               ^^^^"

(* --- forestry scenarios: SQL-defined family ------------------------- *)

let find_scenario name =
  match Scenarios.Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "scenario %s not registered" name

let test_forestry_scenarios () =
  List.iter
    (fun name ->
      let s = find_scenario name in
      let inst = s.Scenarios.Scenario.make ~scale:3 ~seed:11 () in
      let q = inst.Scenarios.Scenario.question in
      (match Whynot.Question.check_missing q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: NIP does not conform: %s" name e);
      Alcotest.(check bool)
        (name ^ " is a proper why-not question")
        true
        (Whynot.Question.is_proper q);
      Alcotest.(check bool)
        (name ^ " has non-empty output")
        true
        (Whynot.Question.original_result q |> Relation.tuples |> ( <> ) []))
    [ "F1"; "F2" ]

(* The injected error is recoverable: rebuilding F1 over [estimates]
   instead of [years] makes the missing region appear. *)
let test_forestry_alternative_recovers () =
  let s = find_scenario "F1" in
  let inst = s.Scenarios.Scenario.make ~scale:3 ~seed:11 () in
  let q = inst.Scenarios.Scenario.question in
  let db = q.Whynot.Question.db in
  let env = Frontend.Compile.env_of_db db in
  let sql =
    "WITH recent AS (SELECT fcode, year, pct FROM FLATTEN(forest, estimates) \
     WHERE year >= 2015)\n\
     SELECT region, cname, pct\n\
     FROM countries JOIN recent ON ccode = fcode\n\
     WHERE CASE WHEN income = 'High income' THEN pct >= 40. ELSE pct >= 60. \
     END\n\
     GROUP BY region NEST cname, pct INTO top"
  in
  let fixed, _ = compile_exn ~env sql in
  Alcotest.(check bool)
    "estimates alternative restores the region" true
    (Whynot.Question.is_successful q fixed)

(* NIP pattern diagnostics share the same renderer (satellite 2). *)
let test_nip_diagnostics () =
  (match Whynot.Nip_syntax.parse "(tuple (city (str NY))" with
  | Ok _ -> Alcotest.fail "expected a pattern diagnostic"
  | Error d ->
      Alcotest.(check string) "unterminated pattern"
        "pattern error at 1:1: unterminated list\n\
        \  1 | (tuple (city (str NY))\n\
        \    | ^"
        (Frontend.Diagnostic.render ~source:"(tuple (city (str NY))" d));
  (match Whynot.Nip_syntax.parse "(tuple (city (oops NY)))" with
  | Ok _ -> Alcotest.fail "expected a pattern diagnostic"
  | Error d ->
      Alcotest.(check bool) "structural error carries a span" true
        (d.Frontend.Diagnostic.span <> None));
  match Whynot.Nip_syntax.parse "(tuple (city (str NY)) (nList (bag ? *)))" with
  | Ok _ -> ()
  | Error d ->
      Alcotest.failf "running example pattern should parse:\n%s"
        (Frontend.Diagnostic.one_line
           ~source:"(tuple (city (str NY)) (nList (bag ? *)))" d)

let () =
  Alcotest.run "frontend"
    [
      ( "running-example",
        [
          Alcotest.test_case "lowering" `Quick test_re_lowering;
          Alcotest.test_case "print-roundtrip" `Quick test_re_print_roundtrip;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "handwritten" `Quick test_roundtrips;
          Alcotest.test_case "case-desugar" `Quick test_case_desugars;
          Alcotest.test_case "sexp-labeled" `Quick test_sexp_labeled_roundtrip;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest fuzz_print_roundtrip;
          QCheck_alcotest.to_alcotest fuzz_sexp_roundtrip;
        ] );
      ( "forestry",
        [
          Alcotest.test_case "scenarios" `Quick test_forestry_scenarios;
          Alcotest.test_case "alternative-recovers" `Quick
            test_forestry_alternative_recovers;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "golden" `Quick test_diagnostics;
          Alcotest.test_case "malformed-numbers" `Quick test_malformed_numbers;
          Alcotest.test_case "tab-expansion" `Quick test_tab_expansion;
          Alcotest.test_case "nip-patterns" `Quick test_nip_diagnostics;
        ] );
    ]
