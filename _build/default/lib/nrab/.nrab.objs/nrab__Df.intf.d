lib/nrab/df.mli: Agg Expr Nested Query
