(* LRU cache: hash table for O(1) lookup + intrusive doubly-linked list
   for O(1) recency updates and eviction.  The list head is the
   most-recently-used entry, the tail the eviction candidate.

   All operations take the mutex — entries are shared between the request
   thread and pool domains. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards the head (more recent) *)
  mutable next : 'v node option;  (* towards the tail (less recent) *)
}

type 'v t = {
  name : string;
  capacity : int;
  mutex : Mutex.t;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let metric t suffix = Obs.Metrics.counter ("serve.cache." ^ t.name ^ "." ^ suffix)
let size_gauge t = Obs.Metrics.gauge ("serve.cache." ^ t.name ^ ".size")

let create ~name ~capacity =
  {
    name;
    capacity;
    mutex = Mutex.create ();
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = locked t (fun () -> Hashtbl.length t.table)

(* -- list surgery (mutex held) -- *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.Counter.incr (metric t "evictions")

(* -- public operations -- *)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node when t.capacity > 0 ->
        touch t node;
        t.hits <- t.hits + 1;
        Obs.Metrics.Counter.incr (metric t "hits");
        Some node.value
      | _ ->
        t.misses <- t.misses + 1;
        Obs.Metrics.Counter.incr (metric t "misses");
        None)

let add t key value =
  if t.capacity > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some node ->
          node.value <- value;
          touch t node
        | None ->
          let node = { key; value; prev = None; next = None } in
          Hashtbl.replace t.table key node;
          push_front t node;
          if Hashtbl.length t.table > t.capacity then evict_tail t);
        Obs.Metrics.Gauge.set (size_gauge t)
          (float_of_int (Hashtbl.length t.table)))

let invalidate t pred =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun key node acc -> if pred key then node :: acc else acc)
          t.table []
      in
      List.iter
        (fun node ->
          unlink t node;
          Hashtbl.remove t.table node.key)
        doomed;
      Obs.Metrics.Gauge.set (size_gauge t)
        (float_of_int (Hashtbl.length t.table));
      List.length doomed)

let clear t = invalidate t (fun _ -> true)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })
