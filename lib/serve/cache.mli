(** LRU cache with string keys — the explanation cache and the
    traced-run-handle cache of the server.

    Thread-safe; hit/miss/eviction counts are mirrored into
    {!Obs.Metrics} as [serve.cache.<name>.{hits,misses,evictions}] plus a
    [serve.cache.<name>.size] gauge, so they show up in the [stats]
    response and the metrics registry alongside the pipeline's own
    counters. *)

type 'v t

(** [capacity <= 0] disables caching ({!find} always misses, {!add} is a
    no-op) — the cold-path configuration the bench uses as its
    baseline. *)
val create : name:string -> capacity:int -> 'v t

val capacity : 'v t -> int
val length : 'v t -> int

(** Recency-refreshing lookup; counts a hit or a miss. *)
val find : 'v t -> string -> 'v option

(** Insert (or overwrite) and mark most-recent; evicts the
    least-recently-used entry when over capacity. *)
val add : 'v t -> string -> 'v -> unit

(** Drop every key for which [pred] holds; returns how many were
    dropped.  Used to invalidate by key prefix on catalog bumps. *)
val invalidate : 'v t -> (string -> bool) -> int

val clear : 'v t -> int

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val stats : 'v t -> stats
