(* Static physical-plan analysis: classify each operator as
   partition-local (narrow) or shuffle-inducing (wide), assign stage
   numbers, and pretty-print the plan the way one would read a Spark UI's
   DAG — useful to understand where the engine's (and the paper's)
   runtime goes before executing anything. *)

open Nrab

type movement =
  | Narrow  (** partition-local *)
  | Shuffle of string  (** hash repartition by the given key description *)
  | Gather  (** all partitions collapse (no equi-key join) *)

type node = {
  op_id : int;
  label : string;
  movement : movement;
  stage : int;
  inputs : node list;
}

let movement_to_string = function
  | Narrow -> "narrow"
  | Shuffle key -> "shuffle by " ^ key
  | Gather -> "gather"

(* Movement of one operator given its children's output fields. *)
let movement_of (q : Query.t) ~(left_fields : string list)
    ~(right_fields : string list) : movement =
  match q.Query.node with
  | Query.Table _ | Query.Select _ | Query.Project _ | Query.Rename _
  | Query.Flatten_tuple _ | Query.Flatten _ | Query.Nest_tuple _
  | Query.Agg_tuple _ | Query.Union ->
    Narrow
  | Query.Dedup -> Shuffle "whole tuple"
  | Query.Diff -> Shuffle "whole tuple"
  | Query.Nest_rel (pairs, _) ->
    let nested = List.map snd pairs in
    let group = List.filter (fun a -> not (List.mem a nested)) left_fields in
    Shuffle (String.concat "," group)
  | Query.Group_agg (group, _) -> Shuffle (String.concat "," (List.map fst group))
  | Query.Join (_, pred) ->
    let keys = Exec.equi_keys left_fields right_fields pred in
    if keys = [] then Gather
    else Shuffle (String.concat "," (List.map fst keys))
  | Query.Product -> Gather

let analyze ~(env : Typecheck.env) (q : Query.t) : node =
  let fields_of sub =
    match Typecheck.infer_result env sub with
    | Ok ty -> List.map fst (Nested.Vtype.relation_fields ty)
    | Error _ -> []
  in
  let rec go (q : Query.t) : node =
    let inputs = List.map go q.Query.children in
    let left_fields, right_fields =
      match q.Query.children with
      | [ c ] -> (fields_of c, [])
      | [ l; r ] -> (fields_of l, fields_of r)
      | _ -> ([], [])
    in
    let movement = movement_of q ~left_fields ~right_fields in
    let input_stage = List.fold_left (fun acc n -> max acc n.stage) 0 inputs in
    let stage =
      match movement with
      | Narrow -> input_stage
      | Shuffle _ | Gather -> input_stage + 1
    in
    {
      op_id = q.Query.id;
      label = Fmt.str "%a" Query.pp_node q.Query.node;
      movement;
      stage;
      inputs;
    }
  in
  go q

let stage_count (plan : node) : int =
  let rec go acc (n : node) =
    List.fold_left go (max acc n.stage) n.inputs
  in
  go 0 plan + 1

let rec pp ppf (n : node) =
  Fmt.pf ppf "@[<v 2>[stage %d] %s^%d (%s)%a@]" n.stage n.label n.op_id
    (movement_to_string n.movement)
    (fun ppf inputs ->
      List.iter (fun i -> Fmt.pf ppf "@,%a" pp i) inputs)
    n.inputs

let to_string plan = Fmt.str "%a" pp plan
