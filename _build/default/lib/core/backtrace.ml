(* Schema backtracing (Section 5.1).

   Starting from the missing-answer NIP t over the output schema of Q, walk
   the query top-down and rewrite the NIP over the schema of every
   operator's output, ending with one NIP per input table (the paper's T̄).
   The per-operator NIPs are what the data tracing step re-validates
   intermediate tuples against ("consistent" flags), and the NIPs at the
   table-access operators identify compatible input tuples. *)

open Nested
open Nrab

type t = {
  op_nips : (int * Nip.t) list;     (* NIP over each operator's OUTPUT *)
  table_nips : (string * Nip.t) list;  (* one entry per table-access operator *)
}

let op_nip (bt : t) (id : int) : Nip.t =
  Option.value ~default:Nip.Any (List.assoc_opt id bt.op_nips)

let table_nip (bt : t) (name : string) : Nip.t =
  Option.value ~default:Nip.Any (List.assoc_opt name bt.table_nips)

(* Keep only the constraints of [nip] that talk about [fields]; everything
   else becomes unconstrained. *)
let restrict_fields (nip : Nip.t) (fields : string list) : Nip.t =
  match nip with
  | Nip.Tup fs ->
    let kept = List.filter (fun (l, _) -> List.mem l fields) fs in
    let kept = List.filter (fun (_, p) -> not (Nip.is_trivial p)) kept in
    if kept = [] then Nip.Any else Nip.Tup kept
  | other -> other

(* The constrained element pattern of a bag NIP, if any: for {{p, *}} or
   {{p}} returns p; for {{?, *}} returns Any. *)
let bag_element_pattern (p : Nip.t) : Nip.t =
  match p with
  | Nip.Bag (elems, _) -> (
    match List.filter (fun e -> not (Nip.is_trivial e)) elems with
    | e :: _ -> e
    | [] -> Nip.Any)
  | Nip.Any -> Nip.Any
  | other -> other

let tup_of_constraints cs =
  let cs = List.filter (fun (_, p) -> not (Nip.is_trivial p)) cs in
  if cs = [] then Nip.Any else Nip.Tup cs

let run ~(env : Typecheck.env) (q : Query.t) (missing : Nip.t) : t =
  let op_nips = ref [] in
  let table_nips = ref [] in
  let fields_of (sub : Query.t) : string list =
    match Typecheck.infer_result env sub with
    | Ok ty -> List.map fst (Vtype.relation_fields ty)
    | Error _ -> []
  in
  (* [go op nip]: [nip] constrains the OUTPUT of [op]. *)
  let rec go (op : Query.t) (nip : Nip.t) : unit =
    op_nips := (op.Query.id, nip) :: !op_nips;
    match op.Query.node, op.Query.children with
    | Query.Table name, [] -> table_nips := (name, nip) :: !table_nips
    | Query.Select _, [ c ] -> go c nip
    | Query.Dedup, [ c ] -> go c nip
    | Query.Union, [ l; r ] ->
      go l nip;
      go r nip
    | Query.Diff, [ l; r ] ->
      go l nip;
      go r Nip.Any
    | Query.Project cols, [ c ] ->
      let constraints =
        List.filter_map
          (fun (name, e) ->
            match e with
            | Expr.Attr a ->
              let p = Nip.field nip name in
              if Nip.is_trivial p then None else Some (a, p)
            | _ -> None
              (* constraints on computed columns cannot be pushed through;
                 they stay recorded at this operator's own NIP *))
          cols
      in
      go c (tup_of_constraints constraints)
    | Query.Rename pairs, [ c ] ->
      let old_of fresh =
        match List.find_opt (fun (b, _) -> String.equal b fresh) pairs with
        | Some (_, a) -> a
        | None -> fresh
      in
      let constraints =
        List.map (fun (l, p) -> (old_of l, p)) (Nip.tuple_fields nip)
      in
      go c (tup_of_constraints constraints)
    | (Query.Join _ | Query.Product), [ l; r ] ->
      go l (restrict_fields nip (fields_of l));
      go r (restrict_fields nip (fields_of r))
    | Query.Flatten_tuple a, [ c ] ->
      let child_fields = fields_of c in
      let inner_constraints =
        List.filter (fun (l, _) -> not (List.mem l child_fields))
          (Nip.tuple_fields nip)
      in
      let base = restrict_fields nip child_fields in
      let child_nip =
        if inner_constraints = [] then base
        else
          let inner = tup_of_constraints inner_constraints in
          Nip.constrain_field
            (match base with Nip.Tup _ -> base | _ -> Nip.Tup [])
            a inner
      in
      go c child_nip
    | Query.Flatten (_, a), [ c ] ->
      let child_fields = fields_of c in
      let inner_constraints =
        List.filter (fun (l, _) -> not (List.mem l child_fields))
          (Nip.tuple_fields nip)
      in
      let base = restrict_fields nip child_fields in
      let child_nip =
        if inner_constraints = [] then base
        else
          let elem = tup_of_constraints inner_constraints in
          Nip.constrain_field
            (match base with Nip.Tup _ -> base | _ -> Nip.Tup [])
            a
            (Nip.Bag ([ elem ], true))
      in
      go c child_nip
    | Query.Nest_tuple (pairs, c_name), [ c ] ->
      let nested = Nip.field nip c_name in
      let inner_constraints =
        match nested with
        | Nip.Tup fs ->
          (* constraints on an output label apply to its source attribute *)
          List.filter_map
            (fun (l, p) ->
              Option.map (fun (_, a) -> (a, p))
                (List.find_opt (fun (label, _) -> String.equal label l) pairs))
            fs
        | _ -> []
      in
      let rest =
        List.filter
          (fun (l, _) -> not (String.equal l c_name))
          (Nip.tuple_fields nip)
      in
      go c (tup_of_constraints (rest @ inner_constraints))
    | Query.Nest_rel (pairs, c_name), [ c ] ->
      let nested = Nip.field nip c_name in
      let elem = bag_element_pattern nested in
      let inner_constraints =
        match elem with
        | Nip.Tup fs ->
          List.filter_map
            (fun (l, p) ->
              Option.map (fun (_, a) -> (a, p))
                (List.find_opt (fun (label, _) -> String.equal label l) pairs))
            fs
        | _ -> []
      in
      let rest =
        List.filter
          (fun (l, _) -> not (String.equal l c_name))
          (Nip.tuple_fields nip)
      in
      go c (tup_of_constraints (rest @ inner_constraints))
    | Query.Agg_tuple (_, _, b), [ c ] ->
      (* the aggregate-output constraint stays at this operator *)
      let rest =
        List.filter
          (fun (l, _) -> not (String.equal l b))
          (Nip.tuple_fields nip)
      in
      go c (tup_of_constraints rest)
    | Query.Group_agg (group, _), [ c ] ->
      let group_constraints =
        List.filter_map
          (fun (l, p) ->
            Option.map (fun (_, a) -> (a, p))
              (List.find_opt (fun (label, _) -> String.equal label l) group))
          (Nip.tuple_fields nip)
      in
      go c (tup_of_constraints group_constraints)
    | _ -> invalid_arg "Backtrace.run: malformed query"
  in
  go q missing;
  { op_nips = !op_nips; table_nips = !table_nips }
