(* Nested relational values (Definition 2 of the paper).

   A value is a primitive, a tuple of labelled values, or a bag of values
   with positive multiplicities.  Bags are kept in a canonical form: elements
   sorted by [compare] with multiplicities > 0, which makes structural
   equality coincide with bag equality. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Tuple of (string * t) list
  | Bag of (t * int) list

let rec compare (a : t) (b : t) : int =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Bool x, Bool y -> Stdlib.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float x, Float y -> Stdlib.compare x y
  | Float _, _ -> -1
  | _, Float _ -> 1
  | String x, String y -> Stdlib.compare x y
  | String _, _ -> -1
  | _, String _ -> 1
  | Tuple xs, Tuple ys -> compare_fields xs ys
  | Tuple _, _ -> -1
  | _, Tuple _ -> 1
  | Bag xs, Bag ys -> compare_elems xs ys

and compare_fields xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (la, va) :: xs', (lb, vb) :: ys' ->
    let c = String.compare la lb in
    if c <> 0 then c
    else
      let c = compare va vb in
      if c <> 0 then c else compare_fields xs' ys'

and compare_elems xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (va, ma) :: xs', (vb, mb) :: ys' ->
    let c = compare va vb in
    if c <> 0 then c
    else
      let c = Stdlib.compare ma mb in
      if c <> 0 then c else compare_elems xs' ys'

let equal a b = compare a b = 0

(* Normalize a list of (value, multiplicity) pairs into canonical bag
   contents: sorted, duplicates merged, non-positive multiplicities
   dropped. *)
let normalize_elems (elems : (t * int) list) : (t * int) list =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare a b)
      (List.filter (fun (_, m) -> m > 0) elems)
  in
  let rec merge = function
    | [] -> []
    | [ x ] -> [ x ]
    | (v1, m1) :: (v2, m2) :: rest when equal v1 v2 ->
      merge ((v1, m1 + m2) :: rest)
    | x :: rest -> x :: merge rest
  in
  merge sorted

let bag elems = Bag (normalize_elems elems)
let bag_of_list vs = bag (List.map (fun v -> (v, 1)) vs)
let empty_bag = Bag []

let tuple fields = Tuple fields

(* Accessors *)

let field (label : string) (v : t) : t option =
  match v with
  | Tuple fields -> List.assoc_opt label fields
  | Null | Bool _ | Int _ | Float _ | String _ | Bag _ -> None

let field_exn label v =
  match field label v with
  | Some x -> x
  | None ->
    Fmt.invalid_arg "Value.field_exn: no field %s in %a" label
      (fun ppf _ -> Fmt.string ppf "<value>")
      v

let elems (v : t) : (t * int) list =
  match v with
  | Bag es -> es
  | Null -> []
  | Bool _ | Int _ | Float _ | String _ | Tuple _ ->
    invalid_arg "Value.elems: not a bag"

let is_empty_bag = function
  | Bag [] | Null -> true
  | Bag _ | Bool _ | Int _ | Float _ | String _ | Tuple _ -> false

let cardinal (v : t) : int =
  List.fold_left (fun acc (_, m) -> acc + m) 0 (elems v)

let multiplicity (v : t) (x : t) : int =
  match List.find_opt (fun (y, _) -> equal x y) (elems v) with
  | Some (_, m) -> m
  | None -> 0

(* Tuple concatenation (the paper's [t ∘ t'] operator). *)
let concat_tuples (a : t) (b : t) : t =
  match a, b with
  | Tuple xs, Tuple ys -> Tuple (xs @ ys)
  | _ -> invalid_arg "Value.concat_tuples: arguments must be tuples"

let labels (v : t) : string list =
  match v with
  | Tuple fields -> List.map fst fields
  | Null | Bool _ | Int _ | Float _ | String _ | Bag _ -> []

(* Bag algebra on values of bag shape. *)

let bag_union a b = bag (elems a @ elems b)

let bag_diff a b =
  let remaining =
    List.map (fun (v, m) -> (v, m - multiplicity b v)) (elems a)
  in
  bag remaining

let bag_map f a = bag (List.map (fun (v, m) -> (f v, m)) (elems a))

let bag_filter p a = bag (List.filter (fun (v, _) -> p v) (elems a))

let dedup a = bag (List.map (fun (v, _) -> (v, 1)) (elems a))

let bag_fold f init a =
  List.fold_left (fun acc (v, m) -> f acc v m) init (elems a)

(* Expanded element list: each element repeated [multiplicity] times. *)
let expand (a : t) : t list =
  List.concat_map (fun (v, m) -> List.init m (fun _ -> v)) (elems a)

(* Pretty printing *)

let rec pp ppf (v : t) =
  match v with
  | Null -> Fmt.string ppf "⊥"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Tuple fields ->
    Fmt.pf ppf "⟨%a⟩"
      (Fmt.list ~sep:(Fmt.any ", ") pp_field)
      fields
  | Bag es ->
    Fmt.pf ppf "{{%a}}"
      (Fmt.list ~sep:(Fmt.any ", ") pp_elem)
      es

and pp_field ppf (label, v) = Fmt.pf ppf "%s: %a" label pp v

and pp_elem ppf (v, m) =
  if m = 1 then pp ppf v else Fmt.pf ppf "%a^%d" pp v m

let to_string v = Fmt.str "%a" pp v

(* Convenience constructors *)
let str s = String s
let int i = Int i
let boolean b = Bool b
let float f = Float f
