(** Chrome [trace_event] exporter: span trees → the JSON Array Format of
    chrome://tracing / Perfetto (one complete ["ph":"X"] event per span,
    microsecond timestamps, attributes as ["args"]).

    Events are emitted in pre-order per root, so timestamps are
    non-decreasing within a tree. *)

open Nested

(** [{"traceEvents": [...]}] for a forest of root spans.  Timestamps are
    relative to the earliest root start. *)
val to_json : ?pid:int -> Span.t list -> Json.json

val to_string : ?pid:int -> Span.t list -> string

(** Write the trace to a file, loadable in chrome://tracing or
    https://ui.perfetto.dev. *)
val write_file : string -> Span.t list -> unit
