(* The crime dataset of scenarios C1–C3 (Table 6): persons, witnesses,
   sightings, and crimes.  Small by design — it is used for the
   qualitative comparison against Why-Not and Conseil, and is small enough
   for the exact MSR search to serve as ground truth. *)

open Nested

let str s = Value.String s
let int i = Value.Int i
let tup fields = Value.Tuple fields

let persons_schema =
  Vtype.relation
    [ ("name", Vtype.TString); ("hair", Vtype.TString); ("clothes", Vtype.TString) ]

let witnesses_schema =
  Vtype.relation [ ("wname", Vtype.TString); ("wsector", Vtype.TInt) ]

let sightings_schema =
  Vtype.relation
    [
      ("witness", Vtype.TString);
      ("reporter", Vtype.TString);
      ("shair", Vtype.TString);
      ("sclothes", Vtype.TString);
      ("ssector", Vtype.TInt);
    ]

let crimes_schema =
  Vtype.relation [ ("csector", Vtype.TInt); ("ctype", Vtype.TString) ]

let person name hair clothes =
  tup [ ("name", str name); ("hair", str hair); ("clothes", str clothes) ]

let witness name sector = tup [ ("wname", str name); ("wsector", int sector) ]

let sighting ~witness ~reporter ~hair ~clothes ~sector =
  tup
    [
      ("witness", str witness);
      ("reporter", str reporter);
      ("shair", str hair);
      ("sclothes", str clothes);
      ("ssector", int sector);
    ]

let crime sector ctype = tup [ ("csector", int sector); ("ctype", str ctype) ]

let db () : Relation.Db.t =
  let persons =
    [
      (* C1 target: Roger exists, but with red (not blue) hair *)
      person "Roger" "red" "jeans";
      person "Bill" "blue" "coat";
      (* C2 target *)
      person "Conedera" "black" "suit";
      person "Smith" "brown" "hoodie";
      (* C3 bystander whose hair is literally "snow" *)
      person "Zoe" "snow" "dress";
      person "Ashishbakshi" "red" "parka";
    ]
  in
  let witnesses =
    [
      witness "Bob" 5;
      (* C1: the person who reported Roger's description — present as a
         witness, but the sighting's [witness] field does not name her *)
      witness "Anna" 5;
      (* C2: Helen passes the sector filter but is not named Susan; Joe
         fails it too; Susan saw somebody else *)
      witness "Helen" 95;
      witness "Joe" 50;
      witness "Susan" 50;
      (* C3: the missing answer's witness *)
      witness "Ashishbakshi" 12;
    ]
  in
  let sightings =
    [
      (* C1: Roger's description was reported by Anna, but the sighting's
         [witness] field holds a dangling name; [reporter] holds Anna *)
      sighting ~witness:"Nobody" ~reporter:"Anna" ~hair:"red" ~clothes:"jeans"
        ~sector:5;
      (* C2: all three witnesses saw someone *)
      sighting ~witness:"Helen" ~reporter:"Helen" ~hair:"black" ~clothes:"suit"
        ~sector:95;
      sighting ~witness:"Joe" ~reporter:"Joe" ~hair:"black" ~clothes:"suit"
        ~sector:50;
      sighting ~witness:"Susan" ~reporter:"Susan" ~hair:"brown"
        ~clothes:"hoodie" ~sector:50;
      (* C3: Ashishbakshi's own sighting — "snow" is in [sclothes], the
         query projects [shair] *)
      sighting ~witness:"Ashishbakshi" ~reporter:"Ashishbakshi" ~hair:"red"
        ~clothes:"snow" ~sector:12;
      (* C3: a sighting whose hair really is "snow", by an unknown witness *)
      sighting ~witness:"Zoe" ~reporter:"Zoe" ~hair:"snow" ~clothes:"dress"
        ~sector:33;
    ]
  in
  let crimes =
    [ crime 5 "theft"; crime 95 "burglary"; crime 50 "fraud"; crime 12 "arson" ]
  in
  Relation.Db.of_list
    [
      ("persons", Relation.of_tuples ~schema:persons_schema persons);
      ("witnesses", Relation.of_tuples ~schema:witnesses_schema witnesses);
      ("sightings", Relation.of_tuples ~schema:sightings_schema sightings);
      ("crimes", Relation.of_tuples ~schema:crimes_schema crimes);
    ]
