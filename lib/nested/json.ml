(* JSON (de)serialization for nested values, schemas, relations, and
   databases — the interchange format DISC systems store nested data in.

   Self-contained: a small JSON AST with parser and printer (no external
   dependency), plus schema-directed decoding into the nested data model:
   JSON arrays become bags, objects become tuples, and [null] becomes ⊥.
   Multiplicities are represented structurally (repeated array elements).

   Schemas serialize as JSON too: primitive types as strings ("int",
   "string", …), tuple types as objects, bag types as single-element
   arrays. *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_array of json list
  | J_object of (string * json) list

exception Parse_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Parse_error m)) fmt

(* --- Printer -------------------------------------------------------------- *)

let escape_string (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf (j : json) =
  match j with
  | J_null -> Fmt.string ppf "null"
  | J_bool b -> Fmt.bool ppf b
  | J_int i -> Fmt.int ppf i
  | J_float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
    else Fmt.pf ppf "%.17g" f
  | J_string s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | J_array els ->
    Fmt.pf ppf "@[<hv 2>[%a]@]" (Fmt.list ~sep:(Fmt.any ",@ ") pp) els
  | J_object fields ->
    let pp_field ppf (k, v) = Fmt.pf ppf "\"%s\": %a" (escape_string k) pp v in
    Fmt.pf ppf "@[<hv 2>{%a}@]" (Fmt.list ~sep:(Fmt.any ",@ ") pp_field) fields

let to_string (j : json) : string = Fmt.str "%a" pp j

(* Single-line rendering — [pp]'s hv boxes break at the formatter margin,
   which a line-delimited wire protocol cannot tolerate. *)
let to_line (j : json) : string =
  let buf = Buffer.create 256 in
  let rec go = function
    | J_null -> Buffer.add_string buf "null"
    | J_bool b -> Buffer.add_string buf (string_of_bool b)
    | J_int i -> Buffer.add_string buf (string_of_int i)
    | J_float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Fmt.str "%.1f" f)
      else Buffer.add_string buf (Fmt.str "%.17g" f)
    | J_string s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
    | J_array els ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i el ->
          if i > 0 then Buffer.add_string buf ", ";
          go el)
        els;
      Buffer.add_char buf ']'
    | J_object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* --- Parser --------------------------------------------------------------- *)

type lexer = { src : string; mutable pos : int }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx = lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance lx;
    skip_ws lx
  | _ -> ()

let expect lx c =
  match peek lx with
  | Some c' when c' = c -> advance lx
  | Some c' -> fail "expected '%c' at offset %d, found '%c'" c lx.pos c'
  | None -> fail "expected '%c' at offset %d, found end of input" c lx.pos

let parse_literal lx (lit : string) (j : json) : json =
  if
    lx.pos + String.length lit <= String.length lx.src
    && String.sub lx.src lx.pos (String.length lit) = lit
  then begin
    lx.pos <- lx.pos + String.length lit;
    j
  end
  else fail "invalid literal at offset %d" lx.pos

let parse_string_body lx : string =
  expect lx '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> fail "unterminated string"
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some 'n' -> advance lx; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance lx; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance lx; Buffer.add_char buf '\r'; go ()
      | Some '"' -> advance lx; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance lx; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance lx; Buffer.add_char buf '/'; go ()
      | Some 'u' ->
        advance lx;
        if lx.pos + 4 > String.length lx.src then fail "bad unicode escape";
        let hex = String.sub lx.src lx.pos 4 in
        lx.pos <- lx.pos + 4;
        let code = int_of_string ("0x" ^ hex) in
        (* BMP code points encoded as UTF-8 *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail "bad escape at offset %d" lx.pos)
    | Some c ->
      advance lx;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number lx : json =
  let start = lx.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek lx with Some c -> is_num_char c | None -> false) do
    advance lx
  done;
  let text = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt text with
  | Some i -> J_int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> J_float f
    | None -> fail "invalid number %S at offset %d" text start)

let rec parse_value lx : json =
  skip_ws lx;
  match peek lx with
  | None -> fail "unexpected end of input"
  | Some 'n' -> parse_literal lx "null" J_null
  | Some 't' -> parse_literal lx "true" (J_bool true)
  | Some 'f' -> parse_literal lx "false" (J_bool false)
  | Some '"' -> J_string (parse_string_body lx)
  | Some '[' ->
    advance lx;
    skip_ws lx;
    if peek lx = Some ']' then begin
      advance lx;
      J_array []
    end
    else
      let rec elements acc =
        let v = parse_value lx in
        skip_ws lx;
        match peek lx with
        | Some ',' ->
          advance lx;
          elements (v :: acc)
        | Some ']' ->
          advance lx;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at offset %d" lx.pos
      in
      J_array (elements [])
  | Some '{' ->
    advance lx;
    skip_ws lx;
    if peek lx = Some '}' then begin
      advance lx;
      J_object []
    end
    else
      let rec fields acc =
        skip_ws lx;
        let k = parse_string_body lx in
        skip_ws lx;
        expect lx ':';
        let v = parse_value lx in
        skip_ws lx;
        match peek lx with
        | Some ',' ->
          advance lx;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance lx;
          List.rev ((k, v) :: acc)
        | _ -> fail "expected ',' or '}' at offset %d" lx.pos
      in
      J_object (fields [])
  | Some _ -> parse_number lx

let of_string (s : string) : json =
  let lx = { src = s; pos = 0 } in
  let j = parse_value lx in
  skip_ws lx;
  if lx.pos <> String.length s then fail "trailing input at offset %d" lx.pos;
  j

(* --- Values <-> JSON ------------------------------------------------------- *)

let rec value_to_json (v : Value.t) : json =
  match v with
  | Value.Null -> J_null
  | Value.Bool b -> J_bool b
  | Value.Int i -> J_int i
  | Value.Float f -> J_float f
  | Value.String s -> J_string s
  | Value.Tuple fields ->
    J_object (List.map (fun (l, fv) -> (l, value_to_json fv)) fields)
  | Value.Bag _ as bag -> J_array (List.map value_to_json (Value.expand bag))

(* Schema-directed decoding: the schema disambiguates ints vs floats and
   fixes the tuple field order. *)
let rec value_of_json (ty : Vtype.t) (j : json) : Value.t =
  match ty, j with
  | _, J_null -> Value.Null
  | Vtype.TBool, J_bool b -> Value.Bool b
  | Vtype.TInt, J_int i -> Value.Int i
  | Vtype.TFloat, J_float f -> Value.Float f
  | Vtype.TFloat, J_int i -> Value.Float (float_of_int i)
  | Vtype.TString, J_string s -> Value.String s
  | Vtype.TTuple fields, J_object obj ->
    Value.Tuple
      (List.map
         (fun (label, fty) ->
           match List.assoc_opt label obj with
           | Some fj -> (label, value_of_json fty fj)
           | None -> (label, Value.Null))
         fields)
  | Vtype.TBag ety, J_array els ->
    Value.bag_of_list (List.map (value_of_json ety) els)
  | ty, j -> fail "cannot decode %s as %a" (to_string j) Vtype.pp ty

(* --- Schemas <-> JSON ------------------------------------------------------ *)

let rec type_to_json (ty : Vtype.t) : json =
  match ty with
  | Vtype.TBool -> J_string "bool"
  | Vtype.TInt -> J_string "int"
  | Vtype.TFloat -> J_string "float"
  | Vtype.TString -> J_string "string"
  | Vtype.TTuple fields ->
    J_object (List.map (fun (l, fty) -> (l, type_to_json fty)) fields)
  | Vtype.TBag ety -> J_array [ type_to_json ety ]

let rec type_of_json (j : json) : Vtype.t =
  match j with
  | J_string "bool" -> Vtype.TBool
  | J_string "int" -> Vtype.TInt
  | J_string "float" -> Vtype.TFloat
  | J_string "string" -> Vtype.TString
  | J_object fields ->
    Vtype.TTuple (List.map (fun (l, fj) -> (l, type_of_json fj)) fields)
  | J_array [ ej ] -> Vtype.TBag (type_of_json ej)
  | other -> fail "invalid schema %s" (to_string other)

(* --- Relations and databases ------------------------------------------------ *)

let relation_to_json (r : Relation.t) : json =
  J_object
    [
      ("schema", type_to_json (Relation.schema r));
      ("data", value_to_json (Relation.data r));
    ]

let relation_of_json (j : json) : Relation.t =
  match j with
  | J_object fields -> (
    match (List.assoc_opt "schema" fields, List.assoc_opt "data" fields) with
    | Some sj, Some dj ->
      let schema = type_of_json sj in
      let data = value_of_json schema dj in
      Relation.make ~schema ~data
    | _ -> fail "relation object needs \"schema\" and \"data\"")
  | other -> fail "invalid relation %s" (to_string other)

let db_to_json (db : Relation.Db.t) : json =
  J_object
    (List.map (fun (name, r) -> (name, relation_to_json r)) (Relation.Db.tables db))

let db_of_json (j : json) : Relation.Db.t =
  match j with
  | J_object tables ->
    Relation.Db.of_list
      (List.map (fun (name, rj) -> (name, relation_of_json rj)) tables)
  | other -> fail "invalid database %s" (to_string other)

(* --- Convenience ------------------------------------------------------------ *)

let db_to_string db = to_string (db_to_json db)
let db_of_string s = db_of_json (of_string s)
