(* Nested instances with placeholders (Definition 3) and NIP matching
   (Definition 4).

   A NIP stands for a set of missing answers: [Any] is the instance
   placeholder ?, and a bag pattern may carry the multiplicity placeholder *
   that absorbs any number of further elements.  We additionally support
   primitive *predicate* placeholders (e.g. [> 0.45]); the paper's TPC-H
   why-not questions use such constraints (⟨avgDisc :> 0.45, ?⟩), and they
   are a conservative extension of Definition 3. *)

open Nested
open Nrab

type t =
  | Any                       (* the instance placeholder ? *)
  | Prim of Value.t           (* a concrete value (condition 2 of Def. 4) *)
  | Pred of Expr.cmp * Value.t  (* a primitive satisfying [v cmp const] *)
  | Tup of (string * t) list
  | Bag of t list * bool      (* element patterns; [true] iff * is present *)

let any = Any
let v x = Prim x
let str s = Prim (Value.String s)
let int i = Prim (Value.Int i)
let flt f = Prim (Value.Float f)
let pred c x = Pred (c, x)
let tup fields = Tup fields
let bag ?(star = false) elems = Bag (elems, star)

(* {{?, *}} — at least one element, anything else allowed. *)
let some_element = Bag ([ Any ], true)

let rec pp ppf (p : t) =
  match p with
  | Any -> Fmt.string ppf "?"
  | Prim x -> Value.pp ppf x
  | Pred (c, x) -> Fmt.pf ppf "%a %a" Expr.pp_cmp c Value.pp x
  | Tup fields ->
    Fmt.pf ppf "⟨%a⟩"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (l, p) ->
           Fmt.pf ppf "%s: %a" l pp p))
      fields
  | Bag (elems, star) ->
    Fmt.pf ppf "{{%a%s}}"
      (Fmt.list ~sep:(Fmt.any ", ") pp)
      elems
      (if star then (if elems = [] then "*" else ", *") else "")

let to_string p = Fmt.str "%a" pp p

(* --- Matching ---------------------------------------------------------- *)

(* Bipartite feasibility for bag matching (condition 4 of Definition 4):
   pattern slots have exact demands (their multiplicities in the pattern),
   instance elements have exact supplies, * absorbs leftovers.  We check
   feasibility with a small max-flow from pattern slots to instance
   elements: the assignment M exists iff the pattern demands can be fully
   routed and (when * is absent) no supply is left over. *)

let max_flow ~(sources : int array) (* demand per pattern slot *)
    ~(sinks : int array) (* supply per instance element *)
    ~(edge : int -> int -> bool) : int =
  let np = Array.length sources and ni = Array.length sinks in
  (* capacity matrices as residual graph: node 0 = source, 1..np patterns,
     np+1..np+ni instances, np+ni+1 sink *)
  let nn = np + ni + 2 in
  let s = 0 and t = nn - 1 in
  let cap = Array.make_matrix nn nn 0 in
  Array.iteri (fun j d -> cap.(s).(j + 1) <- d) sources;
  Array.iteri (fun i m -> cap.(np + 1 + i).(t) <- m) sinks;
  for j = 0 to np - 1 do
    for i = 0 to ni - 1 do
      if edge j i then cap.(j + 1).(np + 1 + i) <- max_int / 2
    done
  done;
  let total = ref 0 in
  let rec augment () =
    (* BFS for an augmenting path *)
    let prev = Array.make nn (-1) in
    prev.(s) <- s;
    let queue = Queue.create () in
    Queue.add s queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      for w = 0 to nn - 1 do
        if prev.(w) < 0 && cap.(u).(w) > 0 then begin
          prev.(w) <- u;
          if w = t then found := true else Queue.add w queue
        end
      done
    done;
    if !found then begin
      (* find bottleneck *)
      let rec bottleneck w acc =
        if w = s then acc
        else bottleneck prev.(w) (min acc cap.(prev.(w)).(w))
      in
      let b = bottleneck t max_int in
      let rec push w =
        if w <> s then begin
          cap.(prev.(w)).(w) <- cap.(prev.(w)).(w) - b;
          cap.(w).(prev.(w)) <- cap.(w).(prev.(w)) + b;
          push prev.(w)
        end
      in
      push t;
      total := !total + b;
      augment ()
    end
  in
  augment ();
  !total

let bag_flow = max_flow

let rec matches (value : Value.t) (pattern : t) : bool =
  match pattern, value with
  | Any, _ -> true
  | Prim x, _ -> Value.equal value x
  | Pred (c, x), _ -> Expr.eval_cmp c value x
  | Tup fields, Value.Tuple _ ->
    (* every constrained field must exist and match; fields of the value
       not mentioned in the pattern are unconstrained *)
    List.for_all
      (fun (l, p) ->
        match Value.field l value with
        | Some fv -> matches fv p
        | None -> false)
      fields
  | Tup _, _ -> false
  | Bag (patterns, star), Value.Bag es -> matches_bag es patterns star
  | Bag ([], _), Value.Null -> true  (* ⊥ as the empty relation *)
  | Bag (_, _), Value.Null -> false
  | Bag (_, _), _ -> false

and matches_bag (es : (Value.t * int) list) (patterns : t list) (star : bool) :
    bool =
  (* Group identical patterns to obtain their multiplicities. *)
  let slots =
    let rec group acc = function
      | [] -> List.rev acc
      | p :: rest ->
        let same, different =
          List.partition (fun q -> Stdlib.compare p q = 0) rest
        in
        group ((p, 1 + List.length same) :: acc) different
    in
    group [] patterns
  in
  let demands = Array.of_list (List.map snd slots) in
  let supplies = Array.of_list (List.map snd es) in
  let pats = Array.of_list (List.map fst slots) in
  let vals = Array.of_list (List.map fst es) in
  let edge j i = matches vals.(i) pats.(j) in
  let flow = max_flow ~sources:demands ~sinks:supplies ~edge in
  let demand_total = Array.fold_left ( + ) 0 demands in
  let supply_total = Array.fold_left ( + ) 0 supplies in
  flow = demand_total && (star || demand_total = supply_total)

(* --- Manipulation helpers used by schema backtracing ------------------- *)

(* Constrain a (possibly absent) field of a tuple pattern. *)
let constrain_field (p : t) (label : string) (c : t) : t =
  match p with
  | Tup fields ->
    if List.mem_assoc label fields then
      Tup
        (List.map
           (fun (l, old) -> if String.equal l label then (l, c) else (l, old))
           fields)
    else Tup (fields @ [ (label, c) ])
  | Any -> Tup [ (label, c) ]
  | _ -> invalid_arg "Nip.constrain_field: not a tuple pattern"

let field (p : t) (label : string) : t =
  match p with
  | Tup fields -> Option.value ~default:Any (List.assoc_opt label fields)
  | _ -> Any

let tuple_fields (p : t) : (string * t) list =
  match p with Tup fields -> fields | _ -> []

(* --- Well-formedness against a type (Definition 3) --------------------- *)

(* Is [p] a NIP of type [ty]?  Field constraints must name existing
   fields with matching types; Pred placeholders must sit on comparable
   primitive types; * only occurs inside bag patterns (enforced by the
   representation). *)
let rec check (ty : Vtype.t) (p : t) : (unit, string) result =
  let open Vtype in
  match p, ty with
  | Any, _ -> Ok ()
  | Prim v, _ ->
    if Vtype.has_type v ty then Ok ()
    else Error (Fmt.str "constant %a is not of type %a" Value.pp v Vtype.pp ty)
  | Pred (_, v), (TInt | TFloat) -> (
    match v with
    | Value.Int _ | Value.Float _ -> Ok ()
    | _ -> Error (Fmt.str "predicate constant %a is not numeric" Value.pp v))
  | Pred (_, v), _ ->
    if Vtype.has_type v ty then Ok ()
    else
      Error
        (Fmt.str "predicate constant %a does not match type %a" Value.pp v
           Vtype.pp ty)
  | Tup fields, TTuple field_types ->
    List.fold_left
      (fun acc (label, fp) ->
        match acc with
        | Error _ as e -> e
        | Ok () -> (
          match List.assoc_opt label field_types with
          | None -> Error (Fmt.str "pattern field %s does not exist" label)
          | Some fty -> (
            match check fty fp with
            | Ok () -> Ok ()
            | Error msg -> Error (Fmt.str "%s: %s" label msg))))
      (Ok ()) fields
  | Tup _, _ -> Error (Fmt.str "tuple pattern against type %a" Vtype.pp ty)
  | Bag (elements, _), TBag ety ->
    List.fold_left
      (fun acc ep ->
        match acc with Error _ as e -> e | Ok () -> check ety ep)
      (Ok ()) elements
  | Bag _, _ -> Error (Fmt.str "bag pattern against type %a" Vtype.pp ty)

(* Is this pattern unconstrained (matches any instance of its type)? *)
let rec is_trivial (p : t) : bool =
  match p with
  | Any -> true
  | Prim _ | Pred _ -> false
  | Tup fields -> List.for_all (fun (_, q) -> is_trivial q) fields
  | Bag (elems, star) -> star && List.for_all is_trivial elems
