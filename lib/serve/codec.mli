(** JSON codec for explanations and pipeline results — the response body
    of the wire protocol.  Until now explanations only pretty-printed;
    this is the machine-readable round-trippable form. *)

open Nested

exception Decode_error of string

(** [{"ops": [ids...], "side_effect_lb": n, "side_effect_ub": n,
    "sa": n}] — every field of {!Whynot.Explanation.t}, so decoding
    re-creates an equal value.  A sampled-trace explanation additionally
    carries ["confidence"] (1/stride); exact explanations omit the field
    so their encoding is byte-identical to the pre-approximation
    protocol. *)
val explanation_to_json : Whynot.Explanation.t -> Json.json

(** Raises {!Decode_error} on shape mismatches. *)
val explanation_of_json : Json.json -> Whynot.Explanation.t

(** Rank-ordered array; ranks are implicit in the order (and re-derived
    on decode). *)
val explanations_to_json : Whynot.Explanation.t list -> Json.json

val explanations_of_json : Json.json -> Whynot.Explanation.t list

(** Full result payload: ranked explanations (each with an explicit
    1-based ["rank"] and a paper-style ["pretty"] rendering resolved
    against the query), schema-alternative descriptions, and — unless
    [timings] is [false] — per-phase wall-clock milliseconds off the
    span tree plus the total.  A budgeted/approximate run additionally
    carries an ["approx"] object (mode, confidence, max_stride,
    skipped_candidates, and the top_k/budget_ms knobs in force); exact
    runs omit it. *)
val result_to_json : ?timings:bool -> Whynot.Pipeline.result -> Json.json

(** Decode the explanation list back out of a {!result_to_json} payload
    (the extra presentation fields are ignored).  Raises
    {!Decode_error}. *)
val result_explanations_of_json : Json.json -> Whynot.Explanation.t list
