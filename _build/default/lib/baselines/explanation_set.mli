(** Plain operator-set explanations as returned by the lineage-based
    baselines (no side-effect bounds, no schema alternatives). *)

open Nrab

module Int_set : module type of Set.Make (Int)

type t

val make : Query.t -> Int_set.t -> t
val singleton : Query.t -> int -> t
val ops : t -> Int_set.t
val op_list : t -> int list

(** Paper-style rendering ([{σ^27}]). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
val equal : t -> t -> bool
