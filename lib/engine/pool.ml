(* Fixed-size domain pool — the engine's task-parallel substrate.

   OCaml 5 domains are heavyweight (each owns a minor heap and a slice
   of the GC), so spawning one per partition per operator — what
   [Dataset.map_partitions] did before this module existed — costs more
   than the partition work it parallelizes.  Instead we spawn
   [Domain.recommended_domain_count () - 1] workers once, feed them
   through a mutex/condvar work queue, and hand callers futures.

   [await] *helps*: while its future is pending it pops and runs queued
   jobs on the calling domain.  This keeps nested submissions safe (a
   pooled job may itself submit to the same pool and await without
   deadlocking even when every worker is blocked the same way) and means
   a pool of size 1 still makes progress on a single-core machine.

   Supervision and graceful degradation (the serve layer's at_exit
   teardown makes these live hazards, not hypotheticals):
   - [submit] on a shut-down or dead pool runs the job inline on the
     calling domain instead of raising — counted in
     [engine.pool.inline_fallback];
   - job closures resolve their future on *any* escape (including a
     raising abort hook), so a worker domain cannot die holding a job;
   - a worker domain that does die (the ["engine.pool.worker"] chaos
     site simulates this) is noticed eagerly (the pool degrades to
     inline once every worker is gone) and detected at join, counted in
     [engine.pool.worker_deaths]; any jobs its death stranded in the
     queue are drained inline by [shutdown]. *)

type 'a state = Pending | Done of 'a | Failed of exn

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable dead : int;  (* worker domains that died before shutdown *)
  mutable workers : unit Domain.t list;
  size : int;
}

and 'a future = {
  pool : t;
  fmutex : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
}

let size pool = pool.size

let inline_fallback_c = lazy (Obs.Metrics.counter "engine.pool.inline_fallback")
let worker_deaths_c = lazy (Obs.Metrics.counter "engine.pool.worker_deaths")
let site_worker = Obs.Faultinject.register_site "engine.pool.worker"

let worker_loop pool () =
  let rec loop () =
    (* Chaos hook: arming this site raises here, killing the worker
       domain with the queue intact (the fire precedes the dequeue, so
       no job is lost with it). *)
    Obs.Faultinject.fire site_worker;
    Mutex.lock pool.mutex;
    let rec next () =
      match Queue.take_opt pool.queue with
      | Some job -> Some job
      | None ->
        if pool.closed then None
        else begin
          Condition.wait pool.not_empty pool.mutex;
          next ()
        end
    in
    let job = next () in
    Mutex.unlock pool.mutex;
    match job with
    | None -> ()
    | Some job ->
      job ();
      loop ()
  in
  try loop ()
  with e ->
    (* Record the death eagerly so [submit] can degrade to inline once
       the last worker is gone; re-raise so [shutdown]'s join sees it. *)
    Mutex.lock pool.mutex;
    pool.dead <- pool.dead + 1;
    Mutex.unlock pool.mutex;
    raise e

let create ?size () =
  let size =
    match size with
    | Some s -> max 1 s
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      dead = 0;
      workers = [];
      size;
    }
  in
  pool.workers <- List.init size (fun _ -> Domain.spawn (worker_loop pool));
  pool

let submit ?abort (pool : t) (f : unit -> 'a) : 'a future =
  let fut =
    { pool; fmutex = Mutex.create (); fdone = Condition.create (); state = Pending }
  in
  (* The submitter's ambient trace context travels with the job: the
     worker domain (or a helping awaiter, or the inline-fallback path)
     reinstalls it around the run, so spans and log records emitted
     inside pooled work carry the request's trace_id. *)
  let trace = Obs.Trace_context.current () in
  let job () =
    (* The abort hook runs at the queued→running edge: a job whose
       submitter no longer wants it (deadline lapsed, run cancelled)
       fails its future without doing the work.  An abort hook that
       itself raises also fails the future — nothing may escape into the
       worker loop holding an unresolved future. *)
    let outcome =
      Obs.Trace_context.with_opt trace (fun () ->
          match (match abort with Some a -> a () | None -> None) with
          | Some e -> Failed e
          | None -> ( match f () with v -> Done v | exception e -> Failed e)
          | exception e -> Failed e)
    in
    Mutex.lock fut.fmutex;
    fut.state <- outcome;
    Condition.broadcast fut.fdone;
    Mutex.unlock fut.fmutex
  in
  Mutex.lock pool.mutex;
  let degraded = pool.closed || pool.dead >= pool.size in
  if degraded then begin
    Mutex.unlock pool.mutex;
    (* Graceful degradation: a late job (e.g. during at_exit-ordered
       teardown) runs inline on the calling domain instead of crashing
       the process with Invalid_argument. *)
    Obs.Metrics.Counter.incr (Lazy.force inline_fallback_c);
    job ()
  end
  else begin
    Queue.add job pool.queue;
    Condition.signal pool.not_empty;
    Mutex.unlock pool.mutex
  end;
  fut

let try_steal (pool : t) : (unit -> unit) option =
  Mutex.lock pool.mutex;
  let job = Queue.take_opt pool.queue in
  Mutex.unlock pool.mutex;
  job

let rec await (fut : 'a future) : 'a =
  Mutex.lock fut.fmutex;
  let state = fut.state in
  Mutex.unlock fut.fmutex;
  match state with
  | Done v -> v
  | Failed e -> raise e
  | Pending -> (
    (* Run queued work on this domain while we wait — see module header. *)
    match try_steal fut.pool with
    | Some job ->
      job ();
      await fut
    | None ->
      Mutex.lock fut.fmutex;
      while fut.state = Pending do
        Condition.wait fut.fdone fut.fmutex
      done;
      Mutex.unlock fut.fmutex;
      await fut)

let task_label label i =
  match label with
  | Some l -> Fmt.str "%s/p%d" l i
  | None -> Fmt.str "p%d" i

let map_array ?policy ?label ?on_retry (pool : t) (f : 'a -> 'b)
    (xs : 'a array) : 'b array =
  let run i x =
    match policy with
    | None -> f x
    | Some policy ->
      Fault.protect ~policy ~task:(task_label label i) ~task_id:i
        ?on_retry:
          (Option.map (fun cb ~attempt e -> cb ~index:i ~attempt e) on_retry)
        (fun () -> f x)
  in
  (* Await in submission order: results are deterministic and the first
     exception to propagate is the leftmost one. *)
  match Array.length xs with
  | 0 -> [||]
  | 1 -> [| run 0 xs.(0) |]
  | _ ->
    let futures =
      Array.mapi (fun i x -> submit pool (fun () -> run i x)) xs
    in
    Array.map await futures

let map_list ?policy ?label ?on_retry (pool : t) (f : 'a -> 'b) (xs : 'a list)
    : 'b list =
  Array.to_list (map_array ?policy ?label ?on_retry pool f (Array.of_list xs))

let shutdown (pool : t) : unit =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Condition.broadcast pool.not_empty;
  Mutex.unlock pool.mutex;
  (* A worker that died re-raises at join: count it, never crash the
     teardown path. *)
  List.iter
    (fun w ->
      match Domain.join w with
      | () -> ()
      | exception _ ->
        Obs.Metrics.Counter.incr (Lazy.force worker_deaths_c))
    workers;
  (* Jobs stranded in the queue by dead workers are recomputed inline —
     their futures resolve and no awaiter hangs. *)
  let rec drain () =
    match try_steal pool with
    | Some job ->
      job ();
      drain ()
    | None -> ()
  in
  drain ()

(* The shared pool: created on first use, lives for the process (worker
   domains idle on a condvar when the queue is empty, so an unused pool
   costs nothing but memory). *)
let default_pool = lazy (create ())
let default () = Lazy.force default_pool

(* Joining the workers at process exit keeps teardown orderly under
   tools (e.g. valgrind, coverage) that dislike domains alive at exit;
   forcing the lazy here would spawn domains only to kill them, hence
   the is_val guard. *)
let shutdown_default () =
  if Lazy.is_val default_pool then shutdown (Lazy.force default_pool)
