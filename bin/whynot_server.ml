(* whynot_server: the why-not explanation service.

   Speaks the line-delimited JSON protocol of Serve.Protocol over stdio
   (--stdio; pipe-friendly, one response line per request line), a
   Unix-domain socket (--unix PATH), or TCP (--tcp PORT [--host H]).

     printf '%s\n%s\n' \
       '{"op": "register", "dataset": "Q1"}' \
       '{"op": "explain", "dataset": "Q1"}' \
     | whynot_server --stdio --no-timings                              *)

let () =
  let stdio = ref false in
  let unix_path = ref "" in
  let port = ref 0 in
  let host = ref "127.0.0.1" in
  let d = Serve.Server.default_config in
  let cache = ref d.Serve.Server.cache_capacity in
  let handles = ref d.Serve.Server.handle_capacity in
  let queue = ref d.Serve.Server.queue_capacity in
  let deadline = ref 0.0 in
  let parallel = ref false in
  let task_retries = ref d.Serve.Server.task_retries in
  let timings = ref true in
  let max_conns = ref d.Serve.Server.max_connections in
  let max_request = ref d.Serve.Server.max_request_bytes in
  let log_level = ref "" in
  let log_json = ref "" in
  let log_stderr = ref false in
  let slow_ms = ref 0.0 in
  let slo_ms = ref 0.0 in
  let metrics_file = ref "" in
  let metrics_interval = ref 5.0 in
  let checkpoint_dir = ref "" in
  let checkpoint_shuffles = ref false in
  let max_memory_mb = ref 0 in
  let spec =
    [
      ("-stdio", Arg.Set stdio, "serve requests from stdin, responses to stdout");
      ("--stdio", Arg.Set stdio, " same as -stdio");
      ("-unix", Arg.Set_string unix_path, "PATH  listen on a Unix-domain socket");
      ("--unix", Arg.Set_string unix_path, "PATH  same as -unix");
      ("-tcp", Arg.Set_int port, "PORT  listen on TCP");
      ("--tcp", Arg.Set_int port, "PORT  same as -tcp");
      ("-host", Arg.Set_string host, "HOST  TCP bind address (default 127.0.0.1)");
      ("--host", Arg.Set_string host, "HOST  same as -host");
      ("-cache", Arg.Set_int cache, "N  explanation cache capacity (0 disables)");
      ("--cache", Arg.Set_int cache, "N  same as -cache");
      ("-handles", Arg.Set_int handles, "N  traced-run handle cache capacity");
      ("--handles", Arg.Set_int handles, "N  same as -handles");
      ("-queue", Arg.Set_int queue, "N  scheduler admission bound");
      ("--queue", Arg.Set_int queue, "N  same as -queue");
      ( "-deadline",
        Arg.Set_float deadline,
        "MS  default per-request deadline (0 = none)" );
      ("--deadline", Arg.Set_float deadline, "MS  same as -deadline");
      ( "-parallel",
        Arg.Set parallel,
        "process schema alternatives on the domain pool" );
      ("--parallel", Arg.Set parallel, " same as -parallel");
      ( "-task-retries",
        Arg.Set_int task_retries,
        "N  retry budget for transient task faults (default 0: fail fast)" );
      ("--task-retries", Arg.Set_int task_retries, "N  same as -task-retries");
      ( "-no-timings",
        Arg.Clear timings,
        "omit wall-clock timings from responses (deterministic output)" );
      ("--no-timings", Arg.Clear timings, " same as -no-timings");
      ( "-max-conns",
        Arg.Set_int max_conns,
        "N  socket connection cap; extra connections get a one-line \
         overloaded error (default 64)" );
      ("--max-conns", Arg.Set_int max_conns, "N  same as -max-conns");
      ( "-max-request-bytes",
        Arg.Set_int max_request,
        "N  longest accepted request line; longer lines answer \
         bad_request (default 1 MiB)" );
      ( "--max-request-bytes",
        Arg.Set_int max_request,
        "N  same as -max-request-bytes" );
      ( "-log-level",
        Arg.Set_string log_level,
        "LEVEL  structured-log threshold: debug|info|warn|error|off \
         (default info)" );
      ("--log-level", Arg.Set_string log_level, "LEVEL  same as -log-level");
      ( "-log-json",
        Arg.Set_string log_json,
        "FILE  append JSON-lines log records to FILE" );
      ("--log-json", Arg.Set_string log_json, "FILE  same as -log-json");
      ( "-log-stderr",
        Arg.Set log_stderr,
        "mirror log records to stderr as text" );
      ("--log-stderr", Arg.Set log_stderr, " same as -log-stderr");
      ( "-slow-ms",
        Arg.Set_float slow_ms,
        "MS  emit a serve.slow record for requests at or above MS (0 = off)" );
      ("--slow-ms", Arg.Set_float slow_ms, "MS  same as -slow-ms");
      ( "-slo-ms",
        Arg.Set_float slo_ms,
        "MS  explain-latency SLO threshold feeding serve.slo.{ok,breach} \
         (0 = off)" );
      ("--slo-ms", Arg.Set_float slo_ms, "MS  same as -slo-ms");
      ( "-metrics-file",
        Arg.Set_string metrics_file,
        "FILE  periodically dump Prometheus-format metrics to FILE \
         (atomic tmp+rename; final dump at exit)" );
      ( "--metrics-file",
        Arg.Set_string metrics_file,
        "FILE  same as -metrics-file" );
      ( "-metrics-interval",
        Arg.Set_float metrics_interval,
        "SEC  metrics dump period (default 5)" );
      ( "--metrics-interval",
        Arg.Set_float metrics_interval,
        "SEC  same as -metrics-interval" );
      ( "-checkpoint-dir",
        Arg.Set_string checkpoint_dir,
        "DIR  base directory for shuffle checkpoints / spill files \
         (default: system temp dir)" );
      ( "--checkpoint-dir",
        Arg.Set_string checkpoint_dir,
        "DIR  same as -checkpoint-dir" );
      ( "-checkpoint-shuffles",
        Arg.Set checkpoint_shuffles,
        "checkpoint post-shuffle partitions so task faults replay from \
         the barrier instead of recomputing the upstream chain" );
      ( "--checkpoint-shuffles",
        Arg.Set checkpoint_shuffles,
        " same as -checkpoint-shuffles" );
      ( "-max-memory-mb",
        Arg.Set_int max_memory_mb,
        "MB  spill engine intermediates to disk above this per-dataset \
         watermark (0 = never spill)" );
      ( "--max-memory-mb",
        Arg.Set_int max_memory_mb,
        "MB  same as -max-memory-mb" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "whynot_server (--stdio | --unix PATH | --tcp PORT) [options]";
  at_exit Engine.Pool.shutdown_default;
  (match String.lowercase_ascii !log_level with
  | "" -> ()
  | "off" | "none" -> Obs.Log.set_level None
  | s -> (
    match Obs.Log.level_of_string s with
    | Some l -> Obs.Log.set_level (Some l)
    | None ->
      Fmt.epr "whynot_server: unknown log level %S (debug|info|warn|error|off)@."
        s;
      exit 2));
  if !log_stderr then Obs.Log.add_sink "stderr" Obs.Log.stderr_text_sink;
  (match !log_json with
  | "" -> ()
  | path ->
    let oc = open_out path in
    at_exit (fun () -> try close_out oc with Sys_error _ -> ());
    Obs.Log.add_sink "json-file" (Obs.Log.json_line_sink oc));
  (match !metrics_file with
  | "" -> ()
  | path ->
    (* tmp+rename: a scraper reading FILE never sees a half-written
       exposition *)
    let dump () =
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      output_string oc (Obs.Export.prometheus ());
      close_out oc;
      Sys.rename tmp path
    in
    let safe_dump () = try dump () with Sys_error _ -> () in
    at_exit safe_dump;
    let period = Float.max 0.1 !metrics_interval in
    ignore
      (Thread.create
         (fun () ->
           while true do
             Thread.delay period;
             safe_dump ()
           done)
         ()));
  if !checkpoint_dir <> "" || !checkpoint_shuffles || !max_memory_mb > 0 then
    Engine.Checkpoint.set_active
      (Some
         (Engine.Checkpoint.config
            ?dir:(if !checkpoint_dir = "" then None else Some !checkpoint_dir)
            ~checkpoint_shuffles:!checkpoint_shuffles
            ?max_memory_mb:
              (if !max_memory_mb > 0 then Some !max_memory_mb else None)
            ()));
  let config =
    {
      Serve.Server.cache_capacity = !cache;
      handle_capacity = !handles;
      queue_capacity = !queue;
      default_deadline_ms = (if !deadline > 0.0 then Some !deadline else None);
      parallel = !parallel;
      task_retries = max 0 !task_retries;
      timings = !timings;
      max_connections = !max_conns;
      max_request_bytes = !max_request;
      slow_ms = (if !slow_ms > 0.0 then Some !slow_ms else None);
      slo_ms = (if !slo_ms > 0.0 then Some !slo_ms else None);
    }
  in
  let server = Serve.Server.create ~config () in
  if !stdio then Serve.Server.serve_channels server stdin stdout
  else if !unix_path <> "" then Serve.Server.serve_unix server ~path:!unix_path
  else if !port > 0 then Serve.Server.serve_tcp ~host:!host server ~port:!port
  else begin
    prerr_endline
      "whynot_server: pick a transport: --stdio, --unix PATH, or --tcp PORT";
    exit 2
  end
