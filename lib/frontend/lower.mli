(** Lowering from the surface {!Ast} to the core [Nrab.Query] AST.

    Lowering and type checking are interleaved: every operator is
    checked against [Nrab.Typecheck] as it is built, so type errors
    point at the exact source span that introduced them.  [env] maps
    table names to their relation schemas (as in [Nrab.Typecheck]);
    operator ids are drawn from [gen] innermost-first, matching
    programmatic query construction. *)

open Nrab

val statement :
  env:Typecheck.env ->
  gen:Query.Gen.t ->
  Ast.statement ->
  (Query.t * Nested.Vtype.t, Diagnostic.t) result
