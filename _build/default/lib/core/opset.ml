(* Shared set types for operator-id sets and sets thereof, so that all
   modules of the library agree on the types. *)

module Int_set = Set.Make (Int)
module Set_set = Set.Make (Int_set)
