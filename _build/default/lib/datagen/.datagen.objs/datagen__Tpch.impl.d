lib/datagen/tpch.ml: Fmt List Nested Prng Relation Value Vtype
