lib/core/backtrace.mli: Nip Nrab Query Typecheck
