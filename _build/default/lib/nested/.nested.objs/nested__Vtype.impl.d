lib/nested/vtype.ml: Fmt List Option String Value
