(* Tree edit distance between nested relations.

   The paper measures reparameterization side effects with a tree distance
   over query results (Definition 9); unordered TED is NP-hard, so we use
   the Zhang–Shasha ordered tree edit distance over *canonically ordered*
   trees (see Nested.Tree).  Unit costs for insert/delete/relabel. *)

open Nested

let cost_delete = 1
let cost_insert = 1
let cost_relabel (a : string) (b : string) = if String.equal a b then 0 else 1

(* Keyroots of a postorder-indexed tree: nodes whose leftmost leaf differs
   from their parent's. *)
let keyroots (lml : int array) : int list =
  let n = Array.length lml in
  let seen = Hashtbl.create 16 in
  let roots = ref [] in
  for i = n - 1 downto 0 do
    if not (Hashtbl.mem seen lml.(i)) then begin
      Hashtbl.add seen lml.(i) ();
      roots := i :: !roots
    end
  done;
  !roots

let distance_trees (t1 : Tree.t) (t2 : Tree.t) : int =
  let po1 = Tree.postorder t1 and po2 = Tree.postorder t2 in
  let n = Array.length po1 and m = Array.length po2 in
  if n = 0 then m * cost_insert
  else if m = 0 then n * cost_delete
  else begin
    let l1 = Array.map snd po1 and l2 = Array.map snd po2 in
    let lab1 = Array.map fst po1 and lab2 = Array.map fst po2 in
    let td = Array.make_matrix n m max_int in
    let tree_dist i j =
      (* forest distance computation for subtrees rooted at i and j *)
      let li = l1.(i) and lj = l2.(j) in
      let fd = Array.make_matrix (i - li + 2) (j - lj + 2) 0 in
      for x = 1 to i - li + 1 do
        fd.(x).(0) <- fd.(x - 1).(0) + cost_delete
      done;
      for y = 1 to j - lj + 1 do
        fd.(0).(y) <- fd.(0).(y - 1) + cost_insert
      done;
      for x = 1 to i - li + 1 do
        for y = 1 to j - lj + 1 do
          let ix = li + x - 1 and jy = lj + y - 1 in
          if l1.(ix) = li && l2.(jy) = lj then begin
            fd.(x).(y) <-
              min
                (min (fd.(x - 1).(y) + cost_delete) (fd.(x).(y - 1) + cost_insert))
                (fd.(x - 1).(y - 1) + cost_relabel lab1.(ix) lab2.(jy));
            td.(ix).(jy) <- fd.(x).(y)
          end
          else
            fd.(x).(y) <-
              min
                (min (fd.(x - 1).(y) + cost_delete) (fd.(x).(y - 1) + cost_insert))
                (fd.(l1.(ix) - li).(l2.(jy) - lj) + td.(ix).(jy))
        done
      done
    in
    let kr1 = keyroots l1 and kr2 = keyroots l2 in
    List.iter (fun i -> List.iter (fun j -> tree_dist i j) kr2) kr1;
    td.(n - 1).(m - 1)
  end

(* Distance between two nested relations: the distance between their
   canonical trees. *)
let distance (a : Value.t) (b : Value.t) : int =
  distance_trees (Tree.of_value a) (Tree.of_value b)
