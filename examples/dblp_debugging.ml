(* Debugging a bibliography pipeline (scenario D4): an analyst expects
   author Frank Ott in the per-author paper collections of everyone who
   published through ACM after 2010 — but he is missing.

   The walk-through shows the four steps of Algorithm 1 explicitly:
   schema backtracing, schema alternatives, data tracing (via the
   pipeline), and the ranked explanations.

     dune exec examples/dblp_debugging.exe *)

let () =
  let s = Option.get (Scenarios.Registry.find "D4") in
  let inst = s.Scenarios.Scenario.make ~scale:1 () in
  let phi = inst.Scenarios.Scenario.question in
  let q = phi.Whynot.Question.query in
  let db = phi.Whynot.Question.db in
  let env = Whynot.Pipeline.schema_env db in

  Fmt.pr "pipeline under debugging:@.  %a@.@." Nrab.Query.pp q;
  Fmt.pr "missing answer: %a@.@." Whynot.Nip.pp phi.Whynot.Question.missing;

  (* Step 1 — schema backtracing: what would a contributing input tuple
     look like?  (Example 11 of the paper, on this scenario.) *)
  let bt = Whynot.Backtrace.run ~env q phi.Whynot.Question.missing in
  List.iter
    (fun (table, nip) ->
      Fmt.pr "compatible tuples of %-10s must match %a@." table Whynot.Nip.pp nip)
    bt.Whynot.Backtrace.table_nips;

  (* Step 2 — schema alternatives: which attribute substitutions are
     worth exploring?  Here: maybe the publisher label actually lives in
     the series record. *)
  let sas =
    Whynot.Alternatives.enumerate ~env q inst.Scenarios.Scenario.alternatives
  in
  Fmt.pr "@.schema alternatives:@.";
  List.iter
    (fun (sa : Whynot.Alternatives.sa) ->
      Fmt.pr "  S%d: %s@."
        (sa.Whynot.Alternatives.index + 1)
        sa.Whynot.Alternatives.description)
    sas;

  (* Steps 3+4 — data tracing and approximate MSRs. *)
  let result =
    Whynot.Pipeline.explain ~alternatives:inst.Scenarios.Scenario.alternatives phi
  in
  Fmt.pr "@.ranked explanations:@.";
  List.iteri
    (fun i e ->
      Fmt.pr "  %d. %a@." (i + 1) (Whynot.Explanation.pp_with_query q) e)
    result.Whynot.Pipeline.explanations;

  (* Turn the best explanations into concrete repair suggestions. *)
  Fmt.pr "@.suggested repairs:@.";
  List.iteri
    (fun i e ->
      if i < 3 then
        match Whynot.Repair.suggest ~max_suggestions:1 phi e with
        | s :: _ -> Fmt.pr "  %a@." (Whynot.Repair.pp_suggestion q) s
        | [] -> ())
    result.Whynot.Pipeline.explanations;

  (* Compare with what the lineage-based baseline would have said. *)
  let wnpp = Baselines.Wnpp.explanations phi in
  Fmt.pr "@.WN++ (lineage baseline) says: %s@."
    (String.concat ", " (List.map Baselines.Explanation_set.to_string wnpp));
  Fmt.pr
    "@.The baseline only blames the ACM filter; the ranked list also\n\
     surfaces the flatten/year-filter pair {Fᵀ, σ} — the actual bug: the\n\
     pipeline flattens the publisher record although the ACM label lives\n\
     in the series, and filters on year 2015 instead of 2010.@."
