lib/nested/tree.ml: Array Fmt List Value
