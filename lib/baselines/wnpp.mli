(** WN++ — the lineage-based Why-Not baseline [Chapman & Jagadish, SIGMOD
    2009] extended to nested data (Section 6.2 of the paper).

    Traces successors of compatible input tuples forward through the
    original query and reports the first picky operator.  It does not
    re-validate compatibility at later operators, has no schema
    alternatives, and does not check that unblocking the picky operator
    can actually produce the missing answer — reproducing the weaknesses
    the paper's evaluation exhibits (incomplete explanations in
    T1/T4/Q3, a misleading join in Q10, nothing at all in
    D2/D3/T_ASD/Q4). *)

(** With [?parent], a [wnpp.explain] span (children [tracing]/[picky])
    is recorded under it — the same shape as the pipeline's per-SA
    spans, for apples-to-apples overhead comparisons. *)
val explanations : ?parent:Obs.Span.t -> Whynot.Question.t -> Explanation_set.t list
