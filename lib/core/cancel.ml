(* Cooperative cancellation: an atomic flag plus an optional absolute
   deadline on the Obs.Clock timeline.  Tokens are shared between the
   request thread, the scheduler, and pool domains, hence the atomic. *)

type t = {
  flag : bool Atomic.t option;  (* None = the never-cancellable token *)
  deadline_ns : int option;
}

exception Cancelled of string

let () =
  Printexc.register_printer (function
    | Cancelled where -> Some ("Cancel.Cancelled at " ^ where)
    | _ -> None)

let none = { flag = None; deadline_ns = None }

let create () = { flag = Some (Atomic.make false); deadline_ns = None }

let with_deadline_ms ?from_ns budget =
  let from_ns = match from_ns with Some t -> t | None -> Obs.Clock.now_ns () in
  {
    flag = Some (Atomic.make false);
    deadline_ns = Some (from_ns + int_of_float (budget *. 1e6));
  }

let cancel t = match t.flag with Some f -> Atomic.set f true | None -> ()

let cancelled t =
  (match t.flag with Some f -> Atomic.get f | None -> false)
  ||
  match t.deadline_ns with
  | Some d -> Obs.Clock.now_ns () > d
  | None -> false

let check t ~where = if cancelled t then raise (Cancelled where)

let remaining_ms t =
  match t.deadline_ns with
  | None -> None
  | Some d -> Some (float_of_int (d - Obs.Clock.now_ns ()) /. 1e6)
